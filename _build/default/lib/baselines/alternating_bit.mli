(** Alternating-bit baseline (Lynch; Bartlett–Scantlebury–Wilkinson) —
    the protocol the window protocol generalises.

    Stop-and-wait with a one-bit sequence number: the degenerate window
    protocol with [w = 1] and wire modulus 2. Ignores the configured
    window; one message is outstanding at a time. Correct over
    loss-and-reorder channels only under the same conservative timeout
    assumption as the rest of the family (at most one copy in transit). *)

val protocol : Ba_proto.Protocol.t
