(** Go-back-N baseline (Stallings' textbook version the paper builds on).

    Cumulative single-number acknowledgments; the receiver keeps no
    out-of-order buffer and discards anything but the next expected
    sequence number; on timeout the sender retransmits the whole
    outstanding window.

    With [wire_modulus = None] sequence numbers are unbounded and the
    protocol is correct even over reordering channels — this is the fair
    throughput comparator for the paper's claims. With
    [wire_modulus = Some (w + 1)] it is the classic bounded protocol the
    paper's introduction shows to be *unsafe* under reorder: the harness
    observes duplicate or corrupt deliveries. Both variants are exposed
    so experiments can demonstrate either side. *)

val protocol : Ba_proto.Protocol.t
