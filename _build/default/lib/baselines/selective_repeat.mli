(** Selective-repeat baseline with the restriction the paper ascribes to
    Stenning [14]: {e every data message is acknowledged by a distinct
    acknowledgment message} — acknowledgments are always singletons
    [(v, v)].

    The receiver buffers out-of-order arrivals and delivers in order,
    like the block-acknowledgment receiver, but acknowledges each
    reception individually and immediately (including duplicates). The
    sender is the per-message-timer block-ack sender, which handles
    singleton acknowledgments as the degenerate block case — the paper
    notes selective repeat {e is} block acknowledgment restricted to
    [(v, v)] acks. *)

val protocol : Ba_proto.Protocol.t

(** The receiver half is reused by the {!Stenning} baseline. *)

type receiver

val create_receiver :
  Ba_sim.Engine.t ->
  Ba_proto.Proto_config.t ->
  tx:(Ba_proto.Wire.ack -> unit) ->
  deliver:(string -> unit) ->
  receiver

val receiver_on_data : receiver -> Ba_proto.Wire.data -> unit
