(** Stenning / Lam–Shankar timer-constrained baseline ([14], [11], [12]).

    A selective-repeat protocol whose correctness with bounded sequence
    numbers comes from a {e real-time send constraint}: a wire sequence
    number may not be reused until [stenning_gap] ticks have elapsed
    since its previous use, guaranteeing that no copy of the earlier
    incarnation (or its acknowledgment) is still in transit. As the paper
    observes, "this additional constraint may adversely affect the rate
    of data transfer in the event that a small domain of sequence numbers
    is used": steady-state throughput is capped at
    [wire_modulus / stenning_gap] messages per tick regardless of the
    window — experiment T4 sweeps exactly this.

    With [wire_modulus = None] the constraint never binds (every number
    is fresh) and the protocol degenerates to plain selective repeat. *)

val protocol : Ba_proto.Protocol.t
