lib/baselines/stenning.ml: Array Ba_proto Ba_sim Ba_util Blockack Selective_repeat
