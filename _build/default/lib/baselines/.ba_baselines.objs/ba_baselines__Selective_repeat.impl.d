lib/baselines/selective_repeat.ml: Ba_proto Ba_util Blockack
