lib/baselines/go_back_n.ml: Ba_proto Ba_sim Ba_util Lazy
