lib/baselines/stenning.mli: Ba_proto
