lib/baselines/selective_repeat.mli: Ba_proto Ba_sim
