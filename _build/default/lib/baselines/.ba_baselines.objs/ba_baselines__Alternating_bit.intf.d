lib/baselines/alternating_bit.mli: Ba_proto
