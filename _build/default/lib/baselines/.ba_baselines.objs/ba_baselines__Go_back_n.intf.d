lib/baselines/go_back_n.mli: Ba_proto
