lib/baselines/alternating_bit.ml: Ba_proto Ba_sim Lazy
