lib/sim/engine.mli: Ba_util
