lib/sim/engine.ml: Ba_util List
