type t = {
  engine : Engine.t;
  mutable duration : int;
  callback : unit -> unit;
  mutable handle : Engine.handle option;
  mutable expiry : int;
}

let create engine ~duration callback =
  if duration < 0 then invalid_arg "Timer.create: negative duration";
  { engine; duration; callback; handle = None; expiry = 0 }

let stop t =
  match t.handle with
  | None -> ()
  | Some h ->
      Engine.cancel h;
      t.handle <- None

let start_for t duration =
  stop t;
  t.expiry <- Engine.now t.engine + duration;
  let h =
    Engine.schedule t.engine ~delay:duration (fun () ->
        t.handle <- None;
        t.callback ())
  in
  t.handle <- Some h

let start t = start_for t t.duration

let is_armed t = match t.handle with Some h -> Engine.is_pending h | None -> false

let duration t = t.duration

let set_duration t d =
  if d < 0 then invalid_arg "Timer.set_duration: negative duration";
  t.duration <- d

let remaining t = if is_armed t then Some (max 0 (t.expiry - Engine.now t.engine)) else None
