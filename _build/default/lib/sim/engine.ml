exception Stopped

type event = { time : int; action : unit -> unit; mutable live : bool }

type handle = event

type t = {
  mutable clock : int;
  queue : event Ba_util.Heap.t;
  rng : Ba_util.Rng.t;
  mutable pending : int;
  mutable stopping : bool;
}

let create ?(seed = 1) () =
  {
    clock = 0;
    queue = Ba_util.Heap.create ~cmp:(fun a b -> compare a.time b.time) ();
    rng = Ba_util.Rng.create seed;
    pending = 0;
    stopping = false;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let event = { time = at; action; live = true } in
  Ba_util.Heap.push t.queue event;
  t.pending <- t.pending + 1;
  event

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + delay) action

(* Cancellation is lazy: the event stays in the heap, marked dead, and is
   skipped when popped. [pending] counts live events only, so it drops here. *)
let cancel h =
  if h.live then h.live <- false

let is_pending h = h.live

let live_count t =
  Ba_util.Heap.to_sorted_list t.queue |> List.filter (fun e -> e.live) |> List.length

let pending_events t =
  t.pending <- live_count t;
  t.pending

let rec next_live t =
  match Ba_util.Heap.pop t.queue with
  | None -> None
  | Some e when not e.live -> next_live t
  | Some e -> Some e

let step t =
  match next_live t with
  | None -> false
  | Some e ->
      t.clock <- e.time;
      e.live <- false;
      e.action ();
      true

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let fired = ref 0 in
  let budget_ok () = match max_events with None -> true | Some m -> !fired < m in
  let rec loop () =
    if t.stopping || not (budget_ok ()) then ()
    else begin
      match Ba_util.Heap.peek t.queue with
      | None -> ()
      | Some e when not e.live ->
          ignore (Ba_util.Heap.pop t.queue);
          loop ()
      | Some e -> begin
          match until with
          | Some horizon when e.time > horizon -> ()
          | Some _ | None ->
              if step t then begin
                incr fired;
                loop ()
              end
        end
    end
  in
  loop ();
  match until with
  | Some horizon when not t.stopping && budget_ok () -> t.clock <- max t.clock horizon
  | Some _ | None -> ()
