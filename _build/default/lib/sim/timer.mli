(** Restartable one-shot timer on top of {!Engine}.

    The shape every retransmission timer in the protocol layer needs:
    [start] (re)arms it, [stop] disarms it, and the callback fires once
    per arming when the duration elapses. *)

type t

val create : Engine.t -> duration:int -> (unit -> unit) -> t
(** [create engine ~duration f] makes a stopped timer that, once started,
    calls [f ()] after [duration] ticks. Requires [duration >= 0]. *)

val start : t -> unit
(** Arm, or re-arm from now if already armed. *)

val start_for : t -> int -> unit
(** Arm with a one-off duration, overriding the default for this arming. *)

val stop : t -> unit

val is_armed : t -> bool

val duration : t -> int

val set_duration : t -> int -> unit
(** Change the default duration; takes effect at the next [start]. *)

val remaining : t -> int option
(** Ticks until expiry when armed. *)
