lib/experiments/experiments.ml: Array Ba_baselines Ba_channel Ba_model Ba_proto Ba_sim Ba_util Ba_verify Blockack List Option Printf
