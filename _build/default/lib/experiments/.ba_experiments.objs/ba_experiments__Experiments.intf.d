lib/experiments/experiments.mli:
