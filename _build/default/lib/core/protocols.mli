(** {!Ba_proto.Protocol} adapters for the block-acknowledgment endpoints,
    ready to plug into the experiment harness.

    - [simple] is the Section II design: one retransmission timer.
    - [multi] is the Section IV design: a timer per outstanding message.

    Both use the {!Receiver} and honour the configured wire modulus
    (Section V) and acknowledgment coalescing. *)

val simple : Ba_proto.Protocol.t
val multi : Ba_proto.Protocol.t

val reuse : ?lead_factor:int -> unit -> Ba_proto.Protocol.t
(** The Section VI slot-reuse extension ({!Reuse_sender}): the sender
    keeps at most [config.window] messages unacknowledged but runs ahead
    up to [lead_factor * window] positions; the receiver sizes its buffer
    accordingly. Requires the config's wire modulus (if any) to be at
    least [2 * lead_factor * window]. Default [lead_factor = 2]. *)
