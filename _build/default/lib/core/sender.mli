(** Block-acknowledgment sender with the simple timeout (Sections II + V).

    Keeps a window of at most [w] outstanding payloads, retransmits the
    oldest outstanding message ([na]) when its single timer expires, and
    processes block acknowledgments [(lo, hi)] that may cover any range
    of outstanding messages. The timer restarts on every data
    transmission, so "expired" means no data was sent for a full [rto] —
    with [rto > 2 * max link delay + ack_coalesce] that implies no copy
    of any message or acknowledgment is still in transit, which is the
    paper's timeout soundness condition.

    Sequence numbers are full-width internally; the wire carries them
    through {!Seqcodec} (modulo [2w] when the config sets a modulus). *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  tx:(Ba_proto.Wire.data -> unit) ->
  next_payload:(unit -> string option) ->
  t

val pump : t -> unit
(** Pull payloads from [next_payload] while the window has room, sending
    each immediately. Called automatically after window-opening acks;
    call it once after setup, and again if the supplier gains new data. *)

val on_ack : t -> Ba_proto.Wire.ack -> unit
(** Process a (possibly stale or duplicate) block acknowledgment. *)

val na : t -> int
(** Lowest unacknowledged sequence number. *)

val ns : t -> int
(** Next fresh sequence number. *)

val outstanding : t -> int
(** [ns - na], between 0 and the window size. *)

val is_done : t -> bool
(** Supplier exhausted and nothing outstanding. *)

val retransmissions : t -> int

val acked_total : t -> int
(** Messages acknowledged so far (= [na]). *)
