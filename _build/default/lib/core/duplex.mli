(** Duplex sessions with piggybacked block acknowledgments.

    The paper studies one data direction with a dedicated acknowledgment
    channel. Deployed window protocols (the paper cites ARPAnet, SNA, the
    ISO standard) run data both ways and piggyback acknowledgments on
    reverse-direction data frames. This module composes one
    {!Sender_multi} and one {!Receiver} per side into such a session:

    - every outbound data frame carries the latest pending block
      acknowledgment for the opposite direction, for free;
    - an acknowledgment with no data to ride on is flushed as a pure-ack
      frame after [piggyback_hold] ticks (0 = never wait).

    Soundness: holding an acknowledgment extends its effective transit
    time, so the usual timeout bound becomes
    [rto > 2 * max delay + ack_coalesce + piggyback_hold]. *)

type frame = {
  seq : int option;  (** [None] for a pure-ack frame *)
  payload : string;  (** empty for pure-ack frames *)
  pack : Ba_proto.Wire.ack option;  (** piggybacked acknowledgment *)
}

type t
type endpoint

type stats = {
  submitted : int;
  delivered : int;
  frames_sent : int;  (** all frames leaving this endpoint *)
  data_frames : int;
  pure_ack_frames : int;
  piggybacked_acks : int;  (** acks that travelled on a data frame *)
  retransmissions : int;
}

val create :
  ?seed:int ->
  ?config:Config.t ->
  ?piggyback_hold:int ->
  ?loss:float ->
  ?delay:Ba_channel.Dist.t ->
  on_receive_a:(string -> unit) ->
  on_receive_b:(string -> unit) ->
  unit ->
  t
(** Two endpoints, A and B, joined by two simulated links (one per
    direction) sharing the given loss and delay. [on_receive_a] fires
    for messages arriving at A (i.e. sent by B), and vice versa.
    Defaults: {!Config.default} with a [2w] wire modulus,
    [piggyback_hold = 15], lossless, delay [Uniform (40, 60)]. *)

val a : t -> endpoint
val b : t -> endpoint

val send : endpoint -> string -> unit
(** Queue a message for the opposite endpoint. *)

val run : ?until:int -> t -> unit
val idle : t -> bool
(** All submitted messages in both directions delivered and
    acknowledged. *)

val stats : endpoint -> stats
val engine : t -> Ba_sim.Engine.t
