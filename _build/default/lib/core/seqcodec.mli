(** Sequence-number codec: Section V on the wire.

    Endpoints keep full-width sequence numbers internally; the codec maps
    them to wire numbers modulo [n] and reconstructs full numbers on
    receipt using the paper's function [f] with the anchors the proof
    prescribes: [na] on the sender side (assertions 9–10) and
    [max 0 (nr - w)] on the receiver side (assertion 11). With
    [wire_modulus = None] the codec is the identity (unbounded wire
    numbers, the Section II protocol). *)

type t

val create : window:int -> wire_modulus:int option -> t
(** Raises [Invalid_argument] if the modulus is smaller than
    [2 * window] — the bound Section V proves necessary and sufficient. *)

val modulus : t -> int option

val encode : t -> int -> int
(** Full sequence number to wire number. *)

val decode_ack : t -> na:int -> int -> int
(** Reconstruct an acknowledgment bound at the sender, anchored at the
    sender's [na]. Correct for true values in [na, na + n). *)

val decode_data : t -> nr:int -> int -> int
(** Reconstruct a data sequence number at the receiver, anchored at
    [max 0 (nr - window)]. Correct for true values within the paper's
    assertion-11 band. *)

val span : t -> lo:int -> hi:int -> int
(** Number of wire sequence numbers covered by the inclusive wire range
    [lo, hi] (respecting wraparound); [hi - lo + 1] when unbounded. *)

val shift : t -> int -> int -> int
(** [shift t wire k]: the wire number [k] positions after [wire]. *)
