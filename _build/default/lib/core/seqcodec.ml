type t = { window : int; modulus : int option }

let create ~window ~wire_modulus =
  if window <= 0 then invalid_arg "Seqcodec.create: window must be positive";
  (match wire_modulus with
  | Some n when n < 2 * window ->
      invalid_arg
        (Printf.sprintf "Seqcodec.create: modulus %d < 2*window=%d loses information" n
           (2 * window))
  | Some _ | None -> ());
  { window; modulus = wire_modulus }

let modulus t = t.modulus

let encode t seq =
  match t.modulus with None -> seq | Some n -> Ba_util.Modseq.wrap ~n seq

let decode_ack t ~na wire =
  match t.modulus with
  | None -> wire
  | Some n -> Ba_util.Modseq.reconstruct ~n ~ref_:na wire

let decode_data t ~nr wire =
  match t.modulus with
  | None -> wire
  | Some n -> Ba_util.Modseq.reconstruct ~n ~ref_:(max 0 (nr - t.window)) wire

let span t ~lo ~hi =
  match t.modulus with
  | None ->
      if hi < lo then invalid_arg "Seqcodec.span: hi < lo on unbounded codec";
      hi - lo + 1
  | Some n -> Ba_util.Modseq.distance ~n lo hi + 1

let shift t wire k =
  match t.modulus with None -> wire + k | Some n -> Ba_util.Modseq.add ~n wire k
