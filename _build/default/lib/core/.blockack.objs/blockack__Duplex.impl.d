lib/core/duplex.ml: Ba_channel Ba_proto Ba_sim Ba_util Config Option Queue Receiver Sender_multi
