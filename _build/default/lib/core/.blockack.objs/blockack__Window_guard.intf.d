lib/core/window_guard.mli: Ba_sim
