lib/core/config.ml: Ba_proto
