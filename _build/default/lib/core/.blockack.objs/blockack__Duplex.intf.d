lib/core/duplex.mli: Ba_channel Ba_proto Ba_sim Config
