lib/core/receiver.ml: Ba_proto Ba_sim Ba_util Config Lazy Seqcodec
