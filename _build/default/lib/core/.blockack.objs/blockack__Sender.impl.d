lib/core/sender.ml: Ba_proto Ba_sim Ba_util Config Lazy Seqcodec Window_guard
