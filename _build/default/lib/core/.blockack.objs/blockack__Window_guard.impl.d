lib/core/window_guard.ml: Ba_sim List
