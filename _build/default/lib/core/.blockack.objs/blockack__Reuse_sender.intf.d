lib/core/reuse_sender.mli: Ba_proto Ba_sim Config
