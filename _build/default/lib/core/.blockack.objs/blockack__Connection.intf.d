lib/core/connection.mli: Ba_channel Ba_sim Config
