lib/core/rtt_estimator.ml: Float
