lib/core/sender_multi.mli: Ba_proto Ba_sim Config
