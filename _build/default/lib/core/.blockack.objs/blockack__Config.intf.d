lib/core/config.mli: Ba_proto
