lib/core/sender_multi.ml: Ba_proto Ba_sim Ba_util Config Option Rtt_estimator Seqcodec Window_guard
