lib/core/receiver.mli: Ba_proto Ba_sim Config
