lib/core/rtt_estimator.mli:
