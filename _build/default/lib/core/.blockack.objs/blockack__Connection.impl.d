lib/core/connection.ml: Ba_channel Ba_proto Ba_sim Config Queue Receiver Sender Sender_multi
