lib/core/protocols.ml: Ba_proto Printf Receiver Reuse_sender Sender Sender_multi
