lib/core/protocols.mli: Ba_proto
