lib/core/reuse_sender.ml: Ba_proto Ba_sim Ba_util Config Seqcodec Window_guard
