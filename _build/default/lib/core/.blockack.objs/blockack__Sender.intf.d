lib/core/sender.mli: Ba_proto Ba_sim Config
