lib/core/seqcodec.mli:
