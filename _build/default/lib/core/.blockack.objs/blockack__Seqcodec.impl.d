lib/core/seqcodec.ml: Ba_util Printf
