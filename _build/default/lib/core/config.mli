(** Protocol configuration (re-exported from the protocol framework so
    that [Blockack] is self-contained for library users). *)

include module type of Ba_proto.Proto_config
