type data = { seq : int; payload : string }

type ack = { lo : int; hi : int }

let data_header_bytes = 8
let ack_bytes_block = 8
let ack_bytes_single = 4

let data_bytes d = data_header_bytes + String.length d.payload

let pp_data ppf d = Format.fprintf ppf "data(seq=%d,%dB)" d.seq (String.length d.payload)
let pp_ack ppf a = Format.fprintf ppf "ack(%d,%d)" a.lo a.hi
