(** The interface every simulated protocol implements.

    A protocol is a sender half and a receiver half, each driven entirely
    by callbacks: the harness wires [tx] into a lossy {!Ba_channel.Link}
    and feeds arriving messages back into [sender_on_ack] /
    [receiver_on_data]. The sender pulls application payloads through the
    [next_payload] supplier whenever its window has room, so flow control
    stays inside the protocol where it belongs. *)

module type S = sig
  val name : string

  type sender
  type receiver

  val create_sender :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.data -> unit) ->
    next_payload:(unit -> string option) ->
    sender
  (** [next_payload] returns [None] when the application has nothing more
      to send; the sender calls it again after acknowledgments open the
      window. *)

  val create_receiver :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.ack -> unit) ->
    deliver:(string -> unit) ->
    receiver
  (** [deliver] receives payloads in application order, exactly once each
      (for a correct protocol — the harness counts violations). *)

  val sender_on_ack : sender -> Wire.ack -> unit
  val receiver_on_data : receiver -> Wire.data -> unit

  val sender_pump : sender -> unit
  (** Ask the sender to (re)fill its window from [next_payload]; called
      once by the harness at start and harmless at any other time. *)

  val sender_done : sender -> bool
  (** Every payload ever accepted from [next_payload] is acknowledged and
      the supplier is exhausted. *)

  val sender_outstanding : sender -> int
  val sender_retransmissions : sender -> int

  val ack_wire_bytes : int
  (** Size of this protocol's acknowledgment on the wire. *)
end

type t = (module S)
