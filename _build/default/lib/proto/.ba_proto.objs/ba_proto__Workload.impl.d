lib/proto/workload.ml: Ba_util Printf String
