lib/proto/proto_config.ml: Format Option Printf
