lib/proto/protocol.mli: Ba_sim Proto_config Wire
