lib/proto/protocol.ml: Ba_sim Proto_config Wire
