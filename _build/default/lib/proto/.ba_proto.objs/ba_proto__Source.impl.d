lib/proto/source.ml:
