lib/proto/source.mli:
