lib/proto/wire.mli: Format
