lib/proto/harness.mli: Ba_channel Ba_sim Ba_util Format Proto_config Protocol Wire
