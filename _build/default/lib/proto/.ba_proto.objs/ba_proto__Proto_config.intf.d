lib/proto/proto_config.mli: Format
