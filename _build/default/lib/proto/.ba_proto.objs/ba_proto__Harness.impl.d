lib/proto/harness.ml: Ba_channel Ba_sim Ba_util Format Hashtbl Proto_config Protocol String Wire Workload
