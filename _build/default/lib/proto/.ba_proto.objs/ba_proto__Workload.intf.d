lib/proto/workload.mli:
