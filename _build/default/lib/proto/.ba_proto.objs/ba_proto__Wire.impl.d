lib/proto/wire.ml: Format String
