(** Payload source with one-slot lookahead.

    Senders pull payloads from a [unit -> string option] supplier. A
    supplier returning [None] means "nothing available now", not
    necessarily "never again" — an application may queue more data later
    (as {!Blockack.Connection} does). This wrapper re-polls on demand and
    buffers at most one payload so that checking for exhaustion never
    loses data. *)

type t

val create : (unit -> string option) -> t

val next : t -> string option
(** Take the buffered payload if any, otherwise poll the supplier. *)

val exhausted : t -> bool
(** [true] when nothing is available right now: the lookahead slot is
    empty and a fresh poll returned [None]. A payload obtained by the
    poll is kept for the next {!next}. *)
