(** Wire messages exchanged by the simulated protocols.

    Data messages carry a sequence number (possibly modulo-encoded,
    depending on the protocol's configuration) and an opaque payload.
    Acknowledgments carry the paper's pair [(lo, hi)]; protocols that use
    single-number acks (go-back-N, selective repeat) set [lo = hi], which
    also gives a uniform basis for byte accounting. *)

type data = { seq : int; payload : string }

type ack = { lo : int; hi : int }

val data_header_bytes : int
(** Fixed per-data-message header cost used for overhead accounting. *)

val ack_bytes_block : int
(** Bytes of a two-number block acknowledgment. *)

val ack_bytes_single : int
(** Bytes of a classic one-number acknowledgment. *)

val data_bytes : data -> int
(** Header plus payload length. *)

val pp_data : Format.formatter -> data -> unit
val pp_ack : Format.formatter -> ack -> unit
