let filler_alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

let payload ~seed ~size i =
  if i < 0 then invalid_arg "Workload.payload: negative index";
  let prefix = Printf.sprintf "m:%d:" i in
  let pad = max 0 (size - String.length prefix) in
  let rng = Ba_util.Rng.create ((seed * 1_000_003) + i) in
  let filler =
    String.init pad (fun _ ->
        filler_alphabet.[Ba_util.Rng.int rng (String.length filler_alphabet)])
  in
  prefix ^ filler

let index_of s =
  if String.length s >= 2 && s.[0] = 'm' && s.[1] = ':' then begin
    match String.index_from_opt s 2 ':' with
    | None -> None
    | Some stop -> int_of_string_opt (String.sub s 2 (stop - 2))
  end
  else None

let supplier ~seed ~size ~count =
  let next = ref 0 in
  fun () ->
    if !next >= count then None
    else begin
      let p = payload ~seed ~size !next in
      incr next;
      Some p
    end
