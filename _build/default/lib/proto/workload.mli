(** Deterministic application workloads.

    A workload is a finite sequence of self-describing payloads: each
    embeds its index, so the harness can verify ordering, uniqueness and
    integrity of what the receiver delivers without keeping a copy of
    every message. *)

val payload : seed:int -> size:int -> int -> string
(** [payload ~seed ~size i] is the [i]-th payload: an ["m:<i>:"] prefix
    padded with seeded pseudo-random filler up to [size] bytes (or longer
    if the prefix alone exceeds [size]). Deterministic in [(seed, size, i)]. *)

val index_of : string -> int option
(** Parse the embedded index back out of a payload. *)

val supplier : seed:int -> size:int -> count:int -> unit -> string option
(** A stateful pull source yielding payloads [0 .. count-1] then [None]
    forever. *)
