type t = { supplier : unit -> string option; mutable pending : string option }

let create supplier = { supplier; pending = None }

let next t =
  match t.pending with
  | Some _ as p ->
      t.pending <- None;
      p
  | None -> t.supplier ()

let exhausted t =
  match t.pending with
  | Some _ -> false
  | None -> (
      match t.supplier () with
      | None -> true
      | Some p ->
          t.pending <- Some p;
          false)
