module type S = sig
  val name : string

  type sender
  type receiver

  val create_sender :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.data -> unit) ->
    next_payload:(unit -> string option) ->
    sender

  val create_receiver :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.ack -> unit) ->
    deliver:(string -> unit) ->
    receiver

  val sender_on_ack : sender -> Wire.ack -> unit
  val receiver_on_data : receiver -> Wire.data -> unit
  val sender_pump : sender -> unit
  val sender_done : sender -> bool
  val sender_outstanding : sender -> int
  val sender_retransmissions : sender -> int
  val ack_wire_bytes : int
end

type t = (module S)
