(** Section V: block acknowledgment with finite (wire) sequence numbers.

    Internally the processes still count with unbounded integers, but
    every message crosses the wire carrying its sequence number modulo
    [n]; the receiver of a message reconstructs the true number with the
    paper's function [f] (here {!Ba_util.Modseq.reconstruct}), anchored at
    [na] for acknowledgments and at [max 0 (nr - w)] for data.

    Each in-transit message carries a ghost copy of the true (unbounded)
    number alongside the wire number. The ghost never influences protocol
    behaviour — transitions use only reconstructed wire values — but
    {!Make.check} compares reconstruction against the ghost, so the model
    checker proves that no information is lost exactly when [n >= 2w],
    and exhibits a counterexample when [n < 2w]. *)

type wire_data = { wv : int; gv : int }
(** Wire number and ghost (true) number of an in-transit data message. *)

type wire_ack = { wi : int; wj : int; gi : int; gj : int }
(** Wire pair and ghost pair of an in-transit block acknowledgment. *)

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : wire_data Ba_channel.Multiset.t;
  crs : wire_ack Ba_channel.Multiset.t;
}

module Make (P : sig
  val w : int

  val n : int
  (** wire sequence-number modulus; the paper proves [n = 2w] suffices *)

  val limit : int
end) : Spec_types.SPEC with type state = state

val default : w:int -> ?n:int -> limit:int -> unit -> Spec_types.spec
(** [n] defaults to [2 * w]. *)
