(** Section V, final refinement: bounded storage end to end.

    The finite-sequence-number protocol of {!Ba_spec_finite} still keeps
    unbounded integers internally. The paper's closing paragraphs sketch
    the last step: counters ([na], [ns], [nr], [vr]) live modulo [n] and
    the boolean arrays shrink to [w] slots indexed modulo [w]
    ("[ackd[na mod w]] is set to false in action 1′", "[rcvd[vr mod w]]
    is set to false in action 4"), with every comparison rewritten into
    modular arithmetic.

    This spec performs that refinement *literally*: every guard and
    update reads only the bounded state. An unbounded ghost copy of the
    paper's original variables is carried alongside — never consulted by
    transitions — and {!Make.check} asserts at every reachable state that

    - each bounded counter equals its ghost modulo [n],
    - the [w]-slot arrays hold exactly the ghost sets folded modulo [w],
    - wire reconstruction matches the ghost (as in {!Ba_spec_finite}),
    - the paper's invariant (assertions 6–8) holds on the ghosts.

    Exhaustive exploration therefore proves the refinement correct for
    the explored bounds: the implementation with [O(w)] storage is
    observationally the Section II protocol.

    Requires [w | n] (slot indices [wire mod w] are only meaningful
    then); the paper's [n = 2w] satisfies it. *)

module Make (P : sig
  val w : int

  val n : int
  (** wire and counter modulus; must be a positive multiple of [w] *)

  val limit : int
end) : Spec_types.SPEC

val default : w:int -> ?n:int -> limit:int -> unit -> Spec_types.spec
(** [n] defaults to [2 * w]. *)
