type t = int list
(* Strictly increasing. *)

let empty = []
let is_empty t = t = []

let rec mem x = function
  | [] -> false
  | y :: rest -> if x = y then true else if x < y then false else mem x rest

let rec add x = function
  | [] -> [ x ]
  | y :: rest as all -> if x = y then all else if x < y then x :: all else y :: add x rest

let rec remove x = function
  | [] -> []
  | y :: rest -> if x = y then rest else if x < y then y :: rest else y :: remove x rest

let cardinal = List.length
let elements t = t
let of_list xs = List.sort_uniq compare xs
let for_all = List.for_all
let exists = List.exists
let max_elt t = match List.rev t with [] -> None | x :: _ -> Some x

let rec add_range ~lo ~hi t = if lo > hi then t else add_range ~lo:(lo + 1) ~hi (add lo t)

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int t))
