(** Section IV: block acknowledgment with the sophisticated per-message
    timeout (action 2′).

    Identical to the Section II protocol except that any outstanding,
    unacknowledged message [i] whose copies (data or covering ack) have
    left both channels may be retransmitted — not just [na]. This is what
    lets the sender recover a whole lost block acknowledgment in one
    round-trip instead of one timeout period per covered message. *)

module Make (P : sig
  val w : int
  val limit : int
end) : Spec_types.SPEC with type state = Ba_kernel.state

val default : w:int -> limit:int -> Spec_types.spec
