(** Finite set of non-negative integers with a canonical representation
    (strictly increasing list), so that spec states containing sets can be
    compared and hashed structurally by the model checker. *)

type t

val empty : t
val is_empty : t -> bool
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val cardinal : t -> int
val elements : t -> int list
val of_list : int list -> t
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val max_elt : t -> int option
val add_range : lo:int -> hi:int -> t -> t
(** Add all of [lo, hi] inclusive. *)

val pp : Format.formatter -> t -> unit
