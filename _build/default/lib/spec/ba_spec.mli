(** Section II: the window protocol with block acknowledgments, unbounded
    sequence numbers, and the simple whole-channel timeout (action 2).

    The spec is a faithful transcription of processes S and R: actions
    0–5 with channels as multisets, every receive nondeterministic, and
    loss as an environment action. [limit] bounds how many distinct data
    messages the sender will ever offer, making the state space finite. *)

module Make (P : sig
  val w : int
  (** window size, > 0 *)

  val limit : int
  (** number of data messages to transfer, >= 0 *)
end) : Spec_types.SPEC with type state = Ba_kernel.state

val default : w:int -> limit:int -> Spec_types.spec
(** First-class-module convenience wrapper around {!Make}. *)
