(** The paper's system invariant: assertions 6, 7 and 8 (Section III-A)
    plus the three top-level safety properties they imply.

    The checks are written against an abstract [view] of a protocol state
    so that every spec variant (Sections II, IV and V) shares one
    implementation — exactly as the paper reuses the same invariant for
    all three protocols. *)

type view = {
  w : int;  (** window size *)
  na : int;  (** next to be acknowledged (sender) *)
  ns : int;  (** next to send (sender) *)
  nr : int;  (** next to accept (receiver) *)
  vr : int;  (** upper bound of received-but-unacknowledged block *)
  ackd : int -> bool;
  rcvd : int -> bool;
  sr_count : int -> int;  (** #SR m: data messages with sequence m in transit *)
  rs_count : int -> int;  (** #RS m: acks (x, y) in transit with x <= m <= y *)
  horizon : int;  (** check universally quantified assertions for m < horizon *)
}

val assertion_6 : view -> string option
(** na <= nr <= vr <= ns <= na + w. *)

val assertion_7 : view -> string option
(** ackd ⊇ [0,na), ackd ⊆ [0,nr), ¬ackd na, rcvd ⊆ [0,ns), rcvd ⊇ [0,vr). *)

val assertion_8 : view -> string option
(** Single copy in transit; in-transit data m satisfies
    m < ns ∧ ¬ackd m ∧ (m < nr ∨ ¬rcvd m); in-transit ack coverage m
    satisfies m < nr ∧ ¬ackd m. *)

val check : view -> string option
(** Conjunction of 6, 7, 8; [None] when all hold, otherwise the first
    failing assertion with a description. *)
