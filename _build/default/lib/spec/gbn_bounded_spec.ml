open Spec_types
module M = Ba_channel.Multiset

type msg = { wire : int; ghost : int }

type state = {
  na : int;
  ns : int;
  nr : int;
  csr : msg M.t;
  crs : msg M.t;
  violated : string option;
}

module Make (P : sig
  val w : int
  val n : int
  val limit : int
end) =
struct
  let () =
    if P.w <= 0 then invalid_arg "Gbn_bounded_spec: w must be positive";
    if P.n < P.w + 1 then invalid_arg "Gbn_bounded_spec: need n >= w + 1";
    if P.limit < 0 then invalid_arg "Gbn_bounded_spec: limit must be >= 0"

  type nonrec state = state

  let name = Printf.sprintf "go-back-N-bounded(w=%d,n=%d,limit=%d)" P.w P.n P.limit

  let initial = { na = 0; ns = 0; nr = 0; csr = M.empty; crs = M.empty; violated = None }

  let wrap m = Ba_util.Modseq.wrap ~n:P.n m

  let send_new s =
    if s.ns < s.na + P.w && s.ns < P.limit && s.violated = None then
      [ { label = Printf.sprintf "send(%d|w%d)" s.ns (wrap s.ns);
          kind = Protocol;
          target = { s with csr = M.add { wire = wrap s.ns; ghost = s.ns } s.csr; ns = s.ns + 1 } } ]
    else []

  (* Receiver: accept iff the wire number matches nr mod n; cumulative ack
     carries the last accepted number. A non-matching message re-acks the
     last in-order (standard go-back-N duplicate ack), if anything was
     accepted yet. *)
  let recv_data s =
    List.map
      (fun d ->
        let csr = M.remove d s.csr in
        let target =
          if d.wire = wrap s.nr then begin
            let violated =
              if d.ghost <> s.nr && s.violated = None then
                Some
                  (Printf.sprintf "receiver accepted message %d as if it were %d" d.ghost s.nr)
              else s.violated
            in
            let nr = s.nr + 1 in
            { s with csr; nr; crs = M.add { wire = wrap (nr - 1); ghost = nr - 1 } s.crs; violated }
          end
          else if s.nr > 0 then
            { s with csr; crs = M.add { wire = wrap (s.nr - 1); ghost = s.nr - 1 } s.crs }
          else { s with csr }
        in
        { label = Printf.sprintf "recv_data(%d|w%d)" d.ghost d.wire; kind = Protocol; target })
      (M.distinct s.csr)

  (* Sender: decode wire ack k as the unique y in [na - 1, na + w - 1] with
     y ≡ k (mod n); such y exists and is unique because n >= w + 1. Slide
     the window when y >= na. Reorder makes the decoding wrong: a stale
     ack's ghost differs from y. *)
  let recv_ack s =
    List.map
      (fun a ->
        let d = Ba_util.Modseq.distance ~n:P.n (wrap (s.na - 1)) a.wire in
        let y = s.na - 1 + d in
        let target =
          if d >= 1 && d <= P.w then begin
            let violated =
              if y <> a.ghost && s.violated = None then
                Some
                  (Printf.sprintf "sender decoded stale ack %d as %d and slid to na=%d" a.ghost
                     y (y + 1))
              else s.violated
            in
            { s with crs = M.remove a s.crs; na = y + 1; violated }
          end
          else { s with crs = M.remove a s.crs }
        in
        { label = Printf.sprintf "recv_ack(%d|w%d)" a.ghost a.wire; kind = Protocol; target })
      (M.distinct s.crs)

  (* Conservative timeout (the strongest defensible one: both channels
     drained) — go back N: retransmit the whole outstanding window. Even
     with this generous guard, bounded numbers + reorder break safety. *)
  let timeout s =
    if s.na <> s.ns && M.is_empty s.csr && M.is_empty s.crs && s.violated = None then begin
      let rec burst m csr =
        if m >= s.ns then csr else burst (m + 1) (M.add { wire = wrap m; ghost = m } csr)
      in
      [ { label = Printf.sprintf "timeout->go_back(%d..%d)" s.na (s.ns - 1);
          kind = Protocol;
          target = { s with csr = burst s.na s.csr } } ]
    end
    else []

  let lose s =
    List.map
      (fun d ->
        { label = Printf.sprintf "lose_data(%d)" d.ghost;
          kind = Loss;
          target = { s with csr = M.remove d s.csr } })
      (M.distinct s.csr)
    @ List.map
        (fun a ->
          { label = Printf.sprintf "lose_ack(%d)" a.ghost;
            kind = Loss;
            target = { s with crs = M.remove a s.crs } })
        (M.distinct s.crs)

  let transitions s = send_new s @ recv_data s @ recv_ack s @ timeout s @ lose s

  let check s =
    match s.violated with
    | Some _ as v -> v
    | None ->
        if s.na > s.nr then
          Some (Printf.sprintf "safety: sender believes %d accepted, receiver accepted %d" s.na s.nr)
        else if s.na > s.ns then Some (Printf.sprintf "safety: na=%d > ns=%d" s.na s.ns)
        else None

  let terminal s = s.na >= P.limit
  let measure s = s.na + s.ns + s.nr

  let pp ppf s =
    Format.fprintf ppf "S{na=%d ns=%d} R{nr=%d} CSR=%a CRS=%a%s" s.na s.ns s.nr
      (M.pp (fun ppf d -> Format.fprintf ppf "%d|w%d" d.ghost d.wire))
      s.csr
      (M.pp (fun ppf a -> Format.fprintf ppf "%d|w%d" a.ghost a.wire))
      s.crs
      (match s.violated with None -> "" | Some v -> " VIOLATED: " ^ v)
end

let default ~w ?n ~limit () =
  let n = match n with Some n -> n | None -> w + 1 in
  (module Make (struct
    let w = w
    let n = n
    let limit = limit
  end) : Spec_types.SPEC)
