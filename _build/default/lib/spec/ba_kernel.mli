(** Shared kernel for the block-acknowledgment specs.

    Sections II and IV differ only in the timeout action (2 vs 2′), and
    Section V only re-encodes what crosses the wire. This module holds the
    state record and the actions common to all variants so each spec
    assembles its transition relation without duplicating the others. *)

type params = { w : int; limit : int }

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : int Ba_channel.Multiset.t;  (** data messages in transit, S -> R *)
  crs : (int * int) Ba_channel.Multiset.t;  (** block acks in transit, R -> S *)
}

val validate : params -> unit
(** Raises [Invalid_argument] on a non-positive window or negative limit. *)

val initial : state

val advance_na : int -> Iset.t -> int
(** Action 1's trailing loop: skip over consecutively acknowledged
    sequence numbers. *)

val send_new : params -> state -> state Spec_types.transition list
(** Action 0. *)

val recv_ack : state -> state Spec_types.transition list
(** Action 1, one transition per distinct in-transit acknowledgment. *)

val recv_data : state -> state Spec_types.transition list
(** Action 3, one transition per distinct in-transit data message. *)

val advance_vr : state -> state Spec_types.transition list
(** Action 4. *)

val send_ack : state -> state Spec_types.transition list
(** Action 5. *)

val lose : state -> state Spec_types.transition list
(** Environment: drop any one in-transit message. *)

val sr_count : state -> int -> int
(** #SR m. *)

val rs_count : state -> int -> int
(** #RS m (acks whose range covers m). *)

val view : params -> state -> Invariant.view

val measure : state -> int
(** na + ns + nr + vr. *)

val pp : Format.formatter -> state -> unit
