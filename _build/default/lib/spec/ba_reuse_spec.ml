open Spec_types
module M = Ba_channel.Multiset

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : Ba_spec_finite.wire_data M.t;
  crs : Ba_spec_finite.wire_ack M.t;
}

module Make (P : sig
  val w : int
  val lead : int
  val n : int
  val limit : int
end) =
struct
  let () =
    if P.w <= 0 then invalid_arg "Ba_reuse_spec: w must be positive";
    if P.lead < P.w then invalid_arg "Ba_reuse_spec: lead must be >= w";
    if P.n < 2 * P.lead then invalid_arg "Ba_reuse_spec: n must be >= 2 * lead";
    if P.limit < 0 then invalid_arg "Ba_reuse_spec: limit must be >= 0"

  type nonrec state = state

  let name = Printf.sprintf "blockack-VI-reuse(w=%d,lead=%d,n=%d,limit=%d)" P.w P.lead P.n P.limit

  let initial =
    {
      na = 0;
      ns = 0;
      ackd = Iset.empty;
      nr = 0;
      vr = 0;
      rcvd = Iset.empty;
      csr = M.empty;
      crs = M.empty;
    }

  let wrap m = Ba_util.Modseq.wrap ~n:P.n m
  let reconstruct ~ref_ wire = Ba_util.Modseq.reconstruct ~n:P.n ~ref_ wire
  let sender_decode s wire = reconstruct ~ref_:s.na wire
  let receiver_decode s wire = reconstruct ~ref_:(max 0 (s.nr - P.lead)) wire

  let data ~gv : Ba_spec_finite.wire_data = { wv = wrap gv; gv }
  let ack ~gi ~gj : Ba_spec_finite.wire_ack = { wi = wrap gi; wj = wrap gj; gi; gj }

  let unacked s =
    let rec go m acc = if m >= s.ns then acc else go (m + 1) (if Iset.mem m s.ackd then acc else acc + 1) in
    go s.na 0

  (* Action 0'': new data is admitted while the unacknowledged budget has
     room AND the flight band stays within [lead] of na — the Section VI
     reuse rule. *)
  let send_new s =
    if unacked s < P.w && s.ns < s.na + P.lead && s.ns < P.limit then
      [ { label = Printf.sprintf "send(%d|w%d)" s.ns (wrap s.ns);
          kind = Protocol;
          target = { s with csr = M.add (data ~gv:s.ns) s.csr; ns = s.ns + 1 } } ]
    else []

  let rec advance_na na ackd = if Iset.mem na ackd then advance_na (na + 1) ackd else na

  let recv_ack s =
    List.map
      (fun (a : Ba_spec_finite.wire_ack) ->
        let i = sender_decode s a.wi and j = sender_decode s a.wj in
        let ackd = Iset.add_range ~lo:i ~hi:j s.ackd in
        let na = advance_na s.na ackd in
        { label = Printf.sprintf "recv_ack(w%d,w%d->%d,%d)" a.wi a.wj i j;
          kind = Protocol;
          target = { s with crs = M.remove a s.crs; ackd; na } })
      (M.distinct s.crs)

  let sr_count s m = M.filter_count (fun (d : Ba_spec_finite.wire_data) -> d.gv = m) s.csr

  let rs_count s m =
    M.filter_count (fun (a : Ba_spec_finite.wire_ack) -> a.gi <= m && m <= a.gj) s.crs

  (* Action 2': Section IV per-message timeout, with the global guard. *)
  let timeout s =
    let rec each i acc =
      if i >= s.ns then List.rev acc
      else begin
        let enabled =
          (not (Iset.mem i s.ackd))
          && sr_count s i = 0
          && (i < s.nr || not (Iset.mem i s.rcvd))
          && rs_count s i = 0
        in
        let acc =
          if enabled then
            { label = Printf.sprintf "timeout(%d)->resend(%d)" i i;
              kind = Protocol;
              target = { s with csr = M.add (data ~gv:i) s.csr } }
            :: acc
          else acc
        in
        each (i + 1) acc
      end
    in
    each s.na []

  let recv_data s =
    List.map
      (fun (d : Ba_spec_finite.wire_data) ->
        let v = receiver_decode s d.wv in
        let csr = M.remove d s.csr in
        let target =
          if v < s.nr then { s with csr; crs = M.add (ack ~gi:v ~gj:v) s.crs }
          else { s with csr; rcvd = Iset.add v s.rcvd }
        in
        { label = Printf.sprintf "recv_data(w%d->%d)" d.wv v; kind = Protocol; target })
      (M.distinct s.csr)

  let advance_vr s =
    if Iset.mem s.vr s.rcvd then
      [ { label = Printf.sprintf "advance_vr(%d)" s.vr;
          kind = Protocol;
          target = { s with vr = s.vr + 1 } } ]
    else []

  let send_ack s =
    if s.nr < s.vr then
      [ { label = Printf.sprintf "send_ack(%d,%d)" s.nr (s.vr - 1);
          kind = Protocol;
          target = { s with crs = M.add (ack ~gi:s.nr ~gj:(s.vr - 1)) s.crs; nr = s.vr } } ]
    else []

  let lose s =
    List.map
      (fun (d : Ba_spec_finite.wire_data) ->
        { label = Printf.sprintf "lose_data(%d)" d.gv;
          kind = Loss;
          target = { s with csr = M.remove d s.csr } })
      (M.distinct s.csr)
    @ List.map
        (fun (a : Ba_spec_finite.wire_ack) ->
          { label = Printf.sprintf "lose_ack(%d,%d)" a.gi a.gj;
            kind = Loss;
            target = { s with crs = M.remove a s.crs } })
        (M.distinct s.crs)

  let transitions s =
    send_new s @ recv_ack s @ timeout s @ recv_data s @ advance_vr s @ send_ack s @ lose s

  let fail fmt = Format.kasprintf (fun m -> Some m) fmt

  let reconstruction_ok s =
    match
      M.distinct s.csr
      |> List.find_opt (fun (d : Ba_spec_finite.wire_data) -> receiver_decode s d.wv <> d.gv)
    with
    | Some d ->
        fail "reconstruction: data wire=%d decodes to %d, truth %d (nr=%d)" d.wv
          (receiver_decode s d.wv) d.gv s.nr
    | None -> (
        match
          M.distinct s.crs
          |> List.find_opt (fun (a : Ba_spec_finite.wire_ack) ->
                 sender_decode s a.wi <> a.gi || sender_decode s a.wj <> a.gj)
        with
        | Some a -> fail "reconstruction: ack wire=(%d,%d) truth (%d,%d)" a.wi a.wj a.gi a.gj
        | None -> None)

  (* Assertion 6 with the band widened to [lead], plus the reuse-specific
     resource bound. Assertions 7 and 8 are unchanged. *)
  let check s =
    if unacked s > P.w then fail "reuse: unacked=%d exceeds budget w=%d" (unacked s) P.w
    else begin
      match reconstruction_ok s with
      | Some _ as e -> e
      | None ->
          Invariant.check
            {
              Invariant.w = P.lead;
              na = s.na;
              ns = s.ns;
              nr = s.nr;
              vr = s.vr;
              ackd = (fun m -> Iset.mem m s.ackd);
              rcvd = (fun m -> Iset.mem m s.rcvd);
              sr_count = sr_count s;
              rs_count = rs_count s;
              horizon = P.limit + P.lead + 2;
            }
    end

  let terminal s = s.na >= P.limit
  let measure s = s.na + s.ns + s.nr + s.vr

  let pp ppf s =
    Format.fprintf ppf "S{na=%d ns=%d unacked=%d ackd=%a} R{nr=%d vr=%d rcvd=%a} CSR=%a CRS=%a"
      s.na s.ns (unacked s) Iset.pp s.ackd s.nr s.vr Iset.pp s.rcvd
      (M.pp (fun ppf (d : Ba_spec_finite.wire_data) -> Format.fprintf ppf "%d|w%d" d.gv d.wv))
      s.csr
      (M.pp (fun ppf (a : Ba_spec_finite.wire_ack) ->
           Format.fprintf ppf "(%d,%d)|w(%d,%d)" a.gi a.gj a.wi a.wj))
      s.crs
end

let default ~w ?lead ?n ~limit () =
  let lead = match lead with Some l -> l | None -> 2 * w in
  let n = match n with Some n -> n | None -> 2 * lead in
  (module Make (struct
    let w = w
    let lead = lead
    let n = n
    let limit = limit
  end) : Spec_types.SPEC)
