open Spec_types
module M = Ba_channel.Multiset

type params = { w : int; limit : int }

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : int M.t;
  crs : (int * int) M.t;
}

let validate p =
  if p.w <= 0 then invalid_arg "Ba_kernel: w must be positive";
  if p.limit < 0 then invalid_arg "Ba_kernel: limit must be >= 0"

let initial =
  {
    na = 0;
    ns = 0;
    ackd = Iset.empty;
    nr = 0;
    vr = 0;
    rcvd = Iset.empty;
    csr = M.empty;
    crs = M.empty;
  }

let rec advance_na na ackd = if Iset.mem na ackd then advance_na (na + 1) ackd else na

(* Action 0: ns < na + w -> send ns; ns := ns + 1. [limit] bounds the
   input sequence so the state space stays finite. *)
let send_new p s =
  if s.ns < s.na + p.w && s.ns < p.limit then
    [ { label = Printf.sprintf "send(%d)" s.ns;
        kind = Protocol;
        target = { s with csr = M.add s.ns s.csr; ns = s.ns + 1 } } ]
  else []

(* Action 1: rcv (i, j) -> ackd[i..j] := true; advance na. *)
let recv_ack s =
  List.map
    (fun ((i, j) as ack) ->
      let ackd = Iset.add_range ~lo:i ~hi:j s.ackd in
      let na = advance_na s.na ackd in
      { label = Printf.sprintf "recv_ack(%d,%d)" i j;
        kind = Protocol;
        target = { s with crs = M.remove ack s.crs; ackd; na } })
    (M.distinct s.crs)

(* Action 3: rcv v -> if v < nr then send (v, v) else rcvd[v] := true. *)
let recv_data s =
  List.map
    (fun v ->
      let csr = M.remove v s.csr in
      let target =
        if v < s.nr then { s with csr; crs = M.add (v, v) s.crs }
        else { s with csr; rcvd = Iset.add v s.rcvd }
      in
      { label = Printf.sprintf "recv_data(%d)" v; kind = Protocol; target })
    (M.distinct s.csr)

(* Action 4: rcvd[vr] -> vr := vr + 1. *)
let advance_vr s =
  if Iset.mem s.vr s.rcvd then
    [ { label = Printf.sprintf "advance_vr(%d)" s.vr;
        kind = Protocol;
        target = { s with vr = s.vr + 1 } } ]
  else []

(* Action 5: nr < vr -> send (nr, vr - 1); nr := vr. *)
let send_ack s =
  if s.nr < s.vr then
    [ { label = Printf.sprintf "send_ack(%d,%d)" s.nr (s.vr - 1);
        kind = Protocol;
        target = { s with crs = M.add (s.nr, s.vr - 1) s.crs; nr = s.vr } } ]
  else []

let lose s =
  List.map
    (fun v ->
      { label = Printf.sprintf "lose_data(%d)" v;
        kind = Loss;
        target = { s with csr = M.remove v s.csr } })
    (M.distinct s.csr)
  @ List.map
      (fun ((i, j) as ack) ->
        { label = Printf.sprintf "lose_ack(%d,%d)" i j;
          kind = Loss;
          target = { s with crs = M.remove ack s.crs } })
      (M.distinct s.crs)

let sr_count s m = M.count m s.csr
let rs_count s m = M.filter_count (fun (x, y) -> x <= m && m <= y) s.crs

let view p s =
  {
    Invariant.w = p.w;
    na = s.na;
    ns = s.ns;
    nr = s.nr;
    vr = s.vr;
    ackd = (fun m -> Iset.mem m s.ackd);
    rcvd = (fun m -> Iset.mem m s.rcvd);
    sr_count = sr_count s;
    rs_count = rs_count s;
    horizon = p.limit + p.w + 2;
  }

let measure s = s.na + s.ns + s.nr + s.vr

let pp ppf s =
  Format.fprintf ppf "S{na=%d ns=%d ackd=%a} R{nr=%d vr=%d rcvd=%a} CSR=%a CRS=%a" s.na s.ns
    Iset.pp s.ackd s.nr s.vr Iset.pp s.rcvd
    (M.pp Format.pp_print_int)
    s.csr
    (M.pp (fun ppf (i, j) -> Format.fprintf ppf "(%d,%d)" i j))
    s.crs
