(** The intro's strawman: classic go-back-N with cumulative acks and
    bounded (mod-[n]) wire sequence numbers, run over channels that may
    reorder — the combination the paper shows to be unsafe.

    Ghost (true) sequence numbers travel next to wire numbers so the spec
    can detect the two failure modes directly:

    - the receiver accepts a stale data message whose wire number happens
      to equal [nr mod n] ("wrong accept"), and
    - the sender decodes a stale cumulative ack as a recent one and slides
      its window past messages the receiver never accepted ("over-ack",
      observable as [na > nr], violating the analogue of assertion 6).

    With FIFO channels and [n >= w + 1] this protocol is the textbook
    go-back-N and is safe; the explorer demonstrates that reorder alone
    (no duplication!) breaks it, which is the paper's motivating claim. *)

type msg = { wire : int; ghost : int }

type state = {
  na : int;  (** sender window base (believed acknowledged below) *)
  ns : int;  (** next to send *)
  nr : int;  (** receiver: next in-order sequence to accept *)
  csr : msg Ba_channel.Multiset.t;
  crs : msg Ba_channel.Multiset.t;  (** cumulative acks; ghost = true last-accepted *)
  violated : string option;  (** sticky first safety violation *)
}

module Make (P : sig
  val w : int

  val n : int
  (** wire modulus; textbook go-back-N uses [n = w + 1] *)

  val limit : int
end) : Spec_types.SPEC with type state = state

val default : w:int -> ?n:int -> limit:int -> unit -> Spec_types.spec
(** [n] defaults to [w + 1]. *)
