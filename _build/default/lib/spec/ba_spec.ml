open Spec_types
module M = Ba_channel.Multiset

module Make (P : sig
  val w : int
  val limit : int
end) =
struct
  let params = { Ba_kernel.w = P.w; limit = P.limit }
  let () = Ba_kernel.validate params

  type state = Ba_kernel.state

  let name = Printf.sprintf "blockack-II(w=%d,limit=%d)" P.w P.limit
  let initial = Ba_kernel.initial

  (* Action 2: timeout -> send na. Guard per Section II: outstanding
     messages exist, both channels empty, and every received message is
     acknowledged (¬rcvd[nr]). *)
  let timeout (s : state) =
    if
      s.na <> s.ns && M.is_empty s.csr && M.is_empty s.crs
      && not (Iset.mem s.nr s.rcvd)
    then
      [ { label = Printf.sprintf "timeout->resend(%d)" s.na;
          kind = Protocol;
          target = { s with csr = M.add s.na s.csr } } ]
    else []

  let transitions s =
    Ba_kernel.send_new params s
    @ Ba_kernel.recv_ack s
    @ timeout s
    @ Ba_kernel.recv_data s
    @ Ba_kernel.advance_vr s
    @ Ba_kernel.send_ack s
    @ Ba_kernel.lose s

  let check s = Invariant.check (Ba_kernel.view params s)
  let terminal (s : state) = s.na >= P.limit
  let measure = Ba_kernel.measure
  let pp = Ba_kernel.pp
end

let default ~w ~limit =
  (module Make (struct
    let w = w
    let limit = limit
  end) : Spec_types.SPEC)
