(** Formal model of the Section VI slot-reuse extension.

    The paper sketches a sender that reuses acknowledged positions before
    earlier messages are acknowledged: "suppose message 0 through 5 were
    sent, but only messages 3 through 5 were acknowledged. It would then
    be possible … to reuse positions 3 through 5 for sending more
    messages before messages 0, 1, and 2 were received."

    This spec is the guarded-action form of {!Blockack.Reuse_sender}:

    - the sender may have at most [w] {e unacknowledged} messages, but
      may run ahead of [na] by up to [lead >= w] positions
      ([ns < na + lead]);
    - the receiver buffers a [lead]-wide band ([nr, nr + lead));
    - wire sequence numbers are carried modulo [n >= 2 * lead];
    - retransmission uses the Section IV per-message guard.

    [check] verifies the adapted invariant — assertion 6 with [lead] as
    the band width plus the new resource bound
    [|unacknowledged outstanding|] ≤ [w] — together with assertions 7, 8
    and ghost-checked wire reconstruction. Exhaustive exploration thus
    certifies the extension the same way Sections III–V certify the base
    protocol, including that states with [ns - na > w] (actual reuse)
    are reached. *)

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : Ba_spec_finite.wire_data Ba_channel.Multiset.t;
  crs : Ba_spec_finite.wire_ack Ba_channel.Multiset.t;
}

module Make (P : sig
  val w : int
  (** unacknowledged-message budget *)

  val lead : int
  (** how far [ns] may run ahead of [na]; >= w *)

  val n : int
  (** wire modulus; >= 2 * lead *)

  val limit : int
end) : Spec_types.SPEC with type state = state

val default : w:int -> ?lead:int -> ?n:int -> limit:int -> unit -> Spec_types.spec
(** [lead] defaults to [2 * w]; [n] to [2 * lead]. *)
