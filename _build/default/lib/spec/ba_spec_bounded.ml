open Spec_types
module M = Ba_channel.Multiset

module Make (P : sig
  val w : int
  val n : int
  val limit : int
end) =
struct
  let () =
    if P.w <= 0 then invalid_arg "Ba_spec_bounded: w must be positive";
    if P.n <= 0 || P.n mod P.w <> 0 then
      invalid_arg "Ba_spec_bounded: n must be a positive multiple of w";
    if P.limit < 0 then invalid_arg "Ba_spec_bounded: limit must be >= 0"

  type wire_data = { wv : int; gv : int }
  type wire_ack = { wi : int; wj : int; gi : int; gj : int }

  type state = {
    (* Bounded protocol state: everything a real implementation stores. *)
    bna : int;  (** na mod n *)
    bns : int;  (** ns mod n *)
    backd : Iset.t;  (** w-slot ackd array: set of occupied slots (mod w) *)
    bnr : int;  (** nr mod n *)
    bvr : int;  (** vr mod n *)
    brcvd : Iset.t;  (** w-slot rcvd array: slots of [vr, nr+w) received *)
    csr : wire_data M.t;
    crs : wire_ack M.t;
    (* Ghost state: the paper's unbounded variables, updated in parallel,
       never read by any guard or update. *)
    g_na : int;
    g_ns : int;
    g_ackd : Iset.t;
    g_nr : int;
    g_vr : int;
    g_rcvd : Iset.t;
  }

  let name = Printf.sprintf "blockack-V-bounded(w=%d,n=%d,limit=%d)" P.w P.n P.limit

  let initial =
    {
      bna = 0;
      bns = 0;
      backd = Iset.empty;
      bnr = 0;
      bvr = 0;
      brcvd = Iset.empty;
      csr = M.empty;
      crs = M.empty;
      g_na = 0;
      g_ns = 0;
      g_ackd = Iset.empty;
      g_nr = 0;
      g_vr = 0;
      g_rcvd = Iset.empty;
    }

  let wrap m = Ba_util.Modseq.wrap ~n:P.n m
  let succ m = Ba_util.Modseq.succ ~n:P.n m
  let dist a b = Ba_util.Modseq.distance ~n:P.n a b
  let slot wire = wire mod P.w

  (* Action 0: guard ns < na + w, i.e. forward distance from bna to bns is
     below w. The ghost ns bounds the input sequence (environment bound,
     not protocol state). *)
  let send_new s =
    if dist s.bna s.bns < P.w && s.g_ns < P.limit then
      [ { label = Printf.sprintf "send(%d|w%d)" s.g_ns s.bns;
          kind = Protocol;
          target =
            { s with
              csr = M.add { wv = s.bns; gv = s.g_ns } s.csr;
              bns = succ s.bns;
              g_ns = s.g_ns + 1
            } } ]
    else []

  (* Action 1' with bounded storage: a covered wire number y is relevant
     iff it lies inside the outstanding band [bna, bns); its ackd slot is
     y mod w (sound because w | n). Advancing na clears its slot. *)
  let recv_ack s =
    List.map
      (fun (a : wire_ack) ->
        let covered = dist a.wi a.wj + 1 in
        let outstanding = dist s.bna s.bns in
        let rec mark k backd =
          if k >= covered then backd
          else begin
            let y = wrap (a.wi + k) in
            let backd = if dist s.bna y < outstanding then Iset.add (slot y) backd else backd in
            mark (k + 1) backd
          end
        in
        let backd = mark 0 s.backd in
        let rec advance bna backd g_na =
          if Iset.mem (slot bna) backd then
            advance (succ bna) (Iset.remove (slot bna) backd) (g_na + 1)
          else (bna, backd, g_na)
        in
        let bna, backd, g_na = advance s.bna backd s.g_na in
        let g_ackd = Iset.add_range ~lo:a.gi ~hi:a.gj s.g_ackd in
        { label = Printf.sprintf "recv_ack(w%d,w%d)" a.wi a.wj;
          kind = Protocol;
          target = { s with crs = M.remove a s.crs; backd; bna; g_na; g_ackd } })
      (M.distinct s.crs)

  (* Action 2, simple timeout, all conjuncts bounded:
     na <> ns  ~  bna <> bns (outstanding > 0);
     channels empty  ~  both multisets empty (environment knowledge, as in
     the unbounded spec);
     ¬rcvd[nr]  ~  nr = vr and nr's slot not in the out-of-order array. *)
  let timeout s =
    if
      s.bna <> s.bns && M.is_empty s.csr && M.is_empty s.crs && s.bnr = s.bvr
      && not (Iset.mem (slot s.bnr) s.brcvd)
    then
      [ { label = Printf.sprintf "timeout->resend(w%d)" s.bna;
          kind = Protocol;
          target = { s with csr = M.add { wv = s.bna; gv = s.g_na } s.csr } } ]
    else []

  (* Action 3': classify the wire number by its distance from bnr — below
     w means the new-data band [nr, nr+w), otherwise it is an old
     duplicate from [nr-w, nr) (assertion 11 guarantees nothing else can
     be in transit). *)
  let recv_data s =
    List.map
      (fun (d : wire_data) ->
        let csr = M.remove d s.csr in
        let target =
          if dist s.bnr d.wv < P.w then
            { s with csr; brcvd = Iset.add (slot d.wv) s.brcvd; g_rcvd = Iset.add d.gv s.g_rcvd }
          else
            { s with
              csr;
              crs = M.add { wi = d.wv; wj = d.wv; gi = d.gv; gj = d.gv } s.crs
            }
        in
        { label = Printf.sprintf "recv_data(w%d)" d.wv; kind = Protocol; target })
      (M.distinct s.csr)

  (* Action 4: rcvd[vr mod w] -> advance vr and clear the slot. *)
  let advance_vr s =
    if Iset.mem (slot s.bvr) s.brcvd then
      [ { label = Printf.sprintf "advance_vr(w%d)" s.bvr;
          kind = Protocol;
          target =
            { s with
              brcvd = Iset.remove (slot s.bvr) s.brcvd;
              bvr = succ s.bvr;
              g_vr = s.g_vr + 1
            } } ]
    else []

  (* Action 5: nr < vr ~ bnr <> bvr. *)
  let send_ack s =
    if s.bnr <> s.bvr then
      [ { label = Printf.sprintf "send_ack(w%d,w%d)" s.bnr (wrap (s.bvr - 1));
          kind = Protocol;
          target =
            { s with
              crs =
                M.add
                  { wi = s.bnr; wj = wrap (s.bvr - 1); gi = s.g_nr; gj = s.g_vr - 1 }
                  s.crs;
              bnr = s.bvr;
              g_nr = s.g_vr
            } } ]
    else []

  let lose s =
    List.map
      (fun (d : wire_data) ->
        { label = Printf.sprintf "lose_data(%d)" d.gv;
          kind = Loss;
          target = { s with csr = M.remove d s.csr } })
      (M.distinct s.csr)
    @ List.map
        (fun (a : wire_ack) ->
          { label = Printf.sprintf "lose_ack(%d,%d)" a.gi a.gj;
            kind = Loss;
            target = { s with crs = M.remove a s.crs } })
        (M.distinct s.crs)

  let transitions s =
    send_new s @ recv_ack s @ timeout s @ recv_data s @ advance_vr s @ send_ack s @ lose s

  (* -------------------------------------------------------------- *)
  (* The refinement check: bounded state ≡ ghost state. *)

  let fail fmt = Format.kasprintf (fun m -> Some m) fmt

  let slots_of predicate lo hi =
    let rec go m acc = if m >= hi then acc else go (m + 1) (if predicate m then Iset.add (m mod P.w) acc else acc) in
    go (max 0 lo) Iset.empty

  let refinement s =
    if s.bna <> wrap s.g_na then fail "refinement: bna=%d <> na mod n=%d" s.bna (wrap s.g_na)
    else if s.bns <> wrap s.g_ns then fail "refinement: bns=%d <> ns mod n" s.bns
    else if s.bnr <> wrap s.g_nr then fail "refinement: bnr=%d <> nr mod n" s.bnr
    else if s.bvr <> wrap s.g_vr then fail "refinement: bvr=%d <> vr mod n" s.bvr
    else begin
      let expected_ackd = slots_of (fun m -> Iset.mem m s.g_ackd && m >= s.g_na) s.g_na s.g_ns in
      if s.backd <> expected_ackd then
        fail "refinement: ackd slots %a <> ghost %a" Iset.pp s.backd Iset.pp expected_ackd
      else begin
        let expected_rcvd =
          slots_of (fun m -> Iset.mem m s.g_rcvd && m >= s.g_vr) s.g_vr (s.g_nr + P.w)
        in
        if s.brcvd <> expected_rcvd then
          fail "refinement: rcvd slots %a <> ghost %a" Iset.pp s.brcvd Iset.pp expected_rcvd
        else None
      end
    end

  let reconstruction s =
    let bad_data =
      M.distinct s.csr |> List.find_opt (fun (d : wire_data) -> d.wv <> wrap d.gv)
    in
    match bad_data with
    | Some d -> fail "wire: data carries w%d but truth %d" d.wv d.gv
    | None -> (
        match
          M.distinct s.crs
          |> List.find_opt (fun (a : wire_ack) -> a.wi <> wrap a.gi || a.wj <> wrap a.gj)
        with
        | Some a -> fail "wire: ack carries (w%d,w%d) but truth (%d,%d)" a.wi a.wj a.gi a.gj
        | None -> None)

  let ghost_view s =
    {
      Invariant.w = P.w;
      na = s.g_na;
      ns = s.g_ns;
      nr = s.g_nr;
      vr = s.g_vr;
      ackd = (fun m -> Iset.mem m s.g_ackd);
      rcvd = (fun m -> Iset.mem m s.g_rcvd);
      sr_count = (fun m -> M.filter_count (fun (d : wire_data) -> d.gv = m) s.csr);
      rs_count = (fun m -> M.filter_count (fun (a : wire_ack) -> a.gi <= m && m <= a.gj) s.crs);
      horizon = P.limit + P.w + 2;
    }

  let check s =
    match refinement s with
    | Some _ as e -> e
    | None -> (
        match reconstruction s with
        | Some _ as e -> e
        | None -> Invariant.check (ghost_view s))

  let terminal s = s.g_na >= P.limit
  let measure s = s.g_na + s.g_ns + s.g_nr + s.g_vr

  let pp ppf s =
    Format.fprintf ppf
      "S{bna=%d bns=%d ackd=%a | na=%d ns=%d} R{bnr=%d bvr=%d rcvd=%a | nr=%d vr=%d} CSR=%a CRS=%a"
      s.bna s.bns Iset.pp s.backd s.g_na s.g_ns s.bnr s.bvr Iset.pp s.brcvd s.g_nr s.g_vr
      (M.pp (fun ppf (d : wire_data) -> Format.fprintf ppf "%d|w%d" d.gv d.wv))
      s.csr
      (M.pp (fun ppf (a : wire_ack) -> Format.fprintf ppf "(%d,%d)|w(%d,%d)" a.gi a.gj a.wi a.wj))
      s.crs
end

let default ~w ?n ~limit () =
  let n = match n with Some n -> n | None -> 2 * w in
  (module Make (struct
    let w = w
    let n = n
    let limit = limit
  end) : Spec_types.SPEC)
