lib/spec/ba_reuse_spec.ml: Ba_channel Ba_spec_finite Ba_util Format Invariant Iset List Printf Spec_types
