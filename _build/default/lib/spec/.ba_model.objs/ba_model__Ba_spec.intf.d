lib/spec/ba_spec.mli: Ba_kernel Spec_types
