lib/spec/ba_kernel.ml: Ba_channel Format Invariant Iset List Printf Spec_types
