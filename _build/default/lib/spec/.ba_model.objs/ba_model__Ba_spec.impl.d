lib/spec/ba_spec.ml: Ba_channel Ba_kernel Invariant Iset Printf Spec_types
