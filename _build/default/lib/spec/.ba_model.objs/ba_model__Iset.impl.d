lib/spec/iset.ml: Format List String
