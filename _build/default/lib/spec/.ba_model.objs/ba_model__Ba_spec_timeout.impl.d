lib/spec/ba_spec_timeout.ml: Ba_channel Ba_kernel Invariant Iset List Printf Spec_types
