lib/spec/iset.mli: Format
