lib/spec/gbn_bounded_spec.mli: Ba_channel Spec_types
