lib/spec/ba_spec_bounded.ml: Ba_channel Ba_util Format Invariant Iset List Printf Spec_types
