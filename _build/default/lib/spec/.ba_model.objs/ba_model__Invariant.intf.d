lib/spec/invariant.mli:
