lib/spec/ba_spec_finite.ml: Ba_channel Ba_util Format Invariant Iset List Printf Spec_types
