lib/spec/ba_spec_bounded.mli: Spec_types
