lib/spec/ba_spec_finite.mli: Ba_channel Iset Spec_types
