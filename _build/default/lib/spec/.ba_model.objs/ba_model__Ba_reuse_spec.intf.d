lib/spec/ba_reuse_spec.mli: Ba_channel Ba_spec_finite Iset Spec_types
