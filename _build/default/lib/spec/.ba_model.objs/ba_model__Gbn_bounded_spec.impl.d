lib/spec/gbn_bounded_spec.ml: Ba_channel Ba_util Format List Printf Spec_types
