lib/spec/spec_types.ml: Format
