lib/spec/spec_types.mli: Format
