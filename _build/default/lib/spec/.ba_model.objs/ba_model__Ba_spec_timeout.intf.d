lib/spec/ba_spec_timeout.mli: Ba_kernel Spec_types
