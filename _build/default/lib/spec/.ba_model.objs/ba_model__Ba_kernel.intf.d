lib/spec/ba_kernel.mli: Ba_channel Format Invariant Iset Spec_types
