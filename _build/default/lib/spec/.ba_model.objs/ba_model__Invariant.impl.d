lib/spec/invariant.ml: Format
