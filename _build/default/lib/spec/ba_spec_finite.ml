open Spec_types
module M = Ba_channel.Multiset

type wire_data = { wv : int; gv : int }

type wire_ack = { wi : int; wj : int; gi : int; gj : int }

type state = {
  na : int;
  ns : int;
  ackd : Iset.t;
  nr : int;
  vr : int;
  rcvd : Iset.t;
  csr : wire_data M.t;
  crs : wire_ack M.t;
}

module Make (P : sig
  val w : int
  val n : int
  val limit : int
end) =
struct
  let () =
    if P.w <= 0 then invalid_arg "Ba_spec_finite: w must be positive";
    if P.n <= 0 then invalid_arg "Ba_spec_finite: n must be positive";
    if P.limit < 0 then invalid_arg "Ba_spec_finite: limit must be >= 0"

  type nonrec state = state

  let name = Printf.sprintf "blockack-V(w=%d,n=%d,limit=%d)" P.w P.n P.limit

  let initial =
    {
      na = 0;
      ns = 0;
      ackd = Iset.empty;
      nr = 0;
      vr = 0;
      rcvd = Iset.empty;
      csr = M.empty;
      crs = M.empty;
    }

  let wrap m = Ba_util.Modseq.wrap ~n:P.n m
  let reconstruct ~ref_ wire = Ba_util.Modseq.reconstruct ~n:P.n ~ref_ wire

  (* Anchors of the paper's reconstruction: the sender decodes ack numbers
     relative to na (assertions 9, 10); the receiver decodes data numbers
     relative to max(0, nr - w) (assertion 11). *)
  let sender_decode s wire = reconstruct ~ref_:s.na wire
  let receiver_decode s wire = reconstruct ~ref_:(max 0 (s.nr - P.w)) wire

  let data ~gv = { wv = wrap gv; gv }
  let ack ~gi ~gj = { wi = wrap gi; wj = wrap gj; gi; gj }

  (* Action 0': wire carries ns mod n. *)
  let send_new s =
    if s.ns < s.na + P.w && s.ns < P.limit then
      [ { label = Printf.sprintf "send(%d|w%d)" s.ns (wrap s.ns);
          kind = Protocol;
          target = { s with csr = M.add (data ~gv:s.ns) s.csr; ns = s.ns + 1 } } ]
    else []

  let rec advance_na na ackd = if Iset.mem na ackd then advance_na (na + 1) ackd else na

  (* Action 1': i := f(na, wi), j := f(na, wj); then as action 1. *)
  let recv_ack s =
    List.map
      (fun a ->
        let i = sender_decode s a.wi and j = sender_decode s a.wj in
        let ackd = Iset.add_range ~lo:i ~hi:j s.ackd in
        let na = advance_na s.na ackd in
        { label = Printf.sprintf "recv_ack(w%d,w%d->%d,%d)" a.wi a.wj i j;
          kind = Protocol;
          target = { s with crs = M.remove a s.crs; ackd; na } })
      (M.distinct s.crs)

  (* Action 2: simple timeout, resending na (wire na mod n). *)
  let timeout s =
    if s.na <> s.ns && M.is_empty s.csr && M.is_empty s.crs && not (Iset.mem s.nr s.rcvd)
    then
      [ { label = Printf.sprintf "timeout->resend(%d|w%d)" s.na (wrap s.na);
          kind = Protocol;
          target = { s with csr = M.add (data ~gv:s.na) s.csr } } ]
    else []

  (* Action 3': v := f(max(0, nr - w), wv); then as action 3. The duplicate
     acknowledgment echoes the wire number (ghost = reconstructed value). *)
  let recv_data s =
    List.map
      (fun d ->
        let v = receiver_decode s d.wv in
        let csr = M.remove d s.csr in
        let target =
          if v < s.nr then { s with csr; crs = M.add (ack ~gi:v ~gj:v) s.crs }
          else { s with csr; rcvd = Iset.add v s.rcvd }
        in
        { label = Printf.sprintf "recv_data(w%d->%d)" d.wv v; kind = Protocol; target })
      (M.distinct s.csr)

  let advance_vr s =
    if Iset.mem s.vr s.rcvd then
      [ { label = Printf.sprintf "advance_vr(%d)" s.vr;
          kind = Protocol;
          target = { s with vr = s.vr + 1 } } ]
    else []

  let send_ack s =
    if s.nr < s.vr then
      [ { label = Printf.sprintf "send_ack(%d,%d)" s.nr (s.vr - 1);
          kind = Protocol;
          target = { s with crs = M.add (ack ~gi:s.nr ~gj:(s.vr - 1)) s.crs; nr = s.vr } } ]
    else []

  let lose s =
    List.map
      (fun d ->
        { label = Printf.sprintf "lose_data(%d)" d.gv;
          kind = Loss;
          target = { s with csr = M.remove d s.csr } })
      (M.distinct s.csr)
    @ List.map
        (fun a ->
          { label = Printf.sprintf "lose_ack(%d,%d)" a.gi a.gj;
            kind = Loss;
            target = { s with crs = M.remove a s.crs } })
        (M.distinct s.crs)

  let transitions s =
    send_new s @ recv_ack s @ timeout s @ recv_data s @ advance_vr s @ send_ack s @ lose s

  (* Reconstruction soundness: decoding any in-transit message right now
     must recover its ghost. With n >= 2w this follows from the paper's
     assertions 9-11; with n < 2w the explorer finds a failing state. *)
  let reconstruction_ok s =
    let bad_data =
      M.distinct s.csr
      |> List.find_opt (fun d -> receiver_decode s d.wv <> d.gv)
    in
    match bad_data with
    | Some d ->
        Some
          (Printf.sprintf "reconstruction: data wire=%d decodes to %d, truth %d (nr=%d)" d.wv
             (receiver_decode s d.wv) d.gv s.nr)
    | None -> (
        let bad_ack =
          M.distinct s.crs
          |> List.find_opt (fun a ->
                 sender_decode s a.wi <> a.gi || sender_decode s a.wj <> a.gj)
        in
        match bad_ack with
        | Some a ->
            Some
              (Printf.sprintf
                 "reconstruction: ack wire=(%d,%d) decodes to (%d,%d), truth (%d,%d) (na=%d)"
                 a.wi a.wj (sender_decode s a.wi) (sender_decode s a.wj) a.gi a.gj s.na)
        | None -> None)

  let view s =
    {
      Invariant.w = P.w;
      na = s.na;
      ns = s.ns;
      nr = s.nr;
      vr = s.vr;
      ackd = (fun m -> Iset.mem m s.ackd);
      rcvd = (fun m -> Iset.mem m s.rcvd);
      sr_count = (fun m -> M.filter_count (fun d -> d.gv = m) s.csr);
      rs_count = (fun m -> M.filter_count (fun a -> a.gi <= m && m <= a.gj) s.crs);
      horizon = P.limit + P.w + 2;
    }

  let check s =
    match reconstruction_ok s with Some _ as e -> e | None -> Invariant.check (view s)

  let terminal s = s.na >= P.limit
  let measure s = s.na + s.ns + s.nr + s.vr

  let pp ppf s =
    Format.fprintf ppf "S{na=%d ns=%d ackd=%a} R{nr=%d vr=%d rcvd=%a} CSR=%a CRS=%a" s.na s.ns
      Iset.pp s.ackd s.nr s.vr Iset.pp s.rcvd
      (M.pp (fun ppf d -> Format.fprintf ppf "%d|w%d" d.gv d.wv))
      s.csr
      (M.pp (fun ppf a -> Format.fprintf ppf "(%d,%d)|w(%d,%d)" a.gi a.gj a.wi a.wj))
      s.crs
end

let default ~w ?n ~limit () =
  let n = match n with Some n -> n | None -> 2 * w in
  (module Make (struct
    let w = w
    let n = n
    let limit = limit
  end) : Spec_types.SPEC)
