open Spec_types

module Make (P : sig
  val w : int
  val limit : int
end) =
struct
  let params = { Ba_kernel.w = P.w; limit = P.limit }
  let () = Ba_kernel.validate params

  type state = Ba_kernel.state

  let name = Printf.sprintf "blockack-IV(w=%d,limit=%d)" P.w P.limit
  let initial = Ba_kernel.initial

  (* Action 2': timeout(i) -> send i, for every i with
       na <= i < ns  ∧  ¬ackd[i]          (outstanding, unacknowledged)
       ∧ #SR(i) = 0                        (no data copy in transit)
       ∧ (i < nr ∨ ¬rcvd[i])              (receiver cannot acknowledge it)
       ∧ #RS(i) = 0                        (no covering ack in transit). *)
  let timeout_enabled (s : state) i =
    i >= s.na && i < s.ns
    && (not (Iset.mem i s.ackd))
    && Ba_kernel.sr_count s i = 0
    && (i < s.nr || not (Iset.mem i s.rcvd))
    && Ba_kernel.rs_count s i = 0

  let timeout (s : state) =
    let rec each i acc =
      if i >= s.ns then List.rev acc
      else begin
        let acc =
          if timeout_enabled s i then
            { label = Printf.sprintf "timeout(%d)->resend(%d)" i i;
              kind = Protocol;
              target = { s with csr = Ba_channel.Multiset.add i s.csr } }
            :: acc
          else acc
        in
        each (i + 1) acc
      end
    in
    each s.na []

  let transitions s =
    Ba_kernel.send_new params s
    @ Ba_kernel.recv_ack s
    @ timeout s
    @ Ba_kernel.recv_data s
    @ Ba_kernel.advance_vr s
    @ Ba_kernel.send_ack s
    @ Ba_kernel.lose s

  let check s = Invariant.check (Ba_kernel.view params s)
  let terminal (s : state) = s.na >= P.limit
  let measure = Ba_kernel.measure
  let pp = Ba_kernel.pp
end

let default ~w ~limit =
  (module Make (struct
    let w = w
    let limit = limit
  end) : Spec_types.SPEC)
