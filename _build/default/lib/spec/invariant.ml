type view = {
  w : int;
  na : int;
  ns : int;
  nr : int;
  vr : int;
  ackd : int -> bool;
  rcvd : int -> bool;
  sr_count : int -> int;
  rs_count : int -> int;
  horizon : int;
}

let fail fmt = Format.kasprintf (fun s -> Some s) fmt

let forall v p describe =
  let rec go m = if m >= v.horizon then None else if p m then go (m + 1) else describe m in
  go 0

let assertion_6 v =
  if not (v.na <= v.nr) then fail "6: na=%d > nr=%d" v.na v.nr
  else if not (v.nr <= v.vr) then fail "6: nr=%d > vr=%d" v.nr v.vr
  else if not (v.vr <= v.ns) then fail "6: vr=%d > ns=%d" v.vr v.ns
  else if not (v.ns <= v.na + v.w) then fail "6: ns=%d > na+w=%d" v.ns (v.na + v.w)
  else None

let assertion_7 v =
  match
    forall v
      (fun m -> v.ackd m || m >= v.na)
      (fun m -> fail "7: m=%d < na=%d but not ackd" m v.na)
  with
  | Some _ as e -> e
  | None -> (
      match
        forall v
          (fun m -> (not (v.ackd m)) || m < v.nr)
          (fun m -> fail "7: ackd %d but m >= nr=%d" m v.nr)
      with
      | Some _ as e -> e
      | None ->
          if v.ackd v.na then fail "7: ackd[na=%d] holds" v.na
          else begin
            match
              forall v
                (fun m -> (not (v.rcvd m)) || m < v.ns)
                (fun m -> fail "7: rcvd %d but m >= ns=%d" m v.ns)
            with
            | Some _ as e -> e
            | None ->
                forall v
                  (fun m -> v.rcvd m || m >= v.vr)
                  (fun m -> fail "7: m=%d < vr=%d but not rcvd" m v.vr)
          end)

let assertion_8 v =
  match
    forall v
      (fun m -> v.sr_count m + v.rs_count m <= 1)
      (fun m -> fail "8: %d copies in transit for m=%d" (v.sr_count m + v.rs_count m) m)
  with
  | Some _ as e -> e
  | None -> (
      match
        forall v
          (fun m ->
            v.sr_count m = 0
            || (m < v.ns && (not (v.ackd m)) && (m < v.nr || not (v.rcvd m))))
          (fun m ->
            fail "8: in-transit data %d violates (m<ns && !ackd && (m<nr || !rcvd))" m)
      with
      | Some _ as e -> e
      | None ->
          forall v
            (fun m -> v.rs_count m = 0 || (m < v.nr && not (v.ackd m)))
            (fun m -> fail "8: in-transit ack covers %d but not (m<nr && !ackd)" m))

let check v =
  match assertion_6 v with
  | Some _ as e -> e
  | None -> ( match assertion_7 v with Some _ as e -> e | None -> assertion_8 v)
