type step = { label : string; state_repr : string; check : string option }

type outcome = {
  steps : step list;
  first_violation : (int * string) option;
  failed_at : (int * string) option;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

module Make (S : Ba_model.Spec_types.SPEC) = struct
  let render state = Format.asprintf "%a" S.pp state

  let replay script =
    let rec go index state script steps violation =
      match script with
      | [] -> (List.rev steps, violation, None)
      | wanted :: rest -> (
          let transitions = S.transitions state in
          match
            List.find_opt
              (fun { Ba_model.Spec_types.label; _ } -> starts_with ~prefix:wanted label)
              transitions
          with
          | None -> (List.rev steps, violation, Some (index, wanted))
          | Some { label; target; _ } ->
              let check = S.check target in
              let violation =
                match (violation, check) with
                | None, Some msg -> Some (index, msg)
                | v, _ -> v
              in
              go (index + 1) target rest
                ({ label; state_repr = render target; check } :: steps)
                violation)
    in
    let steps, first_violation, failed_at = go 0 S.initial script [] None in
    { steps; first_violation; failed_at }

  let final_state script =
    let rec go state = function
      | [] -> Some state
      | wanted :: rest -> (
          match
            List.find_opt
              (fun { Ba_model.Spec_types.label; _ } -> starts_with ~prefix:wanted label)
              (S.transitions state)
          with
          | None -> None
          | Some { target; _ } -> go target rest)
    in
    go S.initial script
end

let pp_outcome ppf o =
  List.iteri
    (fun i { label; state_repr; check } ->
      Format.fprintf ppf "%2d %-28s %s%s@\n" i label state_repr
        (match check with None -> "" | Some msg -> "  !! " ^ msg))
    o.steps;
  (match o.failed_at with
  | None -> ()
  | Some (i, wanted) -> Format.fprintf ppf "stuck at script step %d: no transition matches %S@\n" i wanted);
  match o.first_violation with
  | None -> Format.fprintf ppf "no invariant violation@\n"
  | Some (i, msg) -> Format.fprintf ppf "violation at step %d: %s@\n" i msg
