(** Explicit-state model checker for protocol specs.

    Breadth-first exploration of a {!Ba_model.Spec_types.SPEC} transition
    system. At every reachable state it evaluates [S.check] (the paper's
    invariant, assertions 6–8, plus variant-specific soundness checks) and
    that the progress measure never decreases along protocol transitions.
    On a violation it stops and reconstructs the shortest counterexample
    path. After a clean, uncapped exploration it can additionally verify
    the paper's progress property: from every reachable state some
    terminal state is reachable using protocol actions only (no further
    loss) — the mechanical form of Section III-C's "progress holds during
    loss-free periods". *)

type path_step = { label : string; state_repr : string }

type result = {
  spec_name : string;
  state_count : int;
  transition_count : int;
  max_depth : int;
  terminal_count : int;
  deadlock_count : int;  (** non-terminal states with no enabled action *)
  violation : (string * path_step list) option;
      (** invariant failure message and shortest path from the initial
          state ([label = "<init>"] on the first step) *)
  capped : bool;  (** exploration stopped at [max_states] *)
  live : bool option;
      (** [Some true]: every reachable state can loss-free-reach a
          terminal state. [None] when capped, violated, or not requested *)
  stuck_example : string option;
      (** a rendered state with no loss-free path to a terminal state *)
}

module Make (S : Ba_model.Spec_types.SPEC) : sig
  val run : ?max_states:int -> ?check_liveness:bool -> unit -> result
  (** Defaults: [max_states = 2_000_000], [check_liveness = true]. *)
end

val pp_result : Format.formatter -> result -> unit
(** Human-readable multi-line report, counterexample included. *)

val run_spec : ?max_states:int -> ?check_liveness:bool -> Ba_model.Spec_types.spec -> result
(** First-class-module convenience wrapper. *)
