type path_step = { label : string; state_repr : string }

type result = {
  spec_name : string;
  state_count : int;
  transition_count : int;
  max_depth : int;
  terminal_count : int;
  deadlock_count : int;
  violation : (string * path_step list) option;
  capped : bool;
  live : bool option;
  stuck_example : string option;
}

module Make (S : Ba_model.Spec_types.SPEC) = struct
  let render state = Format.asprintf "%a" S.pp state

  (* Shortest path from the initial state, following parent pointers. *)
  let path_to parents states id =
    let rec walk id acc =
      match Hashtbl.find_opt parents id with
      | None -> { label = "<init>"; state_repr = render (Hashtbl.find states id) } :: acc
      | Some (pid, label) ->
          walk pid ({ label; state_repr = render (Hashtbl.find states id) } :: acc)
    in
    walk id []

  let run ?(max_states = 2_000_000) ?(check_liveness = true) () =
    let ids : (S.state, int) Hashtbl.t = Hashtbl.create 4096 in
    let states : (int, S.state) Hashtbl.t = Hashtbl.create 4096 in
    let parents : (int, int * string) Hashtbl.t = Hashtbl.create 4096 in
    let depth : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    (* Protocol-only (loss-free) forward edges, for the liveness pass. *)
    let proto_edges : (int, int list) Hashtbl.t = Hashtbl.create 4096 in
    let queue = Queue.create () in
    let transition_count = ref 0 in
    let terminal_count = ref 0 in
    let deadlock_count = ref 0 in
    let max_depth = ref 0 in
    let violation = ref None in
    let capped = ref false in
    let intern state =
      match Hashtbl.find_opt ids state with
      | Some id -> (id, false)
      | None ->
          let id = Hashtbl.length ids in
          Hashtbl.add ids state id;
          Hashtbl.add states id state;
          (id, true)
    in
    let record_violation id msg = violation := Some (msg, path_to parents states id) in
    let id0, _ = intern S.initial in
    Hashtbl.add depth id0 0;
    (match S.check S.initial with None -> () | Some msg -> record_violation id0 msg);
    Queue.add id0 queue;
    while !violation = None && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let state = Hashtbl.find states id in
      let d = Hashtbl.find depth id in
      if d > !max_depth then max_depth := d;
      if S.terminal state then incr terminal_count;
      let transitions = S.transitions state in
      if transitions = [] && not (S.terminal state) then incr deadlock_count;
      let proto_targets = ref [] in
      List.iter
        (fun { Ba_model.Spec_types.label; kind; target } ->
          if !violation = None then begin
            incr transition_count;
            (* The paper's progress measure only ever increases along
               protocol actions; catch any transcription error. *)
            (if kind = Ba_model.Spec_types.Protocol && S.measure target < S.measure state then
               record_violation id
                 (Printf.sprintf "measure decreased from %d to %d on %s" (S.measure state)
                    (S.measure target) label));
            if !violation = None then begin
              let tid, fresh = intern target in
              if kind = Ba_model.Spec_types.Protocol then proto_targets := tid :: !proto_targets;
              if fresh then begin
                if Hashtbl.length ids > max_states then capped := true
                else begin
                  Hashtbl.add parents tid (id, label);
                  Hashtbl.add depth tid (d + 1);
                  match S.check target with
                  | Some msg -> record_violation tid msg
                  | None -> Queue.add tid queue
                end
              end
            end
          end)
        transitions;
      Hashtbl.add proto_edges id !proto_targets
    done;
    let live, stuck_example =
      if (not check_liveness) || !violation <> None || !capped then (None, None)
      else begin
        (* Backward reachability from terminal states over loss-free
           edges: a state outside the backward-reachable set can never
           complete the transfer even if no further message is lost. *)
        let n = Hashtbl.length states in
        let reverse : (int, int list) Hashtbl.t = Hashtbl.create n in
        Hashtbl.iter
          (fun src targets ->
            List.iter
              (fun dst ->
                Hashtbl.replace reverse dst (src :: Option.value ~default:[] (Hashtbl.find_opt reverse dst)))
              targets)
          proto_edges;
        let reach_terminal = Array.make n false in
        let back = Queue.create () in
        Hashtbl.iter
          (fun id state ->
            if S.terminal state then begin
              reach_terminal.(id) <- true;
              Queue.add id back
            end)
          states;
        while not (Queue.is_empty back) do
          let id = Queue.pop back in
          List.iter
            (fun pred ->
              if not reach_terminal.(pred) then begin
                reach_terminal.(pred) <- true;
                Queue.add pred back
              end)
            (Option.value ~default:[] (Hashtbl.find_opt reverse id))
        done;
        let stuck = ref None in
        Array.iteri
          (fun id ok -> if (not ok) && !stuck = None then stuck := Some (render (Hashtbl.find states id)))
          reach_terminal;
        (Some (!stuck = None), !stuck)
      end
    in
    {
      spec_name = S.name;
      state_count = Hashtbl.length states;
      transition_count = !transition_count;
      max_depth = !max_depth;
      terminal_count = !terminal_count;
      deadlock_count = !deadlock_count;
      violation = !violation;
      capped = !capped;
      live;
      stuck_example;
    }
end

let pp_result ppf r =
  Format.fprintf ppf "spec: %s@\nstates: %d  transitions: %d  max depth: %d@\n" r.spec_name
    r.state_count r.transition_count r.max_depth;
  Format.fprintf ppf "terminal states: %d  deadlocks: %d  capped: %b@\n" r.terminal_count
    r.deadlock_count r.capped;
  (match r.live with
  | Some true -> Format.fprintf ppf "progress: every state can complete loss-free@\n"
  | Some false ->
      Format.fprintf ppf "progress: VIOLATED — stuck state:@\n  %s@\n"
        (Option.value ~default:"?" r.stuck_example)
  | None -> Format.fprintf ppf "progress: not checked@\n");
  match r.violation with
  | None -> Format.fprintf ppf "invariant: HOLDS at every reachable state@\n"
  | Some (msg, path) ->
      Format.fprintf ppf "invariant: VIOLATED — %s@\ncounterexample (%d steps):@\n" msg
        (List.length path - 1);
      List.iter
        (fun { label; state_repr } -> Format.fprintf ppf "  %-28s %s@\n" label state_repr)
        path

let run_spec ?max_states ?check_liveness (module S : Ba_model.Spec_types.SPEC) =
  let module E = Make (S) in
  E.run ?max_states ?check_liveness ()
