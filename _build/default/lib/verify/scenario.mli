(** Scripted interleavings: drive a spec through a chosen sequence of
    transitions and watch the invariants.

    This is how the paper's Section I scenario is replayed verbatim: each
    script entry selects, by label prefix, which enabled transition fires
    next. Used by tests and by experiment T1. *)

type step = { label : string; state_repr : string; check : string option }

type outcome = {
  steps : step list;  (** one per executed transition, in order *)
  first_violation : (int * string) option;
      (** index into [steps] and the message, if any check failed *)
  failed_at : (int * string) option;
      (** script index and requested label when no enabled transition
          matched; [None] when the whole script ran *)
}

module Make (S : Ba_model.Spec_types.SPEC) : sig
  val replay : string list -> outcome
  (** [replay script] starts from [S.initial] and, for each script entry,
      fires the first enabled transition whose label starts with that
      entry. Checks [S.check] after every step. *)

  val final_state : string list -> S.state option
  (** The state after a fully applied script, [None] if it got stuck. *)
end

val pp_outcome : Format.formatter -> outcome -> unit
