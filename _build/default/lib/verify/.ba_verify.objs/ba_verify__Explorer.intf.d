lib/verify/explorer.mli: Ba_model Format
