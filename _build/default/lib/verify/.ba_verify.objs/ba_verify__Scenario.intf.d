lib/verify/scenario.mli: Ba_model Format
