lib/verify/explorer.ml: Array Ba_model Format Hashtbl List Option Printf Queue
