lib/verify/scenario.ml: Ba_model Format List String
