(** Immutable multiset — the paper's formal channel.

    Section II defines each channel "as a set of messages whose membership
    changes as new messages are sent into it or as old messages are lost or
    received from it"; receive picks an arbitrary element. A canonical
    sorted representation makes states directly comparable and hashable,
    which the model checker depends on.

    Elements are compared with the polymorphic [compare]; use only simple
    immutable element types (the specs use ints and int pairs). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int
(** Total multiplicity. *)

val add : 'a -> 'a t -> 'a t
val remove : 'a -> 'a t -> 'a t
(** Remove one occurrence; no-op when absent. *)

val mem : 'a -> 'a t -> bool
val count : 'a -> 'a t -> int

val distinct : 'a t -> 'a list
(** Distinct elements in increasing order. *)

val elements : 'a t -> 'a list
(** All elements with multiplicity, increasing order. *)

val fold : ('a -> int -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over (element, multiplicity). *)

val for_all : ('a -> bool) -> 'a t -> bool
val exists : ('a -> bool) -> 'a t -> bool
val filter_count : ('a -> bool) -> 'a t -> int
(** Total multiplicity of elements satisfying the predicate. *)

val of_list : 'a list -> 'a t
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
