(* Canonical representation: association list sorted by element, counts > 0.
   Structural equality/compare/hash on [t] then agree with multiset
   equality, which the explorer's hash table requires. *)
type 'a t = ('a * int) list

let empty = []
let is_empty t = t = []
let cardinal t = List.fold_left (fun acc (_, k) -> acc + k) 0 t

let rec add x = function
  | [] -> [ (x, 1) ]
  | (y, k) :: rest as all ->
      let c = compare x y in
      if c = 0 then (y, k + 1) :: rest
      else if c < 0 then (x, 1) :: all
      else (y, k) :: add x rest

let rec remove x = function
  | [] -> []
  | (y, k) :: rest ->
      let c = compare x y in
      if c = 0 then if k = 1 then rest else (y, k - 1) :: rest
      else if c < 0 then (y, k) :: rest
      else (y, k) :: remove x rest

let rec count x = function
  | [] -> 0
  | (y, k) :: rest ->
      let c = compare x y in
      if c = 0 then k else if c < 0 then 0 else count x rest

let mem x t = count x t > 0
let distinct t = List.map fst t
let elements t = List.concat_map (fun (x, k) -> List.init k (fun _ -> x)) t
let fold f t acc = List.fold_left (fun acc (x, k) -> f x k acc) acc t
let for_all p t = List.for_all (fun (x, _) -> p x) t
let exists p t = List.exists (fun (x, _) -> p x) t
let filter_count p t = List.fold_left (fun acc (x, k) -> if p x then acc + k else acc) 0 t
let of_list xs = List.fold_left (fun t x -> add x t) empty xs

let pp pp_elt ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (x, k) ->
      if i > 0 then Format.fprintf ppf ", ";
      if k = 1 then pp_elt ppf x else Format.fprintf ppf "%a x%d" pp_elt x k)
    t;
  Format.fprintf ppf "}"
