(** Simulated unidirectional link: loses and reorders, never duplicates.

    This is the paper's channel model under the discrete-event engine:
    each message independently suffers Bernoulli loss and a random delay
    drawn from a bounded distribution. Independent delays mean later
    messages can overtake earlier ones — exactly "message disorder". The
    link never duplicates (the paper's channels are sets; at most one
    copy of a sent message is ever in transit).

    A programmable fault hook supports scripted experiments (e.g. "drop
    the third acknowledgment") on top of the random loss. *)

type 'a t

type 'a verdict = Deliver | Drop

type stats = {
  sent : int;
  delivered : int;
  dropped : int;  (** random loss + fault-hook drops *)
  queue_dropped : int;  (** tail drops at the bottleneck queue *)
  reordered : int;  (** deliveries overtaken by a later-sent message *)
}

val create :
  Ba_sim.Engine.t ->
  ?loss:float ->
  ?delay:Dist.t ->
  ?bottleneck:int * int ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~loss ~delay ~deliver ()] builds a link that calls
    [deliver] at arrival time. Defaults: [loss = 0.], [delay = Constant 1].
    The link draws from its own split of the engine's random stream.

    [bottleneck:(service_time, queue_capacity)] models a congestible
    router in front of the propagation delay: messages are serviced one
    per [service_time] ticks from a FIFO queue of at most
    [queue_capacity]; arrivals to a full queue are tail-dropped (counted
    in [queue_dropped]). This makes loss *load-dependent*, which is what
    variable-window (congestion-control) experiments need. *)

val queue_length : 'a t -> int
(** Messages waiting at the bottleneck (0 when none configured). *)

val send : 'a t -> 'a -> unit

val set_fault : 'a t -> ('a -> 'a verdict) -> unit
(** Install a hook consulted at send time after random loss; [Drop]
    discards the message (counted in [dropped]). *)

val clear_fault : 'a t -> unit

val in_flight : 'a t -> int
(** Messages currently in transit. *)

val max_delay : 'a t -> int
(** The delay distribution's bound — what a conservative timeout needs. *)

val stats : 'a t -> stats
val loss : 'a t -> float
