lib/channel/multiset.ml: Format List
