lib/channel/link.mli: Ba_sim Dist
