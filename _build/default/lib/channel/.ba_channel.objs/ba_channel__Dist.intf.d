lib/channel/dist.mli: Ba_util Format
