lib/channel/dist.ml: Ba_util Float Format
