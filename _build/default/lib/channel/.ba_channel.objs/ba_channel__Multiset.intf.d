lib/channel/multiset.mli: Format
