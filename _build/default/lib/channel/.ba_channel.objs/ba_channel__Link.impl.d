lib/channel/link.ml: Ba_sim Ba_util Dist Queue
