type t =
  | Constant of int
  | Uniform of int * int
  | Truncated_exp of { mean : float; cap : int }

let validate = function
  | Constant d -> if d < 0 then invalid_arg "Dist: negative delay"
  | Uniform (lo, hi) -> if lo < 0 || hi < lo then invalid_arg "Dist: bad uniform range"
  | Truncated_exp { mean; cap } ->
      if mean <= 0. || cap < 0 then invalid_arg "Dist: bad truncated exponential"

let sample t rng =
  validate t;
  match t with
  | Constant d -> d
  | Uniform (lo, hi) -> Ba_util.Rng.int_in rng lo hi
  | Truncated_exp { mean; cap } ->
      min cap (int_of_float (Ba_util.Rng.exponential rng mean))

let max_delay = function
  | Constant d -> d
  | Uniform (_, hi) -> hi
  | Truncated_exp { cap; _ } -> cap

let mean = function
  | Constant d -> float_of_int d
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.
  | Truncated_exp { mean; cap } -> Float.min mean (float_of_int cap)

let pp ppf = function
  | Constant d -> Format.fprintf ppf "const(%d)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d,%d)" lo hi
  | Truncated_exp { mean; cap } -> Format.fprintf ppf "texp(mean=%.1f,cap=%d)" mean cap
