type 'a verdict = Deliver | Drop

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  queue_dropped : int;
  reordered : int;
}

type 'a t = {
  engine : Ba_sim.Engine.t;
  loss : float;
  delay : Dist.t;
  bottleneck : (int * int) option;  (* service time, queue capacity *)
  deliver : 'a -> unit;
  rng : Ba_util.Rng.t;
  mutable fault : ('a -> 'a verdict) option;
  queue : ('a * int) Queue.t;  (* message, send index *)
  mutable serving : bool;
  mutable in_flight : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable queue_dropped : int;
  mutable reordered : int;
  mutable send_index : int;
  mutable max_delivered_index : int;
}

let create engine ?(loss = 0.) ?(delay = Dist.Constant 1) ?bottleneck ~deliver () =
  if loss < 0. || loss > 1. then invalid_arg "Link.create: loss must be in [0,1]";
  (match bottleneck with
  | Some (service, capacity) when service <= 0 || capacity <= 0 ->
      invalid_arg "Link.create: bottleneck needs positive service time and capacity"
  | Some _ | None -> ());
  {
    engine;
    loss;
    delay;
    bottleneck;
    deliver;
    rng = Ba_util.Rng.split (Ba_sim.Engine.rng engine);
    fault = None;
    queue = Queue.create ();
    serving = false;
    in_flight = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    queue_dropped = 0;
    reordered = 0;
    send_index = 0;
    max_delivered_index = -1;
  }

(* Propagation stage: the per-message random delay after any queueing. *)
let propagate t msg index =
  t.in_flight <- t.in_flight + 1;
  let delay = Dist.sample t.delay t.rng in
  ignore
    (Ba_sim.Engine.schedule t.engine ~delay (fun () ->
         t.in_flight <- t.in_flight - 1;
         t.delivered <- t.delivered + 1;
         if index < t.max_delivered_index then t.reordered <- t.reordered + 1
         else t.max_delivered_index <- index;
         t.deliver msg))

let rec serve t service_time =
  match Queue.take_opt t.queue with
  | None -> t.serving <- false
  | Some (msg, index) ->
      t.serving <- true;
      ignore
        (Ba_sim.Engine.schedule t.engine ~delay:service_time (fun () ->
             propagate t msg index;
             serve t service_time))

let send t msg =
  t.sent <- t.sent + 1;
  let index = t.send_index in
  t.send_index <- t.send_index + 1;
  let fault_verdict = match t.fault with None -> Deliver | Some f -> f msg in
  let lost = Ba_util.Rng.bernoulli t.rng t.loss in
  match (fault_verdict, lost) with
  | Drop, _ | _, true -> t.dropped <- t.dropped + 1
  | Deliver, false -> (
      match t.bottleneck with
      | None -> propagate t msg index
      | Some (service_time, capacity) ->
          if Queue.length t.queue >= capacity then t.queue_dropped <- t.queue_dropped + 1
          else begin
            Queue.add (msg, index) t.queue;
            if not t.serving then serve t service_time
          end)

let set_fault t f = t.fault <- Some f
let clear_fault t = t.fault <- None
let in_flight t = t.in_flight + Queue.length t.queue + if t.serving then 1 else 0
let queue_length t = Queue.length t.queue
let max_delay t = Dist.max_delay t.delay

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    queue_dropped = t.queue_dropped;
    reordered = t.reordered;
  }

let loss t = t.loss
