(** Bounded delay distributions for the simulated links.

    Every distribution has a finite maximum ({!max_delay}); the protocol's
    conservative timeout relies on that bound to implement the paper's
    "channel is empty" predicate (messages age out of the channel). *)

type t =
  | Constant of int  (** Fixed delay. *)
  | Uniform of int * int  (** Inclusive range [lo, hi]. *)
  | Truncated_exp of { mean : float; cap : int }
      (** Exponential with the given mean, truncated at [cap]. *)

val sample : t -> Ba_util.Rng.t -> int
(** Draw a delay in ticks; always within [0, max_delay]. *)

val max_delay : t -> int
(** Least upper bound on any sampled delay. *)

val mean : t -> float
(** Analytic mean of the (truncated) distribution, for reporting.
    For [Truncated_exp] this is the mean of the untruncated law capped
    crudely — used only as a descriptive figure. *)

val pp : Format.formatter -> t -> unit
