type t = { mutable words : int array; mutable cardinal : int }

let word_bits = Sys.int_size

let create ?(initial_capacity = 256) () =
  { words = Array.make (max 1 ((initial_capacity / word_bits) + 1)) 0; cardinal = 0 }

let ensure t i =
  let needed = (i / word_bits) + 1 in
  if needed > Array.length t.words then begin
    let words = Array.make (max needed (2 * Array.length t.words)) 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  ensure t i;
  let w = i / word_bits and b = i mod word_bits in
  if t.words.(w) land (1 lsl b) = 0 then begin
    t.words.(w) <- t.words.(w) lor (1 lsl b);
    t.cardinal <- t.cardinal + 1
  end

let unset t i =
  if i >= 0 && i / word_bits < Array.length t.words then begin
    let w = i / word_bits and b = i mod word_bits in
    if t.words.(w) land (1 lsl b) <> 0 then begin
      t.words.(w) <- t.words.(w) land lnot (1 lsl b);
      t.cardinal <- t.cardinal - 1
    end
  end

let mem t i =
  i >= 0
  && i / word_bits < Array.length t.words
  && t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let cardinal t = t.cardinal

let iter f t =
  Array.iteri
    (fun w word ->
      if word <> 0 then
        for b = 0 to word_bits - 1 do
          if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
        done)
    t.words

let max_set t =
  let best = ref None in
  iter (fun i -> best := Some i) t;
  !best
