type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }
let is_empty t = t.length = 0
let length t = t.length

let push x t = { t with back = x :: t.back; length = t.length + 1 }

let normalize t =
  match t.front with [] -> { t with front = List.rev t.back; back = [] } | _ :: _ -> t

let pop t =
  let t = normalize t in
  match t.front with
  | [] -> None
  | x :: front -> Some (x, { t with front; length = t.length - 1 })

let peek t =
  let t = normalize t in
  match t.front with [] -> None | x :: _ -> Some x

let of_list xs = { front = xs; back = []; length = List.length xs }
let to_list t = t.front @ List.rev t.back
let fold f acc t = List.fold_left f acc (to_list t)
