type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands one 64-bit seed into the four xoshiro words. *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (Int64.to_int (bits64 t) land max_int)

(* Non-negative 61-bit value: [1 lsl 61] is still a valid OCaml int, so
   the rejection bound below cannot overflow. *)
let bit_width = 61
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) (64 - bit_width))

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let max = 1 lsl bit_width in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound = bound *. (float_of_int (bits t) /. float_of_int (1 lsl bit_width))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let geometric t p =
  if p >= 1. then 0
  else if p <= 0. then invalid_arg "Rng.geometric: p must be positive"
  else
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
