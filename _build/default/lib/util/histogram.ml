type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo must be < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let bins = Array.length t.counts in
  if x < t.lo then 0
  else if x >= t.hi then bins - 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int bins in
    min (bins - 1) (int_of_float ((x -. t.lo) /. width))
  end

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.total <- t.total + 1

let total t = t.total
let bin_count t = Array.length t.counts
let counts t = Array.copy t.counts

let bin_range t i =
  let bins = Array.length t.counts in
  let width = (t.hi -. t.lo) /. float_of_int bins in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let render ?(width = 50) t =
  let peak = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "[%10.1f, %10.1f) %6d %s\n" lo hi c bar))
    t.counts;
  Buffer.contents buf
