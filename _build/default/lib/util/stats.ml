type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  samples : float Queue.t;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; samples = Queue.create () }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  Queue.add x t.samples

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let sorted_samples t =
  let a = Array.make t.n 0. in
  let i = ref 0 in
  Queue.iter
    (fun x ->
      a.(!i) <- x;
      incr i)
    t.samples;
  Array.sort compare a;
  a

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let samples t = List.of_seq (Queue.to_seq t.samples)

let percentile t q = percentile_of_sorted (sorted_samples t) q

let summary t =
  if t.n = 0 then invalid_arg "Stats.summary: empty";
  let a = sorted_samples t in
  {
    count = t.n;
    mean = mean t;
    stddev = stddev t;
    min = t.min;
    max = t.max;
    p50 = percentile_of_sorted a 0.5;
    p90 = percentile_of_sorted a 0.9;
    p99 = percentile_of_sorted a 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

let mean_of xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let ci95 xs =
  let n = List.length xs in
  let m = mean_of xs in
  if n < 2 then (m, 0.)
  else begin
    let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1) in
    (m, 1.96 *. sqrt (var /. float_of_int n))
  end
