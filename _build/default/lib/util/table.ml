type align = Left | Right

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%' || c = 'x') s

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~headers rows =
  let arity = List.length headers in
  let normalize row =
    let row = if List.length row > arity then List.filteri (fun i _ -> i < arity) row else row in
    row @ List.init (arity - List.length row) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ | None ->
        (* Default: a column is right-aligned when every body cell looks numeric. *)
        List.mapi
          (fun i _ ->
            let numeric =
              rows <> [] && List.for_all (fun row -> let c = List.nth row i in c = "" || looks_numeric c) rows
            in
            if numeric then Right else Left)
          headers
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

let fmt_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
