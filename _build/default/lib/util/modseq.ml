let wrap ~n m =
  let r = m mod n in
  if r < 0 then r + n else r

(* Paper equations (13)/(14): with x <= y < x + n,
   (y div n) = (x div n)      when (y mod n) >= (x mod n)
   (y div n) = (x div n) + 1  when (y mod n) <  (x mod n). *)
let reconstruct ~n ~ref_:x ym =
  assert (n > 0);
  assert (0 <= ym && ym < n);
  assert (x >= 0);
  let xm = x mod n in
  if ym >= xm then ((x / n) * n) + ym else (((x / n) + 1) * n) + ym

let succ ~n m = wrap ~n (m + 1)
let add ~n a b = wrap ~n (a + b)
let sub ~n a b = wrap ~n (a - b)
let distance ~n a b = wrap ~n (b - a)

let in_window ~n ~lo ~size m =
  assert (size <= n);
  distance ~n lo m < size
