type 'a slot = Empty | Full of int * 'a

type 'a t = { slots : 'a slot array; mutable live : int }

let create capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  { slots = Array.make capacity Empty; live = 0 }

let capacity t = Array.length t.slots

let slot_of t i = i mod Array.length t.slots

let set t i v =
  let s = slot_of t i in
  (match t.slots.(s) with
  | Full (j, _) when j <> i ->
      invalid_arg
        (Printf.sprintf "Ring_buffer.set: slot collision (index %d vs live %d, capacity %d)" i j
           (Array.length t.slots))
  | Full _ -> ()
  | Empty -> t.live <- t.live + 1);
  t.slots.(s) <- Full (i, v)

let get t i =
  match t.slots.(slot_of t i) with Full (j, v) when j = i -> Some v | Full _ | Empty -> None

let mem t i = match get t i with Some _ -> true | None -> false

let remove t i =
  let s = slot_of t i in
  match t.slots.(s) with
  | Full (j, _) when j = i ->
      t.slots.(s) <- Empty;
      t.live <- t.live - 1
  | Full _ | Empty -> ()

let occupancy t = t.live

let iter f t =
  Array.iter (function Empty -> () | Full (i, v) -> f i v) t.slots

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) Empty;
  t.live <- 0
