(** Descriptive statistics for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t
(** A running accumulator (Welford) that also retains samples so that
    percentiles can be computed at summary time. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)

val stddev : t -> float

val samples : t -> float list
(** All samples in insertion order. *)

val percentile : t -> float -> float
(** [percentile t q] with [q] in [0, 1]; linear interpolation between
    order statistics. Raises [Invalid_argument] when empty. *)

val summary : t -> summary
(** Raises [Invalid_argument] when empty. *)

val pp_summary : Format.formatter -> summary -> unit

val mean_of : float list -> float
val ci95 : float list -> float * float
(** Mean and 95% normal-approximation half-width over a sample list. *)
