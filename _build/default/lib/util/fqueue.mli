(** Purely functional FIFO queue (two-list representation, amortised
    O(1) push/pop).

    General-purpose persistent companion to [Stdlib.Queue] for code that
    wants to keep queues inside immutable values (e.g. spec states or
    snapshots). The formal channel model itself uses
    {!Ba_channel.Multiset} because the paper's channels are unordered. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a -> 'a t -> 'a t
val pop : 'a t -> ('a * 'a t) option
val peek : 'a t -> 'a option
val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list
(** Front-to-back order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
