(** Aligned ASCII tables for experiment reports.

    Every experiment in [bench/main.ml] and the CLI tools prints its rows
    through this module so the output matches EXPERIMENTS.md. *)

type align = Left | Right

val render : ?aligns:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with a header rule. All rows
    must have the same arity as [headers]; missing cells are padded empty.
    Numeric-looking columns default to right alignment unless [aligns] is
    given. *)

val print : ?aligns:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting used across reports (default 3 decimals). *)
