(** Deterministic pseudo-random number generator.

    A self-contained xoshiro256** generator seeded through splitmix64.
    Every stochastic component of the simulator draws from an explicit
    [t] so that a run is reproducible from its seed alone. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Distinct seeds
    give independent-looking streams. *)

val copy : t -> t
(** Independent clone with identical future output. *)

val split : t -> t
(** [split rng] draws from [rng] to seed a fresh generator. Use to give
    each component its own stream while preserving determinism. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int rng bound] is uniform on [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform on the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float rng bound] is uniform on [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential rng mean] draws from Exp with the given mean. *)

val geometric : t -> float -> int
(** [geometric rng p] is the number of failures before the first success
    of a Bernoulli(p) sequence; 0 when [p >= 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
