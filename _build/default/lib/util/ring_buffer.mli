(** Fixed-capacity circular buffer indexed by absolute sequence number.

    The sender's retransmission buffer and the receiver's out-of-order
    buffer are windows of at most [w] live entries whose absolute indices
    grow without bound; storage is the paper's bounded-array refinement
    ([ackd]/[rcvd] accessed modulo [w], Section V). A slot holds at most
    one value and is addressed by its absolute index. *)

type 'a t

val create : int -> 'a t
(** [create capacity] makes an empty buffer of [capacity] slots.
    Requires [capacity > 0]. *)

val capacity : 'a t -> int

val set : 'a t -> int -> 'a -> unit
(** [set t i v] stores [v] at absolute index [i]. Requires that no live
    entry with index [j], [j <> i], [j ≡ i (mod capacity)] is present
    (enforced: raises [Invalid_argument] on slot collision). *)

val get : 'a t -> int -> 'a option
(** [get t i] is the value stored for absolute index [i], if any. *)

val mem : 'a t -> int -> bool

val remove : 'a t -> int -> unit
(** Clear the entry for absolute index [i] (no-op if absent). *)

val occupancy : 'a t -> int
(** Number of live entries. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate over live (index, value) pairs in unspecified order. *)

val clear : 'a t -> unit
