(** Fixed-width-bin histogram with ASCII rendering, used by the CLI tools
    to show latency and recovery-time distributions. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values below [lo] land in the first bin, at or above [hi] in the last.
    Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
val total : t -> int
val bin_count : t -> int
val counts : t -> int array
val bin_range : t -> int -> float * float
(** Bounds of bin [i]. *)

val render : ?width:int -> t -> string
(** Multi-line bar rendering; [width] bounds the longest bar. *)
