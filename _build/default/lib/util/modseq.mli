(** Modular sequence-number arithmetic (paper, Section V).

    The finite-sequence-number protocol transmits [y mod n] instead of the
    unbounded sequence number [y]. A receiver holding a reference value [x]
    with the guarantee [x <= y < x + n] can reconstruct [y] exactly — this
    is the paper's function [f] built from equations (13) and (14).

    All functions require [n > 0]. *)

val reconstruct : n:int -> ref_:int -> int -> int
(** [reconstruct ~n ~ref_:x ym] is the unique [y] with [y mod n = ym] and
    [x <= y < x + n]. This is the paper's [f(x, y)] where only
    [y mod n = ym] is known. Requires [0 <= ym < n] and [x >= 0]. *)

val wrap : n:int -> int -> int
(** [wrap ~n m] is [m mod n], mapped into [0, n) even for negative [m]. *)

val succ : n:int -> int -> int
(** Increment modulo [n]. *)

val add : n:int -> int -> int -> int
(** Addition modulo [n]. *)

val sub : n:int -> int -> int -> int
(** Subtraction modulo [n], result in [0, n). *)

val in_window : n:int -> lo:int -> size:int -> int -> bool
(** [in_window ~n ~lo ~size m] tests whether wire number [m] falls in the
    half-open modular window [lo, lo + size) of width [size <= n]. *)

val distance : n:int -> int -> int -> int
(** [distance ~n a b] is the forward distance from [a] to [b] modulo [n]:
    the unique [d] in [0, n) with [(a + d) mod n = b]. *)
