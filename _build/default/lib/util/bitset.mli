(** Growable bit set over non-negative integers.

    Models the paper's unbounded boolean arrays [ackd] and [rcvd] in the
    unbounded-sequence-number protocol of Section II. *)

type t

val create : ?initial_capacity:int -> unit -> t
val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool
(** [mem t i] is false for any [i] never set (including beyond capacity). *)

val cardinal : t -> int
(** Number of set bits. *)

val max_set : t -> int option
(** Largest set bit, if any. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over set bits in increasing order. *)
