lib/util/fqueue.ml: List
