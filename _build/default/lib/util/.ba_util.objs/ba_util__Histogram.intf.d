lib/util/histogram.mli:
