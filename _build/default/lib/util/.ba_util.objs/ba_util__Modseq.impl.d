lib/util/modseq.ml:
