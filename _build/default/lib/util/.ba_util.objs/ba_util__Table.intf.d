lib/util/table.mli:
