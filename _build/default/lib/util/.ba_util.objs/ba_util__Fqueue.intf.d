lib/util/fqueue.mli:
