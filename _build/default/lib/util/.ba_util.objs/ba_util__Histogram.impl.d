lib/util/histogram.ml: Array Buffer Printf String
