lib/util/rng.mli:
