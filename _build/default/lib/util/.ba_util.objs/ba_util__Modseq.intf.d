lib/util/modseq.mli:
