lib/util/heap.mli:
