lib/util/bitset.mli:
