lib/trace/tracer.ml: Buffer List Printf String
