lib/trace/tracer.mli:
