type side = Sender | Receiver

type event = { time : int; side : side; label : string }

type t = { mutable log : event list; mutable count : int; capacity : int }

let create ?(capacity = 10_000) () = { log = []; count = 0; capacity }

let record t ~time ~side label =
  t.log <- { time; side; label } :: t.log;
  t.count <- t.count + 1;
  if t.count > t.capacity then begin
    (* Drop the oldest half to amortise the cost of truncation. *)
    let keep = t.capacity / 2 in
    t.log <- List.filteri (fun i _ -> i < keep) t.log;
    t.count <- keep
  end

let events t = List.rev t.log

let clear t =
  t.log <- [];
  t.count <- 0

let render ?(from_time = 0) ?(until_time = max_int) t =
  let selected =
    List.filter (fun e -> e.time >= from_time && e.time <= until_time) (events t)
  in
  let col_width =
    List.fold_left (fun acc e -> max acc (String.length e.label)) 8 selected + 2
  in
  let pad s = s ^ String.make (col_width - String.length s) ' ' in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%8s | %s| %s\n" "tick" (pad "sender") "receiver");
  Buffer.add_string buf
    (Printf.sprintf "%s-+-%s+-%s\n" (String.make 8 '-') (String.make col_width '-')
       (String.make col_width '-'));
  List.iter
    (fun e ->
      let left, right =
        match e.side with Sender -> (pad e.label, "") | Receiver -> (pad "", e.label)
      in
      Buffer.add_string buf (Printf.sprintf "%8d | %s| %s\n" e.time left right))
    selected;
  Buffer.contents buf
