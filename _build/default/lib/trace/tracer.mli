(** Wire-level event tracing with ASCII time-sequence rendering.

    Examples and debugging sessions hook a tracer into the transmit and
    deliver paths of a simulated connection and render what happened as
    the classic two-column protocol diagram:

    {v
      tick | sender                        | receiver
      -----+-------------------------------+--------------------------
         0 | DATA 0 ->                     |
        50 |                               | -> DATA 0
        50 |                               | <- ACK (0,0)
       100 | ACK (0,0) <-                  |
    v} *)

type side = Sender | Receiver

type event = { time : int; side : side; label : string }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained events (oldest dropped); default 10_000. *)

val record : t -> time:int -> side:side -> string -> unit

val events : t -> event list
(** In recording order. *)

val clear : t -> unit

val render : ?from_time:int -> ?until_time:int -> t -> string
(** The two-column diagram, optionally restricted to a time window. *)
