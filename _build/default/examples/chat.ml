(* Chat: a paced two-way conversation over a Duplex session, showing
   piggybacked block acknowledgments paying the ack cost almost for free.

   Run with: dune exec examples/chat.exe *)

let lines_a =
  [| "hey, did the block-ack paper reproduce?";
     "nice - invariants too?";
     "what about n = 2w-1?";
     "and bounded go-back-N?";
     "classic. ship it." |]

let lines_b =
  [| "yes - all six specs verify, 6-8 hold everywhere";
     "progress too: every state completes loss-free";
     "the checker finds the aliasing counterexample";
     "breaks exactly like the introduction says";
     "done." |]

let () =
  print_endline "A two-way chat over lossy links (10% each way), acks piggybacked:\n";
  let d =
    Blockack.Duplex.create ~seed:12 ~loss:0.1 ~piggyback_hold:120
      ~on_receive_a:(fun m -> Printf.printf "  B: %s\n" m)
      ~on_receive_b:(fun m -> Printf.printf "  A: %s\n" m)
      ()
  in
  let engine = Blockack.Duplex.engine d in
  Array.iteri
    (fun i line ->
      ignore
        (Ba_sim.Engine.schedule engine ~delay:(200 * ((2 * i) + 1)) (fun () ->
             Blockack.Duplex.send (Blockack.Duplex.a d) line));
      ignore
        (Ba_sim.Engine.schedule engine ~delay:(200 * ((2 * i) + 2)) (fun () ->
             Blockack.Duplex.send (Blockack.Duplex.b d) lines_b.(i))))
    lines_a;
  Blockack.Duplex.run d;
  assert (Blockack.Duplex.idle d);
  let sa = Blockack.Duplex.stats (Blockack.Duplex.a d) in
  let sb = Blockack.Duplex.stats (Blockack.Duplex.b d) in
  Printf.printf
    "\nall %d messages delivered in order despite loss.\n\
     frames: %d data, %d pure-ack, %d acks piggybacked on data.\n"
    (sa.Blockack.Duplex.delivered + sb.Blockack.Duplex.delivered)
    (sa.Blockack.Duplex.data_frames + sb.Blockack.Duplex.data_frames)
    (sa.Blockack.Duplex.pure_ack_frames + sb.Blockack.Duplex.pure_ack_frames)
    (sa.Blockack.Duplex.piggybacked_acks + sb.Blockack.Duplex.piggybacked_acks)
