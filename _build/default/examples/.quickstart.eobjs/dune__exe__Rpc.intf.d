examples/rpc.mli:
