examples/quickstart.ml: Blockack Printf
