examples/ack_loss_recovery.ml: Ba_channel Ba_proto Ba_sim Ba_trace Blockack Printf
