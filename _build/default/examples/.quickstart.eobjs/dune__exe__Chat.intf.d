examples/chat.mli:
