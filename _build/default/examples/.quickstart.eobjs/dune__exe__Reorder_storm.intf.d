examples/reorder_storm.mli:
