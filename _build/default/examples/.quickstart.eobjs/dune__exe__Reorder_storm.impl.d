examples/reorder_storm.ml: Ba_baselines Ba_channel Ba_proto Ba_util Blockack Printf
