examples/chat.ml: Array Ba_sim Blockack Printf
