examples/file_transfer.ml: Array Ba_channel Ba_util Blockack Buffer List Printf String
