examples/model_check_demo.ml: Ba_model Ba_verify Format Printf String
