examples/ack_loss_recovery.mli:
