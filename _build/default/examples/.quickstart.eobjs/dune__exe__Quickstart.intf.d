examples/quickstart.mli:
