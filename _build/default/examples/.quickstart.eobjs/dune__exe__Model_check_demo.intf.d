examples/model_check_demo.mli:
