examples/rpc.ml: Ba_channel Ba_sim Ba_util Blockack Format Hashtbl Option Printf Queue String
