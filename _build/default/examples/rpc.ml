(* Request/response RPC over two block-acknowledgment connections.

   A client issues requests; a server computes answers; each direction is
   its own simulated lossy, reordering link pair (the paper's protocol is
   unidirectional, so a full duplex session is simply two of them glued
   back to back — exactly how the paper intends it to be composed).
   Measures end-to-end RPC latency including all retransmissions.

   Run with: dune exec examples/rpc.exe *)

let requests = 200

let () =
  Printf.printf
    "%d RPCs over two block-ack connections; each direction has 10%% loss and\n\
     40-60 tick delays (reordering). Every response must match its request.\n\n"
    requests;
  (* Both directions must live on one engine so time is shared. The
     Connection facade owns its engine, so here we compose the raw
     endpoints instead — which is also a nice tour of the lower API. *)
  let engine = Ba_sim.Engine.create ~seed:77 () in
  let config = Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:60 () in
  let delay = Ba_channel.Dist.Uniform (40, 60) in

  (* Forward path: client -> server. *)
  let fwd_receiver = ref None in
  let fwd_data =
    Ba_channel.Link.create engine ~loss:0.1 ~delay
      ~deliver:(fun d -> Option.iter (fun r -> Blockack.Receiver.on_data r d) !fwd_receiver)
      ()
  in
  let fwd_sender_cell = ref None in
  let fwd_ack =
    Ba_channel.Link.create engine ~loss:0.1 ~delay
      ~deliver:(fun a -> Option.iter (fun s -> Blockack.Sender_multi.on_ack s a) !fwd_sender_cell)
      ()
  in
  (* Reverse path: server -> client. *)
  let rev_receiver = ref None in
  let rev_data =
    Ba_channel.Link.create engine ~loss:0.1 ~delay
      ~deliver:(fun d -> Option.iter (fun r -> Blockack.Receiver.on_data r d) !rev_receiver)
      ()
  in
  let rev_sender_cell = ref None in
  let rev_ack =
    Ba_channel.Link.create engine ~loss:0.1 ~delay
      ~deliver:(fun a -> Option.iter (fun s -> Blockack.Sender_multi.on_ack s a) !rev_sender_cell)
      ()
  in

  let client_outbox = Queue.create () and server_outbox = Queue.create () in
  let fwd_sender =
    Blockack.Sender_multi.create engine config
      ~tx:(Ba_channel.Link.send fwd_data)
      ~next_payload:(fun () -> Queue.take_opt client_outbox)
  in
  let rev_sender =
    Blockack.Sender_multi.create engine config
      ~tx:(Ba_channel.Link.send rev_data)
      ~next_payload:(fun () -> Queue.take_opt server_outbox)
  in
  fwd_sender_cell := Some fwd_sender;
  rev_sender_cell := Some rev_sender;

  (* Server: parse "square <i>", respond "<i> <i*i>". *)
  let server_handled = ref 0 in
  fwd_receiver :=
    Some
      (Blockack.Receiver.create engine config
         ~tx:(Ba_channel.Link.send fwd_ack)
         ~deliver:(fun req ->
           incr server_handled;
           match String.split_on_char ' ' req with
           | [ "square"; n ] ->
               let i = int_of_string n in
               Queue.add (Printf.sprintf "%d %d" i (i * i)) server_outbox;
               Blockack.Sender_multi.pump rev_sender
           | _ -> failwith ("bad request: " ^ req)));

  (* Client: track issue times, validate answers, measure latency. *)
  let issue_time = Hashtbl.create 97 in
  let latencies = Ba_util.Stats.create () in
  let answered = ref 0 in
  rev_receiver :=
    Some
      (Blockack.Receiver.create engine config
         ~tx:(Ba_channel.Link.send rev_ack)
         ~deliver:(fun resp ->
           match String.split_on_char ' ' resp with
           | [ n; squared ] ->
               let i = int_of_string n in
               assert (int_of_string squared = i * i);
               let t0 = Hashtbl.find issue_time i in
               Ba_util.Stats.add latencies (float_of_int (Ba_sim.Engine.now engine - t0));
               incr answered;
               if !answered >= requests then Ba_sim.Engine.stop engine
           | _ -> failwith ("bad response: " ^ resp)));

  (* Issue requests in bursts of 10 every 200 ticks. *)
  for burst = 0 to (requests / 10) - 1 do
    ignore
      (Ba_sim.Engine.schedule engine ~delay:(burst * 200) (fun () ->
           for k = 0 to 9 do
             let i = (burst * 10) + k in
             Hashtbl.replace issue_time i (Ba_sim.Engine.now engine);
             Queue.add (Printf.sprintf "square %d" i) client_outbox
           done;
           Blockack.Sender_multi.pump fwd_sender))
  done;
  Ba_sim.Engine.run ~until:10_000_000 engine;

  Printf.printf "answered %d/%d RPCs correctly (server handled %d requests)\n" !answered
    requests !server_handled;
  let s = Ba_util.Stats.summary latencies in
  Format.printf "RPC latency (ticks): %a@." Ba_util.Stats.pp_summary s;
  Printf.printf
    "\n(One round trip is ~100 ticks — the minimum above. Everything beyond that is\n\
     head-of-line blocking: both directions deliver strictly in order, so each lost\n\
     message stalls everything issued after it for about one rto. Set the losses to\n\
     0.0 and the whole distribution collapses to ~100.)\n";
  assert (!answered = requests)
