(* Model checking the paper, in miniature: verify the block-ack specs
   exhaustively, then watch the checker find (a) the intro's go-back-N
   failure and (b) the aliasing bug when the wire modulus drops below 2w.

   Run with: dune exec examples/model_check_demo.exe *)

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  banner "1. Section II protocol (w=2, 4-message transfer): exhaustive check";
  let r = Ba_verify.Explorer.run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:4) in
  Format.printf "%a" Ba_verify.Explorer.pp_result r;

  banner "2. Section V protocol with the proven modulus n = 2w";
  let r5 = Ba_verify.Explorer.run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~limit:4 ()) in
  Format.printf "%a" Ba_verify.Explorer.pp_result r5;
  Printf.printf
    "(identical state space to the unbounded protocol: %d vs %d states — the modulo\n\
     encoding is transparent, which is exactly what Section V proves)\n"
    r5.Ba_verify.Explorer.state_count r.Ba_verify.Explorer.state_count;

  banner "3. Shrink the modulus to n = 2w - 1 = 3: reconstruction must break";
  let bad = Ba_verify.Explorer.run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~n:3 ~limit:6 ()) in
  Format.printf "%a" Ba_verify.Explorer.pp_result bad;

  banner "4. The introduction's strawman: bounded go-back-N under reorder";
  let gbn = Ba_verify.Explorer.run_spec (Ba_model.Gbn_bounded_spec.default ~w:2 ~limit:6 ()) in
  Format.printf "%a" Ba_verify.Explorer.pp_result gbn;
  print_endline
    "\nThe counterexample above is the paper's opening scenario: both data messages\n\
     are delivered, but the two cumulative acknowledgments arrive in the wrong\n\
     order and the stale one is decoded as a recent one. Block acknowledgment is\n\
     immune because an ack names its block explicitly — run 1 explored every\n\
     interleaving (including this one) and found no violation."
