(* File transfer: chunk a document into fixed-size segments, ship it over
   a bad link with the block-acknowledgment protocol, reassemble and
   verify integrity byte for byte.

   This is the workload the paper's abstract machinery exists for:
   sequence numbers keep segments in order, block acks keep the pipe
   full, bounded wire numbers keep the header small.

   Run with: dune exec examples/file_transfer.exe *)

let chunk_size = 64

(* A deterministic pseudo-document. *)
let document =
  let b = Buffer.create 65536 in
  let rng = Ba_util.Rng.create 2024 in
  let words = [| "window"; "protocol"; "block"; "acknowledgment"; "sequence";
                 "number"; "sender"; "receiver"; "channel"; "timeout" |] in
  for i = 1 to 4000 do
    Buffer.add_string b words.(Ba_util.Rng.int rng (Array.length words));
    Buffer.add_char b (if i mod 12 = 0 then '\n' else ' ')
  done;
  Buffer.contents b

let chunks_of s =
  let n = (String.length s + chunk_size - 1) / chunk_size in
  List.init n (fun i ->
      String.sub s (i * chunk_size) (min chunk_size (String.length s - (i * chunk_size))))

let () =
  let chunks = chunks_of document in
  let total = List.length chunks in
  Printf.printf "transferring %d bytes as %d segments of <=%d bytes\n"
    (String.length document) total chunk_size;
  Printf.printf "link: 8%% loss each way, delay 40-80 ticks (reordering)\n\n";

  let reassembled = Buffer.create (String.length document) in
  let delivered = ref 0 in
  let conn =
    Blockack.Connection.create ~seed:99
      ~config:(Blockack.Config.make ~window:32 ~rto:300 ~wire_modulus:(Some 64) ~max_transit:80 ())
      ~data_loss:0.08 ~ack_loss:0.08
      ~data_delay:(Ba_channel.Dist.Uniform (40, 80))
      ~ack_delay:(Ba_channel.Dist.Uniform (40, 80))
      ~on_receive:(fun segment ->
        Buffer.add_string reassembled segment;
        incr delivered;
        if !delivered mod (max 1 (total / 10)) = 0 then
          Printf.printf "  progress: %3d%% (%d/%d segments)\n" (100 * !delivered / total)
            !delivered total)
      ()
  in
  List.iter (Blockack.Connection.send conn) chunks;
  Blockack.Connection.run conn;

  let s = Blockack.Connection.stats conn in
  Printf.printf "\ntransfer complete at tick %d\n" s.Blockack.Connection.ticks;
  Printf.printf "segments sent: %d (%d retransmissions), %d dropped by the link\n"
    s.Blockack.Connection.data_sent s.Blockack.Connection.retransmissions
    s.Blockack.Connection.data_dropped;
  Printf.printf "block acks: %d (%.2f segments acknowledged per ack)\n"
    s.Blockack.Connection.acks_sent
    (float_of_int total /. float_of_int (max 1 s.Blockack.Connection.acks_sent));
  if String.equal (Buffer.contents reassembled) document then
    print_endline "integrity check: reassembled document is byte-identical"
  else begin
    print_endline "INTEGRITY FAILURE";
    exit 1
  end
