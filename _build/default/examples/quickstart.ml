(* Quickstart: reliable in-order delivery over a lossy, reordering link
   in a dozen lines, using the Connection facade.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A simulated connection: 10% loss each way, delays jittering between
     40 and 60 ticks (so later messages can overtake earlier ones). *)
  let received = ref 0 in
  let conn =
    Blockack.Connection.create ~seed:7 ~data_loss:0.1 ~ack_loss:0.1
      ~on_receive:(fun msg ->
        incr received;
        if !received <= 5 || !received mod 25 = 0 then
          Printf.printf "  received %S\n" msg)
      ()
  in
  for i = 1 to 100 do
    Blockack.Connection.send conn (Printf.sprintf "message #%03d" i)
  done;
  Blockack.Connection.run conn;

  let s = Blockack.Connection.stats conn in
  Printf.printf
    "\ndelivered %d/%d in order, exactly once\n\
     simulated time: %d ticks\n\
     data frames sent: %d (of which %d retransmissions); %d lost in transit\n\
     block acknowledgments sent: %d\n"
    s.Blockack.Connection.delivered s.Blockack.Connection.submitted
    s.Blockack.Connection.ticks s.Blockack.Connection.data_sent
    s.Blockack.Connection.retransmissions s.Blockack.Connection.data_dropped
    s.Blockack.Connection.acks_sent;
  assert (Blockack.Connection.idle conn);
  print_endline "ok: every message arrived despite loss and reorder"
