(* Ack-loss recovery, on the wire: build a tiny transfer by hand out of
   Sender/Sender_multi + Receiver, kill the one block acknowledgment that
   covers the whole window, and render time-sequence diagrams of how each
   timeout design recovers (the paper's Section II vs Section IV).

   Run with: dune exec examples/ack_loss_recovery.exe *)

module Engine = Ba_sim.Engine
module Link = Ba_channel.Link
module Wire = Ba_proto.Wire

let block = 4
let rto = 300

let config =
  Blockack.Config.make ~window:8 ~rto ~wire_modulus:(Some 16) ~ack_coalesce:20
    ~max_transit:50 ()

type sender_ops = { pump : unit -> unit; on_ack : Wire.ack -> unit; done_ : unit -> bool }

let run_one style =
  let engine = Engine.create ~seed:5 () in
  let tracer = Ba_trace.Tracer.create () in
  let trace side fmt =
    Printf.ksprintf
      (fun label -> Ba_trace.Tracer.record tracer ~time:(Engine.now engine) ~side label)
      fmt
  in
  let sender_cell = ref None and receiver_cell = ref None in
  let killed = ref false in
  let data_link =
    Link.create engine ~delay:(Ba_channel.Dist.Constant 50)
      ~deliver:(fun d ->
        trace Ba_trace.Tracer.Receiver "-> DATA %d" d.Wire.seq;
        match !receiver_cell with Some r -> Blockack.Receiver.on_data r d | None -> ())
      ()
  in
  let ack_link =
    Link.create engine ~delay:(Ba_channel.Dist.Constant 50)
      ~deliver:(fun a ->
        trace Ba_trace.Tracer.Sender "ACK (%d,%d) <-" a.Wire.lo a.Wire.hi;
        match !sender_cell with Some s -> s.on_ack a | None -> ())
      ()
  in
  (* The fault: drop the first acknowledgment — it will be the coalesced
     block ack covering all [block] messages. *)
  Link.set_fault ack_link (fun (a : Wire.ack) ->
      if !killed then Link.Deliver
      else begin
        killed := true;
        trace Ba_trace.Tracer.Receiver "<- ACK (%d,%d)  ** LOST **" a.Wire.lo a.Wire.hi;
        Link.Drop
      end);
  let next_payload = Ba_proto.Workload.supplier ~seed:1 ~size:8 ~count:block in
  let tx_data d =
    trace Ba_trace.Tracer.Sender "DATA %d ->" d.Wire.seq;
    Link.send data_link d
  in
  let tx_ack a =
    if !killed then trace Ba_trace.Tracer.Receiver "<- ACK (%d,%d)" a.Wire.lo a.Wire.hi;
    Link.send ack_link a
  in
  let deliver payload = trace Ba_trace.Tracer.Receiver "deliver %S" payload in
  let sender =
    match style with
    | `Simple ->
        let s = Blockack.Sender.create engine config ~tx:tx_data ~next_payload in
        {
          pump = (fun () -> Blockack.Sender.pump s);
          on_ack = Blockack.Sender.on_ack s;
          done_ = (fun () -> Blockack.Sender.is_done s);
        }
    | `Multi ->
        let s = Blockack.Sender_multi.create engine config ~tx:tx_data ~next_payload in
        {
          pump = (fun () -> Blockack.Sender_multi.pump s);
          on_ack = Blockack.Sender_multi.on_ack s;
          done_ = (fun () -> Blockack.Sender_multi.is_done s);
        }
  in
  sender_cell := Some sender;
  receiver_cell :=
    Some (Blockack.Receiver.create engine config ~tx:tx_ack ~deliver);
  sender.pump ();
  Engine.run ~until:3_000 engine;
  assert (sender.done_ ());
  (Ba_trace.Tracer.render tracer, Engine.now engine)

let () =
  Printf.printf
    "Transfer of %d messages; the single block ack covering them is lost.\n\
     rto = %d ticks, one-way delay 50 ticks, receiver coalesces acks for 20 ticks.\n\n"
    block rto;
  let simple_trace, _ = run_one `Simple in
  print_endline "--- Section II sender: one timer, resend the window base ---";
  print_string simple_trace;
  print_endline
    "Each timeout recovers ONE message (the duplicate ack only advances na by one),\n\
     so the lost block costs about block * rto ticks.\n";
  let multi_trace, _ = run_one `Multi in
  print_endline "--- Section IV sender: a timer per outstanding message ---";
  print_string multi_trace;
  print_endline
    "All timers expire together: the whole block is retransmitted back-to-back and\n\
     re-acknowledged within one round trip — recovery costs about rto ticks total."
