(* Reorder storm: the paper's motivating environment — channels that
   reorder aggressively — thrown at four protocols side by side.

   Block acknowledgment and selective repeat ride it out; classic
   in-order go-back-N collapses (every overtaken message is discarded and
   must be retransmitted); bounded go-back-N does not even stay correct.

   Run with: dune exec examples/reorder_storm.exe *)

let messages = 800

let run name proto config =
  (* Delay anywhere in [10, 250]: a message can be overtaken by ~5
     window-fuls of later traffic. *)
  let delay = Ba_channel.Dist.Uniform (10, 250) in
  let r =
    Ba_proto.Harness.run proto ~seed:31 ~messages ~config ~data_loss:0.02 ~ack_loss:0.02
      ~data_delay:delay ~ack_delay:delay ~deadline:30_000_000 ()
  in
  [
    name;
    (if Ba_proto.Harness.correct r then "correct"
     else
       Printf.sprintf "BROKEN (dup=%d ooo=%d%s)" r.Ba_proto.Harness.duplicates
         r.Ba_proto.Harness.misordered
         (if r.Ba_proto.Harness.completed then "" else ", wedged"));
    string_of_int r.Ba_proto.Harness.ticks;
    Printf.sprintf "%.1f" r.Ba_proto.Harness.goodput;
    string_of_int r.Ba_proto.Harness.retransmissions;
    Printf.sprintf "%d%%"
      (100 * r.Ba_proto.Harness.data_reordered / max 1 r.Ba_proto.Harness.data_sent);
  ]

let () =
  Printf.printf
    "A reorder storm: %d messages through links with delay uniform in [10, 250]\n\
     ticks and 2%% loss. Sequence numbers modulo 2w where bounded.\n\n"
    messages;
  let rto = 650 in
  (* > 2 * 250 + margin: the conservative timeout stays sound. *)
  let ba = Blockack.Config.make ~window:16 ~rto ~wire_modulus:(Some 32) ~max_transit:250 () in
  let unbounded = Blockack.Config.make ~window:16 ~rto () in
  let gbn_bounded = Blockack.Config.make ~window:16 ~rto ~wire_modulus:(Some 17) () in
  let rows =
    [
      run "blockack-multi (n=2w)" Blockack.Protocols.multi ba;
      run "selective-repeat (n=2w)" Ba_baselines.Selective_repeat.protocol ba;
      run "go-back-N (unbounded)" Ba_baselines.Go_back_n.protocol unbounded;
      run "go-back-N (n=w+1)" Ba_baselines.Go_back_n.protocol gbn_bounded;
    ]
  in
  Ba_util.Table.print
    ~headers:[ "protocol"; "outcome"; "ticks"; "goodput"; "retx"; "wire reorder" ]
    rows;
  print_newline ();
  print_endline
    "Reading: block ack tolerates disorder at full window throughput; in-order\n\
     go-back-N burns retransmissions on every overtaking; with bounded sequence\n\
     numbers it is not even safe (the paper's introduction, live)."
