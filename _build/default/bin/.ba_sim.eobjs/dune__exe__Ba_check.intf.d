bin/ba_check.mli:
