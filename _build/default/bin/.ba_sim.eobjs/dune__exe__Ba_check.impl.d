bin/ba_check.ml: Arg Ba_model Ba_verify Cmd Cmdliner Format Manpage Term
