bin/ba_sim.mli:
