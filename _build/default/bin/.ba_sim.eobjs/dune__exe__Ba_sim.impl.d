bin/ba_sim.ml: Arg Ba_baselines Ba_channel Ba_proto Ba_util Blockack Cmd Cmdliner Format List Manpage Option String Term
