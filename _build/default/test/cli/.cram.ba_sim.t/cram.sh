  $ ../../bin/ba_sim.exe -p blockack-multi -m 50 --delay 50 -w 4
  $ ../../bin/ba_sim.exe -p go-back-n -m 100 -j 60 -l 0.05 -n 17 -w 16 --rto 400 >/dev/null 2>&1
  $ ../../bin/ba_diagram.exe -m 2 --kill-first-ack --simple
