  $ ../../bin/ba_check.exe --spec section2 -w 1 --limit 2
  $ ../../bin/ba_check.exe --spec section5 -w 2 -n 3 --limit 6
  $ ../../bin/ba_check.exe --spec gbn -w 2 --limit 6 2>&1 | head -7
