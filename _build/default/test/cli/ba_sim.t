A small deterministic lossless transfer:

  $ ../../bin/ba_sim.exe -p blockack-multi -m 50 --delay 50 -w 4
  seed 42: blockack-multi: completed in 1300 ticks — 50/50 delivered (dup=0 ooo=0 bad=0), data sent=50 dropped=0 reord=0, acks=50 dropped=0, retx=0, goodput=38.462/ktick, ack-ovh=0.2500, eff=1.000
    latency: n=50 mean=50.000 sd=0.000 min=50.000 p50=50.000 p90=50.000 p99=50.000 max=50.000

Exit status is 1 when a run is incorrect — bounded go-back-N over a
reordering link wedges or corrupts (output elided, status checked):

  $ ../../bin/ba_sim.exe -p go-back-n -m 100 -j 60 -l 0.05 -n 17 -w 16 --rto 400 >/dev/null 2>&1
  [1]

The time-sequence diagram tool renders the F3 recovery scenario:

  $ ../../bin/ba_diagram.exe -m 2 --kill-first-ack --simple
      tick | sender                      | receiver
  ---------+-----------------------------+-----------------------------
         0 | DATA 0 ->                   | 
         0 | DATA 1 ->                   | 
        50 |                             | -> DATA 0
        50 |                             | -> DATA 1
        70 |                             | <- ACK (0,1)
        70 |                             | <- ACK (0,1)  ** KILLED **
        70 |                             | deliver "m:0:jh90"
        70 |                             | deliver "m:1:lpht"
       220 | DATA 0 ->                   | 
       270 |                             | -> DATA 0
       270 |                             | <- ACK (0,0)
       320 | ACK (0,0) <-                | 
       440 | DATA 1 ->                   | 
       490 |                             | -> DATA 1
       490 |                             | <- ACK (1,1)
       540 | ACK (1,1) <-                | 
  transfer of 2 messages complete
