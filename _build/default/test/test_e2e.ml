(* End-to-end protocol tests through the harness: correctness of every
   protocol under loss and reorder, the paper's comparative claims
   (recovery speed, ack economy, Stenning's rate cap, bounded go-back-N's
   unsafety), and a randomized qcheck property over seeds and loss. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Harness = Ba_proto.Harness
module Config = Blockack.Config
module Dist = Ba_channel.Dist
module Wire = Ba_proto.Wire

let fifo_delay = Dist.Constant 50
let jitter_delay = Dist.Uniform (20, 80)

let blockack_config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ()

let run ?(seed = 1) ?(messages = 500) ?(config = blockack_config) ?(loss = 0.)
    ?(delay = jitter_delay) ?on_setup proto =
  Harness.run proto ~seed ~messages ~config ~data_loss:loss ~ack_loss:loss ~data_delay:delay
    ~ack_delay:delay ?on_setup ()

let assert_correct name r =
  if not (Harness.correct r) then
    Alcotest.failf "%s: incorrect run: completed=%b dup=%d ooo=%d bad=%d delivered=%d/%d" name
      r.Harness.completed r.Harness.duplicates r.Harness.misordered r.Harness.corrupted
      r.Harness.delivered r.Harness.messages

(* ------------------------------------------------------------------ *)
(* Correctness of the block-acknowledgment protocol *)

let test_blockack_lossless () =
  let r = run Blockack.Protocols.simple in
  assert_correct "simple lossless" r;
  check Alcotest.int "no retransmissions" 0 r.Harness.retransmissions

let test_blockack_simple_under_loss () =
  List.iter
    (fun loss ->
      List.iter
        (fun seed -> assert_correct "simple lossy" (run ~seed ~loss Blockack.Protocols.simple))
        [ 1; 2; 3 ])
    [ 0.05; 0.2 ]

let test_blockack_multi_under_loss () =
  List.iter
    (fun loss ->
      List.iter
        (fun seed -> assert_correct "multi lossy" (run ~seed ~loss Blockack.Protocols.multi))
        [ 1; 2; 3 ])
    [ 0.05; 0.2 ]

let test_blockack_heavy_loss () =
  assert_correct "multi 40% loss" (run ~loss:0.4 ~messages:200 Blockack.Protocols.multi)

let test_blockack_asymmetric_loss () =
  (* Only acks are lost: data always arrives, every recovery exercises the
     duplicate-ack path. *)
  let r =
    Harness.run Blockack.Protocols.multi ~seed:3 ~messages:300 ~config:blockack_config
      ~data_loss:0. ~ack_loss:0.3 ~data_delay:jitter_delay ~ack_delay:jitter_delay ()
  in
  assert_correct "ack-only loss" r;
  check Alcotest.bool "dup-ack recoveries happened" true (r.Harness.retransmissions > 0)

let test_blockack_unbounded_wire () =
  let config = Config.make ~window:16 ~rto:300 () in
  assert_correct "unbounded wire" (run ~config ~loss:0.1 Blockack.Protocols.simple)

let test_blockack_window_one () =
  let config = Config.make ~window:1 ~rto:300 ~wire_modulus:(Some 2) () in
  assert_correct "w=1 degenerates to alternating bit" (run ~config ~loss:0.1 ~messages:100 Blockack.Protocols.simple)

let test_blockack_large_window () =
  let config = Config.make ~window:128 ~rto:300 ~wire_modulus:(Some 256) () in
  assert_correct "w=128" (run ~config ~loss:0.05 ~messages:1000 Blockack.Protocols.multi)

let test_blockack_coalescing_reduces_acks () =
  let coalesced = Config.make ~window:16 ~rto:400 ~wire_modulus:(Some 32) ~ack_coalesce:30 () in
  let r_plain = run ~messages:1000 Blockack.Protocols.simple in
  let r_coalesced = run ~messages:1000 ~config:coalesced Blockack.Protocols.simple in
  assert_correct "coalesced" r_coalesced;
  check Alcotest.bool "fewer acks with coalescing" true
    (r_coalesced.Harness.acks_sent < r_plain.Harness.acks_sent)

(* ------------------------------------------------------------------ *)
(* Baselines: correctness where expected, failure where the paper says *)

let test_gbn_unbounded_correct () =
  let config = Config.make ~window:16 ~rto:300 () in
  List.iter
    (fun loss ->
      assert_correct "gbn unbounded"
        (run ~config ~loss ~delay:fifo_delay Ba_baselines.Go_back_n.protocol))
    [ 0.; 0.1 ]

let test_gbn_bounded_fails_under_reorder () =
  (* The paper's introduction, end to end: bounded sequence numbers plus
     reorder break go-back-N. Across a few seeds we must observe at least
     one incorrect run (misorder, duplicate, or a wedged transfer). *)
  let config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 17) () in
  let broken = ref 0 in
  List.iter
    (fun seed ->
      let r =
        Harness.run Ba_baselines.Go_back_n.protocol ~seed ~messages:300 ~config ~data_loss:0.05
          ~ack_loss:0.05 ~data_delay:jitter_delay ~ack_delay:jitter_delay
          ~deadline:3_000_000 ()
      in
      if not (Harness.correct r) then incr broken)
    [ 1; 2; 3; 4; 5 ];
  check Alcotest.bool "bounded gbn misbehaves under reorder" true (!broken > 0)

let test_selective_repeat_correct () =
  List.iter
    (fun loss ->
      List.iter
        (fun seed ->
          assert_correct "selective repeat"
            (run ~seed ~loss Ba_baselines.Selective_repeat.protocol))
        [ 1; 2 ])
    [ 0.; 0.1 ]

let test_selective_repeat_acks_every_message () =
  let r = run ~messages:400 Ba_baselines.Selective_repeat.protocol in
  assert_correct "sr" r;
  check Alcotest.bool "at least one ack per message" true (r.Harness.acks_sent >= 400)

let test_blockack_fewer_acks_than_selective_repeat () =
  (* The paper's Section VI: one block ack can cover many messages, where
     selective repeat must send one per message. *)
  let r_ba = run ~messages:1000 Blockack.Protocols.simple in
  let r_sr = run ~messages:1000 Ba_baselines.Selective_repeat.protocol in
  assert_correct "ba" r_ba;
  assert_correct "sr" r_sr;
  check Alcotest.bool "block acks are fewer" true
    (r_ba.Harness.acks_sent < r_sr.Harness.acks_sent)

let test_alternating_bit_correct () =
  let config = Config.make ~window:1 ~rto:300 () in
  List.iter
    (fun loss ->
      assert_correct "alternating bit"
        (run ~config ~loss ~messages:100 Ba_baselines.Alternating_bit.protocol))
    [ 0.; 0.2 ]

let test_alternating_bit_stop_and_wait () =
  let config = Config.make ~window:1 ~rto:300 () in
  let r = run ~config ~messages:100 ~delay:fifo_delay Ba_baselines.Alternating_bit.protocol in
  assert_correct "abp" r;
  (* One round trip (100 ticks) per message. *)
  check Alcotest.bool "takes ~one RTT per message" true (r.Harness.ticks >= 100 * 100)

let test_stenning_correct () =
  let config =
    Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~stenning_gap:400 ()
  in
  List.iter
    (fun loss -> assert_correct "stenning" (run ~config ~loss ~messages:200 Ba_baselines.Stenning.protocol))
    [ 0.; 0.1 ]

let test_stenning_rate_cap () =
  (* Steady-state throughput cannot exceed n/gap messages per tick even
     with an enormous window — the paper's degradation claim. *)
  let config =
    Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~stenning_gap:800 ()
  in
  let r = run ~config ~messages:400 ~delay:fifo_delay Ba_baselines.Stenning.protocol in
  assert_correct "stenning capped" r;
  (* 400 messages / (16/800 per tick) = 20_000 ticks minimum. *)
  check Alcotest.bool "rate cap binds" true (r.Harness.ticks >= 19_000);
  (* Block acknowledgment with the same window has no such cap. *)
  let ba_config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) () in
  let r_ba = run ~config:ba_config ~messages:400 ~delay:fifo_delay Blockack.Protocols.simple in
  check Alcotest.bool "blockack much faster" true (r_ba.Harness.ticks * 2 < r.Harness.ticks)

(* ------------------------------------------------------------------ *)
(* Recovery-speed comparison (Section IV claim, the F3 experiment shape) *)

let recovery_after_killed_ack proto ~block =
  (* Let the transfer warm up, then kill the single block acknowledgment
     covering messages [block_start, block_start + block), and measure how
     long the sender needs to get na past the block again. *)
  let config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~ack_coalesce:25 () in
  let killed = ref 0 in
  let r =
    Harness.run proto ~seed:11 ~messages:200 ~config ~data_delay:fifo_delay
      ~ack_delay:fifo_delay
      ~on_setup:(fun setup ->
        Ba_channel.Link.set_fault setup.Harness.ack_link (fun (a : Wire.ack) ->
            let covered = Ba_util.Modseq.distance ~n:32 a.Wire.lo a.Wire.hi + 1 in
            if covered >= block && !killed = 0 then begin
              incr killed;
              Ba_channel.Link.Drop
            end
            else Ba_channel.Link.Deliver))
      ()
  in
  check Alcotest.bool "an ack was killed" true (!killed = 1);
  check Alcotest.bool "still completes" true r.Harness.completed;
  r.Harness.ticks

let test_multi_recovers_block_faster_than_simple () =
  let block = 8 in
  let t_simple = recovery_after_killed_ack Blockack.Protocols.simple ~block in
  let t_multi = recovery_after_killed_ack Blockack.Protocols.multi ~block in
  (* Simple pays ~one rto per covered message; multi pays ~one rto total.
     Demand at least a 2x gap to be robust. *)
  check Alcotest.bool
    (Printf.sprintf "multi (%d) at least 2x faster than simple (%d)" t_multi t_simple)
    true
    (t_multi * 2 < t_simple)

(* ------------------------------------------------------------------ *)
(* Scripted fault: every protocol survives a burst outage *)

let test_blockack_survives_burst_outage () =
  (* Drop every data message in a contiguous burst mid-transfer. *)
  let dropped = ref 0 in
  let r =
    Harness.run Blockack.Protocols.multi ~seed:2 ~messages:300 ~config:blockack_config
      ~data_delay:jitter_delay ~ack_delay:jitter_delay
      ~on_setup:(fun setup ->
        let count = ref 0 in
        Ba_channel.Link.set_fault setup.Harness.data_link (fun (_ : Wire.data) ->
            incr count;
            if !count >= 100 && !count < 140 then begin
              incr dropped;
              Ba_channel.Link.Drop
            end
            else Ba_channel.Link.Deliver))
      ()
  in
  assert_correct "burst outage" r;
  check Alcotest.int "burst really dropped" 40 !dropped

(* ------------------------------------------------------------------ *)
(* Randomized end-to-end property *)

let test_harness_deterministic () =
  (* Identical seed and parameters must give identical results, field for
     field — the reproducibility guarantee every experiment rests on. *)
  let go () =
    run ~seed:123 ~messages:300 ~loss:0.1 Blockack.Protocols.multi
  in
  let a = go () and b = go () in
  check Alcotest.bool "identical results" true (a = b);
  let c = run ~seed:124 ~messages:300 ~loss:0.1 Blockack.Protocols.multi in
  check Alcotest.bool "different seed differs" true (a.Harness.ticks <> c.Harness.ticks)

let test_link_conservation () =
  (* After a completed run every sent message is accounted for: delivered,
     randomly dropped, or queue-dropped (nothing in flight once done). *)
  let r =
    Harness.run Blockack.Protocols.multi ~seed:9 ~messages:400 ~config:blockack_config
      ~data_loss:0.15 ~ack_loss:0.15 ~data_delay:jitter_delay ~ack_delay:jitter_delay ()
  in
  assert_correct "conservation run" r;
  (* data_sent counts harness-level sends; after completion the engine
     drained, so sent = delivered-at-link + dropped. We can't read link
     deliveries directly here, but sent - dropped >= messages (every
     payload got through at least once) and retransmissions account for
     the surplus sends. *)
  check Alcotest.bool "sent >= messages + retx - dropped allows completion" true
    (r.Harness.data_sent - r.Harness.data_dropped >= r.Harness.messages);
  check Alcotest.int "sends = fresh + retransmissions" r.Harness.data_sent
    (r.Harness.messages + r.Harness.retransmissions)

let test_latency_reported () =
  let r = run ~messages:200 Blockack.Protocols.multi in
  match r.Harness.latency with
  | None -> Alcotest.fail "latency summary expected"
  | Some l ->
      check Alcotest.int "one sample per message" 200 l.Ba_util.Stats.count;
      check Alcotest.int "raw samples exposed" 200 (List.length r.Harness.latencies);
      (* One-way delay is 20-80: in-order delivery latency is at least the
         minimum link delay. *)
      check Alcotest.bool "plausible minimum" true (l.Ba_util.Stats.min >= 20.)

let prop_blockack_always_correct =
  QCheck.Test.make ~name:"blockack delivers exactly once, in order, for any seed/loss/jitter"
    ~count:25
    QCheck.(
      quad (int_range 1 10_000) (int_bound 30) (int_range 0 40) bool)
    (fun (seed, loss_pct, jitter, multi) ->
      let loss = float_of_int loss_pct /. 100. in
      let delay = Dist.Uniform (30, 50 + jitter) in
      let proto = if multi then Blockack.Protocols.multi else Blockack.Protocols.simple in
      let r =
        Harness.run proto ~seed ~messages:150
          ~config:blockack_config ~data_loss:loss ~ack_loss:loss ~data_delay:delay
          ~ack_delay:delay ()
      in
      Harness.correct r)

let prop_selective_repeat_always_correct =
  QCheck.Test.make ~name:"selective repeat delivers exactly once for any seed/loss" ~count:15
    QCheck.(pair (int_range 1 10_000) (int_bound 25))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let r =
        Harness.run Ba_baselines.Selective_repeat.protocol ~seed ~messages:120
          ~config:blockack_config ~data_loss:loss ~ack_loss:loss ~data_delay:jitter_delay
          ~ack_delay:jitter_delay ()
      in
      Harness.correct r)

let () =
  Alcotest.run "e2e"
    [
      ( "blockack",
        [
          Alcotest.test_case "lossless" `Quick test_blockack_lossless;
          Alcotest.test_case "simple under loss" `Quick test_blockack_simple_under_loss;
          Alcotest.test_case "multi under loss" `Quick test_blockack_multi_under_loss;
          Alcotest.test_case "heavy loss" `Quick test_blockack_heavy_loss;
          Alcotest.test_case "asymmetric (ack-only) loss" `Quick test_blockack_asymmetric_loss;
          Alcotest.test_case "unbounded wire numbers" `Quick test_blockack_unbounded_wire;
          Alcotest.test_case "window one" `Quick test_blockack_window_one;
          Alcotest.test_case "large window" `Quick test_blockack_large_window;
          Alcotest.test_case "coalescing reduces acks" `Quick
            test_blockack_coalescing_reduces_acks;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "gbn unbounded correct" `Quick test_gbn_unbounded_correct;
          Alcotest.test_case "gbn bounded fails under reorder" `Quick
            test_gbn_bounded_fails_under_reorder;
          Alcotest.test_case "selective repeat correct" `Quick test_selective_repeat_correct;
          Alcotest.test_case "selective repeat acks every message" `Quick
            test_selective_repeat_acks_every_message;
          Alcotest.test_case "blockack sends fewer acks" `Quick
            test_blockack_fewer_acks_than_selective_repeat;
          Alcotest.test_case "alternating bit correct" `Quick test_alternating_bit_correct;
          Alcotest.test_case "alternating bit is stop-and-wait" `Quick
            test_alternating_bit_stop_and_wait;
          Alcotest.test_case "stenning correct" `Quick test_stenning_correct;
          Alcotest.test_case "stenning rate cap" `Quick test_stenning_rate_cap;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "multi recovers lost block ack faster" `Quick
            test_multi_recovers_block_faster_than_simple;
          Alcotest.test_case "survives burst outage" `Quick test_blockack_survives_burst_outage;
        ] );
      ( "harness",
        [
          Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
          Alcotest.test_case "conservation" `Quick test_link_conservation;
          Alcotest.test_case "latency reported" `Quick test_latency_reported;
        ] );
      ( "properties",
        [ qcheck prop_blockack_always_correct; qcheck prop_selective_repeat_always_correct ] );
    ]
