test/test_model.ml: Alcotest Ba_model Ba_util Ba_verify Format List Printf QCheck QCheck_alcotest String
