test/test_extras.ml: Alcotest Ba_channel Ba_experiments Ba_proto Ba_sim Ba_trace Blockack List Printf QCheck QCheck_alcotest Queue String
