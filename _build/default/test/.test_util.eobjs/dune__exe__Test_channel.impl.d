test/test_channel.ml: Alcotest Ba_channel Ba_sim Ba_util Hashtbl List QCheck QCheck_alcotest
