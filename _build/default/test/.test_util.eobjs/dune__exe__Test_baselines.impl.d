test/test_baselines.ml: Alcotest Ba_baselines Ba_proto Ba_sim List Option Queue Seq
