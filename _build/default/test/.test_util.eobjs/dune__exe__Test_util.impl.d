test/test_util.ml: Alcotest Array Ba_util Hashtbl Int64 List Option Printf QCheck QCheck_alcotest String
