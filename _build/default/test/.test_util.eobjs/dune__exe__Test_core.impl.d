test/test_core.ml: Alcotest Ba_proto Ba_sim Blockack List Option Printf QCheck QCheck_alcotest Queue Seq String
