test/test_e2e.ml: Alcotest Ba_baselines Ba_channel Ba_proto Ba_util Blockack List Printf QCheck QCheck_alcotest
