test/test_sim.ml: Alcotest Ba_sim Ba_util Lazy List
