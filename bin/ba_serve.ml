(* ba_serve: the receiver half of a registry protocol on a real UDP
   socket.

   Binds --listen, learns the client's address from its first datagram,
   and runs the protocol's receiver under a wall-clock driver: acks and
   resync POS frames go out through an optional impairment shim, and
   every accepted delivery is validated against the deterministic
   workload and folded into a running digest.

   With --state the durable triple (epoch, position, digest) is
   rewritten after each delivery, and a fresh process started on the
   same state file comes back as the next incarnation at the persisted
   position — the epoch handshake then resumes the transfer with no
   duplicate delivery. --die-after K SIGKILLs the process after K
   deliveries, which is how the cram tests kill a server mid-transfer
   deterministically.

   The stdout summary contains only timing-free fields, so a replay of
   the same seeds is byte-identical; wall-clock figures and socket/shim
   counters go to stderr.

   Examples:
     ba_serve --listen 127.0.0.1:9000 --messages 500
     ba_serve --listen 127.0.0.1:0 --port-file port --state srv.state --die-after 200 *)

open Cmdliner
module Registry = Ba_registry.Registry
module Driver = Ba_transport.Driver
module Endpoint = Ba_transport.Endpoint
module Shim = Ba_transport.Shim

let addr_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "address must be HOST:PORT")
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 -> (
            match Unix.inet_addr_of_string host with
            | ip -> Ok (Unix.ADDR_INET (ip, p))
            | exception Failure _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                    Error (`Msg (Printf.sprintf "cannot resolve host %S" host))
                | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), p))))
        | Some _ | None -> Error (`Msg (Printf.sprintf "bad port %S" port)))
  in
  let print ppf = function
    | Unix.ADDR_INET (ip, p) -> Format.fprintf ppf "%s:%d" (Unix.string_of_inet_addr ip) p
    | Unix.ADDR_UNIX p -> Format.pp_print_string ppf p
  in
  Arg.conv ~docv:"HOST:PORT" (parse, print)

let plan_conv =
  let parse s =
    match Ba_channel.Fault_plan.of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"PLAN" (parse, (fun ppf p ->
      Format.pp_print_string ppf (Ba_channel.Fault_plan.to_string p)))

let proto_conv =
  let parse s = match Registry.parse s with Ok e -> Ok e | Error msg -> Error (`Msg msg) in
  Arg.conv ~docv:"PROTOCOL" (parse, (fun ppf e -> Format.pp_print_string ppf e.Registry.name))

(* Durable receiver state: one text line "epoch pos digest". Written to
   a sibling temp file and renamed into place so a SIGKILL at any
   instant leaves either the old record or the new one, never a torn
   write — that atomicity is what makes --die-after recoverable. *)
let persist_state path ~epoch ~pos ~digest =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%d %d %d\n" epoch pos digest;
  close_out oc;
  Sys.rename tmp path

let read_state path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ e; p; d ] -> (
        match (int_of_string_opt e, int_of_string_opt p, int_of_string_opt d) with
        | Some e, Some p, Some d -> Some (e, p, d)
        | _ -> failwith (Printf.sprintf "ba_serve: corrupt state file %s" path))
    | _ -> failwith (Printf.sprintf "ba_serve: corrupt state file %s" path)

let run entry listen port_file messages payload_size wseed window rto tick_us state
    die_after plan impair_seed deadline linger =
  let config = Registry.config ~window ~rto entry () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock listen;
  (match Unix.getsockname sock with
  | Unix.ADDR_INET (_, p) -> (
      match port_file with
      | Some f ->
          let oc = open_out f in
          Printf.fprintf oc "%d\n" p;
          close_out oc
      | None -> ())
  | Unix.ADDR_UNIX _ -> ());
  let restore =
    match state with
    | None -> None
    | Some path -> (
        match read_state path with
        | None -> None
        | Some (e, p, d) -> Some (e + 1, p, d))
  in
  let engine = Ba_sim.Engine.create ~seed:impair_seed () in
  let srv = ref None in
  let driver =
    Driver.create ~engine ~sock ~tick_us
      ~on_frame:(fun f from -> match !srv with Some s -> Endpoint.Server.on_frame s f from | None -> ())
      ()
  in
  let session_deliveries = ref 0 in
  let s =
    Endpoint.Server.create ~engine ~protocol:entry.Registry.protocol ~config ~messages
      ~payload_size ~wseed ?restore ?plan ~impair_seed
      ~on_deliver:(fun ~epoch ~pos ~digest ->
        (match state with Some path -> persist_state path ~epoch ~pos ~digest | None -> ());
        incr session_deliveries;
        match die_after with
        | Some k when !session_deliveries >= k ->
            (* Deterministic mid-transfer death: state is already on
               disk, so the next incarnation resumes at exactly here. *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | Some _ | None -> ())
      ~send:(fun addr buf len -> ignore (Driver.send_to driver addr buf len))
      ()
  in
  srv := Some s;
  let start_pos = match restore with Some (_, p, _) -> p | None -> 0 in
  let t0 = Unix.gettimeofday () in
  (* Linger after completion: the client may still be missing its final
     acknowledgment, and only retransmitted data re-triggers it. *)
  let complete_at = ref None in
  let stop () =
    if not (Endpoint.Server.complete s) then false
    else begin
      (match !complete_at with None -> complete_at := Some (Unix.gettimeofday ()) | Some _ -> ());
      match !complete_at with
      | Some t -> Unix.gettimeofday () -. t >= linger
      | None -> false
    end
  in
  let finished = Driver.run ~deadline_s:deadline ~stop [ driver ] in
  let wall = Unix.gettimeofday () -. t0 in
  let expected = Endpoint.expected_digest ~wseed ~payload_size ~messages in
  Printf.printf "ba_serve: %s %d messages\n" entry.Registry.name messages;
  Printf.printf "resumed: %s\n"
    (match restore with
    | Some (e, p, _) -> Printf.sprintf "epoch %d position %d" e p
    | None -> "no");
  Printf.printf
    "delivered: %d/%d (this run %d) duplicates=%d misordered=%d corrupted=%d\n"
    (Endpoint.Server.position s) messages
    (Endpoint.Server.position s - start_pos)
    (Endpoint.Server.duplicates s) (Endpoint.Server.misordered s)
    (Endpoint.Server.corrupted s);
  Printf.printf "digest: %s\n"
    (if Endpoint.Server.digest s = expected then "ok" else "MISMATCH");
  Printf.printf "completed: %b\n" finished;
  let ss = Endpoint.Server.shim_stats s in
  Printf.eprintf
    "ba_serve: wall=%.3fs rx=%d tx=%d decode-errors=%d send-errors=%d acks=%d \
     resync-rounds=%d epoch=%d\n"
    wall (Driver.rx_datagrams driver) (Driver.tx_datagrams driver)
    (Driver.decode_errors driver) (Driver.send_errors driver)
    (Endpoint.Server.acks_sent s) (Endpoint.Server.resync_rounds s)
    (Endpoint.Server.epoch s);
  Printf.eprintf
    "ba_serve: shim offered=%d passed=%d dropped=%d dup=%d corrupt=%d delayed=%d \
     outage=%d gated=%d\n"
    ss.Shim.offered ss.Shim.passed ss.Shim.dropped ss.Shim.duplicated ss.Shim.corrupted
    ss.Shim.delayed ss.Shim.outage_drops ss.Shim.gated;
  Unix.close sock;
  if finished then 0 else 1

let entry_arg =
  Arg.(
    value
    & opt proto_conv (Option.get (Registry.find "blockack"))
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to serve (a registry name; see ba_sim --list-protocols).")

let listen_arg =
  Arg.(
    value
    & opt addr_conv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:"Address to bind (port 0 picks a free port; see $(b,--port-file)).")

let port_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~docv:"FILE"
        ~doc:"Write the bound UDP port to FILE once listening — how scripts connect to a \
              server started on port 0.")

let messages_arg =
  Arg.(value & opt int 1000 & info [ "n"; "messages" ] ~docv:"N" ~doc:"Workload size.")

let payload_arg =
  Arg.(value & opt int 32 & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload size per message.")

let wseed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "wseed" ] ~docv:"SEED"
        ~doc:"Workload seed; client and server must agree for validation to pass.")

let window_arg = Arg.(value & opt int 16 & info [ "window" ] ~docv:"W" ~doc:"Protocol window.")

let rto_arg =
  Arg.(
    value
    & opt int 250
    & info [ "rto" ] ~docv:"TICKS"
        ~doc:"Retransmission timeout in engine ticks (real duration: rto * tick-us).")

let tick_us_arg =
  Arg.(
    value
    & opt int 200
    & info [ "tick-us" ] ~docv:"US"
        ~doc:"Real microseconds per engine tick — the knob that maps virtual timers onto \
              the wall clock.")

let state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"FILE"
        ~doc:"Durable state file (epoch, position, digest), rewritten atomically after \
              every delivery. If it exists at startup the server resumes from it as the \
              next incarnation.")

let die_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "die-after" ] ~docv:"K"
        ~doc:"SIGKILL this process after K deliveries in this run (test hook for \
              kill-and-restart recovery).")

let impair_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "impair" ] ~docv:"PLAN"
        ~doc:"Fault plan applied to outgoing datagrams (same replay-key syntax as the \
              simulator's chaos campaign, e.g. 'ge(0.02->0.3,l=0.05/0.3)+dup(0.03x2)').")

let impair_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "impair-seed" ] ~docv:"SEED"
        ~doc:"Seed for the impairment shim's fault stream (replays exactly).")

let deadline_arg =
  Arg.(
    value
    & opt float 60.
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Hard wall-clock bound: exit 1 if the transfer has not completed by then.")

let linger_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "linger" ] ~docv:"SECS"
        ~doc:"Keep serving this long after the last delivery, so retransmitted data can \
              re-trigger the client's final acknowledgment.")

let cmd =
  let doc = "serve a window-protocol receiver on a real UDP socket" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the receiver half of a registry protocol over loopback (or any) UDP: \
         engine timers mapped onto the wall clock, arrivals decoded by the length-prefixed \
         binary codec (garbage is counted and dropped, never fatal), deliveries validated \
         against the deterministic workload. With $(b,--state) the durable (epoch, \
         position, digest) triple survives SIGKILL, and a restarted server re-admits the \
         client through the incarnation-epoch resync handshake. Exit status 1 if the \
         transfer did not complete before $(b,--deadline).";
    ]
  in
  Cmd.v
    (Cmd.info "ba_serve" ~doc ~man ~version:Ba_cli.version)
    Term.(
      const run $ entry_arg $ listen_arg $ port_file_arg $ messages_arg $ payload_arg
      $ wseed_arg $ window_arg $ rto_arg $ tick_us_arg $ state_arg $ die_after_arg
      $ impair_arg $ impair_seed_arg $ deadline_arg $ linger_arg)

let () = exit (Cmd.eval' cmd)
