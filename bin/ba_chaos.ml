(* ba_chaos: adversarial campaign runner.

   Sweeps seeds x fault classes (bursty loss, duplication, corruption,
   outages, reordering, endpoint crash-restart, memory overload, and
   the composed storm) through the experiment
   harness and checks that the robust protocols — block acknowledgment
   and selective repeat, both with the paper's 2w wire modulus — stay
   safe (no duplicate, misordered or corrupted delivery) and recover
   (complete once faults quiesce). Then, unless --no-demo, demonstrates
   that textbook bounded go-back-N (modulus w+1) does NOT survive the
   reorder adversary.

   Examples:
     ba_chaos                        # 50 seeds, all classes, both checks
     ba_chaos --seeds 10 --messages 40 --classes corruption,outage
     ba_chaos --protocol blockack --no-demo
     ba_chaos --replay "seed=7 fault=crash"   # re-run one failing cell *)

open Cmdliner
module Chaos = Ba_verify.Chaos
module Registry = Ba_registry.Registry

(* The audited set comes from the shared registry: entries flagged
   robust are exactly the protocols the campaign promises stay clean. *)
let robust_protocols = List.map (fun e -> (e.Registry.name, e)) Registry.robust

let parse_classes names =
  List.map
    (fun name ->
      match Chaos.class_of_name name with
      | Some c -> c
      | None ->
          Format.eprintf "ba_chaos: unknown fault class %S@." name;
          exit 2)
    names

(* --replay "seed=N fault=CLASS": re-run one campaign cell from the key
   printed in a failure report. The fault schedule is a pure function of
   (seed, class), so this reproduces the exact run — plans and all. *)
let replay key messages protocol_filter =
  let seed, fault_name =
    try Scanf.sscanf key " seed=%d fault=%s%!" (fun s f -> (s, f))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      Format.eprintf "ba_chaos: --replay expects \"seed=N fault=CLASS\", got %S@." key;
      exit 2
  in
  let fault =
    match Chaos.class_of_name fault_name with
    | Some f -> f
    | None ->
        Format.eprintf "ba_chaos: unknown fault class %S@." fault_name;
        exit 2
  in
  let entry =
    match protocol_filter with
    | None -> (
        match Registry.find "blockack" with Some e -> e | None -> assert false)
    | Some name -> (
        match Registry.parse name with
        | Ok e -> e
        | Error msg ->
            Format.eprintf "ba_chaos: %s@." msg;
            exit 2)
  in
  if
    (fault = Chaos.Crash || fault = Chaos.Storm) && not (Registry.crash_tolerant entry)
  then begin
    Format.eprintf "ba_chaos: %s does not implement the crash-restart lifecycle@."
      entry.Registry.name;
    exit 2
  end;
  let config = if entry.Registry.robust then Chaos.robust_config else Chaos.gbn_config in
  match Chaos.run_one ~messages ~config entry.Registry.protocol fault ~seed with
  | Some f ->
      Format.printf "@[<v>replayed failure:@,%a@]@." Chaos.pp_failure f;
      1
  | None ->
      Format.printf "replay: seed=%d fault=%s protocol=%s — clean@." seed
        (Chaos.class_name fault) entry.Registry.name;
      0

let run seeds messages class_names protocol_filter no_demo jobs replay_key =
  match replay_key with
  | Some key -> replay key messages protocol_filter
  | None ->
  let jobs = Ba_cli.resolve_jobs jobs in
  let seeds = List.init seeds (fun i -> i + 1) in
  let classes =
    match class_names with [] -> Chaos.all_classes | names -> parse_classes names
  in
  let audited =
    match protocol_filter with
    | None -> robust_protocols
    | Some name -> (
        match Registry.parse name with
        | Error msg ->
            Format.eprintf "ba_chaos: %s@." msg;
            exit 2
        | Ok e when not e.Registry.robust ->
            Format.eprintf
              "ba_chaos: %S is not in the audited robust set (expected one of: %s)@."
              name
              (String.concat ", " (List.map fst robust_protocols));
            exit 2
        | Ok e -> [ (e.Registry.name, e) ])
  in
  let reports =
    List.map
      (fun (_, e) -> Chaos.run_campaign ~messages ~seeds ~classes ~jobs e.Registry.protocol)
      audited
  in
  List.iter (fun r -> Format.printf "%a@.@." Chaos.pp_report r) reports;
  let robust_ok = List.for_all Chaos.clean reports in
  if not robust_ok then Format.printf "FAIL: a robust protocol violated safety or recovery@.";
  let demo_ok =
    if no_demo then true
    else begin
      (* The negative control: bounded go-back-N's w+1 modulus cannot
         tell a stale acknowledgment from a fresh one once copies
         overtake each other, so the reorder adversary must break it.
         A clean sweep here would mean the campaign lost its teeth. *)
      let r =
        Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds ~classes:[ Chaos.Reorder ]
          ~jobs Ba_baselines.Go_back_n.protocol
      in
      let broken = not (Chaos.clean r) in
      if broken then begin
        Format.printf "demonstrated: bounded go-back-N misbehaves under reorder@.";
        List.iter
          (fun (c : Chaos.class_report) ->
            match c.Chaos.first_failure with
            | Some f -> Format.printf "  @[<v>%a@]@." Chaos.pp_failure f
            | None -> ())
          r.Chaos.classes
      end
      else
        Format.printf
          "FAIL: expected bounded go-back-N to misbehave under reorder, but it survived@.";
      broken
    end
  in
  if robust_ok && demo_ok then 0 else 1

let seeds =
  Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of seeds to sweep (1..N).")

let messages =
  Arg.(value & opt int 60 & info [ "messages" ] ~doc:"Payloads per run.")

let classes =
  let doc =
    "Comma-separated fault classes to run (default: all of bursty-loss, duplication, \
     corruption, outage, reorder, crash, overload, storm)."
  in
  Arg.(value & opt (list string) [] & info [ "classes" ] ~doc)

let replay_key =
  let doc =
    "Re-run one campaign cell from a failure's replay key, e.g. \
     $(b,--replay) \"seed=7 fault=crash\". The fault schedule is derived from the seed, so \
     the run is reproduced exactly; combine with $(b,--protocol) to pick the protocol \
     (default blockack). Exit status 1 when the replayed run fails again."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~doc)

let protocol =
  Arg.(value & opt (some string) None
       & info [ "protocol" ]
           ~doc:"Audit only this robust protocol (a registry name or alias, e.g. blockack, \
                 selective-repeat).")

let no_demo =
  Arg.(value & flag
       & info [ "no-demo" ] ~doc:"Skip the bounded go-back-N reorder demonstration.")

let cmd =
  let doc = "chaos-test window protocols against adversarial channel faults" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs every (seed, fault class) pair through the experiment harness and checks \
         safety (no duplicate, misordered or corrupted delivery — ever) and recovery \
         (the transfer completes once scheduled faults quiesce). Fault schedules are a \
         pure function of the seed; any failure is printed with its seed and fault plans \
         so the run can be replayed. Cells are independent, so $(b,--jobs) farms them to \
         worker domains; reports are assembled in seed order either way, making the output \
         byte-identical at any job count. Exit status 1 when a robust protocol fails, or \
         when the go-back-N negative control unexpectedly survives.";
    ]
  in
  Cmd.v
    (Cmd.info "ba_chaos" ~doc ~man ~version:Ba_cli.version)
    Term.(const run $ seeds $ messages $ classes $ protocol $ no_demo $ Ba_cli.jobs $ replay_key)

let () = exit (Cmd.eval' cmd)
