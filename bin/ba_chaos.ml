(* ba_chaos: adversarial-channel campaign runner.

   Sweeps seeds x fault classes (bursty loss, duplication, corruption,
   outages, reordering) through the experiment harness and checks that
   the robust protocols — block acknowledgment and selective repeat,
   both with the paper's 2w wire modulus — stay safe (no duplicate,
   misordered or corrupted delivery) and recover (complete once faults
   quiesce). Then, unless --no-demo, demonstrates that textbook bounded
   go-back-N (modulus w+1) does NOT survive the reorder adversary.

   Examples:
     ba_chaos                        # 50 seeds, all classes, both checks
     ba_chaos --seeds 10 --messages 40 --classes corruption,outage
     ba_chaos --protocol blockack --no-demo *)

open Cmdliner
module Chaos = Ba_verify.Chaos
module Registry = Ba_registry.Registry

(* The audited set comes from the shared registry: entries flagged
   robust are exactly the protocols the campaign promises stay clean. *)
let robust_protocols = List.map (fun e -> (e.Registry.name, e)) Registry.robust

let parse_classes names =
  List.map
    (fun name ->
      match Chaos.class_of_name name with
      | Some c -> c
      | None ->
          Format.eprintf "ba_chaos: unknown fault class %S@." name;
          exit 2)
    names

let run seeds messages class_names protocol_filter no_demo jobs =
  let jobs = Ba_cli.resolve_jobs jobs in
  let seeds = List.init seeds (fun i -> i + 1) in
  let classes =
    match class_names with [] -> Chaos.all_classes | names -> parse_classes names
  in
  let audited =
    match protocol_filter with
    | None -> robust_protocols
    | Some name -> (
        match Registry.parse name with
        | Error msg ->
            Format.eprintf "ba_chaos: %s@." msg;
            exit 2
        | Ok e when not e.Registry.robust ->
            Format.eprintf
              "ba_chaos: %S is not in the audited robust set (expected one of: %s)@."
              name
              (String.concat ", " (List.map fst robust_protocols));
            exit 2
        | Ok e -> [ (e.Registry.name, e) ])
  in
  let reports =
    List.map
      (fun (_, e) -> Chaos.run_campaign ~messages ~seeds ~classes ~jobs e.Registry.protocol)
      audited
  in
  List.iter (fun r -> Format.printf "%a@.@." Chaos.pp_report r) reports;
  let robust_ok = List.for_all Chaos.clean reports in
  if not robust_ok then Format.printf "FAIL: a robust protocol violated safety or recovery@.";
  let demo_ok =
    if no_demo then true
    else begin
      (* The negative control: bounded go-back-N's w+1 modulus cannot
         tell a stale acknowledgment from a fresh one once copies
         overtake each other, so the reorder adversary must break it.
         A clean sweep here would mean the campaign lost its teeth. *)
      let r =
        Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds ~classes:[ Chaos.Reorder ]
          ~jobs Ba_baselines.Go_back_n.protocol
      in
      let broken = not (Chaos.clean r) in
      if broken then begin
        Format.printf "demonstrated: bounded go-back-N misbehaves under reorder@.";
        List.iter
          (fun (c : Chaos.class_report) ->
            match c.Chaos.first_failure with
            | Some f -> Format.printf "  @[<v>%a@]@." Chaos.pp_failure f
            | None -> ())
          r.Chaos.classes
      end
      else
        Format.printf
          "FAIL: expected bounded go-back-N to misbehave under reorder, but it survived@.";
      broken
    end
  in
  if robust_ok && demo_ok then 0 else 1

let seeds =
  Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of seeds to sweep (1..N).")

let messages =
  Arg.(value & opt int 60 & info [ "messages" ] ~doc:"Payloads per run.")

let classes =
  let doc =
    "Comma-separated fault classes to run (default: all of bursty-loss, duplication, \
     corruption, outage, reorder)."
  in
  Arg.(value & opt (list string) [] & info [ "classes" ] ~doc)

let protocol =
  Arg.(value & opt (some string) None
       & info [ "protocol" ]
           ~doc:"Audit only this robust protocol (a registry name or alias, e.g. blockack, \
                 selective-repeat).")

let no_demo =
  Arg.(value & flag
       & info [ "no-demo" ] ~doc:"Skip the bounded go-back-N reorder demonstration.")

let cmd =
  let doc = "chaos-test window protocols against adversarial channel faults" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs every (seed, fault class) pair through the experiment harness and checks \
         safety (no duplicate, misordered or corrupted delivery — ever) and recovery \
         (the transfer completes once scheduled faults quiesce). Fault schedules are a \
         pure function of the seed; any failure is printed with its seed and fault plans \
         so the run can be replayed. Cells are independent, so $(b,--jobs) farms them to \
         worker domains; reports are assembled in seed order either way, making the output \
         byte-identical at any job count. Exit status 1 when a robust protocol fails, or \
         when the go-back-N negative control unexpectedly survives.";
    ]
  in
  Cmd.v
    (Cmd.info "ba_chaos" ~doc ~man)
    Term.(const run $ seeds $ messages $ classes $ protocol $ no_demo $ Ba_cli.jobs)

let () = exit (Cmd.eval' cmd)
