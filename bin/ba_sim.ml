(* ba_sim: run one simulated transfer and report the metrics.

   Examples:
     ba_sim --protocol blockack-multi --messages 5000 --loss 0.05
     ba_sim --protocol go-back-n --jitter 50 --loss 0.01 --window 8
     ba_sim --protocol stenning --modulus 16 --window 8 --gap 600 *)

open Cmdliner
module Registry = Ba_registry.Registry

(* Name resolution lives in the shared registry — ba_sim, ba_net and
   ba_chaos all accept the same spellings and print the same
   unknown-name error. *)
let protocol_conv =
  let parse s =
    match Registry.parse s with Ok e -> Ok e | Error msg -> Error (`Msg msg)
  in
  let print ppf e = Format.pp_print_string ppf e.Registry.name in
  Arg.conv ~docv:"PROTOCOL" (parse, print)

let run list_protocols entry messages payload_size loss ack_loss_opt base_delay jitter window
    rto modulus coalesce gap seed seeds histogram =
  if list_protocols then begin
    Format.printf "%a" Registry.pp_list ();
    exit 0
  end;
  let ack_loss = Option.value ~default:loss ack_loss_opt in
  let delay =
    if jitter = 0 then Ba_channel.Dist.Constant base_delay
    else Ba_channel.Dist.Uniform (base_delay, base_delay + jitter)
  in
  let max_transit = base_delay + jitter in
  let rto =
    match rto with
    | Some r -> r
    | None -> (2 * max_transit) + coalesce + 100
  in
  let config =
    Ba_proto.Proto_config.make ~window ~rto
      ~wire_modulus:(Option.map (fun n -> n) modulus)
      ~ack_coalesce:coalesce ~stenning_gap:gap ~max_transit ()
  in
  let seed_list = if seeds <= 1 then [ seed ] else List.init seeds (fun i -> seed + i) in
  let proto = entry.Registry.protocol in
  let all_ok = ref true in
  List.iter
    (fun seed ->
      let r =
        Ba_proto.Harness.run proto ~seed ~messages ~payload_size ~config ~data_loss:loss
          ~ack_loss ~data_delay:delay ~ack_delay:delay ()
      in
      if not (Ba_proto.Harness.correct r) then all_ok := false;
      Format.printf "seed %d: %a@." seed Ba_proto.Harness.pp_result r;
      (match r.Ba_proto.Harness.latency with
      | Some l ->
          Format.printf "  latency: %a@." Ba_util.Stats.pp_summary l;
          if histogram then begin
            let h =
              Ba_util.Histogram.create ~lo:0. ~hi:(l.Ba_util.Stats.max +. 1.) ~bins:12
            in
            List.iter (Ba_util.Histogram.add h) r.Ba_proto.Harness.latencies;
            print_string (Ba_util.Histogram.render ~width:40 h)
          end
      | None -> ()))
    seed_list;
  if !all_ok then 0 else 1

let protocol =
  let doc =
    "Protocol to simulate: " ^ String.concat ", " Registry.names
    ^ " (see $(b,--list-protocols))."
  in
  let default =
    match Registry.find "blockack-multi" with
    | Some e -> e
    | None -> assert false
  in
  Arg.(value & opt protocol_conv default & info [ "p"; "protocol" ] ~doc)

let list_protocols =
  Arg.(value & flag
       & info [ "list-protocols" ]
           ~doc:"List every protocol in the shared registry (with aliases) and exit.")

let messages =
  Arg.(value & opt int 1000 & info [ "m"; "messages" ] ~doc:"Messages to transfer.")

let payload_size = Arg.(value & opt int 32 & info [ "payload-size" ] ~doc:"Payload bytes.")

let loss =
  Arg.(value & opt float 0.0 & info [ "l"; "loss" ] ~doc:"Loss probability on both links.")

let ack_loss =
  Arg.(value & opt (some float) None & info [ "ack-loss" ] ~doc:"Override ack-link loss.")

let base_delay = Arg.(value & opt int 50 & info [ "delay" ] ~doc:"Minimum one-way delay (ticks).")

let jitter =
  Arg.(value & opt int 0 & info [ "j"; "jitter" ] ~doc:"Extra uniform delay (0 = FIFO order).")

let window = Arg.(value & opt int 16 & info [ "w"; "window" ] ~doc:"Window size.")

let rto =
  Arg.(value & opt (some int) None
       & info [ "rto" ] ~doc:"Retransmission timeout; default 2*max_delay + coalesce + 100.")

let modulus =
  Arg.(value & opt (some int) None
       & info [ "n"; "modulus" ] ~doc:"Wire sequence-number modulus (default: unbounded).")

let coalesce =
  Arg.(value & opt int 0 & info [ "coalesce" ] ~doc:"Receiver ack-coalescing delay (ticks).")

let gap =
  Arg.(value & opt int 0
       & info [ "gap" ] ~doc:"Stenning slot-reuse quarantine (stenning protocol only).")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc:"Base random seed.")

let seeds = Arg.(value & opt int 1 & info [ "seeds" ] ~doc:"Run this many consecutive seeds.")

let histogram =
  Arg.(value & flag & info [ "histogram" ] ~doc:"Render a delivery-latency histogram per run.")

let cmd =
  let doc = "simulate a window-protocol transfer over lossy, reordering links" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the block-acknowledgment protocol (Brown, Gouda & Miller, 1989) or one of \
         its baselines through the discrete-event harness and prints delivery, \
         retransmission and acknowledgment statistics. Exit status 1 if any run was \
         incorrect (lost, duplicated or misordered deliveries) — useful for \
         demonstrating that bounded go-back-N is unsafe under reorder.";
    ]
  in
  Cmd.v
    (Cmd.info "ba_sim" ~doc ~man ~version:Ba_cli.version)
    Term.(
      const run $ list_protocols $ protocol $ messages $ payload_size $ loss $ ack_loss
      $ base_delay $ jitter $ window $ rto $ modulus $ coalesce $ gap $ seed $ seeds
      $ histogram)

let () = exit (Cmd.eval' cmd)
