(* ba_diagram: watch the protocol on the wire.

   Builds a block-acknowledgment transfer out of raw endpoints, records
   every transmission, loss, delivery and acknowledgment, and renders the
   classic two-column time-sequence diagram.

   Examples:
     ba_diagram -m 6 --loss 0.2                 # a lossy transfer
     ba_diagram -m 4 --kill-first-ack           # the F3 recovery scenario
     ba_diagram -m 4 --kill-first-ack --simple  # ... with the Section II sender
     ba_diagram -m 40 --from 1000 --until 3000  # zoom into a time window *)

open Cmdliner

type sender_ops = { pump : unit -> unit; on_ack : Ba_proto.Wire.ack -> unit; done_ : unit -> bool }

let run messages loss jitter window coalesce simple kill_first_ack seed from_time until_time =
  let base = 50 in
  let delay =
    if jitter = 0 then Ba_channel.Dist.Constant base
    else Ba_channel.Dist.Uniform (base, base + jitter)
  in
  let rto = (2 * (base + jitter)) + coalesce + 100 in
  let config =
    Ba_proto.Proto_config.make ~window ~rto ~wire_modulus:(Some (2 * window))
      ~ack_coalesce:coalesce ~max_transit:(base + jitter) ()
  in
  let engine = Ba_sim.Engine.create ~seed () in
  let tracer = Ba_trace.Tracer.create () in
  let trace side fmt =
    Printf.ksprintf
      (fun label -> Ba_trace.Tracer.record tracer ~time:(Ba_sim.Engine.now engine) ~side label)
      fmt
  in
  let sender_cell = ref None and receiver_cell = ref None in
  let data_link =
    Ba_channel.Link.create engine ~loss ~delay
      ~deliver:(fun (d : Ba_proto.Wire.data) ->
        trace Ba_trace.Tracer.Receiver "-> DATA %d" d.Ba_proto.Wire.seq;
        match !receiver_cell with Some r -> Blockack.Receiver.on_data r d | None -> ())
      ()
  in
  let killed = ref false in
  let ack_link =
    Ba_channel.Link.create engine ~loss ~delay
      ~deliver:(fun (a : Ba_proto.Wire.ack) ->
        trace Ba_trace.Tracer.Sender "ACK (%d,%d) <-" a.Ba_proto.Wire.lo a.Ba_proto.Wire.hi;
        match !sender_cell with Some s -> s.on_ack a | None -> ())
      ()
  in
  (* Random losses on the data link are visible as sends that never show
     a matching arrival; make ack losses explicit in the diagram. *)
  Ba_channel.Link.set_fault ack_link (fun (a : Ba_proto.Wire.ack) ->
      if kill_first_ack && not !killed then begin
        killed := true;
        trace Ba_trace.Tracer.Receiver "<- ACK (%d,%d)  ** KILLED **" a.Ba_proto.Wire.lo
          a.Ba_proto.Wire.hi;
        Ba_channel.Link.Drop
      end
      else Ba_channel.Link.Deliver);
  let next_payload = Ba_proto.Workload.supplier ~seed ~size:8 ~count:messages in
  let tx_data (d : Ba_proto.Wire.data) =
    trace Ba_trace.Tracer.Sender "DATA %d ->" d.Ba_proto.Wire.seq;
    Ba_channel.Link.send data_link d
  in
  let tx_ack (a : Ba_proto.Wire.ack) =
    trace Ba_trace.Tracer.Receiver "<- ACK (%d,%d)" a.Ba_proto.Wire.lo a.Ba_proto.Wire.hi;
    Ba_channel.Link.send ack_link a
  in
  let deliver payload = trace Ba_trace.Tracer.Receiver "deliver %S" payload in
  let sender =
    if simple then begin
      let s = Blockack.Sender.create engine config ~tx:tx_data ~next_payload in
      {
        pump = (fun () -> Blockack.Sender.pump s);
        on_ack = Blockack.Sender.on_ack s;
        done_ = (fun () -> Blockack.Sender.is_done s);
      }
    end
    else begin
      let s = Blockack.Sender_multi.create engine config ~tx:tx_data ~next_payload in
      {
        pump = (fun () -> Blockack.Sender_multi.pump s);
        on_ack = Blockack.Sender_multi.on_ack s;
        done_ = (fun () -> Blockack.Sender_multi.is_done s);
      }
    end
  in
  sender_cell := Some sender;
  receiver_cell := Some (Blockack.Receiver.create engine config ~tx:tx_ack ~deliver);
  sender.pump ();
  Ba_sim.Engine.run ~until:(max 100_000 (messages * rto * 30)) engine;
  print_string
    (Ba_trace.Tracer.render ~from_time
       ~until_time:(Option.value ~default:max_int until_time)
       tracer);
  if sender.done_ () then begin
    Printf.printf "transfer of %d messages complete\n" messages;
    0
  end
  else begin
    Printf.printf "transfer DID NOT COMPLETE\n";
    1
  end

let messages = Arg.(value & opt int 6 & info [ "m"; "messages" ] ~doc:"Messages to transfer.")
let loss = Arg.(value & opt float 0.0 & info [ "l"; "loss" ] ~doc:"Random loss on both links.")
let jitter = Arg.(value & opt int 0 & info [ "j"; "jitter" ] ~doc:"Extra uniform delay.")
let window = Arg.(value & opt int 8 & info [ "w"; "window" ] ~doc:"Window size.")

let coalesce =
  Arg.(value & opt int 20 & info [ "coalesce" ] ~doc:"Receiver ack-coalescing delay.")

let simple =
  Arg.(value & flag
       & info [ "simple" ] ~doc:"Use the Section II single-timer sender (default: Section IV).")

let kill_first_ack =
  Arg.(value & flag
       & info [ "kill-first-ack" ] ~doc:"Deterministically drop the first acknowledgment.")

let seed = Arg.(value & opt int 5 & info [ "s"; "seed" ] ~doc:"Random seed.")
let from_time = Arg.(value & opt int 0 & info [ "from" ] ~doc:"Render from this tick.")

let until_time =
  Arg.(value & opt (some int) None & info [ "until" ] ~doc:"Render up to this tick.")

let cmd =
  let doc = "render a block-acknowledgment transfer as a time-sequence diagram" in
  Cmd.v
    (Cmd.info "ba_diagram" ~doc ~version:Ba_cli.version)
    Term.(
      const run $ messages $ loss $ jitter $ window $ coalesce $ simple $ kill_first_ack
      $ seed $ from_time $ until_time)

let () = exit (Cmd.eval' cmd)
