(* ba_client: the sender half of a registry protocol on a real UDP
   socket.

   Connects to a ba_serve instance, pulls the deterministic workload,
   and drives the protocol's sender under a wall-clock driver. The
   liveness watchdog runs off real silence: no acknowledged progress
   for its configured number of check intervals triggers the
   crash-restart resync (epoch bump + REQ/POS/FIN), then quarantine
   with probation — so a killed server is detected by timeout,
   re-admitted on restart through the handshake, and the transfer
   completes without operator help.

   The stdout summary contains only timing-free fields (replays of the
   same seeds are byte-identical); wall-clock throughput and socket and
   shim counters go to stderr.

   Examples:
     ba_client --connect 127.0.0.1:9000 --messages 500
     ba_client --connect 127.0.0.1:$(cat port) --impair 'ge(0.02->0.3,l=0.05/0.3)' *)

open Cmdliner
module Registry = Ba_registry.Registry
module Driver = Ba_transport.Driver
module Endpoint = Ba_transport.Endpoint
module Shim = Ba_transport.Shim
module Watchdog = Ba_proto.Watchdog

let addr_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "address must be HOST:PORT")
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 -> (
            match Unix.inet_addr_of_string host with
            | ip -> Ok (Unix.ADDR_INET (ip, p))
            | exception Failure _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                    Error (`Msg (Printf.sprintf "cannot resolve host %S" host))
                | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), p))))
        | Some _ | None -> Error (`Msg (Printf.sprintf "bad port %S" port)))
  in
  let print ppf = function
    | Unix.ADDR_INET (ip, p) -> Format.fprintf ppf "%s:%d" (Unix.string_of_inet_addr ip) p
    | Unix.ADDR_UNIX p -> Format.pp_print_string ppf p
  in
  Arg.conv ~docv:"HOST:PORT" (parse, print)

let plan_conv =
  let parse s =
    match Ba_channel.Fault_plan.of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"PLAN" (parse, (fun ppf p ->
      Format.pp_print_string ppf (Ba_channel.Fault_plan.to_string p)))

let proto_conv =
  let parse s = match Registry.parse s with Ok e -> Ok e | Error msg -> Error (`Msg msg) in
  Arg.conv ~docv:"PROTOCOL" (parse, (fun ppf e -> Format.pp_print_string ppf e.Registry.name))

let run entry connect messages payload_size wseed window rto tick_us wd_interval plan
    impair_seed deadline =
  let config = Registry.config ~window ~rto entry () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let engine = Ba_sim.Engine.create ~seed:impair_seed () in
  let cli = ref None in
  let driver =
    Driver.create ~engine ~sock ~tick_us
      ~on_frame:(fun f _ -> match !cli with Some c -> Endpoint.Client.on_frame c f | None -> ())
      ()
  in
  let watchdog = { Watchdog.default_config with Watchdog.check_interval = wd_interval } in
  let c =
    Endpoint.Client.create ~engine ~protocol:entry.Registry.protocol ~config ~messages
      ~payload_size ~wseed ~watchdog ?plan ~impair_seed
      ~send:(fun buf len -> ignore (Driver.send_to driver connect buf len))
      ()
  in
  cli := Some c;
  let t0 = Unix.gettimeofday () in
  Endpoint.Client.pump c;
  let finished =
    Driver.run ~deadline_s:deadline ~stop:(fun () -> Endpoint.Client.finished c) [ driver ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "ba_client: %s %d messages\n" entry.Registry.name messages;
  Printf.printf "pulled: %d acked: %d\n" (Endpoint.Client.pulled c) (Endpoint.Client.acked c);
  Printf.printf "workload digest: %d\n"
    (Endpoint.expected_digest ~wseed ~payload_size ~messages);
  Printf.printf "completed: %b\n" finished;
  let ss = Endpoint.Client.shim_stats c in
  Printf.eprintf
    "ba_client: wall=%.3fs msgs/s=%.0f rx=%d tx=%d decode-errors=%d send-errors=%d \
     retx=%d resync-rounds=%d wd-resyncs=%d quarantines=%d wd-state=%s\n"
    wall
    (if wall <= 0. then 0. else float_of_int messages /. wall)
    (Driver.rx_datagrams driver) (Driver.tx_datagrams driver)
    (Driver.decode_errors driver) (Driver.send_errors driver)
    (Endpoint.Client.retransmissions c)
    (Endpoint.Client.resync_rounds c)
    (Endpoint.Client.watchdog_resyncs c)
    (Endpoint.Client.quarantines c)
    (Watchdog.state_name (Endpoint.Client.watchdog_state c));
  Printf.eprintf
    "ba_client: shim offered=%d passed=%d dropped=%d dup=%d corrupt=%d delayed=%d \
     outage=%d gated=%d\n"
    ss.Shim.offered ss.Shim.passed ss.Shim.dropped ss.Shim.duplicated ss.Shim.corrupted
    ss.Shim.delayed ss.Shim.outage_drops ss.Shim.gated;
  Unix.close sock;
  if finished then 0 else 1

let entry_arg =
  Arg.(
    value
    & opt proto_conv (Option.get (Registry.find "blockack"))
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to run (a registry name; see ba_sim --list-protocols).")

let connect_arg =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "connect" ] ~docv:"HOST:PORT" ~doc:"Server address (a ba_serve instance).")

let messages_arg =
  Arg.(value & opt int 1000 & info [ "n"; "messages" ] ~docv:"N" ~doc:"Workload size.")

let payload_arg =
  Arg.(value & opt int 32 & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload size per message.")

let wseed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "wseed" ] ~docv:"SEED"
        ~doc:"Workload seed; client and server must agree for validation to pass.")

let window_arg = Arg.(value & opt int 16 & info [ "window" ] ~docv:"W" ~doc:"Protocol window.")

let rto_arg =
  Arg.(
    value
    & opt int 250
    & info [ "rto" ] ~docv:"TICKS"
        ~doc:"Retransmission timeout in engine ticks (real duration: rto * tick-us).")

let tick_us_arg =
  Arg.(
    value
    & opt int 200
    & info [ "tick-us" ] ~docv:"US"
        ~doc:"Real microseconds per engine tick — the knob that maps virtual timers onto \
              the wall clock.")

let wd_interval_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "wd-interval" ] ~docv:"TICKS"
        ~doc:"Watchdog check interval in engine ticks. Escalation (degrade, resync, \
              quarantine, probation) follows the fabric's default schedule on top of it.")

let impair_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "impair" ] ~docv:"PLAN"
        ~doc:"Fault plan applied to outgoing datagrams (same replay-key syntax as the \
              simulator's chaos campaign).")

let impair_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "impair-seed" ] ~docv:"SEED"
        ~doc:"Seed for the impairment shim's fault stream (replays exactly).")

let deadline_arg =
  Arg.(
    value
    & opt float 60.
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Hard wall-clock bound: exit 1 if the transfer has not completed by then.")

let cmd =
  let doc = "drive a window-protocol sender against a real UDP server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the sender half of a registry protocol over real UDP against $(b,ba_serve): \
         virtual retransmission timers mapped onto the wall clock, a liveness watchdog \
         that detects a dead peer by real silence and recovers it through the \
         incarnation-epoch resync handshake (escalating to quarantine with probation), \
         and an optional impairment shim on the outgoing path. Exit status 1 if the \
         transfer did not complete before $(b,--deadline).";
    ]
  in
  Cmd.v
    (Cmd.info "ba_client" ~doc ~man ~version:Ba_cli.version)
    Term.(
      const run $ entry_arg $ connect_arg $ messages_arg $ payload_arg $ wseed_arg
      $ window_arg $ rto_arg $ tick_us_arg $ wd_interval_arg $ impair_arg
      $ impair_seed_arg $ deadline_arg)

let () = exit (Cmd.eval' cmd)
