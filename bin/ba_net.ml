(* ba_net: N connections multiplexed over a shared bottleneck link.

   The single-connection counterpart is ba_sim; ba_net instantiates the
   Ba_proto.Fabric with --connections copies of one protocol, or a
   heterogeneous --mix, all contending for one capacity-limited data
   link and one ack link. Prints a per-flow table plus aggregate
   goodput, shared-link counters and Jain's fairness index.

   Examples:
     ba_net --connections 8 --messages 50
     ba_net --mix blockack-multi:4,go-back-n:4 --capacity 2:64 --loss 0.01
     ba_net --connections 256 --messages 20 --capacity 1:256 --adaptive
     ba_net --sweep 1,4,16,64 --messages 20 --jobs 4   # S1-style scaling sweep
     ba_net --soak 5 --messages 30 --jobs 4            # S2-style overload soak *)

open Cmdliner
module Registry = Ba_registry.Registry
module Fabric = Ba_proto.Fabric

(* "proto:count,proto:count" with count defaulting to 1. *)
let mix_conv =
  let parse s =
    let part p =
      let name, count =
        match String.index_opt p ':' with
        | None -> (p, Ok 1)
        | Some i -> (
            let n = String.sub p 0 i in
            let c = String.sub p (i + 1) (String.length p - i - 1) in
            match int_of_string_opt c with
            | Some c when c > 0 -> (n, Ok c)
            | Some _ | None -> (n, Error (Printf.sprintf "bad count %S in mix" c)))
      in
      match (Registry.parse name, count) with
      | Ok e, Ok c -> Ok (e, c)
      | Error msg, _ | _, Error msg -> Error msg
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> ( match part p with Ok x -> collect (x :: acc) rest | Error e -> Error e)
    in
    match collect [] (String.split_on_char ',' s) with
    | Ok specs -> Ok specs
    | Error msg -> Error (`Msg msg)
  in
  let print ppf mix =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map (fun (e, c) -> Printf.sprintf "%s:%d" e.Registry.name c) mix))
  in
  Arg.conv ~docv:"MIX" (parse, print)

let capacity_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ svc; cap ] -> (
        match (int_of_string_opt svc, int_of_string_opt cap) with
        | Some svc, Some cap when svc > 0 && cap > 0 -> Ok (svc, cap)
        | _ -> Error (`Msg "capacity must be SERVICE_TICKS:QUEUE_SLOTS, both positive"))
    | _ -> Error (`Msg "capacity must be SERVICE_TICKS:QUEUE_SLOTS")
  in
  let print ppf (svc, cap) = Format.fprintf ppf "%d:%d" svc cap in
  Arg.conv ~docv:"CAPACITY" (parse, print)

let fmt = Ba_util.Table.fmt_float

(* S1-style scaling sweep: one cell per (connection count, protocol in
   the mix), every cell an independent Fabric.run farmed to the pool.
   Cells are listed row-major and collected in order, so the table is
   byte-identical at any --jobs. *)
let run_sweep ~counts ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
    ~rto ~modulus ~adaptive ~seed ~jobs =
  let protos = List.map fst mix in
  let cells = List.concat_map (fun n -> List.map (fun e -> (n, e)) protos) counts in
  let outcomes =
    Ba_parallel.Pool.map ~jobs
      (fun (n, e) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        let specs =
          List.init n (fun _ ->
              Fabric.spec ~config ~messages ~payload_size e.Registry.protocol)
        in
        Fabric.run ~seed ~data_loss:loss ~ack_loss ~data_delay:delay ~ack_delay:delay
          ?data_bottleneck:capacity specs)
      cells
  in
  let rows =
    List.map2
      (fun (n, e) (r : Fabric.result) ->
        [
          string_of_int n;
          e.Registry.name;
          (if r.Fabric.completed then "yes" else "NO");
          fmt r.Fabric.aggregate_goodput;
          fmt r.Fabric.fairness;
          string_of_int r.Fabric.data_stats.Ba_channel.Link.queue_dropped;
          string_of_int r.Fabric.ticks;
        ])
      cells outcomes
  in
  Ba_util.Table.print
    ~headers:[ "conns"; "protocol"; "completed"; "goodput"; "jain"; "qdrops"; "ticks" ]
    rows;
  if
    List.for_all
      (fun (r : Fabric.result) -> List.for_all Ba_proto.Harness.correct r.Fabric.flows)
      outcomes
  then 0
  else 1

(* Long-horizon overload soak: each round doubles the offered load with
   a surge of late-starting flows under a fabric memory budget and an
   armed watchdog, and (when the protocol supports the crash lifecycle)
   stalls one victim flow's receiver through the surge so the watchdog
   machinery — resync, quarantine, probation release — actually runs.
   Rounds are independent Fabric runs farmed to the pool and collected
   in submission order, so the table is byte-identical at any --jobs. *)
let soak_surge_at = 2000
let soak_stall_for = 5000

let run_soak ~rounds ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
    ~rto ~modulus ~adaptive ~seed ~budget ~jobs =
  let specs_of_mix ~start_at =
    List.concat_map
      (fun (e, count) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        List.init count (fun _ ->
            Fabric.spec ~config ~messages ~payload_size ~start_at e.Registry.protocol))
      mix
  in
  let base_specs = specs_of_mix ~start_at:0 in
  let specs = base_specs @ specs_of_mix ~start_at:soak_surge_at in
  (* The stall victim is the first *surge* flow: it is guaranteed to
     still be mid-transfer when its receiver goes dark, so the watchdog
     escalation (resync, quarantine, probation release) actually runs. *)
  let victim_index = List.length base_specs in
  (* Three quarters of the unclamped need: tight enough that admission
     must clamp, loose enough that every flow is still admitted. *)
  let unclamped_need =
    List.fold_left
      (fun a (s : Fabric.spec) ->
        a + (2 * s.Fabric.config.Ba_proto.Proto_config.window * s.Fabric.payload_size))
      0 specs
  in
  let budget = match budget with Some b -> b | None -> unclamped_need * 3 / 4 in
  let watchdog = { Ba_proto.Watchdog.default_config with Ba_proto.Watchdog.check_interval = 500 } in
  let stall_victim engine (flows : Ba_proto.Flow.t array) =
    if Array.length flows > victim_index && Ba_proto.Flow.crash_tolerant flows.(victim_index)
    then begin
      let victim = flows.(victim_index) in
      ignore
        (Ba_sim.Engine.schedule_at engine ~at:(soak_surge_at + 100) (fun () ->
             Ba_proto.Flow.crash_receiver victim));
      ignore
        (Ba_sim.Engine.schedule_at engine ~at:(soak_surge_at + 100 + soak_stall_for) (fun () ->
             Ba_proto.Flow.restart_receiver victim))
    end
  in
  let outcomes =
    Ba_parallel.Pool.map ~jobs
      (fun round ->
        Fabric.run ~seed:(seed + round) ~data_loss:loss ~ack_loss ~data_delay:delay
          ~ack_delay:delay ?data_bottleneck:capacity ~memory_budget:budget ~watchdog
          ~on_flows:stall_victim specs)
      (List.init rounds (fun i -> i))
  in
  let rows =
    List.mapi
      (fun round (r : Fabric.result) ->
        let recovery =
          if r.Fabric.completed && r.Fabric.ticks > soak_surge_at then
            string_of_int (r.Fabric.ticks - soak_surge_at)
          else "-"
        in
        [
          string_of_int round;
          string_of_int (seed + round);
          (if r.Fabric.completed then "yes" else "NO");
          Printf.sprintf "%d/%d" r.Fabric.admitted (r.Fabric.admitted + r.Fabric.refused);
          (match r.Fabric.clamped_window with Some c -> string_of_int c | None -> "-");
          string_of_int r.Fabric.mem_peak_bytes;
          string_of_int r.Fabric.quarantine_events;
          string_of_int r.Fabric.watchdog_resyncs;
          recovery;
          (if List.for_all Ba_proto.Harness.correct r.Fabric.flows then "ok"
           else if List.for_all Ba_verify.Chaos.safe r.Fabric.flows then "STUCK"
           else "UNSAFE");
        ])
      outcomes
  in
  Ba_util.Table.print
    ~headers:
      [
        "round"; "seed"; "completed"; "admitted"; "clamp"; "mem-peak"; "quarantines";
        "resyncs"; "recovery"; "verdict";
      ]
    rows;
  let peak = List.fold_left (fun a (r : Fabric.result) -> max a r.Fabric.mem_peak_bytes) 0 outcomes
  and quarantines =
    List.fold_left (fun a (r : Fabric.result) -> a + r.Fabric.quarantine_events) 0 outcomes
  and resyncs =
    List.fold_left (fun a (r : Fabric.result) -> a + r.Fabric.watchdog_resyncs) 0 outcomes
  and worst_recovery =
    List.fold_left
      (fun a (r : Fabric.result) ->
        if r.Fabric.completed then max a (r.Fabric.ticks - soak_surge_at) else a)
      0 outcomes
  in
  Printf.printf "\nsoak: %d rounds, budget=%dB, peak=%dB (%s), quarantines=%d, resyncs=%d, \
                 worst post-surge recovery=%d ticks\n"
    rounds budget peak
    (if peak <= budget then "under budget" else "OVER BUDGET")
    quarantines resyncs worst_recovery;
  if
    peak <= budget
    && List.for_all
         (fun (r : Fabric.result) ->
           r.Fabric.completed && List.for_all Ba_proto.Harness.correct r.Fabric.flows)
         outcomes
  then 0
  else 1

let run list_protocols connections mix messages payload_size loss ack_loss_opt base_delay
    jitter capacity window rto modulus adaptive seed sweep soak budget jobs =
  if list_protocols then begin
    Format.printf "%a" Registry.pp_list ();
    exit 0
  end;
  let ack_loss = Option.value ~default:loss ack_loss_opt in
  let delay =
    if jitter = 0 then Ba_channel.Dist.Constant base_delay
    else Ba_channel.Dist.Uniform (base_delay, base_delay + jitter)
  in
  let mix =
    match mix with
    | Some m -> m
    | None -> (
        match Registry.find "blockack-multi" with
        | Some e -> [ (e, connections) ]
        | None -> assert false)
  in
  let rto =
    match rto with
    | Some r -> r
    | None ->
        (* Cover propagation both ways plus a full queue drain, so a
           fixed timeout doesn't melt down the moment the queue fills. *)
        let svc, cap = Option.value ~default:(0, 0) capacity in
        (2 * (base_delay + jitter)) + (svc * cap) + 100
  in
  match soak with
  | Some rounds ->
      let jobs = Ba_cli.resolve_jobs jobs in
      if rounds < 1 then begin
        Format.eprintf "ba_net: --soak rounds must be positive (got %d)@." rounds;
        exit 2
      end;
      run_soak ~rounds ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
        ~rto ~modulus ~adaptive ~seed ~budget ~jobs
  | None ->
  match sweep with
  | Some counts ->
      let jobs = Ba_cli.resolve_jobs jobs in
      (match List.find_opt (fun n -> n < 1) counts with
      | Some n ->
          Format.eprintf "ba_net: --sweep counts must be positive (got %d)@." n;
          exit 2
      | None -> ());
      run_sweep ~counts ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity
        ~window ~rto ~modulus ~adaptive ~seed ~jobs
  | None ->
  let specs =
    List.concat_map
      (fun (e, count) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        List.init count (fun _ -> Fabric.spec ~config ~messages ~payload_size e.Registry.protocol))
      mix
  in
  let r =
    Fabric.run ~seed ~data_loss:loss ~ack_loss ~data_delay:delay ~ack_delay:delay
      ?data_bottleneck:capacity specs
  in
  let rows =
    List.map
      (fun (fr : Ba_proto.Harness.result) ->
        let p50, p99 =
          match fr.latency with
          | Some l -> (fmt ~decimals:0 l.Ba_util.Stats.p50, fmt ~decimals:0 l.Ba_util.Stats.p99)
          | None -> ("-", "-")
        in
        [
          fr.protocol;
          Printf.sprintf "%d/%d" fr.delivered fr.messages;
          string_of_int fr.retransmissions;
          string_of_int fr.ticks;
          fmt fr.goodput;
          p50;
          p99;
          (if Ba_proto.Harness.correct fr then "ok"
           else if fr.completed then "UNSAFE"
           else "STUCK");
        ])
      r.Fabric.flows
  in
  let numbered = List.mapi (fun i row -> string_of_int i :: row) rows in
  Ba_util.Table.print
    ~headers:[ "flow"; "protocol"; "delivered"; "retx"; "ticks"; "goodput"; "p50"; "p99"; "verdict" ]
    numbered;
  let d = r.Fabric.data_stats and a = r.Fabric.ack_stats in
  Printf.printf
    "\naggregate: %d flows, %s in %d ticks, goodput=%s/ktick, jain=%s\n\
     shared data link: sent=%d dropped=%d queue_dropped=%d reordered=%d\n\
     shared ack link:  sent=%d dropped=%d\n"
    (List.length r.Fabric.flows)
    (if r.Fabric.completed then "completed" else "INCOMPLETE")
    r.Fabric.ticks
    (fmt r.Fabric.aggregate_goodput)
    (fmt r.Fabric.fairness)
    d.Ba_channel.Link.sent d.Ba_channel.Link.dropped d.Ba_channel.Link.queue_dropped
    d.Ba_channel.Link.reordered a.Ba_channel.Link.sent a.Ba_channel.Link.dropped;
  if List.for_all Ba_proto.Harness.correct r.Fabric.flows then 0 else 1

let list_protocols =
  Arg.(value & flag
       & info [ "list-protocols" ]
           ~doc:"List every protocol in the shared registry (with aliases) and exit.")

let connections =
  Arg.(value & opt int 4
       & info [ "c"; "connections" ] ~doc:"Number of blockack-multi flows (ignored with --mix).")

let mix =
  Arg.(value & opt (some mix_conv) None
       & info [ "mix" ]
           ~doc:"Heterogeneous flow mix, e.g. blockack-multi:4,go-back-n:2,selective-repeat:2.")

let messages =
  Arg.(value & opt int 100 & info [ "m"; "messages" ] ~doc:"Messages per flow.")

let payload_size = Arg.(value & opt int 32 & info [ "payload-size" ] ~doc:"Payload bytes.")

let loss =
  Arg.(value & opt float 0.0 & info [ "l"; "loss" ] ~doc:"Loss probability on both shared links.")

let ack_loss =
  Arg.(value & opt (some float) None & info [ "ack-loss" ] ~doc:"Override ack-link loss.")

let base_delay =
  Arg.(value & opt int 50 & info [ "delay" ] ~doc:"Minimum one-way delay (ticks).")

let jitter =
  Arg.(value & opt int 0 & info [ "j"; "jitter" ] ~doc:"Extra uniform delay (0 = FIFO order).")

let capacity =
  Arg.(value & opt (some capacity_conv) (Some (2, 64))
       & info [ "capacity" ]
           ~doc:"Shared data-link bottleneck SERVICE_TICKS:QUEUE_SLOTS (one message serviced \
                 per SERVICE_TICKS from a FIFO of QUEUE_SLOTS, tail drop). Pass --no-capacity \
                 for an uncontended fabric.")

let no_capacity =
  Arg.(value & flag & info [ "no-capacity" ] ~doc:"Remove the shared bottleneck entirely.")

let window = Arg.(value & opt int 8 & info [ "w"; "window" ] ~doc:"Window size per flow.")

let rto =
  Arg.(value & opt (some int) None
       & info [ "rto" ]
           ~doc:"Retransmission timeout; default 2*(delay+jitter) + queue drain + 100.")

let modulus =
  Arg.(value & opt (some int) None
       & info [ "n"; "modulus" ]
           ~doc:"Wire sequence-number modulus (default: each protocol's registry recommendation, \
                 e.g. 2w for block acknowledgment).")

let adaptive =
  Arg.(value & flag
       & info [ "adaptive" ] ~doc:"Use the adaptive (Jacobson/Karels) retransmission timeout.")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc:"Random seed.")

let sweep =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "sweep" ] ~docv:"N1,N2,..."
        ~doc:
          "Scaling sweep: instead of one fabric, run one cell per (connection count, \
           protocol in the mix) and print a summary row each (aggregate goodput, Jain's \
           index, queue drops). Cells are independent simulations, so $(b,--jobs) runs \
           them in parallel with byte-identical output.")

let soak =
  Arg.(
    value
    & opt (some int) None
    & info [ "soak" ] ~docv:"ROUNDS"
        ~doc:
          "Long-horizon overload soak: run ROUNDS independent fabric rounds, each doubling \
           the offered load with a surge of late-starting flows under a memory budget \
           (default: 3/4 of the unclamped need, so admission must clamp) and an armed \
           per-flow watchdog; when the protocol supports the crash lifecycle one victim \
           flow's receiver is stalled through the surge so resync/quarantine machinery \
           runs. Reports peak buffered bytes, quarantine events and post-surge recovery \
           time per round. Rounds are independent simulations, so $(b,--jobs) runs them \
           in parallel with byte-identical output.")

let budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:"Override the soak's fabric memory budget in bytes (only with $(b,--soak)).")

let cmd =
  let doc = "simulate N window-protocol connections over a shared bottleneck" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multiplexes $(b,--connections) flows (or a heterogeneous $(b,--mix)) over one \
         capacity-limited data link and one acknowledgment link, then reports per-flow \
         delivery, retransmissions, goodput and latency percentiles next to aggregate \
         goodput and Jain's fairness index. Runs are deterministic given $(b,--seed). \
         Exit status 1 if any flow delivered a duplicate, out-of-order or corrupted \
         payload, or failed to complete.";
    ]
  in
  let wrap list_protocols connections mix messages payload_size loss ack_loss base_delay
      jitter capacity no_capacity window rto modulus adaptive seed sweep soak budget jobs =
    let capacity = if no_capacity then None else capacity in
    run list_protocols connections mix messages payload_size loss ack_loss base_delay jitter
      capacity window rto modulus adaptive seed sweep soak budget jobs
  in
  Cmd.v
    (Cmd.info "ba_net" ~doc ~man ~version:Ba_cli.version)
    Term.(
      const wrap $ list_protocols $ connections $ mix $ messages $ payload_size $ loss
      $ ack_loss $ base_delay $ jitter $ capacity $ no_capacity $ window $ rto $ modulus
      $ adaptive $ seed $ sweep $ soak $ budget $ Ba_cli.jobs)

let () = exit (Cmd.eval' cmd)
