(* ba_net: N connections multiplexed over a shared bottleneck link.

   The single-connection counterpart is ba_sim; ba_net instantiates the
   Ba_proto.Fabric with --connections copies of one protocol, or a
   heterogeneous --mix, all contending for one capacity-limited data
   link and one ack link. Prints a per-flow table plus aggregate
   goodput, shared-link counters and Jain's fairness index.

   Examples:
     ba_net --connections 8 --messages 50
     ba_net --mix blockack-multi:4,go-back-n:4 --capacity 2:64 --loss 0.01
     ba_net --connections 256 --messages 20 --capacity 1:256 --adaptive
     ba_net --sweep 1,4,16,64 --messages 20 --jobs 4   # S1-style scaling sweep
     ba_net --soak 5 --messages 30 --jobs 4            # S2-style overload soak *)

open Cmdliner
module Registry = Ba_registry.Registry
module Fabric = Ba_proto.Fabric

(* "proto:count,proto:count" with count defaulting to 1. *)
let mix_conv =
  let parse s =
    let part p =
      let name, count =
        match String.index_opt p ':' with
        | None -> (p, Ok 1)
        | Some i -> (
            let n = String.sub p 0 i in
            let c = String.sub p (i + 1) (String.length p - i - 1) in
            match int_of_string_opt c with
            | Some c when c > 0 -> (n, Ok c)
            | Some _ | None -> (n, Error (Printf.sprintf "bad count %S in mix" c)))
      in
      match (Registry.parse name, count) with
      | Ok e, Ok c -> Ok (e, c)
      | Error msg, _ | _, Error msg -> Error msg
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> ( match part p with Ok x -> collect (x :: acc) rest | Error e -> Error e)
    in
    match collect [] (String.split_on_char ',' s) with
    | Ok specs -> Ok specs
    | Error msg -> Error (`Msg msg)
  in
  let print ppf mix =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map (fun (e, c) -> Printf.sprintf "%s:%d" e.Registry.name c) mix))
  in
  Arg.conv ~docv:"MIX" (parse, print)

let capacity_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ svc; cap ] -> (
        match (int_of_string_opt svc, int_of_string_opt cap) with
        | Some svc, Some cap when svc > 0 && cap > 0 -> Ok (svc, cap)
        | _ -> Error (`Msg "capacity must be SERVICE_TICKS:QUEUE_SLOTS, both positive"))
    | _ -> Error (`Msg "capacity must be SERVICE_TICKS:QUEUE_SLOTS")
  in
  let print ppf (svc, cap) = Format.fprintf ppf "%d:%d" svc cap in
  Arg.conv ~docv:"CAPACITY" (parse, print)

let fmt = Ba_util.Table.fmt_float

(* S1-style scaling sweep: one cell per (connection count, protocol in
   the mix), every cell an independent Fabric.run farmed to the pool.
   Cells are listed row-major and collected in order, so the table is
   byte-identical at any --jobs. *)
let run_sweep ~counts ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
    ~rto ~modulus ~adaptive ~seed ~jobs =
  let protos = List.map fst mix in
  let cells = List.concat_map (fun n -> List.map (fun e -> (n, e)) protos) counts in
  let outcomes =
    Ba_parallel.Pool.map_chunks ~jobs
      (fun (n, e) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        let specs =
          List.init n (fun _ ->
              Fabric.spec ~config ~messages ~payload_size e.Registry.protocol)
        in
        Fabric.run ~seed ~data_loss:loss ~ack_loss ~data_delay:delay ~ack_delay:delay
          ?data_bottleneck:capacity specs)
      cells
  in
  let rows =
    List.map2
      (fun (n, e) (r : Fabric.result) ->
        [
          string_of_int n;
          e.Registry.name;
          (if r.Fabric.completed then "yes" else "NO");
          fmt r.Fabric.aggregate_goodput;
          fmt r.Fabric.fairness;
          string_of_int r.Fabric.data_stats.Ba_channel.Link.queue_dropped;
          string_of_int r.Fabric.ticks;
        ])
      cells outcomes
  in
  Ba_util.Table.print
    ~headers:[ "conns"; "protocol"; "completed"; "goodput"; "jain"; "qdrops"; "ticks" ]
    rows;
  if
    List.for_all
      (fun (r : Fabric.result) -> List.for_all Ba_proto.Harness.correct r.Fabric.flows)
      outcomes
  then 0
  else 1

(* Sharded scale run: --scale N flows partitioned into fixed-size cells
   (Ba_proto.Shard), the shared bottleneck realised as per-cell capacity
   leases reconciled at epoch barriers. Everything deterministic goes to
   stdout — the summary is byte-identical at any --jobs and any --shards
   (cram-proven) — while wall-clock figures (flows/sec, heap bytes per
   flow), which vary by machine, go to stderr. *)
let run_scale ~flows ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
    ~rto ~modulus ~adaptive ~seed ~jobs ~shards ~cell ~barrier =
  let protos =
    Array.of_list (List.concat_map (fun (e, count) -> List.init count (fun _ -> e)) mix)
  in
  let specs =
    List.init flows (fun i ->
        let e = protos.(i mod Array.length protos) in
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        Fabric.spec ~config ~messages ~payload_size e.Registry.protocol)
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Ba_proto.Shard.run ~seed ~jobs ?shards ~cell ~barrier ~data_loss:loss ~ack_loss
      ~data_delay:delay ~ack_delay:delay ?capacity ~measure_mem:true specs
  in
  let wall = Unix.gettimeofday () -. t0 in
  print_string (Ba_proto.Shard.summary r);
  let safe =
    r.Ba_proto.Shard.duplicates = 0 && r.Ba_proto.Shard.corrupted = 0
    && r.Ba_proto.Shard.misordered = 0
  in
  let pass = safe && r.Ba_proto.Shard.completed in
  Printf.printf "scale-verdict: flows=%d safety=%s completion=%s result=%s\n"
    r.Ba_proto.Shard.flows
    (if safe then "pass" else "FAIL")
    (if r.Ba_proto.Shard.completed then "pass" else "FAIL")
    (if pass then "PASS" else "FAIL");
  Printf.eprintf "scale-perf: wall=%.2fs flows/sec=%.0f state=%dB (%dB/flow)\n%!" wall
    (if wall > 0. then float_of_int r.Ba_proto.Shard.flows /. wall else 0.)
    r.Ba_proto.Shard.state_bytes
    (r.Ba_proto.Shard.state_bytes / max 1 r.Ba_proto.Shard.flows);
  if pass then 0 else 1

(* Long-horizon overload soak: each round doubles the offered load with
   a surge of late-starting flows under a fabric memory budget and an
   armed watchdog, and (when the protocol supports the crash lifecycle)
   stalls one victim flow's receiver through the surge so the watchdog
   machinery — resync, quarantine, probation release — actually runs.
   --churn adds seed-derived departing/returning flows per round and
   --fault lands a chaos fault class (up to the full storm composition)
   on every round.

   The harness memory is O(1) in the round count: rounds stream through
   the pool in bounded chunks, each result is folded into scalar
   aggregates and a fixed-size latency sketch and then dropped, and the
   table prints through Table.stream. Each round is a pure function of
   (seed + round), and chunks are folded in round order, so the report
   is byte-identical at any --jobs. *)
let soak_surge_at_default = 2000
let soak_stall_for_default = 5000

(* Post-churn goodput must recover to at least (1 - eps) of the
   pre-churn baseline; the floor printed in the verdict line. *)
let churn_goodput_eps = 0.5

let run_soak ~rounds ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
    ~rto ~modulus ~adaptive ~seed ~budget ~surge_at ~stall_for ~churners ~fault ~jobs =
  let module Chaos = Ba_verify.Chaos in
  let module Qsketch = Ba_util.Qsketch in
  let specs_of_mix ~start_at =
    List.concat_map
      (fun (e, count) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        List.init count (fun _ ->
            Fabric.spec ~config ~messages ~payload_size ~start_at e.Registry.protocol))
      mix
  in
  let base_specs = specs_of_mix ~start_at:0 in
  let surge_specs = specs_of_mix ~start_at:surge_at in
  let n_base = List.length base_specs in
  let n_fixed = n_base + List.length surge_specs in
  (* The stall victim is the first *surge* flow: it is guaranteed to
     still be mid-transfer when its receiver goes dark, so the watchdog
     escalation (resync, quarantine, probation release) actually runs. *)
  let victim_index = n_base in
  (* The churn tail reuses the first mix entry's protocol and config;
     its arrival/departure schedule is re-derived from each round's
     seed, so every round churns differently. *)
  let churn_entry = fst (List.hd mix) in
  let churn_config =
    Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive churn_entry ()
  in
  let specs_for rseed =
    if churners = 0 then base_specs @ surge_specs
    else
      base_specs @ surge_specs
      @ Fabric.churn ~base:0 ~churners ~messages ~payload_size ~config:churn_config ~seed:rseed
          churn_entry.Registry.protocol
  in
  (* Three quarters of the unclamped need: tight enough that admission
     must clamp, loose enough that every flow is still admitted. The
     need only depends on flow counts and window/payload shape, so it is
     the same for every round's churn schedule. *)
  let unclamped_need =
    List.fold_left
      (fun a (s : Fabric.spec) ->
        a + (2 * s.Fabric.config.Ba_proto.Proto_config.window * s.Fabric.payload_size))
      0
      (specs_for seed)
  in
  let budget = match budget with Some b -> b | None -> unclamped_need * 3 / 4 in
  let watchdog = { Ba_proto.Watchdog.default_config with Ba_proto.Watchdog.check_interval = 500 } in
  let run_round round =
    let rseed = seed + round in
    let specs = specs_for rseed in
    (* The fault class's ingredients are the same pure functions of the
       round seed as in ba_chaos, so a soak round composes with the
       campaign's replay story: channel plans land on the shared links,
       the squeeze rewrites every flow's receiver budget and the shared
       bottleneck, and the crash plan hits the first base flow. *)
    let data_plan, ack_plan, crash_plan, squeeze =
      match fault with
      | None -> (None, None, None, None)
      | Some c ->
          let dp, ap = Chaos.plans_for c ~seed:rseed in
          let crash =
            match c with
            | Chaos.Crash | Chaos.Storm -> Some (Chaos.crash_plan_for ~seed:rseed)
            | _ -> None
          in
          let sq =
            match c with
            | Chaos.Overload | Chaos.Storm -> Some (Chaos.squeeze_for ~seed:rseed)
            | _ -> None
          in
          (Some dp, Some ap, crash, sq)
    in
    let specs, bottleneck =
      match squeeze with
      | None -> (specs, capacity)
      | Some sq ->
          ( List.map
              (fun (s : Fabric.spec) ->
                let config, _ = Chaos.apply_squeeze sq s.Fabric.config in
                { s with Fabric.config })
              specs,
            Some (sq.Chaos.service_time, sq.Chaos.queue_capacity) )
    in
    let on_flows engine (flows : Ba_proto.Flow.t array) =
      if Array.length flows > victim_index && Ba_proto.Flow.crash_tolerant flows.(victim_index)
      then begin
        let victim = flows.(victim_index) in
        ignore
          (Ba_sim.Engine.schedule_at engine ~at:(surge_at + 100) (fun () ->
               Ba_proto.Flow.crash_receiver victim));
        ignore
          (Ba_sim.Engine.schedule_at engine ~at:(surge_at + 100 + stall_for) (fun () ->
               Ba_proto.Flow.restart_receiver victim))
      end;
      match crash_plan with
      | None -> ()
      | Some plan ->
          if Array.length flows > 0 && Ba_proto.Flow.crash_tolerant flows.(0) then begin
            let target = flows.(0) in
            List.iter
              (fun (ev : Ba_proto.Crash_plan.event) ->
                let crash, restart =
                  match ev.Ba_proto.Crash_plan.endpoint with
                  | Ba_proto.Crash_plan.Sender_end ->
                      (Ba_proto.Flow.crash_sender, Ba_proto.Flow.restart_sender)
                  | Ba_proto.Crash_plan.Receiver_end ->
                      (Ba_proto.Flow.crash_receiver, Ba_proto.Flow.restart_receiver)
                in
                ignore
                  (Ba_sim.Engine.schedule_at engine ~at:ev.Ba_proto.Crash_plan.at (fun () ->
                       crash target));
                ignore
                  (Ba_sim.Engine.schedule_at engine
                     ~at:(ev.Ba_proto.Crash_plan.at + ev.Ba_proto.Crash_plan.down_for)
                     (fun () -> restart target)))
              plan
          end
    in
    Fabric.run ~seed:rseed ~data_loss:loss ~ack_loss ~data_delay:delay ~ack_delay:delay
      ?data_bottleneck:bottleneck ?data_plan ?ack_plan ~memory_budget:budget ~watchdog ~on_flows
      specs
  in
  (* Lazy so that a round failing outright (impossible budget) errors
     before anything is printed, as the buffered table used to. *)
  let sink =
    lazy
      (Ba_util.Table.stream
         ~aligns:
           Ba_util.Table.
             [ Right; Right; Left; Left; Right; Right; Right; Right; Right; Right; Left ]
         ~headers:
           [
             "round"; "seed"; "completed"; "admitted"; "departed"; "clamp"; "mem-peak";
             "quarantines"; "resyncs"; "recovery"; "verdict";
           ]
         ())
  in
  (* Constant-space aggregates; every round's full result dies with its
     chunk. The latency sketch replaces the old keep-every-sample
     accounting: bounded centroids, exact count/min/max. *)
  let sketch = Qsketch.create () in
  let peak = ref 0
  and over_budget = ref 0
  and quarantines = ref 0
  and resyncs = ref 0
  and worst_recovery = ref 0
  and unsafe_rounds = ref 0
  and stuck_rounds = ref 0
  and pre_goodput = ref 0.
  and pre_n = ref 0
  and post_goodput = ref 0.
  and post_n = ref 0
  and nodes_at_check = ref None in
  let fold round (r : Fabric.result) =
    let safe_round = List.for_all Ba_verify.Chaos.safe r.Fabric.flows in
    if not safe_round then incr unsafe_rounds;
    if not r.Fabric.completed then incr stuck_rounds;
    if r.Fabric.mem_peak_bytes > !peak then peak := r.Fabric.mem_peak_bytes;
    if r.Fabric.mem_peak_bytes > budget then incr over_budget;
    quarantines := !quarantines + r.Fabric.quarantine_events;
    resyncs := !resyncs + r.Fabric.watchdog_resyncs;
    if r.Fabric.completed && r.Fabric.ticks - surge_at > !worst_recovery then
      worst_recovery := r.Fabric.ticks - surge_at;
    (* Churn cohorts: the long-lived base flows are the pre-churn
       baseline; the returning flows (odd positions in each churner's
       leaver/returner pair) measure goodput after arrivals into
       reclaimed capacity. *)
    List.iteri
      (fun i (fr : Ba_proto.Harness.result) ->
        if i < n_base then begin
          pre_goodput := !pre_goodput +. fr.Ba_proto.Harness.goodput;
          incr pre_n
        end
        else if i >= n_fixed && (i - n_fixed) mod 2 = 1 then begin
          post_goodput := !post_goodput +. fr.Ba_proto.Harness.goodput;
          incr post_n
        end;
        List.iter (Qsketch.add sketch) fr.Ba_proto.Harness.latencies)
      r.Fabric.flows;
    if round = min 9 (rounds - 1) then nodes_at_check := Some (Qsketch.nodes sketch);
    let recovery =
      if r.Fabric.completed && r.Fabric.ticks > surge_at then
        string_of_int (r.Fabric.ticks - surge_at)
      else "-"
    in
    Ba_util.Table.stream_row (Lazy.force sink)
      [
        string_of_int round;
        string_of_int (seed + round);
        (if r.Fabric.completed then "yes" else "NO");
        Printf.sprintf "%d/%d" r.Fabric.admitted (r.Fabric.admitted + r.Fabric.refused);
        string_of_int r.Fabric.departed;
        (match r.Fabric.clamped_window with Some c -> string_of_int c | None -> "-");
        string_of_int r.Fabric.mem_peak_bytes;
        string_of_int r.Fabric.quarantine_events;
        string_of_int r.Fabric.watchdog_resyncs;
        recovery;
        (if r.Fabric.completed && safe_round then "ok"
         else if safe_round then "STUCK"
         else "UNSAFE");
      ]
  in
  Ba_parallel.Pool.with_pool ~jobs (fun pool ->
      let chunk = jobs * 4 in
      let rec go next =
        if next < rounds then begin
          let n = min chunk (rounds - next) in
          let results =
            Ba_parallel.Pool.map ~pool run_round (List.init n (fun i -> next + i))
          in
          List.iteri (fun i r -> fold (next + i) r) results;
          go (next + n)
        end
      in
      go 0);
  Printf.printf
    "\nsoak: %d rounds, budget=%dB, peak=%dB (%s), quarantines=%d, resyncs=%d, \
     worst post-surge recovery=%d ticks\n"
    rounds budget !peak
    (if !over_budget = 0 then "under budget" else "OVER BUDGET")
    !quarantines !resyncs !worst_recovery;
  if Qsketch.count sketch > 0 then
    Printf.printf "telemetry: latency n=%d p50=%.0f p90=%.0f p99=%.0f sketch=%dB\n"
      (Qsketch.count sketch) (Qsketch.quantile sketch 0.5) (Qsketch.quantile sketch 0.9)
      (Qsketch.quantile sketch 0.99) (Qsketch.mem_bytes sketch);
  (* The machine-checkable verdict: one line of key=value tokens. *)
  let safety_ok = !unsafe_rounds = 0 in
  let recovery_ok = !stuck_rounds = 0 in
  let mem_ok = !over_budget = 0 in
  let ratio =
    if !pre_n = 0 || !post_n = 0 then None
    else begin
      let pre = !pre_goodput /. float_of_int !pre_n in
      let post = !post_goodput /. float_of_int !post_n in
      if pre <= 0. then None else Some (post /. pre)
    end
  in
  let goodput_ok = match ratio with None -> true | Some r -> r >= 1. -. churn_goodput_eps in
  let check = match !nodes_at_check with Some n -> n | None -> Qsketch.nodes sketch in
  let nodes_ok = abs (Qsketch.nodes sketch - check) <= 1 in
  let pass = safety_ok && recovery_ok && mem_ok && goodput_ok && nodes_ok in
  Printf.printf
    "soak-verdict: rounds=%d safety=%s recovery=%s goodput-ratio=%s goodput-floor=%s \
     mem-peak=%dB budget=%dB sketch-nodes=%d->%d result=%s\n"
    rounds
    (if safety_ok then "pass" else "FAIL")
    (if recovery_ok then "pass" else "FAIL")
    (match ratio with None -> "-" | Some r -> fmt ~decimals:2 r)
    (match ratio with None -> "-" | Some _ -> fmt ~decimals:2 (1. -. churn_goodput_eps))
    !peak budget check (Qsketch.nodes sketch)
    (if pass then "PASS" else "FAIL");
  if pass then 0 else 1

let run list_protocols connections mix messages payload_size loss ack_loss_opt base_delay
    jitter capacity window rto modulus adaptive seed sweep soak budget surge_at stall_for churn
    fault scale shards cell barrier jobs =
  if list_protocols then begin
    Format.printf "%a" Registry.pp_list ();
    exit 0
  end;
  (* The soak-only options are rejected outside --soak rather than
     silently ignored. *)
  if soak = None then begin
    let reject name = function
      | Some _ ->
          Format.eprintf "ba_net: %s requires --soak@." name;
          exit 2
      | None -> ()
    in
    reject "--budget" budget;
    reject "--surge-at" surge_at;
    reject "--stall-for" stall_for;
    reject "--churn" churn;
    reject "--fault" fault
  end;
  (* Likewise the sharding knobs belong to --scale. *)
  if scale = None then begin
    let reject name = function
      | Some _ ->
          Format.eprintf "ba_net: %s requires --scale@." name;
          exit 2
      | None -> ()
    in
    reject "--shards" shards;
    reject "--cell" cell;
    reject "--barrier" barrier
  end;
  let ack_loss = Option.value ~default:loss ack_loss_opt in
  let delay =
    if jitter = 0 then Ba_channel.Dist.Constant base_delay
    else Ba_channel.Dist.Uniform (base_delay, base_delay + jitter)
  in
  let mix =
    match mix with
    | Some m -> m
    | None -> (
        match Registry.find "blockack-multi" with
        | Some e -> [ (e, connections) ]
        | None -> assert false)
  in
  let rto =
    match rto with
    | Some r -> r
    | None ->
        (* Cover propagation both ways plus a full queue drain, so a
           fixed timeout doesn't melt down the moment the queue fills. *)
        let svc, cap = Option.value ~default:(0, 0) capacity in
        (2 * (base_delay + jitter)) + (svc * cap) + 100
  in
  match soak with
  | Some rounds ->
      let jobs = Ba_cli.resolve_jobs jobs in
      if rounds < 1 then begin
        Format.eprintf "ba_net: --soak rounds must be positive (got %d)@." rounds;
        exit 2
      end;
      let positive name v default =
        match v with
        | None -> default
        | Some v when v > 0 -> v
        | Some v ->
            Format.eprintf "ba_net: %s must be positive (got %d)@." name v;
            exit 2
      in
      let surge_at = positive "--surge-at" surge_at soak_surge_at_default in
      let stall_for = positive "--stall-for" stall_for soak_stall_for_default in
      let churners =
        match churn with
        | None -> 0
        | Some c when c >= 0 -> c
        | Some c ->
            Format.eprintf "ba_net: --churn must be >= 0 (got %d)@." c;
            exit 2
      in
      let fault =
        match fault with
        | None -> None
        | Some name -> (
            match Ba_verify.Chaos.class_of_name name with
            | Some c -> Some c
            | None ->
                Format.eprintf "ba_net: unknown fault class %S@." name;
                exit 2)
      in
      run_soak ~rounds ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
        ~rto ~modulus ~adaptive ~seed ~budget ~surge_at ~stall_for ~churners ~fault ~jobs
  | None ->
  match scale with
  | Some flows ->
      let jobs = Ba_cli.resolve_jobs jobs in
      if flows < 1 then begin
        Format.eprintf "ba_net: --scale flows must be positive (got %d)@." flows;
        exit 2
      end;
      let positive name v default =
        match v with
        | None -> default
        | Some v when v > 0 -> v
        | Some v ->
            Format.eprintf "ba_net: %s must be positive (got %d)@." name v;
            exit 2
      in
      let shards =
        match shards with
        | None | Some 0 -> None (* 0 = auto: one shard per job *)
        | Some s when s > 0 -> Some s
        | Some s ->
            Format.eprintf "ba_net: --shards must be >= 0 (got %d)@." s;
            exit 2
      in
      let cell = positive "--cell" cell 1024 in
      let barrier = positive "--barrier" barrier 1000 in
      run_scale ~flows ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity ~window
        ~rto ~modulus ~adaptive ~seed ~jobs ~shards ~cell ~barrier
  | None ->
  match sweep with
  | Some counts ->
      let jobs = Ba_cli.resolve_jobs jobs in
      (match List.find_opt (fun n -> n < 1) counts with
      | Some n ->
          Format.eprintf "ba_net: --sweep counts must be positive (got %d)@." n;
          exit 2
      | None -> ());
      run_sweep ~counts ~mix ~messages ~payload_size ~loss ~ack_loss ~delay ~capacity
        ~window ~rto ~modulus ~adaptive ~seed ~jobs
  | None ->
  let specs =
    List.concat_map
      (fun (e, count) ->
        let config = Registry.config ~window ~rto ?modulus ~adaptive_rto:adaptive e () in
        List.init count (fun _ -> Fabric.spec ~config ~messages ~payload_size e.Registry.protocol))
      mix
  in
  let r =
    Fabric.run ~seed ~data_loss:loss ~ack_loss ~data_delay:delay ~ack_delay:delay
      ?data_bottleneck:capacity specs
  in
  let rows =
    List.map
      (fun (fr : Ba_proto.Harness.result) ->
        let p50, p99 =
          match fr.latency with
          | Some l -> (fmt ~decimals:0 l.Ba_util.Stats.p50, fmt ~decimals:0 l.Ba_util.Stats.p99)
          | None -> ("-", "-")
        in
        [
          fr.protocol;
          Printf.sprintf "%d/%d" fr.delivered fr.messages;
          string_of_int fr.retransmissions;
          string_of_int fr.ticks;
          fmt fr.goodput;
          p50;
          p99;
          (if Ba_proto.Harness.correct fr then "ok"
           else if fr.completed then "UNSAFE"
           else "STUCK");
        ])
      r.Fabric.flows
  in
  let numbered = List.mapi (fun i row -> string_of_int i :: row) rows in
  Ba_util.Table.print
    ~headers:[ "flow"; "protocol"; "delivered"; "retx"; "ticks"; "goodput"; "p50"; "p99"; "verdict" ]
    numbered;
  let d = r.Fabric.data_stats and a = r.Fabric.ack_stats in
  Printf.printf
    "\naggregate: %d flows, %s in %d ticks, goodput=%s/ktick, jain=%s\n\
     shared data link: sent=%d dropped=%d queue_dropped=%d reordered=%d\n\
     shared ack link:  sent=%d dropped=%d\n"
    (List.length r.Fabric.flows)
    (if r.Fabric.completed then "completed" else "INCOMPLETE")
    r.Fabric.ticks
    (fmt r.Fabric.aggregate_goodput)
    (fmt r.Fabric.fairness)
    d.Ba_channel.Link.sent d.Ba_channel.Link.dropped d.Ba_channel.Link.queue_dropped
    d.Ba_channel.Link.reordered a.Ba_channel.Link.sent a.Ba_channel.Link.dropped;
  if List.for_all Ba_proto.Harness.correct r.Fabric.flows then 0 else 1

let list_protocols =
  Arg.(value & flag
       & info [ "list-protocols" ]
           ~doc:"List every protocol in the shared registry (with aliases) and exit.")

let connections =
  Arg.(value & opt int 4
       & info [ "c"; "connections" ] ~doc:"Number of blockack-multi flows (ignored with --mix).")

let mix =
  Arg.(value & opt (some mix_conv) None
       & info [ "mix" ]
           ~doc:"Heterogeneous flow mix, e.g. blockack-multi:4,go-back-n:2,selective-repeat:2.")

let messages =
  Arg.(value & opt int 100 & info [ "m"; "messages" ] ~doc:"Messages per flow.")

let payload_size = Arg.(value & opt int 32 & info [ "payload-size" ] ~doc:"Payload bytes.")

let loss =
  Arg.(value & opt float 0.0 & info [ "l"; "loss" ] ~doc:"Loss probability on both shared links.")

let ack_loss =
  Arg.(value & opt (some float) None & info [ "ack-loss" ] ~doc:"Override ack-link loss.")

let base_delay =
  Arg.(value & opt int 50 & info [ "delay" ] ~doc:"Minimum one-way delay (ticks).")

let jitter =
  Arg.(value & opt int 0 & info [ "j"; "jitter" ] ~doc:"Extra uniform delay (0 = FIFO order).")

let capacity =
  Arg.(value & opt (some capacity_conv) (Some (2, 64))
       & info [ "capacity" ]
           ~doc:"Shared data-link bottleneck SERVICE_TICKS:QUEUE_SLOTS (one message serviced \
                 per SERVICE_TICKS from a FIFO of QUEUE_SLOTS, tail drop). Pass --no-capacity \
                 for an uncontended fabric.")

let no_capacity =
  Arg.(value & flag & info [ "no-capacity" ] ~doc:"Remove the shared bottleneck entirely.")

let window = Arg.(value & opt int 8 & info [ "w"; "window" ] ~doc:"Window size per flow.")

let rto =
  Arg.(value & opt (some int) None
       & info [ "rto" ]
           ~doc:"Retransmission timeout; default 2*(delay+jitter) + queue drain + 100.")

let modulus =
  Arg.(value & opt (some int) None
       & info [ "n"; "modulus" ]
           ~doc:"Wire sequence-number modulus (default: each protocol's registry recommendation, \
                 e.g. 2w for block acknowledgment).")

let adaptive =
  Arg.(value & flag
       & info [ "adaptive" ] ~doc:"Use the adaptive (Jacobson/Karels) retransmission timeout.")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc:"Random seed.")

let sweep =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "sweep" ] ~docv:"N1,N2,..."
        ~doc:
          "Scaling sweep: instead of one fabric, run one cell per (connection count, \
           protocol in the mix) and print a summary row each (aggregate goodput, Jain's \
           index, queue drops). Cells are independent simulations, so $(b,--jobs) runs \
           them in parallel with byte-identical output.")

let soak =
  Arg.(
    value
    & opt (some int) None
    & info [ "soak" ] ~docv:"ROUNDS"
        ~doc:
          "Long-horizon overload soak: run ROUNDS independent fabric rounds, each doubling \
           the offered load with a surge of late-starting flows under a memory budget \
           (default: 3/4 of the unclamped need, so admission must clamp) and an armed \
           per-flow watchdog; when the protocol supports the crash lifecycle one victim \
           flow's receiver is stalled through the surge so resync/quarantine machinery \
           runs. Reports peak buffered bytes, quarantine events and post-surge recovery \
           time per round. Rounds are independent simulations, so $(b,--jobs) runs them \
           in parallel with byte-identical output.")

let budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:"Override the soak's fabric memory budget in bytes (only with $(b,--soak)).")

let surge_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "surge-at" ] ~docv:"TICK"
        ~doc:"Tick at which the soak's surge flows start offering traffic (default 2000; \
              only with $(b,--soak)).")

let stall_for =
  Arg.(
    value
    & opt (some int) None
    & info [ "stall-for" ] ~docv:"TICKS"
        ~doc:"How long the soak's stall victim's receiver stays dark (default 5000; only \
              with $(b,--soak)).")

let churn =
  Arg.(
    value
    & opt (some int) None
    & info [ "churn" ] ~docv:"CHURNERS"
        ~doc:"Add CHURNERS seed-derived departing/returning flow pairs to every soak round: \
              each churner arrives early, departs mid-round with work left (its budget \
              reservation is reclaimed), and a returning flow arrives into the reclaimed \
              capacity. The verdict line then checks post-churn goodput against the \
              pre-churn baseline (only with $(b,--soak)).")

let fault =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"CLASS"
        ~doc:"Land a ba_chaos fault class on every soak round, derived from the round seed: \
              channel plans hit the shared links, the overload squeeze rewrites receiver \
              budgets and the bottleneck, and the crash schedule hits the first base flow. \
              $(b,storm) composes all three (only with $(b,--soak)).")

let scale =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ] ~docv:"FLOWS"
        ~doc:
          "Sharded scale run: simulate FLOWS flows (cycled over the $(b,--mix)) through the \
           cell-partitioned fabric (Ba_proto.Shard), where the shared bottleneck becomes \
           per-cell capacity leases reconciled at epoch barriers. The printed summary is a \
           pure function of the model parameters — byte-identical at any $(b,--jobs) and any \
           $(b,--shards) — while wall-clock figures go to stderr. Built for 100k-1M flows in \
           bounded memory.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:"Shard count for $(b,--scale): cells are dealt to N contiguous shard groups \
              each epoch (0 or default: one shard per job). Pure scheduling - never changes \
              output.")

let cell_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cell" ] ~docv:"FLOWS"
        ~doc:"Flows per cell for $(b,--scale) (default 1024). A model parameter: changing \
              it changes the partition, and therefore the run.")

let barrier_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "barrier" ] ~docv:"TICKS"
        ~doc:"Epoch length in ticks for $(b,--scale) (default 1000): cells run independently \
              for one epoch, then the capacity leases are reconciled. A model parameter.")

let cmd =
  let doc = "simulate N window-protocol connections over a shared bottleneck" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multiplexes $(b,--connections) flows (or a heterogeneous $(b,--mix)) over one \
         capacity-limited data link and one acknowledgment link, then reports per-flow \
         delivery, retransmissions, goodput and latency percentiles next to aggregate \
         goodput and Jain's fairness index. Runs are deterministic given $(b,--seed). \
         Exit status 1 if any flow delivered a duplicate, out-of-order or corrupted \
         payload, or failed to complete.";
    ]
  in
  let wrap list_protocols connections mix messages payload_size loss ack_loss base_delay
      jitter capacity no_capacity window rto modulus adaptive seed sweep soak budget surge_at
      stall_for churn fault scale shards cell barrier jobs =
    let capacity = if no_capacity then None else capacity in
    run list_protocols connections mix messages payload_size loss ack_loss base_delay jitter
      capacity window rto modulus adaptive seed sweep soak budget surge_at stall_for churn
      fault scale shards cell barrier jobs
  in
  Cmd.v
    (Cmd.info "ba_net" ~doc ~man ~version:Ba_cli.version)
    Term.(
      const wrap $ list_protocols $ connections $ mix $ messages $ payload_size $ loss
      $ ack_loss $ base_delay $ jitter $ capacity $ no_capacity $ window $ rto $ modulus
      $ adaptive $ seed $ sweep $ soak $ budget $ surge_at $ stall_for $ churn $ fault
      $ scale $ shards_arg $ cell_arg $ barrier_arg $ Ba_cli.jobs)

let () = exit (Cmd.eval' cmd)
