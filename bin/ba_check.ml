(* ba_check: explore a protocol spec exhaustively and report on the
   paper's invariants (assertions 6-8), deadlock freedom and progress.

   Examples:
     ba_check --spec section2 -w 2 --limit 4
     ba_check --spec section5 -w 2 -n 3 --limit 6     # finds the n<2w bug
     ba_check --spec gbn -w 2 -n 3 --limit 6          # finds the intro scenario
     ba_check --spec crash-naive -w 1 --limit 2       # finds duplicate delivery
     ba_check --spec crash-epochs -w 1 --limit 2      # proves the handshake safe
     ba_check --spec pressure -w 2 --limit 3          # proves buffer drops ≡ loss
     ba_check --spec pressure-naive -w 2 --limit 2    # finds the ack-before-buffer bug *)

open Cmdliner

let specs =
  [
    ("section2", `S2);
    ("section4", `S4);
    ("section5", `S5);
    ("gbn", `Gbn);
    ("crash-naive", `Crash_naive);
    ("crash-epochs", `Crash_epochs);
    ("pressure", `Pressure);
    ("pressure-naive", `Pressure_naive);
  ]

let victims = [ ("sender", `Sender); ("receiver", `Receiver); ("both", `Both) ]

let run spec w n limit max_states no_liveness crashes victims =
  let spec_module =
    match spec with
    | `S2 -> Ba_model.Ba_spec.default ~w ~limit
    | `S4 -> Ba_model.Ba_spec_timeout.default ~w ~limit
    | `S5 -> Ba_model.Ba_spec_finite.default ~w ?n ~limit ()
    | `Gbn -> Ba_model.Gbn_bounded_spec.default ~w ?n ~limit ()
    | `Crash_naive ->
        Ba_model.Ba_spec_crash.default ~w ?n ~limit ~epochs:false ~max_crashes:crashes ~victims ()
    | `Crash_epochs ->
        Ba_model.Ba_spec_crash.default ~w ?n ~limit ~epochs:true ~max_crashes:crashes ~victims ()
    | `Pressure -> Ba_model.Ba_spec_pressure.default ~w ~limit ~naive:false
    | `Pressure_naive -> Ba_model.Ba_spec_pressure.default ~w ~limit ~naive:true
  in
  let result =
    Ba_verify.Explorer.run_spec ~max_states ~check_liveness:(not no_liveness) spec_module
  in
  Format.printf "%a@." Ba_verify.Explorer.pp_result result;
  match result.Ba_verify.Explorer.violation with Some _ -> 1 | None -> 0

let spec =
  let doc =
    "Which spec to check: section2 (block ack, simple timeout), section4 (per-message \
     timeouts), section5 (finite wire sequence numbers; see --modulus), gbn (bounded \
     go-back-N, the intro's strawman), crash-naive (endpoint crash-restart without \
     incarnation epochs: exhibits duplicate delivery), crash-epochs (crash-restart with \
     the epoch resync handshake: safe and live), pressure (receiver may drop any \
     out-of-order frame for buffer-full: safe and live — drops are channel losses), \
     pressure-naive (ack-before-buffer: violates assertion 8)."
  in
  Arg.(value & opt (enum specs) `S2 & info [ "spec" ] ~doc)

let w = Arg.(value & opt int 2 & info [ "w"; "window" ] ~doc:"Window size.")

let n =
  Arg.(value & opt (some int) None
       & info [ "n"; "modulus" ]
           ~doc:"Wire modulus (section5: default 2w; gbn: default w+1).")

let limit =
  Arg.(value & opt int 4 & info [ "limit" ] ~doc:"Messages in the bounded transfer.")

let max_states =
  Arg.(value & opt int 2_000_000 & info [ "max-states" ] ~doc:"Exploration cap.")

let no_liveness =
  Arg.(value & flag & info [ "no-liveness" ] ~doc:"Skip the loss-free progress check.")

let crashes =
  Arg.(
    value & opt int 1
    & info [ "crashes" ] ~doc:"Crash-restart budget for the crash-* specs (default 1).")

let victims_arg =
  Arg.(
    value
    & opt (enum victims) `Both
    & info [ "victims" ]
        ~doc:
          "Which endpoint the crash-* specs may crash: sender, receiver, or both. With \
           crash-naive, 'receiver' exhibits duplicate delivery and 'sender' phantom \
           delivery.")

let cmd =
  let doc = "model-check the block-acknowledgment protocol specs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Breadth-first exploration of the paper's guarded-action programs. Verifies the \
         system invariant (assertions 6-8) at every reachable state, reports deadlocks, \
         and checks that every state can still complete the transfer using protocol \
         actions only (progress during loss-free periods, Section III-C). Prints the \
         shortest counterexample when an invariant fails. The crash-* specs add an \
         environment that crash-restarts endpoints, wiping volatile state: crash-naive \
         asserts at-most-once delivery and fails; crash-epochs carries incarnation \
         epochs plus the REQ/POS/FIN resync handshake and passes, with assertions 6-8 \
         re-established in every stabilized state. Exit status 1 on violation.";
    ]
  in
  Cmd.v
    (Cmd.info "ba_check" ~doc ~man ~version:Ba_cli.version)
    Term.(const run $ spec $ w $ n $ limit $ max_states $ no_liveness $ crashes $ victims_arg)

let () = exit (Cmd.eval' cmd)
