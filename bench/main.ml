(* Benchmark and experiment harness.

   `dune exec bench/main.exe` regenerates every table/figure of the
   reproduction (T1, T2, F1-F5, T3, T4 — see DESIGN.md for the mapping to
   the paper's claims) and then runs one Bechamel micro-benchmark per
   experiment workload, timing the machinery that produces it.

   Flags:
     --quick       shrink message counts / seed sets (CI-sized)
     --no-bench    print the experiment tables only
     --no-tables   run the Bechamel benches only
     --jobs N      worker domains for the experiment grids (env BA_JOBS;
                   default: the machine's recommended domain count);
                   tables are byte-identical at any N
     --selftime    time the full chaos matrix at --jobs 1 vs --jobs N
     --json FILE   write wall-clock per grid, self-timing and micro-bench
                   results as JSON (the BENCH_campaigns.json schema)
     --check       performance gate: exit non-zero if block ack is slower
                   than the slowest baseline transfer or the steady-state
                   allocation slope exceeds its budget *)

open Bechamel
open Toolkit
module Experiments = Ba_experiments.Experiments

(* One channel, one config, every protocol: the F1/F2 transfer rows all
   run under this config so the comparison is apples-to-apples. It
   enables acknowledgment coalescing (30 ticks) because that is the
   block-ack protocol's defining feature — the baselines do not read
   [ack_coalesce], so their rows are unaffected, while block ack
   acknowledges runs in blocks the way the paper intends instead of
   being benchmarked with its headline mechanism switched off.
   [rto = 300 > 2*max_transit + ack_coalesce = 130] keeps timeout
   soundness. *)
let losses_config =
  Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~ack_coalesce:30
    ~max_transit:50 ()

let transfer proto ~loss () =
  let r =
    Ba_proto.Harness.run proto ~seed:3 ~messages:200 ~config:losses_config ~data_loss:loss
      ~ack_loss:loss ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ()
  in
  assert r.Ba_proto.Harness.completed

let explore () =
  let r = Ba_verify.Explorer.run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:3) in
  assert (r.Ba_verify.Explorer.violation = None)

let scenario () =
  let t = Experiments.t1_intro_scenario () in
  assert (List.length t.Experiments.rows = 2)

let recovery proto () =
  let config =
    Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~ack_coalesce:20
      ~max_transit:50 ()
  in
  let killed = ref false in
  let r =
    Ba_proto.Harness.run proto ~seed:7 ~messages:8 ~config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50)
      ~on_setup:(fun setup ->
        Ba_channel.Link.set_fault setup.Ba_proto.Harness.ack_link (fun _ ->
            if !killed then Ba_channel.Link.Deliver
            else begin
              killed := true;
              Ba_channel.Link.Drop
            end))
      ()
  in
  assert r.Ba_proto.Harness.completed

let reuse_transfer () =
  let config = Blockack.Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:60 () in
  let r =
    Ba_proto.Harness.run (Blockack.Protocols.reuse ()) ~seed:3 ~messages:200 ~config
      ~data_loss:0.05 ~ack_loss:0.05 ~data_delay:(Ba_channel.Dist.Uniform (40, 60))
      ~ack_delay:(Ba_channel.Dist.Uniform (40, 60)) ()
  in
  assert r.Ba_proto.Harness.completed

let stenning_transfer () =
  let config =
    Blockack.Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~stenning_gap:400 ()
  in
  let r =
    Ba_proto.Harness.run Ba_baselines.Stenning.protocol ~seed:3 ~messages:100 ~config
      ~data_loss:0.01 ~ack_loss:0.01 ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ()
  in
  assert r.Ba_proto.Harness.completed

let fabric_transfer n () =
  let e =
    match Ba_registry.Registry.find "blockack-multi" with
    | Some e -> e
    | None -> assert false
  in
  let config = Ba_registry.Registry.config ~window:8 ~rto:400 e () in
  let specs =
    List.init n (fun _ ->
        Ba_proto.Fabric.spec ~config ~messages:20 e.Ba_registry.Registry.protocol)
  in
  let r =
    Ba_proto.Fabric.run ~seed:11 ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ~data_bottleneck:(2, 128) specs
  in
  assert r.Ba_proto.Fabric.completed

(* The parallel runtime itself: a campaign-shaped grid of small
   independent transfers farmed to the session's job count. *)
let pool_campaign jobs () =
  let results =
    Ba_parallel.Pool.map ~jobs
      (fun seed ->
        let r =
          Ba_proto.Harness.run Blockack.Protocols.multi ~seed ~messages:20
            ~config:losses_config ~data_loss:0.02 ~ack_loss:0.02
            ~data_delay:(Ba_channel.Dist.Constant 50)
            ~ack_delay:(Ba_channel.Dist.Constant 50) ()
        in
        r.Ba_proto.Harness.completed)
      (List.init 8 (fun i -> i + 1))
  in
  assert (List.for_all Fun.id results)

(* Micro-benchmarks of the substrate the experiments lean on. *)
let micro_heap () =
  let h = Ba_util.Heap.create ~cmp:compare () in
  for i = 0 to 999 do
    Ba_util.Heap.push h ((i * 7919) mod 1000)
  done;
  while Ba_util.Heap.pop h <> None do
    ()
  done

let micro_reconstruct () =
  let acc = ref 0 in
  for x = 0 to 999 do
    acc := !acc + Ba_util.Modseq.reconstruct ~n:32 ~ref_:x ((x + 7) mod 32)
  done;
  Sys.opaque_identity !acc |> ignore

let micro_rng () =
  let rng = Ba_util.Rng.create 1 in
  let acc = ref 0 in
  for _ = 0 to 999 do
    acc := !acc + Ba_util.Rng.int rng 1000
  done;
  Sys.opaque_identity !acc |> ignore

let jitter_transfer () =
  let r =
    Ba_proto.Harness.run Blockack.Protocols.multi ~seed:3 ~messages:200 ~config:losses_config
      ~data_loss:0.01 ~ack_loss:0.01
      ~data_delay:(Ba_channel.Dist.Uniform (50, 100))
      ~ack_delay:(Ba_channel.Dist.Uniform (50, 100)) ()
  in
  assert r.Ba_proto.Harness.completed

let coalesced_transfer () =
  let config =
    Blockack.Config.make ~window:16 ~rto:400 ~wire_modulus:(Some 32) ~ack_coalesce:30
      ~max_transit:50 ()
  in
  let r =
    Ba_proto.Harness.run Blockack.Protocols.simple ~seed:3 ~messages:200 ~config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50) ()
  in
  assert r.Ba_proto.Harness.completed

(* The named workload list feeds both Bechamel (time per run) and the
   allocation meter below (bytes per run) — one definition, two
   instruments. *)
let workloads ~jobs =
  [
    ("T1/intro-scenario-replay", scenario);
    ("T2/explore-w2", explore);
    ("F1/transfer-blockack-5pc", transfer Blockack.Protocols.multi ~loss:0.05);
    ("F1/transfer-gbn-5pc", transfer Ba_baselines.Go_back_n.protocol ~loss:0.05);
    ("F1/transfer-selrep-5pc", transfer Ba_baselines.Selective_repeat.protocol ~loss:0.05);
    ("F2/transfer-blockack-0pc", transfer Blockack.Protocols.multi ~loss:0.);
    ("F3/recovery-simple", recovery Blockack.Protocols.simple);
    ("F3/recovery-multi", recovery Blockack.Protocols.multi);
    ("F4/transfer-jitter", jitter_transfer);
    ("T3/transfer-coalesced", coalesced_transfer);
    ("T4/transfer-stenning", stenning_transfer);
    ("F5/transfer-reuse-5pc", reuse_transfer);
    ("S1/fabric-16-flows", fabric_transfer 16);
    ("P1/pool-campaign-8x20", pool_campaign jobs);
    ("micro/heap-1k", micro_heap);
    ("micro/reconstruct-1k", micro_reconstruct);
    ("micro/rng-int-1k", micro_rng);
  ]

let tests ~jobs =
  Test.make_grouped ~name:"blockack"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) (workloads ~jobs))

(* Minor-heap bytes one run of [f] allocates, after a warm-up run that
   fills the frame pool, forces lazy initialisers and resizes arenas.
   Unlike wall-clock this is deterministic: the same code path allocates
   the same bytes every time, so it can be pinned by [--check]. *)
let alloc_per_run f =
  f ();
  let runs = 4 in
  (* [Gc.allocated_bytes] reads counters sampled at the last minor
     collection (OCaml 5), so flush the minor heap before each reading —
     unflushed deltas are quantized garbage. *)
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to runs do
    f ()
  done;
  Gc.minor ();
  let a1 = Gc.allocated_bytes () in
  (a1 -. a0) /. float_of_int runs

(* Returns [(name, ns_per_run, alloc_b_per_run)] so the JSON artefact
   can record both instruments. *)
let run_benchmarks ~jobs =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (tests ~jobs) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances |> Analyze.merge ols instances
  in
  print_endline "\n=== Bechamel micro-benchmarks (time and heap bytes per run) ===";
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ t ] -> rows := (name, t) :: !rows
      | Some _ | None -> ())
    clock;
  let allocs = List.map (fun (name, f) -> (name, alloc_per_run f)) (workloads ~jobs) in
  let alloc_of name =
    (* Bechamel prefixes the group name; join on the workload suffix. *)
    match
      List.find_opt (fun (n, _) -> String.equal name n || String.ends_with ~suffix:("/" ^ n) name)
        allocs
    with
    | Some (_, b) -> b
    | None -> nan
  in
  let rows = List.sort compare !rows in
  let rows = List.map (fun (name, t) -> (name, t, alloc_of name)) rows in
  Ba_util.Table.print ~headers:[ "benchmark"; "time/run"; "alloc/run" ]
    (List.map
       (fun (name, t, b) ->
         [ name; Printf.sprintf "%.1f us" (t /. 1_000.); Printf.sprintf "%.0f B" b ])
       rows);
  rows

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* ---- `--check`: the data-path performance gate ----------------------
   Exits non-zero if either regresses:
   1. block ack must not be slower than the slowest baseline transfer
      (go-back-N and selective repeat on F1's lossy channel, seq-reuse
      on F5's) — best-of-N wall clock, so scheduler noise only ever
      produces false passes, not false failures, on a loaded machine;
   2. the steady-state allocation slope — marginal heap bytes per
      additional frame, the fixed setup cost cancelled by differencing
      two run lengths — must stay under [alloc_slope_budget]. The slope
      is deterministic (same code path, same bytes), so this half of the
      gate is safe to pin in a cram test. The remaining slope is the
      workload generator and the latency sampler, not the frame path. *)

let alloc_slope_budget = 512.

(* ---- the sharded scale workload (S1 extension) ----------------------
   The cell-partitioned fabric (Ba_proto.Shard) at 1k -> 100k flows: the
   summary counters are deterministic, the wall seconds and flows/sec are
   this machine's. Feeds the scale table, the JSON artefact and the
   third leg of the --check gate. *)

let scale_points ~quick = if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]

let scale_run ~jobs flows =
  let e =
    match Ba_registry.Registry.find "blockack-multi" with
    | Some e -> e
    | None -> assert false
  in
  let config = Ba_registry.Registry.config ~window:8 ~rto:400 e () in
  let specs =
    List.init flows (fun _ ->
        Ba_proto.Fabric.spec ~config ~messages:2 e.Ba_registry.Registry.protocol)
  in
  let (r : Ba_proto.Shard.result), wall_s =
    wall (fun () -> Ba_proto.Shard.run ~seed:11 ~jobs ~measure_mem:true specs)
  in
  assert r.Ba_proto.Shard.completed;
  (flows, wall_s, r)

let scale_campaign ~quick ~jobs =
  let rows = List.map (scale_run ~jobs) (scale_points ~quick) in
  print_endline "\n=== sharded scale campaign (flows vs throughput) ===";
  List.iter
    (fun (flows, wall_s, (r : Ba_proto.Shard.result)) ->
      Printf.printf
        "flows=%d wall=%.2fs flows/sec=%.0f state=%dB/flow ticks=%d goodput=%.2f/ktick\n"
        flows wall_s
        (if wall_s > 0. then float_of_int flows /. wall_s else 0.)
        (r.Ba_proto.Shard.state_bytes / max 1 flows)
        r.Ba_proto.Shard.ticks r.Ba_proto.Shard.aggregate_goodput)
    rows;
  rows

(* ---- the real-transport campaign (N1) -------------------------------
   The same protocol, config and fault plan run twice: once over the
   simulated channel (virtual ticks, mapped to milliseconds at the
   transport's tick_us) and once over real loopback UDP through lib/net
   — sockets, wall-clock retransmission timers and the socket-boundary
   impairment shim. Sim-side counters are deterministic; the UDP side's
   throughput and latency are this machine's. *)

let net_tick_us = 200
let net_plan_str = "ge(0.02->0.3,l=0.05/0.3)+dup(0.03x2)+spike(0.03,+30)"

let net_plan () =
  match Ba_channel.Fault_plan.of_string net_plan_str with
  | Ok p -> p
  | Error e -> failwith e

let net_entry () =
  match Ba_registry.Registry.find "blockack" with Some e -> e | None -> assert false

(* rto 250 ticks = 50 ms of real silence at tick_us = 200; modulus
   defaults to the registry's 2w for blockack. *)
let net_config e = Ba_registry.Registry.config ~window:16 ~rto:250 e ()

type net_row = {
  nr_backend : string;  (** "sim" | "udp" *)
  nr_faults : string;  (** "none" | "lossy" (the 5%-baseline shim plan) *)
  nr_completed : bool;
  nr_msgs_s : float;
  nr_retx : int;
  nr_p50_ms : float;
  nr_p99_ms : float;
  nr_clean : bool;  (** delivered exactly once, in order, digest intact *)
}

let net_sim_row ~messages ~lossy =
  let e = net_entry () in
  (* Fresh plan values per link: a compiled plan carries per-link fault
     state, so the two directions must not share one. *)
  let data_plan = if lossy then Some (net_plan ()) else None in
  let ack_plan = if lossy then Some (net_plan ()) else None in
  let r =
    Ba_proto.Harness.run e.Ba_registry.Registry.protocol ~seed:3 ~messages ~payload_size:32
      ~config:(net_config e) ~data_delay:(Ba_channel.Dist.Constant 1)
      ~ack_delay:(Ba_channel.Dist.Constant 1) ?data_plan ?ack_plan ()
  in
  let ms_of_ticks t = t *. float_of_int net_tick_us /. 1000. in
  let wall_virtual_s = float_of_int r.Ba_proto.Harness.ticks *. float_of_int net_tick_us *. 1e-6 in
  {
    nr_backend = "sim";
    nr_faults = (if lossy then "lossy" else "none");
    nr_completed = r.Ba_proto.Harness.completed;
    nr_msgs_s =
      (if wall_virtual_s > 0. then float_of_int r.Ba_proto.Harness.delivered /. wall_virtual_s
       else 0.);
    nr_retx = r.Ba_proto.Harness.retransmissions;
    nr_p50_ms =
      (match r.Ba_proto.Harness.latency with Some s -> ms_of_ticks s.Ba_util.Stats.p50 | None -> 0.);
    nr_p99_ms =
      (match r.Ba_proto.Harness.latency with Some s -> ms_of_ticks s.Ba_util.Stats.p99 | None -> 0.);
    nr_clean =
      r.Ba_proto.Harness.completed
      && r.Ba_proto.Harness.duplicates = 0
      && r.Ba_proto.Harness.misordered = 0
      && r.Ba_proto.Harness.corrupted = 0;
  }

let net_udp_outcome ~messages ~lossy =
  let e = net_entry () in
  let plan = if lossy then Some (net_plan ()) else None in
  Ba_transport.Endpoint.Pair.run ~protocol:e.Ba_registry.Registry.protocol
    ~config:(net_config e) ~messages ~payload_size:32 ~wseed:3 ?plan ~impair_seed:11
    ~tick_us:net_tick_us ~deadline_s:45. ()

let net_udp_clean (o : Ba_transport.Endpoint.Pair.outcome) =
  o.Ba_transport.Endpoint.Pair.completed
  && o.Ba_transport.Endpoint.Pair.duplicates = 0
  && o.Ba_transport.Endpoint.Pair.misordered = 0
  && o.Ba_transport.Endpoint.Pair.corrupted = 0
  && o.Ba_transport.Endpoint.Pair.digest = o.Ba_transport.Endpoint.Pair.digest_expected

let net_udp_row ~messages ~lossy =
  let open Ba_transport.Endpoint.Pair in
  let o = net_udp_outcome ~messages ~lossy in
  let module Q = Ba_util.Qsketch in
  let q p = if Q.count o.latency_ms = 0 then 0. else Q.quantile o.latency_ms p in
  {
    nr_backend = "udp";
    nr_faults = (if lossy then "lossy" else "none");
    nr_completed = o.completed;
    nr_msgs_s = o.msgs_per_s;
    nr_retx = o.retransmissions;
    nr_p50_ms = q 0.5;
    nr_p99_ms = q 0.99;
    nr_clean = net_udp_clean o;
  }

let net_campaign ~quick =
  let messages = if quick then 120 else 300 in
  let rows =
    [
      net_sim_row ~messages ~lossy:false;
      net_udp_row ~messages ~lossy:false;
      net_sim_row ~messages ~lossy:true;
      net_udp_row ~messages ~lossy:true;
    ]
  in
  Printf.printf
    "\n=== real-transport campaign (N1: sim vs loopback UDP, blockack, %d x 32 B) ===\n" messages;
  Ba_util.Table.print
    ~headers:[ "backend"; "faults"; "completed"; "msgs/s"; "retx"; "p50 ms"; "p99 ms"; "clean" ]
    (List.map
       (fun r ->
         [
           r.nr_backend;
           r.nr_faults;
           string_of_bool r.nr_completed;
           Printf.sprintf "%.0f" r.nr_msgs_s;
           string_of_int r.nr_retx;
           Printf.sprintf "%.1f" r.nr_p50_ms;
           Printf.sprintf "%.1f" r.nr_p99_ms;
           string_of_bool r.nr_clean;
         ])
       rows);
  rows

(* Warm every workload, then interleave the timed rounds round-robin.
   Measuring one workload's N runs back-to-back before the next one even
   starts biases the comparison: process and machine state (branch
   predictors, frequency scaling, background load) drift monotonically
   warmer, so whichever workload is measured first is systematically
   penalised. Interleaving exposes every workload to the same drift, so
   only the per-round noise remains — and best-of filters that out. *)
let interleaved_best rounds fs =
  Array.iter (fun f -> f (); f ()) fs;
  let best = Array.map (fun _ -> infinity) fs in
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  best

let check () =
  let best =
    interleaved_best 9
      [|
        transfer Blockack.Protocols.multi ~loss:0.05;
        transfer Ba_baselines.Go_back_n.protocol ~loss:0.05;
        transfer Ba_baselines.Selective_repeat.protocol ~loss:0.05;
        reuse_transfer;
      |]
  in
  let blockack = best.(0) in
  let baselines =
    [
      ("F1/transfer-gbn-5pc", best.(1));
      ("F1/transfer-selrep-5pc", best.(2));
      ("F5/transfer-reuse-5pc", best.(3));
    ]
  in
  let slowest_name, slowest =
    List.fold_left
      (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
      ("", neg_infinity) baselines
  in
  (* Best-of filters per-round noise, but blockack sits at parity with
     the slowest baseline, so on a loaded or throttled host the raw
     comparison flips on single-digit drift. The gate therefore carries
     a 1.5x margin: a real data-path regression (an accidental O(n)
     scan, a lost pool) shows up as a multiple, and parity drift never
     fails the build. *)
  let time_margin = 1.5 in
  let time_ok = blockack <= slowest *. time_margin in
  Printf.printf "check: blockack-5pc %.0f us %s slowest baseline (%s %.0f us, 1.5x margin)\n"
    (blockack *. 1e6)
    (if time_ok then "within" else "EXCEEDS")
    slowest_name (slowest *. 1e6);
  let xfer messages () =
    let r =
      Ba_proto.Harness.run Blockack.Protocols.multi ~seed:3 ~messages ~config:losses_config
        ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50) ()
    in
    assert r.Ba_proto.Harness.completed
  in
  let a1 = alloc_per_run (xfer 200) in
  let a2 = alloc_per_run (xfer 400) in
  let slope = (a2 -. a1) /. 200. in
  let alloc_ok = slope <= alloc_slope_budget in
  Printf.printf "check: alloc slope %.0f B/frame %s budget (%.0f B/frame)\n" slope
    (if alloc_ok then "within" else "EXCEEDS")
    alloc_slope_budget;
  (* 3. the sharded fabric must hold its scale envelope at 100k flows:
     sustain the flows/sec floor and stay under the per-flow state
     ceiling. Both bounds carry ~4x headroom over the reference
     container (23k flows/sec, 3.6kB/flow), so scheduler noise cannot
     trip them — only a real data-path regression can. *)
  let scale_floor_fps = 5_000. in
  let scale_state_ceiling = 8_192 in
  let flows, wall_s, r = scale_run ~jobs:1 100_000 in
  let fps = if wall_s > 0. then float_of_int flows /. wall_s else infinity in
  let b_per_flow = r.Ba_proto.Shard.state_bytes / max 1 flows in
  let fps_ok = fps >= scale_floor_fps in
  let state_ok = b_per_flow <= scale_state_ceiling in
  Printf.printf "check: scale 100k flows %.0f flows/sec %s floor (%.0f flows/sec)\n" fps
    (if fps_ok then ">=" else "BELOW")
    scale_floor_fps;
  Printf.printf "check: scale state %d B/flow %s ceiling (%d B/flow)\n" b_per_flow
    (if state_ok then "within" else "EXCEEDS")
    scale_state_ceiling;
  (* 4. the real transport must carry a blockack transfer over loopback
     UDP through the 5%-baseline impairment shim: completion, zero
     safety violations (no duplicate, misordered or corrupted delivery,
     digest intact) and bounded wall time. The cap carries ~10x headroom
     over the reference container so scheduler noise cannot trip it. *)
  let net_messages = 150 in
  let net_cap_s = 30. in
  let o, net_wall =
    wall (fun () -> net_udp_outcome ~messages:net_messages ~lossy:true)
  in
  let open Ba_transport.Endpoint.Pair in
  let net_wall_ok = net_wall <= net_cap_s in
  let net_ok = net_udp_clean o && net_wall_ok in
  Printf.printf
    "check: net loopback %d/%d %s under impairment (dup=%d ooo=%d corrupt=%d digest %s, wall \
     %.1fs %s %.0fs cap)\n"
    o.delivered net_messages
    (if net_udp_clean o then "clean" else "NOT CLEAN")
    o.duplicates o.misordered o.corrupted
    (if o.digest = o.digest_expected then "ok" else "MISMATCH")
    net_wall
    (if net_wall_ok then "within" else "EXCEEDS")
    net_cap_s;
  if time_ok && alloc_ok && fps_ok && state_ok && net_ok then begin
    print_endline "check: OK";
    exit 0
  end
  else begin
    print_endline "check: FAIL";
    exit 1
  end

(* The soak acceptance workload: a churning fabric under composed storms,
   every round's latencies folded into one constant-space quantile sketch.
   Wall clock, peak fabric memory and the sketch's fixed footprint land in
   the JSON artefact, so soak-path regressions show up across commits. *)
let soak_campaign ~quick ~jobs =
  let module Fabric = Ba_proto.Fabric in
  let module Chaos = Ba_verify.Chaos in
  let module Qsketch = Ba_util.Qsketch in
  let rounds = if quick then 4 else 8 in
  let messages = if quick then 20 else 40 in
  let watchdog =
    { Ba_proto.Watchdog.default_config with Ba_proto.Watchdog.check_interval = 500 }
  in
  let run_round round =
    let seed = 42 + round in
    let specs =
      Fabric.churn ~churners:2 ~messages ~config:Chaos.robust_config ~seed
        Blockack.Protocols.multi
    in
    let need =
      List.fold_left
        (fun a (s : Fabric.spec) ->
          a + (2 * s.Fabric.config.Ba_proto.Proto_config.window * s.Fabric.payload_size))
        0 specs
    in
    let data_plan, ack_plan = Chaos.plans_for Chaos.Storm ~seed in
    let sq = Chaos.squeeze_for ~seed in
    let crash_plan = Chaos.crash_plan_for ~seed in
    let specs =
      List.map
        (fun (s : Fabric.spec) ->
          { s with Fabric.config = fst (Chaos.apply_squeeze sq s.Fabric.config) })
        specs
    in
    let on_flows engine (flows : Ba_proto.Flow.t array) =
      if Array.length flows > 0 && Ba_proto.Flow.crash_tolerant flows.(0) then
        List.iter
          (fun (ev : Ba_proto.Crash_plan.event) ->
            let crash, restart =
              match ev.Ba_proto.Crash_plan.endpoint with
              | Ba_proto.Crash_plan.Sender_end ->
                  (Ba_proto.Flow.crash_sender, Ba_proto.Flow.restart_sender)
              | Ba_proto.Crash_plan.Receiver_end ->
                  (Ba_proto.Flow.crash_receiver, Ba_proto.Flow.restart_receiver)
            in
            ignore
              (Ba_sim.Engine.schedule_at engine ~at:ev.Ba_proto.Crash_plan.at (fun () ->
                   crash flows.(0)));
            ignore
              (Ba_sim.Engine.schedule_at engine
                 ~at:(ev.Ba_proto.Crash_plan.at + ev.Ba_proto.Crash_plan.down_for)
                 (fun () -> restart flows.(0))))
          crash_plan
    in
    let r =
      Fabric.run ~seed ~data_plan ~ack_plan
        ~data_bottleneck:(sq.Chaos.service_time, sq.Chaos.queue_capacity)
        ~memory_budget:(need * 3 / 4) ~watchdog ~on_flows specs
    in
    assert r.Ba_proto.Fabric.completed;
    let rs = Qsketch.create () in
    List.iter
      (fun (f : Ba_proto.Harness.result) ->
        List.iter (Qsketch.add rs) f.Ba_proto.Harness.latencies)
      r.Fabric.flows;
    (r.Fabric.mem_peak_bytes, rs)
  in
  let results, wall_s =
    wall (fun () -> Ba_parallel.Pool.map_chunks ~jobs run_round (List.init rounds Fun.id))
  in
  let sketch =
    List.fold_left (fun acc (_, rs) -> Qsketch.merge acc rs) (Qsketch.create ()) results
  in
  let mem_peak = List.fold_left (fun a (m, _) -> max a m) 0 results in
  Printf.printf
    "\n=== soak campaign (churn + storm) ===\nrounds=%d wall=%.3fs mem-peak=%dB latency \
     n=%d sketch=%dB\n"
    rounds wall_s mem_peak (Qsketch.count sketch) (Qsketch.mem_bytes sketch);
  (rounds, wall_s, mem_peak, Qsketch.count sketch, Qsketch.mem_bytes sketch)

(* The acceptance workload: the full chaos matrix (C1's seeds x faults x
   protocols grid), timed sequentially and at the requested job count.
   Byte-identical tables are asserted, not assumed. *)
let selftime_chaos_matrix ~quick ~jobs =
  let t_seq, s_seq = wall (fun () -> Experiments.c1_chaos_matrix ~jobs:1 ~quick ()) in
  let t_par, s_par = wall (fun () -> Experiments.c1_chaos_matrix ~jobs ~quick ()) in
  if t_seq <> t_par then begin
    print_endline "FAIL: chaos matrix differs between --jobs 1 and --jobs N";
    exit 1
  end;
  let speedup = if s_par > 0. then s_seq /. s_par else nan in
  Printf.printf
    "\n=== self-timed chaos matrix (%s mode) ===\njobs=1: %.3fs  jobs=%d: %.3fs  speedup: %.2fx \
     (host reports %d core%s)\n"
    (if quick then "quick" else "full")
    s_seq jobs s_par speedup
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  (s_seq, s_par, speedup)

let write_json file ~quick ~jobs ~grid_times ~selftime ~soak ~scale ~net ~bench_rows =
  let open Ba_util.Json in
  let soak_json =
    match soak with
    | None -> Null
    | Some (rounds, wall_s, mem_peak, n, sketch_bytes) ->
        Obj
          [
            ("workload", String "churn-storm-soak");
            ("rounds", Int rounds);
            ("wall_s", Float wall_s);
            ("mem_peak_bytes", Int mem_peak);
            ("latency_samples", Int n);
            ("sketch_bytes", Int sketch_bytes);
          ]
  in
  let selftime_json =
    match selftime with
    | None -> Null
    | Some (s_seq, s_par, speedup) ->
        Obj
          [
            ("grid", String "C1-chaos-matrix");
            ("jobs", Int jobs);
            ("host_cores", Int (Domain.recommended_domain_count ()));
            ("jobs_1_wall_s", Float s_seq);
            ("jobs_n_wall_s", Float s_par);
            ("speedup", Float speedup);
          ]
  in
  let scale_json =
    List
      (List.map
         (fun (flows, wall_s, (r : Ba_proto.Shard.result)) ->
           Obj
             [
               ("flows", Int flows);
               ("wall_s", Float wall_s);
               ( "flows_per_sec",
                 Float (if wall_s > 0. then float_of_int flows /. wall_s else 0.) );
               ("state_bytes_per_flow", Int (r.Ba_proto.Shard.state_bytes / max 1 flows));
               ("ticks", Int r.Ba_proto.Shard.ticks);
               ("goodput_per_ktick", Float r.Ba_proto.Shard.aggregate_goodput);
             ])
         scale)
  in
  let net_json =
    List
      (List.map
         (fun r ->
           Obj
             [
               ("backend", String r.nr_backend);
               ("faults", String r.nr_faults);
               ("completed", Bool r.nr_completed);
               ("msgs_per_s", Float r.nr_msgs_s);
               ("retransmissions", Int r.nr_retx);
               ("p50_ms", Float r.nr_p50_ms);
               ("p99_ms", Float r.nr_p99_ms);
               ("clean", Bool r.nr_clean);
             ])
         net)
  in
  let json =
    Obj
      [
        ("schema", String "blockack/BENCH_campaigns/v1");
        ("mode", String (if quick then "quick" else "full"));
        ("jobs", Int jobs);
        ("host_recommended_domains", Int (Domain.recommended_domain_count ()));
        ( "grids",
          List
            (List.map
               (fun (id, dt) -> Obj [ ("id", String id); ("wall_s", Float dt) ])
               grid_times) );
        ("selftime", selftime_json);
        ("soak", soak_json);
        ("scale", scale_json);
        ("net", net_json);
        ( "microbench",
          List
            (List.map
               (fun (name, ns, alloc_b) ->
                 Obj
                   [
                     ("name", String name);
                     ("ns_per_run", Float ns);
                     ("alloc_b_per_run", Float alloc_b);
                   ])
               bench_rows) );
      ]
  in
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc json);
  Printf.printf "\nwrote %s\n" file

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--no-bench] [--no-tables] [--jobs N] [--selftime] [--json FILE] \
     [--check]";
  exit 2

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--check" args then check ();
  let quick = List.mem "--quick" args in
  let no_bench = List.mem "--no-bench" args in
  let no_tables = List.mem "--no-tables" args in
  let selftime_wanted = List.mem "--selftime" args in
  (* --jobs N / --jobs=N, defaulting like the CLIs: BA_JOBS, then the
     machine's recommended domain count. *)
  let jobs = ref (Ba_parallel.Pool.default_jobs ()) in
  let json_file = ref None in
  let bad_jobs v =
    Printf.eprintf "bench: --jobs must be a positive integer (got %S)\n" v;
    exit 2
  in
  let rec scan = function
    | [] -> ()
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            (* Same absurdity clamp as the CLIs' resolve_jobs. *)
            jobs := min n (Ba_parallel.Pool.max_jobs ());
            scan rest
        | Some _ | None -> bad_jobs v)
    | [ "--jobs" ] -> usage ()
    | "--json" :: f :: rest ->
        json_file := Some f;
        scan rest
    | [ "--json" ] -> usage ()
    | arg :: rest ->
        (match String.index_opt arg '=' with
        | Some i when String.length arg > i + 1 && String.sub arg 0 i = "--jobs" ->
            let v = String.sub arg (i + 1) (String.length arg - i - 1) in
            (match int_of_string_opt v with
            | Some n when n >= 1 -> jobs := min n (Ba_parallel.Pool.max_jobs ())
            | Some _ | None -> bad_jobs v)
        | Some i when String.length arg > i + 1 && String.sub arg 0 i = "--json" ->
            json_file := Some (String.sub arg (i + 1) (String.length arg - i - 1))
        | _ -> ());
        scan rest
  in
  scan (List.tl args);
  let jobs = !jobs in
  let grid_times = ref [] in
  if not no_tables then begin
    Printf.printf
      "Block Acknowledgment reproduction — experiment tables (%s mode, %d job%s)\n\
       Mapping to the paper's claims: see DESIGN.md; measured-vs-paper: EXPERIMENTS.md.\n"
      (if quick then "quick" else "full")
      jobs
      (if jobs = 1 then "" else "s");
    List.iter
      (fun (id, grid) ->
        let table, dt = wall (fun () -> grid ~quick ~jobs) in
        Experiments.print_table table;
        grid_times := (id, dt) :: !grid_times)
      Experiments.grids
  end;
  (* --json always records the selftime block: an artefact with
     "selftime": null says nothing about the parallel runtime, which is
     exactly the field the scaling work is judged on. *)
  let selftime =
    if selftime_wanted || !json_file <> None then Some (selftime_chaos_matrix ~quick ~jobs)
    else None
  in
  let soak =
    if no_tables && !json_file = None then None else Some (soak_campaign ~quick ~jobs)
  in
  let scale =
    if no_tables && !json_file = None then [] else scale_campaign ~quick ~jobs
  in
  let net = if no_tables && !json_file = None then [] else net_campaign ~quick in
  let bench_rows = if no_bench then [] else run_benchmarks ~jobs in
  match !json_file with
  | Some file ->
      write_json file ~quick ~jobs ~grid_times:(List.rev !grid_times) ~selftime ~soak ~scale
        ~net ~bench_rows
  | None -> ()
