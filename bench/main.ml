(* Benchmark and experiment harness.

   `dune exec bench/main.exe` regenerates every table/figure of the
   reproduction (T1, T2, F1-F5, T3, T4 — see DESIGN.md for the mapping to
   the paper's claims) and then runs one Bechamel micro-benchmark per
   experiment workload, timing the machinery that produces it.

   Flags:
     --quick     shrink message counts / seed sets (CI-sized)
     --no-bench  print the experiment tables only
     --no-tables run the Bechamel benches only *)

open Bechamel
open Toolkit

let losses_config = Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:50 ()

let transfer proto ~loss () =
  let r =
    Ba_proto.Harness.run proto ~seed:3 ~messages:200 ~config:losses_config ~data_loss:loss
      ~ack_loss:loss ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ()
  in
  assert r.Ba_proto.Harness.completed

let explore () =
  let r = Ba_verify.Explorer.run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:3) in
  assert (r.Ba_verify.Explorer.violation = None)

let scenario () =
  let t = Ba_experiments.Experiments.t1_intro_scenario () in
  assert (List.length t.Ba_experiments.Experiments.rows = 2)

let recovery proto () =
  let config =
    Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~ack_coalesce:20
      ~max_transit:50 ()
  in
  let killed = ref false in
  let r =
    Ba_proto.Harness.run proto ~seed:7 ~messages:8 ~config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50)
      ~on_setup:(fun setup ->
        Ba_channel.Link.set_fault setup.Ba_proto.Harness.ack_link (fun _ ->
            if !killed then Ba_channel.Link.Deliver
            else begin
              killed := true;
              Ba_channel.Link.Drop
            end))
      ()
  in
  assert r.Ba_proto.Harness.completed

let reuse_transfer () =
  let config = Blockack.Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:60 () in
  let r =
    Ba_proto.Harness.run (Blockack.Protocols.reuse ()) ~seed:3 ~messages:200 ~config
      ~data_loss:0.05 ~ack_loss:0.05 ~data_delay:(Ba_channel.Dist.Uniform (40, 60))
      ~ack_delay:(Ba_channel.Dist.Uniform (40, 60)) ()
  in
  assert r.Ba_proto.Harness.completed

let stenning_transfer () =
  let config =
    Blockack.Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~stenning_gap:400 ()
  in
  let r =
    Ba_proto.Harness.run Ba_baselines.Stenning.protocol ~seed:3 ~messages:100 ~config
      ~data_loss:0.01 ~ack_loss:0.01 ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ()
  in
  assert r.Ba_proto.Harness.completed

let fabric_transfer n () =
  let e =
    match Ba_registry.Registry.find "blockack-multi" with
    | Some e -> e
    | None -> assert false
  in
  let config = Ba_registry.Registry.config ~window:8 ~rto:400 e () in
  let specs =
    List.init n (fun _ ->
        Ba_proto.Fabric.spec ~config ~messages:20 e.Ba_registry.Registry.protocol)
  in
  let r =
    Ba_proto.Fabric.run ~seed:11 ~data_delay:(Ba_channel.Dist.Constant 50)
      ~ack_delay:(Ba_channel.Dist.Constant 50) ~data_bottleneck:(2, 128) specs
  in
  assert r.Ba_proto.Fabric.completed

(* Micro-benchmarks of the substrate the experiments lean on. *)
let micro_heap () =
  let h = Ba_util.Heap.create ~cmp:compare () in
  for i = 0 to 999 do
    Ba_util.Heap.push h ((i * 7919) mod 1000)
  done;
  while Ba_util.Heap.pop h <> None do
    ()
  done

let micro_reconstruct () =
  let acc = ref 0 in
  for x = 0 to 999 do
    acc := !acc + Ba_util.Modseq.reconstruct ~n:32 ~ref_:x ((x + 7) mod 32)
  done;
  Sys.opaque_identity !acc |> ignore

let micro_rng () =
  let rng = Ba_util.Rng.create 1 in
  let acc = ref 0 in
  for _ = 0 to 999 do
    acc := !acc + Ba_util.Rng.int rng 1000
  done;
  Sys.opaque_identity !acc |> ignore

let tests =
  Test.make_grouped ~name:"blockack"
    [
      Test.make ~name:"T1/intro-scenario-replay" (Staged.stage scenario);
      Test.make ~name:"T2/explore-w2" (Staged.stage explore);
      Test.make ~name:"F1/transfer-blockack-5pc"
        (Staged.stage (transfer Blockack.Protocols.multi ~loss:0.05));
      Test.make ~name:"F1/transfer-gbn-5pc"
        (Staged.stage (transfer Ba_baselines.Go_back_n.protocol ~loss:0.05));
      Test.make ~name:"F1/transfer-selrep-5pc"
        (Staged.stage (transfer Ba_baselines.Selective_repeat.protocol ~loss:0.05));
      Test.make ~name:"F2/transfer-blockack-0pc"
        (Staged.stage (transfer Blockack.Protocols.multi ~loss:0.));
      Test.make ~name:"F3/recovery-simple" (Staged.stage (recovery Blockack.Protocols.simple));
      Test.make ~name:"F3/recovery-multi" (Staged.stage (recovery Blockack.Protocols.multi));
      Test.make ~name:"F4/transfer-jitter"
        (Staged.stage (fun () ->
             let r =
               Ba_proto.Harness.run Blockack.Protocols.multi ~seed:3 ~messages:200
                 ~config:losses_config ~data_loss:0.01 ~ack_loss:0.01
                 ~data_delay:(Ba_channel.Dist.Uniform (50, 100))
                 ~ack_delay:(Ba_channel.Dist.Uniform (50, 100)) ()
             in
             assert r.Ba_proto.Harness.completed));
      Test.make ~name:"T3/transfer-coalesced"
        (Staged.stage (fun () ->
             let config =
               Blockack.Config.make ~window:16 ~rto:400 ~wire_modulus:(Some 32)
                 ~ack_coalesce:30 ~max_transit:50 ()
             in
             let r =
               Ba_proto.Harness.run Blockack.Protocols.simple ~seed:3 ~messages:200 ~config
                 ~data_delay:(Ba_channel.Dist.Constant 50)
                 ~ack_delay:(Ba_channel.Dist.Constant 50) ()
             in
             assert r.Ba_proto.Harness.completed));
      Test.make ~name:"T4/transfer-stenning" (Staged.stage stenning_transfer);
      Test.make ~name:"F5/transfer-reuse-5pc" (Staged.stage reuse_transfer);
      Test.make ~name:"S1/fabric-16-flows" (Staged.stage (fabric_transfer 16));
      Test.make ~name:"micro/heap-1k" (Staged.stage micro_heap);
      Test.make ~name:"micro/reconstruct-1k" (Staged.stage micro_reconstruct);
      Test.make ~name:"micro/rng-int-1k" (Staged.stage micro_rng);
    ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances |> Analyze.merge ols instances
  in
  print_endline "\n=== Bechamel micro-benchmarks (time per run) ===";
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some [ t ] -> Printf.sprintf "%.1f us" (t /. 1_000.)
        | Some _ | None -> "n/a"
      in
      rows := [ name; time ] :: !rows)
    clock;
  let rows = List.sort compare !rows in
  Ba_util.Table.print ~headers:[ "benchmark"; "time/run" ] rows

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let no_bench = List.mem "--no-bench" args in
  let no_tables = List.mem "--no-tables" args in
  if not no_tables then begin
    Printf.printf
      "Block Acknowledgment reproduction — experiment tables (%s mode)\n\
       Mapping to the paper's claims: see DESIGN.md; measured-vs-paper: EXPERIMENTS.md.\n"
      (if quick then "quick" else "full");
    Ba_experiments.Experiments.run_all ~quick
  end;
  if not no_bench then run_benchmarks ()
