(* Shared command-line conventions for the campaign runners.

   Every grid the tools run (chaos seed x fault cells, scaling sweeps) is
   a list of independent simulations, so each binary exposes the same
   --jobs flag and farms cells to a Ba_parallel.Pool. Results are
   collected in input order, which keeps output byte-identical at any
   job count. *)

open Cmdliner

(* The one version constant every binary reports: `ba_sim --version`,
   `ba_net --version` etc. all print this string via Cmd.info. *)
let version = "0.5.0"

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "jobs must be a positive integer (got %S)" s))
  in
  Arg.conv ~docv:"JOBS" (parse, Format.pp_print_int)

let jobs =
  let env = Cmd.Env.info "BA_JOBS" ~doc:"Default worker-domain count for $(b,--jobs)." in
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "jobs" ] ~env ~docv:"JOBS"
        ~doc:
          "Worker domains for independent simulation cells (default: the machine's \
           recommended domain count, override with $(b,BA_JOBS)). Results are collected \
           in submission order, so output is byte-identical at any value.")

(* Explicit --jobs (and BA_JOBS, which cmdliner feeds through the same
   option) gets the same absurdity clamp as the pool default: requesting
   100000 domains on a 4-core host is a mistake, not a plan. *)
let resolve_jobs = function
  | Some n -> min n (Ba_parallel.Pool.max_jobs ())
  | None -> Ba_parallel.Pool.default_jobs ()
