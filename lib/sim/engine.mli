(** Deterministic discrete-event simulation engine.

    Model time is an integer tick count (one tick reads naturally as one
    microsecond, but nothing depends on the unit). Events scheduled for
    the same tick fire in scheduling order, so a run is fully determined
    by the seed and the program. *)

type t

type handle
(** A scheduled event; can be cancelled until it fires. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] starts a simulation at tick 0 with a generator
    seeded by [seed] (default 1). *)

val now : t -> int
(** Current tick. *)

val rng : t -> Ba_util.Rng.t
(** The engine's random stream. Components wanting independent streams
    should [Ba_util.Rng.split] it at setup time. *)

val schedule : t -> delay:int -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run at [now t + delay].
    Requires [delay >= 0]. *)

val schedule_at : t -> at:int -> (unit -> unit) -> handle
(** Absolute-time variant. Requires [at >= now t]. *)

val cancel : handle -> unit
(** Cancel a pending event; no-op if it already fired or was cancelled. *)

val is_pending : handle -> bool

val pending_events : t -> int
(** Number of not-yet-fired, not-cancelled events. O(1): the engine
    maintains the count incrementally across schedule/cancel/fire. *)

val queue_length : t -> int
(** Physical size of the event heap, counting lazily-cancelled entries
    that have not been compacted away yet. Always [>= pending_events].
    Exposed so tests can observe dead-event compaction; not meaningful
    for simulation logic. *)

val step : t -> bool
(** Fire the next event. Returns [false] when the queue is empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Fire events until the queue drains, [until] ticks is reached
    (events at [until] and beyond stay pending, with the clock advanced
    to [until]), or [max_events] have fired. *)

val stop : t -> unit
(** Make the current [run] return after the event in progress. *)

exception Stopped
