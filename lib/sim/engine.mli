(** Deterministic discrete-event simulation engine.

    Model time is an integer tick count (one tick reads naturally as one
    microsecond, but nothing depends on the unit). Events scheduled for
    the same tick fire in scheduling order, so a run is fully determined
    by the seed and the program. *)

type t

type handle
(** A scheduled event; can be cancelled until it fires. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] starts a simulation at tick 0 with a generator
    seeded by [seed] (default 1). *)

val now : t -> int
(** Current tick. *)

val rng : t -> Ba_util.Rng.t
(** The engine's random stream. Components wanting independent streams
    should [Ba_util.Rng.split] it at setup time. *)

val schedule : t -> delay:int -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run at [now t + delay].
    Requires [delay >= 0]. *)

val schedule_at : t -> at:int -> (unit -> unit) -> handle
(** Absolute-time variant. Requires [at >= now t]. *)

val cancel : handle -> unit
(** Cancel a pending event; no-op if it already fired or was cancelled. *)

val is_pending : handle -> bool

val pending_events : t -> int
(** Number of not-yet-fired, not-cancelled events. O(1): the engine
    maintains the count incrementally across schedule/cancel/fire. *)

val queue_length : t -> int
(** Physical size of the event heap, counting lazily-cancelled entries
    that have not been compacted away yet. Always [>= pending_events].
    Exposed so tests can observe dead-event compaction; not meaningful
    for simulation logic. *)

type slot
(** A reusable event slot: the allocation-free way to run a recurring
    (re-armable) callback. The callback closure is built once at
    {!slot_create}; every {!slot_arm} after that reuses it, costing no
    heap allocation — unlike {!schedule}, which builds a fresh closure
    and handle per call. This is what {!Timer} arms on every
    (re)transmission. *)

val slot_create : t -> (unit -> unit) -> slot
(** [slot_create t f] makes a disarmed slot that runs [f ()] when it
    fires. A slot fires at most once per arming and is disarmed before
    [f] runs, so [f] may re-arm it. *)

val slot_arm : slot -> delay:int -> unit
(** Arm (or re-arm, cancelling the previous arming) to fire [delay]
    ticks from now. Requires [delay >= 0]. Allocation-free. *)

val slot_cancel : slot -> unit
(** Disarm; no-op when not armed. *)

val slot_armed : slot -> bool

val slot_expiry : slot -> int
(** Absolute tick of the current arming; meaningless when disarmed. *)

val schedule_fn : t -> delay:int -> (int -> unit) -> int -> unit
(** [schedule_fn t ~delay f arg] runs [f arg] at [now t + delay] —
    fire-and-forget, not cancellable. Passing a persistent [f] and an
    integer [arg] makes this the allocation-free path for high-rate
    one-shot events (the link's delivery events). *)

val next_due : t -> int option
(** Tick of the earliest pending event, without firing it ([None] when
    the queue is empty). What a wall-clock driver needs to compute a
    [select] timeout: sleep until the next virtual deadline, no longer. *)

val step : t -> bool
(** Fire the next event. Returns [false] when the queue is empty. *)

val drain_batch : t -> int
(** Fire every event of the earliest pending tick — including events
    that callbacks schedule for that same tick — in one pass, and
    return how many fired (0 when the queue is empty). Firing order is
    identical to repeated {!step}; this just hoists the head
    inspection out of the per-event loop. Respects {!stop}. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Fire events until the queue drains, [until] ticks is reached
    (events at [until] and beyond stay pending, with the clock advanced
    to [until]), or [max_events] have fired. *)

val stop : t -> unit
(** Make the current [run] return after the event in progress. *)

exception Stopped
