(* A thin veneer over an {!Engine.slot}: the callback closure is built
   once here, and every (re)arm after that is allocation-free — the old
   implementation built a fresh closure and heap record per [start]. *)

type t = {
  engine : Engine.t;
  slot : Engine.slot;
  mutable duration : int;
}

let create engine ~duration callback =
  if duration < 0 then invalid_arg "Timer.create: negative duration";
  { engine; slot = Engine.slot_create engine callback; duration }

let stop t = Engine.slot_cancel t.slot

let start_for t duration = Engine.slot_arm t.slot ~delay:duration

let start t = start_for t t.duration

let is_armed t = Engine.slot_armed t.slot

let duration t = t.duration

let set_duration t d =
  if d < 0 then invalid_arg "Timer.set_duration: negative duration";
  t.duration <- d

let remaining t =
  if is_armed t then Some (max 0 (Engine.slot_expiry t.slot - Engine.now t.engine)) else None
