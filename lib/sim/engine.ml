exception Stopped

(* The event queue is a struct-of-arrays arena plus an int-keyed binary
   heap, replacing the old closure-per-event record heap. An event is an
   arena slot holding its callback (an [int -> unit] plus an int
   argument, so hot callers never build a closure per event) and a
   generation counter; the heap orders (time, stamp) pairs with plain
   int comparisons — the stamp is a monotonically increasing push
   counter, which is exactly the old stable heap's insertion-order
   tie-break, so same-tick events still fire in scheduling order and
   every trace stays byte-identical.

   Cancellation is generational: freeing a slot bumps its generation,
   so heap entries (and user-held handles) that recorded the old
   generation are recognisably stale. Dead heap entries are skipped at
   the head and compacted in bulk, with the same counters and
   compaction policy the record-based engine had. *)

type t = {
  mutable clock : int;
  rng : Ba_util.Rng.t;
  mutable pending : int;  (* live events currently in the queue *)
  mutable dead : int;  (* cancelled events still occupying heap slots *)
  mutable stopping : bool;
  (* event arena *)
  mutable ar_fn : (int -> unit) array;
  mutable ar_arg : int array;
  mutable ar_gen : int array;
  mutable free : int array;  (* free-list stack of arena slots *)
  mutable free_len : int;
  (* binary heap over (time, stamp), entries point into the arena *)
  mutable hp_time : int array;
  mutable hp_stamp : int array;
  mutable hp_slot : int array;
  mutable hp_gen : int array;
  mutable hp_len : int;
  mutable stamp : int;  (* next insertion stamp; never reset *)
}

type handle = { h_owner : t; h_slot : int; h_gen : int }

type slot = {
  s_owner : t;
  mutable s_fire : int -> unit;  (* the one closure, built at [slot_create] *)
  mutable s_idx : int;  (* arena slot while armed, -1 otherwise *)
  mutable s_expiry : int;
}

let ignore_int (_ : int) = ()

(* Compact when corpses outnumber live events: a sender that cancels one
   timer per acknowledgment would otherwise grow the heap without bound
   (every pop then pays log of a heap dominated by dead entries). The
   floor keeps tiny heaps from re-heapifying on every other cancel. *)
let compaction_floor = 32

let initial_cap = 64

let create ?(seed = 1) () =
  {
    clock = 0;
    rng = Ba_util.Rng.create seed;
    pending = 0;
    dead = 0;
    stopping = false;
    ar_fn = Array.make initial_cap ignore_int;
    ar_arg = Array.make initial_cap 0;
    ar_gen = Array.make initial_cap 0;
    free = Array.init initial_cap (fun i -> initial_cap - 1 - i);
    free_len = initial_cap;
    hp_time = Array.make initial_cap 0;
    hp_stamp = Array.make initial_cap 0;
    hp_slot = Array.make initial_cap 0;
    hp_gen = Array.make initial_cap 0;
    hp_len = 0;
    stamp = 0;
  }

let now t = t.clock
let rng t = t.rng

(* ---- arena ---- *)

let grow_arena t =
  let old = Array.length t.ar_fn in
  let cap = 2 * old in
  let fn = Array.make cap ignore_int in
  Array.blit t.ar_fn 0 fn 0 old;
  t.ar_fn <- fn;
  let arg = Array.make cap 0 in
  Array.blit t.ar_arg 0 arg 0 old;
  t.ar_arg <- arg;
  let gen = Array.make cap 0 in
  Array.blit t.ar_gen 0 gen 0 old;
  t.ar_gen <- gen;
  (* grown only when the free stack is empty, so just refill it with the
     new slots (lowest index popped first) *)
  let free = Array.make cap 0 in
  for i = 0 to old - 1 do
    free.(i) <- cap - 1 - i
  done;
  t.free <- free;
  t.free_len <- old

let acquire t =
  if t.free_len = 0 then grow_arena t;
  t.free_len <- t.free_len - 1;
  t.free.(t.free_len)

(* Bumping the generation is what invalidates every outstanding heap
   entry and handle for this slot; clearing the callback drops whatever
   it captured. *)
let release_slot t idx =
  t.ar_gen.(idx) <- t.ar_gen.(idx) + 1;
  t.ar_fn.(idx) <- ignore_int;
  t.free.(t.free_len) <- idx;
  t.free_len <- t.free_len + 1

(* ---- heap ---- *)

let hp_less t i j =
  t.hp_time.(i) < t.hp_time.(j)
  || (t.hp_time.(i) = t.hp_time.(j) && t.hp_stamp.(i) < t.hp_stamp.(j))

let hp_swap t i j =
  let tm = t.hp_time.(i) in
  t.hp_time.(i) <- t.hp_time.(j);
  t.hp_time.(j) <- tm;
  let st = t.hp_stamp.(i) in
  t.hp_stamp.(i) <- t.hp_stamp.(j);
  t.hp_stamp.(j) <- st;
  let sl = t.hp_slot.(i) in
  t.hp_slot.(i) <- t.hp_slot.(j);
  t.hp_slot.(j) <- sl;
  let g = t.hp_gen.(i) in
  t.hp_gen.(i) <- t.hp_gen.(j);
  t.hp_gen.(j) <- g

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if hp_less t i parent then begin
      hp_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.hp_len then begin
    let smallest = if hp_less t l i then l else i in
    let r = l + 1 in
    let smallest = if r < t.hp_len && hp_less t r smallest then r else smallest in
    if smallest <> i then begin
      hp_swap t i smallest;
      sift_down t smallest
    end
  end

let heap_grow t =
  let old = Array.length t.hp_time in
  let cap = 2 * old in
  let tm = Array.make cap 0 in
  Array.blit t.hp_time 0 tm 0 old;
  t.hp_time <- tm;
  let st = Array.make cap 0 in
  Array.blit t.hp_stamp 0 st 0 old;
  t.hp_stamp <- st;
  let sl = Array.make cap 0 in
  Array.blit t.hp_slot 0 sl 0 old;
  t.hp_slot <- sl;
  let g = Array.make cap 0 in
  Array.blit t.hp_gen 0 g 0 old;
  t.hp_gen <- g

let heap_push t ~time ~slot ~gen =
  if t.hp_len = Array.length t.hp_time then heap_grow t;
  let i = t.hp_len in
  t.hp_len <- i + 1;
  t.hp_time.(i) <- time;
  t.hp_stamp.(i) <- t.stamp;
  t.stamp <- t.stamp + 1;
  t.hp_slot.(i) <- slot;
  t.hp_gen.(i) <- gen;
  sift_up t i

(* Discard the root (callers read its fields first). *)
let heap_pop_root t =
  let last = t.hp_len - 1 in
  t.hp_len <- last;
  if last > 0 then begin
    t.hp_time.(0) <- t.hp_time.(last);
    t.hp_stamp.(0) <- t.hp_stamp.(last);
    t.hp_slot.(0) <- t.hp_slot.(last);
    t.hp_gen.(0) <- t.hp_gen.(last);
    sift_down t 0
  end

(* ---- scheduling ---- *)

let enqueue t ~at fn arg =
  let idx = acquire t in
  t.ar_fn.(idx) <- fn;
  t.ar_arg.(idx) <- arg;
  heap_push t ~time:at ~slot:idx ~gen:t.ar_gen.(idx);
  t.pending <- t.pending + 1;
  idx

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let idx = enqueue t ~at (fun _ -> action ()) 0 in
  { h_owner = t; h_slot = idx; h_gen = t.ar_gen.(idx) }

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + delay) action

let schedule_fn t ~delay fn arg =
  if delay < 0 then invalid_arg "Engine.schedule_fn: negative delay";
  ignore (enqueue t ~at:(t.clock + delay) fn arg)

(* ---- cancellation ---- *)

let maybe_compact t =
  if t.dead > t.pending && t.dead > compaction_floor then begin
    (* Keep gen-matching entries in place (their stamps come along, so
       relative order among survivors is preserved), then Floyd-heapify. *)
    let n = t.hp_len in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if t.hp_gen.(i) = t.ar_gen.(t.hp_slot.(i)) then begin
        let k = !j in
        if k <> i then begin
          t.hp_time.(k) <- t.hp_time.(i);
          t.hp_stamp.(k) <- t.hp_stamp.(i);
          t.hp_slot.(k) <- t.hp_slot.(i);
          t.hp_gen.(k) <- t.hp_gen.(i)
        end;
        incr j
      end
    done;
    t.hp_len <- !j;
    for k = (!j / 2) - 1 downto 0 do
      sift_down t k
    done;
    t.dead <- 0
  end

let cancel_slot t idx =
  release_slot t idx;
  t.pending <- t.pending - 1;
  t.dead <- t.dead + 1;
  maybe_compact t

let handle_pending h = h.h_gen = h.h_owner.ar_gen.(h.h_slot)

let cancel h = if handle_pending h then cancel_slot h.h_owner h.h_slot

let is_pending h = handle_pending h

let pending_events t = t.pending

let queue_length t = t.hp_len

(* ---- slots ---- *)

let slot_create t callback =
  let s = { s_owner = t; s_fire = ignore_int; s_idx = -1; s_expiry = 0 } in
  s.s_fire <-
    (fun _ ->
      s.s_idx <- -1;
      callback ());
  s

let slot_cancel s =
  if s.s_idx >= 0 then begin
    cancel_slot s.s_owner s.s_idx;
    s.s_idx <- -1
  end

let slot_arm s ~delay =
  if delay < 0 then invalid_arg "Engine.slot_arm: negative delay";
  let t = s.s_owner in
  if s.s_idx >= 0 then cancel_slot t s.s_idx;
  let at = t.clock + delay in
  s.s_idx <- enqueue t ~at s.s_fire 0;
  s.s_expiry <- at

let slot_armed s = s.s_idx >= 0
let slot_expiry s = s.s_expiry

(* ---- firing ---- *)

(* The one corpse-skipping path: drop stale entries off the head of the
   heap (keeping the [dead] counter exact). True when a live head
   remains at index 0. *)
let rec skip_corpses t =
  if t.hp_len = 0 then false
  else if t.hp_gen.(0) = t.ar_gen.(t.hp_slot.(0)) then true
  else begin
    heap_pop_root t;
    t.dead <- t.dead - 1;
    skip_corpses t
  end

let fire_head t =
  let time = t.hp_time.(0) in
  let idx = t.hp_slot.(0) in
  heap_pop_root t;
  t.clock <- time;
  let fn = t.ar_fn.(idx) in
  let arg = t.ar_arg.(idx) in
  (* Free before calling: the event is no longer pending during its own
     callback (so a handle or slot can be re-armed from inside it). *)
  release_slot t idx;
  t.pending <- t.pending - 1;
  fn arg

let next_due t = if skip_corpses t then Some t.hp_time.(0) else None

let step t =
  if not (skip_corpses t) then false
  else begin
    fire_head t;
    true
  end

let drain_batch t =
  if not (skip_corpses t) then 0
  else begin
    let tick = t.hp_time.(0) in
    let fired = ref 0 in
    let continue = ref true in
    while !continue do
      if (not t.stopping) && skip_corpses t && t.hp_time.(0) = tick then begin
        fire_head t;
        incr fired
      end
      else continue := false
    done;
    !fired
  end

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let fired = ref 0 in
  let budget_ok () = match max_events with None -> true | Some m -> !fired < m in
  let rec loop () =
    if t.stopping || not (budget_ok ()) then ()
    else if skip_corpses t then begin
      match until with
      | Some horizon when t.hp_time.(0) > horizon -> ()
      | Some _ | None ->
          fire_head t;
          incr fired;
          loop ()
    end
  in
  loop ();
  match until with
  | Some horizon when (not t.stopping) && budget_ok () -> t.clock <- max t.clock horizon
  | Some _ | None -> ()
