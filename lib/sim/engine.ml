exception Stopped

type event = {
  time : int;
  action : unit -> unit;
  mutable live : bool;
  owner : t;  (* back-pointer so [cancel] can keep the owner's counters exact *)
}

and t = {
  mutable clock : int;
  queue : event Ba_util.Heap.t;
  rng : Ba_util.Rng.t;
  mutable pending : int;  (* live events currently in the queue *)
  mutable dead : int;  (* cancelled events still occupying queue slots *)
  mutable stopping : bool;
}

type handle = event

(* Compact when corpses outnumber live events: a sender that cancels one
   timer per acknowledgment would otherwise grow the heap without bound
   (every pop then pays log of a heap dominated by dead entries). The
   floor keeps tiny heaps from re-heapifying on every other cancel. *)
let compaction_floor = 32

let create ?(seed = 1) () =
  {
    clock = 0;
    queue = Ba_util.Heap.create ~cmp:(fun a b -> compare a.time b.time) ();
    rng = Ba_util.Rng.create seed;
    pending = 0;
    dead = 0;
    stopping = false;
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let event = { time = at; action; live = true; owner = t } in
  Ba_util.Heap.push t.queue event;
  t.pending <- t.pending + 1;
  event

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + delay) action

let maybe_compact t =
  if t.dead > t.pending && t.dead > compaction_floor then begin
    Ba_util.Heap.filter_in_place t.queue (fun e -> e.live);
    t.dead <- 0
  end

(* Cancellation is lazy: the event stays in the heap, marked dead, and is
   skipped when popped — except that once dead entries outnumber live
   ones the whole heap is rebuilt from the survivors. *)
let cancel h =
  if h.live then begin
    h.live <- false;
    let t = h.owner in
    t.pending <- t.pending - 1;
    t.dead <- t.dead + 1;
    maybe_compact t
  end

let is_pending h = h.live

let pending_events t = t.pending

let queue_length t = Ba_util.Heap.length t.queue

(* The one corpse-skipping path: drop cancelled entries off the head of
   the heap (keeping the [dead] counter exact) and return the live head,
   still in the queue. [next_live] pops it; [run] peeks it to compare
   against the horizon before committing. *)
let rec live_head t =
  match Ba_util.Heap.peek t.queue with
  | Some e when not e.live ->
      ignore (Ba_util.Heap.pop t.queue);
      t.dead <- t.dead - 1;
      live_head t
  | head -> head

let next_live t =
  match live_head t with
  | None -> None
  | Some _ -> Ba_util.Heap.pop t.queue

let step t =
  match next_live t with
  | None -> false
  | Some e ->
      t.clock <- e.time;
      e.live <- false;
      t.pending <- t.pending - 1;
      e.action ();
      true

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let fired = ref 0 in
  let budget_ok () = match max_events with None -> true | Some m -> !fired < m in
  let rec loop () =
    if t.stopping || not (budget_ok ()) then ()
    else begin
      match live_head t with
      | None -> ()
      | Some e -> begin
          match until with
          | Some horizon when e.time > horizon -> ()
          | Some _ | None ->
              if step t then begin
                incr fired;
                loop ()
              end
        end
    end
  in
  loop ();
  match until with
  | Some horizon when not t.stopping && budget_ok () -> t.clock <- max t.clock horizon
  | Some _ | None -> ()
