(** Common vocabulary for the formal protocol specifications.

    Each spec module turns one of the paper's guarded-action programs into
    a transition system the model checker can explore: an initial state
    and, for every state, the list of enabled transitions (including every
    nondeterministic choice of which in-transit message to receive or
    lose). *)

type kind =
  | Protocol  (** one of the paper's actions 0–5 / 2′ *)
  | Loss  (** environment drops an in-transit message *)
  | Crash
      (** environment crashes and restarts an endpoint, wiping its
          volatile state. Like [Loss], excluded from the progress
          measure and from the liveness pass's forward edges — progress
          is only demanded of fault-free suffixes. *)

type 'state transition = { label : string; kind : kind; target : 'state }

module type SPEC = sig
  type state

  val name : string

  val initial : state

  val transitions : state -> state transition list
  (** All enabled transitions from [state]. Deterministic order (the
      explorer's reports depend on it). *)

  val check : state -> string option
  (** [None] when every invariant holds; [Some msg] names the violated
      assertion. *)

  val terminal : state -> bool
  (** Transfer complete: the sender knows every message was accepted. *)

  val measure : state -> int
  (** The paper's progress measure [na + ns + nr + vr] (or the variant's
      analogue); must be non-decreasing along protocol transitions. *)

  val pp : Format.formatter -> state -> unit
end

type spec = (module SPEC)
