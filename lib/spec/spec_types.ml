type kind = Protocol | Loss | Crash

type 'state transition = { label : string; kind : kind; target : 'state }

module type SPEC = sig
  type state

  val name : string
  val initial : state
  val transitions : state -> state transition list
  val check : state -> string option
  val terminal : state -> bool
  val measure : state -> int
  val pp : Format.formatter -> state -> unit
end

type spec = (module SPEC)
