open Spec_types
module M = Ba_channel.Multiset

module Make (P : sig
  val w : int
  val n : int
  val limit : int
  val epochs : bool
  val max_crashes : int
  val victims : [ `Sender | `Receiver | `Both ]
end) =
struct
  let () =
    if P.w <= 0 then invalid_arg "Ba_spec_crash: w must be positive";
    if P.n <= 0 || P.n mod P.w <> 0 then
      invalid_arg "Ba_spec_crash: n must be a positive multiple of w";
    if P.limit < 0 then invalid_arg "Ba_spec_crash: limit must be >= 0";
    if P.max_crashes < 0 then invalid_arg "Ba_spec_crash: max_crashes must be >= 0"

  (* Sender-to-receiver traffic: data frames plus the handshake's REQ
     ("where are we?") and FIN ("position adopted"). Receiver-to-sender:
     block acks plus POS ("resume at [pos]"). Every frame carries its
     issuer's incarnation epoch; POS carries the receiver's durable
     delivered count as an absolute (modulus-exempt) position, exactly as
     the implementation's resync frames do. *)
  type dmsg = Data of { wv : int; gv : int; ep : int } | Req of { ep : int } | Fin of { ep : int }
  type amsg = Ack of { wi : int; wj : int; gi : int; gj : int; ep : int } | Pos of { ep : int; pos : int }

  type state = {
    (* Bounded sender state (all volatile but the epoch). *)
    bna : int;
    bns : int;
    backd : Iset.t;
    ep_s : int;  (** sender incarnation; stable storage *)
    sync_s : bool;  (** restarted: REQ sent, POS pending; window frozen *)
    (* Bounded receiver state (volatile but the epoch and, via the
       application, the delivered count). *)
    bnr : int;
    bvr : int;
    brcvd : Iset.t;
    ep_r : int;  (** receiver incarnation; stable storage *)
    sync_r : bool;  (** restarted: POS sent, FIN (or fresh data) pending *)
    (* Channels. *)
    csr : dmsg M.t;
    crs : amsg M.t;
    (* Ghost state: unbounded mirrors, never read by guards. *)
    g_na : int;
    g_ns : int;
    g_ackd : Iset.t;
    g_nr : int;
    g_vr : int;
    g_rcvd : Iset.t;
    (* Application truth, which no crash can rewrite: [g_issued] counts
       payloads the user program ever submitted (the durable outbox);
       [g_del] is what it has seen delivered; [dup] records the first
       value handed over twice. *)
    g_issued : int;
    g_del : Iset.t;
    dup : int option;
    crashes : int;
  }

  let name =
    Printf.sprintf "blockack-crash-%s(w=%d,n=%d,limit=%d,crashes<=%d)"
      (if P.epochs then "epochs" else "naive")
      P.w P.n P.limit P.max_crashes

  let initial =
    {
      bna = 0;
      bns = 0;
      backd = Iset.empty;
      ep_s = 0;
      sync_s = false;
      bnr = 0;
      bvr = 0;
      brcvd = Iset.empty;
      ep_r = 0;
      sync_r = false;
      csr = M.empty;
      crs = M.empty;
      g_na = 0;
      g_ns = 0;
      g_ackd = Iset.empty;
      g_nr = 0;
      g_vr = 0;
      g_rcvd = Iset.empty;
      g_issued = 0;
      g_del = Iset.empty;
      dup = None;
      crashes = 0;
    }

  let wrap m = Ba_util.Modseq.wrap ~n:P.n m
  let succ m = Ba_util.Modseq.succ ~n:P.n m
  let dist a b = Ba_util.Modseq.distance ~n:P.n a b
  let slot wire = wire mod P.w
  let iset_below limit s = Iset.of_list (List.filter (fun m -> m < limit) (Iset.elements s))

  (* ---------------------------------------------------------------- *)
  (* The paper's actions, epoch-stamped. *)

  let send_new s =
    if (not s.sync_s) && dist s.bna s.bns < P.w && s.g_ns < P.limit then
      [ { label = Printf.sprintf "send(%d|w%d,e%d)" s.g_ns s.bns s.ep_s;
          kind = Protocol;
          target =
            { s with
              csr = M.add (Data { wv = s.bns; gv = s.g_ns; ep = s.ep_s }) s.csr;
              bns = succ s.bns;
              g_ns = s.g_ns + 1;
              g_issued = max s.g_issued (s.g_ns + 1)
            } } ]
    else []

  let timeout s =
    if
      (not s.sync_s) && s.bna <> s.bns && M.is_empty s.csr && M.is_empty s.crs && s.bnr = s.bvr
      && not (Iset.mem (slot s.bnr) s.brcvd)
    then
      [ { label = Printf.sprintf "timeout->resend(w%d,e%d)" s.bna s.ep_s;
          kind = Protocol;
          target = { s with csr = M.add (Data { wv = s.bna; gv = s.g_na; ep = s.ep_s }) s.csr } } ]
    else []

  (* Receiver-side epoch adoption: the sender restarted into a later
     incarnation, so the out-of-order buffer holds frames of a dead one —
     discard it (its contents will be resent from the position we
     announce) and track the new epoch. Durable state (vr, the delivered
     count) is untouched: delivery cannot be revoked. *)
  let r_adopt s ep =
    { s with ep_r = ep; brcvd = Iset.empty; g_rcvd = iset_below s.g_vr s.g_rcvd }

  (* POS doubles as a cumulative acknowledgment of everything delivered,
     so the receiver's ack debt [nr, vr) is settled by sending it. *)
  let send_pos s =
    { s with
      bnr = s.bvr;
      g_nr = s.g_vr;
      crs = M.add (Pos { ep = s.ep_r; pos = s.g_vr }) s.crs
    }

  (* Sender-side resync: adopt the receiver's position as the whole
     window — everything below [pos] was delivered (POS says so), nothing
     at or above it is outstanding. The durable application outbox
     replays the tail through send_new. *)
  let s_resync s ~ep ~pos =
    { s with
      ep_s = ep;
      sync_s = false;
      bna = wrap pos;
      bns = wrap pos;
      backd = Iset.empty;
      g_na = pos;
      g_ns = pos;
      g_ackd = Iset.add_range ~lo:0 ~hi:(pos - 1) s.g_ackd
    }

  let recv_data s =
    List.concat_map
      (fun (m : dmsg) ->
        let csr = M.remove m s.csr in
        match m with
        | Req { ep } ->
            if not P.epochs then []
            else if ep < s.ep_r then
              [ { label = Printf.sprintf "drop_stale_req(e%d)" ep;
                  kind = Protocol;
                  target = { s with csr } } ]
            else
              let s' = if ep > s.ep_r then r_adopt s ep else s in
              [ { label = Printf.sprintf "recv_req(e%d)->pos(%d)" ep s'.g_vr;
                  kind = Protocol;
                  target = send_pos { s' with csr } } ]
        | Fin { ep } ->
            if not P.epochs then []
            else if ep < s.ep_r then
              [ { label = Printf.sprintf "drop_stale_fin(e%d)" ep;
                  kind = Protocol;
                  target = { s with csr } } ]
            else
              let s' = if ep > s.ep_r then r_adopt s ep else s in
              [ { label = Printf.sprintf "recv_fin(e%d)" ep;
                  kind = Protocol;
                  target = { s' with csr; sync_r = false } } ]
        | Data { wv; gv; ep } ->
            if P.epochs && ep < s.ep_r then
              [ { label = Printf.sprintf "drop_stale_data(%d,e%d)" gv ep;
                  kind = Protocol;
                  target = { s with csr } } ]
            else begin
              (* Higher epoch: adopt first. Same epoch: fresh data is an
                 implicit FIN. Either way the frame then decodes against
                 the (possibly just cleared) receive window. *)
              let s = if P.epochs && ep > s.ep_r then r_adopt s ep else s in
              let s = { s with csr; sync_r = false } in
              let target =
                if dist s.bnr wv < P.w then
                  { s with brcvd = Iset.add (slot wv) s.brcvd; g_rcvd = Iset.add gv s.g_rcvd }
                else
                  { s with
                    crs = M.add (Ack { wi = wv; wj = wv; gi = gv; gj = gv; ep = s.ep_r }) s.crs
                  }
              in
              [ { label = Printf.sprintf "recv_data(w%d,e%d)" wv ep; kind = Protocol; target } ]
            end)
      (M.distinct s.csr)

  let advance_vr s =
    if Iset.mem (slot s.bvr) s.brcvd then
      [ { label = Printf.sprintf "deliver(%d|w%d)" s.g_vr s.bvr;
          kind = Protocol;
          target =
            { s with
              brcvd = Iset.remove (slot s.bvr) s.brcvd;
              bvr = succ s.bvr;
              dup = (if s.dup = None && Iset.mem s.g_vr s.g_del then Some s.g_vr else s.dup);
              g_del = Iset.add s.g_vr s.g_del;
              g_vr = s.g_vr + 1
            } } ]
    else []

  let send_ack s =
    if s.bnr <> s.bvr then
      [ { label = Printf.sprintf "send_ack(w%d,w%d,e%d)" s.bnr (wrap (s.bvr - 1)) s.ep_r;
          kind = Protocol;
          target =
            { s with
              crs =
                M.add
                  (Ack { wi = s.bnr; wj = wrap (s.bvr - 1); gi = s.g_nr; gj = s.g_vr - 1; ep = s.ep_r })
                  s.crs;
              bnr = s.bvr;
              g_nr = s.g_vr
            } } ]
    else []

  let recv_ack s =
    List.concat_map
      (fun (m : amsg) ->
        let crs = M.remove m s.crs in
        match m with
        | Pos { ep; pos } ->
            if not P.epochs then []
            else if ep < s.ep_s then
              [ { label = Printf.sprintf "drop_stale_pos(e%d)" ep;
                  kind = Protocol;
                  target = { s with crs } } ]
            else if ep > s.ep_s || s.sync_s then
              (* Adopt the position (receiver is the authority) and
                 confirm with FIN. *)
              let s' = s_resync { s with crs } ~ep ~pos in
              [ { label = Printf.sprintf "recv_pos(e%d,%d)->resync" ep pos;
                  kind = Protocol;
                  target = { s' with csr = M.add (Fin { ep = s'.ep_s }) s'.csr } } ]
            else
              (* Same epoch, already synced: our FIN was lost. Re-confirm
                 without touching the window. *)
              [ { label = Printf.sprintf "recv_pos(e%d,%d)->refin" ep pos;
                  kind = Protocol;
                  target = { s with crs; csr = M.add (Fin { ep = s.ep_s }) s.csr } } ]
        | Ack a ->
            if P.epochs && (a.ep <> s.ep_s || s.sync_s) then
              [ { label = Printf.sprintf "drop_ack(w%d,w%d,e%d)" a.wi a.wj a.ep;
                  kind = Protocol;
                  target = { s with crs } } ]
            else begin
              let covered = dist a.wi a.wj + 1 in
              let outstanding = dist s.bna s.bns in
              let rec mark k backd =
                if k >= covered then backd
                else begin
                  let y = wrap (a.wi + k) in
                  let backd =
                    if dist s.bna y < outstanding then Iset.add (slot y) backd else backd
                  in
                  mark (k + 1) backd
                end
              in
              let backd = mark 0 s.backd in
              let rec advance bna backd g_na =
                if Iset.mem (slot bna) backd then
                  advance (succ bna) (Iset.remove (slot bna) backd) (g_na + 1)
                else (bna, backd, g_na)
              in
              let bna, backd, g_na = advance s.bna backd s.g_na in
              let g_ackd = Iset.add_range ~lo:a.gi ~hi:a.gj s.g_ackd in
              [ { label = Printf.sprintf "recv_ack(w%d,w%d,e%d)" a.wi a.wj a.ep;
                  kind = Protocol;
                  target = { s with crs; backd; bna; g_na; g_ackd } } ]
            end)
      (M.distinct s.crs)

  (* ---------------------------------------------------------------- *)
  (* Handshake retries: like action 2, guarded on the environment's
     knowledge that nothing is in transit (the timer idealization). *)

  let resend_req s =
    if P.epochs && s.sync_s && M.is_empty s.csr && M.is_empty s.crs then
      [ { label = Printf.sprintf "resync_timeout->req(e%d)" s.ep_s;
          kind = Protocol;
          target = { s with csr = M.add (Req { ep = s.ep_s }) s.csr } } ]
    else []

  let resend_pos s =
    if P.epochs && s.sync_r && M.is_empty s.csr && M.is_empty s.crs then
      [ { label = Printf.sprintf "resync_timeout->pos(e%d,%d)" s.ep_r s.g_vr;
          kind = Protocol;
          target = send_pos s } ]
    else []

  (* ---------------------------------------------------------------- *)
  (* Environment faults. A crash and its restart are collapsed into one
     atomic transition: the down window only loses in-transit frames,
     which the Loss transitions already model. *)

  let crash_sender s =
    if s.crashes >= P.max_crashes || P.victims = `Receiver then []
    else
      let base =
        { s with
          bna = 0;
          bns = 0;
          backd = Iset.empty;
          g_na = 0;
          g_ns = 0;
          crashes = s.crashes + 1
        }
      in
      let target =
        if P.epochs then
          let ep = s.ep_s + 1 in
          { base with ep_s = ep; sync_s = true; csr = M.add (Req { ep }) base.csr }
        else base
      in
      [ { label = Printf.sprintf "crash_sender(e%d)" target.ep_s; kind = Crash; target } ]

  let crash_receiver s =
    if s.crashes >= P.max_crashes || P.victims = `Sender then []
    else if P.epochs then
      (* Durable: epoch and the delivered count (g_vr). The unacked run
         [nr, vr) and the out-of-order buffer are volatile; POS re-acks
         the former. *)
      let ep = s.ep_r + 1 in
      let base =
        r_adopt { s with sync_r = true; crashes = s.crashes + 1; bnr = s.bvr; g_nr = s.g_vr } ep
      in
      [ { label = Printf.sprintf "crash_receiver(e%d)" ep; kind = Crash; target = send_pos base } ]
    else
      [ { label = "crash_receiver";
          kind = Crash;
          target =
            { s with
              bnr = 0;
              bvr = 0;
              brcvd = Iset.empty;
              g_nr = 0;
              g_vr = 0;
              g_rcvd = Iset.empty;
              crashes = s.crashes + 1
            } } ]

  let lose s =
    List.map
      (fun (m : dmsg) ->
        let label =
          match m with
          | Data { gv; _ } -> Printf.sprintf "lose_data(%d)" gv
          | Req { ep } -> Printf.sprintf "lose_req(e%d)" ep
          | Fin { ep } -> Printf.sprintf "lose_fin(e%d)" ep
        in
        { label; kind = Loss; target = { s with csr = M.remove m s.csr } })
      (M.distinct s.csr)
    @ List.map
        (fun (m : amsg) ->
          let label =
            match m with
            | Ack { gi; gj; _ } -> Printf.sprintf "lose_ack(%d,%d)" gi gj
            | Pos { ep; pos } -> Printf.sprintf "lose_pos(e%d,%d)" ep pos
          in
          { label; kind = Loss; target = { s with crs = M.remove m s.crs } })
        (M.distinct s.crs)

  let transitions s =
    send_new s @ recv_ack s @ timeout s @ recv_data s @ advance_vr s @ send_ack s @ resend_req s
    @ resend_pos s @ crash_sender s @ crash_receiver s @ lose s

  (* ---------------------------------------------------------------- *)
  (* Checks. At-most-once delivery is asserted in {e every} reachable
     state — it is the property crashes threaten. The paper's assertions
     6–8 are a closure property: they hold in crash-free runs and, with
     epochs, in every {e stabilized} state (epochs agree, no handshake
     pending, no stale frame in transit) — the self-stabilization claim.
     In between (and always, in naive mode, once a crash has happened)
     they are legitimately violated; that violation is the bug the
     handshake exists to contain. *)

  let fail fmt = Format.kasprintf (fun m -> Some m) fmt

  let slots_of predicate lo hi =
    let rec go m acc =
      if m >= hi then acc else go (m + 1) (if predicate m then Iset.add (m mod P.w) acc else acc)
    in
    go (max 0 lo) Iset.empty

  let refinement s =
    if s.bna <> wrap s.g_na then fail "refinement: bna=%d <> na mod n=%d" s.bna (wrap s.g_na)
    else if s.bns <> wrap s.g_ns then fail "refinement: bns=%d <> ns mod n" s.bns
    else if s.bnr <> wrap s.g_nr then fail "refinement: bnr=%d <> nr mod n" s.bnr
    else if s.bvr <> wrap s.g_vr then fail "refinement: bvr=%d <> vr mod n" s.bvr
    else begin
      let expected_ackd = slots_of (fun m -> Iset.mem m s.g_ackd && m >= s.g_na) s.g_na s.g_ns in
      if s.backd <> expected_ackd then
        fail "refinement: ackd slots %a <> ghost %a" Iset.pp s.backd Iset.pp expected_ackd
      else begin
        let expected_rcvd =
          slots_of (fun m -> Iset.mem m s.g_rcvd && m >= s.g_vr) s.g_vr (s.g_nr + P.w)
        in
        if s.brcvd <> expected_rcvd then
          fail "refinement: rcvd slots %a <> ghost %a" Iset.pp s.brcvd Iset.pp expected_rcvd
        else None
      end
    end

  let reconstruction s =
    match
      M.distinct s.csr
      |> List.find_opt (function Data { wv; gv; _ } -> wv <> wrap gv | Req _ | Fin _ -> false)
    with
    | Some (Data { wv; gv; _ }) -> fail "wire: data carries w%d but truth %d" wv gv
    | Some _ | None -> (
        match
          M.distinct s.crs
          |> List.find_opt (function
               | Ack { wi; wj; gi; gj; _ } -> wi <> wrap gi || wj <> wrap gj
               | Pos _ -> false)
        with
        | Some (Ack { wi; wj; gi; gj; _ }) ->
            fail "wire: ack carries (w%d,w%d) but truth (%d,%d)" wi wj gi gj
        | Some _ | None -> None)

  let stabilized s =
    (not s.sync_s) && (not s.sync_r) && s.ep_s = s.ep_r
    && List.for_all
         (function Data { ep; _ } | Req { ep } | Fin { ep } -> ep = s.ep_s)
         (M.distinct s.csr)
    && List.for_all (function Ack { ep; _ } | Pos { ep; _ } -> ep = s.ep_s) (M.distinct s.crs)

  let ghost_view s =
    {
      Invariant.w = P.w;
      na = s.g_na;
      ns = s.g_ns;
      nr = s.g_nr;
      vr = s.g_vr;
      ackd = (fun m -> Iset.mem m s.g_ackd);
      rcvd = (fun m -> Iset.mem m s.g_rcvd);
      sr_count =
        (fun m ->
          M.filter_count (function Data { gv; _ } -> gv = m | Req _ | Fin _ -> false) s.csr);
      rs_count =
        (fun m ->
          M.filter_count
            (function Ack { gi; gj; _ } -> gi <= m && m <= gj | Pos _ -> false)
            s.crs);
      horizon = P.limit + P.w + 2;
    }

  (* The bounded/ghost mirror is meaningful wherever the protocol is
     honest about incarnations: always with epochs, only pre-crash
     without (the naive restart knowingly corrupts the correspondence —
     the application-level symptoms below are its indictment). *)
  let mirror_ok s = P.epochs || s.crashes = 0

  let check s =
    match s.dup with
    | Some v -> fail "duplicate delivery: value %d handed to the application twice" v
    | None ->
        if Iset.exists (fun m -> m >= s.g_issued) s.g_del then
          fail "phantom delivery: a value the application never submitted was delivered"
        else (
          match (if mirror_ok s then refinement s else None) with
          | Some _ as e -> e
          | None -> (
              match (if mirror_ok s then reconstruction s else None) with
              | Some _ as e -> e
              | None ->
                  let closure_holds = if P.epochs then stabilized s else s.crashes = 0 in
                  if closure_holds then Invariant.check (ghost_view s) else None))

  let terminal s = s.g_na >= P.limit

  (* The paper's measure na+ns+nr+vr is rewound by resync, so this spec
     uses a crash-robust one: delivered values are never forgotten and
     epochs never decrease along protocol actions. *)
  let measure s = Iset.cardinal s.g_del + s.ep_s + s.ep_r

  let pp ppf s =
    Format.fprintf ppf
      "S{bna=%d bns=%d ackd=%a e%d%s | na=%d ns=%d} R{bnr=%d bvr=%d rcvd=%a e%d%s | nr=%d vr=%d} \
       del=%a crashes=%d CSR=%a CRS=%a"
      s.bna s.bns Iset.pp s.backd s.ep_s
      (if s.sync_s then "!" else "")
      s.g_na s.g_ns s.bnr s.bvr Iset.pp s.brcvd s.ep_r
      (if s.sync_r then "!" else "")
      s.g_nr s.g_vr Iset.pp s.g_del s.crashes
      (M.pp (fun ppf -> function
         | Data { wv; gv; ep } -> Format.fprintf ppf "%d|w%d|e%d" gv wv ep
         | Req { ep } -> Format.fprintf ppf "req|e%d" ep
         | Fin { ep } -> Format.fprintf ppf "fin|e%d" ep))
      s.csr
      (M.pp (fun ppf -> function
         | Ack { gi; gj; wi; wj; ep } -> Format.fprintf ppf "(%d,%d)|w(%d,%d)|e%d" gi gj wi wj ep
         | Pos { ep; pos } -> Format.fprintf ppf "pos(%d)|e%d" pos ep))
      s.crs
end

let default ~w ?n ~limit ~epochs ?(max_crashes = 1) ?(victims = `Both) () =
  let n = match n with Some n -> n | None -> 2 * w in
  (module Make (struct
    let w = w
    let n = n
    let limit = limit
    let epochs = epochs
    let max_crashes = max_crashes
    let victims = victims
  end) : Spec_types.SPEC)
