open Spec_types
module M = Ba_channel.Multiset

module Make (P : sig
  val w : int
  val limit : int
  val naive : bool
end) =
struct
  let params = { Ba_kernel.w = P.w; limit = P.limit }
  let () = Ba_kernel.validate params

  type state = Ba_kernel.state

  let name =
    Printf.sprintf "blockack-pressure(w=%d,limit=%d%s)" P.w P.limit
      (if P.naive then ",naive" else "")

  let initial = Ba_kernel.initial

  (* Action 2' (Section IV): per-message timers, as in the timeout spec —
     the fair-retransmission engine that has to absorb pressure drops. *)
  let timeout_enabled (s : state) i =
    i >= s.na && i < s.ns
    && (not (Iset.mem i s.ackd))
    && Ba_kernel.sr_count s i = 0
    && (i < s.nr || not (Iset.mem i s.rcvd))
    && Ba_kernel.rs_count s i = 0

  let timeout (s : state) =
    let rec each i acc =
      if i >= s.ns then List.rev acc
      else begin
        let acc =
          if timeout_enabled s i then
            { label = Printf.sprintf "timeout(%d)->resend(%d)" i i;
              kind = Protocol;
              target = { s with csr = Ba_channel.Multiset.add i s.csr } }
            :: acc
          else acc
        in
        each (i + 1) acc
      end
    in
    each s.na []

  (* Buffer pressure, sound variant: the receiver may nondeterministically
     evict ANY buffered out-of-order slot — every slot strictly above the
     contiguous frontier [vr] is fair game, which over-approximates both
     policies (drop-new refusal at arrival is the kernel's existing
     [lose_data]; drop-furthest eviction is this action). The run
     [nr, vr) is excluded: those receptions are committed to the next
     block acknowledgment, and evicting one would break the ack's
     contiguity claim. The victim was never acknowledged, so the drop is
     [Loss]-kind — behaviorally a channel loss that action 2' repairs —
     and the explorer must find assertions 6–8 intact and progress
     (loss-free completion) reachable from every state. *)
  let pressure_drop (s : state) =
    List.filter_map
      (fun v ->
        if v > s.vr then
          Some
            { label = Printf.sprintf "pressure_drop(%d)" v;
              kind = Loss;
              target = { s with rcvd = Iset.remove v s.rcvd } }
        else None)
      (Iset.elements s.rcvd)

  (* Naive variant: acknowledge first, then discover the buffer is full
     and discard the payload. The singleton ack for the never-buffered
     slot enters the channel as a protocol step — and assertion 8's
     in-transit-ack clause ([rs_count m = 0 ∨ (m < nr ∧ ¬ackd m)])
     catches it mechanically on the very next state. *)
  let ack_before_buffer (s : state) =
    List.filter_map
      (fun v ->
        if v > s.vr then
          Some
            { label = Printf.sprintf "ack_drop(%d)" v;
              kind = Protocol;
              target = { s with csr = M.remove v s.csr; crs = M.add (v, v) s.crs } }
        else None)
      (M.distinct s.csr)

  let transitions s =
    Ba_kernel.send_new params s
    @ Ba_kernel.recv_ack s
    @ timeout s
    @ Ba_kernel.recv_data s
    @ Ba_kernel.advance_vr s
    @ Ba_kernel.send_ack s
    @ Ba_kernel.lose s
    @ pressure_drop s
    @ (if P.naive then ack_before_buffer s else [])

  let check s = Invariant.check (Ba_kernel.view params s)
  let terminal (s : state) = s.na >= P.limit
  let measure = Ba_kernel.measure
  let pp = Ba_kernel.pp
end

let default ~w ~limit ~naive =
  (module Make (struct
    let w = w
    let limit = limit
    let naive = naive
  end) : Spec_types.SPEC)
