(** Crash–restart model of the bounded block-acknowledgment protocol.

    Extends the bounded spec with an environment that can atomically
    crash-and-restart either endpoint, wiping its volatile state. Stable
    storage keeps only each endpoint's incarnation epoch and — via the
    application itself — the receiver's delivered count and the sender's
    outbox of issued payloads.

    Two modes:

    - [epochs = true]: frames carry incarnation epochs, stale-epoch
      frames are rejected, and a restarted endpoint rejoins through the
      REQ/POS/FIN resync handshake. The explorer proves at-most-once
      delivery in {e every} reachable state, the paper's assertions 6–8
      in every stabilized state (closure), and loss-free progress from
      every state (convergence) — the self-stabilization pair.
    - [epochs = false]: the naive restart returns zeroed into the same
      sequence space. The explorer mechanically finds the
      duplicate-delivery counterexample: stale in-flight copies of
      already-delivered data decode into the fresh acceptance window.

    A crash and its restart are collapsed into one atomic [Crash]-kind
    transition — the down window only loses frames, which the [Loss]
    transitions already model. *)

module Make (_ : sig
  val w : int
  val n : int
  val limit : int
  val epochs : bool
  val max_crashes : int

  val victims : [ `Sender | `Receiver | `Both ]
  (** Which endpoint the environment may crash. Restricting the victim
      picks which of the naive mode's two symptoms the explorer
      exhibits: a crashed {e receiver} re-accepts stale copies of
      already-delivered data (duplicate delivery); a crashed {e sender}
      restarts its numbering inside the old incarnation's sequence
      space, so the receiver hands the application a payload it never
      submitted at that position (phantom delivery). *)
end) : Spec_types.SPEC

val default :
  w:int ->
  ?n:int ->
  limit:int ->
  epochs:bool ->
  ?max_crashes:int ->
  ?victims:[ `Sender | `Receiver | `Both ] ->
  unit ->
  Spec_types.spec
(** [n] defaults to [2w] (the paper's reconstruction bound);
    [max_crashes] defaults to 1; [victims] to [`Both]. *)
