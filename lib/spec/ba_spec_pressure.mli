(** Buffer-pressure model of the block-acknowledgment protocol.

    Extends the per-message-timer spec (Section IV) with a receiver that
    may nondeterministically drop any buffered {e out-of-order} frame for
    "buffer full" — the worst case over every finite reassembly budget
    and both of Jain's drop policies. The contiguous run [nr, vr) is not
    evictable: those receptions are committed to the next block
    acknowledgment.

    Two modes:

    - [naive = false] (sound): a pressure drop removes the frame before
      anything was acknowledged, so it is a [Loss]-kind transition —
      behaviorally identical to a channel loss, repaired by the sender's
      per-message timer. The explorer proves assertions 6–8 in every
      reachable state and loss-free progress from every state: bounded
      buffers cost retransmissions, never correctness.
    - [naive = true]: adds the ack-before-buffer bug — the receiver
      acknowledges an out-of-order frame and {e then} discards it. The
      explorer mechanically finds the counterexample: the singleton ack
      for the never-buffered slot violates assertion 8's in-transit-ack
      clause within a handful of steps. *)

module Make (_ : sig
  val w : int
  val limit : int
  val naive : bool
end) : Spec_types.SPEC

val default : w:int -> limit:int -> naive:bool -> Spec_types.spec
