type entry = {
  name : string;
  aliases : string list;
  summary : string;
  robust : bool;
  protocol : Ba_proto.Protocol.t;
  default_modulus : window:int -> int option;
}

let unbounded ~window:_ = None
let twice_window ~window = Some (2 * window)

let all =
  [
    {
      name = "blockack-simple";
      aliases = [];
      summary = "block acknowledgment, single timeout (paper, Section II)";
      robust = false;
      protocol = Blockack.Protocols.simple;
      default_modulus = twice_window;
    };
    {
      name = "blockack-multi";
      aliases = [ "blockack" ];
      summary = "block acknowledgment, per-message timers (paper, Section IV)";
      robust = true;
      protocol = Blockack.Protocols.multi;
      default_modulus = twice_window;
    };
    {
      name = "blockack-reuse";
      aliases = [];
      summary = "block acknowledgment with slot reuse, lead 2w (paper, Section VI)";
      robust = false;
      protocol = Blockack.Protocols.reuse ();
      (* The flight band is lead = 2w wide, so reconstruction needs
         n = 2*lead = 4w (receiver window is widened to match). *)
      default_modulus = (fun ~window -> Some (4 * window));
    };
    {
      name = "go-back-n";
      aliases = [ "gbn" ];
      summary = "cumulative-ack go-back-N (classic baseline; unsafe when bounded + reordered)";
      robust = false;
      protocol = Ba_baselines.Go_back_n.protocol;
      (* Unbounded by default: the textbook w+1 modulus is exactly the
         unsafe configuration the chaos campaign demonstrates against. *)
      default_modulus = unbounded;
    };
    {
      name = "selective-repeat";
      aliases = [ "sr" ];
      summary = "per-message-ack selective repeat (robust baseline)";
      robust = true;
      protocol = Ba_baselines.Selective_repeat.protocol;
      default_modulus = twice_window;
    };
    {
      name = "stenning";
      aliases = [];
      summary = "Stenning timer-quarantined slot reuse (introduction's contrast)";
      robust = false;
      protocol = Ba_baselines.Stenning.protocol;
      default_modulus = twice_window;
    };
    {
      name = "alternating-bit";
      aliases = [ "abp" ];
      summary = "alternating-bit stop-and-wait (window 1)";
      robust = false;
      protocol = Ba_baselines.Alternating_bit.protocol;
      default_modulus = unbounded;
    };
  ]

let names = List.map (fun e -> e.name) all

let robust = List.filter (fun e -> e.robust) all

(* Single source of truth: the protocol module says whether it supports
   the crash-restart lifecycle (only the block-ack endpoints do). *)
let crash_tolerant e =
  let module P = (val e.protocol : Ba_proto.Protocol.S) in
  P.crash_tolerant

let find name =
  List.find_opt (fun e -> String.equal e.name name || List.mem name e.aliases) all

let parse name =
  match find name with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S (expected one of: %s)" name
           (String.concat ", " names))

let protocol name = Option.map (fun e -> e.protocol) (find name)

let config ?(window = 16) ?rto ?modulus ?ack_coalesce ?max_transit ?adaptive_rto ?stenning_gap
    ?dynamic_window ?resync_epochs ?rx_budget ?tx_budget ?drop_policy entry () =
  let wire_modulus =
    match modulus with Some m -> Some m | None -> entry.default_modulus ~window
  in
  Ba_proto.Proto_config.make ~window ?rto ?wire_modulus:(Option.map Option.some wire_modulus)
    ?ack_coalesce ?max_transit ?adaptive_rto ?stenning_gap ?dynamic_window ?resync_epochs
    ?rx_budget ?tx_budget ?drop_policy ()

let pp_list ppf () =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-18s %s%s@." e.name e.summary
        (match e.aliases with
        | [] -> ""
        | a -> Printf.sprintf " (alias: %s)" (String.concat ", " a)))
    all
