(** The single source of protocol names.

    Every CLI and experiment that maps a user-facing name to a
    {!Ba_proto.Protocol.t} resolves it here — [ba_sim], [ba_net],
    [ba_chaos] and the experiment tables all see the same spelling, the
    same aliases, and the same unknown-name error. *)

type entry = {
  name : string;  (** canonical CLI name *)
  aliases : string list;  (** accepted alternatives (e.g. ["blockack"]) *)
  summary : string;  (** one-line description for listings *)
  robust : bool;
      (** audited as robust by the chaos campaign: safe {e and} recovering
          under every {!Ba_verify.Chaos} fault class. [blockack-simple]
          is safe but recovers serially, so it is not in the audited
          set. *)
  protocol : Ba_proto.Protocol.t;
  default_modulus : window:int -> int option;
      (** the wire sequence-number modulus this protocol needs for a
          given window ([2w] for block acknowledgment per the paper's
          reconstruction bound, [4w] for slot reuse's doubled flight
          band, [None] = unbounded). *)
}

val all : entry list
(** Every registered protocol, in presentation order. *)

val names : string list
(** Canonical names of {!all}, same order. *)

val robust : entry list
(** The chaos-audited subset of {!all}. *)

val crash_tolerant : entry -> bool
(** Whether the entry's protocol supports the crash–restart lifecycle
    ({!Ba_proto.Protocol.S.crash_tolerant}); campaign runners skip the
    [crash] fault class for protocols that do not. *)

val find : string -> entry option
(** Resolve a canonical name or alias. *)

val parse : string -> (entry, string) result
(** Like {!find}, but the error is the canonical unknown-name message
    (listing every valid name) that all CLIs print. *)

val protocol : string -> Ba_proto.Protocol.t option

val config :
  ?window:int ->
  ?rto:int ->
  ?modulus:int ->
  ?ack_coalesce:int ->
  ?max_transit:int ->
  ?adaptive_rto:bool ->
  ?stenning_gap:int ->
  ?dynamic_window:bool ->
  ?resync_epochs:bool ->
  ?rx_budget:int ->
  ?tx_budget:int ->
  ?drop_policy:Ba_proto.Proto_config.drop_policy ->
  entry ->
  unit ->
  Ba_proto.Proto_config.t
(** A {!Ba_proto.Proto_config.t} tuned to the entry: [modulus] defaults
    to the protocol's {!type-entry.default_modulus} for the chosen
    [window] (default 16); everything else falls through to
    {!Ba_proto.Proto_config.make}. *)

val pp_list : Format.formatter -> unit -> unit
(** The [--list-protocols] table: one line per entry with summary and
    aliases. *)
