type table = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

module Harness = Ba_proto.Harness
module Config = Ba_proto.Proto_config
module Dist = Ba_channel.Dist
module Explorer = Ba_verify.Explorer
module Pool = Ba_parallel.Pool

let fmt = Ba_util.Table.fmt_float
let pct x = Printf.sprintf "%.0f%%" (100. *. x)

(* Every experiment below is a grid of independent simulations (each
   builds its own engine from its own seed), so each table farms its
   cells to a domain pool. Pool.map_chunks batches neighbouring cells
   into one queue entry each and collects in input order, making the
   rendered table identical at any [jobs]; [jobs = 1] (the default) runs
   inline with no domains spawned. *)
let pmap ~jobs f cells = Pool.map_chunks ~jobs f cells

(* Regroup a flattened row-major cell list back into rows of [n]. *)
let chunk n xs =
  let rows, last =
    List.fold_left
      (fun (rows, cur) x ->
        let cur = x :: cur in
        if List.length cur = n then (List.rev cur :: rows, []) else (rows, cur))
      ([], []) xs
  in
  List.rev (match last with [] -> rows | _ -> List.rev last :: rows)

(* Averaged harness runs over a seed list. *)
type avg = {
  goodput : float;
  ticks : float;
  acks_per_msg : float;
  ack_bytes_per_byte : float;
  retx_per_msg : float;
  reorder_frac : float;
  all_correct : bool;
}

let average ?(payload_size = 32) ?(jobs = 1) ~seeds ~messages ~config ~loss ~delay proto =
  (* The multi-seed replicate loop: one engine per seed, so replicates
     parallelise like any other grid. *)
  let runs =
    pmap ~jobs
      (fun seed ->
        Harness.run proto ~seed ~messages ~payload_size ~config ~data_loss:loss ~ack_loss:loss
          ~data_delay:delay ~ack_delay:delay ())
      seeds
  in
  let n = float_of_int (List.length runs) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0. runs /. n in
  {
    goodput = mean (fun r -> r.Harness.goodput);
    ticks = mean (fun r -> float_of_int r.Harness.ticks);
    acks_per_msg =
      mean (fun r -> float_of_int r.Harness.acks_sent /. float_of_int (max 1 r.Harness.delivered));
    ack_bytes_per_byte = mean (fun r -> r.Harness.ack_overhead);
    retx_per_msg =
      mean (fun r ->
          float_of_int r.Harness.retransmissions /. float_of_int (max 1 r.Harness.delivered));
    reorder_frac =
      mean (fun r ->
          float_of_int r.Harness.data_reordered /. float_of_int (max 1 r.Harness.data_sent));
    all_correct = List.for_all Harness.correct runs;
  }

(* ------------------------------------------------------------------ *)
(* T1: the introduction's scenario, replayed. *)

module Gbn_intro = Ba_model.Gbn_bounded_spec.Make (struct
  let w = 2
  let n = 3
  let limit = 6
end)

module Gbn_scenario = Ba_verify.Scenario.Make (Gbn_intro)

module Ba_intro = Ba_model.Ba_spec_finite.Make (struct
  let w = 2
  let n = 4
  let limit = 6
end)

module Ba_scenario = Ba_verify.Scenario.Make (Ba_intro)

let t1_intro_scenario () =
  let gbn_script =
    [ "send(0"; "send(1"; "recv_data(0"; "recv_data(1"; "recv_ack(1"; "recv_ack(0" ]
  in
  let ba_script =
    [
      "send(0"; "send(1";
      "recv_data(w0"; "advance_vr(0"; "send_ack(0,0";
      "recv_data(w1"; "advance_vr(1"; "send_ack(1,1";
      "recv_ack(w1"; "recv_ack(w0";
    ]
  in
  let describe name outcome steps =
    match outcome.Ba_verify.Scenario.first_violation with
    | Some (step, msg) -> [ name; string_of_int steps; "VIOLATED at step " ^ string_of_int step; msg ]
    | None -> [ name; string_of_int steps; "safe"; "sender waits for the missing block ack" ]
  in
  let gbn = Gbn_scenario.replay gbn_script in
  let ba = Ba_scenario.replay ba_script in
  {
    id = "T1";
    title = "Intro scenario: reordered acknowledgments with bounded sequence numbers";
    headers = [ "protocol"; "steps"; "outcome"; "detail" ];
    rows =
      [
        describe "go-back-N (w=2, n=3, cumulative acks)" gbn (List.length gbn.Ba_verify.Scenario.steps);
        describe "block ack (w=2, n=2w=4)" ba (List.length ba.Ba_verify.Scenario.steps);
      ];
    notes =
      [
        "Same interleaving: a window is sent, delivered, and its two acks arrive reversed.";
        "Expected: go-back-N decodes the stale cumulative ack as recent and slides its \
         window past data the receiver never accepted; block acknowledgment simply waits.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* T2: exhaustive verification of the specs. *)

let t2_verification ?(jobs = 1) ~quick () =
  let lim_small = if quick then 3 else 4 in
  let entries =
    [
      ("II  (w=1)", Ba_model.Ba_spec.default ~w:1 ~limit:(lim_small + 1), true);
      ("II  (w=2)", Ba_model.Ba_spec.default ~w:2 ~limit:lim_small, true);
      ("IV  (w=2)", Ba_model.Ba_spec_timeout.default ~w:2 ~limit:lim_small, true);
      ("V   (w=2, n=2w=4)", Ba_model.Ba_spec_finite.default ~w:2 ~limit:lim_small (), true);
      ("V   (w=2, n=3w=6)", Ba_model.Ba_spec_finite.default ~w:2 ~n:6 ~limit:lim_small (), true);
      ("V   (w=2, n=2w-1=3)", Ba_model.Ba_spec_finite.default ~w:2 ~n:3 ~limit:6 (), false);
      ("Vb  (w=2, bounded storage)", Ba_model.Ba_spec_bounded.default ~w:2 ~limit:lim_small (), true);
      ( "VI  (w=2, lead=4 slot reuse)",
        Ba_model.Ba_reuse_spec.default ~w:2 ~lead:4 ~limit:(lim_small + 1) (),
        true );
      ("GBN (w=2, n=3)", Ba_model.Gbn_bounded_spec.default ~w:2 ~limit:6 (), false);
    ]
  in
  let entries =
    if quick then entries
    else entries @ [ ("II  (w=3)", Ba_model.Ba_spec.default ~w:3 ~limit:5, true) ]
  in
  let rows =
    pmap ~jobs
      (fun (name, spec, expect_ok) ->
        let r = Explorer.run_spec spec in
        let invariant =
          match r.Explorer.violation with None -> "HOLDS" | Some (msg, _) -> "VIOLATED: " ^ msg
        in
        let progress =
          match r.Explorer.live with
          | Some true -> "live"
          | Some false -> "NOT live"
          | None -> "-"
        in
        let verdict =
          match (expect_ok, r.Explorer.violation) with
          | true, None | false, Some _ -> "as proven"
          | true, Some _ -> "UNEXPECTED"
          | false, None -> "UNEXPECTED"
        in
        [
          name;
          string_of_int r.Explorer.state_count;
          string_of_int r.Explorer.transition_count;
          invariant;
          progress;
          verdict;
        ])
      entries
  in
  {
    id = "T2";
    title = "Exhaustive verification (assertions 6-8, deadlock freedom, loss-free progress)";
    headers = [ "spec (section)"; "states"; "transitions"; "invariant"; "progress"; "vs paper" ];
    rows;
    notes =
      [
        "Sections II, IV and V verify exactly as the paper proves; n = 2w - 1 yields a \
         reconstruction counterexample; bounded go-back-N violates safety under reorder.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F1: goodput vs loss (near-FIFO links for a fair classic comparison). *)

let f1_goodput_vs_loss ?(jobs = 1) ~quick () =
  let messages = if quick then 400 else 2000 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let delay = Dist.Constant 50 in
  let losses = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ] in
  let ba_config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:50 () in
  let unbounded = Config.make ~window:16 ~rto:300 () in
  let protos =
    [
      ("blockack-simple", Blockack.Protocols.simple, ba_config);
      ("blockack-multi", Blockack.Protocols.multi, ba_config);
      ("go-back-N", Ba_baselines.Go_back_n.protocol, unbounded);
      ("selective-repeat", Ba_baselines.Selective_repeat.protocol, ba_config);
    ]
  in
  let cells =
    pmap ~jobs
      (fun (loss, (_, proto, config)) ->
        let a = average ~seeds ~messages ~config ~loss ~delay proto in
        fmt a.goodput ^ if a.all_correct then "" else "!")
      (List.concat_map (fun loss -> List.map (fun p -> (loss, p)) protos) losses)
  in
  let rows = List.map2 (fun loss cells -> pct loss :: cells) losses (chunk (List.length protos) cells) in
  {
    id = "F1";
    title = "Goodput (messages per 1000 ticks) vs loss rate — w=16, near-FIFO links";
    headers = "loss" :: List.map (fun (n, _, _) -> n) protos;
    rows;
    notes =
      [
        "Paper claim: block acknowledgment keeps the throughput of the classic window \
         protocol while also tolerating loss and reorder.";
        "Expected shape: at 0% everyone is window-limited and equal; as loss grows, \
         go-back-N pays a whole-window retransmission per loss and falls behind, \
         blockack-multi tracks selective-repeat, blockack-simple sits between.";
        "A trailing '!' marks a run that was not perfectly correct (none expected here).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F2: goodput vs window size. *)

let f2_goodput_vs_window ?(jobs = 1) ~quick () =
  let messages = if quick then 400 else 2000 in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let delay = Dist.Constant 50 in
  let loss = 0.02 in
  let windows = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let rows =
    pmap ~jobs
      (fun w ->
        let ba_config = Config.make ~window:w ~rto:300 ~wire_modulus:(Some (2 * w)) ~max_transit:50 () in
        let gbn_config = Config.make ~window:w ~rto:300 () in
        let ba = average ~seeds ~messages ~config:ba_config ~loss ~delay Blockack.Protocols.multi in
        let gbn =
          average ~seeds ~messages ~config:gbn_config ~loss ~delay Ba_baselines.Go_back_n.protocol
        in
        [ string_of_int w; fmt ba.goodput; fmt gbn.goodput; fmt (ba.goodput /. gbn.goodput) ])
      windows
  in
  {
    id = "F2";
    title = "Goodput vs window size — 2% loss, near-FIFO links, n = 2w";
    headers = [ "window"; "blockack-multi"; "go-back-N"; "ratio" ];
    rows;
    notes =
      [
        "Expected shape: both scale with the window until the loss-recovery cost \
         dominates; go-back-N's whole-window retransmissions make its large-window \
         gains evaporate, so the ratio grows with w.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F3: recovery time after a lost block acknowledgment. *)

let f3_recovery_time ?(jobs = 1) ~quick () =
  let blocks = if quick then [ 1; 4; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let rto = 300 in
  let run_with_kill proto b =
    (* Transfer exactly b messages; they are emitted in one burst over a
       constant-delay link and coalesce into a single block ack, which we
       kill. Completion time then measures pure recovery. *)
    let config =
      Config.make ~window:16 ~rto ~wire_modulus:(Some 32) ~ack_coalesce:20 ~max_transit:50 ()
    in
    let killed = ref false in
    let r =
      Harness.run proto ~seed:7 ~messages:b ~config ~data_delay:(Dist.Constant 50)
        ~ack_delay:(Dist.Constant 50)
        ~on_setup:(fun setup ->
          Ba_channel.Link.set_fault setup.Harness.ack_link (fun (_ : Ba_proto.Wire.ack) ->
              if !killed then Ba_channel.Link.Deliver
              else begin
                killed := true;
                Ba_channel.Link.Drop
              end))
        ()
    in
    assert r.Harness.completed;
    r.Harness.ticks
  in
  let rows =
    pmap ~jobs
      (fun b ->
        let simple = run_with_kill Blockack.Protocols.simple b in
        let multi = run_with_kill Blockack.Protocols.multi b in
        [
          string_of_int b;
          string_of_int simple;
          string_of_int multi;
          fmt ~decimals:1 (float_of_int simple /. float_of_int (max 1 multi));
          Printf.sprintf "~%d" ((b * rto) + 170);
          Printf.sprintf "~%d" (rto + 170);
        ])
      blocks
  in
  {
    id = "F3";
    title =
      "Recovery after losing the block ack covering b messages (ticks to completion; rto=300)";
    headers =
      [ "block b"; "simple (II)"; "multi (IV)"; "simple/multi"; "expected II"; "expected IV" ];
    rows;
    notes =
      [
        "Paper, Section IV: with the simple timeout the sender recovers one message per \
         timeout period (~b*rto); per-message timers resend the whole block back-to-back \
         (~rto + round trip) regardless of b.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F4: reorder tolerance — goodput vs delay jitter. *)

let f4_reorder_tolerance ?(jobs = 1) ~quick () =
  let messages = if quick then 300 else 1500 in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let loss = 0.01 in
  let jitters = [ 0; 25; 50; 100; 200 ] in
  let rows =
    pmap ~jobs
      (fun j ->
        let delay = if j = 0 then Dist.Constant 50 else Dist.Uniform (50, 50 + j) in
        (* rto must stay sound as max delay grows. *)
        let rto = (2 * (50 + j)) + 100 in
        let ba_config = Config.make ~window:16 ~rto ~wire_modulus:(Some 32) ~max_transit:(50 + j) () in
        let unbounded = Config.make ~window:16 ~rto () in
        let ba = average ~seeds ~messages ~config:ba_config ~loss ~delay Blockack.Protocols.multi in
        let gbn =
          average ~seeds ~messages ~config:unbounded ~loss ~delay Ba_baselines.Go_back_n.protocol
        in
        let sr =
          average ~seeds ~messages ~config:ba_config ~loss ~delay
            Ba_baselines.Selective_repeat.protocol
        in
        [
          string_of_int j;
          pct ba.reorder_frac;
          fmt ba.goodput ^ (if ba.all_correct then "" else "!");
          fmt sr.goodput ^ (if sr.all_correct then "" else "!");
          fmt gbn.goodput ^ (if gbn.all_correct then "" else "!");
          fmt gbn.retx_per_msg;
        ])
      jitters
  in
  {
    id = "F4";
    title = "Tolerating reorder: goodput vs delay jitter (base delay 50, 1% loss, w=16)";
    headers =
      [
        "jitter";
        "wire reorder";
        "blockack-multi";
        "selective-repeat";
        "go-back-N";
        "gbn retx/msg";
      ];
    rows;
    notes =
      [
        "Paper claim: the protocol tolerates message disorder. Expected shape: blockack \
         and selective-repeat degrade gently with jitter; in-order go-back-N discards \
         every overtaken message, its retransmissions explode and goodput collapses.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* T3: acknowledgment economy. *)

let t3_ack_overhead ?(jobs = 1) ~quick () =
  let messages = if quick then 500 else 2000 in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let delay = Dist.Constant 50 in
  let ba_config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:50 () in
  let ba_coalesced =
    Config.make ~window:16 ~rto:400 ~wire_modulus:(Some 32) ~ack_coalesce:30 ~max_transit:50 ()
  in
  let unbounded = Config.make ~window:16 ~rto:300 () in
  let protos =
    [
      ("blockack", Blockack.Protocols.simple, ba_config);
      ("blockack+coalesce30", Blockack.Protocols.simple, ba_coalesced);
      ("go-back-N", Ba_baselines.Go_back_n.protocol, unbounded);
      ("selective-repeat", Ba_baselines.Selective_repeat.protocol, ba_config);
    ]
  in
  let rows =
    pmap ~jobs
      (fun (loss, (name, proto, config)) ->
        let a = average ~seeds ~messages ~config ~loss ~delay proto in
        [
          pct loss;
          name;
          fmt a.acks_per_msg;
          fmt ~decimals:4 a.ack_bytes_per_byte;
          fmt a.retx_per_msg;
        ])
      (List.concat_map (fun loss -> List.map (fun p -> (loss, p)) protos) [ 0.0; 0.05 ])
  in
  {
    id = "T3";
    title = "Acknowledgment economy (32-byte payloads; block acks are 8B, single acks 4B)";
    headers = [ "loss"; "protocol"; "acks/msg"; "ack bytes/payload byte"; "retx/msg" ];
    rows;
    notes =
      [
        "Paper, Section VI: a block ack acknowledges many messages for \"the small added \
         expense\" of a second number. Selective repeat must ack every message; block \
         acknowledgment amortises, especially with coalescing.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* T4: the Stenning real-time constraint vs domain size. *)

let t4_stenning_domain ?(jobs = 1) ~quick () =
  let messages = if quick then 200 else 600 in
  let seeds = [ 1 ] in
  let delay = Dist.Constant 50 in
  let loss = 0.01 in
  let gap = 600 in
  let domains = [ 4; 8; 16; 32; 64 ] in
  let rows =
    pmap ~jobs
      (fun n ->
        let w = n / 2 in
        let config = Config.make ~window:w ~rto:300 ~wire_modulus:(Some n) ~stenning_gap:gap () in
        let st = average ~seeds ~messages ~config ~loss ~delay Ba_baselines.Stenning.protocol in
        let ba_config = Config.make ~window:w ~rto:300 ~wire_modulus:(Some n) ~max_transit:50 () in
        let ba = average ~seeds ~messages ~config:ba_config ~loss ~delay Blockack.Protocols.multi in
        [
          string_of_int n;
          string_of_int w;
          fmt st.goodput;
          fmt (float_of_int n /. float_of_int gap *. 1000.);
          fmt ba.goodput;
          fmt (ba.goodput /. st.goodput);
        ])
      domains
  in
  {
    id = "T4";
    title =
      Printf.sprintf
        "Timer-based protocols vs domain size (reuse quarantine %d ticks, 1%% loss)" gap;
    headers =
      [ "domain n"; "window"; "stenning goodput"; "stenning cap (n/gap)"; "blockack"; "ratio" ];
    rows;
    notes =
      [
        "Paper, introduction: the Stenning/Lam-Shankar send constraint \"may adversely \
         affect the rate of data transfer\" when the sequence-number domain is small. \
         Steady-state Stenning throughput is capped at n/gap; block acknowledgment with \
         the same n and window is only window/RTT-limited.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F5: the Section VI slot-reuse extension. *)

let f5_slot_reuse ?(jobs = 1) ~quick () =
  let messages = if quick then 500 else 2000 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let delay = Dist.Uniform (40, 60) in
  let losses = [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let plain_config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~max_transit:60 () in
  let reuse_config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:60 () in
  let reuse_proto = Blockack.Protocols.reuse ~lead_factor:2 () in
  let rows =
    pmap ~jobs
      (fun loss ->
        let plain =
          average ~seeds ~messages ~config:plain_config ~loss ~delay Blockack.Protocols.multi
        in
        let reuse = average ~seeds ~messages ~config:reuse_config ~loss ~delay reuse_proto in
        [
          pct loss;
          fmt plain.goodput;
          fmt reuse.goodput ^ (if reuse.all_correct then "" else "!");
          Printf.sprintf "%+.0f%%" (100. *. ((reuse.goodput /. plain.goodput) -. 1.));
        ])
      losses
  in
  {
    id = "F5";
    title = "Section VI slot reuse: w=8 unacked budget, lead 16, n=32 vs plain w=8, n=16";
    headers = [ "loss"; "plain blockack-multi"; "slot reuse"; "gain" ];
    rows;
    notes =
      [
        "Paper, Section VI: reusing acknowledged positions before earlier messages are \
         acknowledged trades complexity (wider buffers, n = 2*lead) for throughput. \
         Expected shape: no gain at 0% loss (window never blocks on a hole), growing \
         gain with loss as head-of-line stalls disappear.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* F6: per-message delivery latency (head-of-line blocking made visible). *)

let f6_latency ?(jobs = 1) ~quick () =
  let messages = if quick then 500 else 2000 in
  let delay = Dist.Constant 50 in
  let ba_config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:50 () in
  let unbounded = Config.make ~window:16 ~rto:300 () in
  let protos =
    [
      ("blockack-simple", Blockack.Protocols.simple, ba_config);
      ("blockack-multi", Blockack.Protocols.multi, ba_config);
      ("go-back-N", Ba_baselines.Go_back_n.protocol, unbounded);
      ("selective-repeat", Ba_baselines.Selective_repeat.protocol, ba_config);
    ]
  in
  let rows =
    pmap ~jobs
      (fun (loss, (name, proto, config)) ->
        let r =
          Harness.run proto ~seed:17 ~messages ~config ~data_loss:loss ~ack_loss:loss
            ~data_delay:delay ~ack_delay:delay ()
        in
        match r.Harness.latency with
        | Some l ->
            [
              pct loss;
              name;
              fmt ~decimals:0 l.Ba_util.Stats.p50;
              fmt ~decimals:0 l.Ba_util.Stats.p90;
              fmt ~decimals:0 l.Ba_util.Stats.p99;
              fmt ~decimals:0 l.Ba_util.Stats.max;
            ]
        | None -> [ pct loss; name; "-"; "-"; "-"; "-" ])
      (List.concat_map (fun loss -> List.map (fun p -> (loss, p)) protos) [ 0.0; 0.05 ])
  in
  {
    id = "F6";
    title = "Delivery latency in ticks (window entry to in-order delivery; RTT = 100)";
    headers = [ "loss"; "protocol"; "p50"; "p90"; "p99"; "max" ];
    rows;
    notes =
      [
        "In-order delivery means one lost message delays everything behind it \
         (head-of-line blocking) until recovery. Expected shape: identical ~RTT/2+delay \
         medians at 0% loss; under loss the p99 tail is one timeout (~rto) for \
         blockack-multi and selective-repeat, several timeouts for blockack-simple \
         (serial recovery), and inflated for go-back-N (whole-window resends).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* T5: piggybacked acknowledgments in a duplex session. *)

let t5_piggyback ?(jobs = 1) ~quick () =
  let messages = if quick then 300 else 1000 in
  let pace = 20 in
  let run ~hold ~loss =
    let d =
      Blockack.Duplex.create ~seed:6 ~piggyback_hold:hold ~loss
        ~on_receive_a:(fun _ -> ())
        ~on_receive_b:(fun _ -> ())
        ()
    in
    let engine = Blockack.Duplex.engine d in
    for i = 1 to messages do
      ignore
        (Ba_sim.Engine.schedule engine ~delay:(i * pace) (fun () ->
             Blockack.Duplex.send (Blockack.Duplex.a d) (Printf.sprintf "a%d" i);
             Blockack.Duplex.send (Blockack.Duplex.b d) (Printf.sprintf "b%d" i)))
    done;
    Blockack.Duplex.run d;
    let sa = Blockack.Duplex.stats (Blockack.Duplex.a d) in
    let sb = Blockack.Duplex.stats (Blockack.Duplex.b d) in
    let completed = Blockack.Duplex.idle d in
    let tot f = f sa + f sb in
    [
      string_of_int hold;
      pct loss;
      string_of_int (tot (fun s -> s.Blockack.Duplex.data_frames));
      string_of_int (tot (fun s -> s.Blockack.Duplex.pure_ack_frames));
      string_of_int (tot (fun s -> s.Blockack.Duplex.piggybacked_acks));
      (string_of_int (tot (fun s -> s.Blockack.Duplex.frames_sent))
      ^ if completed then "" else "!");
      Printf.sprintf "%.1f%%"
        (100.
        *. float_of_int (tot (fun s -> s.Blockack.Duplex.pure_ack_frames))
        /. float_of_int (max 1 (tot (fun s -> s.Blockack.Duplex.data_frames))));
    ]
  in
  let rows =
    pmap ~jobs
      (fun (loss, hold) -> run ~hold ~loss)
      (List.concat_map (fun loss -> List.map (fun hold -> (loss, hold)) [ 0; 15; 25; 60 ]) [ 0.0; 0.05 ])
  in
  {
    id = "T5";
    title =
      Printf.sprintf
        "Piggybacked block acks in a duplex conversation (%d msgs each way, one every %d \
         ticks)" messages pace;
    headers =
      [ "hold"; "loss"; "data frames"; "pure-ack frames"; "piggybacked"; "total frames";
        "ack-frame overhead" ];
    rows;
    notes =
      [
        "Deployed window protocols carry acknowledgments on reverse data. Holding an \
         ack briefly (>= the app's pacing) lets nearly every block ack ride for free; \
         hold=0 degenerates to a dedicated ack channel. Adjacent pending blocks merge \
         into wider blocks — the block-ack property doing the coalescing.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* A1 (extension ablation): fixed vs adaptive retransmission timeout. *)

let a1_adaptive_rto ?(jobs = 1) ~quick () =
  let messages = if quick then 400 else 1500 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let delay = Dist.Uniform (40, 100) in
  let loss = 0.05 in
  let run_fixed rto =
    let config = Config.make ~window:16 ~rto () in
    average ~seeds ~messages ~config ~loss ~delay Blockack.Protocols.multi
  in
  let run_adaptive initial =
    let config = Config.make ~window:16 ~rto:initial ~adaptive_rto:true () in
    average ~seeds ~messages ~config ~loss ~delay Blockack.Protocols.multi
  in
  let describe name a =
    [ name; fmt a.goodput ^ (if a.all_correct then "" else "!"); fmt a.retx_per_msg ]
  in
  let rows =
    pmap ~jobs
      (function
        | `Fixed rto -> describe (Printf.sprintf "fixed rto=%d" rto) (run_fixed rto)
        | `Adaptive initial ->
            describe (Printf.sprintf "adaptive (initial %d)" initial) (run_adaptive initial))
      (List.map (fun rto -> `Fixed rto) [ 150; 300; 600; 1500 ]
      @ List.map (fun initial -> `Adaptive initial) [ 300; 1500 ])
  in
  {
    id = "A1";
    title =
      "Extension ablation: fixed vs adaptive timeout (delay U[40,100], 5% loss, unbounded \
       wire numbers)";
    headers = [ "timeout policy"; "goodput"; "retx/msg" ];
    rows;
    notes =
      [
        "The paper assumes an accurately chosen timeout (rto > 2*max delay = 200 here). \
         An under-estimated fixed rto retransmits spuriously; an over-estimated one \
         recovers slowly. The Jacobson/Karels estimator (Karn's rule, exponential \
         backoff) converges to the real round trip from either starting point.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* A2 (extension ablation): variable-size windows over a bottleneck. *)

let a2_dynamic_window ?(jobs = 1) ~quick () =
  let messages = if quick then 600 else 2000 in
  let delay = Dist.Constant 50 in
  let bottleneck = (10, 10) in
  (* service: 1 msg / 10 ticks (100 msgs per kilotick), FIFO queue of 10 *)
  let run ~dynamic w =
    let config = Config.make ~window:w ~rto:400 ~dynamic_window:dynamic () in
    Harness.run Blockack.Protocols.multi ~seed:3 ~messages ~config ~data_delay:delay
      ~ack_delay:delay ~data_bottleneck:bottleneck
      ~deadline:(messages * 10_000) ()
  in
  let describe name (r : Harness.result) =
    [
      name;
      (if Harness.correct r then fmt r.Harness.goodput else "WEDGED");
      string_of_int r.Harness.retransmissions;
      string_of_int r.Harness.data_queue_dropped;
    ]
  in
  let rows =
    pmap ~jobs
      (function
        | `Fixed w -> describe (Printf.sprintf "fixed w=%d" w) (run ~dynamic:false w)
        | `Aimd -> describe "AIMD (max 64)" (run ~dynamic:true 64))
      (List.map (fun w -> `Fixed w) [ 4; 8; 16; 32 ] @ [ `Aimd ])
  in
  {
    id = "A2";
    title =
      "Section VI variable windows: fixed vs AIMD window over a bottleneck queue (100 msgs/kilotick, 10-slot FIFO, tail drop)";
    headers = [ "window policy"; "goodput"; "retx"; "queue drops" ];
    rows;
    notes =
      [
        "With load-dependent loss, a fixed window beyond the bandwidth-delay product (~11 messages here) overflows the queue; retransmissions add load and the largest fixed windows collapse. The AIMD window (+1/RTT, halve on timeout) finds the operating point by itself — the paper's 'variable size windows' remark, quantified. Unbounded wire numbers (queueing extends message lifetime beyond what a mod-2w timeout bound can promise).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* A3 (extension ablation): two flows share the bottleneck — fairness. *)

let a3_fairness ?(jobs = 1) ~quick () =
  let messages = if quick then 400 else 1500 in
  (* Two independent block-ack flows share one bottleneck queue on the
     data path (acks return on private links). We observe each flow's
     delivered count at the moment the first flow completes: a fair
     sharing policy keeps the ratio near 1. *)
  let run_pair ~dynamic ~w =
    let engine = Ba_sim.Engine.create ~seed:5 () in
    let config = Config.make ~window:w ~rto:400 ~dynamic_window:dynamic () in
    let delivered = [| 0; 0 |] in
    let at_first_finish = ref None in
    let receivers = Array.make 2 None in
    let shared =
      Ba_channel.Link.create engine ~delay:(Dist.Constant 50) ~bottleneck:(10, 10)
        ~deliver:(fun (flow, d) ->
          match receivers.(flow) with
          | Some r -> Blockack.Receiver.on_data r d
          | None -> ())
        ()
    in
    let senders = Array.make 2 None in
    let flows =
      Array.init 2 (fun flow ->
          let ack_link =
            Ba_channel.Link.create engine ~delay:(Dist.Constant 50)
              ~deliver:(fun a ->
                match senders.(flow) with
                | Some s -> Blockack.Sender_multi.on_ack s a
                | None -> ())
              ()
          in
          let sender =
            Blockack.Sender_multi.create engine config
              ~tx:(fun d -> Ba_channel.Link.send shared (flow, d))
              ~next_payload:
                (Ba_proto.Workload.supplier ~seed:(100 + flow) ~size:32 ~count:messages)
          in
          let receiver =
            Blockack.Receiver.create engine config
              ~tx:(Ba_channel.Link.send ack_link)
              ~deliver:(fun _ ->
                delivered.(flow) <- delivered.(flow) + 1;
                if delivered.(flow) = messages && !at_first_finish = None then
                  at_first_finish := Some (delivered.(0), delivered.(1)))
          in
          senders.(flow) <- Some sender;
          receivers.(flow) <- Some receiver;
          sender)
    in
    Array.iter Blockack.Sender_multi.pump flows;
    let finish_time = ref None in
    let rec watch () =
      if delivered.(0) = messages && delivered.(1) = messages then begin
        finish_time := Some (Ba_sim.Engine.now engine);
        Ba_sim.Engine.stop engine
      end
      else ignore (Ba_sim.Engine.schedule engine ~delay:500 watch)
    in
    ignore (Ba_sim.Engine.schedule engine ~delay:500 watch);
    Ba_sim.Engine.run ~until:(messages * 10_000) engine;
    let d0, d1 = Option.value ~default:(delivered.(0), delivered.(1)) !at_first_finish in
    let retx =
      Array.fold_left
        (fun acc s -> acc + Blockack.Sender_multi.retransmissions (Option.get s))
        0 senders
    in
    (d0, d1, !finish_time, retx)
  in
  let describe name (d0, d1, finish, retx) =
    let share_ratio = float_of_int (min d0 d1) /. float_of_int (max 1 (max d0 d1)) in
    [
      name;
      string_of_int d0;
      string_of_int d1;
      fmt ~decimals:2 share_ratio;
      (match finish with Some t -> string_of_int t | None -> "WEDGED");
      string_of_int retx;
    ]
  in
  let rows =
    pmap ~jobs
      (fun (name, dynamic, w) -> describe name (run_pair ~dynamic ~w))
      [
        ("2 x fixed w=4", false, 4);
        ("2 x fixed w=8", false, 8);
        ("2 x fixed w=32", false, 32);
        ("2 x AIMD (max 64)", true, 64);
      ]
  in
  {
    id = "A3";
    title =
      "Two competing flows on one bottleneck (100 msgs/kilotick, 10-slot queue): share at \
       first finish";
    headers =
      [ "policy"; "flow A delivered"; "flow B delivered"; "min/max share"; "ticks"; "retx" ];
    rows;
    notes =
      [
        "Fairness view of A2: with AIMD both flows back off and converge to an even \
         split of the bottleneck; fixed windows beyond half the bandwidth-delay product \
         fight over the queue, and the combined load degrades both.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* C1: the chaos matrix — every protocol against every fault class. *)

module Chaos = Ba_verify.Chaos

let c1_chaos_matrix ?(jobs = 1) ~quick () =
  let messages = if quick then 40 else 80 in
  let seeds = List.init (if quick then 5 else 15) (fun i -> i + 1) in
  (* The naive baselines keep their textbook configurations; the robust
     ones use the audited timing (see Chaos.robust_config). The
     alternating-bit protocol ignores the window entirely. *)
  let protos =
    [
      ("blockack-multi", Blockack.Protocols.multi, Chaos.robust_config);
      ("selective-repeat", Ba_baselines.Selective_repeat.protocol, Chaos.robust_config);
      ("go-back-N (w+1)", Ba_baselines.Go_back_n.protocol, Chaos.gbn_config);
      ("stenning", Ba_baselines.Stenning.protocol, Chaos.robust_config);
      ( "alternating-bit",
        Ba_baselines.Alternating_bit.protocol,
        Config.make ~window:1 ~rto:1000 ~max_transit:410 () );
    ]
  in
  (* Each campaign already fans its (fault, seed) cells out to [jobs]
     domains, so the protocols stay sequential here. *)
  let reports =
    List.map
      (fun (_, p, config) ->
        Chaos.run_campaign ~messages ~config ~seeds ~classes:Chaos.channel_classes ~jobs p)
      protos
  in
  let cell (c : Chaos.class_report) =
    if c.Chaos.unsafe = 0 && c.Chaos.incomplete = 0 then "ok"
    else
      String.concat " "
        ((if c.Chaos.unsafe > 0 then [ Printf.sprintf "unsafe:%d" c.Chaos.unsafe ] else [])
        @
        if c.Chaos.incomplete > 0 then [ Printf.sprintf "stuck:%d" c.Chaos.incomplete ]
        else [])
  in
  let rows =
    List.map
      (fun fault ->
        Chaos.class_name fault
        :: List.map
             (fun (r : Chaos.report) ->
               match List.find_opt (fun c -> c.Chaos.fault = fault) r.Chaos.classes with
               | Some c -> cell c
               | None -> "-")
             reports)
      Chaos.channel_classes
  in
  {
    id = "C1";
    title =
      Printf.sprintf
        "Chaos matrix — %d seeds x %d msgs per cell: safety violations and stuck runs"
        (List.length seeds) messages;
    headers = "fault" :: List.map (fun (n, _, _) -> n) protos;
    rows;
    notes =
      [
        "Safety = never deliver a duplicate, out of order, or corrupted; stuck = failed \
         to finish once scheduled faults quiesced.";
        "Expected: blockack-multi and selective-repeat are 'ok' everywhere — the \
         set-channel proof does not cover duplication or corruption, but checksums plus \
         the 2w modulus make the implementation tolerate both.";
        "Expected: go-back-N's w+1 modulus breaks under reorder (the introduction's \
         scenario, found by sweep instead of by hand), and the unvalidated baselines \
         deliver corrupted payloads.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* C2: crash recovery — incarnation epochs vs the naive zeroed restart. *)

let c2_crash_recovery ?(jobs = 1) ~quick () =
  let messages = if quick then 40 else 80 in
  let seeds = List.init (if quick then 6 else 18) (fun i -> i + 1) in
  (* Same seed-derived crash schedules (sender / receiver / staggered
     double crashes) against three configurations: both block-ack
     senders with the epoch handshake, and the epoch-less restart as the
     negative control the handshake exists to beat. *)
  let configurations =
    [
      ("blockack-multi / epochs", Blockack.Protocols.multi, Chaos.robust_config);
      ("blockack-simple / epochs", Blockack.Protocols.simple, Chaos.robust_config);
      ("blockack-multi / naive restart", Blockack.Protocols.multi, Chaos.naive_restart_config);
    ]
  in
  let rows =
    List.map
      (fun (label, proto, config) ->
        let r = Chaos.run_campaign ~messages ~config ~seeds ~classes:[ Chaos.Crash ] ~jobs proto in
        let c = List.hd r.Chaos.classes in
        let verdict =
          if c.Chaos.unsafe = 0 && c.Chaos.incomplete = 0 then "ok"
          else
            String.concat " "
              ((if c.Chaos.unsafe > 0 then [ Printf.sprintf "unsafe:%d" c.Chaos.unsafe ] else [])
              @
              if c.Chaos.incomplete > 0 then [ Printf.sprintf "stuck:%d" c.Chaos.incomplete ]
              else [])
        in
        let recovery =
          match c.Chaos.recovery with
          | None -> [ "-"; "-"; "-"; "-" ]
          | Some rc ->
              [
                string_of_int rc.Chaos.restarts;
                string_of_int rc.Chaos.resync_rounds;
                Printf.sprintf "%.0f / %.0f" rc.Chaos.mean_resync_ticks rc.Chaos.max_resync_ticks;
                string_of_int rc.Chaos.retx_bytes;
              ]
        in
        (label :: string_of_int c.Chaos.runs :: verdict :: recovery))
      configurations
  in
  {
    id = "C2";
    title =
      Printf.sprintf
        "Crash recovery — %d seed-derived crash schedules x %d msgs: epochs vs naive restart"
        (List.length seeds) messages;
    headers =
      [
        "configuration"; "runs"; "verdict"; "restarts"; "resync frames"; "resync ticks mean/max";
        "retx bytes";
      ];
    rows;
    notes =
      [
        "Each seed crashes the sender, the receiver, or both (staggered), wiping all \
         volatile state; stable storage keeps only the incarnation epoch and the \
         receiver's delivery count.";
        "With epochs the restarted endpoint bumps its incarnation, rejects \
         old-incarnation frames, and replays the REQ/POS/FIN resync handshake: every \
         run is safe and completes, at the retransmission cost shown.";
        "The naive restart comes back zeroed into the same sequence space: the \
         receiver re-accepts old retransmissions as new data (duplicate delivery) or \
         the window arithmetic wedges — exactly the failure the explorer's crash model \
         exhibits as a counterexample.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* S1: scaling the fabric — N connections over one shared bottleneck. *)

module Fabric = Ba_proto.Fabric
module Registry = Ba_registry.Registry

let s1_scaling ?(jobs = 1) ~quick () =
  let counts = if quick then [ 1; 16; 64 ] else [ 1; 4; 16; 64; 256 ] in
  let messages = if quick then 10 else 30 in
  let svc, cap = (2, 128) in
  (* 1 message per 2 ticks of service = 500 msgs/kilotick aggregate cap. *)
  let delay = 50 in
  let rto = (2 * delay) + (svc * cap) + 100 in
  let protos =
    List.filter_map Registry.find [ "blockack-multi"; "go-back-n"; "selective-repeat" ]
  in
  let median = function
    | [] -> nan
    | xs ->
        let sorted = List.sort compare xs in
        List.nth sorted (List.length sorted / 2)
  in
  let rows =
    pmap ~jobs
      (fun (n, (e : Registry.entry)) ->
        let config = Registry.config ~window:8 ~rto e () in
        let specs = List.init n (fun _ -> Fabric.spec ~config ~messages e.Registry.protocol) in
        let r =
          Fabric.run ~seed:11 ~data_delay:(Dist.Constant delay)
            ~ack_delay:(Dist.Constant delay) ~data_bottleneck:(svc, cap) specs
        in
        let finished =
          List.length (List.filter (fun f -> f.Harness.completed) r.Fabric.flows)
        in
        let p50s, p99s =
          List.filter_map (fun f -> f.Harness.latency) r.Fabric.flows
          |> List.map (fun l -> (l.Ba_util.Stats.p50, l.Ba_util.Stats.p99))
          |> List.split
        in
        let d = r.Fabric.data_stats in
        [
          string_of_int n;
          e.Registry.name;
          Printf.sprintf "%d/%d" finished n;
          fmt r.Fabric.aggregate_goodput;
          fmt ~decimals:0 (median p50s);
          fmt ~decimals:0 (List.fold_left max 0. p99s);
          fmt ~decimals:3 r.Fabric.fairness;
          string_of_int d.Ba_channel.Link.queue_dropped;
        ])
      (List.concat_map (fun n -> List.map (fun e -> (n, e)) protos) counts)
  in
  {
    id = "S1";
    title =
      Printf.sprintf
        "Scaling the fabric: N flows of %d msgs share one bottleneck (1 msg per %d ticks, \
         %d-slot queue, w=8)" messages svc cap;
    headers =
      [ "conns"; "protocol"; "done"; "agg goodput"; "p50 (med)"; "p99 (max)"; "jain"; "queue drops" ];
    rows;
    notes =
      [
        "Aggregate goodput is capped by the shared link's service rate (500 msgs per \
         kilotick here). Expected shape: below saturation every protocol scales linearly \
         and shares fairly; past it (64+ flows want far more than the queue holds), \
         tail-drop loss governs and Jain's index falls as flows finish serially.";
        "Per-flow percentiles pool as the median of per-flow p50s and the worst per-flow \
         p99; a finished flow is measured over its own lifetime.";
        "This bottleneck drops from a FIFO tail, so it loses bursts but never reorders — \
         the one regime where go-back-N shines: a whole-window resend is exactly what a \
         tail-dropped burst needs, while the selective protocols re-offer each loss \
         individually into a still-full queue.";
        "Same engine, links and per-flow harness accounting as the single-connection \
         experiments — only the multiplexing is new (see Ba_proto.Fabric).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* S3: churn soak — flow lifecycle and budget reclamation under storms. *)

let s3_churn_soak ?(jobs = 1) ~quick () =
  let base = 2 in
  let churners = if quick then 1 else 2 in
  let messages = if quick then 20 else 40 in
  let seeds = List.init (if quick then 3 else 6) (fun i -> 42 + i) in
  let watchdog =
    { Ba_proto.Watchdog.default_config with Ba_proto.Watchdog.check_interval = 500 }
  in
  let rows =
    pmap ~jobs
      (fun seed ->
        let specs =
          Fabric.churn ~base ~churners ~messages ~config:Chaos.robust_config ~seed
            Blockack.Protocols.multi
        in
        (* 3/4 of the lifetime sum: tight enough that admitting every
           churner depends on the peak-concurrent accounting reclaiming
           departed reservations, loose enough that it always fits. *)
        let need =
          List.fold_left
            (fun a (s : Fabric.spec) ->
              a + (2 * s.Fabric.config.Config.window * s.Fabric.payload_size))
            0 specs
        in
        let budget = need * 3 / 4 in
        let data_plan, ack_plan = Chaos.plans_for Chaos.Storm ~seed in
        let sq = Chaos.squeeze_for ~seed in
        let crash_plan = Chaos.crash_plan_for ~seed in
        let specs =
          List.map
            (fun (s : Fabric.spec) ->
              { s with Fabric.config = fst (Chaos.apply_squeeze sq s.Fabric.config) })
            specs
        in
        let on_flows engine (flows : Ba_proto.Flow.t array) =
          if Array.length flows > 0 && Ba_proto.Flow.crash_tolerant flows.(0) then
            List.iter
              (fun (ev : Ba_proto.Crash_plan.event) ->
                let crash, restart =
                  match ev.Ba_proto.Crash_plan.endpoint with
                  | Ba_proto.Crash_plan.Sender_end ->
                      (Ba_proto.Flow.crash_sender, Ba_proto.Flow.restart_sender)
                  | Ba_proto.Crash_plan.Receiver_end ->
                      (Ba_proto.Flow.crash_receiver, Ba_proto.Flow.restart_receiver)
                in
                ignore
                  (Ba_sim.Engine.schedule_at engine ~at:ev.Ba_proto.Crash_plan.at (fun () ->
                       crash flows.(0)));
                ignore
                  (Ba_sim.Engine.schedule_at engine
                     ~at:(ev.Ba_proto.Crash_plan.at + ev.Ba_proto.Crash_plan.down_for)
                     (fun () -> restart flows.(0))))
              crash_plan
        in
        let r =
          Fabric.run ~seed ~data_plan ~ack_plan
            ~data_bottleneck:(sq.Chaos.service_time, sq.Chaos.queue_capacity)
            ~memory_budget:budget ~watchdog ~on_flows specs
        in
        let cohort keep =
          match List.filteri (fun i _ -> keep i) r.Fabric.flows with
          | [] -> nan
          | fs ->
              List.fold_left (fun a (f : Harness.result) -> a +. f.Harness.goodput) 0. fs
              /. float_of_int (List.length fs)
        in
        (* Base flows span the whole horizon; returners sit at the odd
           offsets of the churn tail (churn emits leaver;returner pairs). *)
        let pre = cohort (fun i -> i < base) in
        let post = cohort (fun i -> i >= base && (i - base) mod 2 = 1) in
        [
          string_of_int seed;
          Printf.sprintf "%d/%d" r.Fabric.admitted (List.length specs);
          string_of_int r.Fabric.departed;
          (if r.Fabric.completed then "yes" else "NO");
          fmt pre;
          fmt post;
          (if Float.is_nan post || Float.is_nan pre then "-" else fmt ~decimals:2 (post /. pre));
          string_of_int r.Fabric.mem_peak_bytes ^ "/" ^ string_of_int budget;
          string_of_int r.Fabric.watchdog_resyncs;
        ])
      seeds
  in
  {
    id = "S3";
    title =
      Printf.sprintf
        "Churn soak under storms: %d base + %d departing/returning pairs, budget at 3/4 of \
         the lifetime sum" base churners;
    headers =
      [
        "seed"; "admitted"; "departed"; "done"; "pre-churn goodput"; "post-churn goodput";
        "post/pre"; "mem peak/budget"; "resyncs";
      ];
    rows;
    notes =
      [
        "Every flow is admitted even though the budget is below the lifetime sum of \
         reservations: departures release their reservation, and admission reasons about \
         peak concurrent cost over the [start_at, stop_at) intervals.";
        "Post-churn goodput is the returning cohort's mean — flows that arrive after a \
         departure, live through the tail of the storm, and run to completion. Expected \
         shape: post/pre stays within the soak harness's epsilon floor (>= 0.5), often \
         above 1 when the returners land after the storm has quiesced.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* S4: the sharded fabric's scaling curve — S1 carried two decades
   further through the cell-partitioned engine. *)

let s4_sharded_scale ?(jobs = 1) ~quick () =
  let counts = if quick then [ 200; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let messages = 2 in
  let e =
    match Registry.find "blockack-multi" with Some e -> e | None -> assert false
  in
  (* The lease queue scales with the offered load (4 slots per flow) and
     the timeout sits above the full drain time, so the curve measures
     the sharded engine, not a retransmission storm. Every column is a
     pure function of the model parameters — byte-identical at any
     [jobs] (and any shard count), which test_shard proves wholesale. *)
  let config = Registry.config ~window:4 ~rto:500_000 e () in
  let rows =
    List.map
      (fun flows ->
        let specs =
          List.init flows (fun _ -> Fabric.spec ~config ~messages e.Registry.protocol)
        in
        let r = Ba_proto.Shard.run ~seed:11 ~jobs ~capacity:(1, 4 * flows) specs in
        [
          string_of_int flows;
          string_of_int r.Ba_proto.Shard.cells;
          Printf.sprintf "%d/%d" r.Ba_proto.Shard.delivered r.Ba_proto.Shard.messages;
          Printf.sprintf "%d/%d" r.Ba_proto.Shard.completed_flows flows;
          string_of_int r.Ba_proto.Shard.ticks;
          fmt r.Ba_proto.Shard.aggregate_goodput;
          string_of_int r.Ba_proto.Shard.lease_drops;
          string_of_int r.Ba_proto.Shard.lease_rebalances;
        ])
      counts
  in
  {
    id = "S4";
    title =
      Printf.sprintf
        "Sharded scale (S1 extension): %d msgs per flow through the cell-partitioned \
         fabric, bottleneck leased per cell" messages;
    headers =
      [ "flows"; "cells"; "delivered"; "done"; "ticks"; "agg goodput"; "lease drops"; "rebalances" ];
    rows;
    notes =
      [
        "Flows are partitioned into fixed-size cells (1024 flows each), every cell its own \
         engine over flat endpoint arrays; the shared bottleneck becomes per-cell capacity \
         leases reconciled at epoch barriers (see Ba_proto.Shard and DESIGN.md).";
        "Wall-clock throughput and bytes-per-flow for the same sweep live in \
         BENCH_campaigns.json (the \"scale\" block) and in `ba_net --scale`'s stderr line \
         — machine-dependent numbers stay out of this deterministic table.";
        "Expected shape: ticks grow linearly with the frame total (the lease serves one \
         frame per tick aggregate), goodput is flat at the service rate, and nothing is \
         dropped or rebalanced because the queue share and timeout are provisioned for \
         the drain.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* C3: the storm matrix — compound incidents vs their ingredients. *)

let c3_storm_matrix ?(jobs = 1) ~quick () =
  let messages = if quick then 40 else 80 in
  let seeds = List.init (if quick then 6 else 15) (fun i -> i + 1) in
  let protos =
    [
      ("blockack-multi", Blockack.Protocols.multi);
      ("blockack-simple", Blockack.Protocols.simple);
    ]
  in
  let faults = [ Chaos.Crash; Chaos.Overload; Chaos.Storm ] in
  let verdict (c : Chaos.class_report) =
    if c.Chaos.unsafe = 0 && c.Chaos.incomplete = 0 then "ok"
    else
      String.concat " "
        ((if c.Chaos.unsafe > 0 then [ Printf.sprintf "unsafe:%d" c.Chaos.unsafe ] else [])
        @
        if c.Chaos.incomplete > 0 then [ Printf.sprintf "stuck:%d" c.Chaos.incomplete ]
        else [])
  in
  let rows =
    List.concat_map
      (fun (name, p) ->
        let r =
          Chaos.run_campaign ~messages ~config:Chaos.robust_config ~seeds ~classes:faults
            ~jobs p
        in
        List.map
          (fun (c : Chaos.class_report) ->
            let recovery =
              match c.Chaos.recovery with
              | None -> [ "-"; "-"; "-" ]
              | Some rc ->
                  [
                    string_of_int rc.Chaos.restarts;
                    Printf.sprintf "%.0f / %.0f" rc.Chaos.mean_resync_ticks
                      rc.Chaos.max_resync_ticks;
                    string_of_int rc.Chaos.retx_bytes;
                  ]
            in
            (name :: Chaos.class_name c.Chaos.fault :: string_of_int c.Chaos.runs
            :: verdict c :: recovery))
          r.Chaos.classes)
      protos
  in
  {
    id = "C3";
    title =
      Printf.sprintf
        "Storm matrix — %d seeds x %d msgs: the compound incident vs its ingredients"
        (List.length seeds) messages;
    headers =
      [ "protocol"; "fault"; "runs"; "verdict"; "restarts"; "resync ticks mean/max"; "retx bytes" ];
    rows;
    notes =
      [
        "A storm composes the crash schedule, the overload squeeze and a bursty channel \
         in one run — the regime where the tolerance mechanisms (epoch resync, \
         backpressure, timer backoff) interact. Every ingredient is the same pure \
         function of the seed as in its dedicated class, so one replay key reproduces \
         the composition (ba_chaos --replay).";
        "Expected: both block-ack senders stay safe and complete; the storm's recovery \
         bill exceeds the crash class's alone because resyncs now fight a squeezed \
         receiver and a lossy channel for their handshake frames.";
      ];
  }

(* ------------------------------------------------------------------ *)

(* Presentation order, with a uniform closure type so the bench driver
   can time each grid individually (and record it in BENCH_campaigns.json). *)
let grids : (string * (quick:bool -> jobs:int -> table)) list =
  [
    ("T1", fun ~quick:_ ~jobs:_ -> t1_intro_scenario ());
    ("T2", fun ~quick ~jobs -> t2_verification ~jobs ~quick ());
    ("F1", fun ~quick ~jobs -> f1_goodput_vs_loss ~jobs ~quick ());
    ("F2", fun ~quick ~jobs -> f2_goodput_vs_window ~jobs ~quick ());
    ("F3", fun ~quick ~jobs -> f3_recovery_time ~jobs ~quick ());
    ("F4", fun ~quick ~jobs -> f4_reorder_tolerance ~jobs ~quick ());
    ("T3", fun ~quick ~jobs -> t3_ack_overhead ~jobs ~quick ());
    ("F6", fun ~quick ~jobs -> f6_latency ~jobs ~quick ());
    ("T4", fun ~quick ~jobs -> t4_stenning_domain ~jobs ~quick ());
    ("F5", fun ~quick ~jobs -> f5_slot_reuse ~jobs ~quick ());
    ("T5", fun ~quick ~jobs -> t5_piggyback ~jobs ~quick ());
    ("A1", fun ~quick ~jobs -> a1_adaptive_rto ~jobs ~quick ());
    ("A2", fun ~quick ~jobs -> a2_dynamic_window ~jobs ~quick ());
    ("A3", fun ~quick ~jobs -> a3_fairness ~jobs ~quick ());
    ("S1", fun ~quick ~jobs -> s1_scaling ~jobs ~quick ());
    ("S3", fun ~quick ~jobs -> s3_churn_soak ~jobs ~quick ());
    ("S4", fun ~quick ~jobs -> s4_sharded_scale ~jobs ~quick ());
    ("C1", fun ~quick ~jobs -> c1_chaos_matrix ~jobs ~quick ());
    ("C2", fun ~quick ~jobs -> c2_crash_recovery ~jobs ~quick ());
    ("C3", fun ~quick ~jobs -> c3_storm_matrix ~jobs ~quick ());
  ]

let all ?(jobs = 1) ~quick () = List.map (fun (_, grid) -> grid ~quick ~jobs) grids

let print_table t =
  Printf.printf "\n=== %s: %s ===\n" t.id t.title;
  Ba_util.Table.print ~headers:t.headers t.rows;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) t.notes;
  print_newline ()

let run_all ?(jobs = 1) ~quick () =
  List.iter (fun (_, grid) -> print_table (grid ~quick ~jobs)) grids
