(** The paper's evaluation, reproduced.

    "Block Acknowledgment" is a design-and-proof paper with no numbered
    tables or figures, so each experiment here regenerates one of its
    quantitative or qualitative claims (the mapping is documented in
    DESIGN.md and the measured outcomes in EXPERIMENTS.md):

    - {b T1} — the introduction's failure scenario: replayed against
      bounded go-back-N (violates safety) and block acknowledgment
      (does not).
    - {b T2} — mechanised Sections III–V: exhaustive state exploration
      verifying assertions 6–8 and progress, including that [n = 2w]
      works and [n = 2w - 1] does not.
    - {b F1} — goodput vs loss rate for block ack and the baselines
      (the "maintains the data transmission capability" claim).
    - {b F2} — goodput vs window size.
    - {b F3} — recovery time after a lost block acknowledgment covering
      [b] messages: the Section II single timer pays ~[b * rto], the
      Section IV per-message timers pay ~[rto] (Section IV's claim).
    - {b F4} — tolerance of reorder: goodput vs delay jitter.
    - {b T3} — acknowledgment economy: acks sent per message delivered
      and ack bytes per payload byte (Section VI's "small added
      expense").
    - {b T4} — the Stenning/Lam–Shankar real-time constraint: goodput
      vs sequence-number-domain size (the introduction's "adversely
      affect the rate of data transfer" claim).
    - {b F5} — the Section VI slot-reuse extension vs the plain
      protocol.

    Every experiment is deterministic given its seeds. *)

type table = {
  id : string;  (** e.g. "F3" *)
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;  (** expectations/caveats printed under the table *)
}

val t1_intro_scenario : unit -> table
val t2_verification : ?jobs:int -> quick:bool -> unit -> table
val f1_goodput_vs_loss : ?jobs:int -> quick:bool -> unit -> table
val f2_goodput_vs_window : ?jobs:int -> quick:bool -> unit -> table
val f3_recovery_time : ?jobs:int -> quick:bool -> unit -> table
val f4_reorder_tolerance : ?jobs:int -> quick:bool -> unit -> table
val t3_ack_overhead : ?jobs:int -> quick:bool -> unit -> table

val f6_latency : ?jobs:int -> quick:bool -> unit -> table
(** Delivery-latency percentiles: head-of-line blocking under loss, per
    protocol. Derived claim (the in-order delivery requirement shared by
    all the paper's protocols makes recovery speed visible in the tail). *)

val t4_stenning_domain : ?jobs:int -> quick:bool -> unit -> table

val f5_slot_reuse : ?jobs:int -> quick:bool -> unit -> table

val t5_piggyback : ?jobs:int -> quick:bool -> unit -> table
(** Derived: acknowledgment frames saved by piggybacking block acks on
    reverse-direction data in a duplex session ({!Blockack.Duplex}). *)

val a1_adaptive_rto : ?jobs:int -> quick:bool -> unit -> table
(** Extension ablation: fixed vs Jacobson/Karels adaptive timeout under a
    mis-estimated round trip. Not from the paper; quantifies its "accurate
    timeout mechanisms" assumption (Section VI). *)

val a2_dynamic_window : ?jobs:int -> quick:bool -> unit -> table
(** Extension ablation: Section VI's "variable size windows" remark —
    fixed vs AIMD windows through a congestible bottleneck queue. *)

val a3_fairness : ?jobs:int -> quick:bool -> unit -> table
(** Extension ablation: two flows sharing the bottleneck; AIMD converges
    to an even split where oversized fixed windows fight. *)

val s1_scaling : ?jobs:int -> quick:bool -> unit -> table
(** Scaling the multi-connection fabric: N homogeneous flows (N in 1..256,
    a subset when [quick]) of blockack-multi, go-back-N and selective
    repeat contend for one fixed-capacity bottleneck ({!Ba_proto.Fabric}).
    Reports aggregate goodput, pooled per-flow latency percentiles,
    Jain's fairness index and shared-queue drops per (N, protocol). *)

val c1_chaos_matrix : ?jobs:int -> quick:bool -> unit -> table
(** Robustness matrix: block acknowledgment and the four baselines, each
    swept through every {!Ba_verify.Chaos} fault class (bursty loss,
    duplication, corruption, outages, reordering). Cells count safety
    violations and stuck runs; the robust protocols are expected to be
    clean everywhere, bounded go-back-N to break under reorder, and the
    unvalidated baselines to deliver corrupted payloads. *)

val s3_churn_soak : ?jobs:int -> quick:bool -> unit -> table
(** Churning fabric under composed storms: seed-derived arrival/departure
    schedules ({!Ba_proto.Fabric.churn}) with a memory budget below the
    lifetime sum of reservations, so admission must reclaim departed
    flows' budget for the returning cohort. Reports pre- vs post-churn
    goodput and the peak-memory/budget margin per seed. *)

val s4_sharded_scale : ?jobs:int -> quick:bool -> unit -> table
(** S1 carried two decades further: 1k -> 100k flows (smaller when
    [quick]) through the cell-partitioned fabric ({!Ba_proto.Shard}),
    the shared bottleneck realised as per-cell capacity leases
    reconciled at epoch barriers. Only deterministic columns (delivered,
    completion, ticks, goodput, lease counters); the machine-dependent
    flows/sec and bytes-per-flow live in [BENCH_campaigns.json]. *)

val c2_crash_recovery : ?jobs:int -> quick:bool -> unit -> table
(** Crash–restart recovery: the {!Ba_verify.Chaos.Crash} class (sender,
    receiver and staggered double crashes, seed-derived) against the
    block-ack senders with incarnation epochs on, plus the epoch-less
    "naive restart" negative control. Reports the safety/recovery
    verdict alongside the recovery bill: restarts, resync handshake
    frames, restart-to-recovery ticks and retransmitted bytes. *)

val c3_storm_matrix : ?jobs:int -> quick:bool -> unit -> table
(** The {!Ba_verify.Chaos.Storm} compound class next to its ingredients
    ([Crash] and [Overload]) for both block-ack senders: verdicts plus
    the recovery bill, showing what composing the faults adds over each
    alone. One replay key reproduces a storm ([ba_chaos --replay]). *)

val grids : (string * (quick:bool -> jobs:int -> table)) list
(** All experiments in presentation order as [(id, grid)] closures, so a
    driver can time each grid individually (the bench harness records
    per-grid wall clock in [BENCH_campaigns.json]). *)

val all : ?jobs:int -> quick:bool -> unit -> table list
(** All experiments in presentation order. *)

val print_table : table -> unit
(** Render one experiment to stdout in the EXPERIMENTS.md format. *)

val run_all : ?jobs:int -> quick:bool -> unit -> unit
(** Generate and print every experiment. [quick] shrinks message counts
    and seed sets (useful in CI); the shapes remain the same.

    Every experiment is a grid of independent simulations, so each table
    farms its cells to a {!Ba_parallel.Pool} of [jobs] domains (default
    1). Ordered collection plus one engine and one seed-derived RNG
    stream per cell make the output byte-identical at any [jobs]. *)
