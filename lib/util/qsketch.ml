(* Bounded weighted-centroid quantile sketch. Centroids live in two
   parallel arrays sorted by value; one spare slot lets [add] insert
   first and collapse after, so the arrays never reallocate. *)

type t = {
  cap : int;
  values : float array;  (* length cap + 1, slots [0, n) in use *)
  weights : float array;
  mutable n : int;
  mutable count : int;
  mutable lo : float;
  mutable hi : float;
}

let create ?(capacity = 64) () =
  if capacity < 8 then invalid_arg "Qsketch.create: capacity must be >= 8";
  {
    cap = capacity;
    values = Array.make (capacity + 1) 0.;
    weights = Array.make (capacity + 1) 0.;
    n = 0;
    count = 0;
    lo = infinity;
    hi = neg_infinity;
  }

let capacity t = t.cap
let count t = t.count
let nodes t = t.n

(* Two float arrays of cap+1 slots (8 bytes each) plus the scalar
   header — a constant, which is the whole point. *)
let mem_bytes t = (16 * t.cap) + 64

let min t = if t.count = 0 then invalid_arg "Qsketch.min: empty" else t.lo
let max t = if t.count = 0 then invalid_arg "Qsketch.max: empty" else t.hi

(* Collapse the adjacent pair with the smallest gap * combined-weight
   cost (ties: lowest index, for determinism). Weighting the gap by the
   pair's mass keeps heavy centroids from swallowing their neighbours,
   which is what holds the rank error down on sorted streams. *)
let collapse t =
  let best = ref 0 and best_cost = ref infinity in
  for i = 0 to t.n - 2 do
    let cost = (t.values.(i + 1) -. t.values.(i)) *. (t.weights.(i) +. t.weights.(i + 1)) in
    if cost < !best_cost then begin
      best_cost := cost;
      best := i
    end
  done;
  let i = !best in
  let w = t.weights.(i) +. t.weights.(i + 1) in
  t.values.(i) <-
    ((t.values.(i) *. t.weights.(i)) +. (t.values.(i + 1) *. t.weights.(i + 1))) /. w;
  t.weights.(i) <- w;
  Array.blit t.values (i + 2) t.values (i + 1) (t.n - i - 2);
  Array.blit t.weights (i + 2) t.weights (i + 1) (t.n - i - 2);
  t.n <- t.n - 1

let insert t x w =
  (* Binary search for the first slot whose value exceeds x. *)
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.values.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  Array.blit t.values i t.values (i + 1) (t.n - i);
  Array.blit t.weights i t.weights (i + 1) (t.n - i);
  t.values.(i) <- x;
  t.weights.(i) <- w;
  t.n <- t.n + 1;
  if t.n > t.cap then collapse t

let add t x =
  t.count <- t.count + 1;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  insert t x 1.

(* Midpoint-rank interpolation: centroid i represents its weight
   centred at cumulative rank (sum of earlier weights) + w_i / 2. *)
let quantile t q =
  if t.count = 0 then invalid_arg "Qsketch.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Qsketch.quantile: q out of [0, 1]";
  if t.n = 1 then t.values.(0)
  else begin
    let target = q *. float_of_int t.count in
    let total = Array.fold_left ( +. ) 0. (Array.sub t.weights 0 t.n) in
    let rec walk i cum =
      if i >= t.n then begin
        (* Above the last centroid's midpoint: interpolate toward the
           exact maximum. *)
        let prev = total -. (t.weights.(t.n - 1) /. 2.) in
        let span = total -. prev in
        let frac = if span <= 0. then 1. else (target -. prev) /. span in
        t.values.(t.n - 1) +. (frac *. (t.hi -. t.values.(t.n - 1)))
      end
      else begin
        let mid = cum +. (t.weights.(i) /. 2.) in
        if target <= mid then
          if i = 0 then
            (* Below the first centroid's midpoint: interpolate from the
               exact minimum. *)
            let frac = if mid <= 0. then 1. else target /. mid in
            t.lo +. (frac *. (t.values.(0) -. t.lo))
          else begin
            let prev = cum -. (t.weights.(i - 1) /. 2.) in
            let span = mid -. prev in
            let frac = if span <= 0. then 1. else (target -. prev) /. span in
            t.values.(i - 1) +. (frac *. (t.values.(i) -. t.values.(i - 1)))
          end
        else walk (i + 1) (cum +. t.weights.(i))
      end
    in
    let v = walk 0 0. in
    (* Clamp: interpolation can't legitimately leave the observed range. *)
    if v < t.lo then t.lo else if v > t.hi then t.hi else v
  end

let merge a b =
  let cap = Stdlib.max a.cap b.cap in
  let m = create ~capacity:cap () in
  (* Two-pointer merge keeps the combined centroid list sorted, so the
     result is independent of argument mutation order; inserting in
     value order also makes the collapse sequence canonical. *)
  let i = ref 0 and j = ref 0 in
  while !i < a.n || !j < b.n do
    let take_a =
      !j >= b.n || (!i < a.n && a.values.(!i) <= b.values.(!j))
    in
    if take_a then begin
      insert m a.values.(!i) a.weights.(!i);
      incr i
    end
    else begin
      insert m b.values.(!j) b.weights.(!j);
      incr j
    end
  done;
  m.count <- a.count + b.count;
  m.lo <- Stdlib.min a.lo b.lo;
  m.hi <- Stdlib.max a.hi b.hi;
  m

let pp ppf t =
  if t.count = 0 then Format.pp_print_string ppf "n=0 p50=- p90=- p99=-"
  else
    Format.fprintf ppf "n=%d p50=%.3f p90=%.3f p99=%.3f" t.count (quantile t 0.5)
      (quantile t 0.9) (quantile t 0.99)
