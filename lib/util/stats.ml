type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* The Welford accumulators and the retained samples live in unboxed
   float arrays: a record mixing ints and mutable floats boxes every
   float store, which made each [add] — one per delivered message —
   allocate. Indices into [acc]: mean, m2, min, max. *)
type t = {
  mutable n : int;
  acc : float array;
  mutable buf : float array;  (* samples, first [n] valid *)
}

let create () = { n = 0; acc = [| 0.; 0.; infinity; neg_infinity |]; buf = Array.make 16 0. }

let add t x =
  if t.n = Array.length t.buf then begin
    let nb = Array.make (2 * t.n) 0. in
    Array.blit t.buf 0 nb 0 t.n;
    t.buf <- nb
  end;
  t.buf.(t.n) <- x;
  t.n <- t.n + 1;
  let delta = x -. t.acc.(0) in
  t.acc.(0) <- t.acc.(0) +. (delta /. float_of_int t.n);
  t.acc.(1) <- t.acc.(1) +. (delta *. (x -. t.acc.(0)));
  if x < t.acc.(2) then t.acc.(2) <- x;
  if x > t.acc.(3) then t.acc.(3) <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.acc.(0)
let variance t = if t.n < 2 then 0. else t.acc.(1) /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

(* In-place monomorphic heapsort: [Array.sort compare] on a float
   array boxes both operands of every comparison (the polymorphic
   traversal cannot see the unboxed representation), which dominated
   summary-time allocation. Ascending order, identical to
   [Array.sort compare] for the finite samples stored here. *)
let float_sort (a : float array) =
  let n = Array.length a in
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && a.(l + 1) > a.(l) then l + 1 else l in
      if a.(c) > a.(i) then begin
        swap c i;
        sift c len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for len = n - 1 downto 1 do
    swap 0 len;
    sift 0 len
  done

let sorted_samples t =
  let a = Array.sub t.buf 0 t.n in
  float_sort a;
  a

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let samples t = Array.to_list (Array.sub t.buf 0 t.n)

let percentile t q = percentile_of_sorted (sorted_samples t) q

let summary t =
  if t.n = 0 then invalid_arg "Stats.summary: empty";
  let a = sorted_samples t in
  {
    count = t.n;
    mean = mean t;
    stddev = stddev t;
    min = t.acc.(2);
    max = t.acc.(3);
    p50 = percentile_of_sorted a 0.5;
    p90 = percentile_of_sorted a 0.9;
    p99 = percentile_of_sorted a 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

let mean_of xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let ci95 xs =
  let n = List.length xs in
  let m = mean_of xs in
  if n < 2 then (m, 0.)
  else begin
    let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1) in
    (m, 1.96 *. sqrt (var /. float_of_int n))
  end
