(** Aligned ASCII tables for experiment reports.

    Every experiment in [bench/main.ml] and the CLI tools prints its rows
    through this module so the output matches EXPERIMENTS.md. *)

type align = Left | Right

val render : ?aligns:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with a header rule. All rows
    must have the same arity as [headers]; missing cells are padded empty.
    Numeric-looking columns default to right alignment unless [aligns] is
    given. *)

val print : ?aligns:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

type sink

val stream : ?aligns:align list -> headers:string list -> unit -> sink
(** Constant-memory alternative to {!print} for long-running reports
    (the soak path): prints the header and rule immediately and fixes
    every column width at its header's width, so rows can be emitted as
    they are produced instead of being buffered for layout. A cell wider
    than its header overflows its column rather than re-laying the table
    out. [aligns] defaults to all-[Right] (the streaming caller knows
    its columns; there is no data to sniff). *)

val stream_row : sink -> string list -> unit
(** Print one row through the sink. Rows are padded or truncated to the
    header arity, like {!render}. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting used across reports (default 3 decimals). *)
