(** Minimal JSON emission (no parsing, no dependencies).

    Just enough to write machine-readable benchmark artefacts like
    [BENCH_campaigns.json]: a value type, correct string escaping, and a
    deterministic two-space-indented renderer, so diffs across PRs are
    stable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** rendered with ["%.6g"]; non-finite becomes [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list  (** keys emitted in the given order *)

val to_string : t -> string
(** Render with two-space indentation and a trailing newline. *)

val to_channel : out_channel -> t -> unit
