type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
