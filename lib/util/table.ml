type align = Left | Right

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%' || c = 'x') s

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~headers rows =
  let arity = List.length headers in
  let normalize row =
    let row = if List.length row > arity then List.filteri (fun i _ -> i < arity) row else row in
    row @ List.init (arity - List.length row) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ | None ->
        (* Default: a column is right-aligned when every body cell looks numeric. *)
        List.mapi
          (fun i _ ->
            let numeric =
              rows <> [] && List.for_all (fun row -> let c = List.nth row i in c = "" || looks_numeric c) rows
            in
            if numeric then Right else Left)
          headers
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

(* Streaming variant: widths are fixed at the header widths up front, so
   rows print as they are produced and the table costs O(1) memory in
   the row count (a cell wider than its header just overflows its
   column). [render] cannot do this — it sizes columns from the data. *)
type sink = { s_widths : int list; s_aligns : align list }

let stream ?aligns ~headers () =
  let s_widths = List.map String.length headers in
  let s_aligns =
    match aligns with
    | Some a when List.length a = List.length headers -> a
    | Some _ | None -> List.map (fun _ -> Right) headers
  in
  print_string
    (String.concat "  " (List.map2 (fun (w, a) c -> pad a w c) (List.combine s_widths s_aligns) headers));
  print_char '\n';
  print_string (String.concat "  " (List.map (fun w -> String.make w '-') s_widths));
  print_char '\n';
  { s_widths; s_aligns }

let stream_row sink row =
  let arity = List.length sink.s_widths in
  let row = if List.length row > arity then List.filteri (fun i _ -> i < arity) row else row in
  let row = row @ List.init (arity - List.length row) (fun _ -> "") in
  print_string
    (String.concat "  "
       (List.map2 (fun (w, a) c -> pad a w c) (List.combine sink.s_widths sink.s_aligns) row));
  print_char '\n'

let fmt_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
