(** Constant-space streaming quantile sketch.

    A bounded set of weighted centroids (a P²-style successor: instead
    of five fixed markers, up to [capacity] of them, adapting to the
    data), so percentile telemetry over an arbitrarily long stream
    costs O(capacity) memory — the soak harness's alternative to
    {!Stats}, whose percentiles retain every sample.

    Adding a sample inserts a weight-1 centroid in value order; when
    the sketch would exceed [capacity], the adjacent pair with the
    smallest [gap * combined-weight] cost collapses into its weighted
    mean. Everything is deterministic — no randomness — so sketches
    are reproducible and two runs of the same stream are equal.

    Sketches are {e mergeable}: [merge a b] summarises the
    concatenation of the two streams in the same bounded space, which
    is what lets per-round (or per-domain) telemetry fold into one
    campaign-wide summary without ever materialising the samples.

    Accuracy: with [count <= capacity] no collapse has happened and
    quantiles are exact order statistics (midpoint convention). Past
    that, quantiles are interpolated between centroid means; the tests
    pin a rank error of at most [3 / capacity] (i.e. ~4.7% of the
    population at the default capacity 64) on uniform, heavy-tailed
    and fully sorted adversarial streams, merged or not. [count],
    [min] and [max] are always exact. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty sketch. [capacity] (default 64) is the maximum number
    of retained centroids; at least 8. Raises [Invalid_argument] below
    that. *)

val capacity : t -> int

val add : t -> float -> unit
(** O(capacity) worst case (an array shift plus one collapse). *)

val count : t -> int
(** Samples observed — exact. *)

val nodes : t -> int
(** Centroids currently retained ([<= capacity]). Saturates at
    [capacity] and never grows past it — the flat-memory witness the
    soak verdict checks. *)

val mem_bytes : t -> int
(** Bytes pinned by the sketch's payload state: a constant
    [16 * capacity + 64] regardless of how many samples have been
    added — the point of the structure. *)

val min : t -> float
(** Exact. Raises [Invalid_argument] when empty. *)

val max : t -> float
(** Exact. Raises [Invalid_argument] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: interpolated between centroid
    means under the midpoint-rank convention; clamped to [min]/[max]
    at the ends. Raises [Invalid_argument] when empty or [q] out of
    range. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sketch over both streams, with capacity
    [Stdlib.max (capacity a) (capacity b)]. Inputs are unchanged.
    Deterministic, commutative, and associative up to the documented
    rank-error bound (the centroid sets of [(a ⊕ b) ⊕ c] and
    [a ⊕ (b ⊕ c)] can differ, their quantiles only within the
    bound). *)

val pp : Format.formatter -> t -> unit
(** [n=… p50=… p90=… p99=…] one-liner (dashes when empty). *)
