(** Binary min-heap, the priority queue behind the simulation engine.

    Elements are ordered by a user comparison supplied at creation; ties
    are broken by insertion order (FIFO), which the event queue relies on
    for deterministic scheduling. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap. [cmp] must be a total order;
    smaller elements pop first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum, FIFO among equals. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** [filter_in_place t pred] drops every element failing [pred] and
    re-heapifies in O(length). Surviving elements keep their insertion
    stamps, so FIFO order among equals is preserved — the engine relies
    on this when compacting lazily-cancelled events. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: contents in pop order. *)
