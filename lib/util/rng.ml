(* xoshiro256** seeded through splitmix64, bit-for-bit identical to the
   textbook int64 formulation — but computed on plain-int 32-bit halves
   (hi, lo per 64-bit word) so that drawing allocates nothing. A
   [mutable int64] state would box every intermediate of every draw
   (~10 boxes per [bits64]), which put the generator at the top of the
   data path's allocation profile: links sample it per frame for loss
   and delay, and the workload seeds a fresh generator per payload. *)

type t = {
  (* xoshiro256** state, one (hi, lo) pair of 32-bit halves per word *)
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* last output word; lets [next] produce 64 bits without a tuple *)
  mutable r_hi : int;
  mutable r_lo : int;
  (* splitmix64 state; only live during [create] *)
  mutable sm_h : int;
  mutable sm_l : int;
}

let mask32 = 0xFFFFFFFF

(* One splitmix64 draw: advances (sm_h, sm_l), leaves the output word in
   (r_hi, r_lo). The two 64x64-bit multiplies keep every partial product
   under 2^49 by splitting the low halves into 16-bit limbs. *)
let sm_next t =
  let lo = t.sm_l + 0x7F4A7C15 in
  let hi = (t.sm_h + 0x9E3779B9 + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.sm_h <- hi;
  t.sm_l <- lo;
  (* z ^= z >>> 30 *)
  let zh = hi lxor (hi lsr 30)
  and zl = lo lxor (((lo lsr 30) lor ((hi lsl 2) land mask32)) land mask32) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let bh = 0xBF58476D and bl = 0x1CE4E5B9 in
  let al0 = zl land 0xFFFF and al1 = zl lsr 16 in
  let bl0 = bl land 0xFFFF and bl1 = bl lsr 16 in
  let p0 = al0 * bl0 and p1 = (al1 * bl0) + (al0 * bl1) and p2 = al1 * bl1 in
  let mid = p0 + ((p1 land 0xFFFF) lsl 16) in
  let lo' = mid land mask32 in
  let carry = (mid lsr 32) + (p1 lsr 16) + p2 in
  let hi' =
    (carry + ((al0 * bh) + ((al1 * (bh land 0xFFFF)) lsl 16))
    + (((zh land 0xFFFF) * bl) + (((zh lsr 16) * (bl land 0xFFFF)) lsl 16)))
    land mask32
  in
  (* z ^= z >>> 27 *)
  let zh = hi' lxor (hi' lsr 27)
  and zl = lo' lxor (((lo' lsr 27) lor ((hi' lsl 5) land mask32)) land mask32) in
  (* z *= 0x94D049BB133111EB *)
  let bh = 0x94D049BB and bl = 0x133111EB in
  let al0 = zl land 0xFFFF and al1 = zl lsr 16 in
  let bl0 = bl land 0xFFFF and bl1 = bl lsr 16 in
  let p0 = al0 * bl0 and p1 = (al1 * bl0) + (al0 * bl1) and p2 = al1 * bl1 in
  let mid = p0 + ((p1 land 0xFFFF) lsl 16) in
  let lo' = mid land mask32 in
  let carry = (mid lsr 32) + (p1 lsr 16) + p2 in
  let hi' =
    (carry + ((al0 * bh) + ((al1 * (bh land 0xFFFF)) lsl 16))
    + (((zh land 0xFFFF) * bl) + (((zh lsr 16) * (bl land 0xFFFF)) lsl 16)))
    land mask32
  in
  (* z ^= z >>> 31 *)
  t.r_hi <- hi' lxor (hi' lsr 31);
  t.r_lo <- lo' lxor (((lo' lsr 31) lor ((hi' lsl 1) land mask32)) land mask32)

let create seed =
  let t =
    {
      s0h = 0; s0l = 0; s1h = 0; s1l = 0;
      s2h = 0; s2l = 0; s3h = 0; s3l = 0;
      r_hi = 0; r_lo = 0;
      (* the seed, sign-extended to 64 bits like [Int64.of_int] *)
      sm_h = (seed asr 32) land mask32;
      sm_l = seed land mask32;
    }
  in
  sm_next t;
  t.s0h <- t.r_hi;
  t.s0l <- t.r_lo;
  sm_next t;
  t.s1h <- t.r_hi;
  t.s1l <- t.r_lo;
  sm_next t;
  t.s2h <- t.r_hi;
  t.s2l <- t.r_lo;
  sm_next t;
  t.s3h <- t.r_hi;
  t.s3l <- t.r_lo;
  t

let copy t =
  {
    s0h = t.s0h; s0l = t.s0l; s1h = t.s1h; s1l = t.s1l;
    s2h = t.s2h; s2l = t.s2l; s3h = t.s3h; s3l = t.s3l;
    r_hi = t.r_hi; r_lo = t.r_lo; sm_h = t.sm_h; sm_l = t.sm_l;
  }

(* One xoshiro256** step: result = rotl(s1 * 5, 7) * 9, then the state
   transition. Leaves the 64-bit result in (r_hi, r_lo). *)
let next t =
  let h = t.s1h and l = t.s1l in
  (* a = s1 * 5 = s1 + (s1 << 2) *)
  let lo = l + ((l lsl 2) land mask32) in
  let ah = (h + (((h lsl 2) lor (l lsr 30)) land mask32) + (lo lsr 32)) land mask32 in
  let al = lo land mask32 in
  (* b = rotl(a, 7) *)
  let bh = ((ah lsl 7) lor (al lsr 25)) land mask32
  and bl = ((al lsl 7) lor (ah lsr 25)) land mask32 in
  (* r = b * 9 = b + (b << 3) *)
  let lo = bl + ((bl lsl 3) land mask32) in
  t.r_hi <- (bh + (((bh lsl 3) lor (bl lsr 29)) land mask32) + (lo lsr 32)) land mask32;
  t.r_lo <- lo land mask32;
  (* state transition *)
  let th = ((h lsl 17) lor (l lsr 15)) land mask32 and tl = (l lsl 17) land mask32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor h;
  t.s3l <- t.s3l lxor l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor th;
  t.s2l <- t.s2l lxor tl;
  (* s3 = rotl(s3, 45) = rotl(swap halves, 13) *)
  let h3 = t.s3h and l3 = t.s3l in
  t.s3h <- ((l3 lsl 13) lor (h3 lsr 19)) land mask32;
  t.s3l <- ((h3 lsl 13) lor (l3 lsr 19)) land mask32

let bits64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.r_hi) 32) (Int64.of_int t.r_lo)

let split t = create (Int64.to_int (bits64 t) land max_int)

(* Non-negative 61-bit value: [1 lsl 61] is still a valid OCaml int, so
   the rejection bound below cannot overflow. *)
let bit_width = 61

let bits t =
  next t;
  (t.r_hi lsl 29) lor (t.r_lo lsr 3)

(* Top-level (closure-free) rejection loop: a local [let rec draw ()]
   would allocate a closure on every [int] call. *)
let rec reject t bound limit =
  let v = bits t in
  if v < limit then v mod bound else reject t bound limit

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let max = 1 lsl bit_width in
  let limit = max - (max mod bound) in
  reject t bound limit

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound = bound *. (float_of_int (bits t) /. float_of_int (1 lsl bit_width))

let bool t =
  next t;
  t.r_lo land 1 = 1

let bernoulli t p = if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let geometric t p =
  if p >= 1. then 0
  else if p <= 0. then invalid_arg "Rng.geometric: p must be positive"
  else
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
