type 'a entry = { value : 'a; stamp : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_stamp : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; data = [||]; size = 0; next_stamp = 0 } |> fun t ->
  ignore capacity;
  t

let length t = t.size
let is_empty t = t.size = 0

(* Entry order: user comparison first, insertion stamp breaks ties. *)
let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else compare a.stamp b.stamp

let grow t entry =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity entry in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let entry = { value; stamp = t.next_stamp } in
  t.next_stamp <- t.next_stamp + 1;
  if t.size = Array.length t.data then grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top.value
  end

let peek t = if t.size = 0 then None else Some t.data.(0).value

let clear t =
  t.size <- 0;
  t.data <- [||]

let filter_in_place t pred =
  let kept = ref [] in
  for i = t.size - 1 downto 0 do
    let e = t.data.(i) in
    if pred e.value then kept := e :: !kept
  done;
  let kept = Array.of_list !kept in
  let size = Array.length kept in
  (* Entries keep their insertion stamps, so FIFO order among equal keys
     survives the rebuild. Floyd's bottom-up heapify is O(size). *)
  let shadow = { t with data = kept; size } in
  for i = (size / 2) - 1 downto 0 do
    sift_down shadow i
  done;
  t.data <- kept;
  t.size <- size

let to_sorted_list t =
  let copy =
    {
      cmp = t.cmp;
      data = Array.sub t.data 0 t.size;
      size = t.size;
      next_stamp = t.next_stamp;
    }
  in
  let rec drain acc = match pop copy with None -> List.rev acc | Some v -> drain (v :: acc) in
  drain []
