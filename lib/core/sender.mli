(** Block-acknowledgment sender with the simple timeout (Sections II + V).

    Keeps a window of at most [w] outstanding payloads, retransmits the
    oldest outstanding message ([na]) when its single timer expires, and
    processes block acknowledgments [(lo, hi)] that may cover any range
    of outstanding messages. The timer restarts on every data
    transmission, so "expired" means no data was sent for a full [rto] —
    with [rto > 2 * max link delay + ack_coalesce] that implies no copy
    of any message or acknowledgment is still in transit, which is the
    paper's timeout soundness condition.

    Sequence numbers are full-width internally; the wire carries them
    through {!Seqcodec} (modulo [2w] when the config sets a modulus). *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  tx:(Ba_proto.Wire.data -> unit) ->
  next_payload:(unit -> string option) ->
  t

val pump : t -> unit
(** Pull payloads from [next_payload] while the window has room, sending
    each immediately. Called automatically after window-opening acks;
    call it once after setup, and again if the supplier gains new data. *)

val on_ack : t -> Ba_proto.Wire.ack -> unit
(** Process a (possibly stale or duplicate) block acknowledgment. *)

val na : t -> int
(** Lowest unacknowledged sequence number. *)

val ns : t -> int
(** Next fresh sequence number. *)

val outstanding : t -> int
(** [ns - na], between 0 and the window size. *)

val is_done : t -> bool
(** Supplier exhausted and nothing outstanding. *)

val retransmissions : t -> int

val acked_total : t -> int
(** Messages acknowledged so far (= [na]). *)

val clamp_window : t -> int -> unit
(** Cap the effective window (fabric backpressure); [n >= window]
    removes the clamp, [n < 1] raises. Composes with [tx_budget] —
    the minimum wins — and survives crash–restart. *)

val window_clamp : t -> int option
(** The clamp currently in force, if any. *)

val buffered_bytes : t -> int
(** Total payload bytes in the retransmit buffer (memory accounting). *)

(** {2 Crash–restart lifecycle}

    [crash] wipes the volatile state — window buffers, [na]/[ns], all
    timers, retransmission-frontier holds. Stable storage keeps the
    incarnation epoch (with [resync_epochs]) and the application outbox
    ({!Ba_proto.Source} can replay any issued payload). While down,
    frames are ignored and [pump] is a no-op.

    [restart] with [resync_epochs]: bump the epoch and run the REQ → POS
    → FIN handshake; on POS the sender aligns [na = ns = pos], rewinds
    the outbox there and resumes. Without it (negative control), resume
    blind from position 0 with the old epoch. *)

val crash : t -> unit
val restart : t -> unit
val alive : t -> bool
val epoch : t -> int

val syncing : t -> bool
(** Restarted and still awaiting the receiver's POS. *)

val stale_epoch_dropped : t -> int
(** Acknowledgments rejected for carrying a dead incarnation's epoch. *)

val resync_rounds : t -> int
(** Handshake frames (REQ + FIN) sent, including retries. *)

val restarts : t -> int
