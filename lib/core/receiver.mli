(** Block-acknowledgment receiver (Sections II + V).

    Buffers out-of-order data messages in a window of [w] slots, delivers
    payloads to the application strictly in order, and acknowledges each
    accepted message exactly once, as part of one block acknowledgment
    [(nr, vr - 1)] covering a maximal contiguous run (actions 3–5).
    Already-accepted duplicates are re-acknowledged with a singleton
    [(v, v)] so a sender whose acknowledgment was lost can make progress
    (action 3's first branch).

    With [ack_coalesce > 0] the receiver holds a completed run open for
    that many ticks before flushing, letting a single acknowledgment
    cover data that arrives close together — the "one ack, many
    messages" behaviour the paper highlights over go-back-N. *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  tx:(Ba_proto.Wire.ack -> unit) ->
  deliver:(string -> unit) ->
  t

val on_data : t -> Ba_proto.Wire.data -> unit

val nr : t -> int
(** Next sequence number to accept; everything below is delivered. *)

val vr : t -> int
(** Upper end (exclusive) of the received-but-unacknowledged run. *)

val buffered : t -> int
(** Out-of-order payloads currently held. *)

val buffered_bytes : t -> int
(** Total payload bytes in the reassembly buffer (memory accounting). *)

val pressure_dropped : t -> int
(** Fresh in-window frames refused because the [rx_budget] was full.
    Never acknowledged, so the sender's timer retransmits them — a
    budget drop is behaviorally a channel loss. *)

val pressure_evicted : t -> int
(** Buffered out-of-order frames evicted by [Drop_furthest] to admit a
    frame nearer the delivery frontier. Likewise never acknowledged. *)

val acks_sent : t -> int
val dup_acks_sent : t -> int
(** Singleton re-acknowledgments of old duplicates (subset of
    [acks_sent]). *)

val corrupt_dropped : t -> int
(** Data frames discarded because their checksum failed
    ({!Ba_proto.Wire.data_ok}): never delivered, never acknowledged. *)

val flush : t -> unit
(** Force out any pending coalesced acknowledgment now. *)

(** {2 Crash–restart lifecycle}

    [crash] wipes the volatile state: the out-of-order buffer, [vr], all
    timers. The delivered count [nr] survives (delivery to the
    application is durable by definition — the bytes are in its file),
    as does the incarnation epoch when [resync_epochs] is set. While
    down, every arriving frame is ignored.

    [restart] with [resync_epochs]: bump the epoch and announce the
    stable position with a POS handshake frame, retried on a timer until
    the sender confirms with FIN (or implicitly, with fresh same-epoch
    data). Frames from earlier incarnations are rejected by epoch.

    [restart] without [resync_epochs] (negative control): come back with
    [nr = vr = 0] and no handshake — the stale-state failure mode. *)

val crash : t -> unit
val restart : t -> unit

val restore : t -> epoch:int -> pos:int -> unit
(** Rebuild a {e fresh} receiver as the next incarnation of a dead
    process: adopt the persisted delivered count [pos] and the new
    [epoch] (persisted epoch + 1 — the caller bumps, exactly as
    [restart] would have), then announce POS with retries until the
    sender confirms. This is [crash] + [restart] for the case where the
    process itself died and its successor only has stable storage — the
    real-transport server uses it after a kill. Raises
    [Invalid_argument] unless [resync_epochs] is set, [epoch >= 1],
    [pos >= 0] and the receiver is still pristine (nothing delivered,
    nothing buffered, epoch 0). *)

val alive : t -> bool
val epoch : t -> int
val syncing : t -> bool
(** Restarted and still announcing POS (no FIN / fresh data yet). *)

val stale_epoch_dropped : t -> int
(** Frames rejected because they carried an earlier incarnation's epoch. *)

val resync_rounds : t -> int
(** Handshake frames (POS) sent, including retries. *)

val restarts : t -> int
