(** Block-acknowledgment receiver (Sections II + V).

    Buffers out-of-order data messages in a window of [w] slots, delivers
    payloads to the application strictly in order, and acknowledges each
    accepted message exactly once, as part of one block acknowledgment
    [(nr, vr - 1)] covering a maximal contiguous run (actions 3–5).
    Already-accepted duplicates are re-acknowledged with a singleton
    [(v, v)] so a sender whose acknowledgment was lost can make progress
    (action 3's first branch).

    With [ack_coalesce > 0] the receiver holds a completed run open for
    that many ticks before flushing, letting a single acknowledgment
    cover data that arrives close together — the "one ack, many
    messages" behaviour the paper highlights over go-back-N. *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  tx:(Ba_proto.Wire.ack -> unit) ->
  deliver:(string -> unit) ->
  t

val on_data : t -> Ba_proto.Wire.data -> unit

val nr : t -> int
(** Next sequence number to accept; everything below is delivered. *)

val vr : t -> int
(** Upper end (exclusive) of the received-but-unacknowledged run. *)

val buffered : t -> int
(** Out-of-order payloads currently held. *)

val acks_sent : t -> int
val dup_acks_sent : t -> int
(** Singleton re-acknowledgments of old duplicates (subset of
    [acks_sent]). *)

val corrupt_dropped : t -> int
(** Data frames discarded because their checksum failed
    ({!Ba_proto.Wire.data_ok}): never delivered, never acknowledged. *)

val flush : t -> unit
(** Force out any pending coalesced acknowledgment now. *)
