(* Holds live in a pair of flat int arrays compacted in place: the old
   [hold list] re-allocated itself on every [prune] (one [List.filter]
   per pump call), which put the guard on the steady-loss allocation
   profile. A hold is a (cap, expiry) pair; [len] counts live entries.
   Expiries are in practice appended in nondecreasing order (the clock
   is monotonic and [hold_for] constant per sender), but nothing here
   assumes it — [prune] keeps every unexpired entry regardless of
   position, exactly like the [List.filter] it replaces. *)

type t = {
  engine : Ba_sim.Engine.t;
  mutable caps : int array;
  mutable expiries : int array;
  mutable len : int;
  mutable retry_armed : bool;
}

let initial_cap = 8

let create engine =
  {
    engine;
    caps = Array.make initial_cap 0;
    expiries = Array.make initial_cap 0;
    len = 0;
    retry_armed = false;
  }

(* Crash–restart support: holds protect in-flight copies of the dead
   incarnation, whose frames the restarted world rejects by epoch, so
   they are simply dropped. An already-armed retry fires harmlessly —
   it re-checks the (now empty) hold set. *)
let clear t = t.len <- 0

(* In-place stable compaction of the unexpired entries. Top-level
   recursive loops (here and below) rather than local refs/closures, so
   the per-pump guard checks allocate nothing. *)
let rec prune_from t now i j =
  if i >= t.len then t.len <- j
  else if t.expiries.(i) > now then begin
    if j <> i then begin
      t.caps.(j) <- t.caps.(i);
      t.expiries.(j) <- t.expiries.(i)
    end;
    prune_from t now (i + 1) (j + 1)
  end
  else prune_from t now (i + 1) j

let prune t = prune_from t (Ba_sim.Engine.now t.engine) 0 0

let note_retransmission t ~seq ~window ~hold_for =
  prune t;
  if t.len = Array.length t.caps then begin
    let cap = 2 * t.len in
    let caps = Array.make cap 0 in
    Array.blit t.caps 0 caps 0 t.len;
    t.caps <- caps;
    let expiries = Array.make cap 0 in
    Array.blit t.expiries 0 expiries 0 t.len;
    t.expiries <- expiries
  end;
  t.caps.(t.len) <- seq + window;
  t.expiries.(t.len) <- Ba_sim.Engine.now t.engine + hold_for;
  t.len <- t.len + 1

let rec min_over a len i acc = if i >= len then acc else min_over a len (i + 1) (min acc a.(i))

let frontier t =
  prune t;
  min_over t.caps t.len 0 max_int

let when_blocked t retry =
  prune t;
  if t.len > 0 && not t.retry_armed then begin
    let earliest = min_over t.expiries t.len 0 max_int in
    t.retry_armed <- true;
    ignore
      (Ba_sim.Engine.schedule_at t.engine ~at:earliest (fun () ->
           t.retry_armed <- false;
           retry ()))
  end
