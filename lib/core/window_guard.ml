type hold = { cap : int; expiry : int }

type t = {
  engine : Ba_sim.Engine.t;
  mutable holds : hold list;
  mutable retry_armed : bool;
}

let create engine = { engine; holds = []; retry_armed = false }

(* Crash–restart support: holds protect in-flight copies of the dead
   incarnation, whose frames the restarted world rejects by epoch, so
   they are simply dropped. An already-armed retry fires harmlessly —
   it re-checks the (now empty) hold list. *)
let clear t = t.holds <- []

let prune t =
  let now = Ba_sim.Engine.now t.engine in
  t.holds <- List.filter (fun h -> h.expiry > now) t.holds

let note_retransmission t ~seq ~window ~hold_for =
  prune t;
  t.holds <- { cap = seq + window; expiry = Ba_sim.Engine.now t.engine + hold_for } :: t.holds

let frontier t =
  prune t;
  List.fold_left (fun acc h -> min acc h.cap) max_int t.holds

let when_blocked t retry =
  prune t;
  match t.holds with
  | [] -> ()
  | _ :: _ when t.retry_armed -> ()
  | holds ->
      let earliest = List.fold_left (fun acc h -> min acc h.expiry) max_int holds in
      t.retry_armed <- true;
      ignore
        (Ba_sim.Engine.schedule_at t.engine ~at:earliest (fun () ->
             t.retry_armed <- false;
             retry ()))
