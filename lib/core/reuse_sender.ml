type t = {
  config : Config.t;
  lead : int;
  codec : Seqcodec.t;
  engine : Ba_sim.Engine.t;
  tx : Ba_proto.Wire.data -> unit;
  source : Ba_proto.Source.t;
  buffer : string Ba_util.Ring_buffer.t;  (* payloads of [na, ns), lead slots *)
  acked : unit Ba_util.Ring_buffer.t;
  timers : Ba_sim.Timer.t Ba_util.Ring_buffer.t;
  guard : Window_guard.t;
  mutable na : int;
  mutable ns : int;
  mutable unacked : int;
  mutable acked_total : int;
  mutable retransmissions : int;
}

let outstanding t = t.unacked

let rec on_timeout t seq =
  if seq >= t.na && seq < t.ns && not (Ba_util.Ring_buffer.mem t.acked seq) then begin
    t.retransmissions <- t.retransmissions + 1;
    (* The stale-copy decode band is [seq, seq + lead) here. *)
    if t.config.Config.wire_modulus <> None then
      Window_guard.note_retransmission t.guard ~seq ~window:t.lead
        ~hold_for:(Config.hold_duration t.config);
    transmit t seq
  end

and transmit t seq =
  match Ba_util.Ring_buffer.get t.buffer seq with
  | None -> invalid_arg "Reuse_sender.transmit: no buffered payload"
  | Some payload ->
      t.tx (Ba_proto.Wire.make_data ~seq:(Seqcodec.encode t.codec seq) ~payload);
      let timer =
        match Ba_util.Ring_buffer.get t.timers seq with
        | Some timer -> timer
        | None ->
            let timer =
              Ba_sim.Timer.create t.engine ~duration:t.config.Config.rto (fun () ->
                  on_timeout t seq)
            in
            Ba_util.Ring_buffer.set t.timers seq timer;
            timer
      in
      Ba_sim.Timer.start timer

(* The reuse rule: new data is admitted while fewer than [window]
   messages are unacknowledged AND the flight band stays within [lead]
   of na. The first bound is the classic resource limit; the second is
   what keeps the receiver's decode band sound. *)
let rec pump t =
  if t.unacked < t.config.Config.window && t.ns < t.na + t.lead then begin
    if t.ns >= Window_guard.frontier t.guard then
      Window_guard.when_blocked t.guard (fun () -> pump t)
    else begin
      match Ba_proto.Source.next t.source with
      | None -> ()
      | Some payload ->
          Ba_util.Ring_buffer.set t.buffer t.ns payload;
          t.ns <- t.ns + 1;
          t.unacked <- t.unacked + 1;
          transmit t (t.ns - 1);
          pump t
    end
  end

let is_done t = t.unacked = 0 && Ba_proto.Source.exhausted t.source

let create engine config ~lead ~tx ~next_payload =
  Config.validate config;
  if lead < config.Config.window then
    invalid_arg "Reuse_sender.create: lead must be >= window";
  (* Slot reuse decodes over the whole lead band, so the sound modulus
     bound is the stricter [2 * lead], not the plain window's [2 * w].
     Reject it here with the reuse-specific bound rather than letting
     the codec report a misleading "2*window" (its window IS the lead). *)
  (match config.Config.wire_modulus with
  | Some n when n < 2 * lead ->
      invalid_arg
        (Printf.sprintf "Reuse_sender.create: modulus %d < 2*lead=%d loses information" n
           (2 * lead))
  | Some _ | None -> ());
  let codec = Seqcodec.create ~window:lead ~wire_modulus:config.Config.wire_modulus in
  let source = Ba_proto.Source.create next_payload in
  {
    config;
    lead;
    codec;
    engine;
    tx;
    source;
    buffer = Ba_util.Ring_buffer.create lead;
    acked = Ba_util.Ring_buffer.create lead;
    timers = Ba_util.Ring_buffer.create lead;
    guard = Window_guard.create engine;
    na = 0;
    ns = 0;
    unacked = 0;
    acked_total = 0;
    retransmissions = 0;
  }

let stop_timer t seq =
  match Ba_util.Ring_buffer.get t.timers seq with
  | Some timer ->
      Ba_sim.Timer.stop timer;
      Ba_util.Ring_buffer.remove t.timers seq
  | None -> ()

let on_ack t a =
  if not (Ba_proto.Wire.ack_ok a) then ()
  else begin
  let { Ba_proto.Wire.lo; hi; _ } = a in
  let count = Seqcodec.span t.codec ~lo ~hi in
  for k = 0 to count - 1 do
    let wire = Seqcodec.shift t.codec lo k in
    let seq = Seqcodec.decode_ack t.codec ~na:t.na wire in
    if seq >= t.na && seq < t.ns && not (Ba_util.Ring_buffer.mem t.acked seq) then begin
      Ba_util.Ring_buffer.set t.acked seq ();
      stop_timer t seq;
      t.unacked <- t.unacked - 1;
      t.acked_total <- t.acked_total + 1
    end
  done;
  while Ba_util.Ring_buffer.mem t.acked t.na do
    Ba_util.Ring_buffer.remove t.acked t.na;
    Ba_util.Ring_buffer.remove t.buffer t.na;
    stop_timer t t.na;
    t.na <- t.na + 1
  done;
  pump t
  end

let na t = t.na
let ns t = t.ns
let retransmissions t = t.retransmissions
let acked_total t = t.acked_total

let buffered_bytes t =
  let n = ref 0 in
  Ba_util.Ring_buffer.iter (fun _ p -> n := !n + String.length p) t.buffer;
  !n
