module Common_receiver = struct
  type receiver = Receiver.t

  let create_receiver engine config ~tx ~deliver = Receiver.create engine config ~tx ~deliver
  let receiver_on_data = Receiver.on_data
  let ack_wire_bytes = Ba_proto.Wire.ack_bytes_block
  let receiver_crash = Receiver.crash
  let receiver_restart = Receiver.restart
  let receiver_resync_rounds = Receiver.resync_rounds
  let receiver_position = Receiver.nr
  let receiver_restore = Receiver.restore
  let receiver_mem_bytes = Receiver.buffered_bytes
  let receiver_pressure_dropped = Receiver.pressure_dropped
end

module Simple : Ba_proto.Protocol.S = struct
  let name = "blockack-simple"

  type sender = Sender.t

  include Common_receiver

  let create_sender = Sender.create
  let sender_on_ack = Sender.on_ack
  let sender_pump = Sender.pump
  let sender_done = Sender.is_done
  let sender_outstanding = Sender.outstanding
  let sender_retransmissions = Sender.retransmissions
  let crash_tolerant = true
  let sender_crash = Sender.crash
  let sender_restart = Sender.restart
  let sender_resync_rounds = Sender.resync_rounds
  let sender_mem_bytes = Sender.buffered_bytes
  let sender_clamp_window = Sender.clamp_window
end

module Multi : Ba_proto.Protocol.S = struct
  let name = "blockack-multi"

  type sender = Sender_multi.t

  include Common_receiver

  let create_sender = Sender_multi.create
  let sender_on_ack = Sender_multi.on_ack
  let sender_pump = Sender_multi.pump
  let sender_done = Sender_multi.is_done
  let sender_outstanding = Sender_multi.outstanding
  let sender_retransmissions = Sender_multi.retransmissions
  let crash_tolerant = true
  let sender_crash = Sender_multi.crash
  let sender_restart = Sender_multi.restart
  let sender_resync_rounds = Sender_multi.resync_rounds
  let sender_mem_bytes = Sender_multi.buffered_bytes
  let sender_clamp_window = Sender_multi.clamp_window
end

let simple : Ba_proto.Protocol.t = (module Simple)
let multi : Ba_proto.Protocol.t = (module Multi)

let reuse ?(lead_factor = 2) () : Ba_proto.Protocol.t =
  if lead_factor < 1 then invalid_arg "Protocols.reuse: lead_factor must be >= 1";
  (module struct
    let name = Printf.sprintf "blockack-reuse(x%d)" lead_factor

    type sender = Reuse_sender.t
    type receiver = Receiver.t

    let lead config = lead_factor * config.Ba_proto.Proto_config.window

    let create_sender engine config ~tx ~next_payload =
      Reuse_sender.create engine config ~lead:(lead config) ~tx ~next_payload

    (* The receiver must accept (and buffer) the whole flight band, so it
       runs with the widened window. *)
    let create_receiver engine config ~tx ~deliver =
      Receiver.create engine
        { config with Ba_proto.Proto_config.window = lead config }
        ~tx ~deliver

    let sender_on_ack = Reuse_sender.on_ack
    let receiver_on_data = Receiver.on_data
    let sender_pump = Reuse_sender.pump
    let sender_done = Reuse_sender.is_done
    let sender_outstanding = Reuse_sender.outstanding
    let sender_retransmissions = Reuse_sender.retransmissions
    let ack_wire_bytes = Ba_proto.Wire.ack_bytes_block

    (* The slot-reuse sender has no crash story yet (its lead window
       would need its own resync argument); the stub raises. *)
    include Ba_proto.Protocol.No_crash (struct
      let name = name

      type nonrec sender = sender
      type nonrec receiver = receiver
    end)

    (* Memory is still observable even without a clamp path: the reuse
       sender buffers the whole lead band. *)
    let sender_mem_bytes = Reuse_sender.buffered_bytes
    let receiver_mem_bytes = Receiver.buffered_bytes
    let sender_clamp_window (_ : sender) (_ : int) = ()
    let receiver_pressure_dropped = Receiver.pressure_dropped
  end)
