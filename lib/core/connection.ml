type timeout_style = Simple | Per_message

type stats = {
  submitted : int;
  delivered : int;
  in_flight : int;
  data_sent : int;
  data_dropped : int;
  acks_sent : int;
  retransmissions : int;
  ticks : int;
}

(* The two sender flavours behind one record of closures. *)
type sender_ops = {
  pump : unit -> unit;
  on_ack : Ba_proto.Wire.ack -> unit;
  retransmissions : unit -> int;
  outstanding : unit -> int;
  crash : unit -> unit;
  restart : unit -> unit;
}

type t = {
  engine : Ba_sim.Engine.t;
  queue : string Queue.t;
  mutable submitted : int;
  delivered : int ref;
  sender : sender_ops;
  data_link : Ba_proto.Wire.data Ba_channel.Link.t;
  ack_link : Ba_proto.Wire.ack Ba_channel.Link.t;
  receiver : Receiver.t;
}

let default_config =
  Config.make ~wire_modulus:(Some (2 * Config.default.Config.window)) ()

let create ?(seed = 42) ?(config = default_config) ?(timeout_style = Per_message)
    ?(data_loss = 0.) ?(ack_loss = 0.) ?(data_delay = Ba_channel.Dist.Uniform (40, 60))
    ?(ack_delay = Ba_channel.Dist.Uniform (40, 60)) ~on_receive () =
  let engine = Ba_sim.Engine.create ~seed () in
  let queue = Queue.create () in
  let delivered = ref 0 in
  let receiver_cell = ref None and sender_cell = ref None in
  let data_link =
    Ba_channel.Link.create engine ~loss:data_loss ~delay:data_delay
      ~deliver:(fun d ->
        match !receiver_cell with Some r -> Receiver.on_data r d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~loss:ack_loss ~delay:ack_delay
      ~deliver:(fun a ->
        match !sender_cell with Some ops -> ops.on_ack a | None -> ())
      ()
  in
  let next_payload () = Queue.take_opt queue in
  let sender =
    match timeout_style with
    | Simple ->
        let s =
          Sender.create engine config ~tx:(Ba_channel.Link.send data_link) ~next_payload
        in
        {
          pump = (fun () -> Sender.pump s);
          on_ack = Sender.on_ack s;
          retransmissions = (fun () -> Sender.retransmissions s);
          outstanding = (fun () -> Sender.outstanding s);
          crash = (fun () -> Sender.crash s);
          restart = (fun () -> Sender.restart s);
        }
    | Per_message ->
        let s =
          Sender_multi.create engine config ~tx:(Ba_channel.Link.send data_link) ~next_payload
        in
        {
          pump = (fun () -> Sender_multi.pump s);
          on_ack = Sender_multi.on_ack s;
          retransmissions = (fun () -> Sender_multi.retransmissions s);
          outstanding = (fun () -> Sender_multi.outstanding s);
          crash = (fun () -> Sender_multi.crash s);
          restart = (fun () -> Sender_multi.restart s);
        }
  in
  sender_cell := Some sender;
  let receiver =
    Receiver.create engine config ~tx:(Ba_channel.Link.send ack_link)
      ~deliver:(fun msg ->
        incr delivered;
        on_receive msg)
  in
  receiver_cell := Some receiver;
  { engine; queue; submitted = 0; delivered; sender; data_link; ack_link; receiver }

let send t msg =
  t.submitted <- t.submitted + 1;
  Queue.add msg t.queue;
  t.sender.pump ()

let idle t =
  !(t.delivered) = t.submitted && t.sender.outstanding () = 0 && Queue.is_empty t.queue

let run ?until t =
  match until with
  | Some horizon -> Ba_sim.Engine.run ~until:horizon t.engine
  | None -> Ba_sim.Engine.run t.engine

let engine t = t.engine

(* Process faults: the facade exposes the endpoint lifecycle so an
   application test can kill one side mid-transfer. Restarting the
   sender re-pumps, so payloads still queued resume once the resync
   handshake (if any) settles. *)
let crash_sender t = t.sender.crash ()

let restart_sender t =
  t.sender.restart ();
  t.sender.pump ()

let crash_receiver t = Receiver.crash t.receiver
let restart_receiver t = Receiver.restart t.receiver

let stats t =
  let d = Ba_channel.Link.stats t.data_link in
  {
    submitted = t.submitted;
    delivered = !(t.delivered);
    in_flight = t.submitted - !(t.delivered);
    data_sent = d.Ba_channel.Link.sent;
    data_dropped = d.Ba_channel.Link.dropped;
    acks_sent = Receiver.acks_sent t.receiver;
    retransmissions = t.sender.retransmissions ();
    ticks = Ba_sim.Engine.now t.engine;
  }
