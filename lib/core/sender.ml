(* Window bookkeeping lives in flat window-sized arrays indexed by
   [seq mod window] (valid exactly for [na, ns), distinct mod window),
   replacing the old [Ring_buffer]s whose every [set] allocated a box. *)

type t = {
  config : Config.t;
  codec : Seqcodec.t;
  tx : Ba_proto.Wire.data -> unit;
  source : Ba_proto.Source.t;
  payloads : string array;  (* payloads of [na, ns), at [seq mod window] *)
  acked_seq : int array;  (* out-of-order acked members of [na, ns); -1 = not acked *)
  timer : Ba_sim.Timer.t;
  sync_timer : Ba_sim.Timer.t;  (* REQ retry while awaiting the receiver's POS *)
  guard : Window_guard.t;
  mutable na : int;
  mutable ns : int;
  mutable alive : bool;
  mutable epoch : int;  (* incarnation; stable storage *)
  mutable syncing : bool;  (* restarted; REQ sent, POS pending *)
  mutable retransmissions : int;
  mutable stale_epoch_dropped : int;
  mutable resync_rounds : int;  (* handshake frames sent (REQ + FIN) *)
  mutable restarts : int;
  mutable wclamp : int option;
      (* externally imposed window clamp (fabric backpressure); survives
         crash–restart because the pressure is outside this endpoint *)
}

let slot_of t seq = seq mod t.config.Config.window

let is_acked t seq = t.acked_seq.(slot_of t seq) = seq

(* Transmitting any data message restarts the single timer: the paper's
   simple timeout measures silence since the last data send. *)
let transmit t seq =
  if seq < t.na || seq >= t.ns then invalid_arg "Sender.transmit: no buffered payload";
  t.tx
    (Ba_proto.Wire.make_data_e ~epoch:t.epoch ~seq:(Seqcodec.encode t.codec seq)
       ~payload:t.payloads.(slot_of t seq));
  Ba_sim.Timer.start t.timer

let outstanding t = t.ns - t.na

let effective_window t =
  let w = t.config.Config.window in
  let w = match t.config.Config.tx_budget with Some b -> min w b | None -> w in
  match t.wclamp with Some c -> min w c | None -> w

let rec pump t =
  if t.alive && (not t.syncing) && outstanding t < effective_window t then begin
    if t.ns >= Window_guard.frontier t.guard then
      (* A retransmitted copy may still be in flight; sending past its
         decode window would risk mis-reconstruction at the receiver. *)
      Window_guard.when_blocked t.guard (fun () -> pump t)
    else begin
      match Ba_proto.Source.next t.source with
      | None -> ()
      | Some payload ->
          let seq = t.ns in
          let i = slot_of t seq in
          t.payloads.(i) <- payload;
          t.acked_seq.(i) <- -1;
          t.ns <- t.ns + 1;
          transmit t seq;
          pump t
    end
  end

let is_done t =
  t.alive && (not t.syncing) && outstanding t = 0 && Ba_proto.Source.exhausted t.source

(* Action 2: resend the oldest outstanding message. *)
let on_timeout t =
  if t.alive && (not t.syncing) && outstanding t > 0 then begin
    t.retransmissions <- t.retransmissions + 1;
    (* With unbounded wire numbers decode is exact and no hold is needed. *)
    if t.config.Config.wire_modulus <> None then
      Window_guard.note_retransmission t.guard ~seq:t.na ~window:t.config.Config.window
        ~hold_for:(Config.hold_duration t.config);
    transmit t t.na
  end

let send_req t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_req ~epoch:t.epoch);
  Ba_sim.Timer.start t.sync_timer

let send_fin t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_fin ~epoch:t.epoch)

let create engine config ~tx ~next_payload =
  Config.validate config;
  let source = Ba_proto.Source.create next_payload in
  let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
  let rec t =
    lazy
      {
        config;
        codec;
        tx;
        source;
        payloads = Array.make config.Config.window "";
        acked_seq = Array.make config.Config.window (-1);
        timer = Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () -> on_timeout (Lazy.force t));
        sync_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              let t = Lazy.force t in
              if t.alive && t.syncing then send_req t);
        guard = Window_guard.create engine;
        na = 0;
        ns = 0;
        alive = true;
        epoch = 0;
        syncing = false;
        retransmissions = 0;
        stale_epoch_dropped = 0;
        resync_rounds = 0;
        restarts = 0;
        wclamp = None;
      }
  in
  Lazy.force t

(* Crash wipes everything volatile; only the epoch (and the replayable
   application outbox inside {!Ba_proto.Source}) is durable. *)
let wipe_volatile t =
  Ba_sim.Timer.stop t.timer;
  Ba_sim.Timer.stop t.sync_timer;
  Array.fill t.payloads 0 (Array.length t.payloads) "";
  Array.fill t.acked_seq 0 (Array.length t.acked_seq) (-1);
  Window_guard.clear t.guard;
  t.na <- 0;
  t.ns <- 0

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.syncing <- false;
    wipe_volatile t
  end

let resync_to t pos =
  Ba_proto.Source.rewind t.source ~to_:pos;
  t.na <- pos;
  t.ns <- pos;
  t.syncing <- false;
  Ba_sim.Timer.stop t.sync_timer

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.restarts <- t.restarts + 1;
    if t.config.Config.resync_epochs then begin
      t.epoch <- t.epoch + 1;
      t.syncing <- true;
      send_req t
    end
    else begin
      Ba_proto.Source.rewind t.source ~to_:0;
      pump t
    end
  end

(* Action 1: mark every covered sequence number that is still
   outstanding, then slide na over the acknowledged prefix. Stale
   duplicates (covering already-acknowledged messages) decode outside
   [na, ns) and are ignored; a corrupted acknowledgment is ignored
   entirely — acting on a mangled range could acknowledge data the
   receiver never accepted. Epoch handling mirrors {!Sender_multi}. *)
let on_ack t a =
  if not t.alive then ()
  else if not (Ba_proto.Wire.ack_ok a) then ()
  else begin
    let epochs = t.config.Config.resync_epochs in
    if epochs && a.Ba_proto.Wire.epoch < t.epoch then
      t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    else if epochs && a.Ba_proto.Wire.epoch > t.epoch then begin
      match a.Ba_proto.Wire.akind with
      | Ba_proto.Wire.Sync_pos ->
          t.epoch <- a.Ba_proto.Wire.epoch;
          t.syncing <- false;
          wipe_volatile t;
          resync_to t a.Ba_proto.Wire.lo;
          send_fin t;
          pump t
      | Ba_proto.Wire.Ack -> t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    end
    else begin
      match a.Ba_proto.Wire.akind with
      | Ba_proto.Wire.Sync_pos ->
          if t.syncing then begin
            resync_to t a.Ba_proto.Wire.lo;
            send_fin t;
            pump t
          end
          else send_fin t
      | Ba_proto.Wire.Ack ->
          if not t.syncing then begin
            let lo = a.Ba_proto.Wire.lo in
            let hi = a.Ba_proto.Wire.hi in
            let count = Seqcodec.span t.codec ~lo ~hi in
            for k = 0 to count - 1 do
              let wire = Seqcodec.shift t.codec lo k in
              let seq = Seqcodec.decode_ack t.codec ~na:t.na wire in
              if seq >= t.na && seq < t.ns then t.acked_seq.(slot_of t seq) <- seq
            done;
            while is_acked t t.na do
              let i = slot_of t t.na in
              t.acked_seq.(i) <- -1;
              t.payloads.(i) <- "";
              t.na <- t.na + 1
            done;
            if outstanding t = 0 then Ba_sim.Timer.stop t.timer;
            pump t
          end
    end
  end

let na t = t.na
let ns t = t.ns
let retransmissions t = t.retransmissions
let acked_total t = t.na

let clamp_window t n =
  if n < 1 then invalid_arg "Sender.clamp_window: clamp must be >= 1";
  t.wclamp <- (if n >= t.config.Config.window then None else Some n)

let window_clamp t = t.wclamp

let buffered_bytes t =
  let n = ref 0 in
  for seq = t.na to t.ns - 1 do
    n := !n + String.length t.payloads.(slot_of t seq)
  done;
  !n

let alive t = t.alive
let epoch t = t.epoch
let syncing t = t.syncing
let stale_epoch_dropped t = t.stale_epoch_dropped
let resync_rounds t = t.resync_rounds
let restarts t = t.restarts
