(** High-level facade: a ready-made simulated connection.

    Bundles an engine, two lossy links and a block-acknowledgment
    sender/receiver pair behind a queue-and-callback API, so an
    application can exercise the protocol without touching the plumbing:

    {[
      let conn =
        Blockack.Connection.create ~data_loss:0.1
          ~on_receive:(fun msg -> print_endline msg) ()
      in
      Blockack.Connection.send conn "hello";
      Blockack.Connection.send conn "world";
      Blockack.Connection.run conn            (* drive to quiescence *)
    ]}

    Messages are delivered to [on_receive] in submission order, exactly
    once, regardless of loss and reorder on the simulated links. *)

type t

type timeout_style =
  | Simple  (** Section II: one timer, retransmit the window base *)
  | Per_message  (** Section IV: a timer per outstanding message *)

type stats = {
  submitted : int;
  delivered : int;
  in_flight : int;  (** submitted but not yet delivered *)
  data_sent : int;
  data_dropped : int;
  acks_sent : int;
  retransmissions : int;
  ticks : int;
}

val create :
  ?seed:int ->
  ?config:Config.t ->
  ?timeout_style:timeout_style ->
  ?data_loss:float ->
  ?ack_loss:float ->
  ?data_delay:Ba_channel.Dist.t ->
  ?ack_delay:Ba_channel.Dist.t ->
  on_receive:(string -> unit) ->
  unit ->
  t
(** Defaults: seed 42, {!Config.default} with wire modulus [2 * window],
    [Per_message] timers, lossless links with delay [Uniform (40, 60)]. *)

val send : t -> string -> unit
(** Queue a message for transmission; it enters the window as soon as
    there is room. *)

val run : ?until:int -> t -> unit
(** Advance the simulation until quiescent (everything delivered and
    acknowledged) or until the given absolute tick. *)

val engine : t -> Ba_sim.Engine.t
val stats : t -> stats
val idle : t -> bool
(** Everything submitted has been delivered and acknowledged. *)

(** {2 Crash–restart}

    Fault one endpoint's process mid-transfer. [crash_*] wipes that
    side's volatile state (window buffers, timers, RTT estimator, the
    receiver's out-of-order buffer); [restart_*] brings it back, and —
    when the config keeps [resync_epochs] on (the default) — runs the
    incarnation-epoch resync handshake before normal traffic resumes,
    so delivery stays exactly-once and in order across the outage.
    [restart_sender] also re-pumps, so queued payloads resume without a
    fresh {!send}. Useful with [run ~until] to drive the simulation to
    the chosen crash tick. *)

val crash_sender : t -> unit
val restart_sender : t -> unit
val crash_receiver : t -> unit
val restart_receiver : t -> unit
