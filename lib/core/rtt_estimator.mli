(** Round-trip-time estimation for adaptive retransmission timeouts.

    The paper assumes a known bound on message lifetime; a deployment
    usually has to estimate it. This is the classic Jacobson/Karels
    smoothed estimator with Karn's rule applied by the caller (only feed
    samples from messages that were never retransmitted):

    {ul
    {- [srtt <- (1 - a) * srtt + a * sample] with [a = 1/8]}
    {- [rttvar <- (1 - b) * rttvar + b * |srtt - sample|] with [b = 1/4]}
    {- [rto = srtt + 4 * rttvar], clamped to [[floor, ceiling]].}}

    Used by {!Sender_multi} when the configuration asks for adaptive
    timeouts; safe to use standalone. *)

type t

val create : ?floor:int -> ?ceiling:int -> initial_rto:int -> unit -> t
(** [floor] defaults to 1, [ceiling] to [max_int]. Until the first sample
    arrives {!rto} returns [initial_rto] (clamped). *)

val observe : t -> int -> unit
(** Feed one round-trip sample in ticks. Requires a non-negative sample. *)

val rto : t -> int
(** Current timeout: [srtt + 4 * rttvar] clamped to [[floor, ceiling]]. *)

val srtt : t -> float
(** Smoothed RTT; 0 before any sample. *)

val rttvar : t -> float

val samples : t -> int
(** Number of samples observed. *)

val backoff : t -> unit
(** Exponential backoff after a retransmission: double the current rto,
    saturating at the ceiling (never overflowing past it — doubling an
    already-huge rto must not wrap negative and collapse to the floor).
    The next genuine sample resumes normal smoothing, so the rto cannot
    stay pinned at the cap once the path recovers (Karn's rule, applied
    by the caller, guarantees that sample is untainted). *)

val reset : t -> unit
(** Return to the freshly created state ([initial_rto], no samples) —
    the estimator is volatile, so a crashed-and-restarted sender starts
    estimating from scratch. *)
