(* Retransmit bookkeeping lives in flat window-sized arrays indexed by
   [seq mod window] — valid exactly for the outstanding range [na, ns),
   whose members are distinct mod window. This replaces the old
   per-field [Ring_buffer]s (every [set] allocated a box) and, more
   importantly, the per-sequence {!Ba_sim.Timer} churn: each window
   slot owns one persistent {!Ba_sim.Engine.slot} whose callback reads
   the sequence number it is currently armed for from [tslot_seq], so
   arming a retransmission timer allocates nothing. *)

type t = {
  config : Config.t;
  codec : Seqcodec.t;
  engine : Ba_sim.Engine.t;
  tx : Ba_proto.Wire.data -> unit;
  source : Ba_proto.Source.t;
  payloads : string array;  (* payloads of [na, ns), at [seq mod window] *)
  acked_seq : int array;  (* seq when that seq is acked out of order, -1 otherwise *)
  tslots : Ba_sim.Engine.slot array;  (* one persistent timer slot per window slot *)
  tslot_seq : int array;  (* seq each slot is armed for, -1 when disarmed *)
  sent_at : int array;  (* first-transmission time, for RTT sampling *)
  resent : int array;  (* per-message retransmission count (Karn's rule + backoff) *)
  estimator : Rtt_estimator.t option;
  guard : Window_guard.t;
  sync_timer : Ba_sim.Timer.t;  (* REQ retry while awaiting the receiver's POS *)
  mutable na : int;
  mutable ns : int;
  mutable alive : bool;
  mutable epoch : int;  (* incarnation; stable storage *)
  mutable syncing : bool;  (* restarted; REQ sent, POS pending *)
  mutable retransmissions : int;
  mutable corrupt_acks_dropped : int;
  mutable stale_epoch_dropped : int;
  mutable resync_rounds : int;  (* handshake frames sent (REQ + FIN) *)
  mutable restarts : int;
  (* AIMD congestion window (dynamic_window mode): cwnd counts messages,
     ack_credit accumulates fractional additive increase. *)
  mutable cwnd : int;
  mutable ack_credit : int;
  mutable wclamp : int option;
      (* externally imposed window clamp (fabric backpressure); survives
         crash–restart because the pressure is outside this endpoint *)
}

let outstanding t = t.ns - t.na

let slot_of t seq = seq mod t.config.Config.window

let is_acked t seq = t.acked_seq.(slot_of t seq) = seq

(* The effective window is the configured one narrowed by every active
   pressure signal: the static retransmit-buffer budget, any fabric
   backpressure clamp, and (in dynamic mode) the AIMD congestion
   window. *)
let effective_window t =
  let w = t.config.Config.window in
  let w = match t.config.Config.tx_budget with Some b -> min w b | None -> w in
  let w = match t.wclamp with Some c -> min w c | None -> w in
  if t.config.Config.dynamic_window then min t.cwnd w else w

(* Additive increase: one extra message of window per cwnd acknowledged
   (i.e. +1 per round trip at saturation). *)
let on_progress t acked_count =
  if t.config.Config.dynamic_window && t.cwnd < t.config.Config.window then begin
    t.ack_credit <- t.ack_credit + acked_count;
    if t.ack_credit >= t.cwnd then begin
      t.ack_credit <- 0;
      t.cwnd <- t.cwnd + 1
    end
  end

(* Multiplicative decrease on timeout. *)
let on_loss_signal t =
  if t.config.Config.dynamic_window then begin
    t.cwnd <- max 1 (t.cwnd / 2);
    t.ack_credit <- 0
  end

let base_rto t =
  match t.estimator with Some e -> Rtt_estimator.rto e | None -> t.config.Config.rto

(* Adaptive mode backs off per message: each retransmission of [seq]
   doubles its own timer, independently of its window mates (a shared
   backoff would compound across the whole window). Fixed mode keeps the
   paper's constant timeout period. *)
let rto_for t seq =
  match t.estimator with
  | None -> t.config.Config.rto
  | Some _ ->
      let factor = 1 lsl min t.resent.(slot_of t seq) 6 in
      min (base_rto t * factor) (60 * t.config.Config.rto)

(* Handshake message 1 (REQ): a restarted sender has no idea how much of
   its outbox the receiver already delivered; ask. Retried on a timer
   until POS arrives. *)
let send_req t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_req ~epoch:t.epoch);
  Ba_sim.Timer.start t.sync_timer

let send_fin t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_fin ~epoch:t.epoch)

(* Action 2': the timer of message [seq] expired, meaning no copy of it
   or of a covering acknowledgment survives in either channel; resend it
   and re-arm its own timer only. *)
let rec on_timeout t seq =
  if t.alive && (not t.syncing) && seq >= t.na && seq < t.ns && not (is_acked t seq) then begin
    t.retransmissions <- t.retransmissions + 1;
    on_loss_signal t;
    (* Karn's algorithm, second half: the rule above (sample_rtt) only
       excludes tainted samples, so during an outage the estimator would
       otherwise keep its stale pre-outage rto and every *newly* pumped
       message would retransmit at that collapsed value forever. Back off
       the shared estimate too, but only when the oldest outstanding
       message expires — w simultaneous per-message expiries must not
       compound into a 2^w backoff. The next genuine sample rebuilds the
       rto from srtt/rttvar as usual. *)
    if seq = t.na then Option.iter Rtt_estimator.backoff t.estimator;
    t.resent.(slot_of t seq) <- t.resent.(slot_of t seq) + 1;
    (* With unbounded wire numbers decode is exact and no hold is needed. *)
    if t.config.Config.wire_modulus <> None then
      Window_guard.note_retransmission t.guard ~seq ~window:t.config.Config.window
        ~hold_for:(Config.hold_duration t.config);
    transmit t seq
  end

and transmit t seq =
  if seq < t.na || seq >= t.ns then invalid_arg "Sender_multi.transmit: no buffered payload";
  let i = slot_of t seq in
  t.tx
    (Ba_proto.Wire.make_data_e ~epoch:t.epoch ~seq:(Seqcodec.encode t.codec seq)
       ~payload:t.payloads.(i));
  t.tslot_seq.(i) <- seq;
  Ba_sim.Engine.slot_arm t.tslots.(i) ~delay:(rto_for t seq)

let rec pump t =
  if t.alive && (not t.syncing) && outstanding t < effective_window t then begin
    if t.ns >= Window_guard.frontier t.guard then
      (* A retransmitted copy may still be in flight; sending past its
         decode window would risk mis-reconstruction at the receiver. *)
      Window_guard.when_blocked t.guard (fun () -> pump t)
    else begin
      match Ba_proto.Source.next t.source with
      | None -> ()
      | Some payload ->
          let seq = t.ns in
          let i = slot_of t seq in
          t.payloads.(i) <- payload;
          t.acked_seq.(i) <- -1;
          t.resent.(i) <- 0;
          t.ns <- t.ns + 1;
          t.sent_at.(i) <- Ba_sim.Engine.now t.engine;
          transmit t seq;
          pump t
    end
  end

let is_done t =
  t.alive && (not t.syncing) && outstanding t = 0 && Ba_proto.Source.exhausted t.source

let create engine config ~tx ~next_payload =
  Config.validate config;
  let source = Ba_proto.Source.create next_payload in
  let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
  let estimator =
    if config.Config.adaptive_rto then begin
      (* With a finite modulus the configured rto is the soundness floor
         (it encodes the channel-lifetime bound); unbounded wire numbers
         can chase the real round trip freely. *)
      let floor =
        match config.Config.wire_modulus with Some _ -> config.Config.rto | None -> 2
      in
      Some
        (Rtt_estimator.create ~floor ~ceiling:(60 * config.Config.rto)
           ~initial_rto:config.Config.rto ())
    end
    else None
  in
  let w = config.Config.window in
  let rec t =
    lazy
      {
        config;
        codec;
        engine;
        tx;
        source;
        payloads = Array.make w "";
        acked_seq = Array.make w (-1);
        tslots =
          Array.init w (fun i ->
              Ba_sim.Engine.slot_create engine (fun () ->
                  let t = Lazy.force t in
                  on_timeout t t.tslot_seq.(i)));
        tslot_seq = Array.make w (-1);
        sent_at = Array.make w 0;
        resent = Array.make w 0;
        estimator;
        guard = Window_guard.create engine;
        sync_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              let t = Lazy.force t in
              if t.alive && t.syncing then send_req t);
        na = 0;
        ns = 0;
        alive = true;
        epoch = 0;
        syncing = false;
        retransmissions = 0;
        corrupt_acks_dropped = 0;
        stale_epoch_dropped = 0;
        resync_rounds = 0;
        restarts = 0;
        cwnd = 1;
        ack_credit = 0;
        wclamp = None;
      }
  in
  Lazy.force t

let stop_timer t seq =
  let i = slot_of t seq in
  if t.tslot_seq.(i) = seq then begin
    Ba_sim.Engine.slot_cancel t.tslots.(i);
    t.tslot_seq.(i) <- -1
  end

let sample_rtt t seq =
  match t.estimator with
  | None -> ()
  | Some e ->
      (* Karn's rule: only first-transmission acknowledgments are
         unambiguous round-trip samples. *)
      let i = slot_of t seq in
      if t.resent.(i) = 0 then
        Rtt_estimator.observe e (Ba_sim.Engine.now t.engine - t.sent_at.(i))

(* Wipe all volatile state: payload/ack/timer arrays, the congestion and
   rtt estimators, the retransmission-frontier holds. [na]/[ns] are
   zeroed too (they are meaningless without the buffers); the truth about
   position lives at the receiver and comes back via POS. Stable storage
   keeps only the epoch and, implicitly, the application outbox
   ({!Ba_proto.Source} retains issued payloads for replay). *)
let wipe_volatile t =
  for i = 0 to t.config.Config.window - 1 do
    Ba_sim.Engine.slot_cancel t.tslots.(i);
    t.tslot_seq.(i) <- -1;
    t.acked_seq.(i) <- -1;
    t.payloads.(i) <- "";
    t.resent.(i) <- 0;
    t.sent_at.(i) <- 0
  done;
  Window_guard.clear t.guard;
  Option.iter Rtt_estimator.reset t.estimator;
  Ba_sim.Timer.stop t.sync_timer;
  t.na <- 0;
  t.ns <- 0;
  t.cwnd <- 1;
  t.ack_credit <- 0

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.syncing <- false;
    wipe_volatile t
  end

(* Adopt the receiver-announced resume position: align [na]/[ns] there
   and rewind the outbox so [pump] replays from it. *)
let resync_to t pos =
  Ba_proto.Source.rewind t.source ~to_:pos;
  t.na <- pos;
  t.ns <- pos;
  t.syncing <- false;
  Ba_sim.Timer.stop t.sync_timer

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.restarts <- t.restarts + 1;
    if t.config.Config.resync_epochs then begin
      t.epoch <- t.epoch + 1;
      t.syncing <- true;
      send_req t
    end
    else begin
      (* Negative control: resume blind from zero, replaying the whole
         outbox against a receiver that may be far ahead. *)
      Ba_proto.Source.rewind t.source ~to_:0;
      pump t
    end
  end

(* A corrupted acknowledgment is discarded outright: a mangled block
   range could cover messages the receiver never accepted, which is a
   safety violation, not just waste. Duplicated acknowledgments are
   harmless — every covered position is already guarded by the
   [na <= seq < ns && not acked] test below. With epochs on, frames from
   a dead incarnation are rejected the same way the receiver rejects
   stale data; a *higher* epoch means the receiver restarted and its POS
   tells us everything we need. *)
let on_ack t a =
  if not t.alive then ()
  else if not (Ba_proto.Wire.ack_ok a) then
    t.corrupt_acks_dropped <- t.corrupt_acks_dropped + 1
  else begin
    let epochs = t.config.Config.resync_epochs in
    if epochs && a.Ba_proto.Wire.epoch < t.epoch then
      t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    else if epochs && a.Ba_proto.Wire.epoch > t.epoch then begin
      (* Only a restarted receiver mints a higher epoch, and it only
         sends POS until we confirm — adopt its epoch and position. *)
      match a.Ba_proto.Wire.akind with
      | Ba_proto.Wire.Sync_pos ->
          t.epoch <- a.Ba_proto.Wire.epoch;
          wipe_volatile t;
          resync_to t a.Ba_proto.Wire.lo;
          send_fin t;
          pump t
      | Ba_proto.Wire.Ack -> t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    end
    else begin
      match a.Ba_proto.Wire.akind with
      | Ba_proto.Wire.Sync_pos ->
          if t.syncing then begin
            resync_to t a.Ba_proto.Wire.lo;
            send_fin t;
            pump t
          end
          else
            (* Duplicate POS: our FIN was lost and the receiver is still
               retrying. Re-confirm; do not move the window. *)
            send_fin t
      | Ba_proto.Wire.Ack ->
          if not t.syncing then begin
            let lo = a.Ba_proto.Wire.lo in
            let hi = a.Ba_proto.Wire.hi in
            let count = Seqcodec.span t.codec ~lo ~hi in
            for k = 0 to count - 1 do
              let wire = Seqcodec.shift t.codec lo k in
              let seq = Seqcodec.decode_ack t.codec ~na:t.na wire in
              if seq >= t.na && seq < t.ns && not (is_acked t seq) then begin
                sample_rtt t seq;
                t.acked_seq.(slot_of t seq) <- seq;
                stop_timer t seq
              end
            done;
            let na_before = t.na in
            while is_acked t t.na do
              let i = slot_of t t.na in
              t.acked_seq.(i) <- -1;
              t.payloads.(i) <- "";
              stop_timer t t.na;
              t.na <- t.na + 1
            done;
            on_progress t (t.na - na_before);
            pump t
          end
    end
  end

let na t = t.na
let ns t = t.ns
let retransmissions t = t.retransmissions
let corrupt_acks_dropped t = t.corrupt_acks_dropped
let acked_total t = t.na

let rto_now t = base_rto t

let srtt t = Option.map Rtt_estimator.srtt t.estimator

let cwnd t = t.cwnd

(* Fabric backpressure: clamp the effective window to [n] messages
   ([n >= window] removes the clamp). Only future pumps are affected —
   already-outstanding messages finish under their own timers. *)
let clamp_window t n =
  if n < 1 then invalid_arg "Sender_multi.clamp_window: clamp must be >= 1";
  t.wclamp <- (if n >= t.config.Config.window then None else Some n)

let window_clamp t = t.wclamp

let buffered_bytes t =
  let n = ref 0 in
  for seq = t.na to t.ns - 1 do
    n := !n + String.length t.payloads.(slot_of t seq)
  done;
  !n

let alive t = t.alive
let epoch t = t.epoch
let syncing t = t.syncing
let stale_epoch_dropped t = t.stale_epoch_dropped
let resync_rounds t = t.resync_rounds
let restarts t = t.restarts
