(* srtt and rttvar live in an unboxed float array ([| srtt; rttvar |]):
   mutable float fields of this mixed record would box on every store,
   making each RTT observation — one per acknowledgment — allocate. *)
type t = {
  floor : int;
  ceiling : int;
  initial_rto : int;
  est : float array;
  mutable current : int;
  mutable samples : int;
}

let clamp t v = max t.floor (min t.ceiling v)

let create ?(floor = 1) ?(ceiling = max_int) ~initial_rto () =
  if floor <= 0 then invalid_arg "Rtt_estimator.create: floor must be positive";
  if ceiling < floor then invalid_arg "Rtt_estimator.create: ceiling < floor";
  let t = { floor; ceiling; initial_rto; est = [| 0.; 0. |]; current = 0; samples = 0 } in
  t.current <- clamp t initial_rto;
  t

let alpha = 0.125
let beta = 0.25

let observe t sample =
  if sample < 0 then invalid_arg "Rtt_estimator.observe: negative sample";
  let sample = float_of_int sample in
  if t.samples = 0 then begin
    (* RFC 6298 initialisation. *)
    t.est.(0) <- sample;
    t.est.(1) <- sample /. 2.
  end
  else begin
    t.est.(1) <- ((1. -. beta) *. t.est.(1)) +. (beta *. abs_float (t.est.(0) -. sample));
    t.est.(0) <- ((1. -. alpha) *. t.est.(0)) +. (alpha *. sample)
  end;
  t.samples <- t.samples + 1;
  t.current <- clamp t (int_of_float (Float.ceil (t.est.(0) +. (4. *. t.est.(1)))))

let rto t = t.current
let srtt t = t.est.(0)
let rttvar t = t.est.(1)
let samples t = t.samples

(* Saturate instead of doubling once past ceiling/2: with the default
   [ceiling = max_int], [current * 2] would eventually overflow to a
   negative value that [clamp] pins at [floor] — collapsing the timeout
   to its minimum in the middle of an outage (a retransmit storm). The
   ceiling itself still caps the backoff, and the next genuine sample
   ([observe] with [samples > 0]) rebuilds [current] from srtt/rttvar,
   so a long outage cannot leave the rto pinned at the cap forever. *)
let backoff t =
  t.current <- (if t.current >= t.ceiling / 2 then t.ceiling else clamp t (t.current * 2))

(* Crash–restart support: the estimator lives in volatile memory, so a
   restarted sender comes back exactly as freshly created. *)
let reset t =
  t.est.(0) <- 0.;
  t.est.(1) <- 0.;
  t.samples <- 0;
  t.current <- clamp t t.initial_rto
