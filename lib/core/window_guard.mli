(** Retransmission frontier: real-time enforcement of the paper's
    single-copy invariant.

    Assertion 8 guarantees that any in-transit data message [m] satisfies
    [m >= na >= nr - w], which is exactly what makes a [2w] wire modulus
    lossless (assertion 11). A timer-driven sender can break this: it may
    retransmit [seq] while the acknowledgment that covers [seq] is
    already on its way back; the window then slides past [seq] and, if
    more than [w] new messages are delivered while the stale copy is
    still in flight, the receiver decodes the copy into the *future*
    window — delivering an old payload as a new one.

    The guard closes the race without any knowledge the sender does not
    have: after retransmitting [seq], hold the send frontier at
    [seq + w] until every copy of [seq] and every acknowledgment it
    could trigger has aged out of the network (one [rto], since
    [rto > 2 * max transit + ack delay] is already required for timeout
    soundness). While a hold is active, [nr <= ns <= seq + w], so the
    receiver's decode window never drifts past the stale copy. *)

type t

val create : Ba_sim.Engine.t -> t

val note_retransmission : t -> seq:int -> window:int -> hold_for:int -> unit
(** Record that [seq] was retransmitted now: cap the frontier at
    [seq + window] for the next [hold_for] ticks. *)

val frontier : t -> int
(** Lowest active cap, or [max_int] when unrestricted. Expired holds are
    pruned on the fly. *)

val clear : t -> unit
(** Drop all active holds (crash–restart wipes the volatile sender; the
    stale copies the holds were guarding are rejected by epoch instead). *)

val when_blocked : t -> (unit -> unit) -> unit
(** [when_blocked t retry] arranges for [retry ()] to run when the
    earliest active hold expires (no-op when unrestricted). At most one
    retry is pending at a time. *)
