(** Block-acknowledgment sender with per-message timers (Section IV).

    Functionally like {!Sender}, but every outstanding message carries
    its own retransmission timer (the paper's action 2′). When a whole
    block acknowledgment is lost, all covered timers expire around the
    same time and the covered messages are retransmitted back-to-back, so
    recovery costs roughly one timeout plus one round trip — instead of
    the simple sender's one full timeout period per covered message.

    Soundness still requires [rto > 2 * max link delay + ack_coalesce],
    which makes an expired per-message timer imply that no copy of that
    message or of its acknowledgment is in transit. *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  tx:(Ba_proto.Wire.data -> unit) ->
  next_payload:(unit -> string option) ->
  t

val pump : t -> unit
val on_ack : t -> Ba_proto.Wire.ack -> unit
val na : t -> int
val ns : t -> int
val outstanding : t -> int
val is_done : t -> bool
val retransmissions : t -> int

val corrupt_acks_dropped : t -> int
(** Acknowledgments discarded because their checksum failed
    ({!Ba_proto.Wire.ack_ok}); acting on a mangled block range could
    acknowledge data the receiver never accepted. *)

val acked_total : t -> int

val rto_now : t -> int
(** The timeout currently used when arming timers: the configured [rto],
    or the estimator's value when [adaptive_rto] is set (Jacobson/Karels
    with Karn's rule and exponential backoff — see {!Rtt_estimator}). *)

val srtt : t -> float option
(** Smoothed round-trip estimate, when adaptive timeouts are enabled. *)

val cwnd : t -> int
(** Current AIMD congestion window ([dynamic_window] mode); equals 1 and
    is unused otherwise. *)

val clamp_window : t -> int -> unit
(** [clamp_window t n] caps the effective window at [n] messages — the
    fabric's backpressure path. [n >= window] removes the clamp; [n < 1]
    raises. The clamp composes with [tx_budget] and the AIMD window (the
    minimum wins) and survives crash–restart, since the pressure it
    reflects is external to this endpoint. *)

val window_clamp : t -> int option
(** The clamp currently in force, if any. *)

val buffered_bytes : t -> int
(** Total payload bytes in the retransmit buffer (memory accounting). *)

(** {2 Crash–restart lifecycle}

    Same model as {!Sender}: [crash] wipes every volatile structure
    (buffers, per-message timers, the congestion window, the RTT
    estimator, frontier holds); the epoch and the replayable outbox are
    stable. [restart] with [resync_epochs] runs REQ → POS → FIN and
    resumes from the receiver-announced position; without it, replays
    blind from zero. *)

val crash : t -> unit
val restart : t -> unit
val alive : t -> bool
val epoch : t -> int

val syncing : t -> bool
(** Restarted and still awaiting the receiver's POS. *)

val stale_epoch_dropped : t -> int
(** Acknowledgments rejected for carrying a dead incarnation's epoch. *)

val resync_rounds : t -> int
(** Handshake frames (REQ + FIN) sent, including retries. *)

val restarts : t -> int
