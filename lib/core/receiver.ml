type t = {
  config : Config.t;
  codec : Seqcodec.t;
  tx : Ba_proto.Wire.ack -> unit;
  deliver : string -> unit;
  buffer : string Ba_util.Ring_buffer.t;  (* payloads of [nr, nr + w) received out of order *)
  ack_timer : Ba_sim.Timer.t;
  mutable nr : int;
  mutable vr : int;
  mutable acks_sent : int;
  mutable dup_acks_sent : int;
  mutable corrupt_dropped : int;
}

let send_ack t ~lo ~hi =
  t.acks_sent <- t.acks_sent + 1;
  t.tx (Ba_proto.Wire.make_ack ~lo:(Seqcodec.encode t.codec lo) ~hi:(Seqcodec.encode t.codec hi))

(* Action 5: acknowledge the run [nr, vr) in one block and hand its
   payloads to the application in order. *)
let flush t =
  Ba_sim.Timer.stop t.ack_timer;
  if t.nr < t.vr then begin
    send_ack t ~lo:t.nr ~hi:(t.vr - 1);
    while t.nr < t.vr do
      (match Ba_util.Ring_buffer.get t.buffer t.nr with
      | Some payload ->
          Ba_util.Ring_buffer.remove t.buffer t.nr;
          t.deliver payload
      | None -> invalid_arg "Receiver.flush: hole in accepted run");
      t.nr <- t.nr + 1
    done
  end

let create engine config ~tx ~deliver =
  Config.validate config;
  let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
  let rec t =
    lazy
      {
        config;
        codec;
        tx;
        deliver;
        buffer = Ba_util.Ring_buffer.create config.Config.window;
        ack_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.ack_coalesce (fun () ->
              flush (Lazy.force t));
        nr = 0;
        vr = 0;
        acks_sent = 0;
        dup_acks_sent = 0;
        corrupt_dropped = 0;
      }
  in
  Lazy.force t

(* Actions 3 + 4: record the reception, extend the contiguous run, and
   either flush immediately or leave the run open for coalescing. A
   frame that fails its checksum is discarded before any of that — it
   must neither be delivered nor acknowledged (the sender's timer will
   retransmit it), and its header cannot be trusted enough even to
   re-ack. *)
let on_data t d =
  if not (Ba_proto.Wire.data_ok d) then t.corrupt_dropped <- t.corrupt_dropped + 1
  else begin
  let { Ba_proto.Wire.seq; payload; check = _ } = d in
  let v = Seqcodec.decode_data t.codec ~nr:t.nr seq in
  if v < t.nr then begin
    (* Already accepted: its acknowledgment must have been lost; re-ack. *)
    t.dup_acks_sent <- t.dup_acks_sent + 1;
    send_ack t ~lo:v ~hi:v
  end
  else if v < t.nr + t.config.Config.window then begin
    if not (Ba_util.Ring_buffer.mem t.buffer v) then Ba_util.Ring_buffer.set t.buffer v payload;
    while Ba_util.Ring_buffer.mem t.buffer t.vr do
      t.vr <- t.vr + 1
    done;
    if t.nr < t.vr then begin
      if t.config.Config.ack_coalesce = 0 then flush t
      else if not (Ba_sim.Timer.is_armed t.ack_timer) then Ba_sim.Timer.start t.ack_timer
    end
  end
  (* v >= nr + w cannot come from a conforming sender; drop defensively. *)
  end

let nr t = t.nr
let vr t = t.vr
let buffered t = Ba_util.Ring_buffer.occupancy t.buffer
let acks_sent t = t.acks_sent
let dup_acks_sent t = t.dup_acks_sent
let corrupt_dropped t = t.corrupt_dropped
