(* The out-of-order reassembly buffer is a flat pair of window-sized
   arrays indexed by [seq mod window]: [buf_seq.(i)] holds the sequence
   number occupying slot [i] (-1 when empty) and [buf_payload.(i)] its
   payload. Sequence numbers live in [nr, nr + window), which are
   distinct mod window, so a slot is unambiguous — this replaces the
   old [Ring_buffer] whose every [set] allocated a [Full] box. *)

type t = {
  config : Config.t;
  codec : Seqcodec.t;
  tx : Ba_proto.Wire.ack -> unit;
  deliver : string -> unit;
  buf_payload : string array;
  buf_seq : int array;
  mutable buf_occ : int;
  ack_timer : Ba_sim.Timer.t;
  sync_timer : Ba_sim.Timer.t;  (* POS retry while awaiting the sender's FIN *)
  mutable nr : int;
  mutable vr : int;
  mutable alive : bool;
  mutable epoch : int;  (* incarnation; stable storage, like [nr] *)
  mutable syncing : bool;  (* restarted; POS sent, FIN (or fresh data) pending *)
  mutable acks_sent : int;
  mutable dup_acks_sent : int;
  mutable corrupt_dropped : int;
  mutable pressure_dropped : int;  (* fresh in-window frames refused for buffer-full *)
  mutable pressure_evicted : int;  (* buffered frames evicted by Drop_furthest *)
  mutable stale_epoch_dropped : int;
  mutable resync_rounds : int;  (* handshake frames sent (POS) *)
  mutable restarts : int;
}

let buf_mem t v = t.buf_seq.(v mod t.config.Config.window) = v

let buf_set t v payload =
  let i = v mod t.config.Config.window in
  if t.buf_seq.(i) < 0 then t.buf_occ <- t.buf_occ + 1;
  t.buf_seq.(i) <- v;
  t.buf_payload.(i) <- payload

let buf_remove t v =
  let i = v mod t.config.Config.window in
  if t.buf_seq.(i) = v then begin
    t.buf_seq.(i) <- -1;
    t.buf_payload.(i) <- "";
    t.buf_occ <- t.buf_occ - 1
  end

let buf_clear t =
  Array.fill t.buf_seq 0 (Array.length t.buf_seq) (-1);
  Array.fill t.buf_payload 0 (Array.length t.buf_payload) "";
  t.buf_occ <- 0

let send_ack t ~lo ~hi =
  t.acks_sent <- t.acks_sent + 1;
  t.tx
    (Ba_proto.Wire.make_ack_e ~epoch:t.epoch ~lo:(Seqcodec.encode t.codec lo)
       ~hi:(Seqcodec.encode t.codec hi))

(* Handshake message 2 (POS): "my stable delivered count is [nr]; resume
   there". Sent in reply to a REQ, and spontaneously (with retries) after
   our own restart — the receiver is the position authority, so its
   restart skips REQ. Not counted in [acks_sent]: that is the paper's
   acknowledgment-economy metric and resync frames are not acks. *)
let send_pos t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_pos ~epoch:t.epoch ~pos:t.nr);
  if t.syncing then Ba_sim.Timer.start t.sync_timer

(* Action 5: acknowledge the run [nr, vr) in one block and hand its
   payloads to the application in order. *)
let flush t =
  Ba_sim.Timer.stop t.ack_timer;
  if t.nr < t.vr then begin
    send_ack t ~lo:t.nr ~hi:(t.vr - 1);
    while t.nr < t.vr do
      let i = t.nr mod t.config.Config.window in
      if t.buf_seq.(i) <> t.nr then invalid_arg "Receiver.flush: hole in accepted run";
      let payload = t.buf_payload.(i) in
      t.buf_seq.(i) <- -1;
      t.buf_payload.(i) <- "";
      t.buf_occ <- t.buf_occ - 1;
      t.deliver payload;
      t.nr <- t.nr + 1
    done
  end

let create engine config ~tx ~deliver =
  Config.validate config;
  let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
  let rec t =
    lazy
      {
        config;
        codec;
        tx;
        deliver;
        buf_payload = Array.make config.Config.window "";
        buf_seq = Array.make config.Config.window (-1);
        buf_occ = 0;
        ack_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.ack_coalesce (fun () ->
              flush (Lazy.force t));
        sync_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              let t = Lazy.force t in
              if t.alive && t.syncing then send_pos t);
        nr = 0;
        vr = 0;
        alive = true;
        epoch = 0;
        syncing = false;
        acks_sent = 0;
        dup_acks_sent = 0;
        corrupt_dropped = 0;
        pressure_dropped = 0;
        pressure_evicted = 0;
        stale_epoch_dropped = 0;
        resync_rounds = 0;
        restarts = 0;
      }
  in
  Lazy.force t

(* The sender restarted into a later incarnation (we learn it from any
   frame carrying a higher epoch): adopt the epoch and discard the
   out-of-order buffer — the new incarnation will resend everything from
   the position we announce, and frames of the old one are now stale. *)
let adopt_epoch t e =
  t.epoch <- e;
  t.vr <- t.nr;
  buf_clear t;
  Ba_sim.Timer.stop t.ack_timer

let stop_syncing t =
  if t.syncing then begin
    t.syncing <- false;
    Ba_sim.Timer.stop t.sync_timer
  end

(* Budget admission (Jain, DEC-TR-342). Only the out-of-order slots
   beyond the contiguous run count against [rx_budget]: slots in
   [nr, vr) are committed — [flush] will acknowledge and deliver them —
   and the run-extending frame [v = vr] is always admitted, which is
   what keeps drop-new from livelocking on a full buffer. A refused or
   evicted frame was never acknowledged, so the sender's per-message
   timer retransmits it: a pressure drop is behaviorally a channel
   loss, and the block-ack ranges stay sound. *)
let admit t v payload =
  let over_budget =
    match t.config.Config.rx_budget with
    | None -> false
    | Some b -> v > t.vr && t.buf_occ - (t.vr - t.nr) >= b
  in
  if not over_budget then buf_set t v payload
  else
    match t.config.Config.drop_policy with
    | Config.Drop_new -> t.pressure_dropped <- t.pressure_dropped + 1
    | Config.Drop_furthest ->
        let furthest = ref (-1) in
        for i = 0 to Array.length t.buf_seq - 1 do
          let s = t.buf_seq.(i) in
          if s > t.vr && s > !furthest then furthest := s
        done;
        if !furthest > v then begin
          buf_remove t !furthest;
          t.pressure_evicted <- t.pressure_evicted + 1;
          buf_set t v payload
        end
        else t.pressure_dropped <- t.pressure_dropped + 1

(* Actions 3 + 4: record the reception, extend the contiguous run, and
   either flush immediately or leave the run open for coalescing. A
   frame that fails its checksum is discarded before any of that — it
   must neither be delivered nor acknowledged (the sender's timer will
   retransmit it), and its header cannot be trusted enough even to
   re-ack. With incarnation epochs on, a frame from a dead incarnation
   (lower epoch) is likewise rejected outright: accepting it is exactly
   the duplicate-delivery bug the crash spec exhibits. *)
let on_data t d =
  if not t.alive then ()
  else if not (Ba_proto.Wire.data_ok d) then t.corrupt_dropped <- t.corrupt_dropped + 1
  else begin
    let epochs = t.config.Config.resync_epochs in
    if epochs && d.Ba_proto.Wire.epoch < t.epoch then
      t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    else begin
      if epochs && d.Ba_proto.Wire.epoch > t.epoch then adopt_epoch t d.Ba_proto.Wire.epoch;
      match d.Ba_proto.Wire.dkind with
      | Ba_proto.Wire.Sync_req -> if epochs then send_pos t
      | Ba_proto.Wire.Sync_fin -> stop_syncing t
      | Ba_proto.Wire.Msg ->
          (* Current-epoch data implies the sender knows our position:
             an implicit FIN. *)
          stop_syncing t;
          let seq = d.Ba_proto.Wire.seq in
          let payload = d.Ba_proto.Wire.payload in
          let v = Seqcodec.decode_data t.codec ~nr:t.nr seq in
          if v < t.nr then begin
            (* Already accepted: its acknowledgment must have been lost; re-ack. *)
            t.dup_acks_sent <- t.dup_acks_sent + 1;
            send_ack t ~lo:v ~hi:v
          end
          else if
            (* In-order fast path: the frame lands exactly on the closed
               run's frontier with nothing coalescing and nothing
               buffered beyond it. Ack it, deliver it, advance — the
               slow path below would write the payload into the buffer
               only to pull it straight back out, and would stop the
               (never-armed) ack timer. Equivalent, observably identical
               ack/delivery sequence. *)
            v = t.vr && v = t.nr
            && t.config.Config.ack_coalesce = 0
            && t.buf_seq.((v + 1) mod t.config.Config.window) <> v + 1
          then begin
            send_ack t ~lo:v ~hi:v;
            t.deliver payload;
            t.nr <- v + 1;
            t.vr <- t.nr
          end
          else if v < t.nr + t.config.Config.window then begin
            if not (buf_mem t v) then admit t v payload;
            while buf_mem t t.vr do
              t.vr <- t.vr + 1
            done;
            if t.nr < t.vr then begin
              if t.config.Config.ack_coalesce = 0 then flush t
              else if not (Ba_sim.Timer.is_armed t.ack_timer) then Ba_sim.Timer.start t.ack_timer
            end
          end
          (* v >= nr + w cannot come from a conforming sender; drop defensively. *)
    end
  end

(* Crash: all volatile state is gone — the out-of-order buffer, the
   contiguous frontier [vr], pending timers. What survives is what the
   application itself made durable: the delivered count [nr] (delivery
   to the app is durable by definition) and, with [resync_epochs], the
   incarnation epoch. *)
let crash t =
  if t.alive then begin
    t.alive <- false;
    t.syncing <- false;
    Ba_sim.Timer.stop t.ack_timer;
    Ba_sim.Timer.stop t.sync_timer;
    buf_clear t;
    t.vr <- t.nr
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.restarts <- t.restarts + 1;
    if t.config.Config.resync_epochs then begin
      t.epoch <- t.epoch + 1;
      t.syncing <- true;
      send_pos t
    end
    else begin
      (* Negative control: a naive restart zeroes everything, so stale
         in-flight copies of already-delivered data decode into the
         fresh acceptance window — duplicate delivery. *)
      t.nr <- 0;
      t.vr <- 0
    end
  end

(* A new *process* incarnation: unlike [restart] (same process, volatile
   state wiped in place), the caller rebuilt this receiver from nothing
   and now replays what its stable storage remembered — the incarnation
   epoch and the delivered count. The caller passes the *new* epoch
   (persisted + 1, bumped exactly as [restart] would); announcing POS
   with retries then runs the same handshake a within-process restart
   does, so the sender side cannot tell the difference. *)
let restore t ~epoch ~pos =
  if not t.config.Config.resync_epochs then
    invalid_arg "Receiver.restore: requires resync_epochs";
  if epoch < 1 then invalid_arg "Receiver.restore: epoch must be >= 1";
  if pos < 0 then invalid_arg "Receiver.restore: negative position";
  if (not t.alive) || t.nr <> 0 || t.vr <> 0 || t.buf_occ <> 0 || t.epoch <> 0 then
    invalid_arg "Receiver.restore: receiver already has state";
  t.epoch <- epoch;
  t.nr <- pos;
  t.vr <- pos;
  t.restarts <- t.restarts + 1;
  t.syncing <- true;
  send_pos t

let nr t = t.nr
let vr t = t.vr
let buffered t = t.buf_occ

let buffered_bytes t =
  let n = ref 0 in
  for i = 0 to Array.length t.buf_seq - 1 do
    if t.buf_seq.(i) >= 0 then n := !n + String.length t.buf_payload.(i)
  done;
  !n

let pressure_dropped t = t.pressure_dropped
let pressure_evicted t = t.pressure_evicted
let acks_sent t = t.acks_sent
let dup_acks_sent t = t.dup_acks_sent
let corrupt_dropped t = t.corrupt_dropped
let alive t = t.alive
let epoch t = t.epoch
let syncing t = t.syncing
let stale_epoch_dropped t = t.stale_epoch_dropped
let resync_rounds t = t.resync_rounds
let restarts t = t.restarts
