type t = {
  config : Config.t;
  codec : Seqcodec.t;
  tx : Ba_proto.Wire.ack -> unit;
  deliver : string -> unit;
  buffer : string Ba_util.Ring_buffer.t;  (* payloads of [nr, nr + w) received out of order *)
  ack_timer : Ba_sim.Timer.t;
  sync_timer : Ba_sim.Timer.t;  (* POS retry while awaiting the sender's FIN *)
  mutable nr : int;
  mutable vr : int;
  mutable alive : bool;
  mutable epoch : int;  (* incarnation; stable storage, like [nr] *)
  mutable syncing : bool;  (* restarted; POS sent, FIN (or fresh data) pending *)
  mutable acks_sent : int;
  mutable dup_acks_sent : int;
  mutable corrupt_dropped : int;
  mutable pressure_dropped : int;  (* fresh in-window frames refused for buffer-full *)
  mutable pressure_evicted : int;  (* buffered frames evicted by Drop_furthest *)
  mutable stale_epoch_dropped : int;
  mutable resync_rounds : int;  (* handshake frames sent (POS) *)
  mutable restarts : int;
}

let send_ack t ~lo ~hi =
  t.acks_sent <- t.acks_sent + 1;
  t.tx
    (Ba_proto.Wire.make_ack_e ~epoch:t.epoch ~lo:(Seqcodec.encode t.codec lo)
       ~hi:(Seqcodec.encode t.codec hi))

(* Handshake message 2 (POS): "my stable delivered count is [nr]; resume
   there". Sent in reply to a REQ, and spontaneously (with retries) after
   our own restart — the receiver is the position authority, so its
   restart skips REQ. Not counted in [acks_sent]: that is the paper's
   acknowledgment-economy metric and resync frames are not acks. *)
let send_pos t =
  t.resync_rounds <- t.resync_rounds + 1;
  t.tx (Ba_proto.Wire.make_sync_pos ~epoch:t.epoch ~pos:t.nr);
  if t.syncing then Ba_sim.Timer.start t.sync_timer

(* Action 5: acknowledge the run [nr, vr) in one block and hand its
   payloads to the application in order. *)
let flush t =
  Ba_sim.Timer.stop t.ack_timer;
  if t.nr < t.vr then begin
    send_ack t ~lo:t.nr ~hi:(t.vr - 1);
    while t.nr < t.vr do
      (match Ba_util.Ring_buffer.get t.buffer t.nr with
      | Some payload ->
          Ba_util.Ring_buffer.remove t.buffer t.nr;
          t.deliver payload
      | None -> invalid_arg "Receiver.flush: hole in accepted run");
      t.nr <- t.nr + 1
    done
  end

let create engine config ~tx ~deliver =
  Config.validate config;
  let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
  let rec t =
    lazy
      {
        config;
        codec;
        tx;
        deliver;
        buffer = Ba_util.Ring_buffer.create config.Config.window;
        ack_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.ack_coalesce (fun () ->
              flush (Lazy.force t));
        sync_timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              let t = Lazy.force t in
              if t.alive && t.syncing then send_pos t);
        nr = 0;
        vr = 0;
        alive = true;
        epoch = 0;
        syncing = false;
        acks_sent = 0;
        dup_acks_sent = 0;
        corrupt_dropped = 0;
        pressure_dropped = 0;
        pressure_evicted = 0;
        stale_epoch_dropped = 0;
        resync_rounds = 0;
        restarts = 0;
      }
  in
  Lazy.force t

(* The sender restarted into a later incarnation (we learn it from any
   frame carrying a higher epoch): adopt the epoch and discard the
   out-of-order buffer — the new incarnation will resend everything from
   the position we announce, and frames of the old one are now stale. *)
let adopt_epoch t e =
  t.epoch <- e;
  t.vr <- t.nr;
  Ba_util.Ring_buffer.clear t.buffer;
  Ba_sim.Timer.stop t.ack_timer

let stop_syncing t =
  if t.syncing then begin
    t.syncing <- false;
    Ba_sim.Timer.stop t.sync_timer
  end

(* Budget admission (Jain, DEC-TR-342). Only the out-of-order slots
   beyond the contiguous run count against [rx_budget]: slots in
   [nr, vr) are committed — [flush] will acknowledge and deliver them —
   and the run-extending frame [v = vr] is always admitted, which is
   what keeps drop-new from livelocking on a full buffer. A refused or
   evicted frame was never acknowledged, so the sender's per-message
   timer retransmits it: a pressure drop is behaviorally a channel
   loss, and the block-ack ranges stay sound. *)
let admit t v payload =
  let over_budget =
    match t.config.Config.rx_budget with
    | None -> false
    | Some b ->
        v > t.vr
        && Ba_util.Ring_buffer.occupancy t.buffer - (t.vr - t.nr) >= b
  in
  if not over_budget then Ba_util.Ring_buffer.set t.buffer v payload
  else
    match t.config.Config.drop_policy with
    | Config.Drop_new -> t.pressure_dropped <- t.pressure_dropped + 1
    | Config.Drop_furthest ->
        let furthest = ref (-1) in
        Ba_util.Ring_buffer.iter
          (fun i _ -> if i > t.vr && i > !furthest then furthest := i)
          t.buffer;
        if !furthest > v then begin
          Ba_util.Ring_buffer.remove t.buffer !furthest;
          t.pressure_evicted <- t.pressure_evicted + 1;
          Ba_util.Ring_buffer.set t.buffer v payload
        end
        else t.pressure_dropped <- t.pressure_dropped + 1

(* Actions 3 + 4: record the reception, extend the contiguous run, and
   either flush immediately or leave the run open for coalescing. A
   frame that fails its checksum is discarded before any of that — it
   must neither be delivered nor acknowledged (the sender's timer will
   retransmit it), and its header cannot be trusted enough even to
   re-ack. With incarnation epochs on, a frame from a dead incarnation
   (lower epoch) is likewise rejected outright: accepting it is exactly
   the duplicate-delivery bug the crash spec exhibits. *)
let on_data t d =
  if not t.alive then ()
  else if not (Ba_proto.Wire.data_ok d) then t.corrupt_dropped <- t.corrupt_dropped + 1
  else begin
    let epochs = t.config.Config.resync_epochs in
    if epochs && d.Ba_proto.Wire.epoch < t.epoch then
      t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
    else begin
      if epochs && d.Ba_proto.Wire.epoch > t.epoch then adopt_epoch t d.Ba_proto.Wire.epoch;
      match d.Ba_proto.Wire.dkind with
      | Ba_proto.Wire.Sync_req -> if epochs then send_pos t
      | Ba_proto.Wire.Sync_fin -> stop_syncing t
      | Ba_proto.Wire.Msg ->
          (* Current-epoch data implies the sender knows our position:
             an implicit FIN. *)
          stop_syncing t;
          let { Ba_proto.Wire.seq; payload; _ } = d in
          let v = Seqcodec.decode_data t.codec ~nr:t.nr seq in
          if v < t.nr then begin
            (* Already accepted: its acknowledgment must have been lost; re-ack. *)
            t.dup_acks_sent <- t.dup_acks_sent + 1;
            send_ack t ~lo:v ~hi:v
          end
          else if v < t.nr + t.config.Config.window then begin
            if not (Ba_util.Ring_buffer.mem t.buffer v) then admit t v payload;
            while Ba_util.Ring_buffer.mem t.buffer t.vr do
              t.vr <- t.vr + 1
            done;
            if t.nr < t.vr then begin
              if t.config.Config.ack_coalesce = 0 then flush t
              else if not (Ba_sim.Timer.is_armed t.ack_timer) then Ba_sim.Timer.start t.ack_timer
            end
          end
          (* v >= nr + w cannot come from a conforming sender; drop defensively. *)
    end
  end

(* Crash: all volatile state is gone — the out-of-order buffer, the
   contiguous frontier [vr], pending timers. What survives is what the
   application itself made durable: the delivered count [nr] (delivery
   to the app is durable by definition) and, with [resync_epochs], the
   incarnation epoch. *)
let crash t =
  if t.alive then begin
    t.alive <- false;
    t.syncing <- false;
    Ba_sim.Timer.stop t.ack_timer;
    Ba_sim.Timer.stop t.sync_timer;
    Ba_util.Ring_buffer.clear t.buffer;
    t.vr <- t.nr
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    t.restarts <- t.restarts + 1;
    if t.config.Config.resync_epochs then begin
      t.epoch <- t.epoch + 1;
      t.syncing <- true;
      send_pos t
    end
    else begin
      (* Negative control: a naive restart zeroes everything, so stale
         in-flight copies of already-delivered data decode into the
         fresh acceptance window — duplicate delivery. *)
      t.nr <- 0;
      t.vr <- 0
    end
  end

let nr t = t.nr
let vr t = t.vr
let buffered t = Ba_util.Ring_buffer.occupancy t.buffer

let buffered_bytes t =
  let n = ref 0 in
  Ba_util.Ring_buffer.iter (fun _ p -> n := !n + String.length p) t.buffer;
  !n

let pressure_dropped t = t.pressure_dropped
let pressure_evicted t = t.pressure_evicted
let acks_sent t = t.acks_sent
let dup_acks_sent t = t.dup_acks_sent
let corrupt_dropped t = t.corrupt_dropped
let alive t = t.alive
let epoch t = t.epoch
let syncing t = t.syncing
let stale_epoch_dropped t = t.stale_epoch_dropped
let resync_rounds t = t.resync_rounds
let restarts t = t.restarts
