(** Section VI extension: aggressive reuse of acknowledged positions.

    The paper sketches a more complex sender that, when messages 3–5 are
    acknowledged while 0–2 are still outstanding, goes ahead and uses
    those freed positions for new data instead of stalling at the window
    edge. The price is extra bookkeeping and buffer space, and a wider
    sequence-number band in flight.

    This implementation realises the sketch as follows: the sender may
    have at most [window] *unacknowledged* messages at any time (the same
    resource bound as the classic protocol), but may run ahead of the
    lowest unacknowledged message [na] by up to [lead >= window]
    positions. In-flight data then spans [na, na + lead), so both
    endpoints size their codecs and buffers by [lead], and a wire modulus
    of at least [2 * lead] is required — exactly the paper's "tradeoff
    between the added complexity versus the potential gain in
    performance".

    With [lead = window] this degenerates to {!Sender_multi}. Timers are
    per-message (Section IV style). *)

type t

val create :
  Ba_sim.Engine.t ->
  Config.t ->
  lead:int ->
  tx:(Ba_proto.Wire.data -> unit) ->
  next_payload:(unit -> string option) ->
  t
(** [config.window] bounds unacknowledged messages; [lead] bounds
    [ns - na]. Requires [lead >= config.window] and, when a wire modulus
    is set, [modulus >= 2 * lead]. *)

val pump : t -> unit
val on_ack : t -> Ba_proto.Wire.ack -> unit
val na : t -> int
val ns : t -> int
val outstanding : t -> int
(** Unacknowledged message count (not [ns - na]). *)

val is_done : t -> bool
val retransmissions : t -> int
val acked_total : t -> int

val buffered_bytes : t -> int
(** Total payload bytes buffered across the lead band (memory
    accounting). *)
