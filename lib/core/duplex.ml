type frame = {
  seq : int option;
  payload : string;
  pack : Ba_proto.Wire.ack option;
}

type stats = {
  submitted : int;
  delivered : int;
  frames_sent : int;
  data_frames : int;
  pure_ack_frames : int;
  piggybacked_acks : int;
  retransmissions : int;
}

type endpoint = {
  engine : Ba_sim.Engine.t;
  queue : string Queue.t;
  mutable submitted : int;
  mutable delivered : int;
  mutable link : frame Ba_channel.Link.t option;  (* tied after both endpoints exist *)
  mutable sender : Sender_multi.t option;
  mutable receiver : Receiver.t option;
  (* The newest unflushed block acknowledgment for the reverse direction,
     waiting for a data frame to ride on. *)
  mutable pending_ack : Ba_proto.Wire.ack option;
  mutable ack_timer : Ba_sim.Timer.t option;
  mutable frames_sent : int;
  mutable data_frames : int;
  mutable pure_ack_frames : int;
  mutable piggybacked_acks : int;
}

type t = { engine : Ba_sim.Engine.t; ea : endpoint; eb : endpoint }

let transmit_frame e frame =
  e.frames_sent <- e.frames_sent + 1;
  (match frame.seq with
  | Some _ -> e.data_frames <- e.data_frames + 1
  | None -> e.pure_ack_frames <- e.pure_ack_frames + 1);
  if frame.pack <> None && frame.seq <> None then
    e.piggybacked_acks <- e.piggybacked_acks + 1;
  match e.link with Some link -> Ba_channel.Link.send link frame | None -> ()

(* Take the pending acknowledgment (cancelling its flush timer). *)
let take_pending_ack e =
  match e.pending_ack with
  | None -> None
  | Some _ as pack ->
      e.pending_ack <- None;
      Option.iter Ba_sim.Timer.stop e.ack_timer;
      pack

let flush_pure_ack e =
  match take_pending_ack e with
  | None -> ()
  | Some _ as pack -> transmit_frame e { seq = None; payload = ""; pack }

(* Outbound data: wrap the wire record into a frame, piggybacking any
   pending acknowledgment. *)
let tx_data e (d : Ba_proto.Wire.data) =
  transmit_frame e { seq = Some d.Ba_proto.Wire.seq; payload = d.Ba_proto.Wire.payload; pack = take_pending_ack e }

(* Outbound acknowledgment from our receiver half: hold it for a data
   frame. Successive in-order block acknowledgments are adjacent ranges,
   so they merge into one wider block — the block-ack property doing the
   coalescing; a non-adjacent one (a duplicate re-ack) flushes the held
   block first, since a frame carries a single range. *)
let tx_ack ~piggyback_hold ~wire_modulus e (a : Ba_proto.Wire.ack) =
  let succ_wire x =
    match wire_modulus with Some n -> Ba_util.Modseq.succ ~n x | None -> x + 1
  in
  let held =
    match e.pending_ack with
    | Some p when succ_wire p.Ba_proto.Wire.hi = a.Ba_proto.Wire.lo ->
        Option.iter Ba_sim.Timer.stop e.ack_timer;
        e.pending_ack <- None;
        Ba_proto.Wire.make_ack ~lo:p.Ba_proto.Wire.lo ~hi:a.Ba_proto.Wire.hi
    | Some _ ->
        flush_pure_ack e;
        a
    | None -> a
  in
  if piggyback_hold = 0 then
    transmit_frame e { seq = None; payload = ""; pack = Some held }
  else begin
    e.pending_ack <- Some held;
    match e.ack_timer with
    | Some timer -> Ba_sim.Timer.start timer
    | None ->
        let timer =
          Ba_sim.Timer.create e.engine ~duration:piggyback_hold (fun () -> flush_pure_ack e)
        in
        e.ack_timer <- Some timer;
        Ba_sim.Timer.start timer
  end

let on_frame e frame =
  (* Data first: the receiver may pend a fresh acknowledgment, which the
     sends triggered by the piggybacked ack below can then carry. *)
  (match frame.seq with
  | Some seq ->
      Option.iter
        (fun r -> Receiver.on_data r (Ba_proto.Wire.make_data ~seq ~payload:frame.payload))
        e.receiver
  | None -> ());
  match frame.pack with
  | Some a -> Option.iter (fun s -> Sender_multi.on_ack s a) e.sender
  | None -> ()

let make_endpoint engine =
  {
    engine;
    queue = Queue.create ();
    submitted = 0;
    delivered = 0;
    link = None;
    sender = None;
    receiver = None;
    pending_ack = None;
    ack_timer = None;
    frames_sent = 0;
    data_frames = 0;
    pure_ack_frames = 0;
    piggybacked_acks = 0;
  }

let default_config = Config.make ~wire_modulus:(Some (2 * Config.default.Config.window)) ()

let create ?(seed = 42) ?(config = default_config) ?(piggyback_hold = 15) ?(loss = 0.)
    ?(delay = Ba_channel.Dist.Uniform (40, 60)) ~on_receive_a ~on_receive_b () =
  let engine = Ba_sim.Engine.create ~seed () in
  let ea = make_endpoint engine and eb = make_endpoint engine in
  (* Each endpoint's outbound link delivers to the peer. *)
  ea.link <- Some (Ba_channel.Link.create engine ~loss ~delay ~deliver:(fun f -> on_frame eb f) ());
  eb.link <- Some (Ba_channel.Link.create engine ~loss ~delay ~deliver:(fun f -> on_frame ea f) ());
  let wire_endpoint e on_receive =
    e.sender <-
      Some
        (Sender_multi.create engine config ~tx:(tx_data e)
           ~next_payload:(fun () -> Queue.take_opt e.queue));
    e.receiver <-
      Some
        (Receiver.create engine config
           ~tx:(tx_ack ~piggyback_hold ~wire_modulus:config.Config.wire_modulus e)
           ~deliver:(fun msg ->
             e.delivered <- e.delivered + 1;
             on_receive msg))
  in
  (* [on_receive_a] fires for messages arriving at A (sent by B), and
     vice versa. *)
  wire_endpoint ea on_receive_a;
  wire_endpoint eb on_receive_b;
  { engine; ea; eb }

(* A sends into its own queue; deliveries surface at the peer. *)
let a t = t.ea
let b t = t.eb

let send e msg =
  e.submitted <- e.submitted + 1;
  Queue.add msg e.queue;
  Option.iter Sender_multi.pump e.sender

let endpoint_idle e =
  (match e.sender with Some s -> Sender_multi.outstanding s = 0 | None -> true)
  && Queue.is_empty e.queue

let idle t =
  endpoint_idle t.ea && endpoint_idle t.eb
  && t.ea.submitted = t.eb.delivered
  && t.eb.submitted = t.ea.delivered

let run ?until t =
  match until with
  | Some horizon -> Ba_sim.Engine.run ~until:horizon t.engine
  | None -> Ba_sim.Engine.run t.engine

let stats e =
  {
    submitted = e.submitted;
    delivered = e.delivered;
    frames_sent = e.frames_sent;
    data_frames = e.data_frames;
    pure_ack_frames = e.pure_ack_frames;
    piggybacked_acks = e.piggybacked_acks;
    retransmissions = (match e.sender with Some s -> Sender_multi.retransmissions s | None -> 0);
  }

let engine t = t.engine
