(** Wall-clock driver: one {!Ba_sim.Engine}, one UDP socket, one
    [select] loop.

    The protocol endpoints are pure engine programs — their timers,
    handshakes and watchdogs are all virtual-time events. The driver is
    the adapter that makes those events happen in real time: it keeps
    the engine clock pinned to the wall clock (one tick = [tick_us]
    microseconds), computes each [select] timeout from
    {!Ba_sim.Engine.next_due}, and feeds arriving datagrams through the
    {!Codec} into the endpoint's callback. A retransmission timer armed
    for [rto] ticks therefore fires after [rto * tick_us] real
    microseconds of real silence — which is exactly how a killed peer
    is detected.

    Robustness contract, per the channel model we must survive
    (bounded-capacity, omitting, duplicating, non-FIFO):
    {ul
    {- receive: undecodable datagrams are counted and dropped, never
       raised; [EINTR]/[EAGAIN] retry; [ECONNREFUSED] (a dead peer's
       ICMP bounce surfacing on the error queue) is swallowed — peer
       death is the watchdog's business, not an exception;}
    {- send: [EINTR]/[EAGAIN]/[ENOBUFS] retry with exponential backoff
       (bounded; the datagram is dropped after the last attempt —
       it is UDP, the protocol's timers already assume loss);
       [ECONNREFUSED]/[EHOSTUNREACH]/[ENETUNREACH] count as drops;}
    {- the loop always returns by [deadline_s], whatever the sockets
       do — a hung peer cannot wedge the caller.}}

    Several drivers (each with its own engine and socket) can run under
    one {!run} call — that is how the in-process loopback pair used by
    the benchmark multiplexes a server and a client endpoint while
    keeping them as isolated as two processes. *)

type t

val create :
  engine:Ba_sim.Engine.t ->
  sock:Unix.file_descr ->
  tick_us:int ->
  on_frame:(Codec.frame -> Unix.sockaddr -> unit) ->
  unit ->
  t
(** Takes ownership of [sock] (sets it non-blocking). [tick_us] is the
    real duration of one engine tick; the engine must be at tick 0.
    [on_frame] receives every decodable arriving datagram with its
    source address. *)

val now_ticks : t -> int
(** Wall-clock time since {!create}, in ticks. *)

val sync : t -> unit
(** Advance the engine to the current wall tick, firing due events. *)

val send_to : t -> Unix.sockaddr -> Bytes.t -> int -> bool
(** Transmit one datagram with the bounded retry policy above. [false]
    when it was ultimately dropped (unreachable peer, full buffers);
    the caller treats that as channel loss. *)

val send_errors : t -> int
(** Datagrams dropped by {!send_to} after exhausting retries. *)

val decode_errors : t -> int
(** Arrivals rejected by {!Codec.decode}. *)

val rx_datagrams : t -> int
val tx_datagrams : t -> int

val run : ?deadline_s:float -> stop:(unit -> bool) -> t list -> bool
(** Drive the drivers until [stop ()] holds (checked after every batch
    of work) — [true] — or [deadline_s] of wall time elapses — [false].
    Default deadline 60 s. Never blocks longer than the earliest engine
    deadline across the drivers (or 50 ms, whichever is sooner, so an
    empty queue cannot sleep through the deadline). *)
