type t = {
  engine : Ba_sim.Engine.t;
  sock : Unix.file_descr;
  tick_us : int;
  on_frame : Codec.frame -> Unix.sockaddr -> unit;
  t0 : float;
  rx_buf : Bytes.t;
  mutable send_errors : int;
  mutable decode_errors : int;
  mutable rx_datagrams : int;
  mutable tx_datagrams : int;
}

let create ~engine ~sock ~tick_us ~on_frame () =
  if tick_us <= 0 then invalid_arg "Driver.create: tick_us must be positive";
  Unix.set_nonblock sock;
  {
    engine;
    sock;
    tick_us;
    on_frame;
    t0 = Unix.gettimeofday ();
    rx_buf = Bytes.create Codec.max_datagram;
    send_errors = 0;
    decode_errors = 0;
    rx_datagrams = 0;
    tx_datagrams = 0;
  }

let now_ticks t =
  let elapsed_us = (Unix.gettimeofday () -. t.t0) *. 1e6 in
  int_of_float (elapsed_us /. float_of_int t.tick_us)

let sync t =
  let now = now_ticks t in
  if now > Ba_sim.Engine.now t.engine then Ba_sim.Engine.run t.engine ~until:now

(* Seconds of wall clock until the engine's next due event; None when the
   queue is empty. Never negative. *)
let next_deadline_s t =
  match Ba_sim.Engine.next_due t.engine with
  | None -> None
  | Some due ->
      let due_s = float_of_int (due * t.tick_us) *. 1e-6 in
      let elapsed = Unix.gettimeofday () -. t.t0 in
      Some (Float.max 0. (due_s -. elapsed))

(* Drain everything currently queued on the socket. Nonblocking, so the
   natural exit is EAGAIN; EINTR just retries; ECONNREFUSED is the error
   queue reporting a previous send bounced off a dead peer — that is
   protocol-level silence, not an I/O error, so it is swallowed (losing
   at most the datagram the bounce was attached to, i.e. nothing). *)
let pump_socket t =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom t.sock t.rx_buf 0 (Bytes.length t.rx_buf) [] with
    | 0, _ -> t.decode_errors <- t.decode_errors + 1
    | len, from -> (
        t.rx_datagrams <- t.rx_datagrams + 1;
        match Codec.decode t.rx_buf ~len with
        | Ok frame -> t.on_frame frame from
        | Error _ -> t.decode_errors <- t.decode_errors + 1)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  done

let max_send_attempts = 4

let send_to t addr buf len =
  let rec attempt n backoff_us =
    match Unix.sendto t.sock buf 0 len [] addr with
    | _ ->
        t.tx_datagrams <- t.tx_datagrams + 1;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> attempt n backoff_us
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS), _, _) ->
        if n >= max_send_attempts then begin
          t.send_errors <- t.send_errors + 1;
          false
        end
        else begin
          (* Kernel buffers full: brief real sleep, doubling each try
             (1, 2, 4 ms). UDP already tolerates loss, so after the last
             attempt the datagram is simply dropped. *)
          ignore (Unix.select [] [] [] (float_of_int backoff_us *. 1e-6));
          attempt (n + 1) (backoff_us * 2)
        end
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.EHOSTUNREACH | Unix.ENETUNREACH), _, _) ->
        (* Dead or unreachable peer: equivalent to channel loss. *)
        t.send_errors <- t.send_errors + 1;
        false
  in
  attempt 1 1000

let send_errors t = t.send_errors
let decode_errors t = t.decode_errors
let rx_datagrams t = t.rx_datagrams
let tx_datagrams t = t.tx_datagrams

let max_idle_s = 0.05

let run ?(deadline_s = 60.) ~stop drivers =
  if drivers = [] then invalid_arg "Driver.run: no drivers";
  let hard_deadline = Unix.gettimeofday () +. deadline_s in
  let fds = List.map (fun d -> d.sock) drivers in
  let find_driver fd = List.find (fun d -> d.sock == fd) drivers in
  let rec loop () =
    List.iter sync drivers;
    List.iter pump_socket drivers;
    List.iter sync drivers;
    if stop () then true
    else
      let now = Unix.gettimeofday () in
      if now >= hard_deadline then false
      else
        let timeout =
          List.fold_left
            (fun acc d ->
              match next_deadline_s d with None -> acc | Some s -> Float.min acc s)
            max_idle_s drivers
        in
        let timeout = Float.min timeout (hard_deadline -. now) in
        (match Unix.select fds [] [] timeout with
        | readable, _, _ -> List.iter (fun fd -> pump_socket (find_driver fd)) readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
  in
  loop ()
