type frame = Data of Ba_proto.Wire.data | Ack of Ba_proto.Wire.ack

let version = 1
let magic = 0xBA
let max_payload = 60 * 1024
let data_header_len = 28
let ack_len = 32
let max_datagram = data_header_len + max_payload

let data_kind_tag = function
  | Ba_proto.Wire.Msg -> 0
  | Ba_proto.Wire.Sync_req -> 1
  | Ba_proto.Wire.Sync_fin -> 2

let data_kind_of_tag = function
  | 0 -> Some Ba_proto.Wire.Msg
  | 1 -> Some Ba_proto.Wire.Sync_req
  | 2 -> Some Ba_proto.Wire.Sync_fin
  | _ -> None

let ack_kind_tag = function Ba_proto.Wire.Ack -> 0 | Ba_proto.Wire.Sync_pos -> 1
let ack_kind_of_tag = function 0 -> Some Ba_proto.Wire.Ack | 1 -> Some Ba_proto.Wire.Sync_pos | _ -> None

let encoded_len = function
  | Data d -> data_header_len + String.length d.Ba_proto.Wire.payload
  | Ack _ -> ack_len

(* Every integer field is non-negative by construction (sequence numbers
   come out of [Seqcodec.encode], checksums are [land max_int]-ed), so
   the sign bit doubles as a cheap decode-side sanity check. *)
let put_nat64 buf off v name =
  if v < 0 then invalid_arg (Printf.sprintf "Codec.encode: negative %s" name);
  Bytes.set_int64_le buf off (Int64.of_int v)

let put_nat32 buf off v name =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Codec.encode: %s out of u32 range" name);
  Bytes.set_int32_le buf off (Int32.of_int v)

let encode buf f =
  let n = encoded_len f in
  if Bytes.length buf < n then invalid_arg "Codec.encode: buffer too small";
  (match f with
  | Data d ->
      let pl = String.length d.Ba_proto.Wire.payload in
      if pl > max_payload then invalid_arg "Codec.encode: payload exceeds max_payload";
      Bytes.set_uint8 buf 0 magic;
      Bytes.set_uint8 buf 1 version;
      Bytes.set_uint8 buf 2 0;
      Bytes.set_uint8 buf 3 (data_kind_tag d.Ba_proto.Wire.dkind);
      put_nat32 buf 4 d.Ba_proto.Wire.epoch "epoch";
      put_nat64 buf 8 d.Ba_proto.Wire.seq "seq";
      put_nat64 buf 16 d.Ba_proto.Wire.check "check";
      put_nat32 buf 24 pl "payload length";
      Bytes.blit_string d.Ba_proto.Wire.payload 0 buf data_header_len pl
  | Ack a ->
      Bytes.set_uint8 buf 0 magic;
      Bytes.set_uint8 buf 1 version;
      Bytes.set_uint8 buf 2 1;
      Bytes.set_uint8 buf 3 (ack_kind_tag a.Ba_proto.Wire.akind);
      put_nat32 buf 4 a.Ba_proto.Wire.epoch "epoch";
      put_nat64 buf 8 a.Ba_proto.Wire.lo "lo";
      put_nat64 buf 16 a.Ba_proto.Wire.hi "hi";
      put_nat64 buf 24 a.Ba_proto.Wire.check "check")
  ;
  n

(* An i64 field is acceptable iff it round-trips through the OCaml int
   it will live in and is non-negative — a negative or 2^62-ish value
   cannot have come from [encode]. *)
let get_nat64 buf off =
  let v64 = Bytes.get_int64_le buf off in
  let v = Int64.to_int v64 in
  if v < 0 || Int64.of_int v <> v64 then None else Some v

let get_u32 buf off = Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF

let decode buf ~len =
  if len < 4 then Error "short datagram"
  else if Bytes.get_uint8 buf 0 <> magic then Error "bad magic"
  else if Bytes.get_uint8 buf 1 <> version then Error "unknown codec version"
  else
    match Bytes.get_uint8 buf 2 with
    | 0 -> (
        if len < data_header_len then Error "truncated data header"
        else
          match data_kind_of_tag (Bytes.get_uint8 buf 3) with
          | None -> Error "unknown data kind"
          | Some dkind -> (
              let epoch = get_u32 buf 4 in
              match (get_nat64 buf 8, get_nat64 buf 16) with
              | Some seq, Some check ->
                  let pl = get_u32 buf 24 in
                  if pl > max_payload then Error "payload length exceeds limit"
                  else if data_header_len + pl <> len then Error "payload length mismatch"
                  else
                    let payload = Bytes.sub_string buf data_header_len pl in
                    Ok (Data { Ba_proto.Wire.seq; payload; epoch; dkind; check })
              | _ -> Error "field out of range"))
    | 1 -> (
        if len <> ack_len then Error "bad ack length"
        else
          match ack_kind_of_tag (Bytes.get_uint8 buf 3) with
          | None -> Error "unknown ack kind"
          | Some akind -> (
              let epoch = get_u32 buf 4 in
              match (get_nat64 buf 8, get_nat64 buf 16, get_nat64 buf 24) with
              | Some lo, Some hi, Some check ->
                  Ok (Ack { Ba_proto.Wire.lo; hi; epoch; akind; check })
              | _ -> Error "field out of range"))
    | _ -> Error "unknown frame class"

let frame_ok = function
  | Data d -> Ba_proto.Wire.data_ok d
  | Ack a -> Ba_proto.Wire.ack_ok a
