(** Fault injection at the socket boundary.

    The simulator injects faults inside {!Ba_channel.Link}; on a real
    socket there is no link object, so the shim sits between the
    protocol's encode step and [sendto] and applies the same composable
    {!Ba_channel.Fault_plan} — loss (bursty or not), duplication,
    corruption, delay spikes, scheduled outages — to outgoing
    datagrams. Chaos campaigns and the storm class therefore exercise
    real I/O with the very plans they use against the simulated link,
    and the fault schedule is replayable: decisions are drawn from a
    generator seeded at {!create}, one {!Ba_channel.Fault_plan.decide}
    step per datagram in send order.

    Delay verdicts are virtual-time delays: the copy is re-submitted by
    an engine timer [extra] ticks later, which on a wall-clock driver
    means real milliseconds — and therefore real reordering. Outage
    windows are checked against the engine clock, so a plan's
    [out\[a,b)] maps to a wall-clock blackout.

    The shim also carries the quarantine {!gate}: while closed (the
    watchdog's [Quarantine] action), every send — including delayed
    copies coming due — is discarded and counted, which is what "gate
    the flow off the link" means when the link is a kernel socket. *)

type stats = {
  offered : int;  (** datagrams submitted by the protocol *)
  passed : int;  (** handed to the transmit function, copies included *)
  dropped : int;  (** loss verdicts *)
  duplicated : int;  (** extra copies injected *)
  corrupted : int;  (** datagrams sent with a flipped byte *)
  delayed : int;  (** datagrams deferred by a delay-spike verdict *)
  outage_drops : int;  (** sends discarded inside a scheduled outage *)
  gated : int;  (** sends discarded while quarantined *)
}

type t

val create :
  Ba_sim.Engine.t ->
  ?plan:Ba_channel.Fault_plan.t ->
  seed:int ->
  transmit:(Bytes.t -> int -> unit) ->
  unit ->
  t
(** [transmit buf len] performs the real send; the shim owns [buf]'s
    contents only for the duration of the call. Without [plan] every
    datagram passes straight through (the gate still applies). *)

val send : t -> Bytes.t -> int -> unit
(** Submit one outgoing datagram. The bytes are copied if (and only if)
    a verdict needs them later or mangled, so the caller may reuse its
    buffer immediately. *)

val gate : t -> bool -> unit
(** [gate t true] closes the gate (quarantine); [false] reopens it. *)

val gated : t -> bool

val stats : t -> stats
