(** Binary wire codec for {!Ba_proto.Wire} frames on a real datagram
    transport.

    One frame per UDP datagram, in a fixed little-endian layout:

    {v
    off 0      magic 0xBA
    off 1      codec version (1)
    off 2      frame class: 0 = data, 1 = ack
    off 3      subkind tag (Msg/Sync_req/Sync_fin or Ack/Sync_pos)
    off 4..7   incarnation epoch           (u32)
    -- data --                    -- ack --
    off 8..15  seq        (i64)   lo       (i64)
    off 16..23 check      (i64)   hi       (i64)
    off 24..27 payload len (u32)  check    (i64, off 24..31)
    off 28..   payload bytes
    v}

    The payload is length-prefixed and the prefix must account for the
    datagram exactly — a truncated or padded datagram is rejected, not
    partially parsed. {!decode} never raises: every malformed input
    (short buffer, bad magic, unknown version or kind, negative or
    non-representable field, length mismatch) comes back as [Error],
    because on a real socket "garbage arrived" is an ordinary event.
    The frame checksum travels as an opaque field — the codec does not
    recompute it, so endpoint-side {!Ba_proto.Wire.data_ok} validation
    catches in-flight corruption exactly as it does in simulation. *)

type frame = Data of Ba_proto.Wire.data | Ack of Ba_proto.Wire.ack

val version : int

val max_payload : int
(** Largest encodable payload (60 KiB — under the UDP datagram limit
    with headers to spare). *)

val data_header_len : int
(** Bytes before the payload of a data frame (28). *)

val ack_len : int
(** Exact encoded size of an ack frame (32). *)

val max_datagram : int
(** [data_header_len + max_payload]; a receive buffer of this size
    never truncates a conforming frame. *)

val encoded_len : frame -> int

val encode : Bytes.t -> frame -> int
(** [encode buf f] writes [f] at offset 0 and returns the encoded
    length. Raises [Invalid_argument] when [buf] is too small, the
    payload exceeds {!max_payload}, or a field is negative — encoding
    failures are programming errors, unlike decoding ones. *)

val decode : Bytes.t -> len:int -> (frame, string) result
(** Parse the first [len] bytes of [buf]. Never raises (given
    [0 <= len <= Bytes.length buf]); the [Error] string says what was
    wrong, for diagnostics counters. The returned frame is freshly
    allocated — it aliases nothing in [buf]. *)

val frame_ok : frame -> bool
(** Endpoint-side integrity: the embedded checksum matches the decoded
    contents ({!Ba_proto.Wire.data_ok} / {!Ba_proto.Wire.ack_ok}). *)
