(** Protocol endpoints over a real datagram transport.

    {!Server} wraps a protocol's receiver half and {!Client} its sender
    half behind the {!Codec}: frames out of the protocol are encoded
    and pushed through an impairment {!Shim} to the socket; decoded
    arrivals are fed back in. Both halves stay pure engine programs —
    everything wall-clock lives in the {!Driver} that owns the socket.

    The server is the position authority (as in the resync handshake):
    it validates every delivered payload against the deterministic
    workload, folds the accepted stream into a running digest, and
    reports [(epoch, position, digest)] after each delivery so a
    process supervisor can persist them — the stable storage that makes
    a SIGKILL survivable. A fresh process restores by handing the
    persisted triple (epoch already bumped) to [?restore], which runs
    {!Ba_proto.Protocol.S.receiver_restore}: the receiver comes back as
    a new incarnation at the old position and re-announces it with POS
    until the sender cuts over.

    The client runs the {!Ba_proto.Watchdog} off real silence: a
    recurring engine event observes acknowledged progress and
    interprets the actions — [Resync] crash-restarts the sender (epoch
    bump + REQ/POS/FIN), [Quarantine] closes the shim's gate,
    [Release] reopens it and resyncs once more. A killed server is
    therefore detected by timeout, handled by handshake, and survived
    without operator help. *)

val expected_digest : wseed:int -> payload_size:int -> messages:int -> int
(** Digest of the full workload stream — what {!Server.digest} must
    equal after a complete, duplicate-free, in-order transfer. Both
    sides can compute it from the workload parameters alone, which is
    what makes the transfer checksummed end-to-end without either side
    keeping the payloads. *)

module Server : sig
  type t

  val create :
    engine:Ba_sim.Engine.t ->
    protocol:Ba_proto.Protocol.t ->
    config:Ba_proto.Proto_config.t ->
    messages:int ->
    payload_size:int ->
    wseed:int ->
    ?restore:int * int * int ->
    ?on_deliver:(epoch:int -> pos:int -> digest:int -> unit) ->
    ?plan:Ba_channel.Fault_plan.t ->
    ?impair_seed:int ->
    send:(Unix.sockaddr -> Bytes.t -> int -> unit) ->
    unit ->
    t
  (** [restore:(epoch, pos, digest)] rebuilds the receiver as
      incarnation [epoch] (the caller bumps the persisted epoch) at
      delivered position [pos] with the stream digest so far.
      [on_deliver] fires after every accepted delivery with the new
      durable state — write it down {e before} acknowledging the world,
      and a kill at any point loses nothing. [send] transmits one
      encoded datagram to the (learned) peer. *)

  val on_frame : t -> Codec.frame -> Unix.sockaddr -> unit
  (** Feed one decoded arrival. Any datagram — even one the protocol
      rejects as stale-epoch — teaches the server its peer's address,
      which is how a restarted process re-learns where to send POS. *)

  val peer : t -> Unix.sockaddr option

  val complete : t -> bool
  (** Every workload payload delivered. *)

  val position : t -> int
  (** In-order deliveries accepted so far (includes a restored prefix). *)

  val epoch : t -> int
  (** Highest incarnation epoch the receiver has spoken (observed on
      its outgoing acknowledgments). *)

  val digest : t -> int
  val duplicates : t -> int
  val misordered : t -> int
  val corrupted : t -> int
  (** Deliveries whose payload failed validation against the workload. *)

  val acks_sent : t -> int
  val stray_frames : t -> int
  (** Well-formed arrivals of the wrong class (acks at a server). *)

  val resync_rounds : t -> int
  val shim_stats : t -> Shim.stats
end

module Client : sig
  type t

  val create :
    engine:Ba_sim.Engine.t ->
    protocol:Ba_proto.Protocol.t ->
    config:Ba_proto.Proto_config.t ->
    messages:int ->
    payload_size:int ->
    wseed:int ->
    ?watchdog:Ba_proto.Watchdog.config ->
    ?plan:Ba_channel.Fault_plan.t ->
    ?impair_seed:int ->
    send:(Bytes.t -> int -> unit) ->
    unit ->
    t
  (** [send] transmits one encoded datagram to the server (the client
      always knows its peer). The watchdog (default
      {!Ba_proto.Watchdog.default_config}) starts observing
      immediately; its check interval is in engine ticks, hence real
      [check_interval * tick_us] microseconds under a driver. *)

  val on_frame : t -> Codec.frame -> unit
  val pump : t -> unit
  (** Start (or kick) the transfer; call once after wiring up. *)

  val finished : t -> bool
  (** Supplier exhausted and every payload acknowledged. *)

  val pulled : t -> int
  val acked : t -> int
  (** Monotone acknowledged-progress watermark (what the watchdog
      observes). *)

  val pull_wall : t -> int -> float
  (** Wall-clock time ([Unix.gettimeofday]) payload [i] was first
      pulled from the workload; negative if not yet pulled. *)

  val data_frames : t -> int
  val stray_frames : t -> int
  val retransmissions : t -> int
  val resync_rounds : t -> int

  val watchdog_resyncs : t -> int
  (** Watchdog-initiated sender resyncs (Release re-syncs included). *)

  val quarantines : t -> int
  val watchdog_state : t -> Ba_proto.Watchdog.state
  val gated : t -> bool
  val shim_stats : t -> Shim.stats
end

module Pair : sig
  (** Both halves in one process, each with its own engine, socket and
      driver, talking over real loopback UDP — the apparatus for the
      sim-vs-real benchmark and the loopback smoke tests. Per-payload
      latency is measured end to end: client pull wall-time to server
      delivery wall-time, into a {!Ba_util.Qsketch} (milliseconds). *)

  type outcome = {
    completed : bool;  (** both halves finished before the deadline *)
    delivered : int;
    duplicates : int;
    misordered : int;
    corrupted : int;
    digest : int;
    digest_expected : int;
    retransmissions : int;
    resync_rounds : int;
    watchdog_resyncs : int;
    wall_s : float;
    msgs_per_s : float;
    frames_tx : int;  (** datagrams put on the wire, both directions *)
    frames_rx : int;
    decode_errors : int;
    send_errors : int;
    latency_ms : Ba_util.Qsketch.t;
    client_shim : Shim.stats;
    server_shim : Shim.stats;
  }

  val run :
    protocol:Ba_proto.Protocol.t ->
    config:Ba_proto.Proto_config.t ->
    messages:int ->
    payload_size:int ->
    wseed:int ->
    ?plan:Ba_channel.Fault_plan.t ->
    ?impair_seed:int ->
    ?tick_us:int ->
    ?deadline_s:float ->
    unit ->
    outcome
  (** Impairment applies to both directions (independent fault streams
      split from [impair_seed]). [tick_us] (default 200) sets the real
      duration of one engine tick, so the default [rto] of 250 ticks
      retransmits after 50 ms of real silence. Always returns by
      [deadline_s] (default 60). Sockets are closed on exit. *)
end
