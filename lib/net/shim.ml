type stats = {
  offered : int;
  passed : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  outage_drops : int;
  gated : int;
}

type t = {
  engine : Ba_sim.Engine.t;
  instance : Ba_channel.Fault_plan.instance option;
  plan : Ba_channel.Fault_plan.t;
  rng : Ba_util.Rng.t;  (* corruption positions; separate stream from the verdicts *)
  transmit : Bytes.t -> int -> unit;
  mutable closed : bool;
  mutable offered : int;
  mutable passed : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable delayed : int;
  mutable outage_drops : int;
  mutable gated : int;
}

let create engine ?plan ~seed ~transmit () =
  let rng = Ba_util.Rng.create seed in
  let instance =
    Option.map (fun p -> Ba_channel.Fault_plan.instantiate p ~rng:(Ba_util.Rng.split rng)) plan
  in
  {
    engine;
    instance;
    plan = Option.value plan ~default:Ba_channel.Fault_plan.none;
    rng;
    transmit;
    closed = false;
    offered = 0;
    passed = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
    delayed = 0;
    outage_drops = 0;
    gated = 0;
  }

let pass t buf len =
  if t.closed then t.gated <- t.gated + 1
  else begin
    t.passed <- t.passed + 1;
    t.transmit buf len
  end

(* Flip one bit of a copy, never the length-critical header prefix: a
   mangled magic byte would just vanish at the decoder, whereas the
   interesting corruption is the one only the frame checksum catches. *)
let corrupt_copy t buf len =
  let copy = Bytes.sub buf 0 len in
  let pos = if len > 4 then 4 + Ba_util.Rng.int t.rng (len - 4) else Ba_util.Rng.int t.rng len in
  Bytes.set_uint8 copy pos (Bytes.get_uint8 copy pos lxor (1 lsl Ba_util.Rng.int t.rng 8));
  copy

let send t buf len =
  t.offered <- t.offered + 1;
  if t.closed then t.gated <- t.gated + 1
  else if Ba_channel.Fault_plan.in_outage t.plan ~now:(Ba_sim.Engine.now t.engine) then
    t.outage_drops <- t.outage_drops + 1
  else
    match t.instance with
    | None -> pass t buf len
    | Some i -> (
        match Ba_channel.Fault_plan.decide i with
        | Ba_channel.Fault_plan.Deliver -> pass t buf len
        | Ba_channel.Fault_plan.Drop -> t.dropped <- t.dropped + 1
        | Ba_channel.Fault_plan.Duplicate n ->
            t.duplicated <- t.duplicated + (n - 1);
            for _ = 1 to n do
              pass t buf len
            done
        | Ba_channel.Fault_plan.Corrupt ->
            if len = 0 then pass t buf len
            else begin
              t.corrupted <- t.corrupted + 1;
              let copy = corrupt_copy t buf len in
              pass t copy len
            end
        | Ba_channel.Fault_plan.Delay extra ->
            t.delayed <- t.delayed + 1;
            let copy = Bytes.sub buf 0 len in
            ignore
              (Ba_sim.Engine.schedule t.engine ~delay:extra (fun () -> pass t copy len)))

let gate t closed = t.closed <- closed
let gated t = t.closed

let stats t =
  {
    offered = t.offered;
    passed = t.passed;
    dropped = t.dropped;
    duplicated = t.duplicated;
    corrupted = t.corrupted;
    delayed = t.delayed;
    outage_drops = t.outage_drops;
    gated = t.gated;
  }
