module W = Ba_proto.Wire

(* Same multiply-xor fold as the frame checksums, over (index, payload)
   pairs: a per-byte rate is fine here because it runs once per
   delivery, not per retransmission. *)
let fnv_prime = 0x100000001b3
let digest_seed = 0x3bf29ce484222325

let digest_add d ~index ~payload =
  let h = ref ((d lxor index) * fnv_prime land max_int) in
  for i = 0 to String.length payload - 1 do
    h := (!h lxor Char.code (String.unsafe_get payload i)) * fnv_prime land max_int
  done;
  !h

let expected_digest ~wseed ~payload_size ~messages =
  let d = ref digest_seed in
  for i = 0 to messages - 1 do
    d :=
      digest_add !d ~index:i
        ~payload:(Ba_proto.Workload.payload ~seed:wseed ~size:payload_size i)
  done;
  !d

module Server = struct
  type t = {
    messages : int;
    next : int ref;
    dig : int ref;
    epoch : int ref;
    dups : int ref;
    misordered : int ref;
    corrupted : int ref;
    acks : int ref;
    stray : int ref;
    peer : Unix.sockaddr option ref;
    shim : Shim.t;
    feed : W.data -> unit;
    resync_rounds_ : unit -> int;
  }

  let create ~engine ~protocol:(module P : Ba_proto.Protocol.S) ~config ~messages
      ~payload_size ~wseed ?restore ?on_deliver ?plan ?(impair_seed = 1) ~send () =
    let peer = ref None in
    let shim =
      Shim.create engine ?plan ~seed:impair_seed
        ~transmit:(fun buf len -> match !peer with Some a -> send a buf len | None -> ())
        ()
    in
    let buf = Bytes.create Codec.max_datagram in
    let next = ref 0
    and dig = ref digest_seed
    and epoch = ref 0
    and dups = ref 0
    and misordered = ref 0
    and corrupted = ref 0
    and acks = ref 0 in
    let notify () =
      match on_deliver with
      | Some f -> f ~epoch:!epoch ~pos:!next ~digest:!dig
      | None -> ()
    in
    let deliver payload =
      match Ba_proto.Workload.index_of payload with
      | None -> incr corrupted
      | Some i when i < 0 || i >= messages -> incr corrupted
      | Some i ->
          if
            not
              (String.equal payload
                 (Ba_proto.Workload.payload ~seed:wseed ~size:payload_size i))
          then incr corrupted
          else if i < !next then incr dups
          else begin
            if i > !next then incr misordered;
            dig := digest_add !dig ~index:i ~payload;
            next := i + 1;
            notify ()
          end
    in
    let r =
      P.create_receiver engine config
        ~tx:(fun a ->
          if a.W.epoch > !epoch then epoch := a.W.epoch;
          incr acks;
          let len = Codec.encode buf (Codec.Ack a) in
          Shim.send shim buf len)
        ~deliver
    in
    (match restore with
    | None -> ()
    | Some (e, pos, d) ->
        P.receiver_restore r ~epoch:e ~pos;
        if e > !epoch then epoch := e;
        next := pos;
        dig := d);
    {
      messages;
      next;
      dig;
      epoch;
      dups;
      misordered;
      corrupted;
      acks;
      stray = ref 0;
      peer;
      shim;
      feed = (fun d -> P.receiver_on_data r d);
      resync_rounds_ = (fun () -> P.receiver_resync_rounds r);
    }

  let on_frame t frame from =
    (* Learn (or re-learn) the peer from any arrival: a stale-epoch frame
       the protocol will reject still tells a restarted process where
       the client lives, which is what lets its POS out the door. *)
    t.peer := Some from;
    match frame with
    | Codec.Data d -> t.feed d
    | Codec.Ack _ -> incr t.stray

  let peer t = !(t.peer)
  let complete t = !(t.next) >= t.messages
  let position t = !(t.next)
  let epoch t = !(t.epoch)
  let digest t = !(t.dig)
  let duplicates t = !(t.dups)
  let misordered t = !(t.misordered)
  let corrupted t = !(t.corrupted)
  let acks_sent t = !(t.acks)
  let stray_frames t = !(t.stray)
  let resync_rounds t = t.resync_rounds_ ()
  let shim_stats t = Shim.stats t.shim
end

module Client = struct
  type t = {
    pulled : int ref;
    pull_wall_ : float array;
    watermark : int ref;
    wd_resyncs : int ref;
    dog : Ba_proto.Watchdog.t;
    shim : Shim.t;
    feed : W.ack -> unit;
    pump_ : unit -> unit;
    done_ : unit -> bool;
    retx_ : unit -> int;
    resync_rounds_ : unit -> int;
    outstanding_ : unit -> int;
    data_frames : int ref;
    stray : int ref;
  }

  let create ~engine ~protocol:(module P : Ba_proto.Protocol.S) ~config ~messages
      ~payload_size ~wseed ?(watchdog = Ba_proto.Watchdog.default_config) ?plan
      ?(impair_seed = 1) ~send () =
    let shim = Shim.create engine ?plan ~seed:impair_seed ~transmit:send () in
    let buf = Bytes.create Codec.max_datagram in
    let pulled = ref 0
    and data_frames = ref 0 in
    let pull_wall_ = Array.make (max 1 messages) (-1.) in
    let supply = Ba_proto.Workload.supplier ~seed:wseed ~size:payload_size ~count:messages in
    let next_payload () =
      match supply () with
      | None -> None
      | Some p ->
          (match Ba_proto.Workload.index_of p with
          | Some i when i >= 0 && i < messages -> pull_wall_.(i) <- Unix.gettimeofday ()
          | Some _ | None -> ());
          incr pulled;
          Some p
    in
    let s =
      P.create_sender engine config
        ~tx:(fun d ->
          incr data_frames;
          let len = Codec.encode buf (Codec.Data d) in
          Shim.send shim buf len)
        ~next_payload
    in
    let dog = Ba_proto.Watchdog.create watchdog in
    let watermark = ref 0
    and wd_resyncs = ref 0 in
    let resync () =
      incr wd_resyncs;
      P.sender_crash s;
      P.sender_restart s
    in
    (* The watchdog's clock is a self-re-arming engine slot, so under a
       wall-clock driver "no progress for N checks" means N real check
       intervals of silence — peer-death detection by timeout. *)
    let slot_ref = ref None in
    let check () =
      let acked = !pulled - P.sender_outstanding s in
      if acked > !watermark then watermark := acked;
      (match
         Ba_proto.Watchdog.observe dog ~delivered:!watermark ~completed:(P.sender_done s)
       with
      | Ba_proto.Watchdog.Nothing -> ()
      | Ba_proto.Watchdog.Resync -> resync ()
      | Ba_proto.Watchdog.Quarantine -> Shim.gate shim true
      | Ba_proto.Watchdog.Release ->
          Shim.gate shim false;
          resync ());
      match !slot_ref with
      | Some slot ->
          Ba_sim.Engine.slot_arm slot ~delay:watchdog.Ba_proto.Watchdog.check_interval
      | None -> ()
    in
    let slot = Ba_sim.Engine.slot_create engine check in
    slot_ref := Some slot;
    Ba_sim.Engine.slot_arm slot ~delay:watchdog.Ba_proto.Watchdog.check_interval;
    {
      pulled;
      pull_wall_;
      watermark;
      wd_resyncs;
      dog;
      shim;
      feed = (fun a -> P.sender_on_ack s a);
      pump_ = (fun () -> P.sender_pump s);
      done_ = (fun () -> P.sender_done s);
      retx_ = (fun () -> P.sender_retransmissions s);
      resync_rounds_ = (fun () -> P.sender_resync_rounds s);
      outstanding_ = (fun () -> P.sender_outstanding s);
      data_frames;
      stray = ref 0;
    }

  let on_frame t = function
    | Codec.Ack a -> t.feed a
    | Codec.Data _ -> incr t.stray

  let pump t = t.pump_ ()
  let finished t = t.done_ ()
  let pulled t = !(t.pulled)

  let acked t =
    let live = !(t.pulled) - t.outstanding_ () in
    if live > !(t.watermark) then t.watermark := live;
    !(t.watermark)
  let pull_wall t i = t.pull_wall_.(i)
  let data_frames t = !(t.data_frames)
  let stray_frames t = !(t.stray)
  let retransmissions t = t.retx_ ()
  let resync_rounds t = t.resync_rounds_ ()
  let watchdog_resyncs t = !(t.wd_resyncs)
  let quarantines t = Ba_proto.Watchdog.quarantine_events t.dog
  let watchdog_state t = Ba_proto.Watchdog.state t.dog
  let gated t = Shim.gated t.shim
  let shim_stats t = Shim.stats t.shim
end

module Pair = struct
  type outcome = {
    completed : bool;
    delivered : int;
    duplicates : int;
    misordered : int;
    corrupted : int;
    digest : int;
    digest_expected : int;
    retransmissions : int;
    resync_rounds : int;
    watchdog_resyncs : int;
    wall_s : float;
    msgs_per_s : float;
    frames_tx : int;
    frames_rx : int;
    decode_errors : int;
    send_errors : int;
    latency_ms : Ba_util.Qsketch.t;
    client_shim : Shim.stats;
    server_shim : Shim.stats;
  }

  let loopback_sock () =
    let s = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    s

  let run ~protocol ~config ~messages ~payload_size ~wseed ?plan ?(impair_seed = 1)
      ?(tick_us = 200) ?(deadline_s = 60.) () =
    let s_sock = loopback_sock () and c_sock = loopback_sock () in
    Fun.protect
      ~finally:(fun () ->
        Unix.close s_sock;
        Unix.close c_sock)
      (fun () ->
        let s_addr = Unix.getsockname s_sock in
        let s_engine = Ba_sim.Engine.create ~seed:impair_seed ()
        and c_engine = Ba_sim.Engine.create ~seed:(impair_seed + 1) () in
        let srv = ref None and cli = ref None in
        let s_drv =
          Driver.create ~engine:s_engine ~sock:s_sock ~tick_us
            ~on_frame:(fun f from ->
              match !srv with Some s -> Server.on_frame s f from | None -> ())
            ()
        in
        let c_drv =
          Driver.create ~engine:c_engine ~sock:c_sock ~tick_us
            ~on_frame:(fun f _ ->
              match !cli with Some c -> Client.on_frame c f | None -> ())
            ()
        in
        let latency_ms = Ba_util.Qsketch.create () in
        let s' =
          Server.create ~engine:s_engine ~protocol ~config ~messages ~payload_size
            ~wseed ?plan ~impair_seed:(impair_seed * 2 + 1)
            ~on_deliver:(fun ~epoch:_ ~pos ~digest:_ ->
              match !cli with
              | Some c ->
                  let t0 = Client.pull_wall c (pos - 1) in
                  if t0 > 0. then
                    Ba_util.Qsketch.add latency_ms ((Unix.gettimeofday () -. t0) *. 1e3)
              | None -> ())
            ~send:(fun addr buf len -> ignore (Driver.send_to s_drv addr buf len))
            ()
        in
        let c' =
          Client.create ~engine:c_engine ~protocol ~config ~messages ~payload_size
            ~wseed ?plan ~impair_seed:(impair_seed * 2 + 2)
            ~send:(fun buf len -> ignore (Driver.send_to c_drv s_addr buf len))
            ()
        in
        srv := Some s';
        cli := Some c';
        let t0 = Unix.gettimeofday () in
        Client.pump c';
        let completed =
          Driver.run ~deadline_s
            ~stop:(fun () -> Server.complete s' && Client.finished c')
            [ s_drv; c_drv ]
        in
        let wall_s = Unix.gettimeofday () -. t0 in
        {
          completed;
          delivered = Server.position s';
          duplicates = Server.duplicates s';
          misordered = Server.misordered s';
          corrupted = Server.corrupted s';
          digest = Server.digest s';
          digest_expected = expected_digest ~wseed ~payload_size ~messages;
          retransmissions = Client.retransmissions c';
          resync_rounds = Client.resync_rounds c' + Server.resync_rounds s';
          watchdog_resyncs = Client.watchdog_resyncs c';
          wall_s;
          msgs_per_s =
            (if wall_s <= 0. then 0. else float_of_int (Server.position s') /. wall_s);
          frames_tx = Driver.tx_datagrams s_drv + Driver.tx_datagrams c_drv;
          frames_rx = Driver.rx_datagrams s_drv + Driver.rx_datagrams c_drv;
          decode_errors = Driver.decode_errors s_drv + Driver.decode_errors c_drv;
          send_errors = Driver.send_errors s_drv + Driver.send_errors c_drv;
          latency_ms;
          client_shim = Client.shim_stats c';
          server_shim = Server.shim_stats s';
        })
end
