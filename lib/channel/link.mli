(** Simulated unidirectional link: loses, reorders, and — under an
    adversarial {!Fault_plan} — duplicates, corrupts, delays and blacks
    out.

    The baseline is the paper's channel model under the discrete-event
    engine: each message independently suffers Bernoulli loss and a
    random delay drawn from a bounded distribution. Independent delays
    mean later messages can overtake earlier ones — exactly "message
    disorder". With no fault plan installed the link never duplicates
    (the paper's channels are sets; at most one copy of a sent message
    is ever in transit).

    Two programmable layers sit on top of the random loss:
    {ul
    {- a scripted fault hook ({!set_fault}) for deterministic
       experiments ("drop the third acknowledgment"), now returning a
       full {!verdict};}
    {- a randomized {!Fault_plan} ({!set_plan}) for chaos campaigns:
       bursty Gilbert-Elliott loss, duplication, corruption, delay
       spikes and scheduled outages.}} *)

type 'a t

type verdict = Fault_plan.verdict =
  | Deliver
  | Drop
  | Duplicate of int  (** deliver this many copies in total *)
  | Corrupt  (** deliver one mangled copy (see [create]'s [corrupt]) *)
  | Delay of int  (** deliver after this many extra ticks *)

type stats = {
  sent : int;
  delivered : int;  (** arrivals, counting every duplicate copy *)
  dropped : int;  (** random loss + fault-verdict drops *)
  queue_dropped : int;  (** tail drops at the bottleneck queue *)
  reordered : int;  (** deliveries overtaken by a later-sent message *)
  duplicated : int;  (** extra copies injected by [Duplicate] verdicts *)
  corrupted : int;  (** messages mangled by [Corrupt] verdicts *)
  outage_drops : int;  (** sends discarded during a scheduled outage *)
}

val create :
  Ba_sim.Engine.t ->
  ?loss:float ->
  ?delay:Dist.t ->
  ?bottleneck:int * int ->
  ?corrupt:('a -> 'a) ->
  ?release:('a -> unit) ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~loss ~delay ~deliver ()] builds a link that calls
    [deliver] at arrival time. Defaults: [loss = 0.], [delay = Constant 1].
    The link draws from its own split of the engine's random stream.

    [bottleneck:(service_time, queue_capacity)] models a congestible
    router in front of the propagation delay: messages are serviced one
    per [service_time] ticks from a FIFO queue of at most
    [queue_capacity]; arrivals to a full queue are tail-dropped (counted
    in [queue_dropped]). This makes loss *load-dependent*, which is what
    variable-window (congestion-control) experiments need.

    [corrupt] mangles a message when a [Corrupt] verdict fires (it
    should damage the payload so a checksum can catch it). Without it,
    [Corrupt] still counts in [stats] but delivers the message
    unharmed.

    [release] transfers message ownership to the link: every message
    handed to [send] is passed to [release] exactly once when it leaves
    the system — after its [deliver] call returns, or immediately when
    it is dropped (loss, fault verdict, bottleneck tail-drop, outage).
    Messages duplicated by a [Duplicate] verdict are the exception:
    their copies alias one value, so the link never releases them and
    the GC reclaims the value after the last copy arrives. This is the
    hook frame pools use to recycle wire records; [deliver] must not
    retain the message past its return (retaining the payload string it
    carries is fine — release recycles only the frame itself). *)

val queue_length : 'a t -> int
(** Messages waiting at the bottleneck (0 when none configured). *)

val send : 'a t -> 'a -> unit

val set_fault : 'a t -> ('a -> verdict) -> unit
(** Install a scripted hook consulted at send time. A non-[Deliver]
    verdict takes precedence over the fault plan; independent Bernoulli
    loss still applies on top. *)

val clear_fault : 'a t -> unit

val set_plan : 'a t -> Fault_plan.t -> unit
(** Install (or replace) a randomized fault plan; the instance draws
    from a fresh split of the link's random stream. Outage windows are
    checked against engine time on every send and counted in
    [outage_drops]; other verdicts come from {!Fault_plan.decide}. *)

val clear_plan : 'a t -> unit

val plan : 'a t -> Fault_plan.t option

val in_flight : 'a t -> int
(** Messages currently in transit. *)

val max_delay : 'a t -> int
(** The delay distribution's bound — what a conservative timeout needs.
    Note a fault plan's delay spikes can exceed it. *)

val stats : 'a t -> stats
val loss : 'a t -> float
