type verdict = Fault_plan.verdict =
  | Deliver
  | Drop
  | Duplicate of int
  | Corrupt
  | Delay of int

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  queue_dropped : int;
  reordered : int;
  duplicated : int;
  corrupted : int;
  outage_drops : int;
}

(* In-transit messages live in a struct-of-arrays arena (message, send
   index, extra delay, releasable flag) and are referred to by integer
   id everywhere: the bottleneck queue is a ring of ids and the two
   event callbacks ([deliver_ev]/[serve_ev], built once at [create])
   take an id through {!Ba_sim.Engine.schedule_fn}. Steady-state sends
   therefore allocate nothing — the old implementation built a
   [Queue.t] tuple plus one closure per delivery.

   [release] transfers message ownership to the link: a message handed
   to [send] is released exactly once, when it leaves the system
   (delivered, dropped, tail-dropped, or discarded in an outage) —
   except duplicated messages, whose copies alias one value and are
   left to the GC. *)

type 'a t = {
  engine : Ba_sim.Engine.t;
  loss : float;
  delay : Dist.t;
  bottleneck : (int * int) option;  (* service time, queue capacity *)
  deliver : 'a -> unit;
  corrupt : ('a -> 'a) option;
  release : ('a -> unit) option;
  rng : Ba_util.Rng.t;
  mutable fault : ('a -> verdict) option;
  mutable plan : Fault_plan.instance option;
  mutable deliver_ev : int -> unit;  (* persistent propagation-arrival callback *)
  mutable serve_ev : int -> unit;  (* persistent bottleneck service-completion callback *)
  (* arena of in-transit messages *)
  mutable ent_msg : 'a array;  (* [||] until the first send supplies a filler *)
  mutable ent_idx : int array;
  mutable ent_extra : int array;
  mutable ent_rel : bool array;
  mutable ent_free : int array;
  mutable ent_free_len : int;
  (* bottleneck FIFO: ring of arena ids, capacity fixed at create *)
  q_buf : int array;
  mutable q_head : int;
  mutable q_len : int;
  mutable serving : bool;
  mutable in_flight : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable queue_dropped : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable outage_drops : int;
  mutable send_index : int;
  mutable max_delivered_index : int;
}

let ignore_int (_ : int) = ()

let rec create : 'a.
    Ba_sim.Engine.t ->
    ?loss:float ->
    ?delay:Dist.t ->
    ?bottleneck:int * int ->
    ?corrupt:('a -> 'a) ->
    ?release:('a -> unit) ->
    deliver:('a -> unit) ->
    unit ->
    'a t =
 fun engine ?(loss = 0.) ?(delay = Dist.Constant 1) ?bottleneck ?corrupt ?release ~deliver () ->
  if loss < 0. || loss > 1. then invalid_arg "Link.create: loss must be in [0,1]";
  (match bottleneck with
  | Some (service, capacity) when service <= 0 || capacity <= 0 ->
      invalid_arg "Link.create: bottleneck needs positive service time and capacity"
  | Some _ | None -> ());
  let t =
    {
      engine;
      loss;
      delay;
      bottleneck;
      deliver;
      corrupt;
      release;
      rng = Ba_util.Rng.split (Ba_sim.Engine.rng engine);
      fault = None;
      plan = None;
      deliver_ev = ignore_int;
      serve_ev = ignore_int;
      ent_msg = [||];
      ent_idx = [||];
      ent_extra = [||];
      ent_rel = [||];
      ent_free = [||];
      ent_free_len = 0;
      q_buf = (match bottleneck with Some (_, cap) -> Array.make cap 0 | None -> [||]);
      q_head = 0;
      q_len = 0;
      serving = false;
      in_flight = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      queue_dropped = 0;
      reordered = 0;
      duplicated = 0;
      corrupted = 0;
      outage_drops = 0;
      send_index = 0;
      max_delivered_index = -1;
    }
  in
  t.deliver_ev <- (fun id -> on_arrival t id);
  t.serve_ev <- (fun id -> on_served t id);
  t

(* ---- arena ---- *)

and alloc_entry : 'a. 'a t -> 'a -> int -> int -> bool -> int =
 fun t msg index extra rel ->
  if t.ent_free_len = 0 then begin
    let old = Array.length t.ent_msg in
    let cap = if old = 0 then 16 else 2 * old in
    let m = Array.make cap msg in
    Array.blit t.ent_msg 0 m 0 old;
    t.ent_msg <- m;
    let ix = Array.make cap 0 in
    Array.blit t.ent_idx 0 ix 0 old;
    t.ent_idx <- ix;
    let ex = Array.make cap 0 in
    Array.blit t.ent_extra 0 ex 0 old;
    t.ent_extra <- ex;
    let rl = Array.make cap false in
    Array.blit t.ent_rel 0 rl 0 old;
    t.ent_rel <- rl;
    let fr = Array.make cap 0 in
    for i = 0 to cap - old - 1 do
      fr.(i) <- cap - 1 - i
    done;
    t.ent_free <- fr;
    t.ent_free_len <- cap - old
  end;
  t.ent_free_len <- t.ent_free_len - 1;
  let id = t.ent_free.(t.ent_free_len) in
  t.ent_msg.(id) <- msg;
  t.ent_idx.(id) <- index;
  t.ent_extra.(id) <- extra;
  t.ent_rel.(id) <- rel;
  id

and free_entry : 'a. 'a t -> int -> unit =
 fun t id ->
  t.ent_free.(t.ent_free_len) <- id;
  t.ent_free_len <- t.ent_free_len + 1

(* ---- delivery pipeline ---- *)

(* Propagation stage: the per-message random delay after any queueing. *)
and propagate : 'a. 'a t -> int -> unit =
 fun t id ->
  t.in_flight <- t.in_flight + 1;
  let delay = Dist.sample t.delay t.rng + t.ent_extra.(id) in
  Ba_sim.Engine.schedule_fn t.engine ~delay t.deliver_ev id

and on_arrival : 'a. 'a t -> int -> unit =
 fun t id ->
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  let index = t.ent_idx.(id) in
  if index < t.max_delivered_index then t.reordered <- t.reordered + 1
  else t.max_delivered_index <- index;
  let msg = t.ent_msg.(id) in
  let rel = t.ent_rel.(id) in
  free_entry t id;
  t.deliver msg;
  if rel then match t.release with Some r -> r msg | None -> ()

and serve_next : 'a. 'a t -> int -> unit =
 fun t service_time ->
  if t.q_len = 0 then t.serving <- false
  else begin
    let cap = Array.length t.q_buf in
    let id = t.q_buf.(t.q_head) in
    t.q_head <- (t.q_head + 1) mod cap;
    t.q_len <- t.q_len - 1;
    t.serving <- true;
    Ba_sim.Engine.schedule_fn t.engine ~delay:service_time t.serve_ev id
  end

and on_served : 'a. 'a t -> int -> unit =
 fun t id ->
  propagate t id;
  match t.bottleneck with
  | Some (service_time, _) -> serve_next t service_time
  | None -> ()

let maybe_release t msg = match t.release with Some r -> r msg | None -> ()

(* One surviving copy enters the (optional) bottleneck and then the
   propagation stage. *)
let admit t msg index extra rel =
  match t.bottleneck with
  | None -> propagate t (alloc_entry t msg index extra rel)
  | Some (service_time, capacity) ->
      if t.q_len >= capacity then begin
        t.queue_dropped <- t.queue_dropped + 1;
        if rel then maybe_release t msg
      end
      else begin
        let id = alloc_entry t msg index extra rel in
        t.q_buf.((t.q_head + t.q_len) mod capacity) <- id;
        t.q_len <- t.q_len + 1;
        if not t.serving then serve_next t service_time
      end

let send t msg =
  t.sent <- t.sent + 1;
  let index = t.send_index in
  t.send_index <- t.send_index + 1;
  let in_outage =
    match t.plan with
    | Some inst -> Fault_plan.in_outage (Fault_plan.plan inst) ~now:(Ba_sim.Engine.now t.engine)
    | None -> false
  in
  if in_outage then begin
    t.outage_drops <- t.outage_drops + 1;
    maybe_release t msg
  end
  else begin
    (* The scripted hook takes precedence; the plan fills in when the
       hook passes. Independent Bernoulli loss applies on top of both. *)
    let verdict =
      match t.fault with
      | Some f -> (
          match f msg with
          | Deliver -> ( match t.plan with Some inst -> Fault_plan.decide inst | None -> Deliver)
          | v -> v)
      | None -> ( match t.plan with Some inst -> Fault_plan.decide inst | None -> Deliver)
    in
    if Ba_util.Rng.bernoulli t.rng t.loss then begin
      t.dropped <- t.dropped + 1;
      maybe_release t msg
    end
    else
      match verdict with
      | Drop ->
          t.dropped <- t.dropped + 1;
          maybe_release t msg
      | Deliver -> admit t msg index 0 true
      | Delay extra -> admit t msg index (max 0 extra) true
      | Duplicate copies ->
          let copies = max 1 copies in
          t.duplicated <- t.duplicated + (copies - 1);
          (* The copies alias one value, so none is individually
             releasable; the GC reclaims it after the last arrival. *)
          for _ = 1 to copies do
            admit t msg index 0 false
          done
      | Corrupt ->
          t.corrupted <- t.corrupted + 1;
          let mangled = match t.corrupt with Some f -> f msg | None -> msg in
          if mangled != msg then maybe_release t msg;
          admit t mangled index 0 true
  end

let set_fault t f = t.fault <- Some f
let clear_fault t = t.fault <- None

let set_plan t plan = t.plan <- Some (Fault_plan.instantiate plan ~rng:(Ba_util.Rng.split t.rng))
let clear_plan t = t.plan <- None
let plan t = Option.map Fault_plan.plan t.plan

let in_flight t = t.in_flight + t.q_len + if t.serving then 1 else 0
let queue_length t = t.q_len
let max_delay t = Dist.max_delay t.delay

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    queue_dropped = t.queue_dropped;
    reordered = t.reordered;
    duplicated = t.duplicated;
    corrupted = t.corrupted;
    outage_drops = t.outage_drops;
  }

let loss t = t.loss
