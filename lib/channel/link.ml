type verdict = Fault_plan.verdict =
  | Deliver
  | Drop
  | Duplicate of int
  | Corrupt
  | Delay of int

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  queue_dropped : int;
  reordered : int;
  duplicated : int;
  corrupted : int;
  outage_drops : int;
}

type 'a t = {
  engine : Ba_sim.Engine.t;
  loss : float;
  delay : Dist.t;
  bottleneck : (int * int) option;  (* service time, queue capacity *)
  deliver : 'a -> unit;
  corrupt : ('a -> 'a) option;
  rng : Ba_util.Rng.t;
  mutable fault : ('a -> verdict) option;
  mutable plan : Fault_plan.instance option;
  queue : ('a * int * int) Queue.t;  (* message, send index, extra delay *)
  mutable serving : bool;
  mutable in_flight : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable queue_dropped : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable outage_drops : int;
  mutable send_index : int;
  mutable max_delivered_index : int;
}

let create engine ?(loss = 0.) ?(delay = Dist.Constant 1) ?bottleneck ?corrupt ~deliver () =
  if loss < 0. || loss > 1. then invalid_arg "Link.create: loss must be in [0,1]";
  (match bottleneck with
  | Some (service, capacity) when service <= 0 || capacity <= 0 ->
      invalid_arg "Link.create: bottleneck needs positive service time and capacity"
  | Some _ | None -> ());
  {
    engine;
    loss;
    delay;
    bottleneck;
    deliver;
    corrupt;
    rng = Ba_util.Rng.split (Ba_sim.Engine.rng engine);
    fault = None;
    plan = None;
    queue = Queue.create ();
    serving = false;
    in_flight = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    queue_dropped = 0;
    reordered = 0;
    duplicated = 0;
    corrupted = 0;
    outage_drops = 0;
    send_index = 0;
    max_delivered_index = -1;
  }

(* Propagation stage: the per-message random delay after any queueing. *)
let propagate t msg index extra =
  t.in_flight <- t.in_flight + 1;
  let delay = Dist.sample t.delay t.rng + extra in
  ignore
    (Ba_sim.Engine.schedule t.engine ~delay (fun () ->
         t.in_flight <- t.in_flight - 1;
         t.delivered <- t.delivered + 1;
         if index < t.max_delivered_index then t.reordered <- t.reordered + 1
         else t.max_delivered_index <- index;
         t.deliver msg))

let rec serve t service_time =
  match Queue.take_opt t.queue with
  | None -> t.serving <- false
  | Some (msg, index, extra) ->
      t.serving <- true;
      ignore
        (Ba_sim.Engine.schedule t.engine ~delay:service_time (fun () ->
             propagate t msg index extra;
             serve t service_time))

(* One surviving copy enters the (optional) bottleneck and then the
   propagation stage. *)
let admit t msg index extra =
  match t.bottleneck with
  | None -> propagate t msg index extra
  | Some (service_time, capacity) ->
      if Queue.length t.queue >= capacity then t.queue_dropped <- t.queue_dropped + 1
      else begin
        Queue.add (msg, index, extra) t.queue;
        if not t.serving then serve t service_time
      end

let send t msg =
  t.sent <- t.sent + 1;
  let index = t.send_index in
  t.send_index <- t.send_index + 1;
  let in_outage =
    match t.plan with
    | Some inst -> Fault_plan.in_outage (Fault_plan.plan inst) ~now:(Ba_sim.Engine.now t.engine)
    | None -> false
  in
  if in_outage then t.outage_drops <- t.outage_drops + 1
  else begin
    (* The scripted hook takes precedence; the plan fills in when the
       hook passes. Independent Bernoulli loss applies on top of both. *)
    let verdict =
      match t.fault with
      | Some f -> (
          match f msg with
          | Deliver -> ( match t.plan with Some inst -> Fault_plan.decide inst | None -> Deliver)
          | v -> v)
      | None -> ( match t.plan with Some inst -> Fault_plan.decide inst | None -> Deliver)
    in
    if Ba_util.Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
    else
      match verdict with
      | Drop -> t.dropped <- t.dropped + 1
      | Deliver -> admit t msg index 0
      | Delay extra -> admit t msg index (max 0 extra)
      | Duplicate copies ->
          let copies = max 1 copies in
          t.duplicated <- t.duplicated + (copies - 1);
          for _ = 1 to copies do
            admit t msg index 0
          done
      | Corrupt ->
          t.corrupted <- t.corrupted + 1;
          let mangled = match t.corrupt with Some f -> f msg | None -> msg in
          admit t mangled index 0
  end

let set_fault t f = t.fault <- Some f
let clear_fault t = t.fault <- None

let set_plan t plan = t.plan <- Some (Fault_plan.instantiate plan ~rng:(Ba_util.Rng.split t.rng))
let clear_plan t = t.plan <- None
let plan t = Option.map Fault_plan.plan t.plan

let in_flight t = t.in_flight + Queue.length t.queue + if t.serving then 1 else 0
let queue_length t = Queue.length t.queue
let max_delay t = Dist.max_delay t.delay

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    queue_dropped = t.queue_dropped;
    reordered = t.reordered;
    duplicated = t.duplicated;
    corrupted = t.corrupted;
    outage_drops = t.outage_drops;
  }

let loss t = t.loss
