type verdict = Deliver | Drop | Duplicate of int | Corrupt | Delay of int

type gilbert_elliott = {
  p_enter_bad : float;
  p_exit_bad : float;
  loss_good : float;
  loss_bad : float;
}

type outage = { from_tick : int; until_tick : int }

type t = {
  bursty : gilbert_elliott option;
  duplicate : float;
  copies : int;
  corrupt : float;
  delay_spike : (float * int) option;
  outages : outage list;
}

let none =
  { bursty = None; duplicate = 0.; copies = 2; corrupt = 0.; delay_spike = None; outages = [] }

let check_prob what p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault_plan: %s probability %g outside [0,1]" what p)

let validate t =
  (match t.bursty with
  | None -> ()
  | Some g ->
      check_prob "p_enter_bad" g.p_enter_bad;
      check_prob "p_exit_bad" g.p_exit_bad;
      check_prob "loss_good" g.loss_good;
      check_prob "loss_bad" g.loss_bad;
      if g.p_exit_bad = 0. && g.p_enter_bad > 0. && g.loss_bad >= 1. then
        invalid_arg "Fault_plan: absorbing bad state with total loss never delivers again");
  check_prob "duplicate" t.duplicate;
  check_prob "corrupt" t.corrupt;
  if t.copies < 2 then invalid_arg "Fault_plan: copies must be >= 2";
  (match t.delay_spike with
  | Some (p, d) ->
      check_prob "delay_spike" p;
      if d < 0 then invalid_arg "Fault_plan: negative delay spike"
  | None -> ());
  List.iter
    (fun o ->
      if o.from_tick < 0 || o.until_tick <= o.from_tick then
        invalid_arg "Fault_plan: outage needs 0 <= from_tick < until_tick")
    t.outages

let make ?bursty ?(duplicate = 0.) ?(copies = 2) ?(corrupt = 0.) ?delay_spike ?(outages = [])
    () =
  let t = { bursty; duplicate; copies; corrupt; delay_spike; outages } in
  validate t;
  t

let in_outage t ~now =
  List.exists (fun o -> now >= o.from_tick && now < o.until_tick) t.outages

let quiesced_after t = List.fold_left (fun acc o -> max acc o.until_tick) 0 t.outages

let pp ppf t =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  (match t.bursty with
  | Some g ->
      add "ge(%.3f->%.3f,l=%.2f/%.2f)" g.p_enter_bad g.p_exit_bad g.loss_good g.loss_bad
  | None -> ());
  if t.duplicate > 0. then add "dup(%.2fx%d)" t.duplicate t.copies;
  if t.corrupt > 0. then add "corr(%.2f)" t.corrupt;
  (match t.delay_spike with Some (p, d) -> add "spike(%.2f,+%d)" p d | None -> ());
  List.iter (fun o -> add "out[%d,%d)" o.from_tick o.until_tick) t.outages;
  match !parts with
  | [] -> Format.pp_print_string ppf "none"
  | parts -> Format.pp_print_string ppf (String.concat "+" (List.rev parts))

let to_string t = Format.asprintf "%a" pp t

(* Split a replay key into fault tokens: '+' separates tokens only at
   bracket depth 0, because [spike(0.10,+40)] carries a '+' of its own. *)
let split_tokens s =
  let toks = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | '+' when !depth = 0 ->
          toks := Buffer.contents buf :: !toks;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  toks := Buffer.contents buf :: !toks;
  List.rev_map String.trim !toks

let of_string s =
  let ( let* ) = Result.bind in
  let try_scan tok fmt k = try Some (Scanf.sscanf tok fmt k) with Scanf.Scan_failure _ | Failure _ | End_of_file -> None in
  let once what field v =
    match field with
    | None -> Ok (Some v)
    | Some _ -> Error (Printf.sprintf "duplicate %s fault in plan %S" what s)
  in
  (* Range-check each token's contribution the moment it parses, so an
     out-of-range value is reported against the token that carried it
     ("token \"out[10,5)\": …") rather than as a whole-plan validation
     failure that names neither token nor position. *)
  let checked tok piece =
    match validate piece with
    | () -> Ok ()
    | exception Invalid_argument m -> Error (Printf.sprintf "bad fault token %S: %s" tok m)
  in
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest ->
        let bursty, dup, corr, spike, outs = acc in
        let* acc =
          match try_scan tok "ge(%f->%f,l=%f/%f)%!" (fun a b c d -> (a, b, c, d)) with
          | Some (p_enter_bad, p_exit_bad, loss_good, loss_bad) ->
              let g = { p_enter_bad; p_exit_bad; loss_good; loss_bad } in
              let* () = checked tok { none with bursty = Some g } in
              let* g = once "ge" bursty g in
              Ok (g, dup, corr, spike, outs)
          | None -> (
              match try_scan tok "dup(%fx%d)%!" (fun p c -> (p, c)) with
              | Some (p, c) ->
                  let* () = checked tok { none with duplicate = p; copies = c } in
                  let* d = once "dup" dup (p, c) in
                  Ok (bursty, d, corr, spike, outs)
              | None -> (
                  match try_scan tok "corr(%f)%!" (fun p -> p) with
                  | Some c ->
                      let* () = checked tok { none with corrupt = c } in
                      let* c = once "corr" corr c in
                      Ok (bursty, dup, c, spike, outs)
                  | None -> (
                      match try_scan tok "spike(%f,+%d)%!" (fun p d -> (p, d)) with
                      | Some sp ->
                          let* () = checked tok { none with delay_spike = Some sp } in
                          let* sp = once "spike" spike sp in
                          Ok (bursty, dup, corr, sp, outs)
                      | None -> (
                          match try_scan tok "out[%d,%d)%!" (fun a b -> { from_tick = a; until_tick = b }) with
                          | Some o ->
                              let* () = checked tok { none with outages = [ o ] } in
                              Ok (bursty, dup, corr, spike, o :: outs)
                          | None -> Error (Printf.sprintf "unrecognized fault token %S in plan %S" tok s)))))
        in
        go acc rest
  in
  if String.trim s = "none" then Ok none
  else
    let* bursty, dup, corr, spike, outs = go (None, None, None, None, []) (split_tokens s) in
    let duplicate, copies = match dup with Some (p, c) -> (p, c) | None -> (0., 2) in
    let t =
      {
        bursty;
        duplicate;
        copies;
        corrupt = Option.value corr ~default:0.;
        delay_spike = spike;
        outages = List.rev outs;
      }
    in
    match validate t with () -> Ok t | exception Invalid_argument m -> Error m

type burst_stats = { steps : int; bad_entries : int; bad_steps : int }

type instance = {
  plan : t;
  rng : Ba_util.Rng.t;
  mutable in_bad : bool;
  mutable steps : int;
  mutable bad_entries : int;
  mutable bad_steps : int;
}

let instantiate plan ~rng =
  validate plan;
  { plan; rng; in_bad = false; steps = 0; bad_entries = 0; bad_steps = 0 }

let plan i = i.plan

let ge_step i g =
  (if i.in_bad then begin
     if Ba_util.Rng.bernoulli i.rng g.p_exit_bad then i.in_bad <- false
   end
   else if Ba_util.Rng.bernoulli i.rng g.p_enter_bad then begin
     i.in_bad <- true;
     i.bad_entries <- i.bad_entries + 1
   end);
  if i.in_bad then i.bad_steps <- i.bad_steps + 1;
  Ba_util.Rng.bernoulli i.rng (if i.in_bad then g.loss_bad else g.loss_good)

let decide i =
  i.steps <- i.steps + 1;
  let p = i.plan in
  let lost = match p.bursty with Some g -> ge_step i g | None -> false in
  if lost then Drop
  else if p.duplicate > 0. && Ba_util.Rng.bernoulli i.rng p.duplicate then Duplicate p.copies
  else if p.corrupt > 0. && Ba_util.Rng.bernoulli i.rng p.corrupt then Corrupt
  else
    match p.delay_spike with
    | Some (prob, extra) when Ba_util.Rng.bernoulli i.rng prob -> Delay extra
    | Some _ | None -> Deliver

let burst_stats i = { steps = i.steps; bad_entries = i.bad_entries; bad_steps = i.bad_steps }
