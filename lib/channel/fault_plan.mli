(** Composable adversarial fault plans for the simulated link.

    The paper proves the protocol correct over channels that lose and
    reorder but never duplicate (channels are sets). Real links are
    nastier: losses arrive in bursts, routers duplicate, bits flip, and
    whole links go dark for a while. A fault plan bundles those
    behaviours so every protocol variant can be subjected to the same
    adversary; {!Link} consults the plan once per send and acts on the
    returned {!verdict}.

    All randomness is drawn from the generator supplied at
    {!instantiate}, so a (seed, plan) pair fully determines the fault
    schedule — which is what lets the chaos campaign replay a failing
    run. *)

type verdict =
  | Deliver  (** pass the message through unharmed *)
  | Drop  (** discard it *)
  | Duplicate of int
      (** deliver this many copies in total (>= 1); each copy draws its
          own propagation delay, so duplicates may also reorder *)
  | Corrupt  (** deliver a mangled copy (see {!Link.create}'s [corrupt]) *)
  | Delay of int  (** deliver after this many extra ticks *)

type gilbert_elliott = {
  p_enter_bad : float;  (** per-message P(good -> bad) *)
  p_exit_bad : float;  (** per-message P(bad -> good) *)
  loss_good : float;  (** loss probability while in the good state *)
  loss_bad : float;  (** loss probability while in the bad state *)
}
(** The classic two-state Markov burst-loss model: expected burst (bad
    run) length is [1 / p_exit_bad] messages, expected good run length
    [1 / p_enter_bad]. *)

type outage = { from_tick : int; until_tick : int }
(** The link is down during [\[from_tick, until_tick)]: every send in
    the window is discarded (counted separately in [Link.stats]). *)

type t = {
  bursty : gilbert_elliott option;
  duplicate : float;  (** probability a passing message is duplicated *)
  copies : int;  (** total copies on duplication (>= 2) *)
  corrupt : float;  (** probability a passing message is mangled *)
  delay_spike : (float * int) option;  (** (probability, extra ticks) *)
  outages : outage list;
}

val none : t
(** The empty plan: every verdict is [Deliver]. *)

val make :
  ?bursty:gilbert_elliott ->
  ?duplicate:float ->
  ?copies:int ->
  ?corrupt:float ->
  ?delay_spike:float * int ->
  ?outages:outage list ->
  unit ->
  t
(** Build and {!validate} a plan. Defaults: no burst model, [duplicate]
    and [corrupt] 0, [copies] 2, no delay spikes, no outages. *)

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range probabilities, [copies <
    2], negative delays or an outage with [until_tick <= from_tick]. *)

val in_outage : t -> now:int -> bool

val quiesced_after : t -> int
(** The tick past the last scheduled outage (0 when none): after this
    only the probabilistic faults remain, so a correct protocol must be
    able to finish the transfer. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, e.g.
    [ge(0.050->0.200,l=0.00/0.80)+dup(0.10x2)+out[2000,4000)] — the
    replay key printed by the chaos campaign. *)

val to_string : t -> string
(** The {!pp} rendering as a string — the exact replay-key token. *)

val of_string : string -> (t, string) result
(** Parse the {!pp} replay-key format back into a plan, so a failure
    line from the chaos campaign can be fed verbatim to
    [ba_chaos --replay]. Inverse of {!pp} up to the printed precision:
    [of_string (Format.asprintf "%a" pp p)] succeeds for every valid
    [p] and renders back to the same string. Tokens join with ['+'] at
    bracket depth 0 (a [spike(p,+d)] token's inner ['+'] is kept);
    ["none"] parses to {!none}. Returns [Error msg] on an unknown
    token, a duplicated singleton fault, or a plan that fails
    {!validate}; range failures are reported against the offending
    token (e.g. [bad fault token "out[10,5)": …]). *)

(** {2 Instances}

    A plan is pure configuration; an [instance] carries the mutable
    Gilbert-Elliott state and the random stream for one link. *)

type instance

val instantiate : t -> rng:Ba_util.Rng.t -> instance
(** Validates the plan; the instance owns [rng] from here on. The chain
    starts in the good state. *)

val plan : instance -> t

val decide : instance -> verdict
(** One per-message step: advance the Gilbert-Elliott chain, then roll
    loss, duplication, corruption and delay spikes in that order (first
    match wins). Outages are {e not} consulted here — the link checks
    {!in_outage} against simulated time itself, so [decide] stays
    clock-free and testable in isolation. *)

type burst_stats = {
  steps : int;  (** total [decide] calls *)
  bad_entries : int;  (** good->bad transitions *)
  bad_steps : int;  (** steps spent in the bad state *)
}

val burst_stats : instance -> burst_stats
(** Realized burst accounting: [bad_steps / bad_entries] estimates the
    mean burst length, to be compared against [1 / p_exit_bad]. *)
