module Fault_plan = Ba_channel.Fault_plan
module Crash_plan = Ba_proto.Crash_plan
module Harness = Ba_proto.Harness

type fault_class =
  | Bursty_loss
  | Duplication
  | Corruption
  | Outage
  | Reorder
  | Crash
  | Overload
  | Storm

let channel_classes = [ Bursty_loss; Duplication; Corruption; Outage; Reorder ]
let all_classes = channel_classes @ [ Crash; Overload; Storm ]

let class_name = function
  | Bursty_loss -> "bursty-loss"
  | Duplication -> "duplication"
  | Corruption -> "corruption"
  | Outage -> "outage"
  | Reorder -> "reorder"
  | Crash -> "crash"
  | Overload -> "overload"
  | Storm -> "storm"

let class_of_name = function
  | "bursty-loss" -> Some Bursty_loss
  | "duplication" -> Some Duplication
  | "corruption" -> Some Corruption
  | "outage" -> Some Outage
  | "reorder" -> Some Reorder
  | "crash" -> Some Crash
  | "overload" -> Some Overload
  | "storm" -> Some Storm
  | _ -> None

(* The schedules vary with the seed — outage windows shift, duplicate
   fan-out alternates — so a 50-seed sweep is 50 different adversaries,
   not one adversary with 50 dice rolls. Everything stays a pure
   function of (class, seed). *)
let plans_for fault ~seed =
  match fault with
  | Bursty_loss ->
      let ge =
        { Fault_plan.p_enter_bad = 0.04; p_exit_bad = 0.25; loss_good = 0.01; loss_bad = 0.9 }
      in
      ( Fault_plan.make ~bursty:ge (),
        Fault_plan.make
          ~bursty:{ ge with Fault_plan.p_enter_bad = 0.02; loss_bad = 0.7 }
          () )
  | Duplication ->
      let copies = 2 + (seed mod 2) in
      ( Fault_plan.make ~duplicate:0.15 ~copies (),
        Fault_plan.make ~duplicate:0.1 ~copies:2 () )
  | Corruption ->
      (Fault_plan.make ~corrupt:0.15 (), Fault_plan.make ~corrupt:0.1 ())
  | Outage ->
      (* One dark window opening one-to-several round trips into the
         transfer — early enough that even a short campaign run is still
         in flight — and long enough that a sender without timer backoff
         would pointlessly hammer the link. Both directions go dark
         together, like a real link cut. *)
      let from_tick = 150 + (97 * (seed mod 7)) in
      let until_tick = from_tick + 1200 + (150 * (seed mod 3)) in
      let out = [ { Fault_plan.from_tick; until_tick } ] in
      (Fault_plan.make ~outages:out (), Fault_plan.make ~outages:out ())
  | Reorder ->
      (* Delay spikes several windows long: late copies overtake, stale
         acknowledgments arrive after the window has moved on — the
         ambiguity the paper's introduction builds its case on. *)
      ( Fault_plan.make ~delay_spike:(0.3, 350) (),
        Fault_plan.make ~delay_spike:(0.15, 250) () )
  | Crash ->
      (* Crash is a process fault, not a channel fault: the links stay
         clean so the class tests exactly one adversary (the schedule
         lives in {!crash_plan_for}). *)
      (Fault_plan.make (), Fault_plan.make ())
  | Overload ->
      (* Overload is a resource fault: the links stay clean and the
         adversary is a seed-derived budget squeeze plus a congested
         shared queue (see {!overload_squeeze}). *)
      (Fault_plan.make (), Fault_plan.make ())
  | Storm ->
      (* The storm's channel component: real bursts, but milder than the
         dedicated bursty-loss class — it lands on top of a crash
         schedule and a resource squeeze, and the composition (not any
         single ingredient at full strength) is what this class tests. *)
      let ge =
        { Fault_plan.p_enter_bad = 0.02; p_exit_bad = 0.3; loss_good = 0.005; loss_bad = 0.6 }
      in
      ( Fault_plan.make ~bursty:ge (),
        Fault_plan.make
          ~bursty:{ ge with Fault_plan.p_enter_bad = 0.01; loss_bad = 0.4 }
          () )

(* Which endpoint dies, when, and for how long all rotate with the seed,
   so the 50-seed grid covers sender-only, receiver-only and staggered
   double crashes at assorted points in the transfer. Pure data, like the
   channel plans: the printed plan is the replay key. *)
let crash_plan_for ~seed =
  let at = 120 + (90 * (seed mod 5)) in
  let down_for = 100 + (60 * (seed mod 4)) in
  match seed mod 3 with
  | 0 -> Crash_plan.make [ { Crash_plan.at; endpoint = Crash_plan.Receiver_end; down_for } ]
  | 1 -> Crash_plan.make [ { Crash_plan.at; endpoint = Crash_plan.Sender_end; down_for } ]
  | _ ->
      Crash_plan.make
        [
          { Crash_plan.at; endpoint = Crash_plan.Receiver_end; down_for };
          { Crash_plan.at = at + 400; endpoint = Crash_plan.Sender_end; down_for };
        ]

(* The overload adversary squeezes resources rather than the wire: the
   receiver's reassembly budget shrinks to a few out-of-order slots (the
   drop policy alternates with the seed between Jain's drop-new and
   drop-furthest) and the shared data path becomes a slow bounded queue
   whose tail drops punch the sequence gaps that make the budget bind.
   Like the other classes it is pure data derived from (class, seed), so
   ["seed=N fault=overload"] replays the exact squeeze. *)
type squeeze = {
  rx_slots : int;
  policy : Ba_proto.Proto_config.drop_policy;
  service_time : int;
  queue_capacity : int;
}

let squeeze_for ~seed =
  {
    rx_slots = 2 + (seed mod 3);
    policy =
      (if seed mod 2 = 0 then Ba_proto.Proto_config.Drop_new
       else Ba_proto.Proto_config.Drop_furthest);
    service_time = 10;
    queue_capacity = 4 + (seed mod 4);
  }

let apply_squeeze sq (base : Ba_proto.Proto_config.t) =
  ( { base with Ba_proto.Proto_config.rx_budget = Some sq.rx_slots; drop_policy = sq.policy },
    (sq.service_time, sq.queue_capacity) )

let overload_squeeze ~seed base = apply_squeeze (squeeze_for ~seed) base

(* Same printed-form-is-the-replay-key contract as Fault_plan and
   Crash_plan: what a failure report shows is exactly what a replay
   parses back. *)
let squeeze_to_string sq =
  Printf.sprintf "squeeze(rx=%d,%s,q=%d:%d)" sq.rx_slots
    (Ba_proto.Proto_config.drop_policy_name sq.policy)
    sq.service_time sq.queue_capacity

let squeeze_of_string str =
  match
    Scanf.sscanf str "squeeze(rx=%d,%[a-z-],q=%d:%d)" (fun r p s q -> Some (r, p, s, q))
  with
  | exception (Scanf.Scan_failure _ | End_of_file | Failure _) ->
      Error (Printf.sprintf "unparseable squeeze %S" str)
  | None -> Error (Printf.sprintf "unparseable squeeze %S" str)
  | Some (rx_slots, policy, service_time, queue_capacity) -> (
      if rx_slots < 1 || service_time < 1 || queue_capacity < 1 then
        Error (Printf.sprintf "squeeze fields must be positive in %S" str)
      else
        match policy with
        | "drop-new" ->
            Ok { rx_slots; policy = Ba_proto.Proto_config.Drop_new; service_time; queue_capacity }
        | "drop-furthest" ->
            Ok
              {
                rx_slots;
                policy = Ba_proto.Proto_config.Drop_furthest;
                service_time;
                queue_capacity;
              }
        | other -> Error (Printf.sprintf "unknown drop policy %S" other))

type failure = {
  seed : int;
  fault : fault_class;
  data_plan : Fault_plan.t;
  ack_plan : Fault_plan.t;
  crash_plan : Crash_plan.t;
  squeeze : squeeze option;
  result : Harness.result;
}

type recovery = {
  restarts : int;
  resync_rounds : int;
  mean_resync_ticks : float;
  max_resync_ticks : float;
  retx_bytes : int;
}

type class_report = {
  fault : fault_class;
  runs : int;
  unsafe : int;
  incomplete : int;
  both : int;
  first_failure : failure option;
  supported : bool;
  recovery : recovery option;
}

type report = { protocol : string; classes : class_report list }

let safe (r : Harness.result) =
  r.Harness.duplicates = 0 && r.Harness.misordered = 0 && r.Harness.corrupted = 0

(* The reorder adversary spikes one-way delay up to 60 + 350 = 410
   ticks. The paper's timeout rule is only sound when
   [rto > 2 * max_transit], so the audited configurations declare that
   timing honestly — otherwise every windowed protocol "fails" for the
   uninteresting reason that its timing assumption was violated, not
   because of its sequence-number logic. Go-back-N gets the same honest
   timing: its w+1 modulus is what breaks under reordering, exactly the
   introduction's argument. *)
let robust_config =
  Ba_proto.Proto_config.make ~window:16 ~wire_modulus:(Some 32) ~rto:1000 ~max_transit:410
    ~adaptive_rto:true ()

(* The negative control for the crash class: same timing, but restarts
   come back zeroed instead of bumping their incarnation epoch — the
   configuration whose duplicate delivery the epochs exist to close. *)
let naive_restart_config =
  Ba_proto.Proto_config.make ~window:16 ~wire_modulus:(Some 32) ~rto:1000 ~max_transit:410
    ~adaptive_rto:true ~resync_epochs:false ()

let gbn_config =
  Ba_proto.Proto_config.make ~window:16 ~wire_modulus:(Some 17) ~rto:1000 ~max_transit:410 ()

(* Near-FIFO base links (constant delay): all reordering, loss and
   mangling comes from the injected fault plan, so each class tests
   exactly one adversary. In particular bounded go-back-N — sound on
   FIFO channels — survives every class except the one that actually
   reorders. *)
let run_cell ?(messages = 60) ?(config = robust_config) protocol fault ~seed =
  let data_plan, ack_plan = plans_for fault ~seed in
  (* Storm composes all three adversaries — the crash schedule, the
     resource squeeze and the bursty channel — in one run; each is the
     same pure function of the seed as in its dedicated class, so the
     single replay key still reproduces the whole composition. *)
  let crash_plan =
    match fault with Crash | Storm -> crash_plan_for ~seed | _ -> Crash_plan.none
  in
  let squeeze = match fault with Overload | Storm -> Some (squeeze_for ~seed) | _ -> None in
  let config, data_bottleneck =
    match squeeze with
    | Some sq ->
        let config, bottleneck = apply_squeeze sq config in
        (config, Some bottleneck)
    | None -> (config, None)
  in
  let delay = Ba_channel.Dist.Constant 50 in
  let result =
    Harness.run protocol ~seed ~messages ~config ~data_delay:delay ~ack_delay:delay
      ?data_bottleneck ~data_plan ~ack_plan ~crash_plan ()
  in
  let failure =
    if safe result && result.Harness.completed then None
    else Some { seed; fault; data_plan; ack_plan; crash_plan; squeeze; result }
  in
  (failure, result)

let run_one ?messages ?config protocol fault ~seed =
  fst (run_cell ?messages ?config protocol fault ~seed)

let default_seeds = List.init 50 (fun i -> i + 1)

let run_campaign ?messages ?config ?(seeds = default_seeds) ?(classes = all_classes) ?(jobs = 1)
    ?pool protocol =
  let (module P : Ba_proto.Protocol.S) = protocol in
  (* The campaign is a grid of independent (fault, seed) cells: each run
     builds its own engine and derives every random stream from its own
     seed, so the cells farm out to a domain pool. Pool.map_chunks
     batches neighbouring cells into one queue entry each and returns
     the outcomes in input order, which makes the fold below — and
     therefore the whole report — identical at any job count. *)
  (* The crash class — and the storm, which contains one — only makes
     sense against protocols implementing the crash-restart lifecycle;
     for the rest it is reported as skipped rather than silently
     dropped. *)
  let runnable fault =
    match fault with Crash | Storm -> P.crash_tolerant | _ -> true
  in
  let cells =
    List.concat_map
      (fun fault -> if runnable fault then List.map (fun seed -> (fault, seed)) seeds else [])
      classes
  in
  let outcomes =
    Ba_parallel.Pool.map_chunks ?pool ~jobs
      (fun (fault, seed) -> run_cell ?messages ?config protocol fault ~seed)
      cells
  in
  let recovery_of results =
    let restarts = List.fold_left (fun a (r : Harness.result) -> a + r.Harness.restarts) 0 results in
    if restarts = 0 then None
    else begin
      let rounds =
        List.fold_left (fun a (r : Harness.result) -> a + r.Harness.resync_rounds) 0 results
      and retx_bytes =
        List.fold_left (fun a (r : Harness.result) -> a + r.Harness.retx_bytes) 0 results
      and count = ref 0
      and total = ref 0.
      and max_ticks = ref 0. in
      List.iter
        (fun (r : Harness.result) ->
          match r.Harness.resync_ticks with
          | None -> ()
          | Some s ->
              count := !count + s.Ba_util.Stats.count;
              total := !total +. (s.Ba_util.Stats.mean *. float_of_int s.Ba_util.Stats.count);
              if s.Ba_util.Stats.max > !max_ticks then max_ticks := s.Ba_util.Stats.max)
        results;
      Some
        {
          restarts;
          resync_rounds = rounds;
          mean_resync_ticks = (if !count = 0 then 0. else !total /. float_of_int !count);
          max_resync_ticks = !max_ticks;
          retx_bytes;
        }
    end
  in
  let audit fault =
    if not (runnable fault) then
      {
        fault;
        runs = 0;
        unsafe = 0;
        incomplete = 0;
        both = 0;
        first_failure = None;
        supported = false;
        recovery = None;
      }
    else begin
      let unsafe = ref 0 and incomplete = ref 0 and both = ref 0 and first = ref None in
      let results = ref [] in
      List.iter2
        (fun (cell_fault, _) (outcome, result) ->
          if cell_fault = fault then begin
            results := result :: !results;
            match outcome with
            | None -> ()
            | Some f ->
                let is_unsafe = not (safe f.result) in
                let is_incomplete = not f.result.Harness.completed in
                if is_unsafe then incr unsafe;
                if is_incomplete then incr incomplete;
                if is_unsafe && is_incomplete then incr both;
                (* Seeds are swept in the caller's order; track the smallest
                   failing one regardless. *)
                (match !first with
                | Some g when g.seed <= f.seed -> ()
                | Some _ | None -> first := Some f)
          end)
        cells outcomes;
      {
        fault;
        runs = List.length seeds;
        unsafe = !unsafe;
        incomplete = !incomplete;
        both = !both;
        first_failure = !first;
        supported = true;
        recovery = recovery_of !results;
      }
    end
  in
  { protocol = P.name; classes = List.map audit classes }

let clean r = List.for_all (fun c -> c.unsafe = 0 && c.incomplete = 0) r.classes

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>seed=%d fault=%s@,data: %a@,ack:  %a" f.seed (class_name f.fault)
    Fault_plan.pp f.data_plan Fault_plan.pp f.ack_plan;
  if f.crash_plan <> Crash_plan.none then Format.fprintf ppf "@,proc: %a" Crash_plan.pp f.crash_plan;
  (match f.squeeze with
  | Some sq -> Format.fprintf ppf "@,load: %s" (squeeze_to_string sq)
  | None -> ());
  Format.fprintf ppf "@,%a@]" Harness.pp_result f.result

(* [unsafe] and [incomplete] are counts of runs with each symptom, not a
   partition: a run that is both unsafe and stuck appears in both. The
   [both=] segment makes the overlap explicit whenever it is nonzero, so
   the distinct failing-run count is unsafe + incomplete - both. *)
let pp_class_report ppf c =
  if not c.supported then
    Format.fprintf ppf "%-12s skipped (protocol not crash-tolerant)" (class_name c.fault)
  else begin
    Format.fprintf ppf "%-12s %3d runs  unsafe=%-3d incomplete=%-3d %s%s" (class_name c.fault)
      c.runs c.unsafe c.incomplete
      (if c.both > 0 then Printf.sprintf "both=%-3d " c.both else "")
      (if c.unsafe = 0 && c.incomplete = 0 then "ok" else "FAIL");
    (match c.recovery with
    | None -> ()
    | Some r ->
        Format.fprintf ppf
          "@,  recovery: restarts=%d rounds=%d resync-ticks=%.0f mean/%.0f max retx=%dB" r.restarts
          r.resync_rounds r.mean_resync_ticks r.max_resync_ticks r.retx_bytes);
    match c.first_failure with
    | None -> ()
    | Some f -> Format.fprintf ppf "@,  first failure: @[<v>%a@]" pp_failure f
  end

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s:@,%a@]" r.protocol
    (Format.pp_print_list pp_class_report)
    r.classes
