module Fault_plan = Ba_channel.Fault_plan
module Harness = Ba_proto.Harness

type fault_class = Bursty_loss | Duplication | Corruption | Outage | Reorder

let all_classes = [ Bursty_loss; Duplication; Corruption; Outage; Reorder ]

let class_name = function
  | Bursty_loss -> "bursty-loss"
  | Duplication -> "duplication"
  | Corruption -> "corruption"
  | Outage -> "outage"
  | Reorder -> "reorder"

let class_of_name = function
  | "bursty-loss" -> Some Bursty_loss
  | "duplication" -> Some Duplication
  | "corruption" -> Some Corruption
  | "outage" -> Some Outage
  | "reorder" -> Some Reorder
  | _ -> None

(* The schedules vary with the seed — outage windows shift, duplicate
   fan-out alternates — so a 50-seed sweep is 50 different adversaries,
   not one adversary with 50 dice rolls. Everything stays a pure
   function of (class, seed). *)
let plans_for fault ~seed =
  match fault with
  | Bursty_loss ->
      let ge =
        { Fault_plan.p_enter_bad = 0.04; p_exit_bad = 0.25; loss_good = 0.01; loss_bad = 0.9 }
      in
      ( Fault_plan.make ~bursty:ge (),
        Fault_plan.make
          ~bursty:{ ge with Fault_plan.p_enter_bad = 0.02; loss_bad = 0.7 }
          () )
  | Duplication ->
      let copies = 2 + (seed mod 2) in
      ( Fault_plan.make ~duplicate:0.15 ~copies (),
        Fault_plan.make ~duplicate:0.1 ~copies:2 () )
  | Corruption ->
      (Fault_plan.make ~corrupt:0.15 (), Fault_plan.make ~corrupt:0.1 ())
  | Outage ->
      (* One dark window opening one-to-several round trips into the
         transfer — early enough that even a short campaign run is still
         in flight — and long enough that a sender without timer backoff
         would pointlessly hammer the link. Both directions go dark
         together, like a real link cut. *)
      let from_tick = 150 + (97 * (seed mod 7)) in
      let until_tick = from_tick + 1200 + (150 * (seed mod 3)) in
      let out = [ { Fault_plan.from_tick; until_tick } ] in
      (Fault_plan.make ~outages:out (), Fault_plan.make ~outages:out ())
  | Reorder ->
      (* Delay spikes several windows long: late copies overtake, stale
         acknowledgments arrive after the window has moved on — the
         ambiguity the paper's introduction builds its case on. *)
      ( Fault_plan.make ~delay_spike:(0.3, 350) (),
        Fault_plan.make ~delay_spike:(0.15, 250) () )

type failure = {
  seed : int;
  fault : fault_class;
  data_plan : Fault_plan.t;
  ack_plan : Fault_plan.t;
  result : Harness.result;
}

type class_report = {
  fault : fault_class;
  runs : int;
  unsafe : int;
  incomplete : int;
  both : int;
  first_failure : failure option;
}

type report = { protocol : string; classes : class_report list }

let safe (r : Harness.result) =
  r.Harness.duplicates = 0 && r.Harness.misordered = 0 && r.Harness.corrupted = 0

(* The reorder adversary spikes one-way delay up to 60 + 350 = 410
   ticks. The paper's timeout rule is only sound when
   [rto > 2 * max_transit], so the audited configurations declare that
   timing honestly — otherwise every windowed protocol "fails" for the
   uninteresting reason that its timing assumption was violated, not
   because of its sequence-number logic. Go-back-N gets the same honest
   timing: its w+1 modulus is what breaks under reordering, exactly the
   introduction's argument. *)
let robust_config =
  Ba_proto.Proto_config.make ~window:16 ~wire_modulus:(Some 32) ~rto:1000 ~max_transit:410
    ~adaptive_rto:true ()

let gbn_config =
  Ba_proto.Proto_config.make ~window:16 ~wire_modulus:(Some 17) ~rto:1000 ~max_transit:410 ()

(* Near-FIFO base links (constant delay): all reordering, loss and
   mangling comes from the injected fault plan, so each class tests
   exactly one adversary. In particular bounded go-back-N — sound on
   FIFO channels — survives every class except the one that actually
   reorders. *)
let run_one ?(messages = 60) ?(config = robust_config) protocol fault ~seed =
  let data_plan, ack_plan = plans_for fault ~seed in
  let delay = Ba_channel.Dist.Constant 50 in
  let result =
    Harness.run protocol ~seed ~messages ~config ~data_delay:delay ~ack_delay:delay ~data_plan
      ~ack_plan ()
  in
  if safe result && result.Harness.completed then None
  else Some { seed; fault; data_plan; ack_plan; result }

let default_seeds = List.init 50 (fun i -> i + 1)

let run_campaign ?messages ?config ?(seeds = default_seeds) ?(classes = all_classes) ?(jobs = 1)
    ?pool protocol =
  let (module P : Ba_proto.Protocol.S) = protocol in
  (* The campaign is a grid of independent (fault, seed) cells: each run
     builds its own engine and derives every random stream from its own
     seed, so the cells farm out to a domain pool. Pool.map returns the
     outcomes in input order, which makes the fold below — and therefore
     the whole report — identical at any job count. *)
  let cells = List.concat_map (fun fault -> List.map (fun seed -> (fault, seed)) seeds) classes in
  let outcomes =
    Ba_parallel.Pool.map ?pool ~jobs
      (fun (fault, seed) -> run_one ?messages ?config protocol fault ~seed)
      cells
  in
  let audit fault =
    let unsafe = ref 0 and incomplete = ref 0 and both = ref 0 and first = ref None in
    List.iter2
      (fun (cell_fault, _) outcome ->
        match outcome with
        | _ when cell_fault <> fault -> ()
        | None -> ()
        | Some f ->
            let is_unsafe = not (safe f.result) in
            let is_incomplete = not f.result.Harness.completed in
            if is_unsafe then incr unsafe;
            if is_incomplete then incr incomplete;
            if is_unsafe && is_incomplete then incr both;
            (* Seeds are swept in the caller's order; track the smallest
               failing one regardless. *)
            (match !first with
            | Some g when g.seed <= f.seed -> ()
            | Some _ | None -> first := Some f))
      cells outcomes;
    {
      fault;
      runs = List.length seeds;
      unsafe = !unsafe;
      incomplete = !incomplete;
      both = !both;
      first_failure = !first;
    }
  in
  { protocol = P.name; classes = List.map audit classes }

let clean r = List.for_all (fun c -> c.unsafe = 0 && c.incomplete = 0) r.classes

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>seed=%d fault=%s@,data: %a@,ack:  %a@,%a@]" f.seed
    (class_name f.fault) Fault_plan.pp f.data_plan Fault_plan.pp f.ack_plan Harness.pp_result
    f.result

(* [unsafe] and [incomplete] are counts of runs with each symptom, not a
   partition: a run that is both unsafe and stuck appears in both. The
   [both=] segment makes the overlap explicit whenever it is nonzero, so
   the distinct failing-run count is unsafe + incomplete - both. *)
let pp_class_report ppf c =
  Format.fprintf ppf "%-12s %3d runs  unsafe=%-3d incomplete=%-3d %s%s" (class_name c.fault)
    c.runs c.unsafe c.incomplete
    (if c.both > 0 then Printf.sprintf "both=%-3d " c.both else "")
    (if c.unsafe = 0 && c.incomplete = 0 then "ok" else "FAIL");
  match c.first_failure with
  | None -> ()
  | Some f -> Format.fprintf ppf "@,  first failure: @[<v>%a@]" pp_failure f

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s:@,%a@]" r.protocol
    (Format.pp_print_list pp_class_report)
    r.classes
