(** Chaos campaign: sweep seeds and adversarial fault plans through the
    experiment harness and check the two properties the paper promises.

    - {b Safety}: whatever the channel does — bursty loss, duplication,
      corruption, outages, reordering — a robust protocol must never
      deliver a duplicate, out of order, or a corrupted payload.
    - {b Recovery}: once the scheduled faults quiesce, the transfer must
      still complete (under outages this leans on the sender's
      {!Blockack.Rtt_estimator.backoff} to stop hammering a dark link).

    Each (seed, fault class) pair fully determines the run, so the
    campaign can report the minimal failing seed together with the fault
    schedule needed to replay it. *)

type fault_class =
  | Bursty_loss  (** Gilbert-Elliott burst losses on both links *)
  | Duplication  (** probabilistic duplication (the set-channel's blind spot) *)
  | Corruption  (** payload/header mangling, caught only by checksums *)
  | Outage  (** scheduled dark windows on both links *)
  | Reorder  (** heavy delay spikes, so copies overtake each other *)
  | Crash  (** endpoint crash–restart: volatile state wiped mid-transfer *)
  | Overload
      (** resource exhaustion: a squeezed receiver reassembly budget plus
          a congested bounded queue on the shared data path *)
  | Storm
      (** compound incident: the crash schedule, the overload squeeze
          {e and} a bursty channel, composed in one run — the three
          tolerance mechanisms (epoch resync, backpressure, timer
          backoff) exercised together, where their interactions hide.
          Each ingredient is the same pure function of the seed as in
          its dedicated class, so one replay key reproduces the whole
          composition. *)

val all_classes : fault_class list

val channel_classes : fault_class list
(** The channel-fault subset of {!all_classes} — everything except
    [Crash], [Overload] and [Storm], which fault a process or its
    resources rather than (only) a link. *)

val class_name : fault_class -> string
val class_of_name : string -> fault_class option
(** Lower-case names: ["bursty-loss"], ["duplication"], ["corruption"],
    ["outage"], ["reorder"], ["crash"], ["overload"], ["storm"]. *)

val plans_for : fault_class -> seed:int -> Ba_channel.Fault_plan.t * Ba_channel.Fault_plan.t
(** [(data_plan, ack_plan)] for one run. The plans vary with [seed]
    (outage timing, duplicate fan-out) so a sweep explores more than one
    schedule, and both are pure data: print them with
    {!Ba_channel.Fault_plan.pp} to get the replay key. [Crash] leaves
    both links clean (its schedule is {!crash_plan_for}). *)

val crash_plan_for : seed:int -> Ba_proto.Crash_plan.t
(** The [Crash] class's process-fault schedule for one run: the victim
    (sender, receiver, or both staggered), the crash tick and the
    downtime all rotate with [seed]. Pure data — print it with
    {!Ba_proto.Crash_plan.pp} to get the replay key. *)

type squeeze = {
  rx_slots : int;  (** receiver reassembly budget, in out-of-order slots *)
  policy : Ba_proto.Proto_config.drop_policy;
  service_time : int;  (** data-link bottleneck service time, ticks/frame *)
  queue_capacity : int;  (** data-link bottleneck queue depth *)
}
(** The resource-squeeze component of the [Overload] and [Storm]
    classes, as pure data — the third plan kind next to
    {!Ba_channel.Fault_plan} and {!Ba_proto.Crash_plan}. *)

val squeeze_for : seed:int -> squeeze
(** The seed-derived squeeze: an [rx_slots] budget of 2–4, drop policy
    alternating with the seed between [Drop_new] and [Drop_furthest],
    and a [(10, 4–7)] data-link bottleneck. *)

val apply_squeeze :
  squeeze -> Ba_proto.Proto_config.t -> Ba_proto.Proto_config.t * (int * int)
(** Install a squeeze on a base config: the rewritten config plus the
    [(service_time, queue_capacity)] bottleneck for the data link. *)

val overload_squeeze :
  seed:int -> Ba_proto.Proto_config.t -> Ba_proto.Proto_config.t * (int * int)
(** [apply_squeeze (squeeze_for ~seed)] — the [Overload] class's
    resource squeeze for one run. Pure data derived from [seed], so the
    class replays like every other. *)

val squeeze_to_string : squeeze -> string
(** E.g. ["squeeze(rx=3,drop-new,q=10:5)"] — the printed form {e is}
    the replay key, like the other plan kinds. *)

val squeeze_of_string : string -> (squeeze, string) result
(** Inverse of {!squeeze_to_string}:
    [squeeze_of_string (squeeze_to_string sq) = Ok sq] for every valid
    squeeze. *)

type failure = {
  seed : int;
  fault : fault_class;
  data_plan : Ba_channel.Fault_plan.t;
  ack_plan : Ba_channel.Fault_plan.t;
  crash_plan : Ba_proto.Crash_plan.t;  (** [none] for channel classes *)
  squeeze : squeeze option;  (** [Some] for [Overload] and [Storm] runs *)
  result : Ba_proto.Harness.result;
}

type recovery = {
  restarts : int;  (** endpoint restarts across the class's runs *)
  resync_rounds : int;  (** REQ/POS/FIN handshake frames, retries included *)
  mean_resync_ticks : float;  (** mean restart-to-recovery time *)
  max_resync_ticks : float;
  retx_bytes : int;  (** payload bytes retransmitted across the runs *)
}
(** Aggregated recovery cost for a fault class (crash campaigns only —
    channel classes report no restarts). *)

type class_report = {
  fault : fault_class;
  runs : int;
  unsafe : int;  (** runs that violated safety *)
  incomplete : int;  (** runs that missed the recovery deadline *)
  both : int;
      (** runs counted in {e both} [unsafe] and [incomplete]: the two
          tallies are symptom counts, not a partition, so the number of
          distinct failing runs is [unsafe + incomplete - both]. *)
  first_failure : failure option;  (** minimal failing seed, if any *)
  supported : bool;
      (** [false] when the class was skipped because the protocol lacks
          the required lifecycle (crash class on a non-crash-tolerant
          protocol); such rows have [runs = 0]. *)
  recovery : recovery option;
      (** recovery cost over the class's runs; [None] when nothing
          restarted (every channel-fault class). *)
}

type report = { protocol : string; classes : class_report list }

val safe : Ba_proto.Harness.result -> bool
(** Zero duplicates, misordering and corruption delivered. (Weaker than
    {!Ba_proto.Harness.correct}: an unfinished run can still be safe.) *)

val run_one :
  ?messages:int ->
  ?config:Ba_proto.Proto_config.t ->
  Ba_proto.Protocol.t ->
  fault_class ->
  seed:int ->
  failure option
(** One (protocol, fault class, seed) run; [Some f] when safety or
    recovery was violated. *)

val run_campaign :
  ?messages:int ->
  ?config:Ba_proto.Proto_config.t ->
  ?seeds:int list ->
  ?classes:fault_class list ->
  ?jobs:int ->
  ?pool:Ba_parallel.Pool.t ->
  Ba_proto.Protocol.t ->
  report
(** Sweep [seeds] (default [1..50]) across [classes] (default
    {!all_classes}) with [messages] payloads per run (default 60). The
    default config is {!robust_config}.

    The (fault, seed) cells are independent simulations, so they run on
    a {!Ba_parallel.Pool} of [jobs] domains (default 1, i.e.
    sequential; [pool] reuses a caller-owned pool instead). Results are
    collected in input order, so the report — including every counter
    and the minimal failing seed — is identical at any job count. *)

val clean : report -> bool
(** No unsafe and no incomplete run anywhere in the report. *)

val robust_config : Ba_proto.Proto_config.t
(** The configuration the robust protocols are audited under: window 16,
    wire modulus 32 ([2w], the paper's bound), adaptive RTO so outages
    exercise timer backoff. *)

val naive_restart_config : Ba_proto.Proto_config.t
(** {!robust_config} with [resync_epochs = false]: restarts come back
    zeroed with no incarnation bump and no resync handshake. The crash
    campaign's negative control — it demonstrably delivers duplicates. *)

val gbn_config : Ba_proto.Proto_config.t
(** The textbook go-back-N configuration: same window but the classic
    [w + 1] modulus, whose decode ambiguity the reorder campaign
    exposes. *)

val pp_failure : Format.formatter -> failure -> unit
(** Replay key: seed, class, both plans, and the run's result line. *)

val pp_report : Format.formatter -> report -> unit
