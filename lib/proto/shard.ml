(* Sharded fabric: the Fabric model rebuilt as per-cell sub-simulations
   advanced in lockstep epochs, with the shared-link bottleneck realised
   as per-cell capacity leases reconciled at the barriers.

   Everything semantic is a pure function of (specs, seed, cell,
   barrier, capacity, ...): cells are built sequentially in spec order,
   each cell's engine/links/plans are seeded from the cell index, and
   the lease reconciliation is an order-independent integer fold over
   cells. [shards]/[jobs] only choose how live cells are grouped into
   pool tasks per epoch, and the pool collects in input order — so the
   result is byte-identical at any shard count and any job count. *)

module Engine = Ba_sim.Engine
module Link = Ba_channel.Link

type result = {
  flows : int;
  cells : int;
  messages : int;
  delivered : int;
  duplicates : int;
  misordered : int;
  corrupted : int;
  completed_flows : int;
  departed : int;
  refused : int;
  clamped_cells : int;
  data_sent : int;
  acks_sent : int;
  retransmissions : int;
  pressure_drops : int;
  lease_drops : int;
  lease_rebalances : int;
  quarantine_events : int;
  watchdog_resyncs : int;
  quarantined : int;
  mem_peak_bytes : int;
  ticks : int;
  epochs : int;
  completed : bool;
  aggregate_goodput : float;
  latency : Ba_util.Qsketch.t;
  state_bytes : int;
}

(* One direction's capacity lease: a FIFO of frames the cell has
   offered to the "shared" link, served one frame per [interval] ticks
   by a persistent engine slot. [base_rate] is the cell's fair share in
   frames per epoch; reconciliation rewrites [interval] at barriers. *)
type 'a lease = {
  svc : int;  (* the modelled link's service time, a floor on interval *)
  barrier : int;
  base_rate : int;
  qcap : int;
  ring : 'a Ba_util.Ring_buffer.t;
  mutable head : int;
  mutable tail : int;
  mutable interval : int;
  mutable serviced : int;  (* frames sent this epoch *)
  mutable drops : int;
  mutable slot : Engine.slot option;
  send : 'a -> unit;
  release : 'a -> unit;
}

let lease_backlog l = l.tail - l.head

let make_lease engine ~svc ~barrier ~qcap ~base_rate ~send ~release =
  let l =
    {
      svc;
      barrier;
      base_rate;
      qcap;
      ring = Ba_util.Ring_buffer.create qcap;
      head = 0;
      tail = 0;
      interval = max svc (barrier / max 1 base_rate);
      serviced = 0;
      drops = 0;
      slot = None;
      send;
      release;
    }
  in
  let service () =
    if l.head < l.tail then begin
      let v = Option.get (Ba_util.Ring_buffer.get l.ring l.head) in
      Ba_util.Ring_buffer.remove l.ring l.head;
      l.head <- l.head + 1;
      l.serviced <- l.serviced + 1;
      l.send v;
      if l.head < l.tail then
        Engine.slot_arm (Option.get l.slot) ~delay:l.interval
    end
  in
  l.slot <- Some (Engine.slot_create engine service);
  l

let lease_offer l v =
  if lease_backlog l >= l.qcap then begin
    l.drops <- l.drops + 1;
    l.release v
  end
  else begin
    Ba_util.Ring_buffer.set l.ring l.tail v;
    l.tail <- l.tail + 1;
    let slot = Option.get l.slot in
    if not (Engine.slot_armed slot) then Engine.slot_arm slot ~delay:l.interval
  end

(* Barrier-time reconciliation over one direction's leases: cells with
   no backlog cede their unused frame credits, backlogged cells split
   the spare pro rata. Pure integer fold — cell order cannot matter. *)
let reconcile_leases leases =
  let spare = ref 0 and total_backlog = ref 0 in
  Array.iter
    (fun l ->
      let b = lease_backlog l in
      if b = 0 then spare := !spare + max 0 (l.base_rate - l.serviced)
      else total_backlog := !total_backlog + b)
    leases;
  let rebalanced = !spare > 0 && !total_backlog > 0 in
  Array.iter
    (fun l ->
      let b = lease_backlog l in
      let rate =
        if rebalanced && b > 0 then l.base_rate + (!spare * b / !total_backlog)
        else l.base_rate
      in
      l.interval <- max l.svc (l.barrier / max 1 rate);
      l.serviced <- 0)
    leases;
  rebalanced

(* Per-protocol endpoint arrays behind one set of closures: dispatch
   costs one closure per *group*, not per flow. *)
type group = {
  g_create :
    slot:int ->
    Proto_config.t ->
    tx:(Wire.data -> unit) ->
    next_payload:(unit -> string option) ->
    ack_tx:(Wire.ack -> unit) ->
    deliver:(string -> unit) ->
    unit;
  g_on_ack : int -> Wire.ack -> unit;
  g_on_data : int -> Wire.data -> unit;
  g_pump : int -> unit;
  g_sender_done : int -> bool;
  g_retx : int -> int;
  g_mem : int -> int;
  g_pressure : int -> int;
  g_clamp : int -> int -> unit;
  g_resync : int -> unit;  (* crash+restart sender; no-op if unsupported *)
}

let make_group engine (module P : Protocol.S) count =
  let senders : P.sender option array = Array.make count None in
  let receivers : P.receiver option array = Array.make count None in
  let s i = Option.get senders.(i) and r i = Option.get receivers.(i) in
  {
    g_create =
      (fun ~slot config ~tx ~next_payload ~ack_tx ~deliver ->
        (* sender before receiver, as Flow.create does *)
        senders.(slot) <- Some (P.create_sender engine config ~tx ~next_payload);
        receivers.(slot) <- Some (P.create_receiver engine config ~tx:ack_tx ~deliver));
    g_on_ack = (fun i a -> P.sender_on_ack (s i) a);
    g_on_data = (fun i d -> P.receiver_on_data (r i) d);
    g_pump = (fun i -> P.sender_pump (s i));
    g_sender_done = (fun i -> P.sender_done (s i));
    g_retx = (fun i -> P.sender_retransmissions (s i));
    g_mem = (fun i -> P.sender_mem_bytes (s i) + P.receiver_mem_bytes (r i));
    g_pressure = (fun i -> P.receiver_pressure_dropped (r i));
    g_clamp = (fun i w -> P.sender_clamp_window (s i) w);
    g_resync =
      (fun i ->
        if P.crash_tolerant then begin
          P.sender_crash (s i);
          P.sender_restart (s i)
        end);
  }

type cell = {
  c_engine : Engine.t;
  c_n : int;
  c_messages : int;  (* offered by this cell's admitted flows *)
  c_refused : int;
  c_clamped : bool;
  c_deadline : int;
  c_data_lease : (int * Wire.data) lease option;
  c_ack_lease : (int * Wire.ack) lease option;
  c_remaining : int ref;
  c_done_at : int ref;  (* -1 while running *)
  c_delivered : int array;
  c_completed : bool array;
  c_departed_mid : bool array;
  c_duplicates : int ref;
  c_misordered : int ref;
  c_corrupted : int ref;
  c_data_sent : int ref;
  c_acks_sent : int ref;
  c_departed : int ref;
  c_mem_peak : int ref;
  c_latency : Ba_util.Qsketch.t;
  c_groups : group array;
  c_group_of : int array;
  c_gslot : int array;
  c_dogs : Watchdog.t array;
}

let build_cell ~seed ~cell_index ~flow_base ~barrier ~data_loss ~ack_loss ~data_delay
    ~ack_delay ~capacity ~ack_capacity ~plans_for ~cell_budget ~watchdog ~total_flows
    (specs : Fabric.spec list) =
  let cell_seed = seed + (104729 * (cell_index + 1)) in
  let specs, refused, clamp =
    match cell_budget with
    | None -> (specs, 0, None)
    | Some budget -> Fabric.plan_admission ~budget specs
  in
  (* Enforce the clamp on the receiver side too, exactly as Fabric does:
     rewrite rx_budget so a misbehaving sender cannot pin more than the
     accounted slots. *)
  let specs =
    match clamp with
    | None -> specs
    | Some c ->
        List.map
          (fun (sp : Fabric.spec) ->
            let w = sp.config.Proto_config.window in
            if c >= w then sp
            else
              let rx = Option.value ~default:w sp.config.Proto_config.rx_budget in
              {
                sp with
                config = { sp.config with Proto_config.rx_budget = Some (min c rx) };
              })
          specs
  in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let engine = Engine.create ~seed:cell_seed () in
  let messages = Array.map (fun (sp : Fabric.spec) -> sp.messages) specs in
  let msg_base = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    msg_base.(i + 1) <- msg_base.(i) + messages.(i)
  done;
  let total_msgs = msg_base.(n) in
  let delivered = Array.make n 0 in
  let next_expected = Array.make n 0 in
  let next_msg = Array.make n 0 in
  let gated = Array.make n false in
  let active = Array.make n true in
  let completed = Array.make n false in
  let departed_mid = Array.make n false in
  let starts = Array.map (fun (sp : Fabric.spec) -> sp.start_at) specs in
  let seen = Ba_util.Bitset.create ~initial_capacity:(max 1 total_msgs) () in
  let pulled_at = Array.make (max 1 total_msgs) (-1) in
  let remaining = ref n in
  let done_at = ref (-1) in
  let duplicates = ref 0
  and misordered = ref 0
  and corrupted = ref 0
  and data_sent = ref 0
  and acks_sent = ref 0
  and departed = ref 0
  and mem_peak = ref 0 in
  let latency = Ba_util.Qsketch.create () in
  (* Forward refs: link deliver closures are created before the groups
     that serve them. *)
  let feed_data = ref (fun (_ : int) (_ : Wire.data) -> ()) in
  let feed_ack = ref (fun (_ : int) (_ : Wire.ack) -> ()) in
  let data_link =
    Link.create engine ~loss:data_loss ~delay:data_delay
      ~corrupt:(fun (i, d) -> (i, Wire.corrupt_data d))
      ~release:(fun (_, d) -> Wire.release_data d)
      ~deliver:(fun (i, d) -> !feed_data i d)
      ()
  in
  let ack_link =
    Link.create engine ~loss:ack_loss ~delay:ack_delay
      ~corrupt:(fun (i, a) -> (i, Wire.corrupt_ack a))
      ~release:(fun (_, a) -> Wire.release_ack a)
      ~deliver:(fun (i, a) -> !feed_ack i a)
      ()
  in
  (match plans_for with
  | None -> ()
  | Some f ->
      let dp, ap = f ~cell_seed in
      Link.set_plan data_link dp;
      Link.set_plan ack_link ap);
  let mk_lease cap ~send ~release =
    match cap with
    | None -> None
    | Some (svc, qcap) ->
        let svc = max 1 svc in
        let base_rate = max 1 (barrier / svc * n / max 1 total_flows) in
        let qshare = max 4 (qcap * n / max 1 total_flows) in
        Some (make_lease engine ~svc ~barrier ~qcap:qshare ~base_rate ~send ~release)
  in
  let data_lease =
    mk_lease capacity
      ~send:(fun v -> Link.send data_link v)
      ~release:(fun (_, d) -> Wire.release_data d)
  in
  let ack_lease =
    mk_lease ack_capacity
      ~send:(fun v -> Link.send ack_link v)
      ~release:(fun (_, a) -> Wire.release_ack a)
  in
  (* Group flows by protocol: first pass sizes the per-protocol endpoint
     arrays, second pass creates endpoints in spec order. *)
  let group_of = Array.make n 0 and gslot = Array.make n 0 in
  let names : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let protos = ref [] in
  Array.iteri
    (fun i (sp : Fabric.spec) ->
      let (module P : Protocol.S) = sp.protocol in
      match Hashtbl.find_opt names P.name with
      | Some g -> group_of.(i) <- g
      | None ->
          let g = Hashtbl.length names in
          Hashtbl.add names P.name g;
          group_of.(i) <- g;
          protos := sp.protocol :: !protos)
    specs;
  let gcount = Array.make (Hashtbl.length names) 0 in
  Array.iteri
    (fun i _ ->
      gslot.(i) <- gcount.(group_of.(i));
      gcount.(group_of.(i)) <- gcount.(group_of.(i)) + 1)
    specs;
  let protos = Array.of_list (List.rev !protos) in
  let groups = Array.mapi (fun g p -> make_group engine p gcount.(g)) protos in
  let grp i = groups.(group_of.(i)) in
  (* Completion: all payloads delivered and the sender drained. Checked
     after every delivery and every ack, like Flow.check_done. *)
  let check_done i =
    if
      active.(i)
      && (not completed.(i))
      && delivered.(i) >= messages.(i)
      && (grp i).g_sender_done gslot.(i)
    then begin
      completed.(i) <- true;
      decr remaining;
      if !remaining = 0 then begin
        done_at := Engine.now engine;
        Engine.stop engine
      end
    end
  in
  let deliver_for i (sp : Fabric.spec) wseed payload =
    (match Workload.index_of payload with
    | None -> incr corrupted
    | Some k when k < 0 || k >= messages.(i) -> incr corrupted
    | Some k ->
        if not (String.equal (Workload.payload ~seed:wseed ~size:sp.payload_size k) payload)
        then incr corrupted
        else begin
          let bit = msg_base.(i) + k in
          if Ba_util.Bitset.mem seen bit then incr duplicates
          else begin
            Ba_util.Bitset.set seen bit;
            delivered.(i) <- delivered.(i) + 1;
            let t0 = pulled_at.(bit) in
            if t0 >= 0 then
              Ba_util.Qsketch.add latency (float_of_int (Engine.now engine - t0));
            if k <> next_expected.(i) then incr misordered;
            next_expected.(i) <- k + 1
          end
        end);
    check_done i
  in
  feed_data := (fun i d -> if active.(i) then (grp i).g_on_data gslot.(i) d);
  feed_ack :=
    (fun i a ->
      if active.(i) then begin
        (grp i).g_on_ack gslot.(i) a;
        check_done i
      end);
  let offer_data i d =
    incr data_sent;
    if gated.(i) then Wire.release_data d
    else
      match data_lease with
      | Some l -> lease_offer l (i, d)
      | None -> Link.send data_link (i, d)
  in
  let offer_ack i a =
    incr acks_sent;
    if gated.(i) then Wire.release_ack a
    else
      match ack_lease with
      | Some l -> lease_offer l (i, a)
      | None -> Link.send ack_link (i, a)
  in
  (* Create endpoints in spec order (sender then receiver per flow). The
     per-flow wiring is exactly four closures, each capturing its local
     index; every other piece of state lives in the flat arrays above. *)
  Array.iteri
    (fun i (sp : Fabric.spec) ->
      let wseed = seed + (7919 * (flow_base + i + 1)) in
      let next_payload () =
        let k = next_msg.(i) in
        if k >= messages.(i) then None
        else begin
          next_msg.(i) <- k + 1;
          pulled_at.(msg_base.(i) + k) <- Engine.now engine;
          Some (Workload.payload ~seed:wseed ~size:sp.payload_size k)
        end
      in
      (grp i).g_create ~slot:gslot.(i) sp.config
        ~tx:(fun d -> offer_data i d)
        ~next_payload
        ~ack_tx:(fun a -> offer_ack i a)
        ~deliver:(fun p -> deliver_for i sp wseed p);
      match clamp with Some c -> (grp i).g_clamp gslot.(i) c | None -> ())
    specs;
  (* Departures: at stop_at the flow is closed whether or not it
     finished; its demux gate shuts so no event can reach it and its
     model bytes stop counting. *)
  Array.iteri
    (fun i (sp : Fabric.spec) ->
      match sp.stop_at with
      | None -> ()
      | Some d ->
          ignore
            (Engine.schedule_at engine ~at:d (fun () ->
                 if active.(i) then begin
                   active.(i) <- false;
                   gated.(i) <- true;
                   if not completed.(i) then begin
                     departed_mid.(i) <- true;
                     incr departed;
                     decr remaining;
                     if !remaining = 0 then begin
                       done_at := Engine.now engine;
                       Engine.stop engine
                     end
                   end
                 end)))
    specs;
  let sample_mem () =
    let total = ref 0 in
    for i = 0 to n - 1 do
      if active.(i) then total := !total + (grp i).g_mem gslot.(i)
    done;
    if !total > !mem_peak then mem_peak := !total
  in
  let dogs =
    match watchdog with
    | None -> [||]
    | Some wcfg ->
        let dogs = Array.init n (fun _ -> Watchdog.create wcfg) in
        let rec tick () =
          sample_mem ();
          for i = 0 to n - 1 do
            if active.(i) && starts.(i) <= Engine.now engine then begin
              match
                Watchdog.observe dogs.(i) ~delivered:delivered.(i)
                  ~completed:completed.(i)
              with
              | Watchdog.Nothing -> ()
              | Watchdog.Resync -> (grp i).g_resync gslot.(i)
              | Watchdog.Quarantine -> gated.(i) <- true
              | Watchdog.Release ->
                  gated.(i) <- false;
                  (grp i).g_resync gslot.(i)
            end
          done;
          if !remaining > 0 then
            ignore (Engine.schedule engine ~delay:wcfg.Watchdog.check_interval tick)
        in
        ignore (Engine.schedule engine ~delay:wcfg.Watchdog.check_interval tick);
        dogs
  in
  (match cell_budget with
  | Some _ when watchdog = None ->
      let rec tick () =
        sample_mem ();
        if !remaining > 0 then ignore (Engine.schedule engine ~delay:500 tick)
      in
      ignore (Engine.schedule engine ~delay:500 tick)
  | Some _ | None -> ());
  (* Pump in spec order; surge flows exist from tick 0 but only offer
     traffic at their start tick. *)
  Array.iteri
    (fun i _ ->
      if starts.(i) = 0 then (grp i).g_pump gslot.(i)
      else
        ignore
          (Engine.schedule_at engine ~at:starts.(i) (fun () ->
               if active.(i) then (grp i).g_pump gslot.(i))))
    specs;
  let cell_deadline =
    let max_rto =
      Array.fold_left
        (fun acc (sp : Fabric.spec) -> max acc sp.config.Proto_config.rto)
        1 specs
    in
    (max 1 total_msgs * max_rto * 20) + 1_000_000
  in
  {
    c_engine = engine;
    c_n = n;
    c_messages = total_msgs;
    c_refused = refused;
    c_clamped = clamp <> None;
    c_deadline = cell_deadline;
    c_data_lease = data_lease;
    c_ack_lease = ack_lease;
    c_remaining = remaining;
    c_done_at = done_at;
    c_delivered = delivered;
    c_completed = completed;
    c_departed_mid = departed_mid;
    c_duplicates = duplicates;
    c_misordered = misordered;
    c_corrupted = corrupted;
    c_data_sent = data_sent;
    c_acks_sent = acks_sent;
    c_departed = departed;
    c_mem_peak = mem_peak;
    c_latency = latency;
    c_groups = groups;
    c_group_of = group_of;
    c_gslot = gslot;
    c_dogs = dogs;
  }

let run ?(seed = 42) ?jobs ?shards ?(cell = 1024) ?(barrier = 1000) ?(data_loss = 0.)
    ?(ack_loss = 0.) ?(data_delay = Ba_channel.Dist.Uniform (40, 60))
    ?(ack_delay = Ba_channel.Dist.Uniform (40, 60)) ?capacity ?ack_capacity ?plans_for
    ?deadline ?memory_budget ?watchdog ?(measure_mem = false) specs =
  if specs = [] then invalid_arg "Shard.run: at least one flow required";
  if cell < 1 then invalid_arg "Shard.run: cell must be >= 1";
  if barrier < 1 then invalid_arg "Shard.run: barrier must be >= 1";
  let jobs = match jobs with Some j -> j | None -> Ba_parallel.Pool.default_jobs () in
  if jobs < 1 then invalid_arg "Shard.run: jobs must be >= 1";
  let shards = match shards with Some s -> s | None -> jobs in
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  List.iter
    (fun (sp : Fabric.spec) ->
      Proto_config.validate sp.config;
      if sp.start_at < 0 then invalid_arg "Shard.run: start_at must be >= 0";
      match sp.stop_at with
      | Some d when d <= sp.start_at -> invalid_arg "Shard.run: stop_at must be > start_at"
      | Some _ | None -> ())
    specs;
  (match memory_budget with
  | Some b when b <= 0 -> invalid_arg "Shard.run: memory_budget must be positive"
  | Some _ | None -> ());
  let specs = Array.of_list specs in
  let total_flows = Array.length specs in
  let ncells = (total_flows + cell - 1) / cell in
  let live_before =
    if measure_mem then begin
      Gc.full_major ();
      (Gc.stat ()).Gc.live_words
    end
    else 0
  in
  let cells =
    Array.init ncells (fun ci ->
        let lo = ci * cell in
        let hi = min total_flows (lo + cell) in
        let slice = Array.to_list (Array.sub specs lo (hi - lo)) in
        let cell_budget =
          match memory_budget with
          | None -> None
          | Some b -> Some (max 1 (b * (hi - lo) / total_flows))
        in
        build_cell ~seed ~cell_index:ci ~flow_base:lo ~barrier ~data_loss ~ack_loss
          ~data_delay ~ack_delay ~capacity ~ack_capacity ~plans_for ~cell_budget
          ~watchdog ~total_flows slice)
  in
  let state_bytes =
    if measure_mem then begin
      Gc.full_major ();
      (((Gc.stat ()).Gc.live_words - live_before) * (Sys.word_size / 8))
    end
    else 0
  in
  let horizon =
    match deadline with
    | Some d -> d
    | None -> Array.fold_left (fun acc c -> max acc c.c_deadline) 1 cells
  in
  let data_leases =
    Array.of_list
      (List.filter_map (fun c -> c.c_data_lease) (Array.to_list cells))
  in
  let ack_leases =
    Array.of_list (List.filter_map (fun c -> c.c_ack_lease) (Array.to_list cells))
  in
  let epochs = ref 0 and rebalances = ref 0 in
  let t = ref 0 in
  let live () =
    Array.to_list cells |> List.filter (fun c -> !(c.c_remaining) > 0)
  in
  let rec epoch_loop () =
    let alive = live () in
    if alive <> [] && !t < horizon then begin
      let t_end = min horizon (!t + barrier) in
      (* Contiguous shard groups over the live cells: granularity only,
         never semantics. Each group advances its cells in order. *)
      let nalive = List.length alive in
      let per = (nalive + shards - 1) / max 1 shards in
      let rec split xs =
        match xs with
        | [] -> []
        | _ ->
            let rec take k = function
              | x :: tl when k > 0 ->
                  let a, b = take (k - 1) tl in
                  (x :: a, b)
              | rest -> ([], rest)
            in
            let g, rest = take per xs in
            g :: split rest
      in
      ignore
        (Ba_parallel.Pool.map_chunks ~jobs ~chunk:1
           (fun group ->
             List.iter (fun c -> Engine.run ~until:t_end c.c_engine) group)
           (split alive));
      if reconcile_leases data_leases then incr rebalances;
      if Array.length ack_leases > 0 && reconcile_leases ack_leases then incr rebalances;
      incr epochs;
      t := t_end;
      epoch_loop ()
    end
  in
  epoch_loop ();
  (* Aggregate in cell order; everything below is pure arithmetic over
     per-cell state, so the fold order is fixed and the result is the
     same whatever domains ran the epochs. *)
  let flows = Array.fold_left (fun a c -> a + c.c_n) 0 cells in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 cells in
  let delivered = sum (fun c -> Array.fold_left ( + ) 0 c.c_delivered) in
  let per_flow_sum f =
    sum (fun c ->
        let acc = ref 0 in
        for i = 0 to c.c_n - 1 do
          acc := !acc + f c i
        done;
        !acc)
  in
  let retx = per_flow_sum (fun c i -> c.c_groups.(c.c_group_of.(i)).g_retx c.c_gslot.(i)) in
  let pressure =
    per_flow_sum (fun c i -> c.c_groups.(c.c_group_of.(i)).g_pressure c.c_gslot.(i))
  in
  let completed_flows =
    sum (fun c ->
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 c.c_completed)
  in
  let ticks =
    Array.fold_left
      (fun acc c -> max acc (if !(c.c_done_at) >= 0 then !(c.c_done_at) else !t))
      0 cells
  in
  let latency =
    Array.fold_left
      (fun acc c -> Ba_util.Qsketch.merge acc c.c_latency)
      (Ba_util.Qsketch.create ()) cells
  in
  let lease_drops =
    Array.fold_left (fun a l -> a + l.drops) 0 data_leases
    + Array.fold_left (fun a l -> a + l.drops) 0 ack_leases
  in
  {
    flows;
    cells = ncells;
    messages = sum (fun c -> c.c_messages);
    delivered;
    duplicates = sum (fun c -> !(c.c_duplicates));
    misordered = sum (fun c -> !(c.c_misordered));
    corrupted = sum (fun c -> !(c.c_corrupted));
    completed_flows;
    departed = sum (fun c -> !(c.c_departed));
    refused = sum (fun c -> c.c_refused);
    clamped_cells =
      Array.fold_left (fun a c -> if c.c_clamped then a + 1 else a) 0 cells;
    data_sent = sum (fun c -> !(c.c_data_sent));
    acks_sent = sum (fun c -> !(c.c_acks_sent));
    retransmissions = retx;
    pressure_drops = pressure;
    lease_drops;
    lease_rebalances = !rebalances;
    quarantine_events =
      sum (fun c -> Array.fold_left (fun a d -> a + Watchdog.quarantine_events d) 0 c.c_dogs);
    watchdog_resyncs =
      sum (fun c -> Array.fold_left (fun a d -> a + Watchdog.resync_events d) 0 c.c_dogs);
    quarantined =
      sum (fun c ->
          Array.fold_left
            (fun a d -> if Watchdog.state d = Watchdog.Quarantined then a + 1 else a)
            0 c.c_dogs);
    mem_peak_bytes = sum (fun c -> !(c.c_mem_peak));
    ticks;
    epochs = !epochs;
    completed =
      Array.for_all
        (fun c ->
          let ok = ref true in
          for i = 0 to c.c_n - 1 do
            if not (c.c_completed.(i) || c.c_departed_mid.(i)) then ok := false
          done;
          !ok)
        cells;
    aggregate_goodput =
      (if ticks = 0 then 0.
       else float_of_int delivered *. 1000. /. float_of_int ticks);
    latency;
    state_bytes;
  }

let summary r =
  let b = Buffer.create 512 in
  Printf.bprintf b "flows=%d cells=%d messages=%d\n" r.flows r.cells r.messages;
  Printf.bprintf b
    "delivered=%d duplicates=%d misordered=%d corrupted=%d completed-flows=%d\n"
    r.delivered r.duplicates r.misordered r.corrupted r.completed_flows;
  Printf.bprintf b "departed=%d refused=%d clamped-cells=%d\n" r.departed r.refused
    r.clamped_cells;
  Printf.bprintf b "data-sent=%d acks-sent=%d retransmissions=%d pressure-drops=%d\n"
    r.data_sent r.acks_sent r.retransmissions r.pressure_drops;
  Printf.bprintf b "lease-drops=%d lease-rebalances=%d\n" r.lease_drops
    r.lease_rebalances;
  Printf.bprintf b "quarantine-events=%d watchdog-resyncs=%d quarantined=%d\n"
    r.quarantine_events r.watchdog_resyncs r.quarantined;
  Printf.bprintf b "mem-peak=%dB ticks=%d epochs=%d completed=%b goodput=%.2f/ktick\n"
    r.mem_peak_bytes r.ticks r.epochs r.completed r.aggregate_goodput;
  (if Ba_util.Qsketch.count r.latency = 0 then
     Buffer.add_string b "latency: none\n"
   else
     Printf.bprintf b "latency: p50=%.0f p99=%.0f max=%.0f (n=%d)\n"
       (Ba_util.Qsketch.quantile r.latency 0.5)
       (Ba_util.Qsketch.quantile r.latency 0.99)
       (Ba_util.Qsketch.max r.latency)
       (Ba_util.Qsketch.count r.latency));
  Buffer.contents b
