type endpoint = Sender_end | Receiver_end

type event = { at : int; endpoint : endpoint; down_for : int }

type t = event list

let none = []

let validate t =
  List.iter
    (fun e ->
      if e.at < 0 then invalid_arg "Crash_plan: crash tick must be >= 0";
      if e.down_for <= 0 then invalid_arg "Crash_plan: down_for must be positive")
    t

let make events =
  validate events;
  List.sort (fun a b -> compare (a.at, a.endpoint) (b.at, b.endpoint)) events

let endpoint_letter = function Sender_end -> 'S' | Receiver_end -> 'R'

(* Replay key, printed next to the channel fault plans on a campaign
   failure: crash(S@150+80) = sender crashes at tick 150, restarts at
   230. Multiple events join with "+" like Fault_plan's pp. *)
let pp ppf = function
  | [] -> Format.pp_print_string ppf "none"
  | events ->
      Format.pp_print_string ppf
        (String.concat "+"
           (List.map
              (fun e ->
                Printf.sprintf "crash(%c@%d+%d)" (endpoint_letter e.endpoint) e.at e.down_for)
              events))

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  (* Tokens join with '+' at paren depth 0; the '+' inside
     crash(S@150+80) stays with its token. *)
  let toks = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | '+' when !depth = 0 ->
          toks := Buffer.contents buf :: !toks;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  toks := Buffer.contents buf :: !toks;
  let parse_tok tok =
    match
      Scanf.sscanf tok "crash(%c@%d+%d)%!" (fun c at down_for ->
          match c with
          | 'S' -> Some { at; endpoint = Sender_end; down_for }
          | 'R' -> Some { at; endpoint = Receiver_end; down_for }
          | _ -> None)
    with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown endpoint letter in crash token %S" tok)
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
        Error (Printf.sprintf "unrecognized crash token %S in plan %S" tok s)
  in
  if String.trim s = "none" then Ok none
  else
    let rec go acc = function
      | [] -> (
          match validate acc with
          | () -> Ok (make acc)
          | exception Invalid_argument m -> Error m)
      | tok :: rest -> (
          match parse_tok (String.trim tok) with
          | Ok e -> go (e :: acc) rest
          | Error _ as e -> e)
    in
    go [] (List.rev !toks)

let quiesced_after t =
  List.fold_left (fun acc e -> max acc (e.at + e.down_for)) 0 t
