(** Payload source with one-slot lookahead.

    Senders pull payloads from a [unit -> string option] supplier. A
    supplier returning [None] means "nothing available now", not
    necessarily "never again" — an application may queue more data later
    (as {!Blockack.Connection} does). This wrapper re-polls on demand and
    buffers at most one payload so that checking for exhaustion never
    loses data. *)

type t

val create : (unit -> string option) -> t

val next : t -> string option
(** Take the buffered payload if any, otherwise poll the supplier. *)

val exhausted : t -> bool
(** [true] when nothing is available right now: the lookahead slot is
    empty and a fresh poll returned [None]. A payload obtained by the
    poll is kept for the next {!next}. *)

val issued : t -> int
(** Total payloads ever handed out (distinct positions, not counting
    replays). Position [k] in this count is the resync handshake's
    currency: the receiver's POS names the next position it expects. *)

val rewind : t -> to_:int -> unit
(** Replay the outbox from position [to_]: subsequent {!next} calls
    re-yield previously issued payloads in order before pulling fresh
    ones. The source retains everything it ever issued (it stands in for
    the application's durable outbox), which is what lets a crashed
    sender — whose volatile retransmission buffer is gone — resume from
    the position the receiver announces. Raises [Invalid_argument] when
    [to_] exceeds {!issued}. *)
