(** Configuration shared by all simulated protocol implementations. *)

type drop_policy =
  | Drop_new  (** discard the arriving frame when the reassembly budget is full *)
  | Drop_furthest
      (** evict the buffered frame furthest from the delivery frontier
          instead (Jain's caching policy: slots near [nr] complete runs
          sooner, so they are worth more under pressure) *)

type t = {
  window : int;  (** maximum outstanding data messages, the paper's [w] *)
  rto : int;
      (** retransmission timeout in ticks. Soundness of the paper's
          timeout rule needs [rto > 2 * max link delay + ack_coalesce]
          so that "timer expired" implies "no copy in transit". *)
  wire_modulus : int option;
      (** [Some n]: sequence numbers cross the wire modulo [n] (the paper
          proves [n = 2 * window] suffices for block acknowledgment).
          [None]: unbounded wire numbers. *)
  ack_coalesce : int;
      (** receiver-side delay (ticks) before flushing a pending block
          acknowledgment, letting one ack cover more data. 0 = ack
          immediately. *)
  stenning_gap : int;
      (** Stenning baseline only: minimum ticks between two sends that
          reuse the same wire sequence number. *)
  dynamic_window : bool;
      (** Section VI's closing remark: "it is possible to extend all our
          protocols to have variable size windows". When true, senders
          with per-message timers treat [window] as a *maximum* and run
          an AIMD congestion window inside it: +1 message per window's
          worth of acknowledgments, halved on timeout. Useful when the
          path contains a bottleneck queue ({!Ba_channel.Link} with
          [bottleneck]); a no-op benefit-wise on loss-only links. *)
  adaptive_rto : bool;
      (** When true, senders with per-message timers estimate the round
          trip (Jacobson/Karels, Karn's rule) and adapt their timeout.
          With a finite wire modulus the configured [rto] stays the lower
          bound (it is what makes the timeout sound); with unbounded wire
          numbers the estimator may go below it. *)
  max_transit : int option;
      (** Known upper bound on one-way transit time (the link's maximum
          delay). Optional tuning knob: when set, retransmission-frontier
          holds shrink from [rto] to [2 * max_transit + ack_coalesce],
          reducing post-loss throttling. Must satisfy
          [rto > 2 * max_transit + ack_coalesce]. *)
  rx_budget : int option;
      (** [Some b]: hard cap ([1..window]) on the receiver's
          out-of-order reassembly slots beyond its contiguous run.
          Fresh in-window frames arriving over budget are handled per
          [drop_policy]; the run-extending frame ([v = vr]) is always
          admitted, which is what keeps drop-new from livelocking. A
          victim was never acknowledged, so a budget drop is
          behaviorally a channel loss. [None]: the paper's assumption —
          room for the full window. *)
  tx_budget : int option;
      (** [Some b]: hard cap ([1..window]) on the sender's retransmit
          buffer, clamping the effective window below the configured
          one. [None]: the full window. *)
  drop_policy : drop_policy;
      (** What a budget-full receiver does with a fresh in-window frame
          (only consulted when [rx_budget] is set). *)
  resync_epochs : bool;
      (** Crash–restart semantics for the endpoints that support a
          [crash]/[restart] lifecycle. [true] (default): restart bumps a
          stable-storage incarnation epoch and runs the REQ/POS/FIN
          resync handshake ({!Wire}) before resuming, so old-incarnation
          traffic is rejected. [false]: the negative control — restart
          returns with zeroed volatile state, no epoch and no handshake,
          reproducing the duplicate-delivery failure the explorer's
          crash model exhibits. *)
}

val default : t
(** window 16, rto 250, unbounded wire numbers, immediate acks. *)

val make :
  ?window:int ->
  ?rto:int ->
  ?wire_modulus:int option ->
  ?ack_coalesce:int ->
  ?stenning_gap:int ->
  ?dynamic_window:bool ->
  ?adaptive_rto:bool ->
  ?max_transit:int ->
  ?rx_budget:int ->
  ?tx_budget:int ->
  ?drop_policy:drop_policy ->
  ?resync_epochs:bool ->
  unit ->
  t
(** [default] with overrides; validates all fields. *)

val drop_policy_name : drop_policy -> string
(** ["drop-new"] / ["drop-furthest"], for reports and replay keys. *)

val hold_duration : t -> int
(** How long a retransmitted copy (and any acknowledgment it triggers)
    can survive in the network: [2 * max_transit + ack_coalesce] when
    [max_transit] is known, else the conservative [rto]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical combinations (non-positive
    window, modulus smaller than [window + 1], negative times). The
    block-acknowledgment endpoints additionally require a modulus of at
    least [2 * window] and check it themselves. *)

val pp : Format.formatter -> t -> unit
