type t = {
  window : int;
  rto : int;
  wire_modulus : int option;
  ack_coalesce : int;
  stenning_gap : int;
  dynamic_window : bool;
  adaptive_rto : bool;
  max_transit : int option;
  resync_epochs : bool;
      (* [true]: crash-restart bumps the incarnation epoch (stable
         storage) and runs the REQ/POS/FIN resync handshake before
         resuming. [false]: the negative control — a restart comes back
         with zeroed volatile state, no epoch bump and no handshake,
         which is exactly the stale-state failure mode the self-
         stabilizing-ARQ literature warns about. *)
}

let default =
  {
    window = 16;
    rto = 250;
    wire_modulus = None;
    ack_coalesce = 0;
    stenning_gap = 0;
    dynamic_window = false;
    adaptive_rto = false;
    max_transit = None;
    resync_epochs = true;
  }

let validate t =
  if t.window <= 0 then invalid_arg "Proto_config: window must be positive";
  if t.rto <= 0 then invalid_arg "Proto_config: rto must be positive";
  if t.ack_coalesce < 0 then invalid_arg "Proto_config: ack_coalesce must be >= 0";
  if t.stenning_gap < 0 then invalid_arg "Proto_config: stenning_gap must be >= 0";
  (match t.max_transit with
  | Some m when m <= 0 -> invalid_arg "Proto_config: max_transit must be positive"
  | Some m when t.rto <= (2 * m) + t.ack_coalesce ->
      invalid_arg "Proto_config: rto must exceed 2*max_transit + ack_coalesce"
  | Some _ | None -> ());
  match t.wire_modulus with
  | None -> ()
  | Some n ->
      (* n >= w + 1 is the bare minimum for any windowed scheme; block
         acknowledgment additionally needs n >= 2w, which the block-ack
         endpoints enforce themselves. *)
      if n < t.window + 1 then
        invalid_arg
          (Printf.sprintf "Proto_config: wire modulus %d < window+1=%d" n (t.window + 1))

let make ?window ?rto ?wire_modulus ?ack_coalesce ?stenning_gap ?dynamic_window ?adaptive_rto
    ?max_transit ?resync_epochs () =
  let t =
    {
      window = Option.value ~default:default.window window;
      rto = Option.value ~default:default.rto rto;
      wire_modulus = Option.value ~default:default.wire_modulus wire_modulus;
      ack_coalesce = Option.value ~default:default.ack_coalesce ack_coalesce;
      stenning_gap = Option.value ~default:default.stenning_gap stenning_gap;
      dynamic_window = Option.value ~default:default.dynamic_window dynamic_window;
      adaptive_rto = Option.value ~default:default.adaptive_rto adaptive_rto;
      max_transit;
      resync_epochs = Option.value ~default:default.resync_epochs resync_epochs;
    }
  in
  validate t;
  t

let hold_duration t =
  match t.max_transit with Some m -> (2 * m) + t.ack_coalesce | None -> t.rto

let pp ppf t =
  Format.fprintf ppf "w=%d rto=%d mod=%s coalesce=%d" t.window t.rto
    (match t.wire_modulus with None -> "none" | Some n -> string_of_int n)
    t.ack_coalesce
