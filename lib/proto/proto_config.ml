type drop_policy = Drop_new | Drop_furthest

type t = {
  window : int;
  rto : int;
  wire_modulus : int option;
  ack_coalesce : int;
  stenning_gap : int;
  dynamic_window : bool;
  adaptive_rto : bool;
  max_transit : int option;
  rx_budget : int option;
      (* [Some b]: the receiver may hold at most [b] out-of-order
         reassembly slots beyond its contiguous run; further in-window
         frames hit [drop_policy]. [None]: the full window (the paper's
         assumption of room for every outstanding message). *)
  tx_budget : int option;
      (* [Some b]: the sender's retransmit buffer is capped at [b]
         slots, clamping the effective window below the configured one.
         [None]: the full window. *)
  drop_policy : drop_policy;
      (* What a budget-full receiver does with a fresh in-window frame
         it has no room for: [Drop_new] discards the arrival, [Drop_furthest]
         evicts the buffered frame furthest from the delivery frontier
         (Jain's preferred policy: slots near [nr] complete runs sooner).
         Either way the victim was never acknowledged, so the sender's
         timer retransmits it — a buffer-pressure drop is behaviorally a
         channel loss. *)
  resync_epochs : bool;
      (* [true]: crash-restart bumps the incarnation epoch (stable
         storage) and runs the REQ/POS/FIN resync handshake before
         resuming. [false]: the negative control — a restart comes back
         with zeroed volatile state, no epoch bump and no handshake,
         which is exactly the stale-state failure mode the self-
         stabilizing-ARQ literature warns about. *)
}

let default =
  {
    window = 16;
    rto = 250;
    wire_modulus = None;
    ack_coalesce = 0;
    stenning_gap = 0;
    dynamic_window = false;
    adaptive_rto = false;
    max_transit = None;
    rx_budget = None;
    tx_budget = None;
    drop_policy = Drop_new;
    resync_epochs = true;
  }

let validate t =
  if t.window <= 0 then invalid_arg "Proto_config: window must be positive";
  if t.rto <= 0 then invalid_arg "Proto_config: rto must be positive";
  if t.ack_coalesce < 0 then invalid_arg "Proto_config: ack_coalesce must be >= 0";
  if t.stenning_gap < 0 then invalid_arg "Proto_config: stenning_gap must be >= 0";
  (match t.max_transit with
  | Some m when m <= 0 -> invalid_arg "Proto_config: max_transit must be positive"
  | Some m when t.rto <= (2 * m) + t.ack_coalesce ->
      invalid_arg "Proto_config: rto must exceed 2*max_transit + ack_coalesce"
  | Some _ | None -> ());
  (match t.rx_budget with
  | Some b when b < 1 || b > t.window ->
      invalid_arg
        (Printf.sprintf "Proto_config: rx_budget %d outside [1, window=%d]" b t.window)
  | Some _ | None -> ());
  (match t.tx_budget with
  | Some b when b < 1 || b > t.window ->
      invalid_arg
        (Printf.sprintf "Proto_config: tx_budget %d outside [1, window=%d]" b t.window)
  | Some _ | None -> ());
  match t.wire_modulus with
  | None -> ()
  | Some n ->
      (* n >= w + 1 is the bare minimum for any windowed scheme; block
         acknowledgment additionally needs n >= 2w, which the block-ack
         endpoints enforce themselves. *)
      if n < t.window + 1 then
        invalid_arg
          (Printf.sprintf "Proto_config: wire modulus %d < window+1=%d" n (t.window + 1))

let make ?window ?rto ?wire_modulus ?ack_coalesce ?stenning_gap ?dynamic_window ?adaptive_rto
    ?max_transit ?rx_budget ?tx_budget ?drop_policy ?resync_epochs () =
  let t =
    {
      window = Option.value ~default:default.window window;
      rto = Option.value ~default:default.rto rto;
      wire_modulus = Option.value ~default:default.wire_modulus wire_modulus;
      ack_coalesce = Option.value ~default:default.ack_coalesce ack_coalesce;
      stenning_gap = Option.value ~default:default.stenning_gap stenning_gap;
      dynamic_window = Option.value ~default:default.dynamic_window dynamic_window;
      adaptive_rto = Option.value ~default:default.adaptive_rto adaptive_rto;
      max_transit;
      rx_budget;
      tx_budget;
      drop_policy = Option.value ~default:default.drop_policy drop_policy;
      resync_epochs = Option.value ~default:default.resync_epochs resync_epochs;
    }
  in
  validate t;
  t

let drop_policy_name = function Drop_new -> "drop-new" | Drop_furthest -> "drop-furthest"

let hold_duration t =
  match t.max_transit with Some m -> (2 * m) + t.ack_coalesce | None -> t.rto

let pp ppf t =
  Format.fprintf ppf "w=%d rto=%d mod=%s coalesce=%d" t.window t.rto
    (match t.wire_modulus with None -> "none" | Some n -> string_of_int n)
    t.ack_coalesce
