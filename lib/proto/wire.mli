(** Wire messages exchanged by the simulated protocols.

    Data messages carry a sequence number (possibly modulo-encoded,
    depending on the protocol's configuration) and an opaque payload.
    Acknowledgments carry the paper's pair [(lo, hi)]; protocols that use
    single-number acks (go-back-N, selective repeat) set [lo = hi], which
    also gives a uniform basis for byte accounting.

    Both message kinds additionally carry a frame checksum, standing in
    for a link-layer FCS. The paper's channel model has no corruption,
    so the checksum is not part of its protocol — it exists so the
    adversarial channel ({!Ba_channel.Fault_plan}) can flip bits and the
    robust endpoints can discard the damage instead of delivering it.
    Construct messages with {!make_data}/{!make_ack} (which compute the
    checksum) and validate arrivals with {!data_ok}/{!ack_ok}. Like a
    hardware FCS, the checksum is excluded from the byte-overhead
    accounting below.

    Frames additionally carry an incarnation {e epoch} and a frame
    {e kind} for the crash–restart machinery: a restarted endpoint bumps
    its epoch (stable storage) and runs a 3-message resync handshake —
    REQ (a restarted sender asks for the receiver's position), POS (the
    receiver states its stable delivered count), FIN (the sender
    confirms cut-over; fresh same-epoch data acts as an implicit FIN).
    Epoch-0 [Msg]/[Ack] frames are bit-identical to the pre-crash wire
    format, so protocols that never restart are unaffected. *)

type data_kind = Msg | Sync_req | Sync_fin

type data = {
  mutable seq : int;
  mutable payload : string;
  mutable epoch : int;
  mutable dkind : data_kind;
  mutable check : int;
}
(** Fields are mutable only so frames can be pooled (see
    {!release_data}); protocol code treats frames as immutable values. *)

type ack_kind = Ack | Sync_pos

type ack = {
  mutable lo : int;
  mutable hi : int;
  mutable epoch : int;
  mutable akind : ack_kind;
  mutable check : int;
}

val make_data : seq:int -> payload:string -> data
val make_ack : lo:int -> hi:int -> ack

val make_data_e : epoch:int -> seq:int -> payload:string -> data
(** [Msg] frame stamped with the sender's current incarnation epoch. *)

val make_ack_e : epoch:int -> lo:int -> hi:int -> ack

val make_sync_req : epoch:int -> data
(** Handshake message 1: a restarted sender (fresh epoch, empty volatile
    state) asks the receiver where to resume. *)

val make_sync_pos : epoch:int -> pos:int -> ack
(** Handshake message 2: the receiver's stable delivered count [pos],
    carried as an absolute position in [lo] (mirrored in [hi]) — resync
    is rare, so it is exempt from the wire modulus. Also sent
    spontaneously by a restarted receiver (the receiver is the position
    authority, so its restart skips REQ). *)

val make_sync_fin : epoch:int -> data
(** Handshake message 3: the sender confirms it has adopted [pos] and
    the new epoch; the receiver stops resending POS. *)

val data_ok : data -> bool
(** The stored checksum matches the contents; receivers must discard
    (and never deliver or acknowledge) a failing frame. *)

val ack_ok : ack -> bool
(** Senders must ignore a failing acknowledgment — acting on a mangled
    block range could acknowledge data the receiver never accepted. *)

val data_checksum : seq:int -> payload:string -> epoch:int -> dkind:data_kind -> int
val ack_checksum : lo:int -> hi:int -> epoch:int -> akind:ack_kind -> int

val corrupt_data : data -> data
(** Deterministically damage the frame without fixing up its checksum
    (flips a payload bit, or the sequence number when the payload is
    empty) — the mangle function links install for [Corrupt] verdicts. *)

val corrupt_ack : ack -> ack

val release_data : data -> unit
(** Return a frame to the domain-local pool that {!make_data} /
    {!make_data_e} draw from, making steady-state frame construction
    allocation-free. Callers must own the frame exclusively: nothing may
    touch it after release (its payload reference is cleared; the
    payload string itself is unaffected). Releasing is optional — an
    unreleased frame is GC'd as usual. {!Ba_channel.Link}'s [release]
    hook is the intended call site. *)

val release_ack : ack -> unit

val data_header_bytes : int
(** Fixed per-data-message header cost used for overhead accounting. *)

val ack_bytes_block : int
(** Bytes of a two-number block acknowledgment. *)

val ack_bytes_single : int
(** Bytes of a classic one-number acknowledgment. *)

val data_bytes : data -> int
(** Header plus payload length. *)

val pp_data : Format.formatter -> data -> unit
val pp_ack : Format.formatter -> ack -> unit
