(** Per-flow liveness watchdog: Healthy → Degraded → Stalled →
    Quarantined, with hysteresis.

    A pure state machine over periodic progress observations — no engine,
    no timers. The owner (the {!Fabric}) calls {!observe} every
    [check_interval] ticks with the flow's delivered count and interprets
    the returned {!action}: [Resync] crash-restarts the flow's sender so
    the REQ/POS/FIN handshake re-establishes the window; [Quarantine]
    gates the flow off the shared links (isolating a repeat offender so
    the other [n-1] flows keep their throughput); [Release] ends
    probation with one more resync attempt.

    Escalation: [stall_checks] consecutive checks without delivery
    progress moves Healthy → Degraded; [degraded_checks] more trigger the
    first [Resync] (state Stalled). Each resync rewinds the idle counter
    to the Degraded threshold, giving the handshake a full
    [degraded_checks] grace period; after [max_resyncs] fruitless resyncs
    the next escalation returns [Quarantine]. Progress snaps any
    non-quarantined state back to Healthy; quarantine only lifts after
    [probation_checks] checks. *)

type state = Healthy | Degraded | Stalled | Quarantined

val state_name : state -> string
(** ["healthy"] / ["degraded"] / ["stalled"] / ["quarantined"]. *)

type action =
  | Nothing
  | Resync  (** crash+restart the sender through the resync handshake *)
  | Quarantine  (** gate the flow off the shared links *)
  | Release  (** probation over: un-gate and resync once more *)

type config = {
  check_interval : int;  (** ticks between observations *)
  stall_checks : int;  (** silent checks before Healthy → Degraded *)
  degraded_checks : int;  (** further silent checks before acting *)
  max_resyncs : int;  (** fruitless resyncs tolerated before quarantine *)
  probation_checks : int;  (** checks a quarantined flow sits out *)
}

val default_config : config
(** interval 1000, 2 checks to degrade, 2 more to act, 2 resyncs,
    probation 4. *)

type t

val create : config -> t
(** Fresh machine in [Healthy]. Raises [Invalid_argument] on a
    non-positive interval or check count. *)

val observe : t -> delivered:int -> completed:bool -> action
(** One periodic check: [delivered] is the flow's cumulative in-order
    delivery count. A completed flow is Healthy forever after. *)

val state : t -> state

val quarantine_events : t -> int
(** Times this flow entered quarantine. *)

val resync_events : t -> int
(** Watchdog-initiated resyncs (Release re-syncs not included). *)
