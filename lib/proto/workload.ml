let filler_alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

(* "m:<i>:" followed by seeded filler, built in one [Bytes] — the
   sprintf/init/concat formulation allocated several intermediates per
   payload, which dominated the transfer benchmarks' heap profile. *)
(* Top-level helpers: local [let rec] closures would allocate per call. *)
let rec decimal_width n acc = if n < 10 then acc else decimal_width (n / 10) (acc + 1)

let rec put_digits b v k =
  Bytes.unsafe_set b k (Char.unsafe_chr (Char.code '0' + (v mod 10)));
  if v >= 10 then put_digits b (v / 10) (k - 1)

let payload ~seed ~size i =
  if i < 0 then invalid_arg "Workload.payload: negative index";
  let ndigits = decimal_width i 1 in
  let plen = 2 + ndigits + 1 in
  let n = max plen size in
  let b = Bytes.create n in
  Bytes.unsafe_set b 0 'm';
  Bytes.unsafe_set b 1 ':';
  put_digits b i (2 + ndigits - 1);
  Bytes.unsafe_set b (plen - 1) ':';
  let rng = Ba_util.Rng.create ((seed * 1_000_003) + i) in
  for k = plen to n - 1 do
    Bytes.unsafe_set b k
      (String.unsafe_get filler_alphabet (Ba_util.Rng.int rng (String.length filler_alphabet)))
  done;
  Bytes.unsafe_to_string b

(* Parse the "m:<digits>:" prefix in place — no [String.sub] and no
   local closure, so the per-delivery validation path allocates only
   the [Some]. *)
let rec parse_index s n i acc =
  if i >= n || i > 20 then None
  else
    match s.[i] with
    | ':' -> if i = 2 then None else Some acc
    | '0' .. '9' -> parse_index s n (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0'))
    | _ -> None

let index_of s =
  if String.length s >= 2 && s.[0] = 'm' && s.[1] = ':' then
    parse_index s (String.length s) 2 0
  else None

let supplier ~seed ~size ~count =
  let next = ref 0 in
  fun () ->
    if !next >= count then None
    else begin
      let p = payload ~seed ~size !next in
      incr next;
      Some p
    end
