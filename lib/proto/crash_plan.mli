(** Scheduled endpoint crash–restart events: the process-fault analogue
    of {!Ba_channel.Fault_plan}.

    A plan is a list of events, each crashing one endpoint at a tick and
    restarting it [down_for] ticks later. Like the channel plans, a
    crash plan is replayable: campaigns derive it as a pure function of
    the seed and print it as part of any failure's replay key. *)

type endpoint = Sender_end | Receiver_end

type event = { at : int; endpoint : endpoint; down_for : int }

type t = event list

val none : t

val make : event list -> t
(** Validates and sorts by crash tick. Raises [Invalid_argument] on a
    negative tick or non-positive [down_for]. *)

val validate : t -> unit

val pp : Format.formatter -> t -> unit
(** Replay-key format: [crash(S@150+80)] = sender crashes at tick 150
    and restarts 80 ticks later; events join with ["+"]; the empty plan
    prints ["none"]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the {!pp} replay-key format back into a plan (["none"] parses
    to {!none}); inverse of {!pp}, so a campaign failure's process-fault
    line can be fed verbatim to [ba_chaos --replay]. *)

val quiesced_after : t -> int
(** First tick by which every scheduled crash has restarted. *)
