(* Per-flow liveness watchdog: a pure state machine over periodic
   progress observations. The fabric owns the clock (it calls [observe]
   every [check_interval] ticks) and interprets the returned actions —
   [Resync] as a crash+restart of the flow's sender through the
   REQ/POS/FIN handshake, [Quarantine]/[Release] as gating the flow off
   the shared links and back on. Keeping the machine engine-free makes
   every transition unit-testable without a simulation. *)

type state = Healthy | Degraded | Stalled | Quarantined

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Stalled -> "stalled"
  | Quarantined -> "quarantined"

type action = Nothing | Resync | Quarantine | Release

type config = {
  check_interval : int;
  stall_checks : int;
  degraded_checks : int;
  max_resyncs : int;
  probation_checks : int;
}

let default_config =
  { check_interval = 1_000; stall_checks = 2; degraded_checks = 2; max_resyncs = 2;
    probation_checks = 4 }

let validate_config c =
  if c.check_interval <= 0 then invalid_arg "Watchdog: check_interval must be positive";
  if c.stall_checks < 1 || c.degraded_checks < 1 then
    invalid_arg "Watchdog: stall_checks and degraded_checks must be >= 1";
  if c.max_resyncs < 0 then invalid_arg "Watchdog: max_resyncs must be >= 0";
  if c.probation_checks < 1 then invalid_arg "Watchdog: probation_checks must be >= 1"

type t = {
  config : config;
  mutable state : state;
  mutable last_progress : int;  (* delivered count at the last observed progress *)
  mutable idle : int;  (* consecutive checks without progress *)
  mutable resyncs_since_progress : int;
  mutable probation : int;  (* checks left before a quarantined flow is released *)
  mutable quarantine_events : int;
  mutable resync_events : int;
}

let create config =
  validate_config config;
  {
    config;
    state = Healthy;
    last_progress = 0;
    idle = 0;
    resyncs_since_progress = 0;
    probation = 0;
    quarantine_events = 0;
    resync_events = 0;
  }

(* One periodic check. Hysteresis both ways: escalation needs
   [stall_checks] silent checks to leave Healthy and [degraded_checks]
   more to act, and each Resync winds the counter back to the Degraded
   threshold so the handshake gets a full [degraded_checks] grace period
   before the next escalation. Any delivery progress snaps the machine
   back to Healthy — except out of Quarantined, which only probation
   lifts (that is the isolation guarantee). *)
let observe t ~delivered ~completed =
  if completed then begin
    t.state <- Healthy;
    t.idle <- 0;
    Nothing
  end
  else if delivered > t.last_progress && t.state <> Quarantined then begin
    t.last_progress <- delivered;
    t.idle <- 0;
    t.resyncs_since_progress <- 0;
    t.state <- Healthy;
    Nothing
  end
  else
    match t.state with
    | Quarantined ->
        t.last_progress <- max t.last_progress delivered;
        t.probation <- t.probation - 1;
        if t.probation <= 0 then begin
          (* Released on parole: back to Degraded with a clean resync
             allowance, one escalation away from re-quarantine. *)
          t.state <- Degraded;
          t.idle <- t.config.stall_checks;
          t.resyncs_since_progress <- 0;
          Release
        end
        else Nothing
    | Healthy | Degraded | Stalled ->
        t.idle <- t.idle + 1;
        if t.idle >= t.config.stall_checks + t.config.degraded_checks then
          if t.resyncs_since_progress >= t.config.max_resyncs then begin
            t.state <- Quarantined;
            t.quarantine_events <- t.quarantine_events + 1;
            t.probation <- t.config.probation_checks;
            Quarantine
          end
          else begin
            t.state <- Stalled;
            t.resyncs_since_progress <- t.resyncs_since_progress + 1;
            t.resync_events <- t.resync_events + 1;
            t.idle <- t.config.stall_checks;
            Resync
          end
        else begin
          if t.state = Healthy && t.idle >= t.config.stall_checks then t.state <- Degraded;
          Nothing
        end

let state t = t.state
let quarantine_events t = t.quarantine_events
let resync_events t = t.resync_events
