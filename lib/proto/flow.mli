(** One connection: a protocol's sender/receiver pair plus the
    bookkeeping that turns its deliveries into a verdict.

    A flow owns everything per-connection that {!Harness.run} used to
    wire inline — the seeded {!Workload}, payload validation, duplicate /
    misordering / corruption counting, per-payload latency, and
    completion detection — but it does {e not} own links: it sends
    through the [data_tx] / [ack_tx] callbacks it was given and is fed
    arrivals through {!on_data} / {!on_ack}. That inversion is what lets
    {!Fabric} multiplex many flows (of different protocols) over one
    shared pair of links while {!Harness} keeps its private two. *)

type result = {
  protocol : string;
  completed : bool;  (** all payloads delivered and acknowledged *)
  ticks : int;  (** simulated time consumed (caller-supplied horizon) *)
  messages : int;  (** payloads offered *)
  delivered : int;  (** distinct payloads delivered *)
  duplicates : int;  (** deliveries of an already-delivered payload *)
  misordered : int;  (** deliveries that broke application order *)
  corrupted : int;  (** deliveries of an unparseable payload *)
  data_sent : int;
  data_dropped : int;
  data_queue_dropped : int;  (** tail drops at the data-link bottleneck *)
  data_reordered : int;  (** wire-level overtakings on the data link *)
  data_duplicated : int;  (** extra copies injected by a fault plan *)
  data_corrupted : int;  (** wire-level corruptions injected on the data link *)
  data_outage_drops : int;  (** data frames lost to scheduled outages *)
  acks_sent : int;
  acks_dropped : int;
  acks_corrupted : int;  (** wire-level corruptions injected on the ack link *)
  ack_outage_drops : int;  (** acks lost to scheduled outages *)
  retransmissions : int;
  goodput : float;  (** delivered payloads per 1000 ticks *)
  latency : Ba_util.Stats.summary option;
      (** per-payload delivery latency (ticks from entering the sender's
          window to in-order delivery); [None] when nothing was delivered *)
  latencies : float list;
      (** the raw per-payload latency samples behind [latency], in
          delivery order (for histograms) *)
  ack_overhead : float;  (** ack bytes per delivered payload byte *)
  efficiency : float;  (** delivered / data_sent: 1.0 means no waste *)
  crashes : int;  (** endpoint crashes injected into this flow *)
  restarts : int;  (** endpoint restarts *)
  resync_rounds : int;  (** handshake frames (REQ/POS/FIN) sent, retries included *)
  resync_ticks : Ba_util.Stats.summary option;
      (** per-restart recovery time: restart tick to the next in-order
          delivery (or completion); [None] when nothing restarted *)
  retx_bytes : int;  (** bytes of retransmitted payload copies on the wire *)
  pressure_drops : int;
      (** in-window frames the receiver refused for buffer-full under an
          [rx_budget]; behaviorally channel losses (never acknowledged) *)
}

type t

val create :
  Ba_sim.Engine.t ->
  Protocol.t ->
  ?id:int ->
  ?workload_seed:int ->
  seed:int ->
  messages:int ->
  payload_size:int ->
  config:Proto_config.t ->
  data_tx:(Wire.data -> unit) ->
  ack_tx:(Wire.ack -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Builds the sender, then the receiver, on [engine] (in that order —
    creation order fixes event ordering, hence determinism). Payloads
    come from a {!Workload} seeded by [workload_seed] (default [seed];
    fabrics give each flow its own so streams are distinguishable).
    [on_complete] fires exactly once, when the last payload has been
    delivered {e and} the sender has seen every acknowledgment. *)

val on_data : t -> Wire.data -> unit
(** Feed a data arrival to the receiver half. *)

val on_ack : t -> Wire.ack -> unit
(** Feed an acknowledgment arrival to the sender half. *)

val pump : t -> unit
(** Ask the sender to (re)fill its window; called once at start. *)

val id : t -> int

val protocol_name : t -> string

val messages : t -> int

val delivered : t -> int

val retransmissions : t -> int

val outstanding : t -> int

val is_complete : t -> bool

val completed_at : t -> int option
(** Tick at which the flow completed, if it has. *)

val mem_bytes : t -> int
(** Payload bytes currently buffered by both endpoints (retransmit
    queue + reassembly window) — what the fabric's accountant charges
    this flow. Protocols without accounting report 0. *)

val clamp_window : t -> int -> unit
(** Backpressure: cap the sender's effective window (no-op for
    protocols without a clamp path). *)

val pressure_drops : t -> int
(** In-window frames the receiver refused for buffer-full so far. *)

(** {2 Crash–restart}

    Fault the flow's {e processes} rather than its channel. The calls
    delegate to the protocol's lifecycle
    ({!Protocol.S.sender_crash} etc.) and raise [Invalid_argument] when
    {!crash_tolerant} is [false]. Crashing an already-down endpoint (or
    restarting a live one) is a no-op at the protocol layer but still
    counted here, so overlapping plans stay visible in the result. *)

val crash_tolerant : t -> bool
val crash_sender : t -> unit
val restart_sender : t -> unit
val crash_receiver : t -> unit
val restart_receiver : t -> unit

val result : t -> ?data_stats:Ba_channel.Link.stats -> ?ack_stats:Ba_channel.Link.stats -> ticks:int -> unit -> result
(** Snapshot the flow's verdict. [data_stats] / [ack_stats] attribute
    link-level counters (drops, reorderings, injected faults) when the
    flow ran over private links; without them the link fields fall back
    to the flow's own send counts and zeros, which is all a shared link
    can attribute to one flow. *)
