type t = {
  supplier : unit -> string option;
  history : (int, string) Hashtbl.t;
  mutable issued : int;
  mutable cursor : int;
  mutable pending : string option;
}

let create supplier = { supplier; history = Hashtbl.create 64; issued = 0; cursor = 0; pending = None }

let next t =
  if t.cursor < t.issued then begin
    (* Replaying the outbox after a resync rewind. *)
    let p = Hashtbl.find t.history t.cursor in
    t.cursor <- t.cursor + 1;
    Some p
  end
  else begin
    let fresh =
      match t.pending with
      | Some _ as p ->
          t.pending <- None;
          p
      | None -> t.supplier ()
    in
    match fresh with
    | None -> None
    | Some p ->
        Hashtbl.replace t.history t.issued p;
        t.issued <- t.issued + 1;
        t.cursor <- t.issued;
        Some p
  end

let exhausted t =
  if t.cursor < t.issued then false
  else
    match t.pending with
    | Some _ -> false
    | None -> (
        match t.supplier () with
        | None -> true
        | Some p ->
            t.pending <- Some p;
            false)

let issued t = t.issued

let rewind t ~to_ =
  if to_ < 0 || to_ > t.issued then
    invalid_arg
      (Printf.sprintf "Source.rewind: position %d outside issued range [0,%d]" to_ t.issued);
  t.cursor <- to_
