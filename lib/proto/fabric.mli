(** N-connection simulation fabric: many {!Flow}s — any mix of protocols
    — multiplexed over one shared data link and one shared ack link.

    This is the scaling counterpart of {!Harness}: where the harness
    gives a single connection two private links, the fabric makes every
    connection contend for the same capacity-limited channel (pass
    [data_bottleneck] to model the shared router queue), which is what
    contention, fairness and aggregate-throughput questions need. Wire
    messages travel tagged with their flow id; the tag acts as a
    link-layer address, so injected corruption mangles frames but never
    the demultiplexing.

    The fabric is also where overload is handled: a [memory_budget]
    turns on admission control with graceful degradation (refuse new
    flows, clamp existing windows — never OOM), and a [watchdog] config
    arms a per-flow liveness machine that resyncs stalled flows through
    the crash-restart handshake and quarantines repeat offenders off the
    shared links (see {!Watchdog}).

    A run is a pure function of [seed]: links split the engine's random
    stream in creation order, flows are created in spec order (sender
    then receiver, as in the harness), and same-tick events fire in
    scheduling order. *)

type spec = {
  protocol : Protocol.t;
  config : Proto_config.t;
  messages : int;  (** payloads this flow offers *)
  payload_size : int;
  start_at : int;
      (** tick at which this flow starts offering traffic (0 = from the
          beginning). Late starters model a traffic surge hitting a
          running fabric; they still participate in admission control
          up front, so the memory guarantee covers the surge peak. *)
  stop_at : int option;
      (** tick at which this flow departs, finished or not ([None] = it
          stays until it completes). At [stop_at] the flow's demux slot,
          tx gate and watchdog slot are released and its buffered bytes
          stop counting toward the fabric's memory — the reservation is
          reclaimed, and admission control (which reasons about peak
          {e concurrent} cost over the [start_at, stop_at) intervals)
          can hand it to a later arrival. *)
}

val spec :
  ?config:Proto_config.t ->
  ?messages:int ->
  ?payload_size:int ->
  ?start_at:int ->
  ?stop_at:int ->
  Protocol.t ->
  spec
(** Defaults: [Proto_config.default], 100 messages, 32-byte payloads,
    [start_at = 0], no [stop_at]. *)

type result = {
  ticks : int;  (** simulated time until every flow finished (or the deadline) *)
  completed : bool;
      (** every admitted flow reached a normal end of life: delivered
          and acknowledged everything, or departed on its [stop_at]
          schedule *)
  flows : Flow.result list;
      (** per-flow verdicts for the {e admitted} flows, in spec order.
          The record is the same one {!Harness.run} returns, so
          chaos/safety checks written against harness output apply to
          each entry unchanged. A finished flow's [ticks] (hence
          goodput, latency) covers its own lifetime; a departed flow's
          its tenancy; an unfinished one is measured over the whole
          run. A departed flow's counters freeze at departure — no
          event can reach it afterwards. *)
  aggregate_goodput : float;  (** total delivered payloads per 1000 ticks *)
  fairness : float;  (** Jain's index over per-flow goodput *)
  data_stats : Ba_channel.Link.stats;  (** the shared data link's counters *)
  ack_stats : Ba_channel.Link.stats;  (** the shared ack link's counters *)
  admitted : int;  (** flows admitted (= length of [flows]) *)
  refused : int;  (** flows refused outright by admission control *)
  departed : int;
      (** flows closed by their [stop_at] schedule while still
          mid-transfer (a flow that finished before its [stop_at] is
          counted as completed, not departed) *)
  clamped_window : int option;
      (** the uniform effective-window clamp admission imposed, if any *)
  mem_peak_bytes : int;
      (** peak observed payload bytes buffered across all endpoints
          (sampled; 0 when neither budget nor watchdog was set) *)
  quarantine_events : int;  (** total watchdog quarantine entries *)
  watchdog_resyncs : int;  (** watchdog-initiated resync recoveries *)
  quarantined : int;  (** flows still quarantined when the run ended *)
}

val jain : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1.0 is a perfectly even
    allocation, [1/n] is one flow hoarding everything. 1.0 on degenerate
    input (empty list, or all zeros). *)

val flow_cost : spec -> clamp:int -> int
(** Worst-case payload bytes one flow can pin under a window clamp:
    [2 · min window clamp · payload_size] (retransmit buffer plus
    reassembly window). The admission unit of account. *)

val plan_admission : budget:int -> spec list -> spec list * int * int option
(** [plan_admission ~budget specs] is the graceful-degradation decision
    {!run} applies for [memory_budget]: [(admitted, refused, clamp)] —
    everyone unclamped if peak concurrent cost fits; else everyone under
    the largest uniform window clamp that fits; else clamp 1 and the
    longest spec prefix that fits, the rest refused. Raises
    [Invalid_argument] when not even one clamped flow fits. Exported so
    {!Shard} can make the {e same} decision cell-locally. *)

val run :
  ?seed:int ->
  ?data_loss:float ->
  ?ack_loss:float ->
  ?data_delay:Ba_channel.Dist.t ->
  ?ack_delay:Ba_channel.Dist.t ->
  ?data_bottleneck:int * int ->
  ?ack_bottleneck:int * int ->
  ?data_plan:Ba_channel.Fault_plan.t ->
  ?ack_plan:Ba_channel.Fault_plan.t ->
  ?deadline:int ->
  ?memory_budget:int ->
  ?watchdog:Watchdog.config ->
  ?on_setup:(Ba_sim.Engine.t -> unit) ->
  ?on_flows:(Ba_sim.Engine.t -> Flow.t array -> unit) ->
  spec list ->
  result
(** [run specs] drives every flow to completion (or to the deadline,
    which defaults to an allowance scaled by the {e aggregate} workload).
    Defaults mirror {!Harness.run}: seed 42, no loss, delay
    [Uniform (40, 60)] both ways.

    [memory_budget] (bytes) bounds the worst-case payload memory the
    whole fabric can pin (each flow is charged
    [2 · effective_window · payload_size]: retransmit buffer plus
    reassembly window). The bound is on peak {e concurrent} cost: flows
    whose [start_at, stop_at) intervals never overlap share one
    reservation, so a departure makes room for a later arrival that a
    lifetime-sum accounting would have refused. Degradation is graceful
    and in preference order: admit everyone unclamped if the budget
    allows; else admit everyone under the largest uniform window clamp
    that fits (enforced both by {!Flow.clamp_window} on the sender and
    by rewriting the receiver's [rx_budget]); else clamp to 1 and admit
    the longest spec prefix that fits, refusing the rest. Raises
    [Invalid_argument] when not even one clamped flow fits.

    [data_plan]/[ack_plan] attach a scheduled {!Ba_channel.Fault_plan}
    to the shared links — the fabric-scale analogue of the harness's
    plan arguments, and what lets a chaos storm hit a churning fabric.
    Each plan instantiates against a fresh split of its link's random
    stream, so plan-free runs are byte-identical to before.

    [watchdog] arms a per-flow {!Watchdog}: every [check_interval]
    ticks each started, unfinished flow is checked for delivery
    progress; stalled flows are resynced via crash+restart of their
    sender (the REQ/POS/FIN handshake), and repeat offenders are
    quarantined — their frames are gated off the shared links until
    probation ends, so the other [n−1] flows keep their throughput.

    [on_flows] is called once after every flow is created and before any
    traffic is pumped, with the flows in spec order — the hook for
    scheduling process faults against a {e single} flow (e.g.
    {!Flow.crash_receiver} at a chosen tick) to check that one
    endpoint's crash cannot stall or corrupt the other [n-1] flows
    sharing the links.

    [data_bottleneck]/[ack_bottleneck] are [(service_time, queue_capacity)]
    pairs for the shared links — the contended resource. Without one the
    links have infinite capacity and flows only share the loss/delay
    process.

    Raises [Invalid_argument] on an empty spec list, a negative
    [start_at], or a [stop_at] not after its [start_at]. *)

val churn :
  ?base:int ->
  ?churners:int ->
  ?messages:int ->
  ?payload_size:int ->
  ?config:Proto_config.t ->
  seed:int ->
  Protocol.t ->
  spec list
(** [churn ~seed protocol] is a seed-derived churning flow population:
    [base] (default 2; 0 when the caller brings its own long-lived
    flows) baseline flows spanning the whole horizon —
    the pre/post-churn goodput baseline — plus, per churner (default
    2), a {e departing} flow (arrives within the first 400 ticks,
    departs 2000–3500 ticks later with work left, so its reservation is
    reclaimed live) and a {e returning} flow that arrives 600–1400
    ticks after that departure and runs to completion. The schedule is
    a pure function of [seed]; all flows offer [messages] (default 40)
    payloads of [payload_size] bytes, departing flows 4x that so they
    always outlast their [stop_at]. *)
