(** N-connection simulation fabric: many {!Flow}s — any mix of protocols
    — multiplexed over one shared data link and one shared ack link.

    This is the scaling counterpart of {!Harness}: where the harness
    gives a single connection two private links, the fabric makes every
    connection contend for the same capacity-limited channel (pass
    [data_bottleneck] to model the shared router queue), which is what
    contention, fairness and aggregate-throughput questions need. Wire
    messages travel tagged with their flow id; the tag acts as a
    link-layer address, so injected corruption mangles frames but never
    the demultiplexing.

    A run is a pure function of [seed]: links split the engine's random
    stream in creation order, flows are created in spec order (sender
    then receiver, as in the harness), and same-tick events fire in
    scheduling order. *)

type spec = {
  protocol : Protocol.t;
  config : Proto_config.t;
  messages : int;  (** payloads this flow offers *)
  payload_size : int;
}

val spec :
  ?config:Proto_config.t -> ?messages:int -> ?payload_size:int -> Protocol.t -> spec
(** Defaults: [Proto_config.default], 100 messages, 32-byte payloads. *)

type result = {
  ticks : int;  (** simulated time until every flow finished (or the deadline) *)
  completed : bool;  (** every flow delivered and acknowledged everything *)
  flows : Flow.result list;
      (** per-flow verdicts, in spec order. The record is the same one
          {!Harness.run} returns, so chaos/safety checks written against
          harness output apply to each entry unchanged. A finished flow's
          [ticks] (hence goodput, latency) covers its own lifetime; an
          unfinished one is measured over the whole run. *)
  aggregate_goodput : float;  (** total delivered payloads per 1000 ticks *)
  fairness : float;  (** Jain's index over per-flow goodput *)
  data_stats : Ba_channel.Link.stats;  (** the shared data link's counters *)
  ack_stats : Ba_channel.Link.stats;  (** the shared ack link's counters *)
}

val jain : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1.0 is a perfectly even
    allocation, [1/n] is one flow hoarding everything. 1.0 on degenerate
    input (empty list, or all zeros). *)

val run :
  ?seed:int ->
  ?data_loss:float ->
  ?ack_loss:float ->
  ?data_delay:Ba_channel.Dist.t ->
  ?ack_delay:Ba_channel.Dist.t ->
  ?data_bottleneck:int * int ->
  ?ack_bottleneck:int * int ->
  ?deadline:int ->
  ?on_setup:(Ba_sim.Engine.t -> unit) ->
  ?on_flows:(Ba_sim.Engine.t -> Flow.t array -> unit) ->
  spec list ->
  result
(** [run specs] drives every flow to completion (or to the deadline,
    which defaults to an allowance scaled by the {e aggregate} workload).
    Defaults mirror {!Harness.run}: seed 42, no loss, delay
    [Uniform (40, 60)] both ways.

    [on_flows] is called once after every flow is created and before any
    traffic is pumped, with the flows in spec order — the hook for
    scheduling process faults against a {e single} flow (e.g.
    {!Flow.crash_receiver} at a chosen tick) to check that one
    endpoint's crash cannot stall or corrupt the other [n-1] flows
    sharing the links.

    [data_bottleneck]/[ack_bottleneck] are [(service_time, queue_capacity)]
    pairs for the shared links — the contended resource. Without one the
    links have infinite capacity and flows only share the loss/delay
    process.

    Raises [Invalid_argument] on an empty spec list. *)
