module type S = sig
  val name : string

  type sender
  type receiver

  val create_sender :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.data -> unit) ->
    next_payload:(unit -> string option) ->
    sender

  val create_receiver :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.ack -> unit) ->
    deliver:(string -> unit) ->
    receiver

  val sender_on_ack : sender -> Wire.ack -> unit
  val receiver_on_data : receiver -> Wire.data -> unit
  val sender_pump : sender -> unit
  val sender_done : sender -> bool
  val sender_outstanding : sender -> int
  val sender_retransmissions : sender -> int
  val ack_wire_bytes : int
  val crash_tolerant : bool
  val sender_crash : sender -> unit
  val sender_restart : sender -> unit
  val receiver_crash : receiver -> unit
  val receiver_restart : receiver -> unit
  val sender_resync_rounds : sender -> int
  val receiver_resync_rounds : receiver -> int
  val receiver_position : receiver -> int
  val receiver_restore : receiver -> epoch:int -> pos:int -> unit
  val sender_mem_bytes : sender -> int
  val receiver_mem_bytes : receiver -> int
  val sender_clamp_window : sender -> int -> unit
  val receiver_pressure_dropped : receiver -> int
end

type t = (module S)

module No_crash (N : sig
  val name : string

  type sender
  type receiver
end) =
struct
  let crash_tolerant = false

  let unsupported () =
    invalid_arg (Printf.sprintf "%s: crash-restart lifecycle not supported" N.name)

  let sender_crash (_ : N.sender) = unsupported ()
  let sender_restart (_ : N.sender) = unsupported ()
  let receiver_crash (_ : N.receiver) = unsupported ()
  let receiver_restart (_ : N.receiver) = unsupported ()
  let sender_resync_rounds (_ : N.sender) = 0
  let receiver_resync_rounds (_ : N.receiver) = 0
  let receiver_position (_ : N.receiver) = 0
  let receiver_restore (_ : N.receiver) ~epoch:(_ : int) ~pos:(_ : int) = unsupported ()
end

module No_overload (N : sig
  type sender
  type receiver
end) =
struct
  let sender_mem_bytes (_ : N.sender) = 0
  let receiver_mem_bytes (_ : N.receiver) = 0
  let sender_clamp_window (_ : N.sender) (_ : int) = ()
  let receiver_pressure_dropped (_ : N.receiver) = 0
end
