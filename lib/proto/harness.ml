type result = {
  protocol : string;
  completed : bool;
  ticks : int;
  messages : int;
  delivered : int;
  duplicates : int;
  misordered : int;
  corrupted : int;
  data_sent : int;
  data_dropped : int;
  data_queue_dropped : int;
  data_reordered : int;
  data_duplicated : int;
  data_corrupted : int;
  data_outage_drops : int;
  acks_sent : int;
  acks_dropped : int;
  acks_corrupted : int;
  ack_outage_drops : int;
  retransmissions : int;
  goodput : float;
  latency : Ba_util.Stats.summary option;
  latencies : float list;
  ack_overhead : float;
  efficiency : float;
}

type setup = {
  engine : Ba_sim.Engine.t;
  data_link : Wire.data Ba_channel.Link.t;
  ack_link : Wire.ack Ba_channel.Link.t;
}

let run (module P : Protocol.S) ?(seed = 42) ?(messages = 1000) ?(payload_size = 32)
    ?(config = Proto_config.default) ?(data_loss = 0.) ?(ack_loss = 0.)
    ?(data_delay = Ba_channel.Dist.Uniform (40, 60)) ?(ack_delay = Ba_channel.Dist.Uniform (40, 60))
    ?data_bottleneck ?data_plan ?ack_plan ?deadline ?on_setup () =
  Proto_config.validate config;
  let engine = Ba_sim.Engine.create ~seed () in
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
        (* Generous: every message could need several timeouts even at
           heavy loss before the run is declared stuck. *)
        (max 1 messages * config.Proto_config.rto * 20) + 1_000_000
  in
  let sender = ref None and receiver = ref None in
  let delivered = ref 0
  and duplicates = ref 0
  and misordered = ref 0
  and corrupted = ref 0
  and next_expected = ref 0 in
  let seen = Ba_util.Bitset.create ~initial_capacity:messages () in
  let expected_payloads = Hashtbl.create 97 in
  let pulled_at = Hashtbl.create 97 in
  let latency_stats = Ba_util.Stats.create () in
  let check_done () =
    match !sender with
    | Some s when !delivered >= messages && P.sender_done s -> Ba_sim.Engine.stop engine
    | Some _ | None -> ()
  in
  let deliver payload =
    (match Workload.index_of payload with
    | None -> incr corrupted
    | Some i ->
        let valid =
          match Hashtbl.find_opt expected_payloads i with
          | Some p -> String.equal p payload
          | None -> i >= 0 && i < messages && String.equal (Workload.payload ~seed ~size:payload_size i) payload
        in
        if not valid then incr corrupted
        else if Ba_util.Bitset.mem seen i then incr duplicates
        else begin
          Ba_util.Bitset.set seen i;
          incr delivered;
          (match Hashtbl.find_opt pulled_at i with
          | Some t0 -> Ba_util.Stats.add latency_stats (float_of_int (Ba_sim.Engine.now engine - t0))
          | None -> ());
          if i <> !next_expected then incr misordered;
          next_expected := i + 1
        end);
    check_done ()
  in
  let data_link =
    Ba_channel.Link.create engine ~loss:data_loss ~delay:data_delay ?bottleneck:data_bottleneck
      ~corrupt:Wire.corrupt_data
      ~deliver:(fun d ->
        match !receiver with Some r -> P.receiver_on_data r d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~loss:ack_loss ~delay:ack_delay
      ~corrupt:Wire.corrupt_ack
      ~deliver:(fun a ->
        (match !sender with Some s -> P.sender_on_ack s a | None -> ());
        check_done ())
      ()
  in
  Option.iter (Ba_channel.Link.set_plan data_link) data_plan;
  Option.iter (Ba_channel.Link.set_plan ack_link) ack_plan;
  let next_payload = Workload.supplier ~seed ~size:payload_size ~count:messages in
  let next_payload () =
    match next_payload () with
    | None -> None
    | Some p ->
        (match Workload.index_of p with
        | Some i ->
            Hashtbl.replace expected_payloads i p;
            Hashtbl.replace pulled_at i (Ba_sim.Engine.now engine)
        | None -> ());
        Some p
  in
  let s =
    P.create_sender engine config ~tx:(Ba_channel.Link.send data_link) ~next_payload
  in
  let r =
    P.create_receiver engine config ~tx:(Ba_channel.Link.send ack_link) ~deliver
  in
  sender := Some s;
  receiver := Some r;
  (match on_setup with
  | Some f -> f { engine; data_link; ack_link }
  | None -> ());
  P.sender_pump s;
  Ba_sim.Engine.run ~until:deadline engine;
  let ticks = Ba_sim.Engine.now engine in
  let dstats = Ba_channel.Link.stats data_link and astats = Ba_channel.Link.stats ack_link in
  let completed = !delivered >= messages && P.sender_done s in
  let payload_bytes_delivered = !delivered * payload_size in
  {
    protocol = P.name;
    completed;
    ticks;
    messages;
    delivered = !delivered;
    duplicates = !duplicates;
    misordered = !misordered;
    corrupted = !corrupted;
    data_sent = dstats.Ba_channel.Link.sent;
    data_dropped = dstats.Ba_channel.Link.dropped;
    data_queue_dropped = dstats.Ba_channel.Link.queue_dropped;
    data_reordered = dstats.Ba_channel.Link.reordered;
    data_duplicated = dstats.Ba_channel.Link.duplicated;
    data_corrupted = dstats.Ba_channel.Link.corrupted;
    data_outage_drops = dstats.Ba_channel.Link.outage_drops;
    acks_sent = astats.Ba_channel.Link.sent;
    acks_dropped = astats.Ba_channel.Link.dropped;
    acks_corrupted = astats.Ba_channel.Link.corrupted;
    ack_outage_drops = astats.Ba_channel.Link.outage_drops;
    retransmissions = P.sender_retransmissions s;
    goodput = (if ticks = 0 then 0. else float_of_int !delivered *. 1000. /. float_of_int ticks);
    latency = (if Ba_util.Stats.count latency_stats = 0 then None else Some (Ba_util.Stats.summary latency_stats));
    latencies = Ba_util.Stats.samples latency_stats;
    ack_overhead =
      (if payload_bytes_delivered = 0 then 0.
       else
         float_of_int (astats.Ba_channel.Link.sent * P.ack_wire_bytes)
         /. float_of_int payload_bytes_delivered);
    efficiency =
      (if dstats.Ba_channel.Link.sent = 0 then 0.
       else float_of_int !delivered /. float_of_int dstats.Ba_channel.Link.sent);
  }

let correct r = r.completed && r.duplicates = 0 && r.misordered = 0 && r.corrupted = 0

let pp_result ppf r =
  Format.fprintf ppf
    "%s: %s in %d ticks — %d/%d delivered (dup=%d ooo=%d bad=%d), data sent=%d dropped=%d \
     reord=%d, acks=%d dropped=%d, retx=%d, goodput=%.3f/ktick, ack-ovh=%.4f, eff=%.3f"
    r.protocol
    (if r.completed then "completed" else "STUCK")
    r.ticks r.delivered r.messages r.duplicates r.misordered r.corrupted r.data_sent
    r.data_dropped r.data_reordered r.acks_sent r.acks_dropped r.retransmissions r.goodput
    r.ack_overhead r.efficiency
