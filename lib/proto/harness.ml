type result = Flow.result = {
  protocol : string;
  completed : bool;
  ticks : int;
  messages : int;
  delivered : int;
  duplicates : int;
  misordered : int;
  corrupted : int;
  data_sent : int;
  data_dropped : int;
  data_queue_dropped : int;
  data_reordered : int;
  data_duplicated : int;
  data_corrupted : int;
  data_outage_drops : int;
  acks_sent : int;
  acks_dropped : int;
  acks_corrupted : int;
  ack_outage_drops : int;
  retransmissions : int;
  goodput : float;
  latency : Ba_util.Stats.summary option;
  latencies : float list;
  ack_overhead : float;
  efficiency : float;
  crashes : int;
  restarts : int;
  resync_rounds : int;
  resync_ticks : Ba_util.Stats.summary option;
  retx_bytes : int;
  pressure_drops : int;
}

type setup = {
  engine : Ba_sim.Engine.t;
  data_link : Wire.data Ba_channel.Link.t;
  ack_link : Wire.ack Ba_channel.Link.t;
}

let run (module P : Protocol.S) ?(seed = 42) ?(messages = 1000) ?(payload_size = 32)
    ?(config = Proto_config.default) ?(data_loss = 0.) ?(ack_loss = 0.)
    ?(data_delay = Ba_channel.Dist.Uniform (40, 60)) ?(ack_delay = Ba_channel.Dist.Uniform (40, 60))
    ?data_bottleneck ?data_plan ?ack_plan ?(crash_plan = Crash_plan.none) ?deadline ?on_setup () =
  Proto_config.validate config;
  Crash_plan.validate crash_plan;
  let engine = Ba_sim.Engine.create ~seed () in
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
        (* Generous: every message could need several timeouts even at
           heavy loss before the run is declared stuck. *)
        (max 1 messages * config.Proto_config.rto * 20) + 1_000_000
  in
  let flow = ref None in
  let data_link =
    Ba_channel.Link.create engine ~loss:data_loss ~delay:data_delay ?bottleneck:data_bottleneck
      ~corrupt:Wire.corrupt_data ~release:Wire.release_data
      ~deliver:(fun d -> match !flow with Some f -> Flow.on_data f d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~loss:ack_loss ~delay:ack_delay
      ~corrupt:Wire.corrupt_ack ~release:Wire.release_ack
      ~deliver:(fun a -> match !flow with Some f -> Flow.on_ack f a | None -> ())
      ()
  in
  Option.iter (Ba_channel.Link.set_plan data_link) data_plan;
  Option.iter (Ba_channel.Link.set_plan ack_link) ack_plan;
  let f =
    Flow.create engine
      (module P)
      ~seed ~messages ~payload_size ~config
      ~data_tx:(Ba_channel.Link.send data_link)
      ~ack_tx:(Ba_channel.Link.send ack_link)
      ~on_complete:(fun () -> Ba_sim.Engine.stop engine)
      ()
  in
  flow := Some f;
  (* Process faults: each event schedules a crash and, [down_for] ticks
     later, the matching restart. *)
  List.iter
    (fun (e : Crash_plan.event) ->
      let crash, restart =
        match e.Crash_plan.endpoint with
        | Crash_plan.Sender_end -> (Flow.crash_sender, Flow.restart_sender)
        | Crash_plan.Receiver_end -> (Flow.crash_receiver, Flow.restart_receiver)
      in
      ignore (Ba_sim.Engine.schedule_at engine ~at:e.Crash_plan.at (fun () -> crash f));
      ignore
        (Ba_sim.Engine.schedule_at engine ~at:(e.Crash_plan.at + e.Crash_plan.down_for)
           (fun () -> restart f)))
    crash_plan;
  (match on_setup with
  | Some g -> g { engine; data_link; ack_link }
  | None -> ());
  Flow.pump f;
  Ba_sim.Engine.run ~until:deadline engine;
  Flow.result f
    ~data_stats:(Ba_channel.Link.stats data_link)
    ~ack_stats:(Ba_channel.Link.stats ack_link)
    ~ticks:(Ba_sim.Engine.now engine) ()

let correct r = r.completed && r.duplicates = 0 && r.misordered = 0 && r.corrupted = 0

let pp_result ppf r =
  Format.fprintf ppf
    "%s: %s in %d ticks — %d/%d delivered (dup=%d ooo=%d bad=%d), data sent=%d dropped=%d \
     reord=%d, acks=%d dropped=%d, retx=%d, goodput=%.3f/ktick, ack-ovh=%.4f, eff=%.3f"
    r.protocol
    (if r.completed then "completed" else "STUCK")
    r.ticks r.delivered r.messages r.duplicates r.misordered r.corrupted r.data_sent
    r.data_dropped r.data_reordered r.acks_sent r.acks_dropped r.retransmissions r.goodput
    r.ack_overhead r.efficiency;
  (* Crash-free runs keep the historical (cram-pinned) one-line format;
     recovery metrics appear only when the plan actually faulted a
     process. *)
  if r.crashes > 0 then
    Format.fprintf ppf ", crashes=%d restarts=%d resync-rounds=%d resync-ticks=%s retx-bytes=%d"
      r.crashes r.restarts r.resync_rounds
      (match r.resync_ticks with
      | None -> "-"
      | Some s -> Printf.sprintf "%.0f/%.0f" s.Ba_util.Stats.mean s.Ba_util.Stats.max)
      r.retx_bytes;
  (* Likewise budget-free runs: the counter only prints when a receiver
     budget actually refused frames. *)
  if r.pressure_drops > 0 then Format.fprintf ppf ", pressure-drops=%d" r.pressure_drops
