(* Frames carry an incarnation [epoch] so a restarted endpoint can
   reject traffic from its peer's (or its own) previous life, and a
   [kind] discriminator for the three resync-handshake messages
   (REQ/POS/FIN) that re-establish a common position after a crash.
   Epoch 0 with kind [Msg]/[Ack] is exactly the pre-crash wire format.

   Fields are mutable solely so frames can be pooled: [make_data_e] and
   [make_ack_e] draw records from a domain-local free-list that
   [release_data]/[release_ack] refill, making the steady-state data
   path allocation-free. Pooling is value-transparent — a pooled frame
   is indistinguishable from a fresh one — and opt-in: a frame nobody
   releases is simply collected by the GC as before. *)

type data_kind = Msg | Sync_req | Sync_fin

type data = {
  mutable seq : int;
  mutable payload : string;
  mutable epoch : int;
  mutable dkind : data_kind;
  mutable check : int;
}

type ack_kind = Ack | Sync_pos

type ack = {
  mutable lo : int;
  mutable hi : int;
  mutable epoch : int;
  mutable akind : ack_kind;
  mutable check : int;
}

(* FNV-style multiply-xor fold, one multiply per 63-bit word instead of
   the textbook one-per-byte: headers fold as whole ints and the payload
   in 7-byte chunks (7 x 8 = 56 bits, so a chunk never touches the sign
   bit). The checksum step [h <- (h lxor w) * prime land max_int] is a
   bijection of [h] for fixed [w] (the prime is odd, so multiplying by
   it is invertible mod 2^63), which makes detection provable rather
   than probabilistic: any change confined to one chunk — in particular
   every byte flip and header perturbation [corrupt_data]/[corrupt_ack]
   inject — changes that step's output, and every later step propagates
   the difference. The fold is a tail-recursive loop over the string —
   no ref cell, no closure, no boxing — so checksumming allocates
   nothing, and at one multiply per 7 payload bytes it is no longer the
   dominant per-frame cost. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325

let fnv_word h w = (h lxor w) * fnv_prime land max_int

let fnv_int h v = fnv_word h (v land max_int)

let data_kind_tag = function Msg -> 0 | Sync_req -> 1 | Sync_fin -> 2
let ack_kind_tag = function Ack -> 0 | Sync_pos -> 1

let byte s i = Char.code (String.unsafe_get s i)

(* Fold [s.[i .. n-1]] in 7-byte little-endian chunks; the final short
   chunk folds however many bytes remain (its length is implied by the
   position, which the header fold has already bound). *)
let rec fnv_bytes h s i n =
  if i + 7 <= n then begin
    let w =
      byte s i
      lor (byte s (i + 1) lsl 8)
      lor (byte s (i + 2) lsl 16)
      lor (byte s (i + 3) lsl 24)
      lor (byte s (i + 4) lsl 32)
      lor (byte s (i + 5) lsl 40)
      lor (byte s (i + 6) lsl 48)
    in
    fnv_bytes (fnv_word h w) s (i + 7) n
  end
  else if i >= n then h
  else fnv_word h (fnv_tail 0 0 s i n)

and fnv_tail w shift s k n =
  if k >= n then w else fnv_tail (w lor (byte s k lsl shift)) (shift + 8) s (k + 1) n

let data_checksum ~seq ~payload ~epoch ~dkind =
  let h = fnv_int fnv_offset seq in
  (* Epoch-0 [Msg] frames hash exactly as before the crash-tolerance
     layer existed: folding two extra zero ints would be harmless but
     this keeps the whole zero-epoch wire image bit-identical. *)
  let h =
    match dkind with
    | Msg when epoch = 0 -> h
    | _ -> fnv_int (fnv_int h epoch) (data_kind_tag dkind)
  in
  fnv_bytes h payload 0 (String.length payload)

let ack_checksum ~lo ~hi ~epoch ~akind =
  let h = fnv_int (fnv_int fnv_offset lo) hi in
  match akind with
  | Ack when epoch = 0 -> h
  | _ -> fnv_int (fnv_int h epoch) (ack_kind_tag akind)

(* ---- frame pool ----

   One pool per domain: parallel campaign runners each get their own
   free-lists, so pooling needs no synchronization and frames never
   migrate between domains (a run executes entirely inside one). *)

let pool_cap = 256

type pool = {
  mutable dfree : data array;
  mutable dlen : int;
  mutable afree : ack array;
  mutable alen : int;
}

let dummy_data = { seq = 0; payload = ""; epoch = 0; dkind = Msg; check = 0 }
let dummy_ack = { lo = 0; hi = 0; epoch = 0; akind = Ack; check = 0 }

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        dfree = Array.make pool_cap dummy_data;
        dlen = 0;
        afree = Array.make pool_cap dummy_ack;
        alen = 0;
      })

let make_data_e ~epoch ~seq ~payload =
  let check = data_checksum ~seq ~payload ~epoch ~dkind:Msg in
  let p = Domain.DLS.get pool_key in
  if p.dlen > 0 then begin
    p.dlen <- p.dlen - 1;
    let d = p.dfree.(p.dlen) in
    p.dfree.(p.dlen) <- dummy_data;
    d.seq <- seq;
    d.payload <- payload;
    d.epoch <- epoch;
    d.dkind <- Msg;
    d.check <- check;
    d
  end
  else { seq; payload; epoch; dkind = Msg; check }

let make_ack_e ~epoch ~lo ~hi =
  let check = ack_checksum ~lo ~hi ~epoch ~akind:Ack in
  let p = Domain.DLS.get pool_key in
  if p.alen > 0 then begin
    p.alen <- p.alen - 1;
    let a = p.afree.(p.alen) in
    p.afree.(p.alen) <- dummy_ack;
    a.lo <- lo;
    a.hi <- hi;
    a.epoch <- epoch;
    a.akind <- Ack;
    a.check <- check;
    a
  end
  else { lo; hi; epoch; akind = Ack; check }

let release_data d =
  if d != dummy_data then begin
    let p = Domain.DLS.get pool_key in
    if p.dlen < pool_cap then begin
      d.payload <- "";
      p.dfree.(p.dlen) <- d;
      p.dlen <- p.dlen + 1
    end
  end

let release_ack a =
  if a != dummy_ack then begin
    let p = Domain.DLS.get pool_key in
    if p.alen < pool_cap then begin
      p.afree.(p.alen) <- a;
      p.alen <- p.alen + 1
    end
  end

(* Epoch-0 constructors: the pre-crash wire format, used by every
   protocol that never restarts. *)
let make_data ~seq ~payload = make_data_e ~epoch:0 ~seq ~payload
let make_ack ~lo ~hi = make_ack_e ~epoch:0 ~lo ~hi

(* Handshake frames. [Sync_pos] carries the receiver's stable delivered
   count in [lo] (and mirrors it in [hi]); it is an absolute position,
   deliberately exempt from the wire modulus — resync is rare, so the
   paper's tight sequence-number economy does not apply to it. The
   handshake constructors are rare too, so they skip the pool. *)
let make_sync_req ~epoch =
  { seq = 0; payload = ""; epoch; dkind = Sync_req;
    check = data_checksum ~seq:0 ~payload:"" ~epoch ~dkind:Sync_req }

let make_sync_fin ~epoch =
  { seq = 0; payload = ""; epoch; dkind = Sync_fin;
    check = data_checksum ~seq:0 ~payload:"" ~epoch ~dkind:Sync_fin }

let make_sync_pos ~epoch ~pos =
  { lo = pos; hi = pos; epoch; akind = Sync_pos;
    check = ack_checksum ~lo:pos ~hi:pos ~epoch ~akind:Sync_pos }

let data_ok (d : data) =
  d.check = data_checksum ~seq:d.seq ~payload:d.payload ~epoch:d.epoch ~dkind:d.dkind

let ack_ok (a : ack) =
  a.check = ack_checksum ~lo:a.lo ~hi:a.hi ~epoch:a.epoch ~akind:a.akind

(* Deterministic mangling for the link's [Corrupt] verdict: damage the
   message without touching the stored checksum, so validation fails.
   An empty payload leaves only the header to flip. The payload flip is
   a single [String.mapi] pass (one fresh string), not a
   bytes-of-string/bytes-to-string double copy. *)
let corrupt_data (d : data) =
  if String.length d.payload = 0 then { d with seq = d.seq lxor 1 }
  else
    { d with
      payload =
        String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 0x20) else c) d.payload
    }

let corrupt_ack (a : ack) = { a with hi = a.hi lxor 1 }

let data_header_bytes = 8
let ack_bytes_block = 8
let ack_bytes_single = 4

let data_bytes d = data_header_bytes + String.length d.payload

let pp_data ppf d =
  match d.dkind with
  | Msg ->
      if d.epoch = 0 then Format.fprintf ppf "data(seq=%d,%dB)" d.seq (String.length d.payload)
      else Format.fprintf ppf "data(seq=%d,%dB,e=%d)" d.seq (String.length d.payload) d.epoch
  | Sync_req -> Format.fprintf ppf "sync-req(e=%d)" d.epoch
  | Sync_fin -> Format.fprintf ppf "sync-fin(e=%d)" d.epoch

let pp_ack ppf a =
  match a.akind with
  | Ack ->
      if a.epoch = 0 then Format.fprintf ppf "ack(%d,%d)" a.lo a.hi
      else Format.fprintf ppf "ack(%d,%d,e=%d)" a.lo a.hi a.epoch
  | Sync_pos -> Format.fprintf ppf "sync-pos(e=%d,pos=%d)" a.epoch a.lo
