type data = { seq : int; payload : string; check : int }

type ack = { lo : int; hi : int; check : int }

(* FNV-1a over the payload bytes, folded with the header numbers (offset
   basis truncated to OCaml's 63-bit int). The simulation never needs
   cryptographic strength — only that the single byte flips and header
   perturbations [corrupt_data]/[corrupt_ack] inject are always caught. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325

let fnv_byte h b = (h lxor b) * fnv_prime land max_int

let fnv_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h ((v lsr (shift * 8)) land 0xff)
  done;
  !h

let data_checksum ~seq ~payload =
  let h = ref (fnv_int fnv_offset seq) in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) payload;
  !h

let ack_checksum ~lo ~hi = fnv_int (fnv_int fnv_offset lo) hi

let make_data ~seq ~payload = { seq; payload; check = data_checksum ~seq ~payload }
let make_ack ~lo ~hi = { lo; hi; check = ack_checksum ~lo ~hi }

let data_ok (d : data) = d.check = data_checksum ~seq:d.seq ~payload:d.payload
let ack_ok (a : ack) = a.check = ack_checksum ~lo:a.lo ~hi:a.hi

(* Deterministic mangling for the link's [Corrupt] verdict: damage the
   message without touching the stored checksum, so validation fails.
   An empty payload leaves only the header to flip. *)
let corrupt_data (d : data) =
  if String.length d.payload = 0 then { d with seq = d.seq lxor 1 }
  else begin
    let b = Bytes.of_string d.payload in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
    { d with payload = Bytes.to_string b }
  end

let corrupt_ack (a : ack) = { a with hi = a.hi lxor 1 }

let data_header_bytes = 8
let ack_bytes_block = 8
let ack_bytes_single = 4

let data_bytes d = data_header_bytes + String.length d.payload

let pp_data ppf d = Format.fprintf ppf "data(seq=%d,%dB)" d.seq (String.length d.payload)
let pp_ack ppf a = Format.fprintf ppf "ack(%d,%d)" a.lo a.hi
