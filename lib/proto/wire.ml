(* Frames carry an incarnation [epoch] so a restarted endpoint can
   reject traffic from its peer's (or its own) previous life, and a
   [kind] discriminator for the three resync-handshake messages
   (REQ/POS/FIN) that re-establish a common position after a crash.
   Epoch 0 with kind [Msg]/[Ack] is exactly the pre-crash wire format. *)

type data_kind = Msg | Sync_req | Sync_fin

type data = { seq : int; payload : string; epoch : int; dkind : data_kind; check : int }

type ack_kind = Ack | Sync_pos

type ack = { lo : int; hi : int; epoch : int; akind : ack_kind; check : int }

(* FNV-1a over the payload bytes, folded with the header numbers (offset
   basis truncated to OCaml's 63-bit int). The simulation never needs
   cryptographic strength — only that the single byte flips and header
   perturbations [corrupt_data]/[corrupt_ack] inject are always caught. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325

let fnv_byte h b = (h lxor b) * fnv_prime land max_int

let fnv_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h ((v lsr (shift * 8)) land 0xff)
  done;
  !h

let data_kind_tag = function Msg -> 0 | Sync_req -> 1 | Sync_fin -> 2
let ack_kind_tag = function Ack -> 0 | Sync_pos -> 1

let data_checksum ~seq ~payload ~epoch ~dkind =
  let h = ref (fnv_int fnv_offset seq) in
  (* Epoch-0 [Msg] frames hash exactly as before the crash-tolerance
     layer existed: folding two extra zero ints would be harmless but
     this keeps the whole zero-epoch wire image bit-identical. *)
  if epoch <> 0 || dkind <> Msg then
    h := fnv_int (fnv_int !h epoch) (data_kind_tag dkind);
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) payload;
  !h

let ack_checksum ~lo ~hi ~epoch ~akind =
  let h = fnv_int (fnv_int fnv_offset lo) hi in
  if epoch <> 0 || akind <> Ack then fnv_int (fnv_int h epoch) (ack_kind_tag akind) else h

let make_data_e ~epoch ~seq ~payload =
  { seq; payload; epoch; dkind = Msg; check = data_checksum ~seq ~payload ~epoch ~dkind:Msg }

let make_ack_e ~epoch ~lo ~hi =
  { lo; hi; epoch; akind = Ack; check = ack_checksum ~lo ~hi ~epoch ~akind:Ack }

(* Epoch-0 constructors: the pre-crash wire format, used by every
   protocol that never restarts. *)
let make_data ~seq ~payload = make_data_e ~epoch:0 ~seq ~payload
let make_ack ~lo ~hi = make_ack_e ~epoch:0 ~lo ~hi

(* Handshake frames. [Sync_pos] carries the receiver's stable delivered
   count in [lo] (and mirrors it in [hi]); it is an absolute position,
   deliberately exempt from the wire modulus — resync is rare, so the
   paper's tight sequence-number economy does not apply to it. *)
let make_sync_req ~epoch =
  { seq = 0; payload = ""; epoch; dkind = Sync_req;
    check = data_checksum ~seq:0 ~payload:"" ~epoch ~dkind:Sync_req }

let make_sync_fin ~epoch =
  { seq = 0; payload = ""; epoch; dkind = Sync_fin;
    check = data_checksum ~seq:0 ~payload:"" ~epoch ~dkind:Sync_fin }

let make_sync_pos ~epoch ~pos =
  { lo = pos; hi = pos; epoch; akind = Sync_pos;
    check = ack_checksum ~lo:pos ~hi:pos ~epoch ~akind:Sync_pos }

let data_ok (d : data) =
  d.check = data_checksum ~seq:d.seq ~payload:d.payload ~epoch:d.epoch ~dkind:d.dkind

let ack_ok (a : ack) =
  a.check = ack_checksum ~lo:a.lo ~hi:a.hi ~epoch:a.epoch ~akind:a.akind

(* Deterministic mangling for the link's [Corrupt] verdict: damage the
   message without touching the stored checksum, so validation fails.
   An empty payload leaves only the header to flip. *)
let corrupt_data (d : data) =
  if String.length d.payload = 0 then { d with seq = d.seq lxor 1 }
  else begin
    let b = Bytes.of_string d.payload in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
    { d with payload = Bytes.to_string b }
  end

let corrupt_ack (a : ack) = { a with hi = a.hi lxor 1 }

let data_header_bytes = 8
let ack_bytes_block = 8
let ack_bytes_single = 4

let data_bytes d = data_header_bytes + String.length d.payload

let pp_data ppf d =
  match d.dkind with
  | Msg ->
      if d.epoch = 0 then Format.fprintf ppf "data(seq=%d,%dB)" d.seq (String.length d.payload)
      else Format.fprintf ppf "data(seq=%d,%dB,e=%d)" d.seq (String.length d.payload) d.epoch
  | Sync_req -> Format.fprintf ppf "sync-req(e=%d)" d.epoch
  | Sync_fin -> Format.fprintf ppf "sync-fin(e=%d)" d.epoch

let pp_ack ppf a =
  match a.akind with
  | Ack ->
      if a.epoch = 0 then Format.fprintf ppf "ack(%d,%d)" a.lo a.hi
      else Format.fprintf ppf "ack(%d,%d,e=%d)" a.lo a.hi a.epoch
  | Sync_pos -> Format.fprintf ppf "sync-pos(e=%d,pos=%d)" a.epoch a.lo
