(** The interface every simulated protocol implements.

    A protocol is a sender half and a receiver half, each driven entirely
    by callbacks: the harness wires [tx] into a lossy {!Ba_channel.Link}
    and feeds arriving messages back into [sender_on_ack] /
    [receiver_on_data]. The sender pulls application payloads through the
    [next_payload] supplier whenever its window has room, so flow control
    stays inside the protocol where it belongs. *)

module type S = sig
  val name : string

  type sender
  type receiver

  val create_sender :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.data -> unit) ->
    next_payload:(unit -> string option) ->
    sender
  (** [next_payload] returns [None] when the application has nothing more
      to send; the sender calls it again after acknowledgments open the
      window. *)

  val create_receiver :
    Ba_sim.Engine.t ->
    Proto_config.t ->
    tx:(Wire.ack -> unit) ->
    deliver:(string -> unit) ->
    receiver
  (** [deliver] receives payloads in application order, exactly once each
      (for a correct protocol — the harness counts violations). *)

  val sender_on_ack : sender -> Wire.ack -> unit
  val receiver_on_data : receiver -> Wire.data -> unit

  val sender_pump : sender -> unit
  (** Ask the sender to (re)fill its window from [next_payload]; called
      once by the harness at start and harmless at any other time. *)

  val sender_done : sender -> bool
  (** Every payload ever accepted from [next_payload] is acknowledged and
      the supplier is exhausted. *)

  val sender_outstanding : sender -> int
  val sender_retransmissions : sender -> int

  val ack_wire_bytes : int
  (** Size of this protocol's acknowledgment on the wire. *)

  (** {2 Crash–restart lifecycle}

      Protocols with [crash_tolerant = true] support faulting the
      processes, not just the channel: [*_crash] wipes an endpoint's
      volatile state and makes it deaf until [*_restart]. What restart
      means is the protocol's business (the block-ack endpoints bump an
      incarnation epoch and run a resync handshake when the config's
      [resync_epochs] is set, or come back zeroed as a negative control
      when it is not). Protocols with [crash_tolerant = false] raise
      [Invalid_argument] from all four lifecycle calls; campaign runners
      must skip the crash fault class for them. *)

  val crash_tolerant : bool

  val sender_crash : sender -> unit
  val sender_restart : sender -> unit
  val receiver_crash : receiver -> unit
  val receiver_restart : receiver -> unit

  val sender_resync_rounds : sender -> int
  (** Handshake frames this sender sent while resynchronising (0 for
      protocols without a handshake). *)

  val receiver_resync_rounds : receiver -> int

  val receiver_position : receiver -> int
  (** The receiver's stable delivered count — the value its resync POS
      announces, and what a transport backend persists so a killed
      process can restore it. 0 for protocols without a position
      authority. *)

  val receiver_restore : receiver -> epoch:int -> pos:int -> unit
  (** Rebuild a freshly created receiver as the next incarnation of a
      dead process: adopt the durable delivered count [pos] and the new
      incarnation [epoch] (persisted + 1), then run the POS handshake —
      the cross-process analogue of [receiver_crash]+[receiver_restart].
      Raises [Invalid_argument] when [crash_tolerant] is false. *)

  (** {2 Overload accounting and backpressure}

      Hooks for the fabric's memory accounting and graceful degradation.
      [*_mem_bytes] report the payload bytes an endpoint currently
      buffers (retransmit queue / reassembly window); protocols that do
      not track memory report 0 and are simply invisible to the
      accountant. [sender_clamp_window] caps a sender's effective window
      (the backpressure path; a no-op where unsupported).
      [receiver_pressure_dropped] counts in-window frames refused for
      buffer-full under an [rx_budget]. *)

  val sender_mem_bytes : sender -> int
  val receiver_mem_bytes : receiver -> int
  val sender_clamp_window : sender -> int -> unit
  val receiver_pressure_dropped : receiver -> int
end

type t = (module S)

(** Drop-in stubs for protocols that predate (or cannot support) the
    crash lifecycle: [crash_tolerant = false], lifecycle calls raise. *)
module No_crash (N : sig
  val name : string

  type sender
  type receiver
end) : sig
  val crash_tolerant : bool
  val sender_crash : N.sender -> unit
  val sender_restart : N.sender -> unit
  val receiver_crash : N.receiver -> unit
  val receiver_restart : N.receiver -> unit
  val sender_resync_rounds : N.sender -> int
  val receiver_resync_rounds : N.receiver -> int
  val receiver_position : N.receiver -> int
  val receiver_restore : N.receiver -> epoch:int -> pos:int -> unit
end

(** Drop-in stubs for protocols without memory accounting or a
    backpressure path: zero bytes reported, clamp is a no-op. *)
module No_overload (N : sig
  type sender
  type receiver
end) : sig
  val sender_mem_bytes : N.sender -> int
  val receiver_mem_bytes : N.receiver -> int
  val sender_clamp_window : N.sender -> int -> unit
  val receiver_pressure_dropped : N.receiver -> int
end
