(* One connection's worth of wiring: a protocol's sender/receiver pair,
   its workload, and the bookkeeping that turns deliveries into a
   verdict. The harness runs exactly one flow over private links; the
   fabric multiplexes many flows over shared ones. *)

type result = {
  protocol : string;
  completed : bool;
  ticks : int;
  messages : int;
  delivered : int;
  duplicates : int;
  misordered : int;
  corrupted : int;
  data_sent : int;
  data_dropped : int;
  data_queue_dropped : int;
  data_reordered : int;
  data_duplicated : int;
  data_corrupted : int;
  data_outage_drops : int;
  acks_sent : int;
  acks_dropped : int;
  acks_corrupted : int;
  ack_outage_drops : int;
  retransmissions : int;
  goodput : float;
  latency : Ba_util.Stats.summary option;
  latencies : float list;
  ack_overhead : float;
  efficiency : float;
  crashes : int;
  restarts : int;
  resync_rounds : int;
  resync_ticks : Ba_util.Stats.summary option;
  retx_bytes : int;
  pressure_drops : int;
}

type t = {
  id : int;
  protocol : string;
  messages : int;
  payload_size : int;
  ack_wire_bytes : int;
  engine : Ba_sim.Engine.t;
  feed_data : Wire.data -> unit;
  feed_ack : Wire.ack -> unit;
  do_pump : unit -> unit;
  sender_done : unit -> bool;
  sender_retransmissions : unit -> int;
  sender_outstanding : unit -> int;
  sender_mem : unit -> int;
  receiver_mem : unit -> int;
  do_clamp : int -> unit;
  pressure : unit -> int;
  do_sender_crash : unit -> unit;
  do_sender_restart : unit -> unit;
  do_receiver_crash : unit -> unit;
  do_receiver_restart : unit -> unit;
  crash_supported : bool;
  resync_rounds : unit -> int;
  crashes : int ref;
  restarts : int ref;
  resync_ticks : Ba_util.Stats.t;
  pending_restarts : int list ref;
  retx_bytes : int ref;
  delivered : int ref;
  duplicates : int ref;
  misordered : int ref;
  corrupted : int ref;
  data_sent : int ref;
  acks_sent : int ref;
  latency_stats : Ba_util.Stats.t;
  completed_at : int option ref;
}

let create engine (module P : Protocol.S) ?(id = 0) ?workload_seed ~seed ~messages
    ~payload_size ~config ~data_tx ~ack_tx ?on_complete () =
  Proto_config.validate config;
  let workload_seed = Option.value ~default:seed workload_seed in
  let sender = ref None and receiver = ref None in
  let delivered = ref 0
  and duplicates = ref 0
  and misordered = ref 0
  and corrupted = ref 0
  and data_sent = ref 0
  and acks_sent = ref 0
  and next_expected = ref 0
  and completed_at = ref None
  and crashes = ref 0
  and restarts = ref 0
  and pending_restarts = ref []
  and retx_bytes = ref 0 in
  let resync_ticks = Ba_util.Stats.create () in
  (* Ticks-to-resync: every restart opens a recovery interval that the
     next successful in-order delivery (or completion) closes. *)
  let resolve_restarts () =
    let now = Ba_sim.Engine.now engine in
    List.iter
      (fun t0 -> Ba_util.Stats.add resync_ticks (float_of_int (now - t0)))
      !pending_restarts;
    pending_restarts := []
  in
  let seen = Ba_util.Bitset.create ~initial_capacity:messages () in
  (* Indexed by message number — the workload's index space is exactly
     [0, messages), so flat arrays replace the old Hashtbls and the
     per-delivery validation path stops allocating. *)
  let expected_payloads = Array.make (max 1 messages) "" in
  let pulled_at = Array.make (max 1 messages) (-1) in
  let latency_stats = Ba_util.Stats.create () in
  let check_done () =
    match !sender with
    | Some s when !delivered >= messages && P.sender_done s && !completed_at = None ->
        completed_at := Some (Ba_sim.Engine.now engine);
        resolve_restarts ();
        (match on_complete with Some f -> f () | None -> ())
    | Some _ | None -> ()
  in
  let deliver payload =
    (match Workload.index_of payload with
    | None -> incr corrupted
    | Some i when i < 0 || i >= messages -> incr corrupted
    | Some i ->
        let valid =
          let exp = expected_payloads.(i) in
          if String.length exp > 0 then String.equal exp payload
          else String.equal (Workload.payload ~seed:workload_seed ~size:payload_size i) payload
        in
        if not valid then incr corrupted
        else if Ba_util.Bitset.mem seen i then incr duplicates
        else begin
          Ba_util.Bitset.set seen i;
          incr delivered;
          resolve_restarts ();
          let t0 = pulled_at.(i) in
          if t0 >= 0 then
            Ba_util.Stats.add latency_stats (float_of_int (Ba_sim.Engine.now engine - t0));
          if i <> !next_expected then incr misordered;
          next_expected := i + 1
        end);
    check_done ()
  in
  let next_payload = Workload.supplier ~seed:workload_seed ~size:payload_size ~count:messages in
  let next_payload () =
    match next_payload () with
    | None -> None
    | Some p ->
        (match Workload.index_of p with
        | Some i when i >= 0 && i < messages ->
            expected_payloads.(i) <- p;
            pulled_at.(i) <- Ba_sim.Engine.now engine
        | Some _ | None -> ());
        Some p
  in
  (* Index-keyed retransmission bytes: workload payloads are unique per
     message, so a second transmission of the same index is a
     retransmitted copy. Handshake frames carry no payload and are
     excluded, as are payloads outside the workload's index space. *)
  let tx_seen = Array.make (max 1 messages) false in
  let s =
    P.create_sender engine config
      ~tx:(fun d ->
        incr data_sent;
        (match d.Wire.dkind with
        | Wire.Msg -> (
            match Workload.index_of d.Wire.payload with
            | Some i when i >= 0 && i < messages ->
                if tx_seen.(i) then retx_bytes := !retx_bytes + Wire.data_bytes d
                else tx_seen.(i) <- true
            | Some _ | None -> ())
        | Wire.Sync_req | Wire.Sync_fin -> ());
        data_tx d)
      ~next_payload
  in
  let r =
    P.create_receiver engine config
      ~tx:(fun a ->
        incr acks_sent;
        ack_tx a)
      ~deliver
  in
  sender := Some s;
  receiver := Some r;
  {
    id;
    protocol = P.name;
    messages;
    payload_size;
    ack_wire_bytes = P.ack_wire_bytes;
    engine;
    feed_data = (fun d -> P.receiver_on_data r d);
    feed_ack =
      (fun a ->
        P.sender_on_ack s a;
        check_done ());
    do_pump = (fun () -> P.sender_pump s);
    do_sender_crash = (fun () -> incr crashes; P.sender_crash s);
    do_sender_restart =
      (fun () ->
        incr restarts;
        pending_restarts := Ba_sim.Engine.now engine :: !pending_restarts;
        P.sender_restart s;
        check_done ());
    do_receiver_crash = (fun () -> incr crashes; P.receiver_crash r);
    do_receiver_restart =
      (fun () ->
        incr restarts;
        pending_restarts := Ba_sim.Engine.now engine :: !pending_restarts;
        P.receiver_restart r);
    crash_supported = P.crash_tolerant;
    resync_rounds = (fun () -> P.sender_resync_rounds s + P.receiver_resync_rounds r);
    crashes;
    restarts;
    resync_ticks;
    pending_restarts;
    retx_bytes;
    sender_done = (fun () -> P.sender_done s);
    sender_retransmissions = (fun () -> P.sender_retransmissions s);
    sender_outstanding = (fun () -> P.sender_outstanding s);
    sender_mem = (fun () -> P.sender_mem_bytes s);
    receiver_mem = (fun () -> P.receiver_mem_bytes r);
    do_clamp = (fun n -> P.sender_clamp_window s n);
    pressure = (fun () -> P.receiver_pressure_dropped r);
    delivered;
    duplicates;
    misordered;
    corrupted;
    data_sent;
    acks_sent;
    latency_stats;
    completed_at;
  }

let on_data t d = t.feed_data d
let on_ack t a = t.feed_ack a
let pump t = t.do_pump ()
let id t = t.id
let protocol_name t = t.protocol
let messages t = t.messages
let delivered t = !(t.delivered)
let retransmissions t = t.sender_retransmissions ()
let outstanding t = t.sender_outstanding ()
let is_complete t = !(t.delivered) >= t.messages && t.sender_done ()
let completed_at t = !(t.completed_at)
let crash_tolerant t = t.crash_supported
let mem_bytes t = t.sender_mem () + t.receiver_mem ()
let clamp_window t n = t.do_clamp n
let pressure_drops t = t.pressure ()
let crash_sender t = t.do_sender_crash ()
let restart_sender t = t.do_sender_restart ()
let crash_receiver t = t.do_receiver_crash ()
let restart_receiver t = t.do_receiver_restart ()

let zero_stats =
  {
    Ba_channel.Link.sent = 0;
    delivered = 0;
    dropped = 0;
    queue_dropped = 0;
    reordered = 0;
    duplicated = 0;
    corrupted = 0;
    outage_drops = 0;
  }

let result t ?data_stats ?ack_stats ~ticks () =
  (* Without injected link stats (shared links can't attribute drops to
     one flow) fall back to the flow's own send counters, which equal
     what a private link would have counted as [sent]. *)
  let dstats =
    match data_stats with
    | Some s -> s
    | None -> { zero_stats with Ba_channel.Link.sent = !(t.data_sent) }
  in
  let astats =
    match ack_stats with
    | Some s -> s
    | None -> { zero_stats with Ba_channel.Link.sent = !(t.acks_sent) }
  in
  let delivered = !(t.delivered) in
  let payload_bytes_delivered = delivered * t.payload_size in
  (* A restart no delivery ever resolved (a stuck run, or a crash with
     nothing left to deliver) is charged up to the horizon — honest, if
     pessimistic. *)
  List.iter
    (fun t0 -> Ba_util.Stats.add t.resync_ticks (float_of_int (ticks - t0)))
    !(t.pending_restarts);
  t.pending_restarts := [];
  {
    protocol = t.protocol;
    completed = is_complete t;
    ticks;
    messages = t.messages;
    delivered;
    duplicates = !(t.duplicates);
    misordered = !(t.misordered);
    corrupted = !(t.corrupted);
    data_sent = dstats.Ba_channel.Link.sent;
    data_dropped = dstats.Ba_channel.Link.dropped;
    data_queue_dropped = dstats.Ba_channel.Link.queue_dropped;
    data_reordered = dstats.Ba_channel.Link.reordered;
    data_duplicated = dstats.Ba_channel.Link.duplicated;
    data_corrupted = dstats.Ba_channel.Link.corrupted;
    data_outage_drops = dstats.Ba_channel.Link.outage_drops;
    acks_sent = astats.Ba_channel.Link.sent;
    acks_dropped = astats.Ba_channel.Link.dropped;
    acks_corrupted = astats.Ba_channel.Link.corrupted;
    ack_outage_drops = astats.Ba_channel.Link.outage_drops;
    retransmissions = t.sender_retransmissions ();
    goodput = (if ticks = 0 then 0. else float_of_int delivered *. 1000. /. float_of_int ticks);
    latency =
      (if Ba_util.Stats.count t.latency_stats = 0 then None
       else Some (Ba_util.Stats.summary t.latency_stats));
    latencies = Ba_util.Stats.samples t.latency_stats;
    ack_overhead =
      (if payload_bytes_delivered = 0 then 0.
       else
         float_of_int (astats.Ba_channel.Link.sent * t.ack_wire_bytes)
         /. float_of_int payload_bytes_delivered);
    efficiency =
      (if dstats.Ba_channel.Link.sent = 0 then 0.
       else float_of_int delivered /. float_of_int dstats.Ba_channel.Link.sent);
    crashes = !(t.crashes);
    restarts = !(t.restarts);
    resync_rounds = t.resync_rounds ();
    resync_ticks =
      (if Ba_util.Stats.count t.resync_ticks = 0 then None
       else Some (Ba_util.Stats.summary t.resync_ticks));
    retx_bytes = !(t.retx_bytes);
    pressure_drops = t.pressure ();
  }
