(** Sharded fabric: 100k–1M concurrent flows in bounded memory.

    {!Fabric} wires every flow into one engine through one pair of
    shared links — exact, but O(flows) events interleave in one event
    loop and every flow carries a {!Flow.t} (dozens of closures, a
    latency sample list), which tops out around a few thousand flows.
    The shard runner rebuilds the same model for scale:

    {ul
    {- {b Cells.} Flows are partitioned by spec order into fixed-size
       {e cells} (the [cell] parameter). Each cell owns a private
       {!Ba_sim.Engine.t} plus data/ack links seeded from the cell
       index, so a cell is a deterministic sub-simulation.}
    {- {b Capacity leases.} The shared-router bottleneck
       ([capacity = (service_time, queue_capacity)]) becomes a per-cell
       {e lease}: each cell serves its frame FIFO at its flow-count
       share of the link rate. At every epoch barrier the leases are
       reconciled — idle cells' unused frame credits are re-leased to
       backlogged cells in proportion to backlog — a deterministic fold
       in cell order.}
    {- {b Epoch barriers.} All live cells advance in lockstep,
       [Engine.run ~until] one [barrier]-tick epoch at a time. Within
       an epoch cells are independent, so epochs fan out over a
       {!Ba_parallel.Pool}; [shards] controls how many contiguous cell
       groups become pool tasks.}
    {- {b Flat accounting.} Per-flow state is flat arrays (delivered /
       next-expected / workload cursors / gating bitsets) plus one
       mergeable {!Ba_util.Qsketch} per cell for latency — no
       {!Flow.t}, no per-flow sample lists. The only per-flow heap
       objects are the protocol endpoints themselves and four one-word
       wiring closures (data tx, ack tx, deliver, payload pull).}}

    {b Determinism.} The model is fixed by [(specs, seed, cell,
    barrier, capacity, …)]; [shards] and [jobs] only schedule cells
    onto domains. Results are collected in cell order and lease
    reconciliation is an order-independent integer fold, so the result
    is byte-identical for any [shards] and any [jobs] — the same
    guarantee class as the campaign pool, and QCheck-pinned in
    [test_shard.ml]. *)

type result = {
  flows : int;  (** admitted flows across all cells *)
  cells : int;
  messages : int;  (** payloads offered by admitted flows *)
  delivered : int;
  duplicates : int;
  misordered : int;
  corrupted : int;
  completed_flows : int;
  departed : int;  (** flows closed by [stop_at] while mid-transfer *)
  refused : int;  (** flows refused by cell-local admission *)
  clamped_cells : int;  (** cells where admission imposed a window clamp *)
  data_sent : int;
  acks_sent : int;
  retransmissions : int;
  pressure_drops : int;
  lease_drops : int;  (** frames tail-dropped at a full cell lease queue *)
  lease_rebalances : int;  (** barriers at which idle capacity was re-leased *)
  quarantine_events : int;
  watchdog_resyncs : int;
  quarantined : int;
  mem_peak_bytes : int;
      (** peak sampled model bytes (sum of per-cell peaks; 0 when
          neither budget nor watchdog is set) *)
  ticks : int;  (** last completion tick across cells (or the horizon) *)
  epochs : int;  (** barrier epochs executed *)
  completed : bool;  (** every admitted flow finished or departed on schedule *)
  aggregate_goodput : float;  (** delivered payloads per 1000 ticks *)
  latency : Ba_util.Qsketch.t;  (** merged delivery-latency sketch *)
  state_bytes : int;
      (** live-heap delta attributable to the built cells ([measure_mem]
          runs a major GC before/after construction; 0 otherwise). Not
          part of {!summary}: heap layout is not a simulation output. *)
}

val run :
  ?seed:int ->
  ?jobs:int ->
  ?shards:int ->
  ?cell:int ->
  ?barrier:int ->
  ?data_loss:float ->
  ?ack_loss:float ->
  ?data_delay:Ba_channel.Dist.t ->
  ?ack_delay:Ba_channel.Dist.t ->
  ?capacity:int * int ->
  ?ack_capacity:int * int ->
  ?plans_for:(cell_seed:int -> Ba_channel.Fault_plan.t * Ba_channel.Fault_plan.t) ->
  ?deadline:int ->
  ?memory_budget:int ->
  ?watchdog:Watchdog.config ->
  ?measure_mem:bool ->
  Fabric.spec list ->
  result
(** [run specs] drives every flow to completion, departure or the
    deadline. Defaults: seed 42, [jobs] {!Ba_parallel.Pool.default_jobs},
    [shards = jobs], [cell = 1024] flows per cell, [barrier = 1000]
    ticks, no loss, delay [Uniform (40, 60)] both ways, no capacity
    (uncontended links), [measure_mem = false].

    [capacity]/[ack_capacity] are the shared-link bottleneck
    [(service_time, queue_capacity)], realised as per-cell leases (see
    above): a cell's base lease is its flow-count share of the rate and
    at least one frame per epoch; its queue share at least 4 slots.

    [memory_budget] splits by flow-count share into per-cell budgets and
    each cell runs {!Fabric.plan_admission} locally — same
    unclamped/clamp/refuse ladder, shard-local state only. [watchdog]
    arms a per-flow liveness machine per cell (observation loop on the
    cell's own engine): stalls resync via crash+restart, repeat
    offenders are gated off the cell's links.

    [plans_for ~cell_seed] attaches scheduled fault plans (data, ack) to
    each cell's links — the storm hook; [cell_seed] is derived from
    [seed] and the cell index, so plans are replayable per cell.

    Raises [Invalid_argument] on empty [specs], non-positive [cell],
    [barrier] or [shards], invalid spec intervals, or a budget that
    admits no flow in some cell. *)

val summary : result -> string
(** Deterministic multi-line digest of everything in [result] except
    [state_bytes] — what the CLI prints and what the determinism
    properties compare byte-for-byte. *)
