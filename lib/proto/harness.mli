(** Experiment harness: one sender, one receiver, two lossy links.

    [run] wires a single {!Flow} into a fresh simulation over two private
    links, drives a {!Workload} of [messages] payloads through it, and
    reports both performance (ticks, goodput, overhead) and correctness
    (duplicates, misordering, corruption) — the latter must be zero for a
    correct protocol and is deliberately *not* zero for the broken
    baselines the paper warns about. For many connections over a shared
    link, see {!Fabric}; [result] is the same record ({!Flow.result}), so
    every check written against harness output also reads fabric
    output. *)

type result = Flow.result = {
  protocol : string;
  completed : bool;  (** all payloads delivered and acknowledged *)
  ticks : int;  (** simulated time consumed *)
  messages : int;  (** payloads offered *)
  delivered : int;  (** distinct payloads delivered *)
  duplicates : int;  (** deliveries of an already-delivered payload *)
  misordered : int;  (** deliveries that broke application order *)
  corrupted : int;  (** deliveries of an unparseable payload *)
  data_sent : int;
  data_dropped : int;
  data_queue_dropped : int;  (** tail drops at the data-link bottleneck *)
  data_reordered : int;  (** wire-level overtakings on the data link *)
  data_duplicated : int;  (** extra copies injected by a fault plan *)
  data_corrupted : int;  (** wire-level corruptions injected on the data link *)
  data_outage_drops : int;  (** data frames lost to scheduled outages *)
  acks_sent : int;
  acks_dropped : int;
  acks_corrupted : int;  (** wire-level corruptions injected on the ack link *)
  ack_outage_drops : int;  (** acks lost to scheduled outages *)
  retransmissions : int;
  goodput : float;  (** delivered payloads per 1000 ticks *)
  latency : Ba_util.Stats.summary option;
      (** per-payload delivery latency (ticks from entering the sender's
          window to in-order delivery); [None] when nothing was delivered *)
  latencies : float list;
      (** the raw per-payload latency samples behind [latency], in
          delivery order (for histograms) *)
  ack_overhead : float;  (** ack bytes per delivered payload byte *)
  efficiency : float;  (** delivered / data_sent: 1.0 means no waste *)
  crashes : int;  (** endpoint crashes injected into this run *)
  restarts : int;  (** endpoint restarts *)
  resync_rounds : int;  (** resync handshake frames sent (REQ/POS/FIN) *)
  resync_ticks : Ba_util.Stats.summary option;
      (** per-restart recovery time; [None] when nothing restarted *)
  retx_bytes : int;  (** bytes of retransmitted payload copies on the wire *)
  pressure_drops : int;
      (** in-window frames the receiver refused for buffer-full under an
          [rx_budget]; behaviorally channel losses (never acknowledged) *)
}

type setup = {
  engine : Ba_sim.Engine.t;
  data_link : Wire.data Ba_channel.Link.t;
  ack_link : Wire.ack Ba_channel.Link.t;
}
(** Exposed to [on_setup] so experiments can install scripted faults
    (e.g. "drop exactly the acknowledgment covering block k"). *)

val run :
  Protocol.t ->
  ?seed:int ->
  ?messages:int ->
  ?payload_size:int ->
  ?config:Proto_config.t ->
  ?data_loss:float ->
  ?ack_loss:float ->
  ?data_delay:Ba_channel.Dist.t ->
  ?ack_delay:Ba_channel.Dist.t ->
  ?data_bottleneck:int * int ->
  ?data_plan:Ba_channel.Fault_plan.t ->
  ?ack_plan:Ba_channel.Fault_plan.t ->
  ?crash_plan:Crash_plan.t ->
  ?deadline:int ->
  ?on_setup:(setup -> unit) ->
  unit ->
  result
(** Defaults: [seed = 42], [messages = 1000], [payload_size = 32],
    [config = Proto_config.default], no loss, delay [Uniform (40, 60)]
    both ways, deadline scaled to the workload. The run stops early as
    soon as the transfer completes.

    [data_plan] / [ack_plan] install composable {!Ba_channel.Fault_plan}
    adversaries on the respective links (bursty loss, duplication,
    corruption, outages); the plans' randomness is derived from the
    link's seeded stream, so a run is a pure function of [seed]. Both
    links mangle messages with {!Wire.corrupt_data} /
    {!Wire.corrupt_ack} when a plan asks for a [Corrupt] verdict, so
    robust endpoints can detect and discard them by checksum.

    [crash_plan] schedules endpoint process faults: each event crashes
    the named endpoint at its tick and restarts it [down_for] ticks
    later (see {!Crash_plan}); requires a crash-tolerant protocol. *)

val pp_result : Format.formatter -> result -> unit

val correct : result -> bool
(** Completed with no duplicates, misordering or corruption. *)
