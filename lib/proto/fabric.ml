(* N connections multiplexed over one shared data link and one shared
   ack link. Wire messages are tagged with their flow id — the tag plays
   the role of a link-layer address, so faults mangle payloads, never the
   demultiplexing. *)

type spec = {
  protocol : Protocol.t;
  config : Proto_config.t;
  messages : int;
  payload_size : int;
}

let spec ?(config = Proto_config.default) ?(messages = 100) ?(payload_size = 32) protocol =
  { protocol; config; messages; payload_size }

type result = {
  ticks : int;
  completed : bool;
  flows : Flow.result list;
  aggregate_goodput : float;
  fairness : float;
  data_stats : Ba_channel.Link.stats;
  ack_stats : Ba_channel.Link.stats;
}

(* Jain's fairness index: (sum x)^2 / (n * sum x^2), 1.0 = perfectly even,
   1/n = one flow hoards everything. Defined as 1.0 for degenerate input
   (no flows, or nothing delivered anywhere). *)
let jain = function
  | [] -> 1.0
  | xs ->
      let sum = List.fold_left ( +. ) 0. xs in
      let sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
      if sq = 0. then 1.0
      else sum *. sum /. (float_of_int (List.length xs) *. sq)

let run ?(seed = 42) ?(data_loss = 0.) ?(ack_loss = 0.)
    ?(data_delay = Ba_channel.Dist.Uniform (40, 60))
    ?(ack_delay = Ba_channel.Dist.Uniform (40, 60)) ?data_bottleneck ?ack_bottleneck ?deadline
    ?on_setup ?on_flows specs =
  if specs = [] then invalid_arg "Fabric.run: at least one flow required";
  List.iter (fun s -> Proto_config.validate s.config) specs;
  let n = List.length specs in
  let engine = Ba_sim.Engine.create ~seed () in
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
        (* Scaled to the aggregate workload: the shared link serialises
           every flow's traffic, so the single-flow allowance multiplies
           by the total offered load. *)
        let total = List.fold_left (fun acc s -> acc + s.messages) 0 specs in
        let max_rto = List.fold_left (fun acc s -> max acc s.config.Proto_config.rto) 1 specs in
        (max 1 total * max_rto * 20) + 1_000_000
  in
  let flows : Flow.t option array = Array.make n None in
  let data_link =
    Ba_channel.Link.create engine ~loss:data_loss ~delay:data_delay ?bottleneck:data_bottleneck
      ~corrupt:(fun (i, d) -> (i, Wire.corrupt_data d))
      ~deliver:(fun (i, d) -> match flows.(i) with Some f -> Flow.on_data f d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~loss:ack_loss ~delay:ack_delay ?bottleneck:ack_bottleneck
      ~corrupt:(fun (i, a) -> (i, Wire.corrupt_ack a))
      ~deliver:(fun (i, a) -> match flows.(i) with Some f -> Flow.on_ack f a | None -> ())
      ()
  in
  let remaining = ref n in
  List.iteri
    (fun i s ->
      let f =
        Flow.create engine s.protocol ~id:i
          ~workload_seed:(seed + (7919 * (i + 1)))
          ~seed ~messages:s.messages ~payload_size:s.payload_size ~config:s.config
          ~data_tx:(fun d -> Ba_channel.Link.send data_link (i, d))
          ~ack_tx:(fun a -> Ba_channel.Link.send ack_link (i, a))
          ~on_complete:(fun () ->
            decr remaining;
            if !remaining = 0 then Ba_sim.Engine.stop engine)
          ()
      in
      flows.(i) <- Some f)
    specs;
  (match on_setup with Some g -> g engine | None -> ());
  (* Per-flow instrumentation hook: lets callers schedule process faults
     (crash/restart of one flow's endpoints) before traffic starts. *)
  (match on_flows with
  | Some g -> g engine (Array.map Option.get flows)
  | None -> ());
  Array.iter (function Some f -> Flow.pump f | None -> ()) flows;
  Ba_sim.Engine.run ~until:deadline engine;
  let ticks = Ba_sim.Engine.now engine in
  let flow_results =
    Array.to_list flows
    |> List.map (fun f ->
           let f = Option.get f in
           (* A finished flow is judged over its own lifetime, so slow
              neighbours don't dilute its goodput; an unfinished one over
              the whole run. *)
           let flow_ticks = match Flow.completed_at f with Some t -> t | None -> ticks in
           Flow.result f ~ticks:flow_ticks ())
  in
  let total_delivered = List.fold_left (fun acc r -> acc + r.Flow.delivered) 0 flow_results in
  {
    ticks;
    completed = List.for_all (fun r -> r.Flow.completed) flow_results;
    flows = flow_results;
    aggregate_goodput =
      (if ticks = 0 then 0. else float_of_int total_delivered *. 1000. /. float_of_int ticks);
    fairness = jain (List.map (fun r -> r.Flow.goodput) flow_results);
    data_stats = Ba_channel.Link.stats data_link;
    ack_stats = Ba_channel.Link.stats ack_link;
  }
