(* N connections multiplexed over one shared data link and one shared
   ack link. Wire messages are tagged with their flow id — the tag plays
   the role of a link-layer address, so faults mangle payloads, never the
   demultiplexing. *)

type spec = {
  protocol : Protocol.t;
  config : Proto_config.t;
  messages : int;
  payload_size : int;
  start_at : int;
  stop_at : int option;
}

let spec ?(config = Proto_config.default) ?(messages = 100) ?(payload_size = 32) ?(start_at = 0)
    ?stop_at protocol =
  { protocol; config; messages; payload_size; start_at; stop_at }

type result = {
  ticks : int;
  completed : bool;
  flows : Flow.result list;
  aggregate_goodput : float;
  fairness : float;
  data_stats : Ba_channel.Link.stats;
  ack_stats : Ba_channel.Link.stats;
  admitted : int;
  refused : int;
  departed : int;
  clamped_window : int option;
  mem_peak_bytes : int;
  quarantine_events : int;
  watchdog_resyncs : int;
  quarantined : int;
}

(* Jain's fairness index: (sum x)^2 / (n * sum x^2), 1.0 = perfectly even,
   1/n = one flow hoards everything. Defined as 1.0 for degenerate input
   (no flows, or nothing delivered anywhere). *)
let jain = function
  | [] -> 1.0
  | xs ->
      let sum = List.fold_left ( +. ) 0. xs in
      let sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
      if sq = 0. then 1.0
      else sum *. sum /. (float_of_int (List.length xs) *. sq)

(* Worst-case bytes one flow can pin: a full effective window of
   payloads in the sender's retransmit buffer plus as many again in the
   receiver's reassembly window. Deliberately conservative — admission
   guarantees the budget even when every admitted flow (surge flows
   included) saturates simultaneously. *)
let flow_cost s ~clamp = 2 * min s.config.Proto_config.window clamp * s.payload_size

(* Peak concurrent cost under the interval model: a flow pins memory
   only while its [start_at, stop_at) interval is open, so the budget
   must cover the worst instant, not the lifetime sum. The concurrent
   total is piecewise constant and only steps up at interval starts, so
   checking each spec's [start_at] finds the peak. With no [stop_at]
   anywhere every interval is open-ended and the peak equals the plain
   sum — the historical admission decisions are unchanged. *)
let peak_cost ~clamp specs =
  let active_at t s =
    s.start_at <= t && match s.stop_at with None -> true | Some d -> t < d
  in
  List.fold_left
    (fun acc s ->
      let here =
        List.fold_left
          (fun a s' -> if active_at s.start_at s' then a + flow_cost s' ~clamp else a)
          0 specs
      in
      max acc here)
    0 specs

(* Graceful degradation, in preference order: admit everyone unclamped;
   else admit everyone under the largest uniform window clamp that
   fits; else clamp to 1 and admit the longest spec prefix that fits,
   refusing the rest. "Fits" is the peak-concurrency test above, so a
   departing flow's reservation is reusable by any arrival scheduled
   after its [stop_at]. *)
let plan_admission ~budget specs =
  let max_w = List.fold_left (fun acc s -> max acc s.config.Proto_config.window) 1 specs in
  let rec fit c = if c >= 1 && peak_cost ~clamp:c specs > budget then fit (c - 1) else c in
  let c = fit max_w in
  if c >= 1 then (specs, 0, if c < max_w then Some c else None)
  else begin
    let rec split admitted = function
      | [] -> (List.rev admitted, 0)
      | s :: rest ->
          if peak_cost ~clamp:1 (List.rev (s :: admitted)) > budget then
            (List.rev admitted, List.length (s :: rest))
          else split (s :: admitted) rest
    in
    let admitted, refused = split [] specs in
    if admitted = [] then invalid_arg "Fabric.run: memory_budget admits no flow";
    (admitted, refused, Some 1)
  end

let run ?(seed = 42) ?(data_loss = 0.) ?(ack_loss = 0.)
    ?(data_delay = Ba_channel.Dist.Uniform (40, 60))
    ?(ack_delay = Ba_channel.Dist.Uniform (40, 60)) ?data_bottleneck ?ack_bottleneck ?data_plan
    ?ack_plan ?deadline ?memory_budget ?watchdog ?on_setup ?on_flows specs =
  if specs = [] then invalid_arg "Fabric.run: at least one flow required";
  List.iter
    (fun s ->
      Proto_config.validate s.config;
      if s.start_at < 0 then invalid_arg "Fabric.run: start_at must be >= 0";
      match s.stop_at with
      | Some d when d <= s.start_at -> invalid_arg "Fabric.run: stop_at must be > start_at"
      | Some _ | None -> ())
    specs;
  (match memory_budget with
  | Some b when b <= 0 -> invalid_arg "Fabric.run: memory_budget must be positive"
  | Some _ | None -> ());
  let specs, refused, clamp =
    match memory_budget with
    | None -> (specs, 0, None)
    | Some budget -> plan_admission ~budget specs
  in
  (* The clamp is enforced twice over: the sender's effective window is
     capped ({!Flow.clamp_window}) and the receiver's reassembly budget
     is rewritten to match, so even a misbehaving sender cannot pin more
     than the accounted slots. *)
  let specs =
    match clamp with
    | None -> specs
    | Some c ->
        List.map
          (fun s ->
            let w = s.config.Proto_config.window in
            if c >= w then s
            else
              let rx = Option.value ~default:w s.config.Proto_config.rx_budget in
              { s with config = { s.config with Proto_config.rx_budget = Some (min c rx) } })
          specs
  in
  let n = List.length specs in
  let engine = Ba_sim.Engine.create ~seed () in
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
        (* Scaled to the aggregate workload: the shared link serialises
           every flow's traffic, so the single-flow allowance multiplies
           by the total offered load. *)
        let total = List.fold_left (fun acc s -> acc + s.messages) 0 specs in
        let max_rto = List.fold_left (fun acc s -> max acc s.config.Proto_config.rto) 1 specs in
        (max 1 total * max_rto * 20) + 1_000_000
  in
  let flows : Flow.t option array = Array.make n None in
  (* Quarantine gate: a gated flow's frames never reach the shared
     links, so a livelocked neighbour cannot consume their capacity. *)
  let gated = Array.make n false in
  let data_link =
    Ba_channel.Link.create engine ~loss:data_loss ~delay:data_delay ?bottleneck:data_bottleneck
      ~corrupt:(fun (i, d) -> (i, Wire.corrupt_data d))
      ~release:(fun (_, d) -> Wire.release_data d)
      ~deliver:(fun (i, d) -> match flows.(i) with Some f -> Flow.on_data f d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~loss:ack_loss ~delay:ack_delay ?bottleneck:ack_bottleneck
      ~corrupt:(fun (i, a) -> (i, Wire.corrupt_ack a))
      ~release:(fun (_, a) -> Wire.release_ack a)
      ~deliver:(fun (i, a) -> match flows.(i) with Some f -> Flow.on_ack f a | None -> ())
      ()
  in
  (* Scheduled channel faults on the shared links (the fabric-scale
     analogue of the harness's plan arguments). Only splits the link's
     random stream when a plan is actually given, so plan-free runs keep
     their exact historical event sequence. *)
  (match data_plan with Some p -> Ba_channel.Link.set_plan data_link p | None -> ());
  (match ack_plan with Some p -> Ba_channel.Link.set_plan ack_link p | None -> ());
  let remaining = ref n in
  (* A departed flow's slot: demux entry cleared (so its buffered state
     is unreachable and excluded from memory sampling), tx gate shut,
     watchdog slot released. [all_flows] keeps the handle for end-of-run
     verdicts — its counters freeze at departure because no event can
     reach it. *)
  let all_flows : Flow.t option array = Array.make n None in
  let departed_at = Array.make n None in
  List.iteri
    (fun i s ->
      let f =
        Flow.create engine s.protocol ~id:i
          ~workload_seed:(seed + (7919 * (i + 1)))
          ~seed ~messages:s.messages ~payload_size:s.payload_size ~config:s.config
          ~data_tx:(fun d -> if not gated.(i) then Ba_channel.Link.send data_link (i, d))
          ~ack_tx:(fun a -> if not gated.(i) then Ba_channel.Link.send ack_link (i, a))
          ~on_complete:(fun () ->
            decr remaining;
            if !remaining = 0 then Ba_sim.Engine.stop engine)
          ()
      in
      (match clamp with Some c -> Flow.clamp_window f c | None -> ());
      flows.(i) <- Some f;
      all_flows.(i) <- Some f)
    specs;
  let starts = Array.of_list (List.map (fun s -> s.start_at) specs) in
  (* Departure schedule: at [stop_at] the flow is closed whether or not
     it finished — churn models flows that leave, not flows that are
     polite about it. An unfinished departer stops counting toward
     [remaining] (the fabric must not wait for a flow that left). *)
  List.iteri
    (fun i s ->
      match s.stop_at with
      | None -> ()
      | Some d ->
          ignore
            (Ba_sim.Engine.schedule_at engine ~at:d (fun () ->
                 match flows.(i) with
                 | None -> ()
                 | Some f ->
                     flows.(i) <- None;
                     gated.(i) <- true;
                     if not (Flow.is_complete f) then begin
                       departed_at.(i) <- Some d;
                       decr remaining;
                       if !remaining = 0 then Ba_sim.Engine.stop engine
                     end)))
    specs;
  let mem_peak = ref 0 in
  let sample_mem () =
    let total = Array.fold_left (fun acc -> function
        | Some f -> acc + Flow.mem_bytes f
        | None -> acc) 0 flows
    in
    if total > !mem_peak then mem_peak := total
  in
  let dogs =
    match watchdog with
    | None -> [||]
    | Some wcfg ->
        let dogs = Array.init n (fun _ -> Watchdog.create wcfg) in
        let rec tick () =
          sample_mem ();
          Array.iteri
            (fun i fo ->
              match fo with
              | None -> ()
              | Some f ->
                  if starts.(i) <= Ba_sim.Engine.now engine then begin
                    match
                      Watchdog.observe dogs.(i) ~delivered:(Flow.delivered f)
                        ~completed:(Flow.is_complete f)
                    with
                    | Watchdog.Nothing -> ()
                    | Watchdog.Resync ->
                        (* Recover through the PR-4 handshake: wipe the
                           sender's volatile state and let REQ/POS/FIN
                           re-establish the window at the receiver's
                           authoritative position. Protocols without a
                           crash lifecycle have no recovery lever. *)
                        if Flow.crash_tolerant f then begin
                          Flow.crash_sender f;
                          Flow.restart_sender f
                        end
                    | Watchdog.Quarantine -> gated.(i) <- true
                    | Watchdog.Release ->
                        gated.(i) <- false;
                        if Flow.crash_tolerant f then begin
                          Flow.crash_sender f;
                          Flow.restart_sender f
                        end
                  end)
            flows;
          if !remaining > 0 then
            ignore (Ba_sim.Engine.schedule engine ~delay:wcfg.Watchdog.check_interval tick)
        in
        ignore (Ba_sim.Engine.schedule engine ~delay:wcfg.Watchdog.check_interval tick);
        dogs
  in
  (* Memory verification sampler: admission is a static worst-case
     guarantee; the sampler observes what actually happened. Only armed
     when someone is accounting (a budget or a watchdog is set), so
     budget-free runs keep their exact historical event sequence. *)
  (match memory_budget with
  | Some _ when watchdog = None ->
      let rec tick () =
        sample_mem ();
        if !remaining > 0 then ignore (Ba_sim.Engine.schedule engine ~delay:500 tick)
      in
      ignore (Ba_sim.Engine.schedule engine ~delay:500 tick)
  | Some _ | None -> ());
  (match on_setup with Some g -> g engine | None -> ());
  (* Per-flow instrumentation hook: lets callers schedule process faults
     (crash/restart of one flow's endpoints) before traffic starts. *)
  (match on_flows with
  | Some g -> g engine (Array.map Option.get flows)
  | None -> ());
  (* Surge flows (start_at > 0) exist from tick 0 — creation order fixes
     determinism — but only start offering traffic at their start tick. *)
  Array.iteri
    (fun i fo ->
      match fo with
      | None -> ()
      | Some f ->
          if starts.(i) = 0 then Flow.pump f
          else ignore (Ba_sim.Engine.schedule_at engine ~at:starts.(i) (fun () -> Flow.pump f)))
    flows;
  Ba_sim.Engine.run ~until:deadline engine;
  sample_mem ();
  let ticks = Ba_sim.Engine.now engine in
  let flow_results =
    Array.to_list (Array.mapi (fun i f -> (i, Option.get f)) all_flows)
    |> List.map (fun (i, f) ->
           (* A finished flow is judged over its own tenancy — from its
              start tick to completion (or departure, or the end of the
              run) — so slow neighbours don't dilute its goodput and a
              late arrival isn't charged for ticks before it existed. *)
           let upto =
             match (Flow.completed_at f, departed_at.(i)) with
             | Some t, _ -> t
             | None, Some t -> t
             | None, None -> ticks
           in
           Flow.result f ~ticks:(max 1 (upto - starts.(i))) ())
  in
  let total_delivered = List.fold_left (fun acc r -> acc + r.Flow.delivered) 0 flow_results in
  let departed = Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) 0 departed_at in
  {
    ticks;
    (* A scheduled departure is a normal end of life: completion means
       every flow either finished or left on schedule. *)
    completed =
      List.for_all2
        (fun d r -> Option.is_some d || r.Flow.completed)
        (Array.to_list departed_at) flow_results;
    flows = flow_results;
    aggregate_goodput =
      (if ticks = 0 then 0. else float_of_int total_delivered *. 1000. /. float_of_int ticks);
    fairness = jain (List.map (fun r -> r.Flow.goodput) flow_results);
    data_stats = Ba_channel.Link.stats data_link;
    ack_stats = Ba_channel.Link.stats ack_link;
    admitted = n;
    refused;
    departed;
    clamped_window = clamp;
    mem_peak_bytes = !mem_peak;
    quarantine_events =
      Array.fold_left (fun acc d -> acc + Watchdog.quarantine_events d) 0 dogs;
    watchdog_resyncs = Array.fold_left (fun acc d -> acc + Watchdog.resync_events d) 0 dogs;
    quarantined =
      Array.fold_left
        (fun acc d -> if Watchdog.state d = Watchdog.Quarantined then acc + 1 else acc)
        0 dogs;
  }

(* Seed-derived churn schedule: [base] flows span the whole horizon and
   carry the pre/post-churn goodput baseline; each churner contributes a
   departing flow (arrives early, offered enough work to outlast its
   departure tick, so closure always reclaims a live reservation) and a
   returning flow that arrives into the reclaimed capacity after the
   departure and runs to completion. *)
let churn ?(base = 2) ?(churners = 2) ?(messages = 40) ?(payload_size = 32)
    ?(config = Proto_config.default) ~seed protocol =
  if base < 0 then invalid_arg "Fabric.churn: base must be >= 0";
  if churners < 0 then invalid_arg "Fabric.churn: churners must be >= 0";
  let rng = Ba_util.Rng.create (0x5eed + (31 * seed)) in
  let mk ?start_at ?stop_at m = spec ~config ~messages:m ~payload_size ?start_at ?stop_at protocol in
  let rec bases k acc = if k = 0 then List.rev acc else bases (k - 1) (mk messages :: acc) in
  (* Explicit recursion: the rng draws must happen in churner order. *)
  let rec churned k acc =
    if k = 0 then List.rev acc
    else begin
      let arrive = Ba_util.Rng.int_in rng 0 400 in
      let depart = arrive + Ba_util.Rng.int_in rng 2000 3500 in
      let return_at = depart + Ba_util.Rng.int_in rng 600 1400 in
      let leaver = mk ~start_at:arrive ~stop_at:depart (messages * 4) in
      let returner = mk ~start_at:return_at messages in
      churned (k - 1) (returner :: leaver :: acc)
    end
  in
  bases base [] @ churned churners []
