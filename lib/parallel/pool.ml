(* A fixed-size domain pool over stdlib Domain/Mutex/Condition.

   Workers block on [work] until a chunk of tasks is queued (or shutdown
   is requested); the batch submitter also works the queue, so a pool of
   [jobs = n] never uses more than n domains and [jobs = 1] degenerates
   to plain sequential execution with no domain spawned at all.
   Determinism comes from the callers, not the pool: each task writes
   its result into its own input-order slot, and the batch is only read
   back once every slot is filled, so scheduling order is unobservable.

   Three costs of the naive pool are engineered out here:
   - the queue holds one entry per contiguous *chunk* of work, not one
     closure per element, so lock/wake/dequeue overhead is amortised;
   - submit wakes workers with one Condition.signal per queued chunk
     instead of broadcasting the whole pool awake for every batch;
   - worker domains are capped at the hardware's recommended count
     (oversubscribing a saturated machine only adds GC barriers — the
     measured 0.25x "speedup" at --jobs 4 on one core), and the
     implicit pool behind [map]/[map_chunks] is one long-lived
     process-wide pool instead of a spawn/join per grid. *)

type t = {
  jobs : int;  (* configured parallelism, including the caller *)
  mutex : Mutex.t;
  work : Condition.t;  (* a chunk queued, or shutdown requested *)
  finished : Condition.t;  (* [outstanding] reached zero *)
  tasks : (unit -> unit) Queue.t;  (* one entry per chunk *)
  batch : Mutex.t;  (* serialises whole batches, not individual chunks *)
  mutable outstanding : int;  (* queued + currently-running chunks *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let hardware_jobs () = max 1 (Domain.recommended_domain_count ())
let max_jobs () = 4 * hardware_jobs ()

let default_jobs () =
  match Sys.getenv_opt "BA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n (max_jobs ())
      | Some _ | None -> hardware_jobs ())
  | None -> hardware_jobs ()

let jobs t = t.jobs

(* Process-wide observability: how many worker domains were ever
   spawned. Tests pin the no-oversubscription rules against this. *)
let spawned = Atomic.make 0
let spawned_domains () = Atomic.get spawned

(* Per-domain scratch RNG. Seeded from the domain id, so the stream a
   task sees depends on scheduling — which is exactly why simulation
   code must never draw semantic randomness from it. *)
let rng_key =
  Domain.DLS.new_key (fun () ->
      Ba_util.Rng.create (0x5ca7c4 + (31 * (Domain.self () :> int))))

let domain_rng () = Domain.DLS.get rng_key

(* True while the current domain is executing a pool task; [map] and
   [map_chunks] without an explicit pool check it to run inline rather
   than re-enter the shared pool (whose batch mutex is not reentrant). *)
let in_task_key = Domain.DLS.new_key (fun () -> false)

let run_task task =
  Domain.DLS.set in_task_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task_key false) task

(* Run one queued chunk outside the lock; the chunk owns its own result
   slots and traps its own exceptions, so workers never die. Only the
   batch submitter waits on [finished] (batches are serialised), so a
   single signal suffices. *)
let task_done t =
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then Condition.signal t.finished

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.tasks && not t.stop do
      Condition.wait t.work t.mutex
    done;
    match Queue.take_opt t.tasks with
    | Some task ->
        Mutex.unlock t.mutex;
        run_task task;
        Mutex.lock t.mutex;
        task_done t;
        Mutex.unlock t.mutex;
        loop ()
    | None ->
        (* stop requested and the queue is drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let jobs = min jobs (max_jobs ()) in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = Queue.create ();
      batch = Mutex.create ();
      outstanding = 0;
      stop = false;
      workers = [];
    }
  in
  (* Cap spawned domains at the hardware count: the caller is worker
     zero, extra domains beyond the cores only contend. *)
  let spawn_n = min (jobs - 1) (hardware_jobs () - 1) in
  t.workers <-
    List.init spawn_n (fun _ ->
        Atomic.incr spawned;
        Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The long-lived pool behind [map]/[map_chunks] when no explicit pool
   is passed. Created on first parallel use, reused across grids,
   recreated only when the requested parallelism changes, shut down at
   process exit so its domains are joined. *)
let shared : t option ref = ref None
let shared_guard = Mutex.create ()
let shared_at_exit = ref false

let shared_pool requested =
  Mutex.lock shared_guard;
  let pool =
    match !shared with
    | Some p when p.jobs = requested -> p
    | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~jobs:requested () in
        shared := Some p;
        if not !shared_at_exit then begin
          shared_at_exit := true;
          at_exit (fun () ->
              match !shared with
              | Some p ->
                  shared := None;
                  shutdown p
              | None -> ())
        end;
        p
  in
  Mutex.unlock shared_guard;
  pool

(* Submit pre-wrapped chunk tasks and help drain them. Holds [batch]
   for the whole batch, so at most one submitter per pool waits on
   [finished] at a time. *)
let exec t chunk_tasks =
  let n = Array.length chunk_tasks in
  if n > 0 then begin
    Mutex.lock t.batch;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.batch)
      (fun () ->
        Mutex.lock t.mutex;
        t.outstanding <- t.outstanding + n;
        Array.iter
          (fun task ->
            Queue.add task t.tasks;
            (* one wake per chunk: exactly as many workers as there is
               work for, never a broadcast *)
            Condition.signal t.work)
          chunk_tasks;
        (* The submitter is a worker too: drain what it can, then wait
           for the stragglers running on other domains. *)
        let rec help () =
          match Queue.take_opt t.tasks with
          | Some task ->
              Mutex.unlock t.mutex;
              run_task task;
              Mutex.lock t.mutex;
              task_done t;
              help ()
          | None ->
              if t.outstanding > 0 then begin
                Condition.wait t.finished t.mutex;
                help ()
              end
        in
        help ();
        Mutex.unlock t.mutex)
  end

(* Contiguous [lo, hi) chunk bounds: enough chunks for ~4 per worker so
   the tail balances, never more chunks than elements. *)
let chunk_bounds ~workers ?chunk n =
  let per_chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pool.map_chunks: chunk must be >= 1"
    | None -> max 1 (n / (max 1 (workers * 4)))
  in
  let count = (n + per_chunk - 1) / per_chunk in
  List.init count (fun i -> (i * per_chunk, min n ((i + 1) * per_chunk)))

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    let thunks = Array.of_list thunks in
    let slots = Array.make n None in
    let eval i =
      slots.(i) <-
        Some
          (try Ok (thunks.(i) ())
           with e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    let workers = List.length t.workers + 1 in
    if workers = 1 then
      (* Sequential degenerate case: no queue, no locks, same
         run-to-completion semantics. *)
      for i = 0 to n - 1 do
        eval i
      done
    else
      chunk_bounds ~workers n
      |> List.map (fun (lo, hi) () ->
             for i = lo to hi - 1 do
               eval i
             done)
      |> Array.of_list |> exec t;
    (* Every slot is filled exactly once; surface results in input
       order, re-raising the first failure just as List.map would. *)
    Array.to_list slots
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

(* Pick the pool for an implicit [map]/[map_chunks] call. [None] means
   "run inline": effective parallelism 1, or we are already inside a
   pool task (re-entering the shared batch mutex would self-deadlock). *)
let implicit_pool ?pool ?jobs () =
  match pool with
  | Some t -> if List.length t.workers = 0 then None else Some t
  | None ->
      let requested = match jobs with Some j -> j | None -> default_jobs () in
      if requested < 1 then invalid_arg "Pool.map: jobs must be >= 1";
      if
        min requested (hardware_jobs ()) <= 1
        || Domain.DLS.get in_task_key
      then None
      else begin
        let t = shared_pool (min requested (max_jobs ())) in
        if List.length t.workers = 0 then None else Some t
      end

let map ?pool ?jobs f tasks =
  let thunks = List.map (fun x () -> f x) tasks in
  match implicit_pool ?pool ?jobs () with
  | Some t -> run t thunks
  | None ->
      (* Inline, preserving [run]'s run-to-completion semantics. *)
      let results =
        List.map
          (fun thunk ->
            try Ok (thunk ())
            with e -> Error (e, Printexc.get_raw_backtrace ()))
          thunks
      in
      List.map
        (function
          | Ok v -> v
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
        results

let map_chunks ?pool ?jobs ?chunk f tasks =
  match implicit_pool ?pool ?jobs () with
  | None -> List.map f tasks (* the whole point: zero per-element cost *)
  | Some t ->
      let input = Array.of_list tasks in
      let n = Array.length input in
      if n = 0 then []
      else begin
        let bounds = chunk_bounds ~workers:t.jobs ?chunk n in
        let slots = Array.make (List.length bounds) None in
        (* Map a contiguous slice strictly left to right, so the first
           raising element in input order is the one that propagates. *)
        let map_slice lo hi =
          let rec go i acc =
            if i >= hi then List.rev acc else go (i + 1) (f input.(i) :: acc)
          in
          go lo []
        in
        bounds
        |> List.mapi (fun ci (lo, hi) () ->
               slots.(ci) <-
                 Some
                   (try Ok (map_slice lo hi)
                    with e -> Error (e, Printexc.get_raw_backtrace ())))
        |> Array.of_list |> exec t;
        (* First errored chunk holds the first raising element in input
           order (chunks are contiguous input ranges). *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) | None -> ())
          slots;
        Array.to_list slots
        |> List.concat_map (function
             | Some (Ok l) -> l
             | Some (Error _) | None -> assert false)
      end
