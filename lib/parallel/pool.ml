(* A fixed-size domain pool over stdlib Domain/Mutex/Condition.

   Workers block on [work] until a task closure is queued (or shutdown);
   the batch submitter also works the queue, so a pool of [jobs = n]
   never uses more than n domains and [jobs = 1] degenerates to plain
   sequential execution with no domain spawned at all. Determinism comes
   from the callers, not the pool: each task closure writes its result
   into its own input-order slot, and the batch is only read back once
   every slot is filled, so scheduling order is unobservable. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* task queued, or shutdown requested *)
  finished : Condition.t;  (* [outstanding] reached zero *)
  tasks : (unit -> unit) Queue.t;
  batch : Mutex.t;  (* serialises whole batches, not individual tasks *)
  mutable outstanding : int;  (* queued + currently-running tasks *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "BA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Run one queued task outside the lock; the closure owns its own
   result slot and traps its own exceptions, so workers never die. *)
let task_done t =
  t.outstanding <- t.outstanding - 1;
  if t.outstanding = 0 then Condition.broadcast t.finished

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.tasks && not t.stop do
      Condition.wait t.work t.mutex
    done;
    match Queue.take_opt t.tasks with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        task_done t;
        Mutex.unlock t.mutex;
        loop ()
    | None ->
        (* stop requested and the queue is drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = Queue.create ();
      batch = Mutex.create ();
      outstanding = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    Mutex.lock t.batch;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.batch)
      (fun () ->
        let slots = Array.make n None in
        let wrap i thunk () =
          slots.(i) <-
            Some
              (try Ok (thunk ())
               with e -> Error (e, Printexc.get_raw_backtrace ()))
        in
        Mutex.lock t.mutex;
        List.iteri (fun i thunk -> Queue.add (wrap i thunk) t.tasks) thunks;
        t.outstanding <- t.outstanding + n;
        Condition.broadcast t.work;
        (* The submitter is a worker too: drain what it can, then wait
           for the stragglers running on other domains. *)
        let rec help () =
          match Queue.take_opt t.tasks with
          | Some task ->
              Mutex.unlock t.mutex;
              task ();
              Mutex.lock t.mutex;
              task_done t;
              help ()
          | None ->
              if t.outstanding > 0 then begin
                Condition.wait t.finished t.mutex;
                help ()
              end
        in
        help ();
        Mutex.unlock t.mutex;
        (* Every slot is filled exactly once; surface results in input
           order, re-raising the first failure just as List.map would. *)
        Array.to_list slots
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false))
  end

let map ?pool ?jobs f tasks =
  let thunks = List.map (fun x () -> f x) tasks in
  match pool with
  | Some t -> run t thunks
  | None ->
      (* Transient pool; [jobs = 1] spawns no domain, so a sequential
         call costs nothing beyond the closure allocations. *)
      with_pool ?jobs (fun t -> run t thunks)
