(** Deterministic domain pool for embarrassingly-parallel campaign grids.

    Every heavy workload in this repo — chaos campaigns, fabric scaling
    sweeps, multi-seed experiment replicates, sharded-fabric epochs — is
    a grid of independent [(seed, config)] simulations. Each task builds
    its own {!Ba_sim.Engine.t} and derives every random stream from its
    own seed, so tasks share no mutable state and can run on any domain
    in any order. The pool exploits that: tasks are farmed to worker
    domains, but results are {e collected in input order}, so
    [map ~jobs:n f tasks] is observably identical to [List.map f tasks]
    for every [n] — parallel output is byte-identical to [--jobs 1].

    Three properties keep the pool cheaper than the work it schedules:

    {ul
    {- {b Chunked batches.} A batch enqueues one queue entry per
       contiguous {e chunk} of tasks, not one per element, so dispatch
       (lock, wake, dequeue) is amortised over the chunk.}
    {- {b No oversubscription.} [create ~jobs:n] spawns at most
       [Domain.recommended_domain_count () - 1] worker domains however
       large [n] is: extra domains on a saturated machine only add GC
       synchronisation and context switches (the measured 0.25×
       "speedup" of the naive pool at [--jobs 4] on one core). [jobs]
       still reports the configured parallelism and output is still
       byte-identical — only the scheduling changes.}
    {- {b Long-lived shared domains.} [map]/[map_chunks] without an
       explicit pool reuse one process-wide pool (created on first use,
       shut down at exit) instead of spawning and joining domains per
       grid.}}

    Built on stdlib [Domain]/[Mutex]/[Condition] only (no domainslib). *)

type t
(** A fixed-size pool of worker domains plus the calling domain. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool of parallelism [jobs] (default
    {!default_jobs}), spawning [min (jobs - 1)
    (Domain.recommended_domain_count () - 1)] worker domains; the domain
    that submits a batch participates as a worker, so [jobs = 1] spawns
    nothing and runs every task inline, in order. [jobs] above
    {!max_jobs} is clamped. Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** Parallelism the pool was created with (including the caller). *)

val shutdown : t -> unit
(** Drain queued tasks, stop the workers and join them. Idempotent.
    A pool that is never shut down leaks its domains. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] executes every thunk (concurrently, up to
    {!jobs}, enqueued as chunks) and returns their results in input
    order. If any thunk raised, the whole batch still runs to completion
    and then the exception of the {e first} raising thunk in input order
    is re-raised with its original backtrace — the same exception
    [List.map] would have surfaced. Batches on one pool are serialised;
    submitting from a worker task deadlocks (don't nest [run] on the
    same pool — the implicit shared pool used by [map]/[map_chunks]
    detects nesting and degrades to inline execution instead). *)

val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f tasks] is [List.map f tasks] computed on [pool] when given,
    otherwise on the shared pool of [jobs] (default {!default_jobs}).
    Order and exception behaviour are exactly {!run}'s. Allocates one
    thunk per element; prefer {!map_chunks} on large grids. *)

val map_chunks : ?pool:t -> ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunks f tasks] is [List.map f tasks] with chunk-granular
    scheduling: the input is split into contiguous chunks of [chunk]
    elements (default: enough chunks for ~4 per worker) and each chunk
    is one pool task mapping its slice, so per-element cost is a plain
    function call. With an effective parallelism of 1 this {e is}
    [List.map f tasks] — no closures, no queue, no domains. Exception
    behaviour matches [List.map]: the first raising element in input
    order propagates; later elements of its chunk are not evaluated
    (other chunks may still run to completion). *)

val default_jobs : unit -> int
(** The [BA_JOBS] environment variable when set to a positive integer
    (clamped to {!max_jobs}), otherwise
    [Domain.recommended_domain_count ()]. *)

val max_jobs : unit -> int
(** Upper bound on useful parallelism: [4 * recommended_domain_count].
    Larger requests (a typo'd [BA_JOBS=100000]) are clamped here rather
    than honoured — beyond it extra jobs only shrink chunks without
    adding concurrency, since spawned domains are already capped at the
    hardware count. *)

val spawned_domains : unit -> int
(** Total worker domains spawned by this process so far (all pools,
    including the shared one). Observability hook for tests pinning the
    no-oversubscription guarantees: [jobs = 1] work must never spawn. *)

val domain_rng : unit -> Ba_util.Rng.t
(** A per-domain scratch RNG stream (lazily created, one per domain,
    seeded from the domain id). For {e non-semantic} randomness only —
    jitter in diagnostics, randomised bench shuffling. Simulation code
    must keep deriving its streams from task seeds: [domain_rng] depends
    on which domain ran the task, so using it for results would break
    the byte-identical-at-any-jobs guarantee. *)
