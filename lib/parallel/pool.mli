(** Deterministic domain pool for embarrassingly-parallel campaign grids.

    Every heavy workload in this repo — chaos campaigns, fabric scaling
    sweeps, multi-seed experiment replicates — is a grid of independent
    [(seed, config)] simulations. Each task builds its own
    {!Ba_sim.Engine.t} and derives every random stream from its own seed,
    so tasks share no mutable state and can run on any domain in any
    order. The pool exploits that: tasks are farmed to a fixed set of
    worker domains, but results are {e collected in input order}, so
    [map ~jobs:n f tasks] is observably identical to [List.map f tasks]
    for every [n] — parallel output is byte-identical to [--jobs 1].

    Built on stdlib [Domain]/[Mutex]/[Condition] only (no domainslib). *)

type t
(** A fixed-size pool of worker domains plus the calling domain. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains; the domain that
    submits a batch participates as the remaining worker, so [jobs = 1]
    spawns nothing and runs every task inline, in order. [jobs] defaults
    to {!default_jobs}. Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** Parallelism the pool was created with (including the caller). *)

val shutdown : t -> unit
(** Drain queued tasks, stop the workers and join them. Idempotent.
    A pool that is never shut down leaks its domains. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] executes every thunk (concurrently, up to
    {!jobs}) and returns their results in input order. If any thunk
    raised, the whole batch still runs to completion and then the
    exception of the {e first} raising thunk in input order is re-raised
    with its original backtrace — the same exception [List.map] would
    have surfaced. Batches on one pool are serialised; submitting from a
    worker task deadlocks (don't nest [run] on the same pool). *)

val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f tasks] is [List.map f tasks] computed on [pool] when given,
    otherwise on a transient pool of [jobs] (default {!default_jobs})
    that is shut down before returning. Order and exception behaviour
    are exactly {!run}'s. *)

val default_jobs : unit -> int
(** The [BA_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
