module Wire = Ba_proto.Wire
module Config = Ba_proto.Proto_config

type sender = {
  config : Config.t;
  engine : Ba_sim.Engine.t;
  codec : Blockack.Seqcodec.t;
  tx : Wire.data -> unit;
  source : Ba_proto.Source.t;
  buffer : string Ba_util.Ring_buffer.t;
  acked : unit Ba_util.Ring_buffer.t;
  timers : Ba_sim.Timer.t Ba_util.Ring_buffer.t;
  slot_free_at : int array;  (* per wire number: earliest next use *)
  mutable pump_retry_armed : bool;
  mutable na : int;
  mutable ns : int;
  mutable retransmissions : int;
}

let slot_count config =
  match config.Config.wire_modulus with Some n -> n | None -> 0

let slot_ready s seq =
  match s.config.Config.wire_modulus with
  | None -> true
  | Some n -> Ba_sim.Engine.now s.engine >= s.slot_free_at.(Ba_util.Modseq.wrap ~n seq)

let note_slot_use s seq =
  match s.config.Config.wire_modulus with
  | None -> ()
  | Some n ->
      s.slot_free_at.(Ba_util.Modseq.wrap ~n seq) <-
        Ba_sim.Engine.now s.engine + s.config.Config.stenning_gap

(* The real-time constraint: refuse to transmit until the wire number's
   quarantine has elapsed; the caller reschedules. *)
let try_transmit s seq =
  if slot_ready s seq then begin
    (match Ba_util.Ring_buffer.get s.buffer seq with
    | None -> invalid_arg "Stenning.try_transmit: no buffered payload"
    | Some payload ->
        note_slot_use s seq;
        s.tx (Wire.make_data ~seq:(Blockack.Seqcodec.encode s.codec seq) ~payload));
    true
  end
  else false

let outstanding s = s.ns - s.na

let rec arm_timer s seq =
  let timer =
    match Ba_util.Ring_buffer.get s.timers seq with
    | Some timer -> timer
    | None ->
        let timer =
          Ba_sim.Timer.create s.engine ~duration:s.config.Config.rto (fun () -> resend s seq)
        in
        Ba_util.Ring_buffer.set s.timers seq timer;
        timer
  in
  Ba_sim.Timer.start timer

and resend s seq =
  if seq >= s.na && seq < s.ns && not (Ba_util.Ring_buffer.mem s.acked seq) then begin
    if try_transmit s seq then begin
      s.retransmissions <- s.retransmissions + 1;
      arm_timer s seq
    end
    else begin
      (* Slot quarantined: retry when it frees. *)
      match s.config.Config.wire_modulus with
      | None -> ()
      | Some n ->
          let at = s.slot_free_at.(Ba_util.Modseq.wrap ~n seq) in
          ignore (Ba_sim.Engine.schedule_at s.engine ~at (fun () -> resend s seq))
    end
  end

let rec pump s =
  if outstanding s < s.config.Config.window then begin
    if slot_ready s s.ns then begin
      match Ba_proto.Source.next s.source with
      | None -> ()
      | Some payload ->
          Ba_util.Ring_buffer.set s.buffer s.ns payload;
          s.ns <- s.ns + 1;
          ignore (try_transmit s (s.ns - 1));
          arm_timer s (s.ns - 1);
          pump s
    end
    else if not s.pump_retry_armed then begin
      match s.config.Config.wire_modulus with
      | None -> ()
      | Some n ->
          let at = s.slot_free_at.(Ba_util.Modseq.wrap ~n s.ns) in
          s.pump_retry_armed <- true;
          ignore
            (Ba_sim.Engine.schedule_at s.engine ~at (fun () ->
                 s.pump_retry_armed <- false;
                 pump s))
    end
  end

let create_sender engine config ~tx ~next_payload =
  Config.validate config;
  let source = Ba_proto.Source.create next_payload in
  {
    config;
    engine;
    codec =
      Blockack.Seqcodec.create ~window:config.Config.window
        ~wire_modulus:config.Config.wire_modulus;
    tx;
    source;
    buffer = Ba_util.Ring_buffer.create config.Config.window;
    acked = Ba_util.Ring_buffer.create config.Config.window;
    timers = Ba_util.Ring_buffer.create config.Config.window;
    slot_free_at = Array.make (max 1 (slot_count config)) 0;
    pump_retry_armed = false;
    na = 0;
    ns = 0;
    retransmissions = 0;
  }

let stop_timer s seq =
  match Ba_util.Ring_buffer.get s.timers seq with
  | Some timer ->
      Ba_sim.Timer.stop timer;
      Ba_util.Ring_buffer.remove s.timers seq
  | None -> ()

let sender_on_ack s { Wire.lo; hi = _; _ } =
  let seq = Blockack.Seqcodec.decode_ack s.codec ~na:s.na lo in
  if seq >= s.na && seq < s.ns then begin
    Ba_util.Ring_buffer.set s.acked seq ();
    stop_timer s seq
  end;
  while Ba_util.Ring_buffer.mem s.acked s.na do
    Ba_util.Ring_buffer.remove s.acked s.na;
    Ba_util.Ring_buffer.remove s.buffer s.na;
    stop_timer s s.na;
    s.na <- s.na + 1
  done;
  pump s

let protocol : Ba_proto.Protocol.t =
  (module struct
    let name = "stenning"

    type nonrec sender = sender
    type receiver = Selective_repeat.receiver

    let create_sender = create_sender

    let create_receiver engine config ~tx ~deliver =
      Selective_repeat.create_receiver engine config ~tx ~deliver

    let sender_on_ack = sender_on_ack
    let receiver_on_data = Selective_repeat.receiver_on_data
    let sender_pump = pump
    let sender_done s = outstanding s = 0 && Ba_proto.Source.exhausted s.source
    let sender_outstanding = outstanding
    let sender_retransmissions s = s.retransmissions
    let ack_wire_bytes = Wire.ack_bytes_single

    include Ba_proto.Protocol.No_crash (struct
      let name = name

      type nonrec sender = sender
      type nonrec receiver = receiver
    end)

    include Ba_proto.Protocol.No_overload (struct
      type nonrec sender = sender
      type nonrec receiver = receiver
    end)
  end)
