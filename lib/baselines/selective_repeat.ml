module Wire = Ba_proto.Wire
module Config = Ba_proto.Proto_config

type receiver = {
  codec : Blockack.Seqcodec.t;
  window : int;
  tx : Wire.ack -> unit;
  deliver : string -> unit;
  buffer : string Ba_util.Ring_buffer.t;
  mutable nr : int;
}

let create_receiver _engine config ~tx ~deliver =
  Config.validate config;
  {
    codec =
      Blockack.Seqcodec.create ~window:config.Config.window
        ~wire_modulus:config.Config.wire_modulus;
    window = config.Config.window;
    tx;
    deliver;
    buffer = Ba_util.Ring_buffer.create config.Config.window;
    nr = 0;
  }

(* Every reception is acknowledged with a singleton (v, v), then in-order
   payloads are drained to the application. Corrupt frames are discarded
   up front, like the block-ack receiver: selective repeat is one of the
   "robust" baselines in the chaos campaign. *)
let receiver_on_data r d =
  if not (Wire.data_ok d) then ()
  else begin
  let { Wire.seq; payload; _ } = d in
  let v = Blockack.Seqcodec.decode_data r.codec ~nr:r.nr seq in
  let wire = Blockack.Seqcodec.encode r.codec v in
  if v < r.nr then r.tx (Wire.make_ack ~lo:wire ~hi:wire)
  else if v < r.nr + r.window then begin
    if not (Ba_util.Ring_buffer.mem r.buffer v) then Ba_util.Ring_buffer.set r.buffer v payload;
    r.tx (Wire.make_ack ~lo:wire ~hi:wire);
    while Ba_util.Ring_buffer.mem r.buffer r.nr do
      (match Ba_util.Ring_buffer.get r.buffer r.nr with
      | Some p ->
          Ba_util.Ring_buffer.remove r.buffer r.nr;
          r.deliver p
      | None -> ());
      r.nr <- r.nr + 1
    done
  end
  end

let protocol : Ba_proto.Protocol.t =
  (module struct
    let name = "selective-repeat"

    type sender = Blockack.Sender_multi.t
    type nonrec receiver = receiver

    let create_sender = Blockack.Sender_multi.create
    let create_receiver = create_receiver
    let sender_on_ack = Blockack.Sender_multi.on_ack
    let receiver_on_data = receiver_on_data
    let sender_pump = Blockack.Sender_multi.pump
    let sender_done = Blockack.Sender_multi.is_done
    let sender_outstanding = Blockack.Sender_multi.outstanding
    let sender_retransmissions = Blockack.Sender_multi.retransmissions
    let ack_wire_bytes = Wire.ack_bytes_single

    include Ba_proto.Protocol.No_crash (struct
      let name = name

      type nonrec sender = sender
      type nonrec receiver = receiver
    end)

    include Ba_proto.Protocol.No_overload (struct
      type nonrec sender = sender
      type nonrec receiver = receiver
    end)
  end)
