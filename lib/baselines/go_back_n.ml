module Wire = Ba_proto.Wire
module Config = Ba_proto.Proto_config

type sender = {
  config : Config.t;
  tx : Wire.data -> unit;
  source : Ba_proto.Source.t;
  buffer : string Ba_util.Ring_buffer.t;
  timer : Ba_sim.Timer.t;
  mutable na : int;
  mutable ns : int;
  mutable retransmissions : int;
}

type receiver = {
  r_config : Config.t;
  r_tx : Wire.ack -> unit;
  r_deliver : string -> unit;
  mutable nr : int;
}

let name = "go-back-n"

let encode config seq =
  match config.Config.wire_modulus with
  | None -> seq
  | Some n -> Ba_util.Modseq.wrap ~n seq

let transmit s seq =
  match Ba_util.Ring_buffer.get s.buffer seq with
  | None -> invalid_arg "Go_back_n.transmit: no buffered payload"
  | Some payload ->
      s.tx (Wire.make_data ~seq:(encode s.config seq) ~payload);
      Ba_sim.Timer.start s.timer

let outstanding s = s.ns - s.na

let rec pump s =
  if outstanding s < s.config.Config.window then begin
    match Ba_proto.Source.next s.source with
    | None -> ()
    | Some payload ->
        Ba_util.Ring_buffer.set s.buffer s.ns payload;
        s.ns <- s.ns + 1;
        transmit s (s.ns - 1);
        pump s
  end

(* Go back N: resend the entire outstanding window, oldest first. *)
let on_timeout s =
  if outstanding s > 0 then begin
    for seq = s.na to s.ns - 1 do
      s.retransmissions <- s.retransmissions + 1;
      transmit s seq
    done
  end

let create_sender engine config ~tx ~next_payload =
  Config.validate config;
  let source = Ba_proto.Source.create next_payload in
  let rec s =
    lazy
      {
        config;
        tx;
        source;
        buffer = Ba_util.Ring_buffer.create config.Config.window;
        timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              on_timeout (Lazy.force s));
        na = 0;
        ns = 0;
        retransmissions = 0;
      }
  in
  Lazy.force s

(* Cumulative acknowledgment: everything up to and including the decoded
   position is delivered. Bounded wire numbers are decoded as the unique
   position in [na - 1, na + w - 1] congruent to the wire number — which
   is exactly the ambiguity the paper's introduction exploits: a stale
   acknowledgment from an earlier window decodes to a recent position. *)
let decode_cumulative s wire =
  match s.config.Config.wire_modulus with
  | None -> Some wire
  | Some n ->
      let d = Ba_util.Modseq.distance ~n (Ba_util.Modseq.wrap ~n (s.na - 1)) wire in
      if d >= 1 && d <= s.config.Config.window then Some (s.na - 1 + d) else None

let sender_on_ack s { Wire.hi; lo = _; _ } =
  match decode_cumulative s hi with
  | None -> ()
  | Some y ->
      if y >= s.na && y < s.ns then begin
        while s.na <= y do
          Ba_util.Ring_buffer.remove s.buffer s.na;
          s.na <- s.na + 1
        done;
        if outstanding s = 0 then Ba_sim.Timer.stop s.timer;
        pump s
      end
      else if y >= s.ns then begin
        (* Unsound decode of a stale acknowledgment (bounded mode only):
           the textbook sender cannot tell and slides anyway — this is the
           misbehaviour the experiments demonstrate. *)
        while s.na <= min y (s.ns - 1) do
          Ba_util.Ring_buffer.remove s.buffer s.na;
          s.na <- s.na + 1
        done;
        if outstanding s = 0 then Ba_sim.Timer.stop s.timer;
        pump s
      end

let create_receiver _engine config ~tx ~deliver =
  Config.validate config;
  { r_config = config; r_tx = tx; r_deliver = deliver; nr = 0 }

(* The textbook receiver trusts every frame as-is: no checksum check, so
   an in-flight corruption is delivered verbatim — one of the
   misbehaviours the chaos campaign demonstrates. *)
let receiver_on_data r { Wire.seq; payload; _ } =
  let matches =
    match r.r_config.Config.wire_modulus with
    | None -> seq = r.nr
    | Some n -> seq = Ba_util.Modseq.wrap ~n r.nr
  in
  if matches then begin
    r.r_deliver payload;
    r.nr <- r.nr + 1;
    let w = encode r.r_config (r.nr - 1) in
    r.r_tx (Wire.make_ack ~lo:w ~hi:w)
  end
  else if r.nr > 0 then begin
    (* Out of order: discard and re-acknowledge the last in-order one. *)
    let w = encode r.r_config (r.nr - 1) in
    r.r_tx (Wire.make_ack ~lo:w ~hi:w)
  end

let sender_pump = pump
let sender_done s = outstanding s = 0 && Ba_proto.Source.exhausted s.source
let sender_outstanding = outstanding
let sender_retransmissions s = s.retransmissions
let ack_wire_bytes = Wire.ack_bytes_single

let protocol : Ba_proto.Protocol.t =
  (module struct
    let name = name

    type nonrec sender = sender
    type nonrec receiver = receiver

    let create_sender = create_sender
    let create_receiver = create_receiver
    let sender_on_ack = sender_on_ack
    let receiver_on_data = receiver_on_data
    let sender_pump = sender_pump
    let sender_done = sender_done
    let sender_outstanding = sender_outstanding
    let sender_retransmissions = sender_retransmissions
    let ack_wire_bytes = ack_wire_bytes

    include Ba_proto.Protocol.No_crash (struct
      let name = name

      type nonrec sender = sender
      type nonrec receiver = receiver
    end)

    include Ba_proto.Protocol.No_overload (struct
      type nonrec sender = sender
      type nonrec receiver = receiver
    end)
  end)
