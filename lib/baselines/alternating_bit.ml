module Wire = Ba_proto.Wire
module Config = Ba_proto.Proto_config

type sender = {
  tx : Wire.data -> unit;
  source : Ba_proto.Source.t;
  timer : Ba_sim.Timer.t;
  mutable bit : int;
  mutable current : string option;  (* in-flight payload awaiting its ack *)
  mutable retransmissions : int;
}

type receiver = {
  r_tx : Wire.ack -> unit;
  r_deliver : string -> unit;
  mutable expected : int;
}

let transmit s =
  match s.current with
  | None -> ()
  | Some payload ->
      s.tx (Wire.make_data ~seq:s.bit ~payload);
      Ba_sim.Timer.start s.timer

let pump s =
  if s.current = None then begin
    match Ba_proto.Source.next s.source with
    | None -> ()
    | Some payload ->
        s.current <- Some payload;
        transmit s
  end

let on_timeout s =
  if s.current <> None then begin
    s.retransmissions <- s.retransmissions + 1;
    transmit s
  end

let create_sender engine config ~tx ~next_payload =
  Config.validate config;
  let source = Ba_proto.Source.create next_payload in
  let rec s =
    lazy
      {
        tx;
        source;
        timer =
          Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
              on_timeout (Lazy.force s));
        bit = 0;
        current = None;
        retransmissions = 0;
      }
  in
  Lazy.force s

let sender_on_ack s { Wire.lo; hi = _; _ } =
  if s.current <> None && lo = s.bit then begin
    s.current <- None;
    s.bit <- 1 - s.bit;
    Ba_sim.Timer.stop s.timer;
    pump s
  end

let create_receiver _engine config ~tx ~deliver =
  Config.validate config;
  { r_tx = tx; r_deliver = deliver; expected = 0 }

let receiver_on_data r { Wire.seq; payload; _ } =
  if seq = r.expected then begin
    r.r_deliver payload;
    r.expected <- 1 - r.expected
  end;
  (* Ack the bit we saw, whether fresh or duplicate. *)
  r.r_tx (Wire.make_ack ~lo:seq ~hi:seq)

let protocol : Ba_proto.Protocol.t =
  (module struct
    let name = "alternating-bit"

    type nonrec sender = sender
    type nonrec receiver = receiver

    let create_sender = create_sender
    let create_receiver = create_receiver
    let sender_on_ack = sender_on_ack
    let receiver_on_data = receiver_on_data
    let sender_pump = pump
    let sender_done s = s.current = None && Ba_proto.Source.exhausted s.source
    let sender_outstanding s = if s.current = None then 0 else 1
    let sender_retransmissions s = s.retransmissions
    let ack_wire_bytes = Wire.ack_bytes_single

    include Ba_proto.Protocol.No_crash (struct
      let name = name

      type nonrec sender = sender
      type nonrec receiver = receiver
    end)

    include Ba_proto.Protocol.No_overload (struct
      type nonrec sender = sender
      type nonrec receiver = receiver
    end)
  end)
