(* Tests for the extension modules: the payload source, the RTT
   estimator, adaptive timeouts, the Section VI slot-reuse sender, the
   tracer, and shape checks over the experiment tables. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Engine = Ba_sim.Engine
module Wire = Ba_proto.Wire
module Config = Blockack.Config
module Harness = Ba_proto.Harness
module E = Ba_experiments.Experiments

(* ------------------------------------------------------------------ *)
(* Source *)

let test_source_passthrough () =
  let items = ref [ "a"; "b" ] in
  let supplier () =
    match !items with
    | [] -> None
    | x :: rest ->
        items := rest;
        Some x
  in
  let s = Ba_proto.Source.create supplier in
  check (Alcotest.option Alcotest.string) "first" (Some "a") (Ba_proto.Source.next s);
  check (Alcotest.option Alcotest.string) "second" (Some "b") (Ba_proto.Source.next s);
  check (Alcotest.option Alcotest.string) "empty" None (Ba_proto.Source.next s)

let test_source_exhausted_does_not_lose () =
  let items = ref [ "x" ] in
  let supplier () =
    match !items with
    | [] -> None
    | x :: rest ->
        items := rest;
        Some x
  in
  let s = Ba_proto.Source.create supplier in
  (* The exhaustion probe pulls "x" into the lookahead slot... *)
  check Alcotest.bool "not exhausted" false (Ba_proto.Source.exhausted s);
  (* ...and next must return it, not skip it. *)
  check (Alcotest.option Alcotest.string) "buffered item survives" (Some "x")
    (Ba_proto.Source.next s);
  check Alcotest.bool "now exhausted" true (Ba_proto.Source.exhausted s)

let test_source_replenished () =
  let items = ref [] in
  let supplier () =
    match !items with
    | [] -> None
    | x :: rest ->
        items := rest;
        Some x
  in
  let s = Ba_proto.Source.create supplier in
  check Alcotest.bool "exhausted while empty" true (Ba_proto.Source.exhausted s);
  items := [ "later" ];
  check Alcotest.bool "sees new data" false (Ba_proto.Source.exhausted s);
  check (Alcotest.option Alcotest.string) "delivers it" (Some "later") (Ba_proto.Source.next s)

(* ------------------------------------------------------------------ *)
(* Rtt_estimator *)

let test_rtt_initial () =
  let e = Blockack.Rtt_estimator.create ~initial_rto:500 () in
  check Alcotest.int "initial rto" 500 (Blockack.Rtt_estimator.rto e);
  check Alcotest.int "no samples" 0 (Blockack.Rtt_estimator.samples e)

let test_rtt_first_sample () =
  let e = Blockack.Rtt_estimator.create ~initial_rto:500 () in
  Blockack.Rtt_estimator.observe e 100;
  (* RFC 6298 init: srtt = 100, rttvar = 50, rto = 100 + 200 = 300. *)
  check (Alcotest.float 1e-9) "srtt" 100. (Blockack.Rtt_estimator.srtt e);
  check (Alcotest.float 1e-9) "rttvar" 50. (Blockack.Rtt_estimator.rttvar e);
  check Alcotest.int "rto" 300 (Blockack.Rtt_estimator.rto e)

let test_rtt_converges () =
  let e = Blockack.Rtt_estimator.create ~initial_rto:10_000 () in
  for _ = 1 to 200 do
    Blockack.Rtt_estimator.observe e 100
  done;
  (* Constant samples: srtt -> 100, rttvar -> 0, rto -> ~100. *)
  check Alcotest.bool "srtt near 100" true (abs_float (Blockack.Rtt_estimator.srtt e -. 100.) < 1.);
  check Alcotest.bool "rto near srtt" true (Blockack.Rtt_estimator.rto e < 120)

let test_rtt_clamping () =
  let e = Blockack.Rtt_estimator.create ~floor:200 ~ceiling:400 ~initial_rto:1000 () in
  check Alcotest.int "initial clamped to ceiling" 400 (Blockack.Rtt_estimator.rto e);
  for _ = 1 to 50 do
    Blockack.Rtt_estimator.observe e 1
  done;
  check Alcotest.int "floor respected" 200 (Blockack.Rtt_estimator.rto e)

let test_rtt_backoff () =
  let e = Blockack.Rtt_estimator.create ~ceiling:1000 ~initial_rto:300 () in
  Blockack.Rtt_estimator.backoff e;
  check Alcotest.int "doubled" 600 (Blockack.Rtt_estimator.rto e);
  Blockack.Rtt_estimator.backoff e;
  check Alcotest.int "ceiling caps" 1000 (Blockack.Rtt_estimator.rto e)

let test_rtt_validation () =
  Alcotest.check_raises "bad floor" (Invalid_argument "Rtt_estimator.create: floor must be positive")
    (fun () -> ignore (Blockack.Rtt_estimator.create ~floor:0 ~initial_rto:10 ()));
  let e = Blockack.Rtt_estimator.create ~initial_rto:10 () in
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Rtt_estimator.observe: negative sample") (fun () ->
      Blockack.Rtt_estimator.observe e (-1))

let test_adaptive_sender_tracks_rtt () =
  (* Grossly over-estimated initial rto; the sender's estimate must come
     down to the real round trip (~100-200) after a lossless run. *)
  let config = Config.make ~window:16 ~rto:5_000 ~adaptive_rto:true () in
  let engine = Engine.create ~seed:4 () in
  let sender = ref None and receiver = ref None in
  let delay = Ba_channel.Dist.Uniform (40, 60) in
  let data_link =
    Ba_channel.Link.create engine ~delay
      ~deliver:(fun d -> match !receiver with Some r -> Blockack.Receiver.on_data r d | None -> ())
      ()
  in
  let ack_link =
    Ba_channel.Link.create engine ~delay
      ~deliver:(fun a ->
        match !sender with Some s -> Blockack.Sender_multi.on_ack s a | None -> ())
      ()
  in
  let next = Ba_proto.Workload.supplier ~seed:1 ~size:16 ~count:300 in
  let s =
    Blockack.Sender_multi.create engine config ~tx:(Ba_channel.Link.send data_link)
      ~next_payload:next
  in
  let r =
    Blockack.Receiver.create engine config ~tx:(Ba_channel.Link.send ack_link)
      ~deliver:(fun _ -> ())
  in
  sender := Some s;
  receiver := Some r;
  Blockack.Sender_multi.pump s;
  Engine.run engine;
  check Alcotest.bool "done" true (Blockack.Sender_multi.is_done s);
  check Alcotest.bool "rto adapted down" true (Blockack.Sender_multi.rto_now s < 400);
  match Blockack.Sender_multi.srtt s with
  | Some srtt -> check Alcotest.bool "srtt plausible" true (srtt > 60. && srtt < 200.)
  | None -> Alcotest.fail "estimator should be active"

let test_adaptive_correct_under_loss () =
  let config = Config.make ~window:16 ~rto:250 ~adaptive_rto:true () in
  List.iter
    (fun seed ->
      let r =
        Harness.run Blockack.Protocols.multi ~seed ~messages:300 ~config ~data_loss:0.15
          ~ack_loss:0.15 ~data_delay:(Ba_channel.Dist.Uniform (20, 80))
          ~ack_delay:(Ba_channel.Dist.Uniform (20, 80)) ()
      in
      if not (Harness.correct r) then Alcotest.failf "seed %d incorrect" seed)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Reuse sender *)

let reuse_config = Config.make ~window:4 ~rto:200 ~wire_modulus:(Some 16) ()

let test_reuse_runs_ahead_of_gaps () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let s =
    Blockack.Reuse_sender.create engine reuse_config ~lead:8
      ~tx:(fun d -> Queue.add d sent)
      ~next_payload:(Ba_proto.Workload.supplier ~seed:0 ~size:8 ~count:20)
  in
  Blockack.Reuse_sender.pump s;
  check Alcotest.int "window of 4 sent" 4 (Queue.length sent);
  (* Ack 1..3 but not 0: a classic sender would be stuck at 4 in flight
     ending at seq 3; the reuse sender pushes on to seq 7. *)
  Blockack.Reuse_sender.on_ack s (Wire.make_ack ~lo:(1) ~hi:(3));
  check Alcotest.int "unacked budget refilled" 4 (Blockack.Reuse_sender.outstanding s);
  check Alcotest.int "ran ahead" 7 (Blockack.Reuse_sender.ns s);
  check Alcotest.int "na still blocked" 0 (Blockack.Reuse_sender.na s);
  (* The lead bound stops it at na + lead = 8 even with budget. *)
  Blockack.Reuse_sender.on_ack s (Wire.make_ack ~lo:(4) ~hi:(6));
  check Alcotest.int "lead bound caps ns" 8 (Blockack.Reuse_sender.ns s);
  (* Acking 0 releases everything. *)
  Blockack.Reuse_sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(0));
  check Alcotest.int "na jumps the whole run" 7 (Blockack.Reuse_sender.na s)

let test_reuse_requires_lead_ge_window () =
  let engine = Engine.create () in
  Alcotest.check_raises "lead < window"
    (Invalid_argument "Reuse_sender.create: lead must be >= window") (fun () ->
      ignore
        (Blockack.Reuse_sender.create engine reuse_config ~lead:2
           ~tx:(fun _ -> ())
           ~next_payload:(fun () -> None)))

let test_reuse_rejects_small_modulus () =
  let engine = Engine.create () in
  (* The flight band is lead wide, so reconstruction needs n >= 2*lead —
     stricter than Seqcodec's own 2w bound, and rejected with its own
     message before the codec ever sees the modulus. *)
  Alcotest.check_raises "n < 2*lead"
    (Invalid_argument "Reuse_sender.create: modulus 15 < 2*lead=16 loses information")
    (fun () ->
      ignore
        (Blockack.Reuse_sender.create engine
           (Config.make ~window:4 ~rto:200 ~wire_modulus:(Some 15) ())
           ~lead:8
           ~tx:(fun _ -> ())
           ~next_payload:(fun () -> None)))

let test_reuse_protocol_correct_e2e () =
  let config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:80 () in
  List.iter
    (fun (seed, loss) ->
      let r =
        Harness.run (Blockack.Protocols.reuse ()) ~seed ~messages:400 ~config ~data_loss:loss
          ~ack_loss:loss ~data_delay:(Ba_channel.Dist.Uniform (20, 80))
          ~ack_delay:(Ba_channel.Dist.Uniform (20, 80)) ()
      in
      if not (Harness.correct r) then Alcotest.failf "seed %d loss %.2f incorrect" seed loss)
    [ (1, 0.); (2, 0.1); (3, 0.25); (4, 0.25) ]

let test_reuse_beats_plain_under_loss () =
  let plain_config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 16) ~max_transit:60 () in
  let reuse_config = Config.make ~window:8 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:60 () in
  let delay = Ba_channel.Dist.Uniform (40, 60) in
  let run proto config =
    (Harness.run proto ~seed:5 ~messages:800 ~config ~data_loss:0.1 ~ack_loss:0.1
       ~data_delay:delay ~ack_delay:delay ())
      .Harness.ticks
  in
  let plain = run Blockack.Protocols.multi plain_config in
  let reuse = run (Blockack.Protocols.reuse ()) reuse_config in
  check Alcotest.bool
    (Printf.sprintf "reuse (%d) faster than plain (%d)" reuse plain)
    true (reuse < plain)

(* ------------------------------------------------------------------ *)
(* Dynamic (AIMD) window *)

let test_dynamic_window_ramps_and_halves () =
  let config = Config.make ~window:16 ~rto:200 ~dynamic_window:true () in
  let engine = Engine.create () in
  let sent = Queue.create () in
  let s =
    Blockack.Sender_multi.create engine config
      ~tx:(fun d -> Queue.add d sent)
      ~next_payload:(Ba_proto.Workload.supplier ~seed:0 ~size:8 ~count:100)
  in
  Blockack.Sender_multi.pump s;
  check Alcotest.int "starts at cwnd=1" 1 (Queue.length sent);
  check Alcotest.int "cwnd initial" 1 (Blockack.Sender_multi.cwnd s);
  (* Each full-cwnd acknowledgment grows the window by one. *)
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(0) ~hi:(0));
  check Alcotest.int "cwnd after first ack" 2 (Blockack.Sender_multi.cwnd s);
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(1) ~hi:(2));
  check Alcotest.int "cwnd grows" 3 (Blockack.Sender_multi.cwnd s);
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(3) ~hi:(5));
  check Alcotest.int "cwnd=4" 4 (Blockack.Sender_multi.cwnd s);
  (* Silence: timers expire, multiplicative decrease kicks in. *)
  Queue.clear sent;
  Ba_sim.Engine.run ~until:(Ba_sim.Engine.now engine + 250) engine;
  check Alcotest.bool "halved on timeout" true (Blockack.Sender_multi.cwnd s <= 2)

let test_dynamic_window_correct_over_bottleneck () =
  let config = Config.make ~window:64 ~rto:400 ~dynamic_window:true () in
  let r =
    Harness.run Blockack.Protocols.multi ~seed:3 ~messages:500 ~config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50)
      ~data_bottleneck:(10, 10) ()
  in
  check Alcotest.bool "correct" true (Harness.correct r)

let test_fixed_oversized_window_collapses_on_bottleneck () =
  (* The congestion-collapse half of ablation A2, pinned as a test. *)
  let run ~dynamic =
    let config = Config.make ~window:32 ~rto:400 ~dynamic_window:dynamic () in
    Harness.run Blockack.Protocols.multi ~seed:3 ~messages:300 ~config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50)
      ~data_bottleneck:(10, 10) ~deadline:1_000_000 ()
  in
  let fixed = run ~dynamic:false in
  let aimd = run ~dynamic:true in
  check Alcotest.bool "AIMD completes" true aimd.Harness.completed;
  check Alcotest.bool "AIMD avoids the retransmission storm" true
    (aimd.Harness.retransmissions * 10 < max 1 fixed.Harness.retransmissions)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let test_tracer_records_and_renders () =
  let t = Ba_trace.Tracer.create () in
  Ba_trace.Tracer.record t ~time:0 ~side:Ba_trace.Tracer.Sender "DATA 0 ->";
  Ba_trace.Tracer.record t ~time:50 ~side:Ba_trace.Tracer.Receiver "-> DATA 0";
  check Alcotest.int "two events" 2 (List.length (Ba_trace.Tracer.events t));
  let rendered = Ba_trace.Tracer.render t in
  check Alcotest.bool "mentions both" true
    (String.length rendered > 0
    && String.index_opt rendered 'D' <> None
    && List.length (String.split_on_char '\n' rendered) >= 4)

let test_tracer_time_window () =
  let t = Ba_trace.Tracer.create () in
  List.iter
    (fun time -> Ba_trace.Tracer.record t ~time ~side:Ba_trace.Tracer.Sender "x")
    [ 10; 20; 30; 40 ];
  let windowed = Ba_trace.Tracer.render ~from_time:15 ~until_time:35 t in
  let lines = List.length (String.split_on_char '\n' windowed) in
  (* header + rule + 2 events + trailing newline *)
  check Alcotest.int "window filters" 5 lines

let test_tracer_capacity () =
  let t = Ba_trace.Tracer.create ~capacity:10 () in
  for i = 1 to 100 do
    Ba_trace.Tracer.record t ~time:i ~side:Ba_trace.Tracer.Sender "e"
  done;
  check Alcotest.bool "bounded" true (List.length (Ba_trace.Tracer.events t) <= 10);
  Ba_trace.Tracer.clear t;
  check Alcotest.int "cleared" 0 (List.length (Ba_trace.Tracer.events t))

(* ------------------------------------------------------------------ *)
(* Duplex with piggybacked acknowledgments *)

let test_duplex_bidirectional_in_order () =
  let got_a = ref [] and got_b = ref [] in
  let d =
    Blockack.Duplex.create ~seed:8 ~loss:0.1
      ~on_receive_a:(fun m -> got_a := m :: !got_a)
      ~on_receive_b:(fun m -> got_b := m :: !got_b)
      ()
  in
  for i = 1 to 100 do
    Blockack.Duplex.send (Blockack.Duplex.a d) (Printf.sprintf "a->b %d" i);
    Blockack.Duplex.send (Blockack.Duplex.b d) (Printf.sprintf "b->a %d" i)
  done;
  Blockack.Duplex.run d;
  check Alcotest.bool "idle" true (Blockack.Duplex.idle d);
  check
    (Alcotest.list Alcotest.string)
    "A received B's stream in order"
    (List.init 100 (fun i -> Printf.sprintf "b->a %d" (i + 1)))
    (List.rev !got_a);
  check
    (Alcotest.list Alcotest.string)
    "B received A's stream in order"
    (List.init 100 (fun i -> Printf.sprintf "a->b %d" (i + 1)))
    (List.rev !got_b)

let test_duplex_piggybacks () =
  (* Piggybacking needs traffic in flight when acknowledgments arise, so
     drive a paced conversation (one message every 20 ticks each way)
     rather than a single burst — with bursts both windows are full
     exactly when acks are pending, and nothing can carry them. *)
  let d =
    (* Hold acks slightly longer than the app's 20-tick pacing so the
       next data frame can pick them up. *)
    Blockack.Duplex.create ~seed:3 ~piggyback_hold:25
      ~on_receive_a:(fun _ -> ())
      ~on_receive_b:(fun _ -> ())
      ()
  in
  let engine = Blockack.Duplex.engine d in
  for i = 1 to 200 do
    ignore
      (Ba_sim.Engine.schedule engine ~delay:(i * 20) (fun () ->
           Blockack.Duplex.send (Blockack.Duplex.a d) (Printf.sprintf "a%d" i);
           Blockack.Duplex.send (Blockack.Duplex.b d) (Printf.sprintf "b%d" i)))
  done;
  Blockack.Duplex.run d;
  check Alcotest.bool "idle" true (Blockack.Duplex.idle d);
  let sa = Blockack.Duplex.stats (Blockack.Duplex.a d) in
  check Alcotest.bool
    (Printf.sprintf "most acks ride on data (piggy=%d pure=%d)"
       sa.Blockack.Duplex.piggybacked_acks sa.Blockack.Duplex.pure_ack_frames)
    true
    (sa.Blockack.Duplex.piggybacked_acks > sa.Blockack.Duplex.pure_ack_frames);
  check Alcotest.int "no retransmissions lossless" 0 sa.Blockack.Duplex.retransmissions;
  (* The acknowledgment channel is then nearly free. *)
  check Alcotest.bool "frame overhead below 25%" true
    (sa.Blockack.Duplex.frames_sent * 100 < sa.Blockack.Duplex.data_frames * 125)

let test_duplex_one_sided_still_acks () =
  (* No reverse data: every ack must eventually go out as a pure frame. *)
  let got = ref 0 in
  let d =
    Blockack.Duplex.create ~seed:4
      ~on_receive_a:(fun _ -> ())
      ~on_receive_b:(fun _ -> incr got)
      ()
  in
  for i = 1 to 50 do
    Blockack.Duplex.send (Blockack.Duplex.a d) (string_of_int i)
  done;
  Blockack.Duplex.run d;
  check Alcotest.int "all delivered" 50 !got;
  check Alcotest.bool "idle" true (Blockack.Duplex.idle d);
  let sb = Blockack.Duplex.stats (Blockack.Duplex.b d) in
  check Alcotest.bool "B sent pure acks" true (sb.Blockack.Duplex.pure_ack_frames > 0);
  check Alcotest.int "B sent no data" 0 sb.Blockack.Duplex.data_frames

let test_duplex_lossy_both_ways () =
  let d =
    Blockack.Duplex.create ~seed:11 ~loss:0.2
      ~config:(Blockack.Config.make ~window:8 ~rto:400 ~wire_modulus:(Some 16) ())
      ~on_receive_a:(fun _ -> ())
      ~on_receive_b:(fun _ -> ())
      ()
  in
  for i = 1 to 150 do
    Blockack.Duplex.send (Blockack.Duplex.a d) (Printf.sprintf "x%d" i);
    if i mod 3 = 0 then Blockack.Duplex.send (Blockack.Duplex.b d) (Printf.sprintf "y%d" i)
  done;
  Blockack.Duplex.run d;
  check Alcotest.bool "completes under loss" true (Blockack.Duplex.idle d)

let prop_duplex_always_correct =
  QCheck.Test.make ~name:"duplex delivers both directions in order for any seed/loss" ~count:20
    QCheck.(pair (int_range 1 100_000) (int_bound 20))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let got_a = ref [] and got_b = ref [] in
      let d =
        Blockack.Duplex.create ~seed ~loss
          ~on_receive_a:(fun m -> got_a := m :: !got_a)
          ~on_receive_b:(fun m -> got_b := m :: !got_b)
          ()
      in
      let n = 60 in
      for i = 1 to n do
        Blockack.Duplex.send (Blockack.Duplex.a d) (Printf.sprintf "a%d" i);
        if i mod 2 = 0 then Blockack.Duplex.send (Blockack.Duplex.b d) (Printf.sprintf "b%d" i)
      done;
      Blockack.Duplex.run ~until:10_000_000 d;
      Blockack.Duplex.idle d
      && List.rev !got_b = List.init n (fun i -> Printf.sprintf "a%d" (i + 1))
      && List.rev !got_a = List.init (n / 2) (fun i -> Printf.sprintf "b%d" (2 * (i + 1))))

let prop_engine_fires_in_time_order =
  QCheck.Test.make ~name:"engine fires any schedule in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 500))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d -> ignore (Ba_sim.Engine.schedule e ~delay:d (fun () -> fired := Engine.now e :: !fired)))
        delays;
      Engine.run e;
      let times = List.rev !fired in
      List.length times = List.length delays
      && List.sort compare times = times
      && List.sort compare times = List.sort compare delays)

(* ------------------------------------------------------------------ *)
(* Experiment tables: structural sanity + headline shapes (quick mode). *)

let row_count t = List.length t.E.rows

let test_tables_well_formed () =
  List.iter
    (fun t ->
      check Alcotest.bool (t.E.id ^ " has rows") true (row_count t > 0);
      let arity = List.length t.E.headers in
      List.iter
        (fun row -> check Alcotest.int (t.E.id ^ " row arity") arity (List.length row))
        t.E.rows)
    (E.all ~quick:true ())

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_t1_shape () =
  let t = E.t1_intro_scenario () in
  match t.E.rows with
  | [ gbn; ba ] ->
      check Alcotest.bool "gbn violated" true (contains ~needle:"VIOLATED" (List.nth gbn 2));
      check Alcotest.string "blockack safe" "safe" (List.nth ba 2)
  | _ -> Alcotest.fail "T1 must have exactly two rows"

let test_t2_shape () =
  let t = E.t2_verification ~quick:true () in
  List.iter
    (fun row -> check Alcotest.string "every row matches the paper" "as proven" (List.nth row 5))
    t.E.rows

let test_f3_shape () =
  let t = E.f3_recovery_time ~quick:true () in
  (* Simple recovery time grows with b; multi stays flat. *)
  let nth_int row i = int_of_string (List.nth row i) in
  let simples = List.map (fun r -> nth_int r 1) t.E.rows in
  let multis = List.map (fun r -> nth_int r 2) t.E.rows in
  check Alcotest.bool "simple grows" true (List.nth simples (List.length simples - 1) > List.hd simples * 2);
  let mmin = List.fold_left min max_int multis and mmax = List.fold_left max 0 multis in
  check Alcotest.bool "multi flat" true (mmax - mmin < 200)

let test_f5_shape () =
  let t = E.f5_slot_reuse ~quick:true () in
  (* At the highest loss the reuse gain must be positive. *)
  let last = List.nth t.E.rows (row_count t - 1) in
  let gain = List.nth last 3 in
  check Alcotest.bool "positive gain under loss" true (gain.[0] = '+' && gain <> "+0%")

let () =
  Alcotest.run "extras"
    [
      ( "source",
        [
          Alcotest.test_case "passthrough" `Quick test_source_passthrough;
          Alcotest.test_case "exhausted does not lose" `Quick test_source_exhausted_does_not_lose;
          Alcotest.test_case "replenished" `Quick test_source_replenished;
        ] );
      ( "rtt_estimator",
        [
          Alcotest.test_case "initial" `Quick test_rtt_initial;
          Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
          Alcotest.test_case "converges" `Quick test_rtt_converges;
          Alcotest.test_case "clamping" `Quick test_rtt_clamping;
          Alcotest.test_case "backoff" `Quick test_rtt_backoff;
          Alcotest.test_case "validation" `Quick test_rtt_validation;
          Alcotest.test_case "adaptive sender tracks rtt" `Quick test_adaptive_sender_tracks_rtt;
          Alcotest.test_case "adaptive correct under loss" `Quick test_adaptive_correct_under_loss;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "runs ahead of gaps" `Quick test_reuse_runs_ahead_of_gaps;
          Alcotest.test_case "lead >= window required" `Quick test_reuse_requires_lead_ge_window;
          Alcotest.test_case "modulus < 2*lead rejected" `Quick test_reuse_rejects_small_modulus;
          Alcotest.test_case "correct end to end" `Quick test_reuse_protocol_correct_e2e;
          Alcotest.test_case "beats plain under loss" `Quick test_reuse_beats_plain_under_loss;
        ] );
      ( "dynamic_window",
        [
          Alcotest.test_case "ramps and halves" `Quick test_dynamic_window_ramps_and_halves;
          Alcotest.test_case "correct over bottleneck" `Quick
            test_dynamic_window_correct_over_bottleneck;
          Alcotest.test_case "fixed oversized window collapses" `Quick
            test_fixed_oversized_window_collapses_on_bottleneck;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "records and renders" `Quick test_tracer_records_and_renders;
          Alcotest.test_case "time window" `Quick test_tracer_time_window;
          Alcotest.test_case "capacity bound" `Quick test_tracer_capacity;
        ] );
      ( "duplex",
        [
          Alcotest.test_case "bidirectional in order" `Quick test_duplex_bidirectional_in_order;
          Alcotest.test_case "piggybacks acks on data" `Quick test_duplex_piggybacks;
          Alcotest.test_case "one-sided still acks" `Quick test_duplex_one_sided_still_acks;
          Alcotest.test_case "lossy both ways" `Quick test_duplex_lossy_both_ways;
          qcheck prop_duplex_always_correct;
          qcheck prop_engine_fires_in_time_order;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "tables well formed" `Quick test_tables_well_formed;
          Alcotest.test_case "T1 shape" `Quick test_t1_shape;
          Alcotest.test_case "T2 shape" `Quick test_t2_shape;
          Alcotest.test_case "F3 shape" `Quick test_f3_shape;
          Alcotest.test_case "F5 shape" `Quick test_f5_shape;
        ] );
    ]

let _ = qcheck
