(* Tests for delay distributions, the lossy/reordering link and the
   formal multiset channel. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Dist = Ba_channel.Dist
module Link = Ba_channel.Link
module M = Ba_channel.Multiset
module Engine = Ba_sim.Engine

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_dist_constant () =
  let rng = Ba_util.Rng.create 1 in
  for _ = 1 to 20 do
    check Alcotest.int "constant" 42 (Dist.sample (Dist.Constant 42) rng)
  done;
  check Alcotest.int "max" 42 (Dist.max_delay (Dist.Constant 42));
  check (Alcotest.float 1e-9) "mean" 42. (Dist.mean (Dist.Constant 42))

let test_dist_uniform_bounds () =
  let rng = Ba_util.Rng.create 2 in
  let d = Dist.Uniform (10, 20) in
  for _ = 1 to 1_000 do
    let v = Dist.sample d rng in
    if v < 10 || v > 20 then Alcotest.failf "uniform out of bounds: %d" v
  done;
  check Alcotest.int "max" 20 (Dist.max_delay d);
  check (Alcotest.float 1e-9) "mean" 15. (Dist.mean d)

let test_dist_texp_capped () =
  let rng = Ba_util.Rng.create 3 in
  let d = Dist.Truncated_exp { mean = 30.; cap = 100 } in
  for _ = 1 to 5_000 do
    let v = Dist.sample d rng in
    if v < 0 || v > 100 then Alcotest.failf "texp out of bounds: %d" v
  done;
  check Alcotest.int "max" 100 (Dist.max_delay d)

let test_dist_validation () =
  let rng = Ba_util.Rng.create 1 in
  Alcotest.check_raises "negative constant" (Invalid_argument "Dist: negative delay") (fun () ->
      ignore (Dist.sample (Dist.Constant (-1)) rng));
  Alcotest.check_raises "bad uniform" (Invalid_argument "Dist: bad uniform range") (fun () ->
      ignore (Dist.sample (Dist.Uniform (5, 2)) rng))

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_delivers_all_lossless () =
  let e = Engine.create () in
  let got = ref [] in
  let l = Link.create e ~delay:(Dist.Constant 10) ~deliver:(fun m -> got := m :: !got) () in
  for i = 0 to 99 do
    Link.send l i
  done;
  Engine.run e;
  check Alcotest.int "all delivered" 100 (List.length !got);
  let s = Link.stats l in
  check Alcotest.int "sent" 100 s.Link.sent;
  check Alcotest.int "delivered" 100 s.Link.delivered;
  check Alcotest.int "dropped" 0 s.Link.dropped

let test_link_constant_delay_preserves_order () =
  let e = Engine.create () in
  let got = ref [] in
  let l = Link.create e ~delay:(Dist.Constant 10) ~deliver:(fun m -> got := m :: !got) () in
  for i = 0 to 49 do
    Link.send l i
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO under constant delay"
    (List.init 50 (fun i -> i))
    (List.rev !got);
  check Alcotest.int "no reorder counted" 0 (Link.stats l).Link.reordered

let test_link_loss_all () =
  let e = Engine.create () in
  let got = ref 0 in
  let l = Link.create e ~loss:1.0 ~deliver:(fun _ -> incr got) () in
  for i = 0 to 9 do
    Link.send l i
  done;
  Engine.run e;
  check Alcotest.int "nothing delivered" 0 !got;
  check Alcotest.int "all dropped" 10 (Link.stats l).Link.dropped

let test_link_loss_rate () =
  let e = Engine.create ~seed:5 () in
  let l = Link.create e ~loss:0.25 ~deliver:(fun _ -> ()) () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    Link.send l i
  done;
  Engine.run e;
  let rate = float_of_int (Link.stats l).Link.dropped /. float_of_int n in
  if abs_float (rate -. 0.25) > 0.02 then Alcotest.failf "loss rate %f too far from 0.25" rate

let test_link_jitter_reorders () =
  let e = Engine.create ~seed:9 () in
  let l = Link.create e ~delay:(Dist.Uniform (1, 100)) ~deliver:(fun _ -> ()) () in
  for i = 0 to 499 do
    Link.send l i
  done;
  Engine.run e;
  check Alcotest.bool "jitter produced reorder" true ((Link.stats l).Link.reordered > 0)

let test_link_fault_hook () =
  let e = Engine.create () in
  let got = ref [] in
  let l = Link.create e ~delay:(Dist.Constant 1) ~deliver:(fun m -> got := m :: !got) () in
  Link.set_fault l (fun m -> if m mod 2 = 0 then Link.Drop else Link.Deliver);
  for i = 0 to 9 do
    Link.send l i
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "odd survive" [ 1; 3; 5; 7; 9 ] (List.sort compare !got);
  Link.clear_fault l;
  Link.send l 2;
  Engine.run e;
  check Alcotest.bool "hook cleared" true (List.mem 2 !got)

let test_link_in_flight () =
  let e = Engine.create () in
  let l = Link.create e ~delay:(Dist.Constant 50) ~deliver:(fun _ -> ()) () in
  Link.send l 1;
  Link.send l 2;
  check Alcotest.int "two in flight" 2 (Link.in_flight l);
  Engine.run e;
  check Alcotest.int "none in flight" 0 (Link.in_flight l)

let test_link_max_delay () =
  let e = Engine.create () in
  let l = Link.create e ~delay:(Dist.Uniform (3, 77)) ~deliver:(fun _ -> ()) () in
  check Alcotest.int "bound exposed" 77 (Link.max_delay l)

let test_link_rejects_bad_loss () =
  let e = Engine.create () in
  Alcotest.check_raises "loss > 1" (Invalid_argument "Link.create: loss must be in [0,1]")
    (fun () -> ignore (Link.create e ~loss:1.5 ~deliver:(fun (_ : int) -> ()) ()))

(* Bottleneck queue *)

let test_bottleneck_paces_delivery () =
  let e = Engine.create () in
  let times = ref [] in
  let l =
    Link.create e ~delay:(Dist.Constant 0) ~bottleneck:(10, 100)
      ~deliver:(fun m -> times := (m, Engine.now e) :: !times)
      ()
  in
  for i = 0 to 4 do
    Link.send l i
  done;
  Engine.run e;
  (* One message every 10 ticks, FIFO. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "service pacing"
    [ (0, 10); (1, 20); (2, 30); (3, 40); (4, 50) ]
    (List.rev !times)

let test_bottleneck_tail_drop () =
  let e = Engine.create () in
  let got = ref 0 in
  let l =
    Link.create e ~delay:(Dist.Constant 1) ~bottleneck:(10, 3) ~deliver:(fun _ -> incr got) ()
  in
  (* Burst of 10 into a queue of 3 (plus 1 in service): 4 survive. *)
  for i = 0 to 9 do
    Link.send l i
  done;
  check Alcotest.int "queue full" 3 (Link.queue_length l);
  Engine.run e;
  check Alcotest.int "survivors" 4 !got;
  check Alcotest.int "tail drops counted" 6 (Link.stats l).Link.queue_dropped;
  check Alcotest.int "random drops separate" 0 (Link.stats l).Link.dropped

let test_bottleneck_drains_then_idles () =
  let e = Engine.create () in
  let got = ref 0 in
  let l =
    Link.create e ~delay:(Dist.Constant 5) ~bottleneck:(10, 8) ~deliver:(fun _ -> incr got) ()
  in
  Link.send l 1;
  Engine.run e;
  check Alcotest.int "first batch" 1 !got;
  (* After idling, a later send still works. *)
  Link.send l 2;
  Engine.run e;
  check Alcotest.int "second batch" 2 !got

let test_bottleneck_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "bad bottleneck"
    (Invalid_argument "Link.create: bottleneck needs positive service time and capacity")
    (fun () -> ignore (Link.create e ~bottleneck:(0, 5) ~deliver:(fun (_ : int) -> ()) ()))

(* ------------------------------------------------------------------ *)
(* Fault plans *)

module FP = Ba_channel.Fault_plan

let test_plan_validation () =
  Alcotest.check_raises "bad duplicate prob"
    (Invalid_argument "Fault_plan: duplicate probability 1.5 outside [0,1]") (fun () ->
      ignore (FP.make ~duplicate:1.5 ()));
  Alcotest.check_raises "copies < 2" (Invalid_argument "Fault_plan: copies must be >= 2")
    (fun () -> ignore (FP.make ~copies:1 ()));
  Alcotest.check_raises "empty outage"
    (Invalid_argument "Fault_plan: outage needs 0 <= from_tick < until_tick") (fun () ->
      ignore (FP.make ~outages:[ { FP.from_tick = 10; until_tick = 10 } ] ()));
  Alcotest.check_raises "absorbing bad state"
    (Invalid_argument "Fault_plan: absorbing bad state with total loss never delivers again")
    (fun () ->
      ignore
        (FP.make
           ~bursty:{ FP.p_enter_bad = 0.1; p_exit_bad = 0.; loss_good = 0.; loss_bad = 1. }
           ()))

let test_plan_none_always_delivers () =
  let i = FP.instantiate FP.none ~rng:(Ba_util.Rng.create 7) in
  for _ = 1 to 1_000 do
    match FP.decide i with
    | FP.Deliver -> ()
    | _ -> Alcotest.fail "empty plan produced a non-Deliver verdict"
  done

let test_plan_pp_replay_key () =
  let plan =
    FP.make
      ~bursty:{ FP.p_enter_bad = 0.05; p_exit_bad = 0.2; loss_good = 0.; loss_bad = 0.8 }
      ~duplicate:0.1 ~outages:[ { FP.from_tick = 2000; until_tick = 4000 } ] ()
  in
  check Alcotest.string "replay key" "ge(0.050->0.200,l=0.00/0.80)+dup(0.10x2)+out[2000,4000)"
    (Format.asprintf "%a" FP.pp plan);
  check Alcotest.string "empty key" "none" (Format.asprintf "%a" FP.pp FP.none)

let roundtrip name plan =
  let key = Format.asprintf "%a" FP.pp plan in
  match FP.of_string key with
  | Error msg -> Alcotest.failf "%s: %S did not parse: %s" name key msg
  | Ok p ->
      check Alcotest.string (name ^ " renders back identically") key
        (Format.asprintf "%a" FP.pp p)

let test_plan_of_string_roundtrip () =
  roundtrip "none" FP.none;
  roundtrip "bursty"
    (FP.make
       ~bursty:{ FP.p_enter_bad = 0.05; p_exit_bad = 0.2; loss_good = 0.01; loss_bad = 0.8 }
       ());
  roundtrip "dup" (FP.make ~duplicate:0.25 ~copies:3 ());
  roundtrip "corrupt" (FP.make ~corrupt:0.15 ());
  roundtrip "spike" (FP.make ~delay_spike:(0.3, 350) ());
  roundtrip "outages"
    (FP.make
       ~outages:
         [ { FP.from_tick = 100; until_tick = 400 }; { FP.from_tick = 900; until_tick = 1200 } ]
       ());
  roundtrip "everything"
    (FP.make
       ~bursty:{ FP.p_enter_bad = 0.05; p_exit_bad = 0.2; loss_good = 0.; loss_bad = 0.8 }
       ~duplicate:0.1 ~corrupt:0.05 ~delay_spike:(0.2, 250)
       ~outages:[ { FP.from_tick = 2000; until_tick = 4000 } ]
       ())

let test_plan_of_string_campaign_keys () =
  (* Every replay key the chaos campaign can print must parse back — the
     whole point of ba_chaos --replay. *)
  let module Chaos = Ba_verify.Chaos in
  List.iter
    (fun fault ->
      List.iter
        (fun seed ->
          let data_plan, ack_plan = Chaos.plans_for fault ~seed in
          roundtrip (Chaos.class_name fault ^ " data plan") data_plan;
          roundtrip (Chaos.class_name fault ^ " ack plan") ack_plan)
        [ 1; 5; 17; 42 ])
    Chaos.all_classes

let test_plan_of_string_rejects_garbage () =
  let is_error = function Error _ -> true | Ok _ -> false in
  check Alcotest.bool "unknown token" true (is_error (FP.of_string "gremlins(0.5)"));
  check Alcotest.bool "duplicate singleton fault" true
    (is_error (FP.of_string "corr(0.10)+corr(0.20)"));
  check Alcotest.bool "invalid probability" true (is_error (FP.of_string "corr(1.50)"));
  check Alcotest.bool "empty outage" true (is_error (FP.of_string "out[10,10)"))

(* The realized Gilbert-Elliott burst lengths must match the configured
   means: mean bad burst = 1/p_exit_bad, mean good run = 1/p_enter_bad
   (equivalently, bad-state occupancy = p_enter/(p_enter + p_exit)). *)
let test_ge_burst_lengths () =
  let g = { FP.p_enter_bad = 0.1; p_exit_bad = 0.25; loss_good = 0.; loss_bad = 1. } in
  let i = FP.instantiate (FP.make ~bursty:g ()) ~rng:(Ba_util.Rng.create 11) in
  let steps = 200_000 in
  for _ = 1 to steps do
    ignore (FP.decide i)
  done;
  let s = FP.burst_stats i in
  check Alcotest.int "steps counted" steps s.FP.steps;
  let mean_burst = float_of_int s.FP.bad_steps /. float_of_int s.FP.bad_entries in
  let expected_burst = 1. /. g.FP.p_exit_bad in
  if abs_float (mean_burst -. expected_burst) > 0.3 then
    Alcotest.failf "mean burst %.2f too far from %.2f" mean_burst expected_burst;
  let occupancy = float_of_int s.FP.bad_steps /. float_of_int steps in
  let expected_occ = g.FP.p_enter_bad /. (g.FP.p_enter_bad +. g.FP.p_exit_bad) in
  if abs_float (occupancy -. expected_occ) > 0.02 then
    Alcotest.failf "bad occupancy %.3f too far from %.3f" occupancy expected_occ

let test_ge_loss_follows_state () =
  (* loss_bad = 1, loss_good = 0: every Drop must come from a bad step. *)
  let g = { FP.p_enter_bad = 0.2; p_exit_bad = 0.3; loss_good = 0.; loss_bad = 1. } in
  let i = FP.instantiate (FP.make ~bursty:g ()) ~rng:(Ba_util.Rng.create 13) in
  let drops = ref 0 in
  for _ = 1 to 50_000 do
    match FP.decide i with FP.Drop -> incr drops | _ -> ()
  done;
  check Alcotest.int "drops = bad steps" (FP.burst_stats i).FP.bad_steps !drops

let test_link_duplicate_stats () =
  let e = Engine.create ~seed:21 () in
  let got = ref 0 in
  let l = Link.create e ~delay:(Dist.Constant 5) ~deliver:(fun _ -> incr got) () in
  Link.set_plan l (FP.make ~duplicate:1.0 ~copies:3 ());
  for i = 0 to 99 do
    Link.send l i
  done;
  Engine.run e;
  check Alcotest.int "every message tripled" 300 !got;
  let s = Link.stats l in
  check Alcotest.int "extra copies counted" 200 s.Link.duplicated;
  check Alcotest.int "deliveries counted" 300 s.Link.delivered;
  check Alcotest.int "no random drops" 0 s.Link.dropped

let test_link_corrupt_stats_and_mangling () =
  let e = Engine.create ~seed:22 () in
  let got = ref [] in
  let l =
    Link.create e ~delay:(Dist.Constant 5) ~corrupt:(fun x -> -x)
      ~deliver:(fun m -> got := m :: !got)
      ()
  in
  Link.set_plan l (FP.make ~corrupt:1.0 ());
  for i = 1 to 10 do
    Link.send l i
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "all mangled"
    (List.init 10 (fun i -> i - 10))
    (List.sort compare !got);
  check Alcotest.int "corruptions counted" 10 (Link.stats l).Link.corrupted

let test_link_outage_window () =
  let e = Engine.create ~seed:23 () in
  let got = ref [] in
  let l = Link.create e ~delay:(Dist.Constant 1) ~deliver:(fun m -> got := m :: !got) () in
  Link.set_plan l (FP.make ~outages:[ { FP.from_tick = 100; until_tick = 200 } ] ());
  let send_at at tag = ignore (Ba_sim.Engine.schedule_at e ~at (fun () -> Link.send l tag)) in
  send_at 50 `Before;
  send_at 100 `During;
  send_at 199 `During2;
  send_at 200 `After;
  Engine.run e;
  check Alcotest.int "only outside the window" 2 (List.length !got);
  check Alcotest.bool "before survives" true (List.mem `Before !got);
  check Alcotest.bool "after survives" true (List.mem `After !got);
  let s = Link.stats l in
  check Alcotest.int "outage drops counted apart" 2 s.Link.outage_drops;
  check Alcotest.int "not mixed into random drops" 0 s.Link.dropped

let test_link_delay_spike_verdict () =
  let e = Engine.create ~seed:24 () in
  let at = ref (-1) in
  let l = Link.create e ~delay:(Dist.Constant 10) ~deliver:(fun () -> at := Engine.now e) () in
  Link.set_plan l (FP.make ~delay_spike:(1.0, 100) ());
  Link.send l ();
  Engine.run e;
  check Alcotest.int "base + spike" 110 !at

let test_link_hook_overrides_plan () =
  let e = Engine.create ~seed:25 () in
  let got = ref 0 in
  let l = Link.create e ~delay:(Dist.Constant 1) ~deliver:(fun _ -> incr got) () in
  Link.set_plan l (FP.make ~duplicate:1.0 ~copies:2 ());
  Link.set_fault l (fun _ -> Link.Drop);
  Link.send l 1;
  Engine.run e;
  check Alcotest.int "scripted drop wins over plan" 0 !got;
  Link.clear_fault l;
  Link.send l 2;
  Engine.run e;
  check Alcotest.int "plan resumes" 2 !got

(* ------------------------------------------------------------------ *)
(* Multiset *)

let test_multiset_basic () =
  let m = M.empty in
  check Alcotest.bool "empty" true (M.is_empty m);
  let m = M.add 3 (M.add 1 (M.add 3 m)) in
  check Alcotest.int "cardinal" 3 (M.cardinal m);
  check Alcotest.int "count 3" 2 (M.count 3 m);
  check Alcotest.bool "mem" true (M.mem 1 m);
  check (Alcotest.list Alcotest.int) "distinct sorted" [ 1; 3 ] (M.distinct m);
  check (Alcotest.list Alcotest.int) "elements with multiplicity" [ 1; 3; 3 ] (M.elements m)

let test_multiset_remove () =
  let m = M.of_list [ 5; 5; 7 ] in
  let m = M.remove 5 m in
  check Alcotest.int "one occurrence removed" 1 (M.count 5 m);
  let m = M.remove 5 m in
  check Alcotest.bool "gone" false (M.mem 5 m);
  let m = M.remove 99 m in
  check Alcotest.int "remove absent is noop" 1 (M.cardinal m)

let test_multiset_canonical_equality () =
  let a = M.add 1 (M.add 2 M.empty) and b = M.add 2 (M.add 1 M.empty) in
  check Alcotest.bool "order-insensitive equality" true (a = b);
  check Alcotest.bool "same hash" true (Hashtbl.hash a = Hashtbl.hash b)

let test_multiset_predicates () =
  let m = M.of_list [ 2; 4; 4; 6 ] in
  check Alcotest.bool "for_all even" true (M.for_all (fun x -> x mod 2 = 0) m);
  check Alcotest.bool "exists > 5" true (M.exists (fun x -> x > 5) m);
  check Alcotest.int "filter_count" 3 (M.filter_count (fun x -> x >= 4) m)

let test_multiset_fold () =
  let m = M.of_list [ 1; 1; 2 ] in
  let total = M.fold (fun x k acc -> acc + (x * k)) m 0 in
  check Alcotest.int "weighted fold" 4 total

let prop_multiset_matches_sorted_list =
  QCheck.Test.make ~name:"multiset elements = sorted inserts minus removes" ~count:300
    QCheck.(pair (list (int_bound 20)) (list (int_bound 20)))
    (fun (adds, removes) ->
      let m = List.fold_left (fun m x -> M.add x m) M.empty adds in
      let m = List.fold_left (fun m x -> M.remove x m) m removes in
      let reference =
        List.fold_left
          (fun acc x ->
            let rec remove_one = function
              | [] -> []
              | y :: rest -> if y = x then rest else y :: remove_one rest
            in
            remove_one acc)
          (List.sort compare adds) removes
      in
      M.elements m = List.sort compare reference)

let () =
  Alcotest.run "ba_channel"
    [
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "uniform bounds" `Quick test_dist_uniform_bounds;
          Alcotest.test_case "texp capped" `Quick test_dist_texp_capped;
          Alcotest.test_case "validation" `Quick test_dist_validation;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivers all lossless" `Quick test_link_delivers_all_lossless;
          Alcotest.test_case "constant delay preserves order" `Quick
            test_link_constant_delay_preserves_order;
          Alcotest.test_case "loss all" `Quick test_link_loss_all;
          Alcotest.test_case "loss rate" `Slow test_link_loss_rate;
          Alcotest.test_case "jitter reorders" `Quick test_link_jitter_reorders;
          Alcotest.test_case "fault hook" `Quick test_link_fault_hook;
          Alcotest.test_case "in flight" `Quick test_link_in_flight;
          Alcotest.test_case "max delay" `Quick test_link_max_delay;
          Alcotest.test_case "rejects bad loss" `Quick test_link_rejects_bad_loss;
          Alcotest.test_case "bottleneck paces delivery" `Quick test_bottleneck_paces_delivery;
          Alcotest.test_case "bottleneck tail drop" `Quick test_bottleneck_tail_drop;
          Alcotest.test_case "bottleneck drains then idles" `Quick
            test_bottleneck_drains_then_idles;
          Alcotest.test_case "bottleneck validation" `Quick test_bottleneck_validation;
        ] );
      ( "fault_plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "none always delivers" `Quick test_plan_none_always_delivers;
          Alcotest.test_case "pp replay key" `Quick test_plan_pp_replay_key;
          Alcotest.test_case "of_string roundtrip" `Quick test_plan_of_string_roundtrip;
          Alcotest.test_case "of_string parses campaign keys" `Quick
            test_plan_of_string_campaign_keys;
          Alcotest.test_case "of_string rejects garbage" `Quick
            test_plan_of_string_rejects_garbage;
          Alcotest.test_case "GE burst lengths" `Slow test_ge_burst_lengths;
          Alcotest.test_case "GE loss follows state" `Quick test_ge_loss_follows_state;
          Alcotest.test_case "duplicate stats" `Quick test_link_duplicate_stats;
          Alcotest.test_case "corrupt stats and mangling" `Quick
            test_link_corrupt_stats_and_mangling;
          Alcotest.test_case "outage window" `Quick test_link_outage_window;
          Alcotest.test_case "delay spike verdict" `Quick test_link_delay_spike_verdict;
          Alcotest.test_case "hook overrides plan" `Quick test_link_hook_overrides_plan;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "basic" `Quick test_multiset_basic;
          Alcotest.test_case "remove" `Quick test_multiset_remove;
          Alcotest.test_case "canonical equality" `Quick test_multiset_canonical_equality;
          Alcotest.test_case "predicates" `Quick test_multiset_predicates;
          Alcotest.test_case "fold" `Quick test_multiset_fold;
          qcheck prop_multiset_matches_sorted_list;
        ] );
    ]
