(* Unit tests for the blockack core library: codec, sender, receiver,
   per-message-timer sender, window guard, configuration, workload and the
   connection facade. The sender/receiver tests wire the endpoints to
   hand-rolled transmit functions so every wire interaction is visible. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Engine = Ba_sim.Engine
module Wire = Ba_proto.Wire
module Config = Blockack.Config
module Seqcodec = Blockack.Seqcodec

let ack_t = Alcotest.testable Wire.pp_ack ( = )

(* ------------------------------------------------------------------ *)
(* Proto_config *)

let test_config_defaults () =
  let c = Config.default in
  check Alcotest.int "window" 16 c.Config.window;
  check Alcotest.bool "unbounded wire" true (c.Config.wire_modulus = None)

let test_config_validation () =
  Alcotest.check_raises "bad window" (Invalid_argument "Proto_config: window must be positive")
    (fun () -> ignore (Config.make ~window:0 ()));
  Alcotest.check_raises "bad modulus" (Invalid_argument "Proto_config: wire modulus 8 < window+1=9")
    (fun () -> ignore (Config.make ~window:8 ~wire_modulus:(Some 8) ()));
  ignore (Config.make ~window:8 ~wire_modulus:(Some 9) ())

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_roundtrip () =
  for i = 0 to 50 do
    let p = Ba_proto.Workload.payload ~seed:3 ~size:32 i in
    check (Alcotest.option Alcotest.int) "index roundtrip" (Some i) (Ba_proto.Workload.index_of p);
    check Alcotest.int "size respected" 32 (String.length p)
  done

let test_workload_deterministic () =
  check Alcotest.string "same (seed,i) same payload"
    (Ba_proto.Workload.payload ~seed:9 ~size:40 7)
    (Ba_proto.Workload.payload ~seed:9 ~size:40 7);
  check Alcotest.bool "different i different payload" true
    (Ba_proto.Workload.payload ~seed:9 ~size:40 7 <> Ba_proto.Workload.payload ~seed:9 ~size:40 8)

let test_workload_supplier () =
  let next = Ba_proto.Workload.supplier ~seed:1 ~size:16 ~count:3 in
  check Alcotest.bool "first three" true
    (next () <> None && next () <> None && next () <> None);
  check (Alcotest.option Alcotest.string) "then exhausted" None (next ());
  check (Alcotest.option Alcotest.string) "stays exhausted" None (next ())

let test_workload_index_of_garbage () =
  check (Alcotest.option Alcotest.int) "garbage" None (Ba_proto.Workload.index_of "hello");
  check (Alcotest.option Alcotest.int) "truncated" None (Ba_proto.Workload.index_of "m:12")

let prop_workload_roundtrip =
  QCheck.Test.make ~name:"payload index roundtrips for any (seed,size,i)" ~count:300
    QCheck.(triple (int_bound 1000) (int_range 0 64) (int_bound 10_000))
    (fun (seed, size, i) ->
      Ba_proto.Workload.index_of (Ba_proto.Workload.payload ~seed ~size i) = Some i)

(* ------------------------------------------------------------------ *)
(* Seqcodec *)

let test_codec_identity_when_unbounded () =
  let c = Seqcodec.create ~window:4 ~wire_modulus:None in
  check Alcotest.int "encode id" 12345 (Seqcodec.encode c 12345);
  check Alcotest.int "decode id" 777 (Seqcodec.decode_ack c ~na:0 777);
  check Alcotest.int "span" 5 (Seqcodec.span c ~lo:3 ~hi:7);
  check Alcotest.int "shift" 10 (Seqcodec.shift c 7 3)

let test_codec_modular_roundtrip () =
  let w = 4 in
  let c = Seqcodec.create ~window:w ~wire_modulus:(Some (2 * w)) in
  (* Acks decode correctly across the whole legal band [na, na+w). *)
  for na = 0 to 40 do
    for seq = na to na + w - 1 do
      check Alcotest.int "ack roundtrip" seq (Seqcodec.decode_ack c ~na (Seqcodec.encode c seq))
    done
  done;
  (* Data decodes across the receiver band [nr-w, nr+w). *)
  for nr = 0 to 40 do
    for seq = max 0 (nr - w) to nr + w - 1 do
      check Alcotest.int "data roundtrip" seq (Seqcodec.decode_data c ~nr (Seqcodec.encode c seq))
    done
  done

let test_codec_rejects_small_modulus () =
  Alcotest.check_raises "n < 2w"
    (Invalid_argument "Seqcodec.create: modulus 7 < 2*window=8 loses information") (fun () ->
      ignore (Seqcodec.create ~window:4 ~wire_modulus:(Some 7)))

let test_codec_span_wraparound () =
  let c = Seqcodec.create ~window:4 ~wire_modulus:(Some 8) in
  check Alcotest.int "wrapping span" 3 (Seqcodec.span c ~lo:7 ~hi:1);
  check Alcotest.int "single" 1 (Seqcodec.span c ~lo:5 ~hi:5);
  check Alcotest.int "shift wraps" 1 (Seqcodec.shift c 7 2)

let prop_codec_stale_acks_land_outside_window =
  (* Any acknowledgment for an already-acknowledged message (below na but
     within one window, as invariant 8 guarantees) must decode outside
     [na, na + w): the sender ignores it rather than mis-marking. *)
  QCheck.Test.make ~name:"stale acks never decode into the window" ~count:1000
    QCheck.(triple (int_range 1 32) (int_bound 1000) (int_range 1 32))
    (fun (w, na, age) ->
      QCheck.assume (age <= w && na - age >= 0);
      let c = Seqcodec.create ~window:w ~wire_modulus:(Some (2 * w)) in
      let stale = na - age in
      let decoded = Seqcodec.decode_ack c ~na (Seqcodec.encode c stale) in
      decoded < na || decoded >= na + w)

(* ------------------------------------------------------------------ *)
(* Direct sender/receiver wiring helpers *)

type pipe = {
  engine : Engine.t;
  sent_data : Wire.data Queue.t;  (* captured sender output *)
  sent_acks : Wire.ack Queue.t;  (* captured receiver output *)
  delivered : string Queue.t;
}

let make_pipe () =
  {
    engine = Engine.create ();
    sent_data = Queue.create ();
    sent_acks = Queue.create ();
    delivered = Queue.create ();
  }

let config_w4 = Config.make ~window:4 ~rto:100 ~wire_modulus:(Some 8) ()

let payloads n = Ba_proto.Workload.supplier ~seed:0 ~size:8 ~count:n

let drain q = List.of_seq (Seq.unfold (fun () -> Option.map (fun x -> (x, ())) (Queue.take_opt q)) ())

(* ------------------------------------------------------------------ *)
(* Sender (Section II) *)

let test_sender_pump_fills_window () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 10)
  in
  Blockack.Sender.pump s;
  check Alcotest.int "window filled" 4 (Queue.length p.sent_data);
  check Alcotest.int "outstanding" 4 (Blockack.Sender.outstanding s);
  check Alcotest.int "ns" 4 (Blockack.Sender.ns s);
  check Alcotest.int "na" 0 (Blockack.Sender.na s);
  check Alcotest.bool "not done" false (Blockack.Sender.is_done s)

let test_sender_block_ack_advances () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 10)
  in
  Blockack.Sender.pump s;
  Queue.clear p.sent_data;
  (* One block ack covers 0..2; the window slides and refills. *)
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(2));
  check Alcotest.int "na" 3 (Blockack.Sender.na s);
  check Alcotest.int "refilled" 3 (Queue.length p.sent_data);
  check Alcotest.int "ns" 7 (Blockack.Sender.ns s)

let test_sender_out_of_order_ack_blocks () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 10)
  in
  Blockack.Sender.pump s;
  (* Ack for 2..3 arrives before the ack for 0..1: na must not move. *)
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(Seqcodec.encode (Seqcodec.create ~window:4 ~wire_modulus:(Some 8)) 2) ~hi:(3));
  check Alcotest.int "na blocked" 0 (Blockack.Sender.na s);
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(1));
  check Alcotest.int "na jumps over the gap" 4 (Blockack.Sender.na s)

let test_sender_duplicate_ack_ignored () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 10)
  in
  Blockack.Sender.pump s;
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(1));
  let na = Blockack.Sender.na s in
  (* The same ack again: already below na, must be a no-op. *)
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(1));
  check Alcotest.int "na unchanged" na (Blockack.Sender.na s)

let test_sender_timeout_resends_na () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 4)
  in
  Blockack.Sender.pump s;
  Queue.clear p.sent_data;
  Engine.run ~until:150 p.engine;
  let resent = drain p.sent_data in
  check Alcotest.int "exactly one retransmission" 1 (List.length resent);
  check Alcotest.int "it is na" 0 (List.hd resent).Wire.seq;
  check Alcotest.int "counted" 1 (Blockack.Sender.retransmissions s)

let test_sender_timer_stops_when_idle () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 2)
  in
  Blockack.Sender.pump s;
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(1));
  check Alcotest.bool "done" true (Blockack.Sender.is_done s);
  Queue.clear p.sent_data;
  Engine.run ~until:1_000 p.engine;
  check Alcotest.int "no spurious retransmission" 0 (Queue.length p.sent_data)

let test_sender_wire_encoding () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 10)
  in
  Blockack.Sender.pump s;
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(3));
  let wires = List.map (fun d -> d.Wire.seq) (drain p.sent_data) in
  (* Sequences 0..7 modulo 8. *)
  check (Alcotest.list Alcotest.int) "mod-8 wire numbers" [ 0; 1; 2; 3; 4; 5; 6; 7 ] wires

(* ------------------------------------------------------------------ *)
(* Receiver *)

let make_receiver ?(config = config_w4) p =
  Blockack.Receiver.create p.engine config
    ~tx:(fun a -> Queue.add a p.sent_acks)
    ~deliver:(fun m -> Queue.add m p.delivered)

let data ~seq i = Wire.make_data ~seq ~payload:(Ba_proto.Workload.payload ~seed:0 ~size:8 i)

let test_receiver_in_order () =
  let p = make_pipe () in
  let r = make_receiver p in
  Blockack.Receiver.on_data r (data ~seq:0 0);
  Blockack.Receiver.on_data r (data ~seq:1 1);
  check Alcotest.int "two delivered" 2 (Queue.length p.delivered);
  check (Alcotest.list ack_t) "one ack per message"
    [ (Wire.make_ack ~lo:(0) ~hi:(0)); (Wire.make_ack ~lo:(1) ~hi:(1)) ]
    (drain p.sent_acks);
  check Alcotest.int "nr" 2 (Blockack.Receiver.nr r)

let test_receiver_buffers_out_of_order () =
  let p = make_pipe () in
  let r = make_receiver p in
  Blockack.Receiver.on_data r (data ~seq:2 2);
  Blockack.Receiver.on_data r (data ~seq:1 1);
  check Alcotest.int "nothing delivered yet" 0 (Queue.length p.delivered);
  check Alcotest.int "no ack yet" 0 (Queue.length p.sent_acks);
  check Alcotest.int "buffered" 2 (Blockack.Receiver.buffered r);
  Blockack.Receiver.on_data r (data ~seq:0 0);
  check Alcotest.int "all delivered in order" 3 (Queue.length p.delivered);
  check (Alcotest.list ack_t) "one block ack covers the run" [ (Wire.make_ack ~lo:(0) ~hi:(2)) ]
    (drain p.sent_acks);
  check
    (Alcotest.list Alcotest.string)
    "application order"
    [
      Ba_proto.Workload.payload ~seed:0 ~size:8 0;
      Ba_proto.Workload.payload ~seed:0 ~size:8 1;
      Ba_proto.Workload.payload ~seed:0 ~size:8 2;
    ]
    (drain p.delivered)

let test_receiver_dup_of_accepted_is_reacked () =
  let p = make_pipe () in
  let r = make_receiver p in
  Blockack.Receiver.on_data r (data ~seq:0 0);
  Queue.clear p.sent_acks;
  Blockack.Receiver.on_data r (data ~seq:0 0);
  check Alcotest.int "not redelivered" 1 (Queue.length p.delivered);
  check (Alcotest.list ack_t) "singleton re-ack" [ (Wire.make_ack ~lo:(0) ~hi:(0)) ] (drain p.sent_acks);
  check Alcotest.int "dup counter" 1 (Blockack.Receiver.dup_acks_sent r)

let test_receiver_dup_of_buffered_is_silent () =
  let p = make_pipe () in
  let r = make_receiver p in
  Blockack.Receiver.on_data r (data ~seq:2 2);
  Blockack.Receiver.on_data r (data ~seq:2 2);
  check Alcotest.int "no acks for unackable dup" 0 (Queue.length p.sent_acks);
  check Alcotest.int "buffered once" 1 (Blockack.Receiver.buffered r)

let test_receiver_modular_wraparound () =
  let p = make_pipe () in
  let r = make_receiver p in
  (* Push nr to 6, then deliver wire numbers that wrap past the modulus. *)
  for i = 0 to 9 do
    Blockack.Receiver.on_data r (data ~seq:(i mod 8) i)
  done;
  check Alcotest.int "all ten delivered" 10 (Queue.length p.delivered);
  check Alcotest.int "nr" 10 (Blockack.Receiver.nr r)

let test_receiver_coalesce () =
  let p = make_pipe () in
  let config = Config.make ~window:4 ~rto:200 ~wire_modulus:(Some 8) ~ack_coalesce:10 () in
  let r = make_receiver ~config p in
  Blockack.Receiver.on_data r (data ~seq:0 0);
  Blockack.Receiver.on_data r (data ~seq:1 1);
  Blockack.Receiver.on_data r (data ~seq:2 2);
  check Alcotest.int "acks held back" 0 (Queue.length p.sent_acks);
  Engine.run ~until:20 p.engine;
  check (Alcotest.list ack_t) "one coalesced block" [ (Wire.make_ack ~lo:(0) ~hi:(2)) ]
    (drain p.sent_acks);
  check Alcotest.int "all delivered at flush" 3 (Queue.length p.delivered)

(* Bounded reassembly (Jain's two drop policies). The budget counts only
   out-of-order slots — the committed run [nr, vr) is never evictable —
   and a refused or evicted frame is never acknowledged, so no block
   acknowledgment (m, n) may cover it until a retransmission lands. *)
let budget_config policy =
  Config.make ~window:4 ~rto:100 ~wire_modulus:(Some 8) ~rx_budget:2 ~drop_policy:policy ()

let test_receiver_drop_new_refuses_newcomer () =
  let p = make_pipe () in
  let r = make_receiver ~config:(budget_config Config.Drop_new) p in
  Blockack.Receiver.on_data r (data ~seq:1 1);
  Blockack.Receiver.on_data r (data ~seq:2 2);
  check Alcotest.int "budget filled" 2 (Blockack.Receiver.buffered r);
  Blockack.Receiver.on_data r (data ~seq:3 3);
  check Alcotest.int "newcomer refused" 2 (Blockack.Receiver.buffered r);
  check Alcotest.int "refusal counted" 1 (Blockack.Receiver.pressure_dropped r);
  check Alcotest.int "no ack for the refused frame" 0 (Queue.length p.sent_acks);
  (* The run-extender closes the gap: the block ack covers exactly the
     delivered run and never the refused slot 3. *)
  Blockack.Receiver.on_data r (data ~seq:0 0);
  check (Alcotest.list ack_t) "block ack stops at the drop" [ Wire.make_ack ~lo:0 ~hi:2 ]
    (drain p.sent_acks);
  check Alcotest.int "run delivered" 3 (Queue.length p.delivered);
  (* The sender's timer retransmits the victim; only then is it acked. *)
  Blockack.Receiver.on_data r (data ~seq:3 3);
  check (Alcotest.list ack_t) "retransmission acked" [ Wire.make_ack ~lo:3 ~hi:3 ]
    (drain p.sent_acks);
  check Alcotest.int "nr caught up" 4 (Blockack.Receiver.nr r)

let test_receiver_drop_furthest_evicts () =
  let p = make_pipe () in
  let r = make_receiver ~config:(budget_config Config.Drop_furthest) p in
  Blockack.Receiver.on_data r (data ~seq:3 3);
  Blockack.Receiver.on_data r (data ~seq:2 2);
  Blockack.Receiver.on_data r (data ~seq:1 1);
  check Alcotest.int "still at budget" 2 (Blockack.Receiver.buffered r);
  check Alcotest.int "furthest evicted" 1 (Blockack.Receiver.pressure_evicted r);
  Blockack.Receiver.on_data r (data ~seq:0 0);
  check (Alcotest.list ack_t) "ack covers the kept prefix, not the evicted slot"
    [ Wire.make_ack ~lo:0 ~hi:2 ] (drain p.sent_acks);
  Blockack.Receiver.on_data r (data ~seq:3 3);
  check (Alcotest.list ack_t) "evicted slot acked only on retransmission"
    [ Wire.make_ack ~lo:3 ~hi:3 ] (drain p.sent_acks)

let test_receiver_drop_furthest_keeps_nearer_frame () =
  let p = make_pipe () in
  let r = make_receiver ~config:(budget_config Config.Drop_furthest) p in
  Blockack.Receiver.on_data r (data ~seq:1 1);
  Blockack.Receiver.on_data r (data ~seq:2 2);
  (* A frame *beyond* everything buffered is the furthest itself: it is
     refused rather than trading away a nearer slot. *)
  Blockack.Receiver.on_data r (data ~seq:3 3);
  check Alcotest.int "refused, nothing evicted" 0 (Blockack.Receiver.pressure_evicted r);
  check Alcotest.int "refusal counted" 1 (Blockack.Receiver.pressure_dropped r)

let test_receiver_run_extender_exempt_from_budget () =
  let p = make_pipe () in
  let config =
    Config.make ~window:4 ~rto:100 ~wire_modulus:(Some 8) ~rx_budget:1
      ~drop_policy:Config.Drop_new ()
  in
  let r = make_receiver ~config p in
  Blockack.Receiver.on_data r (data ~seq:1 1);
  check Alcotest.int "budget of one filled" 1 (Blockack.Receiver.buffered r);
  (* v = vr extends the deliverable run: admitting it *frees* a slot, so
     refusing it would livelock drop-new at full budget. *)
  Blockack.Receiver.on_data r (data ~seq:0 0);
  check Alcotest.int "run extender admitted" 2 (Queue.length p.delivered);
  check Alcotest.int "no refusal" 0 (Blockack.Receiver.pressure_dropped r)

let test_receiver_flush_forces_pending () =
  let p = make_pipe () in
  let config = Config.make ~window:4 ~rto:200 ~wire_modulus:(Some 8) ~ack_coalesce:1_000 () in
  let r = make_receiver ~config p in
  Blockack.Receiver.on_data r (data ~seq:0 0);
  Blockack.Receiver.flush r;
  check Alcotest.int "flushed" 1 (Queue.length p.sent_acks);
  Engine.run ~until:2_000 p.engine;
  check Alcotest.int "no double flush" 1 (Queue.length p.sent_acks)

(* ------------------------------------------------------------------ *)
(* Sender_multi (Section IV) *)

let test_multi_individual_timers () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 4)
  in
  Blockack.Sender_multi.pump s;
  Queue.clear p.sent_data;
  (* Ack only message 1: timers 0, 2, 3 stay armed; 1's is cancelled. *)
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(1) ~hi:(1));
  Engine.run ~until:150 p.engine;
  let resent = List.map (fun d -> d.Wire.seq) (drain p.sent_data) in
  check (Alcotest.list Alcotest.int) "burst resend of unacked" [ 0; 2; 3 ] resent;
  check Alcotest.int "three retransmissions" 3 (Blockack.Sender_multi.retransmissions s)

let test_multi_lost_block_ack_recovery_is_burst () =
  (* All four are outstanding and their (lost) acks never arrive: all four
     timers fire within one timeout period — not serialized. *)
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 4)
  in
  Blockack.Sender_multi.pump s;
  Queue.clear p.sent_data;
  Engine.run ~until:101 p.engine;
  check Alcotest.int "all four resent within one rto" 4 (Queue.length p.sent_data)

let test_multi_ack_stops_timer () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 2)
  in
  Blockack.Sender_multi.pump s;
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(0) ~hi:(1));
  Queue.clear p.sent_data;
  Engine.run ~until:1_000 p.engine;
  check Alcotest.int "no retransmissions after full ack" 0 (Queue.length p.sent_data);
  check Alcotest.bool "done" true (Blockack.Sender_multi.is_done s)

let test_multi_done_only_when_exhausted_and_acked () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 6)
  in
  Blockack.Sender_multi.pump s;
  check Alcotest.bool "not done while outstanding" false (Blockack.Sender_multi.is_done s);
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(0) ~hi:(3));
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:(4) ~hi:(5));
  check Alcotest.bool "done after final ack" true (Blockack.Sender_multi.is_done s)

(* ------------------------------------------------------------------ *)
(* Wire checksums and corruption handling *)

let test_wire_checksum_roundtrip () =
  let d = Wire.make_data ~seq:5 ~payload:"hello" in
  check Alcotest.bool "fresh data ok" true (Wire.data_ok d);
  let a = Wire.make_ack ~lo:3 ~hi:9 in
  check Alcotest.bool "fresh ack ok" true (Wire.ack_ok a)

let test_wire_corruption_detected () =
  let d = Wire.make_data ~seq:5 ~payload:"hello" in
  check Alcotest.bool "mangled payload caught" false (Wire.data_ok (Wire.corrupt_data d));
  let empty = Wire.make_data ~seq:7 ~payload:"" in
  check Alcotest.bool "mangled bare header caught" false (Wire.data_ok (Wire.corrupt_data empty));
  let a = Wire.make_ack ~lo:3 ~hi:9 in
  check Alcotest.bool "mangled ack caught" false (Wire.ack_ok (Wire.corrupt_ack a));
  (* A stale checksum over different content must not validate either. *)
  let forged = { d with Wire.seq = d.Wire.seq + 1 } in
  check Alcotest.bool "forged header caught" false (Wire.data_ok forged)

let test_receiver_drops_corrupt_data () =
  let p = make_pipe () in
  let r =
    Blockack.Receiver.create p.engine config_w4
      ~tx:(fun a -> Queue.add a p.sent_acks)
      ~deliver:(fun m -> Queue.add m p.delivered)
  in
  Blockack.Receiver.on_data r (Wire.corrupt_data (Wire.make_data ~seq:0 ~payload:"AA"));
  check Alcotest.int "nothing delivered" 0 (Queue.length p.delivered);
  check Alcotest.int "nothing acked" 0 (Queue.length p.sent_acks);
  check Alcotest.int "drop counted" 1 (Blockack.Receiver.corrupt_dropped r);
  (* The sender's timer covers the gap: a clean retransmission is then
     accepted as if the corrupted copy never existed. *)
  Blockack.Receiver.on_data r (Wire.make_data ~seq:0 ~payload:"AA");
  check Alcotest.int "clean retransmit delivered" 1 (Queue.length p.delivered);
  check Alcotest.int "and acknowledged" 1 (Queue.length p.sent_acks)

let test_multi_drops_corrupt_ack () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 4)
  in
  Blockack.Sender_multi.pump s;
  Blockack.Sender_multi.on_ack s (Wire.corrupt_ack (Wire.make_ack ~lo:0 ~hi:3));
  check Alcotest.int "window not advanced by corrupt ack" 0 (Blockack.Sender_multi.na s);
  check Alcotest.int "drop counted" 1 (Blockack.Sender_multi.corrupt_acks_dropped s);
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:0 ~hi:3);
  check Alcotest.int "clean ack still works" 4 (Blockack.Sender_multi.na s)

(* ------------------------------------------------------------------ *)
(* Karn's rule in Sender_multi (both halves) *)

let adaptive_config = Config.make ~window:4 ~rto:100 ~adaptive_rto:true ()

let test_multi_karn_backoff_not_collapse () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine adaptive_config
      ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 8)
  in
  Blockack.Sender_multi.pump s;
  (* Four clean samples of rtt = 10 pull the adaptive rto far below the
     configured 100 (unbounded wire numbers have no soundness floor). *)
  ignore
    (Engine.schedule p.engine ~delay:10 (fun () ->
         Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:0 ~hi:3)));
  Engine.run ~until:11 p.engine;
  let r0 = Blockack.Sender_multi.rto_now s in
  check Alcotest.bool "estimator adapted below configured rto" true (r0 < 100);
  (* Messages 4..7 (pumped at t = 10) now all expire in one burst with no
     acks in sight. Karn's first half means none of their later acks may
     feed the estimator — so without the second half (backing the shared
     estimate off) the rto would sit at r0 forever. And the backoff is
     gated to the oldest outstanding message: one doubling per burst, not
     2^w. *)
  Engine.run ~until:(10 + r0 + 2) p.engine;
  check Alcotest.int "whole window expired once" 4 (Blockack.Sender_multi.retransmissions s);
  check Alcotest.int "rto doubled exactly once" (2 * r0) (Blockack.Sender_multi.rto_now s)

let test_multi_karn_excludes_retransmit_samples () =
  let p = make_pipe () in
  let s =
    Blockack.Sender_multi.create p.engine adaptive_config
      ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 8)
  in
  Blockack.Sender_multi.pump s;
  ignore
    (Engine.schedule p.engine ~delay:10 (fun () ->
         Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:0 ~hi:3)));
  Engine.run ~until:11 p.engine;
  let srtt_before = Blockack.Sender_multi.srtt s in
  let r0 = Blockack.Sender_multi.rto_now s in
  (* Let 4..7 retransmit, then acknowledge 4 long after: the wildly late
     "sample" (ambiguous — first copy or retransmission?) must not touch
     the smoothed estimate. *)
  Engine.run ~until:(10 + r0 + 2) p.engine;
  Blockack.Sender_multi.on_ack s (Wire.make_ack ~lo:4 ~hi:4);
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "retransmitted message left srtt untouched" srtt_before (Blockack.Sender_multi.srtt s)

(* ------------------------------------------------------------------ *)
(* Rtt_estimator backoff regression *)

module Rtt = Blockack.Rtt_estimator

let test_rtt_backoff_never_overflows () =
  (* With the default ceiling = max_int, repeated doubling used to wrap
     negative and get clamped back to the floor — collapsing the timeout
     to its minimum in the middle of an outage. The saturating backoff
     must instead march monotonically up to the ceiling and stay there. *)
  let e = Rtt.create ~initial_rto:1000 () in
  let prev = ref (Rtt.rto e) in
  for _ = 1 to 80 do
    Rtt.backoff e;
    let now = Rtt.rto e in
    if now < !prev then Alcotest.failf "rto regressed from %d to %d during backoff" !prev now;
    prev := now
  done;
  check Alcotest.int "saturated at the ceiling" max_int (Rtt.rto e)

let test_rtt_backoff_caps_at_ceiling () =
  let e = Rtt.create ~ceiling:5000 ~initial_rto:800 () in
  for _ = 1 to 10 do
    Rtt.backoff e
  done;
  check Alcotest.int "capped" 5000 (Rtt.rto e)

let test_rtt_sample_unpins_backoff () =
  (* Once the path recovers, a genuine (Karn-clean) sample must rebuild
     the rto from srtt/rttvar rather than leaving it pinned at the cap. *)
  let e = Rtt.create ~ceiling:100_000 ~initial_rto:500 () in
  Rtt.observe e 40;
  for _ = 1 to 12 do
    Rtt.backoff e
  done;
  check Alcotest.int "pinned at cap mid-outage" 100_000 (Rtt.rto e);
  Rtt.observe e 40;
  check Alcotest.bool "post-recovery sample rebuilt the estimate" true (Rtt.rto e < 1000)

let test_rtt_reset_restores_initial () =
  let e = Rtt.create ~floor:10 ~ceiling:5000 ~initial_rto:300 () in
  Rtt.observe e 40;
  Rtt.observe e 60;
  Rtt.backoff e;
  Rtt.reset e;
  check Alcotest.int "initial rto restored" 300 (Rtt.rto e);
  check Alcotest.int "samples cleared" 0 (Rtt.samples e);
  check (Alcotest.float 1e-9) "srtt cleared" 0. (Rtt.srtt e)

(* ------------------------------------------------------------------ *)
(* Window_guard *)

let test_guard_unrestricted_initially () =
  let e = Engine.create () in
  let g = Blockack.Window_guard.create e in
  check Alcotest.int "no cap" max_int (Blockack.Window_guard.frontier g)

let test_guard_caps_and_expires () =
  let e = Engine.create () in
  let g = Blockack.Window_guard.create e in
  Blockack.Window_guard.note_retransmission g ~seq:10 ~window:4 ~hold_for:50;
  check Alcotest.int "cap at seq+w" 14 (Blockack.Window_guard.frontier g);
  Blockack.Window_guard.note_retransmission g ~seq:5 ~window:4 ~hold_for:50;
  check Alcotest.int "lowest cap wins" 9 (Blockack.Window_guard.frontier g);
  ignore (Engine.schedule e ~delay:60 (fun () -> ()));
  Engine.run e;
  check Alcotest.int "expired" max_int (Blockack.Window_guard.frontier g)

let test_guard_retry_fires_at_expiry () =
  let e = Engine.create () in
  let g = Blockack.Window_guard.create e in
  Blockack.Window_guard.note_retransmission g ~seq:0 ~window:4 ~hold_for:30;
  let fired_at = ref (-1) in
  Blockack.Window_guard.when_blocked g (fun () -> fired_at := Engine.now e);
  (* Second registration while armed must not double-fire. *)
  let second = ref 0 in
  Blockack.Window_guard.when_blocked g (fun () -> incr second);
  Engine.run e;
  check Alcotest.int "retry at expiry" 30 !fired_at;
  check Alcotest.int "no duplicate retry" 0 !second

let test_sender_respects_frontier () =
  let p = make_pipe () in
  let s =
    Blockack.Sender.create p.engine config_w4 ~tx:(fun d -> Queue.add d p.sent_data)
      ~next_payload:(payloads 20)
  in
  Blockack.Sender.pump s;
  (* Force a timeout-driven retransmission of 0, then ack 0..3: without
     the guard the window would jump to 8; the frontier caps it at 0+4. *)
  Engine.run ~until:100 p.engine;
  Queue.clear p.sent_data;
  Blockack.Sender.on_ack s (Wire.make_ack ~lo:(0) ~hi:(3));
  check Alcotest.int "pump capped at frontier" 4 (Blockack.Sender.ns s);
  (* After the hold expires the window reopens to na + w. *)
  Engine.run ~until:250 p.engine;
  check Alcotest.int "window reopened later" 8 (Blockack.Sender.ns s)

(* ------------------------------------------------------------------ *)
(* Connection facade *)

let test_connection_roundtrip () =
  let received = ref [] in
  let conn =
    Blockack.Connection.create ~on_receive:(fun m -> received := m :: !received) ()
  in
  List.iter (Blockack.Connection.send conn) [ "alpha"; "beta"; "gamma" ];
  Blockack.Connection.run conn;
  check (Alcotest.list Alcotest.string) "in order" [ "alpha"; "beta"; "gamma" ]
    (List.rev !received);
  check Alcotest.bool "idle" true (Blockack.Connection.idle conn);
  let st = Blockack.Connection.stats conn in
  check Alcotest.int "submitted" 3 st.Blockack.Connection.submitted;
  check Alcotest.int "delivered" 3 st.Blockack.Connection.delivered

let test_connection_lossy () =
  let received = ref 0 in
  let conn =
    Blockack.Connection.create ~seed:5 ~data_loss:0.3 ~ack_loss:0.3
      ~timeout_style:Blockack.Connection.Simple ~on_receive:(fun _ -> incr received) ()
  in
  for i = 1 to 200 do
    Blockack.Connection.send conn (Printf.sprintf "msg-%d" i)
  done;
  Blockack.Connection.run conn;
  check Alcotest.int "all delivered despite loss" 200 !received;
  let st = Blockack.Connection.stats conn in
  check Alcotest.bool "there were retransmissions" true
    (st.Blockack.Connection.retransmissions > 0);
  check Alcotest.bool "there were drops" true (st.Blockack.Connection.data_dropped > 0)

let test_connection_incremental_sends () =
  let received = ref [] in
  let conn =
    Blockack.Connection.create ~on_receive:(fun m -> received := m :: !received) ()
  in
  Blockack.Connection.send conn "first";
  Blockack.Connection.run conn;
  check Alcotest.bool "first delivered" true (List.mem "first" !received);
  Blockack.Connection.send conn "second";
  Blockack.Connection.run conn;
  check (Alcotest.list Alcotest.string) "both, in order" [ "first"; "second" ]
    (List.rev !received)

let test_connection_crash_restart () =
  (* Kill each endpoint once mid-transfer over a lossy link: with epochs
     on (the default config) every message still arrives exactly once,
     in order. *)
  let received = ref [] in
  let conn =
    Blockack.Connection.create ~data_loss:0.1 ~ack_loss:0.1
      ~on_receive:(fun m -> received := m :: !received)
      ()
  in
  for i = 1 to 120 do
    Blockack.Connection.send conn (Printf.sprintf "msg-%d" i)
  done;
  Blockack.Connection.run ~until:600 conn;
  Blockack.Connection.crash_receiver conn;
  Blockack.Connection.run ~until:900 conn;
  Blockack.Connection.restart_receiver conn;
  Blockack.Connection.run ~until:2500 conn;
  Blockack.Connection.crash_sender conn;
  Blockack.Connection.run ~until:2900 conn;
  Blockack.Connection.restart_sender conn;
  Blockack.Connection.run conn;
  check Alcotest.bool "idle after restarts" true (Blockack.Connection.idle conn);
  check
    (Alcotest.list Alcotest.string)
    "every message exactly once, in order"
    (List.init 120 (fun i -> Printf.sprintf "msg-%d" (i + 1)))
    (List.rev !received)

let () =
  Alcotest.run "blockack_core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "roundtrip" `Quick test_workload_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "supplier" `Quick test_workload_supplier;
          Alcotest.test_case "index_of garbage" `Quick test_workload_index_of_garbage;
          qcheck prop_workload_roundtrip;
        ] );
      ( "seqcodec",
        [
          Alcotest.test_case "identity when unbounded" `Quick test_codec_identity_when_unbounded;
          Alcotest.test_case "modular roundtrip" `Quick test_codec_modular_roundtrip;
          Alcotest.test_case "rejects small modulus" `Quick test_codec_rejects_small_modulus;
          Alcotest.test_case "span wraparound" `Quick test_codec_span_wraparound;
          qcheck prop_codec_stale_acks_land_outside_window;
        ] );
      ( "sender",
        [
          Alcotest.test_case "pump fills window" `Quick test_sender_pump_fills_window;
          Alcotest.test_case "block ack advances" `Quick test_sender_block_ack_advances;
          Alcotest.test_case "out-of-order ack blocks" `Quick test_sender_out_of_order_ack_blocks;
          Alcotest.test_case "duplicate ack ignored" `Quick test_sender_duplicate_ack_ignored;
          Alcotest.test_case "timeout resends na" `Quick test_sender_timeout_resends_na;
          Alcotest.test_case "timer stops when idle" `Quick test_sender_timer_stops_when_idle;
          Alcotest.test_case "wire encoding" `Quick test_sender_wire_encoding;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "in order" `Quick test_receiver_in_order;
          Alcotest.test_case "buffers out of order" `Quick test_receiver_buffers_out_of_order;
          Alcotest.test_case "dup of accepted re-acked" `Quick
            test_receiver_dup_of_accepted_is_reacked;
          Alcotest.test_case "dup of buffered silent" `Quick test_receiver_dup_of_buffered_is_silent;
          Alcotest.test_case "modular wraparound" `Quick test_receiver_modular_wraparound;
          Alcotest.test_case "coalesce" `Quick test_receiver_coalesce;
          Alcotest.test_case "drop-new refuses newcomer" `Quick
            test_receiver_drop_new_refuses_newcomer;
          Alcotest.test_case "drop-furthest evicts" `Quick test_receiver_drop_furthest_evicts;
          Alcotest.test_case "drop-furthest keeps nearer frame" `Quick
            test_receiver_drop_furthest_keeps_nearer_frame;
          Alcotest.test_case "run extender exempt from budget" `Quick
            test_receiver_run_extender_exempt_from_budget;
          Alcotest.test_case "flush forces pending" `Quick test_receiver_flush_forces_pending;
        ] );
      ( "sender_multi",
        [
          Alcotest.test_case "individual timers" `Quick test_multi_individual_timers;
          Alcotest.test_case "lost block ack recovers in burst" `Quick
            test_multi_lost_block_ack_recovery_is_burst;
          Alcotest.test_case "ack stops timer" `Quick test_multi_ack_stops_timer;
          Alcotest.test_case "done condition" `Quick test_multi_done_only_when_exhausted_and_acked;
        ] );
      ( "wire",
        [
          Alcotest.test_case "checksum roundtrip" `Quick test_wire_checksum_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_wire_corruption_detected;
          Alcotest.test_case "receiver drops corrupt data" `Quick test_receiver_drops_corrupt_data;
          Alcotest.test_case "sender drops corrupt ack" `Quick test_multi_drops_corrupt_ack;
        ] );
      ( "karn",
        [
          Alcotest.test_case "backoff, not collapse" `Quick test_multi_karn_backoff_not_collapse;
          Alcotest.test_case "retransmit samples excluded" `Quick
            test_multi_karn_excludes_retransmit_samples;
        ] );
      ( "rtt_estimator",
        [
          Alcotest.test_case "backoff never overflows" `Quick test_rtt_backoff_never_overflows;
          Alcotest.test_case "backoff caps at ceiling" `Quick test_rtt_backoff_caps_at_ceiling;
          Alcotest.test_case "sample unpins the cap" `Quick test_rtt_sample_unpins_backoff;
          Alcotest.test_case "reset restores initial state" `Quick test_rtt_reset_restores_initial;
        ] );
      ( "window_guard",
        [
          Alcotest.test_case "unrestricted initially" `Quick test_guard_unrestricted_initially;
          Alcotest.test_case "caps and expires" `Quick test_guard_caps_and_expires;
          Alcotest.test_case "retry at expiry" `Quick test_guard_retry_fires_at_expiry;
          Alcotest.test_case "sender respects frontier" `Quick test_sender_respects_frontier;
        ] );
      ( "connection",
        [
          Alcotest.test_case "roundtrip" `Quick test_connection_roundtrip;
          Alcotest.test_case "lossy" `Quick test_connection_lossy;
          Alcotest.test_case "incremental sends" `Quick test_connection_incremental_sends;
          Alcotest.test_case "crash and restart both endpoints" `Quick
            test_connection_crash_restart;
        ] );
    ]
