(* Chaos-campaign smoke tests (also wired to the `chaos-smoke` alias):
   a CI-sized sweep asserting the safety/recovery split the full
   `ba_chaos` run demonstrates at 50 seeds. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Chaos = Ba_verify.Chaos
module Fault_plan = Ba_channel.Fault_plan
module Crash_plan = Ba_proto.Crash_plan

let seeds = List.init 10 (fun i -> i + 1)
let messages = 30

let test_class_names_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.bool "name roundtrips" true (Chaos.class_of_name (Chaos.class_name c) = Some c))
    Chaos.all_classes;
  check Alcotest.bool "unknown rejected" true (Chaos.class_of_name "gremlins" = None)

let test_plans_deterministic () =
  List.iter
    (fun c ->
      let a = Chaos.plans_for c ~seed:3 and b = Chaos.plans_for c ~seed:3 in
      check Alcotest.bool "same seed, same schedule" true (a = b))
    Chaos.all_classes

(* Every class's campaign schedule must survive the --replay grammar:
   print the plans, parse the key back, print again — byte-identical.
   Covers every fault class (including the clean-link crash and overload
   classes, whose plans print as "none") across a seed sweep. *)
let test_campaign_plans_roundtrip () =
  List.iter
    (fun c ->
      List.iter
        (fun seed ->
          let data_plan, ack_plan = Chaos.plans_for c ~seed in
          List.iter
            (fun p ->
              let key = Fault_plan.to_string p in
              match Fault_plan.of_string key with
              | Ok q ->
                  check Alcotest.string
                    (Printf.sprintf "%s seed=%d replays" (Chaos.class_name c) seed)
                    key (Fault_plan.to_string q)
              | Error e ->
                  Alcotest.failf "%s seed=%d: %S did not parse: %s" (Chaos.class_name c) seed
                    key e)
            [ data_plan; ack_plan ];
          let crash =
            match c with
            | Chaos.Crash | Chaos.Storm -> Chaos.crash_plan_for ~seed
            | _ -> Crash_plan.none
          in
          let key = Crash_plan.to_string crash in
          (match Crash_plan.of_string key with
          | Ok q -> check Alcotest.string "crash key replays" key (Crash_plan.to_string q)
          | Error e -> Alcotest.failf "crash key %S did not parse: %s" key e);
          match c with
          | Chaos.Overload | Chaos.Storm -> (
              let sq = Chaos.squeeze_for ~seed in
              let key = Chaos.squeeze_to_string sq in
              match Chaos.squeeze_of_string key with
              | Ok q ->
                  check Alcotest.string "squeeze key replays" key (Chaos.squeeze_to_string q);
                  check Alcotest.bool "squeeze parses back equal" true (q = sq)
              | Error e -> Alcotest.failf "squeeze key %S did not parse: %s" key e)
          | _ -> ())
        (List.init 25 (fun i -> i + 1)))
    Chaos.all_classes

(* The squeeze grammar rejects malformed keys with a reason, like the
   other plan parsers — garbage must not silently decode to a squeeze. *)
let test_squeeze_grammar_rejections () =
  List.iter
    (fun s ->
      match Chaos.squeeze_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "squeeze(rx=0,drop-new,q=10:5)";
      "squeeze(rx=3,drop-everything,q=10:5)";
      "squeeze(rx=3,drop-new,q=10:0)";
      "squash(rx=3,drop-new,q=10:5)";
      "";
    ]

(* The compound class: every ingredient present, blockack-multi survives
   the composition, and the recovery accounting shows the crash plan
   actually fired inside the storm. *)
let test_storm_composes_and_blockack_survives () =
  let data_plan, ack_plan = Chaos.plans_for Chaos.Storm ~seed:3 in
  check Alcotest.bool "storm brings a bursty data channel" true
    (Fault_plan.to_string data_plan <> Fault_plan.to_string (Fault_plan.make ()));
  check Alcotest.bool "storm brings a bursty ack channel" true
    (Fault_plan.to_string ack_plan <> Fault_plan.to_string (Fault_plan.make ()));
  check Alcotest.bool "storm brings a crash schedule" true
    (Chaos.crash_plan_for ~seed:3 <> Crash_plan.none);
  let r = Chaos.run_campaign ~messages ~seeds ~classes:[ Chaos.Storm ] Blockack.Protocols.multi in
  if not (Chaos.clean r) then
    Alcotest.failf "blockack-multi failed the storm campaign:@.%a"
      (fun ppf -> Chaos.pp_report ppf)
      r;
  let c = List.hd r.Chaos.classes in
  check Alcotest.bool "storm campaign ran" true (c.Chaos.supported && c.Chaos.runs > 0);
  match c.Chaos.recovery with
  | None -> Alcotest.fail "storm must report recovery cost"
  | Some rc -> check Alcotest.bool "restarts happened inside the storm" true (rc.Chaos.restarts > 0)

let test_storm_skipped_without_crash_tolerance () =
  let r =
    Chaos.run_campaign ~messages ~seeds:[ 1; 2 ] ~classes:[ Chaos.Storm ]
      Ba_baselines.Selective_repeat.protocol
  in
  let c = List.hd r.Chaos.classes in
  check Alcotest.bool "storm skipped for non-crash-tolerant protocols" true
    ((not c.Chaos.supported) && c.Chaos.runs = 0)

(* Random plans at the grammar's printed precision (%.3f for the burst
   transitions, %.2f elsewhere) round-trip too — the grammar is not
   secretly specialized to the handful of schedules the campaign uses. *)
let test_random_plans_roundtrip =
  qcheck
    (QCheck.Test.make ~count:200 ~name:"seeded random fault plans survive the replay grammar"
       QCheck.(int_range 0 1_000_000)
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let milli () = float_of_int (1 + Random.State.int rng 999) /. 1000. in
         let centi () = float_of_int (Random.State.int rng 100) /. 100. in
         let bursty =
           if Random.State.bool rng then
             Some
               {
                 Fault_plan.p_enter_bad = milli ();
                 p_exit_bad = milli ();
                 loss_good = centi ();
                 loss_bad = centi ();
               }
           else None
         in
         let duplicate = if Random.State.bool rng then centi () else 0. in
         let copies = 2 + Random.State.int rng 3 in
         let corrupt = if Random.State.bool rng then centi () else 0. in
         let delay_spike =
           if Random.State.bool rng then
             Some (float_of_int (1 + Random.State.int rng 99) /. 100.,
                   1 + Random.State.int rng 500)
           else None
         in
         let outages =
           if Random.State.bool rng then
             let from_tick = Random.State.int rng 5_000 in
             [ { Fault_plan.from_tick; until_tick = from_tick + 1 + Random.State.int rng 2_000 } ]
           else []
         in
         let plan =
           Fault_plan.make ?bursty ~duplicate ~copies ~corrupt ?delay_spike ~outages ()
         in
         let key = Fault_plan.to_string plan in
         match Fault_plan.of_string key with
         | Ok q -> Fault_plan.to_string q = key
         | Error _ -> false))

let test_blockack_survives_all_classes () =
  let r = Chaos.run_campaign ~messages ~seeds Blockack.Protocols.multi in
  if not (Chaos.clean r) then
    Alcotest.failf "blockack-multi failed the campaign:@.%a" (fun ppf -> Chaos.pp_report ppf) r

let test_selective_repeat_survives_all_classes () =
  let r = Chaos.run_campaign ~messages ~seeds Ba_baselines.Selective_repeat.protocol in
  if not (Chaos.clean r) then
    Alcotest.failf "selective-repeat failed the campaign:@.%a" (fun ppf -> Chaos.pp_report ppf) r

let test_gbn_breaks_under_reorder () =
  let r =
    Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds ~classes:[ Chaos.Reorder ]
      Ba_baselines.Go_back_n.protocol
  in
  check Alcotest.bool "bounded go-back-N must misbehave under reorder" false (Chaos.clean r)

let test_gbn_corruption_delivered () =
  (* No checksum validation in the textbook receiver: mangled payloads
     reach the application. *)
  let r =
    Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds:[ 1; 2; 3 ]
      ~classes:[ Chaos.Corruption ] Ba_baselines.Go_back_n.protocol
  in
  let unsafe = List.fold_left (fun acc c -> acc + c.Chaos.unsafe) 0 r.Chaos.classes in
  check Alcotest.bool "naive baseline delivers corruption" true (unsafe > 0)

let test_failure_replays () =
  (* The reported (seed, fault) pair plus plans must reproduce the same
     failing run — that is the whole point of the replay key. *)
  let r =
    Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds ~classes:[ Chaos.Reorder ]
      Ba_baselines.Go_back_n.protocol
  in
  match List.concat_map (fun c -> Option.to_list c.Chaos.first_failure) r.Chaos.classes with
  | [] -> Alcotest.fail "expected a failure to replay"
  | f :: _ -> (
      match
        Chaos.run_one ~messages ~config:Chaos.gbn_config Ba_baselines.Go_back_n.protocol f.Chaos.fault
          ~seed:f.Chaos.seed
      with
      | None -> Alcotest.fail "replay did not reproduce the failure"
      | Some g ->
          check Alcotest.int "same delivered count"
            f.Chaos.result.Ba_proto.Harness.delivered g.Chaos.result.Ba_proto.Harness.delivered;
          check Alcotest.int "same tick count" f.Chaos.result.Ba_proto.Harness.ticks
            g.Chaos.result.Ba_proto.Harness.ticks)

let test_both_count_semantics () =
  (* [unsafe] and [incomplete] count symptoms, not runs: a run showing
     both increments both counters AND the [both] column, so the
     distinct failing-run count is unsafe + incomplete - both. Pin that
     against an independent recount from run_one. *)
  let r =
    Chaos.run_campaign ~messages ~config:Chaos.gbn_config ~seeds ~classes:[ Chaos.Reorder ]
      Ba_baselines.Go_back_n.protocol
  in
  let c = List.hd r.Chaos.classes in
  let expect_unsafe = ref 0 and expect_incomplete = ref 0 and expect_both = ref 0 in
  List.iter
    (fun seed ->
      match
        Chaos.run_one ~messages ~config:Chaos.gbn_config Ba_baselines.Go_back_n.protocol
          Chaos.Reorder ~seed
      with
      | None -> ()
      | Some f ->
          let u = not (Chaos.safe f.Chaos.result) in
          let i = not f.Chaos.result.Ba_proto.Harness.completed in
          if u then incr expect_unsafe;
          if i then incr expect_incomplete;
          if u && i then incr expect_both)
    seeds;
  check Alcotest.int "unsafe matches recount" !expect_unsafe c.Chaos.unsafe;
  check Alcotest.int "incomplete matches recount" !expect_incomplete c.Chaos.incomplete;
  check Alcotest.int "both matches recount" !expect_both c.Chaos.both;
  check Alcotest.bool "both <= unsafe" true (c.Chaos.both <= c.Chaos.unsafe);
  check Alcotest.bool "both <= incomplete" true (c.Chaos.both <= c.Chaos.incomplete);
  check Alcotest.bool "distinct failures fit in runs" true
    (c.Chaos.unsafe + c.Chaos.incomplete - c.Chaos.both <= c.Chaos.runs);
  (* The campaign's headline claim depends on the distinct count being
     meaningful: go-back-N must actually fail under reorder here. *)
  check Alcotest.bool "some failure observed" true
    (c.Chaos.unsafe + c.Chaos.incomplete - c.Chaos.both > 0)

let test_outage_exercises_backoff () =
  (* During the dark window the adaptive sender must slow down: the run
     completes, and with scheduled outage drops actually recorded. *)
  let failure = Chaos.run_one ~messages Blockack.Protocols.multi Chaos.Outage ~seed:7 in
  check Alcotest.bool "outage run completes" true (failure = None);
  let data_plan, ack_plan = Chaos.plans_for Chaos.Outage ~seed:7 in
  let r =
    Ba_proto.Harness.run Blockack.Protocols.multi ~seed:7 ~messages ~config:Chaos.robust_config
      ~data_delay:(Ba_channel.Dist.Constant 50) ~ack_delay:(Ba_channel.Dist.Constant 50)
      ~data_plan ~ack_plan ()
  in
  check Alcotest.bool "outage actually dropped data" true (r.Ba_proto.Harness.data_outage_drops > 0);
  check Alcotest.bool "finished past the dark window" true
    (r.Ba_proto.Harness.ticks > Ba_channel.Fault_plan.quiesced_after data_plan)

let () =
  Alcotest.run "chaos"
    [
      ( "campaign",
        [
          Alcotest.test_case "class names roundtrip" `Quick test_class_names_roundtrip;
          Alcotest.test_case "plans deterministic" `Quick test_plans_deterministic;
          Alcotest.test_case "campaign plans round-trip the replay grammar" `Quick
            test_campaign_plans_roundtrip;
          Alcotest.test_case "squeeze grammar rejects garbage" `Quick
            test_squeeze_grammar_rejections;
          Alcotest.test_case "storm composes all three plan kinds" `Quick
            test_storm_composes_and_blockack_survives;
          Alcotest.test_case "storm skipped without crash tolerance" `Quick
            test_storm_skipped_without_crash_tolerance;
          test_random_plans_roundtrip;
          Alcotest.test_case "blockack survives all classes" `Quick
            test_blockack_survives_all_classes;
          Alcotest.test_case "selective repeat survives all classes" `Quick
            test_selective_repeat_survives_all_classes;
          Alcotest.test_case "go-back-N breaks under reorder" `Quick test_gbn_breaks_under_reorder;
          Alcotest.test_case "go-back-N delivers corruption" `Quick test_gbn_corruption_delivered;
          Alcotest.test_case "failures replay exactly" `Quick test_failure_replays;
          Alcotest.test_case "both-count semantics" `Quick test_both_count_semantics;
          Alcotest.test_case "outage exercises backoff" `Quick test_outage_exercises_backoff;
        ] );
    ]
