(* Unit tests for the baseline protocols: go-back-N (sender and receiver,
   bounded and unbounded), selective repeat's receiver, Stenning's slot
   quarantine, and the alternating-bit protocol. The e2e suite covers
   their end-to-end behaviour; these pin the wire-level mechanics. *)

let check = Alcotest.check

module Engine = Ba_sim.Engine
module Wire = Ba_proto.Wire
module Config = Ba_proto.Proto_config

let ack_t = Alcotest.testable Wire.pp_ack ( = )

let payloads n = Ba_proto.Workload.supplier ~seed:0 ~size:8 ~count:n
let payload i = Ba_proto.Workload.payload ~seed:0 ~size:8 i
let drain q = List.of_seq (Seq.unfold (fun () -> Option.map (fun x -> (x, ())) (Queue.take_opt q)) ())

(* Instantiate a protocol's endpoints against capture queues. *)
let wire_seqs q = List.map (fun d -> d.Wire.seq) (drain q)

(* ------------------------------------------------------------------ *)
(* Go-back-N *)

let gbn = Ba_baselines.Go_back_n.protocol

let test_gbn_sender_window_and_cumulative_ack () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let (module P) = gbn in
  let config = Config.make ~window:4 ~rto:100 () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 20)
  in
  P.sender_pump s;
  check (Alcotest.list Alcotest.int) "window burst" [ 0; 1; 2; 3 ] (wire_seqs sent);
  (* Cumulative ack 2 releases 0..2 and refills. *)
  P.sender_on_ack s (Wire.make_ack ~lo:(2) ~hi:(2));
  check Alcotest.int "outstanding after ack" 4 (P.sender_outstanding s);
  check (Alcotest.list Alcotest.int) "refill" [ 4; 5; 6 ] (wire_seqs sent);
  (* A stale (lower) cumulative ack is ignored. *)
  P.sender_on_ack s (Wire.make_ack ~lo:(1) ~hi:(1));
  check Alcotest.int "stale cumulative ignored" 4 (P.sender_outstanding s)

let test_gbn_sender_goes_back_n () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let (module P) = gbn in
  let config = Config.make ~window:4 ~rto:100 () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 4)
  in
  P.sender_pump s;
  P.sender_on_ack s (Wire.make_ack ~lo:(0) ~hi:(0));
  Queue.clear sent;
  Engine.run ~until:150 engine;
  (* The whole outstanding window 1..3 is retransmitted, oldest first. *)
  check (Alcotest.list Alcotest.int) "go back N" [ 1; 2; 3 ] (wire_seqs sent);
  check Alcotest.int "all counted" 3 (P.sender_retransmissions s)

let test_gbn_receiver_in_order_only () =
  let engine = Engine.create () in
  let acks = Queue.create () and delivered = Queue.create () in
  let (module P) = gbn in
  let config = Config.make ~window:4 ~rto:100 () in
  let r =
    P.create_receiver engine config
      ~tx:(fun a -> Queue.add a acks)
      ~deliver:(fun p -> Queue.add p delivered)
  in
  P.receiver_on_data r (Wire.make_data ~seq:(0) ~payload:(payload 0));
  check (Alcotest.list ack_t) "ack 0" [ (Wire.make_ack ~lo:(0) ~hi:(0)) ] (drain acks);
  (* Out of order: discarded, last in-order re-acked. *)
  P.receiver_on_data r (Wire.make_data ~seq:(2) ~payload:(payload 2));
  check (Alcotest.list ack_t) "dup ack 0" [ (Wire.make_ack ~lo:(0) ~hi:(0)) ] (drain acks);
  check Alcotest.int "nothing buffered or delivered" 1 (Queue.length delivered);
  (* The gap arrives; 2 is still gone (no buffer) and must be resent. *)
  P.receiver_on_data r (Wire.make_data ~seq:(1) ~payload:(payload 1));
  check Alcotest.int "1 delivered" 2 (Queue.length delivered);
  P.receiver_on_data r (Wire.make_data ~seq:(2) ~payload:(payload 2));
  check Alcotest.int "2 delivered on retransmit" 3 (Queue.length delivered)

let test_gbn_receiver_silent_before_first () =
  let engine = Engine.create () in
  let acks = Queue.create () in
  let (module P) = gbn in
  let config = Config.make ~window:4 ~rto:100 () in
  let r = P.create_receiver engine config ~tx:(fun a -> Queue.add a acks) ~deliver:(fun _ -> ()) in
  (* Nothing accepted yet: an out-of-order arrival cannot be dup-acked. *)
  P.receiver_on_data r (Wire.make_data ~seq:(3) ~payload:(payload 3));
  check Alcotest.int "no ack" 0 (Queue.length acks)

let test_gbn_bounded_wire_wraps () =
  let engine = Engine.create () in
  let sent = Queue.create () and acks = Queue.create () and delivered = Queue.create () in
  let (module P) = gbn in
  let config = Config.make ~window:3 ~rto:100 ~wire_modulus:(Some 4) () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 8)
  in
  let r =
    P.create_receiver engine config
      ~tx:(fun a -> Queue.add a acks)
      ~deliver:(fun p -> Queue.add p delivered)
  in
  P.sender_pump s;
  (* Feed everything through in order: wire numbers wrap mod 4 but the
     transfer is FIFO so it works. *)
  for _ = 1 to 8 do
    (match drain sent with
    | [] -> ()
    | ds ->
        List.iter (fun d -> P.receiver_on_data r d) ds;
        List.iter (fun a -> P.sender_on_ack s a) (drain acks))
  done;
  check Alcotest.int "all delivered through wrapped numbers" 8 (Queue.length delivered);
  check Alcotest.bool "sender done" true (P.sender_done s)

(* ------------------------------------------------------------------ *)
(* Selective repeat receiver *)

let test_sr_receiver_acks_everything () =
  let engine = Engine.create () in
  let acks = Queue.create () and delivered = Queue.create () in
  let config = Config.make ~window:4 ~rto:100 ~wire_modulus:(Some 8) () in
  let r =
    Ba_baselines.Selective_repeat.create_receiver engine config
      ~tx:(fun a -> Queue.add a acks)
      ~deliver:(fun p -> Queue.add p delivered)
  in
  (* Out-of-order arrival is acked immediately and buffered. *)
  Ba_baselines.Selective_repeat.receiver_on_data r (Wire.make_data ~seq:(2) ~payload:(payload 2));
  check (Alcotest.list ack_t) "individual ack for ooo" [ (Wire.make_ack ~lo:(2) ~hi:(2)) ] (drain acks);
  check Alcotest.int "not delivered yet" 0 (Queue.length delivered);
  (* Filling the gap delivers in order; each arrival got its own ack. *)
  Ba_baselines.Selective_repeat.receiver_on_data r (Wire.make_data ~seq:(0) ~payload:(payload 0));
  Ba_baselines.Selective_repeat.receiver_on_data r (Wire.make_data ~seq:(1) ~payload:(payload 1));
  check
    (Alcotest.list ack_t)
    "acks 0 then 1"
    [ (Wire.make_ack ~lo:(0) ~hi:(0)); (Wire.make_ack ~lo:(1) ~hi:(1)) ]
    (drain acks);
  check
    (Alcotest.list Alcotest.string)
    "in order" [ payload 0; payload 1; payload 2 ] (drain delivered);
  (* A duplicate of an accepted message is re-acked, not redelivered. *)
  Ba_baselines.Selective_repeat.receiver_on_data r (Wire.make_data ~seq:(1) ~payload:(payload 1));
  check (Alcotest.list ack_t) "dup re-acked" [ (Wire.make_ack ~lo:(1) ~hi:(1)) ] (drain acks);
  check Alcotest.int "no redelivery" 0 (Queue.length delivered)

(* ------------------------------------------------------------------ *)
(* Stenning slot quarantine *)

let test_stenning_quarantine_delays_slot_reuse () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let (module P) = Ba_baselines.Stenning.protocol in
  let config = Config.make ~window:2 ~rto:500 ~wire_modulus:(Some 4) ~stenning_gap:100 () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 10)
  in
  P.sender_pump s;
  check (Alcotest.list Alcotest.int) "fresh slots immediate" [ 0; 1 ] (wire_seqs sent);
  (* Acks free the window; wires 2,3 are fresh slots, also immediate. *)
  P.sender_on_ack s (Wire.make_ack ~lo:(0) ~hi:(0));
  P.sender_on_ack s (Wire.make_ack ~lo:(1) ~hi:(1));
  check (Alcotest.list Alcotest.int) "next fresh slots" [ 2; 3 ] (wire_seqs sent);
  (* Wire 0 (seq 4) was used at t=0: quarantined until t=100. *)
  P.sender_on_ack s (Wire.make_ack ~lo:(2) ~hi:(2));
  P.sender_on_ack s (Wire.make_ack ~lo:(3) ~hi:(3));
  check (Alcotest.list Alcotest.int) "slot 0 quarantined" [] (wire_seqs sent);
  Engine.run ~until:100 engine;
  let after = wire_seqs sent in
  check Alcotest.bool "released at gap expiry" true (List.mem 0 after);
  check Alcotest.int "now at t=100" 100 (Engine.now engine)

(* ------------------------------------------------------------------ *)
(* Alternating bit *)

let abp = Ba_baselines.Alternating_bit.protocol

let test_abp_alternates_and_waits () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let (module P) = abp in
  let config = Config.make ~window:1 ~rto:100 () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 3)
  in
  P.sender_pump s;
  check (Alcotest.list Alcotest.int) "first bit 0" [ 0 ] (wire_seqs sent);
  (* Wrong-bit ack is ignored; right-bit ack advances and flips. *)
  P.sender_on_ack s (Wire.make_ack ~lo:(1) ~hi:(1));
  check Alcotest.int "wrong bit ignored" 0 (Queue.length sent);
  P.sender_on_ack s (Wire.make_ack ~lo:(0) ~hi:(0));
  check (Alcotest.list Alcotest.int) "second bit 1" [ 1 ] (wire_seqs sent);
  P.sender_on_ack s (Wire.make_ack ~lo:(1) ~hi:(1));
  check (Alcotest.list Alcotest.int) "third bit 0 again" [ 0 ] (wire_seqs sent)

let test_abp_receiver_dedups () =
  let engine = Engine.create () in
  let acks = Queue.create () and delivered = Queue.create () in
  let (module P) = abp in
  let config = Config.make ~window:1 ~rto:100 () in
  let r =
    P.create_receiver engine config
      ~tx:(fun a -> Queue.add a acks)
      ~deliver:(fun p -> Queue.add p delivered)
  in
  P.receiver_on_data r (Wire.make_data ~seq:(0) ~payload:("a"));
  P.receiver_on_data r (Wire.make_data ~seq:(0) ~payload:("a"));
  (* duplicate *)
  check Alcotest.int "delivered once" 1 (Queue.length delivered);
  check
    (Alcotest.list ack_t)
    "both arrivals acked"
    [ (Wire.make_ack ~lo:(0) ~hi:(0)); (Wire.make_ack ~lo:(0) ~hi:(0)) ]
    (drain acks);
  P.receiver_on_data r (Wire.make_data ~seq:(1) ~payload:("b"));
  check Alcotest.int "next bit delivered" 2 (Queue.length delivered)

let test_abp_timeout_retransmits () =
  let engine = Engine.create () in
  let sent = Queue.create () in
  let (module P) = abp in
  let config = Config.make ~window:1 ~rto:100 () in
  let s =
    P.create_sender engine config ~tx:(fun d -> Queue.add d sent) ~next_payload:(payloads 1)
  in
  P.sender_pump s;
  Queue.clear sent;
  Engine.run ~until:250 engine;
  check (Alcotest.list Alcotest.int) "two retransmissions of bit 0" [ 0; 0 ] (wire_seqs sent);
  check Alcotest.int "counted" 2 (P.sender_retransmissions s)

let () =
  Alcotest.run "baselines"
    [
      ( "go_back_n",
        [
          Alcotest.test_case "window and cumulative acks" `Quick
            test_gbn_sender_window_and_cumulative_ack;
          Alcotest.test_case "goes back N on timeout" `Quick test_gbn_sender_goes_back_n;
          Alcotest.test_case "receiver in-order only" `Quick test_gbn_receiver_in_order_only;
          Alcotest.test_case "receiver silent before first" `Quick
            test_gbn_receiver_silent_before_first;
          Alcotest.test_case "bounded wire wraps (FIFO)" `Quick test_gbn_bounded_wire_wraps;
        ] );
      ( "selective_repeat",
        [ Alcotest.test_case "acks everything individually" `Quick test_sr_receiver_acks_everything ]
      );
      ( "stenning",
        [ Alcotest.test_case "slot quarantine" `Quick test_stenning_quarantine_delays_slot_reuse ]
      );
      ( "alternating_bit",
        [
          Alcotest.test_case "alternates and waits" `Quick test_abp_alternates_and_waits;
          Alcotest.test_case "receiver dedups" `Quick test_abp_receiver_dedups;
          Alcotest.test_case "timeout retransmits" `Quick test_abp_timeout_retransmits;
        ] );
    ]
