(* Multi-connection fabric and registry tests: determinism of shared-link
   runs (a fabric run is a pure function of its seed), per-flow safety
   under a lossy contended bottleneck, Jain's index arithmetic, and the
   shared protocol registry (canonical names, aliases, error text,
   recommended moduli). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Fabric = Ba_proto.Fabric
module Harness = Ba_proto.Harness
module Registry = Ba_registry.Registry
module Dist = Ba_channel.Dist

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry is missing %S" name

(* A heterogeneous mix of the protocols that must stay safe on a lossy,
   reordering, contended link: the two robust registry entries plus
   go-back-N with unbounded wire numbers (safe, merely slow). *)
let mixed_specs ~messages =
  List.concat_map
    (fun name ->
      let e = entry name in
      let config = Registry.config ~window:6 ~rto:800 e () in
      List.init 2 (fun _ -> Fabric.spec ~config ~messages e.Registry.protocol))
    [ "blockack-multi"; "selective-repeat"; "go-back-n" ]

let run_lossy ~seed specs =
  Fabric.run ~seed ~data_loss:0.05 ~ack_loss:0.05 ~data_delay:(Dist.Uniform (40, 80))
    ~ack_delay:(Dist.Uniform (40, 80)) ~data_bottleneck:(3, 16) specs

(* ------------------------------------------------------------------ *)
(* Determinism and safety *)

let test_fabric_deterministic =
  qcheck
    (QCheck.Test.make ~count:25 ~name:"same seed, same fabric run — structurally equal"
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let a = run_lossy ~seed (mixed_specs ~messages:25) in
         let b = run_lossy ~seed (mixed_specs ~messages:25) in
         a = b))

let test_fabric_safety =
  qcheck
    (QCheck.Test.make ~count:15
       ~name:"every flow of a correct protocol stays clean under a shared lossy bottleneck"
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let r = run_lossy ~seed (mixed_specs ~messages:30) in
         List.for_all
           (fun (f : Harness.result) ->
             f.Harness.duplicates = 0 && f.Harness.misordered = 0 && f.Harness.corrupted = 0
             && f.Harness.completed)
           r.Fabric.flows))

let test_fabric_flow_accounting () =
  let r = run_lossy ~seed:7 (mixed_specs ~messages:20) in
  check Alcotest.int "six flows" 6 (List.length r.Fabric.flows);
  check Alcotest.bool "run completed" true r.Fabric.completed;
  List.iteri
    (fun i (f : Harness.result) ->
      check Alcotest.int (Printf.sprintf "flow %d delivered all" i) 20 f.Harness.delivered;
      check Alcotest.bool (Printf.sprintf "flow %d correct" i) true (Harness.correct f))
    r.Fabric.flows;
  (* The shared data link carried every flow's traffic. *)
  check Alcotest.bool "shared link saw aggregate traffic" true
    (r.Fabric.data_stats.Ba_channel.Link.sent >= 6 * 20)

let test_fabric_rejects_empty () =
  Alcotest.check_raises "empty spec list"
    (Invalid_argument "Fabric.run: at least one flow required") (fun () ->
      ignore (Fabric.run []))

let test_jain () =
  let feq = Alcotest.float 1e-9 in
  check feq "even split" 1.0 (Fabric.jain [ 3.; 3.; 3.; 3. ]);
  check feq "one hoarder" 0.25 (Fabric.jain [ 5.; 0.; 0.; 0. ]);
  check feq "degenerate empty" 1.0 (Fabric.jain []);
  check feq "degenerate zeros" 1.0 (Fabric.jain [ 0.; 0. ]);
  let mixed = Fabric.jain [ 4.; 2. ] in
  check Alcotest.bool "between 1/n and 1" true (mixed > 0.5 && mixed < 1.0)

(* ------------------------------------------------------------------ *)
(* Single-flow endpoint failure: a crash inside one flow must be invisible
   to the other n-1 flows sharing the links. *)

module Flow = Ba_proto.Flow
module Engine = Ba_sim.Engine

(* Four blockack-multi flows; flow 0's receiver crashes mid-transfer and
   restarts 400 ticks later. *)
let crash_specs ~messages =
  let e = entry "blockack-multi" in
  let config = Registry.config ~window:6 ~rto:800 e () in
  List.init 4 (fun _ -> Fabric.spec ~config ~messages e.Registry.protocol)

let run_with_crash ~seed ~victim specs =
  Fabric.run ~seed ~data_loss:0.05 ~ack_loss:0.05 ~data_delay:(Dist.Uniform (40, 80))
    ~ack_delay:(Dist.Uniform (40, 80)) ~data_bottleneck:(3, 16)
    ~on_flows:(fun engine flows ->
      ignore (Engine.schedule_at engine ~at:600 (fun () -> Flow.crash_receiver flows.(victim)));
      ignore (Engine.schedule_at engine ~at:1000 (fun () -> Flow.restart_receiver flows.(victim))))
    specs

let test_single_flow_crash_isolated () =
  List.iter
    (fun seed ->
      let r = run_with_crash ~seed ~victim:0 (crash_specs ~messages:30) in
      check Alcotest.bool "every flow still completes" true r.Fabric.completed;
      List.iteri
        (fun i (f : Harness.result) ->
          check Alcotest.bool (Printf.sprintf "flow %d correct" i) true (Harness.correct f);
          if i = 0 then begin
            check Alcotest.int "victim saw the crash" 1 f.Harness.crashes;
            check Alcotest.int "victim saw the restart" 1 f.Harness.restarts
          end
          else begin
            check Alcotest.int (Printf.sprintf "flow %d crash-free" i) 0 f.Harness.crashes;
            check Alcotest.int (Printf.sprintf "flow %d no resync" i) 0 f.Harness.resync_rounds
          end)
        r.Fabric.flows)
    [ 1; 2; 3 ]

let test_single_flow_crash_no_stall () =
  (* The survivors must not be slowed to the victim's recovery schedule:
     each non-victim flow finishes no later than in a crash-free run of
     the same seed plus a small scheduling tolerance. *)
  let specs = crash_specs ~messages:30 in
  let baseline = run_lossy ~seed:11 specs in
  let crashed = run_with_crash ~seed:11 ~victim:0 specs in
  List.iteri
    (fun i ((b : Harness.result), (c : Harness.result)) ->
      if i > 0 then begin
        if not c.Harness.completed then Alcotest.failf "survivor flow %d stalled" i;
        (* Generous bound: contention shifts individual timings, but a
           survivor must not be held up for anything like the victim's
           400-tick outage plus resync. *)
        if float_of_int c.Harness.ticks > (1.5 *. float_of_int b.Harness.ticks) +. 400. then
          Alcotest.failf "survivor flow %d slowed from %d to %d ticks" i b.Harness.ticks
            c.Harness.ticks
      end)
    (List.combine baseline.Fabric.flows crashed.Fabric.flows
    |> List.map (fun (a, b) -> (a, b)))

let test_fabric_crash_deterministic () =
  let snap () =
    let r = run_with_crash ~seed:5 ~victim:0 (crash_specs ~messages:25) in
    (r.Fabric.ticks, List.map (fun (f : Harness.result) -> f.Harness.delivered) r.Fabric.flows)
  in
  check
    Alcotest.(pair int (list int))
    "same seed, same crashed-fabric run" (snap ()) (snap ())

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_names () =
  check
    Alcotest.(list string)
    "canonical names, presentation order"
    [
      "blockack-simple"; "blockack-multi"; "blockack-reuse"; "go-back-n";
      "selective-repeat"; "stenning"; "alternating-bit";
    ]
    Registry.names

let test_registry_aliases () =
  List.iter
    (fun (alias, canonical) ->
      match Registry.find alias with
      | Some e -> check Alcotest.string alias canonical e.Registry.name
      | None -> Alcotest.failf "alias %S did not resolve" alias)
    [ ("blockack", "blockack-multi"); ("gbn", "go-back-n"); ("sr", "selective-repeat");
      ("abp", "alternating-bit") ]

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_registry_unknown () =
  check Alcotest.bool "unknown name" true (Registry.find "no-such-protocol" = None);
  match Registry.parse "no-such-protocol" with
  | Ok _ -> Alcotest.fail "parse accepted an unknown name"
  | Error msg ->
      List.iter
        (fun needle ->
          check Alcotest.bool
            (Printf.sprintf "error mentions %s" needle)
            true (contains ~needle msg))
        [ "no-such-protocol"; "blockack-multi"; "go-back-n" ]

let test_registry_robust () =
  check
    Alcotest.(list string)
    "audited robust set" [ "blockack-multi"; "selective-repeat" ]
    (List.map (fun e -> e.Registry.name) Registry.robust)

let test_registry_config_moduli () =
  let modulus name ~window =
    (Registry.config ~window (entry name) ()).Ba_proto.Proto_config.wire_modulus
  in
  check Alcotest.(option int) "blockack-multi uses n = 2w" (Some 16)
    (modulus "blockack-multi" ~window:8);
  check Alcotest.(option int) "blockack-reuse uses n = 4w" (Some 32)
    (modulus "blockack-reuse" ~window:8);
  check Alcotest.(option int) "go-back-n defaults to unbounded wire numbers" None
    (modulus "go-back-n" ~window:8);
  check Alcotest.(option int) "explicit modulus wins" (Some 64)
    (Registry.config ~window:8 ~modulus:64 (entry "blockack-multi") ())
      .Ba_proto.Proto_config.wire_modulus

let () =
  Alcotest.run "fabric"
    [
      ( "fabric",
        [
          test_fabric_deterministic;
          test_fabric_safety;
          Alcotest.test_case "per-flow accounting over a shared link" `Quick
            test_fabric_flow_accounting;
          Alcotest.test_case "empty spec list rejected" `Quick test_fabric_rejects_empty;
          Alcotest.test_case "Jain's fairness index" `Quick test_jain;
        ] );
      ( "crash isolation",
        [
          Alcotest.test_case "single-flow crash is invisible to the others" `Quick
            test_single_flow_crash_isolated;
          Alcotest.test_case "survivors do not stall on the victim's recovery" `Quick
            test_single_flow_crash_no_stall;
          Alcotest.test_case "crashed fabric run is deterministic" `Quick
            test_fabric_crash_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "canonical names" `Quick test_registry_names;
          Alcotest.test_case "aliases resolve" `Quick test_registry_aliases;
          Alcotest.test_case "unknown names and error text" `Quick test_registry_unknown;
          Alcotest.test_case "robust subset" `Quick test_registry_robust;
          Alcotest.test_case "recommended moduli" `Quick test_registry_config_moduli;
        ] );
    ]
