(* Flow-lifecycle (churn) suite, also wired to the `churn-smoke` alias:
   departures on a stop_at schedule, interval-aware admission reclaiming
   departed reservations, the seed-derived churn generator, and the
   churn + storm composition the soak harness drives. *)

let check = Alcotest.check

module Fabric = Ba_proto.Fabric
module Flow = Ba_proto.Flow
module Harness = Ba_proto.Harness
module Chaos = Ba_verify.Chaos

let proto = Blockack.Protocols.multi

(* One flow's admission charge under the default config: 2 * window *
   payload_size = 2 * 16 * 32 bytes (retransmit buffer + reassembly). *)
let flow_cost = 2 * 16 * 32

let test_stop_at_validation () =
  Alcotest.check_raises "stop_at must be > start_at"
    (Invalid_argument "Fabric.run: stop_at must be > start_at") (fun () ->
      ignore (Fabric.run [ Fabric.spec ~start_at:100 ~stop_at:100 proto ]));
  Alcotest.check_raises "churn base must be >= 0"
    (Invalid_argument "Fabric.churn: base must be >= 0") (fun () ->
      ignore (Fabric.churn ~base:(-1) ~seed:1 proto))

let test_departure_frees_slot_and_finishes () =
  (* A flow with far more work than its tenancy allows departs on
     schedule; the run still counts as completed (departure is a normal
     end of life) and the departed flow's verdict is frozen mid-transfer. *)
  let r =
    Fabric.run
      [ Fabric.spec ~messages:500 ~stop_at:1500 proto; Fabric.spec ~messages:20 proto ]
  in
  check Alcotest.int "one departure" 1 r.Fabric.departed;
  check Alcotest.bool "run completed" true r.Fabric.completed;
  let departed = List.hd r.Fabric.flows in
  check Alcotest.bool "departed flow did not finish its offer" false departed.Harness.completed;
  check Alcotest.bool "departed flow delivered something first" true (departed.Harness.delivered > 0);
  let survivor = List.nth r.Fabric.flows 1 in
  check Alcotest.bool "survivor finished" true survivor.Harness.completed;
  check Alcotest.int "survivor delivered everything" 20 survivor.Harness.delivered

let test_departure_reclaims_budget () =
  (* The regression at the heart of interval-aware admission: a budget
     that fits ONE flow's reservation. With A's [stop_at] before C's
     arrival their intervals never overlap, so both are admitted
     unclamped into the same reservation; drop the stop_at and the
     lifetime-sum peak doubles, forcing admission to degrade. *)
  let a ~stop_at = Fabric.spec ~messages:500 ?stop_at proto in
  let c = Fabric.spec ~messages:20 ~start_at:2000 proto in
  let reclaimed = Fabric.run ~memory_budget:flow_cost [ a ~stop_at:(Some 1500); c ] in
  check Alcotest.int "both admitted" 2 reclaimed.Fabric.admitted;
  check Alcotest.int "none refused" 0 reclaimed.Fabric.refused;
  check Alcotest.bool "no clamp" true (reclaimed.Fabric.clamped_window = None);
  check Alcotest.bool "budget held" true (reclaimed.Fabric.mem_peak_bytes <= flow_cost);
  let overlapping = Fabric.run ~memory_budget:flow_cost [ a ~stop_at:None; c ] in
  check Alcotest.bool "without the departure, admission must degrade" true
    (overlapping.Fabric.clamped_window <> None || overlapping.Fabric.refused > 0)

let test_churn_generator_shape () =
  let base = 2 and churners = 3 in
  let specs = Fabric.churn ~base ~churners ~seed:7 proto in
  check Alcotest.int "base + leaver/returner pairs" (base + (2 * churners))
    (List.length specs);
  let baseline = List.filteri (fun i _ -> i < base) specs in
  List.iter
    (fun (s : Fabric.spec) ->
      check Alcotest.bool "baseline spans the horizon" true
        (s.Fabric.start_at = 0 && s.Fabric.stop_at = None))
    baseline;
  let tail = List.filteri (fun i _ -> i >= base) specs in
  List.iteri
    (fun k (s : Fabric.spec) ->
      if k mod 2 = 0 then begin
        (* leaver: early arrival, scheduled departure, outsized offer *)
        check Alcotest.bool "leaver arrives early" true (s.Fabric.start_at <= 400);
        match s.Fabric.stop_at with
        | None -> Alcotest.fail "leaver must have a stop_at"
        | Some d -> check Alcotest.bool "departure after arrival" true (d > s.Fabric.start_at)
      end
      else begin
        (* returner: arrives after its leaver departed, runs to completion *)
        check Alcotest.bool "returner has no stop_at" true (s.Fabric.stop_at = None);
        match (List.nth tail (k - 1)).Fabric.stop_at with
        | None -> Alcotest.fail "paired leaver must have a stop_at"
        | Some d -> check Alcotest.bool "returner arrives after the departure" true (s.Fabric.start_at > d)
      end)
    tail;
  (* Compare schedules only: a spec carries the protocol's closures,
     which polymorphic equality cannot look through. *)
  let shape =
    List.map (fun (s : Fabric.spec) -> (s.Fabric.start_at, s.Fabric.stop_at, s.Fabric.messages))
  in
  check Alcotest.bool "schedule is a pure function of seed" true
    (shape (Fabric.churn ~base ~churners ~seed:7 proto) = shape specs);
  check Alcotest.bool "different seeds differ" true
    (shape (Fabric.churn ~base ~churners ~seed:8 proto) <> shape specs)

let test_churning_run_deterministic () =
  let run () = Fabric.run ~seed:11 (Fabric.churn ~churners:2 ~messages:20 ~seed:11 proto) in
  let a = run () and b = run () in
  check Alcotest.int "same ticks" a.Fabric.ticks b.Fabric.ticks;
  check Alcotest.int "same departures" a.Fabric.departed b.Fabric.departed;
  check Alcotest.bool "same per-flow verdicts" true (a.Fabric.flows = b.Fabric.flows)

let test_churn_under_storm_stays_safe () =
  (* The soak harness's round, in miniature: a churning population with
     the full storm composition (bursty channels + squeeze + crash plan
     on flow 0) admitted under a budget below the lifetime sum. Safety
     and the memory guarantee must hold; churners still depart. *)
  let seed = 42 in
  let specs = Fabric.churn ~churners:2 ~messages:20 ~config:Chaos.robust_config ~seed proto in
  let need =
    List.fold_left
      (fun acc (s : Fabric.spec) ->
        acc + (2 * s.Fabric.config.Ba_proto.Proto_config.window * s.Fabric.payload_size))
      0 specs
  in
  let budget = need * 3 / 4 in
  let data_plan, ack_plan = Chaos.plans_for Chaos.Storm ~seed in
  let sq = Chaos.squeeze_for ~seed in
  let crash_plan = Chaos.crash_plan_for ~seed in
  let specs =
    List.map
      (fun (s : Fabric.spec) ->
        { s with Fabric.config = fst (Chaos.apply_squeeze sq s.Fabric.config) })
      specs
  in
  let on_flows engine (flows : Flow.t array) =
    List.iter
      (fun (ev : Ba_proto.Crash_plan.event) ->
        let crash, restart =
          match ev.Ba_proto.Crash_plan.endpoint with
          | Ba_proto.Crash_plan.Sender_end -> (Flow.crash_sender, Flow.restart_sender)
          | Ba_proto.Crash_plan.Receiver_end -> (Flow.crash_receiver, Flow.restart_receiver)
        in
        ignore
          (Ba_sim.Engine.schedule_at engine ~at:ev.Ba_proto.Crash_plan.at (fun () ->
               crash flows.(0)));
        ignore
          (Ba_sim.Engine.schedule_at engine
             ~at:(ev.Ba_proto.Crash_plan.at + ev.Ba_proto.Crash_plan.down_for)
             (fun () -> restart flows.(0))))
      crash_plan
  in
  let r =
    Fabric.run ~seed ~data_plan ~ack_plan
      ~data_bottleneck:(sq.Chaos.service_time, sq.Chaos.queue_capacity)
      ~memory_budget:budget ~on_flows specs
  in
  check Alcotest.int "everyone admitted into reclaimed capacity" (List.length specs)
    r.Fabric.admitted;
  check Alcotest.int "churners departed" 2 r.Fabric.departed;
  check Alcotest.bool "run completed" true r.Fabric.completed;
  check Alcotest.bool "memory guarantee held through the storm" true
    (r.Fabric.mem_peak_bytes <= budget);
  List.iter
    (fun (f : Harness.result) -> check Alcotest.bool "flow stayed safe" true (Chaos.safe f))
    r.Fabric.flows

let () =
  Alcotest.run "churn"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "stop_at and churn validation" `Quick test_stop_at_validation;
          Alcotest.test_case "departure is a normal end of life" `Quick
            test_departure_frees_slot_and_finishes;
          Alcotest.test_case "departure reclaims its budget reservation" `Quick
            test_departure_reclaims_budget;
          Alcotest.test_case "churn generator shape" `Quick test_churn_generator_shape;
          Alcotest.test_case "churning run is deterministic" `Quick
            test_churning_run_deterministic;
          Alcotest.test_case "churn under storm stays safe" `Quick
            test_churn_under_storm_stays_safe;
        ] );
    ]
